(* The headline security property (paper Property 1 / Section 5): on the
   MI6 configuration, an attacker's timing observations are bit-identical
   whatever the victim does; on the baseline RiscyOO configuration each of
   the paper's channels demonstrably leaks. *)

open Mi6_llc
open Mi6_cache
open Mi6_core

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prime + probe (LLC set contention, Section 5.2)                      *)
(* ------------------------------------------------------------------ *)

let test_prime_probe_baseline_leaks () =
  let t = Noninterference.prime_probe Noninterference.baseline_setup ~secret:true in
  let f = Noninterference.prime_probe Noninterference.baseline_setup ~secret:false in
  check_bool "baseline LLC leaks the secret" true (Noninterference.leaks [ t; f ]);
  (* The leak is through *slow* probes: evictions by the victim. *)
  let slow l = List.filter (fun x -> x > 100) l in
  check_bool "secret=1 causes slow probes" true (List.length (slow t) > 0);
  check_bool "more slow probes when the victim shares the set" true
    (List.length (slow t) > List.length (slow f))

let test_prime_probe_mi6_noninterference () =
  let t = Noninterference.prime_probe Noninterference.mi6_setup ~secret:true in
  let f = Noninterference.prime_probe Noninterference.mi6_setup ~secret:false in
  check_bool "MI6 set partitioning closes the channel" false
    (Noninterference.leaks [ t; f ])

(* ------------------------------------------------------------------ *)
(* MSHR / arbitration contention (Sections 5.2, 5.4)                    *)
(* ------------------------------------------------------------------ *)

let test_mshr_baseline_leaks () =
  let busy = Noninterference.mshr_channel Noninterference.baseline_setup ~victim_floods:true in
  let idle = Noninterference.mshr_channel Noninterference.baseline_setup ~victim_floods:false in
  check_bool "baseline queue/MSHR contention leaks" true
    (Noninterference.leaks [ busy; idle ]);
  (* The attacker is slower when the victim floods. *)
  let sum = List.fold_left ( + ) 0 in
  check_bool "flooding delays the attacker" true (sum busy > sum idle)

let test_mshr_mi6_noninterference () =
  let busy = Noninterference.mshr_channel Noninterference.mi6_setup ~victim_floods:true in
  let idle = Noninterference.mshr_channel Noninterference.mi6_setup ~victim_floods:false in
  check_bool
    "MI6 (partitioned MSHRs + RR arbiter + split UQ + 1-cycle DQ) closes it"
    false
    (Noninterference.leaks [ busy; idle ])

(* ------------------------------------------------------------------ *)
(* DRAM bank reordering (Section 5.2)                                   *)
(* ------------------------------------------------------------------ *)

let test_dram_reordering_leaks () =
  let same = Noninterference.dram_bank_channel ~reordering:true ~victim_same_bank:true in
  let diff = Noninterference.dram_bank_channel ~reordering:true ~victim_same_bank:false in
  check_bool "FR-FCFS leaks the victim's bank locality" true
    (Noninterference.leaks [ same; diff ])

let test_dram_constant_noninterference () =
  let same = Noninterference.dram_bank_channel ~reordering:false ~victim_same_bank:true in
  let diff = Noninterference.dram_bank_channel ~reordering:false ~victim_same_bank:false in
  check_bool "constant-latency DRAM closes the bank channel" false
    (Noninterference.leaks [ same; diff ])

(* ------------------------------------------------------------------ *)
(* Isolation structure ablation: each Figure 3 fix matters              *)
(* ------------------------------------------------------------------ *)

(* Dropping the round-robin arbiter from the otherwise-secure LLC
   re-opens interference for the low-priority attacker. *)
let test_ablation_arbiter_required () =
  let setup =
    {
      Noninterference.mi6_setup with
      Noninterference.security =
        { Llc.mi6_security with Llc.round_robin_arbiter = false };
    }
  in
  let busy = Noninterference.mshr_channel setup ~victim_floods:true in
  let idle = Noninterference.mshr_channel setup ~victim_floods:false in
  check_bool "without the RR arbiter the channel re-opens" true
    (Noninterference.leaks [ busy; idle ])

(* Keeping the secure LLC structures but the *flat* index re-opens
   prime+probe: set partitioning is what isolates the arrays. *)
let test_ablation_partitioning_required () =
  let setup =
    {
      Noninterference.mi6_setup with
      Noninterference.index = Index.flat ~set_bits:10;
    }
  in
  let t = Noninterference.prime_probe setup ~secret:true in
  let f = Noninterference.prime_probe setup ~secret:false in
  check_bool "without set partitioning prime+probe re-opens" true
    (Noninterference.leaks [ t; f ])

(* ------------------------------------------------------------------ *)
(* Property: attacker observations invariant over random victims        *)
(* ------------------------------------------------------------------ *)

let prop_mi6_invariant_over_victims =
  QCheck.Test.make
    ~name:"MI6 prime+probe observation is a constant function of the victim"
    ~count:8 QCheck.bool
    (fun secret ->
      let reference =
        Noninterference.prime_probe Noninterference.mi6_setup ~secret:false
      in
      Noninterference.prime_probe Noninterference.mi6_setup ~secret = reference)

let prop_mi6_mshr_invariant =
  QCheck.Test.make
    ~name:"MI6 miss-timing observation is a constant function of the victim"
    ~count:6 QCheck.bool
    (fun floods ->
      let reference =
        Noninterference.mshr_channel Noninterference.mi6_setup
          ~victim_floods:false
      in
      Noninterference.mshr_channel Noninterference.mi6_setup
        ~victim_floods:floods
      = reference)

(* ------------------------------------------------------------------ *)
(* Victim-timeline equality (trace capture)                            *)
(* ------------------------------------------------------------------ *)

(* The strongest statement of non-interference the simulator can make:
   not just that the victim's end-to-end latencies match, but that its
   entire cycle-stamped LLC event timeline — every arbiter grant, MSHR
   allocation/release, and upgrade-queue send — is bit-identical whether
   the attacker floods the hierarchy or sits idle. *)

let test_timeline_mi6_identical () =
  let quiet =
    Noninterference.victim_timeline Noninterference.mi6_setup
      ~attacker_floods:false
  in
  let noisy =
    Noninterference.victim_timeline Noninterference.mi6_setup
      ~attacker_floods:true
  in
  Alcotest.(check bool) "timeline non-empty" true (quiet <> []);
  Alcotest.(check (list string)) "victim timeline bit-identical" quiet noisy

let test_timeline_baseline_differs () =
  let quiet =
    Noninterference.victim_timeline Noninterference.baseline_setup
      ~attacker_floods:false
  in
  let noisy =
    Noninterference.victim_timeline Noninterference.baseline_setup
      ~attacker_floods:true
  in
  Alcotest.(check bool) "baseline victim timeline perturbed" true
    (quiet <> noisy)

(* ------------------------------------------------------------------ *)
(* Leakage audit (Section 5.4 via the stream-diff auditor)              *)
(* ------------------------------------------------------------------ *)

let victim_stream setup attacker =
  let events, drops =
    Noninterference.victim_llc_events setup ~attacker
  in
  Alcotest.(check int)
    (Printf.sprintf "no trace drops under %s"
       (Noninterference.attacker_name attacker))
    0 drops;
  events

let test_audit_mi6_clean_under_every_attacker () =
  let reference =
    victim_stream Noninterference.mi6_setup Noninterference.A_idle
  in
  check_bool "victim observed at all" true (reference <> []);
  List.iter
    (fun attacker ->
      let r =
        Mi6_obs.Audit.diff ~label_a:"idle"
          ~label_b:(Noninterference.attacker_name attacker)
          reference
          (victim_stream Noninterference.mi6_setup attacker)
      in
      check_bool
        (Printf.sprintf "mi6 timing-independent vs %s"
           (Noninterference.attacker_name attacker))
        true (Mi6_obs.Audit.clean r))
    [ Noninterference.A_flood; Noninterference.A_burst;
      Noninterference.A_sweep ]

let test_audit_baseline_localizes_leak () =
  let reference =
    victim_stream Noninterference.baseline_setup Noninterference.A_idle
  in
  let r =
    Mi6_obs.Audit.diff ~label_a:"idle" ~label_b:"flood" reference
      (victim_stream Noninterference.baseline_setup Noninterference.A_flood)
  in
  check_bool "baseline leaks" false (Mi6_obs.Audit.clean r);
  (* The auditor must name the structure where the leak enters — on the
     baseline the shared pipeline-entry mux delays the victim's very
     first grant, so the arbiter diverges no later than anything else. *)
  match Mi6_obs.Audit.first_leaking_channel r with
  | Some ch ->
    check_bool
      (Printf.sprintf "leak enters through a shared LLC structure, got %s"
         (Mi6_obs.Audit.channel_name ch))
      true
      (List.mem ch
         [ Mi6_obs.Audit.Arbiter; Mi6_obs.Audit.Mshr; Mi6_obs.Audit.Uq_dq;
           Mi6_obs.Audit.Dram ])
  | None -> Alcotest.fail "divergent report without a leaking channel"

let test_attacker_names_roundtrip () =
  List.iter
    (fun a ->
      match
        Noninterference.attacker_of_name (Noninterference.attacker_name a)
      with
      | Some a' -> check_bool "roundtrip" true (a = a')
      | None -> Alcotest.fail "attacker name not parseable")
    Noninterference.all_attackers;
  check_bool "unknown rejected" true
    (Noninterference.attacker_of_name "nonsense" = None)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_noninterference"
    [
      ( "prime_probe",
        [
          Alcotest.test_case "baseline leaks" `Quick
            test_prime_probe_baseline_leaks;
          Alcotest.test_case "mi6 noninterference" `Quick
            test_prime_probe_mi6_noninterference;
        ] );
      ( "mshr_contention",
        [
          Alcotest.test_case "baseline leaks" `Quick test_mshr_baseline_leaks;
          Alcotest.test_case "mi6 noninterference" `Quick
            test_mshr_mi6_noninterference;
        ] );
      ( "dram_banks",
        [
          Alcotest.test_case "reordering leaks" `Quick test_dram_reordering_leaks;
          Alcotest.test_case "constant latency safe" `Quick
            test_dram_constant_noninterference;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "rr arbiter required" `Quick
            test_ablation_arbiter_required;
          Alcotest.test_case "set partitioning required" `Quick
            test_ablation_partitioning_required;
        ] );
      ( "victim_timeline",
        [
          Alcotest.test_case "mi6 bit-identical" `Quick
            test_timeline_mi6_identical;
          Alcotest.test_case "baseline perturbed" `Quick
            test_timeline_baseline_differs;
        ] );
      ( "audit",
        [
          Alcotest.test_case "mi6 clean under every attacker" `Quick
            test_audit_mi6_clean_under_every_attacker;
          Alcotest.test_case "baseline leak localized" `Quick
            test_audit_baseline_localizes_leak;
          Alcotest.test_case "attacker names roundtrip" `Quick
            test_attacker_names_roundtrip;
        ] );
      ( "properties",
        qsuite [ prop_mi6_invariant_over_victims; prop_mi6_mshr_invariant ] );
    ]
