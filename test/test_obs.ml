(* Tests for the observability subsystem: log2 histograms, the trace
   ring buffer and its Chrome export, the JSON printer/parser, and the
   metrics registry. *)

open Mi6_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "sum" 0 (Histogram.sum h);
  check_int "p50 of empty" 0 (Histogram.p50 h);
  check_int "p99 of empty" 0 (Histogram.p99 h);
  check_int "max of empty" 0 (Histogram.max h);
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Histogram.mean h)

let test_hist_single () =
  let h = Histogram.create () in
  Histogram.add h 37;
  check_int "count" 1 (Histogram.count h);
  (* Every quantile of a single sample is that sample (the bucket upper
     bound is clamped to the recorded max). *)
  check_int "p50" 37 (Histogram.p50 h);
  check_int "p95" 37 (Histogram.p95 h);
  check_int "p99" 37 (Histogram.p99 h);
  check_int "min" 37 (Histogram.min h);
  check_int "max" 37 (Histogram.max h)

let test_hist_bucket_boundaries () =
  (* Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i). *)
  check_int "0" 0 (Histogram.bucket_of 0);
  check_int "1" 1 (Histogram.bucket_of 1);
  check_int "2" 2 (Histogram.bucket_of 2);
  check_int "3" 2 (Histogram.bucket_of 3);
  check_int "4" 3 (Histogram.bucket_of 4);
  check_int "7" 3 (Histogram.bucket_of 7);
  check_int "8" 4 (Histogram.bucket_of 8);
  check_int "1023" 10 (Histogram.bucket_of 1023);
  check_int "1024" 11 (Histogram.bucket_of 1024);
  check_int "max_int lands in last bucket" (Histogram.nbuckets - 1)
    (Histogram.bucket_of max_int);
  (* lo/hi are consistent with bucket_of at both edges of every bucket. *)
  for i = 1 to 40 do
    let lo = Histogram.bucket_lo i and hi = Histogram.bucket_hi i in
    check_int (Printf.sprintf "lo of bucket %d" i) i (Histogram.bucket_of lo);
    check_int (Printf.sprintf "hi of bucket %d" i) i (Histogram.bucket_of hi)
  done

let test_hist_quantiles_uniform () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  check_int "count" 1000 (Histogram.count h);
  check_int "sum" 500500 (Histogram.sum h);
  (* Log2 buckets: quantiles are upper bounds of the holding bucket, so
     p50 of 1..1000 is in [500, 512) -> reported 511. *)
  check_int "p50 bucket hi" 511 (Histogram.p50 h);
  (* p99 rank 990 falls in the [512, 1024) bucket, clamped to max. *)
  check_int "p99 clamped to max" 1000 (Histogram.p99 h);
  check_int "min" 1 (Histogram.min h);
  check_int "max" 1000 (Histogram.max h)

let test_hist_negative_clamps () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  check_int "negative clamps to 0" 1 (Histogram.count h);
  check_int "stored as 0" 0 (Histogram.max h)

let test_hist_merge_reset () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10;
  Histogram.add b 100;
  Histogram.merge ~into:a b;
  check_int "merged count" 2 (Histogram.count a);
  check_int "merged max" 100 (Histogram.max a);
  Histogram.reset a;
  check_int "reset count" 0 (Histogram.count a)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let ev k = Trace.Arb_grant { core = k land 1; kind = "req" }

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:8 () in
  for k = 0 to 19 do
    Trace.emit t ~now:k (ev k)
  done;
  check_int "length capped at capacity" 8 (Trace.length t);
  check_int "dropped oldest" 12 (Trace.dropped t);
  (* Survivors are exactly the 8 newest, oldest first. *)
  let cycles = List.map fst (Trace.events t) in
  Alcotest.(check (list int)) "newest retained, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    cycles

let test_trace_filter () =
  let t = Trace.create ~capacity:16 ~filter:[ Trace.Purge ] () in
  check_bool "purge active" true (Trace.active t Trace.Purge);
  check_bool "llc filtered out" false (Trace.active t Trace.Llc);
  Trace.emit t ~now:1 (ev 0);
  Trace.emit t ~now:2 (Trace.Purge_begin { core = 0; kind = "enter" });
  check_int "only purge recorded" 1 (Trace.length t)

let test_trace_null_disabled () =
  let t = Trace.null in
  check_bool "never active" false (Trace.active t Trace.Llc);
  Trace.emit t ~now:1 (ev 0);
  check_int "emit is a no-op" 0 (Trace.length t)

let test_trace_reset () =
  let t = Trace.create ~capacity:4 () in
  for k = 0 to 9 do
    Trace.emit t ~now:k (ev k)
  done;
  Trace.reset t;
  check_int "empty after reset" 0 (Trace.length t);
  check_int "drops zeroed" 0 (Trace.dropped t)

let test_trace_chrome_json () =
  let t = Trace.create ~capacity:64 () in
  Trace.emit t ~now:5 (Trace.Arb_grant { core = 1; kind = "req" });
  Trace.emit t ~now:6 (Trace.Purge_begin { core = 0; kind = "enter" });
  Trace.emit t ~now:90 (Trace.Purge_end { core = 0; cycles = 84 });
  Trace.emit t ~now:7 (Trace.Counter { core = 0; name = "rob"; value = 12 });
  let json = Trace.to_chrome_json t in
  (* The export must round-trip through our own parser. *)
  let reparsed = Json.of_string (Json.to_string json) in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_int "one trace-event per emitted event" 4 (List.length events);
  let phases =
    List.filter_map
      (fun e ->
        match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
      events
    |> List.sort compare
  in
  Alcotest.(check (list string)) "instant, begin/end pair, counter"
    [ "B"; "C"; "E"; "i" ] phases

let test_trace_event_labels_stable () =
  check_str "arb label" "arb_grant core=1 kind=req"
    (Trace.event_label (Trace.Arb_grant { core = 1; kind = "req" }));
  check_str "mshr label" "mshr_alloc core=0 idx=3 line=0x2a"
    (Trace.event_label (Trace.Mshr_alloc { core = 0; idx = 3; line = 42 }))

(* Merging two histograms must be indistinguishable from one histogram
   fed the pooled samples — counts, extremes, and every quantile. *)
let test_hist_merge_matches_pooled =
  let gen = QCheck.(pair (list (int_bound 5000)) (list (int_bound 5000))) in
  QCheck.Test.make ~name:"merge equals pooled samples" ~count:200 gen
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      let pooled = Histogram.create () in
      List.iter
        (fun v ->
          Histogram.add a v;
          Histogram.add pooled v)
        xs;
      List.iter
        (fun v ->
          Histogram.add b v;
          Histogram.add pooled v)
        ys;
      Histogram.merge ~into:a b;
      Histogram.count a = Histogram.count pooled
      && Histogram.sum a = Histogram.sum pooled
      && Histogram.min a = Histogram.min pooled
      && Histogram.max a = Histogram.max pooled
      && Histogram.buckets a = Histogram.buckets pooled
      && List.for_all
           (fun q -> Histogram.quantile a q = Histogram.quantile pooled q)
           [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let test_trace_drop_accounting () =
  (* length + dropped always equals the number of accepted emits. *)
  let t = Trace.create ~capacity:4 () in
  for k = 0 to 99 do
    Trace.emit t ~now:k (ev k);
    check_int
      (Printf.sprintf "emit %d conserved" k)
      (k + 1)
      (Trace.length t + Trace.dropped t)
  done;
  check_int "length capped" 4 (Trace.length t);
  check_int "drops" 96 (Trace.dropped t);
  (* Filtered-out events are rejected, not dropped: the drop counter
     only counts ring overwrites. *)
  let f = Trace.create ~capacity:4 ~filter:[ Trace.Purge ] () in
  for k = 0 to 9 do
    Trace.emit f ~now:k (ev k)
  done;
  check_int "filtered emits not counted as drops" 0 (Trace.dropped f);
  check_int "filtered emits not stored" 0 (Trace.length f)

(* One instance of every event constructor: the audit layer compares
   streams by (cycle, label), so labels and core attribution are part of
   the stable API surface. *)
let every_event =
  [
    ( Trace.Counter { core = 2; name = "rob"; value = 12 },
      Some 2, "counter core=2 rob=12" );
    (Trace.Cache_miss { cache = "l1d.0"; line = 42 }, None,
     "miss l1d.0 line=0x2a");
    (Trace.Cache_fill { cache = "l1d.0"; line = 42 }, None,
     "fill l1d.0 line=0x2a");
    (Trace.Arb_grant { core = 1; kind = "creq" }, Some 1,
     "arb_grant core=1 kind=creq");
    (Trace.Arb_idle { core = 3 }, Some 3, "arb_idle core=3");
    (Trace.Mshr_alloc { core = 0; idx = 3; line = 42 }, Some 0,
     "mshr_alloc core=0 idx=3 line=0x2a");
    (Trace.Mshr_free { core = 0; idx = 3 }, Some 0, "mshr_free core=0 idx=3");
    (Trace.Uq_send { core = 1; line = 42 }, Some 1, "uq_send core=1 line=0x2a");
    (Trace.Dq_retry { core = 1; idx = 2 }, Some 1, "dq_retry core=1 idx=2");
    ( Trace.Dram_cmd { bank = 4; read = true; row_hit = false; line = 42 },
      None, "dram_read bank=4 row_miss line=0x2a" );
    (Trace.Purge_begin { core = 0; kind = "enter" }, Some 0,
     "purge_begin core=0 kind=enter");
    (Trace.Purge_phase { core = 0; phase = "caches" }, Some 0,
     "purge_phase core=0 phase=caches");
    (Trace.Purge_end { core = 0; cycles = 84 }, Some 0,
     "purge_end core=0 cycles=84");
    (Trace.Walk_start { core = 1; vpage = 7 }, Some 1,
     "walk_start core=1 vpage=0x7");
    (Trace.Walk_end { core = 1; vpage = 7; reads = 2 }, Some 1,
     "walk_end core=1 vpage=0x7 reads=2");
  ]

let test_trace_event_api_stable () =
  List.iter
    (fun (ev, core, label) ->
      check_str label label (Trace.event_label ev);
      Alcotest.(check (option int)) label core (Trace.event_core ev))
    every_event;
  (* Labels are pairwise distinct: no two constructors can alias in a
     stream comparison. *)
  let labels = List.map (fun (ev, _, _) -> Trace.event_label ev) every_event in
  check_int "distinct labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("c\"d", Json.String "line\nbreak");
      ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "parsed garbage %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_scoping_and_export () =
  let m = Metrics.create () in
  let s = Mi6_util.Stats.create () in
  Mi6_util.Stats.add s "misses" 7;
  Metrics.add_stats m ~scope:"llc" s;
  Metrics.set_int m ~name:"run.cycles" 123;
  let h = Histogram.create () in
  Histogram.add h 4;
  Metrics.add_histogram m ~name:"core.0.load_latency" h;
  Alcotest.(check (list (pair string int)))
    "qualified + sorted counters"
    [ ("llc.misses", 7); ("run.cycles", 123) ]
    (Metrics.counters m);
  let json = Json.of_string (Json.to_string (Metrics.to_json m)) in
  (match Json.member "llc" json with
  | Some (Json.Obj [ ("misses", Json.Int 7) ]) -> ()
  | _ -> Alcotest.fail "nested llc.misses missing");
  check_bool "histograms key present" true
    (Json.member "histograms" json <> None);
  let csv = Metrics.to_csv m in
  check_bool "csv has header" true
    (String.length csv > 11 && String.sub csv 0 11 = "name,value\n");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "csv has histogram row" true
    (contains csv "core.0.load_latency.p50,")

(* ------------------------------------------------------------------ *)
(* Cpistack                                                            *)
(* ------------------------------------------------------------------ *)

let test_cpistack_accounting () =
  let s =
    Cpistack.v ~label:"BASE" ~total:100
      [ ("base", 60); ("l1_miss", 30); ("other", 10) ]
  in
  check_int "attributed" 100 (Cpistack.attributed s);
  check_int "residual" 0 (Cpistack.residual s);
  check_bool "sums exactly" true (Cpistack.sums_exactly s);
  check_int "missing category reads 0" 0 (Cpistack.cycles s "purge");
  Alcotest.(check (float 1e-9)) "share" 0.6 (Cpistack.share s "base");
  let leaky = Cpistack.v ~label:"X" ~total:100 [ ("base", 90) ] in
  check_int "residual exposed" 10 (Cpistack.residual leaky);
  check_bool "not exact" false (Cpistack.sums_exactly leaky);
  (match Cpistack.v ~label:"X" ~total:1 [ ("bogus", 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown category accepted")

let test_cpistack_of_counters () =
  (* Reads only the prefixed counters, ignoring everything else. *)
  let s =
    Cpistack.of_counters ~label:"v" ~total:50
      [
        ("core.cpi.base", 20); ("core.cpi.llc_dram", 30);
        ("llc.misses", 999); ("core.commits", 999);
      ]
  in
  check_bool "sums exactly" true (Cpistack.sums_exactly s);
  check_int "base" 20 (Cpistack.cycles s "base");
  check_int "llc_dram" 30 (Cpistack.cycles s "llc_dram")

let test_cpistack_rendering () =
  let s =
    Cpistack.v ~label:"BASE" ~total:10 [ ("base", 6); ("purge", 4) ]
  in
  let folded = Cpistack.to_folded ~stem:"gcc;BASE" s in
  check_bool "folded line present" true
    (List.mem "gcc;BASE;purge 4" (String.split_on_char '\n' folded));
  let table = Cpistack.table [ s ] in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "table names the stack" true (contains table "BASE");
  check_bool "table has the purge row" true (contains table "purge");
  (* JSON rendering reparses and carries the totals. *)
  let json = Json.of_string (Json.to_string (Cpistack.to_json s)) in
  (match Json.member "total_cycles" json with
  | Some (Json.Int 10) -> ()
  | _ -> Alcotest.fail "total_cycles missing")

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

let stream_a =
  [
    (1, Trace.Arb_grant { core = 0; kind = "creq" });
    (2, Trace.Mshr_alloc { core = 0; idx = 0; line = 7 });
    (5, Trace.Dram_cmd { bank = 0; read = true; row_hit = false; line = 7 });
    (9, Trace.Mshr_free { core = 0; idx = 0 });
  ]

let test_audit_identical_streams_clean () =
  let r = Audit.diff stream_a stream_a in
  check_bool "clean" true (Audit.clean r);
  check_bool "no leaking channels" true (Audit.leaking_channels r = []);
  check_bool "no first channel" true (Audit.first_leaking_channel r = None);
  (* Every populated channel reports its event count on both sides. *)
  List.iter
    (fun v ->
      check_int
        (Audit.channel_name v.Audit.v_channel)
        v.Audit.v_events_a v.Audit.v_events_b)
    r.Audit.r_channels

let test_audit_localizes_divergence () =
  (* Same events, but the DRAM command slips by one cycle: only the DRAM
     channel may be blamed, at the right position. *)
  let stream_b =
    List.map
      (fun (c, ev) ->
        match ev with Trace.Dram_cmd _ -> (c + 1, ev) | _ -> (c, ev))
      stream_a
  in
  let r = Audit.diff ~label_a:"idle" ~label_b:"flood" stream_a stream_b in
  check_bool "not clean" false (Audit.clean r);
  (match r.Audit.r_first with
  | Some d ->
    check_int "diverges at the dram event" 2 d.Audit.d_index;
    Alcotest.(check (option int)) "cycle a" (Some 5) d.Audit.d_cycle_a;
    Alcotest.(check (option int)) "cycle b" (Some 6) d.Audit.d_cycle_b
  | None -> Alcotest.fail "no overall divergence");
  (match Audit.leaking_channels r with
  | [ Audit.Dram ] -> ()
  | chs ->
    Alcotest.fail
      (Printf.sprintf "blamed %d channels, wanted exactly dram-cmd"
         (List.length chs)));
  check_bool "first leaking channel" true
    (Audit.first_leaking_channel r = Some Audit.Dram)

let test_audit_length_mismatch () =
  (* A truncated stream diverges at the end-of-stream marker. *)
  let short = [ List.hd stream_a ] in
  let r = Audit.diff stream_a short in
  check_bool "not clean" false (Audit.clean r);
  (match r.Audit.r_first with
  | Some d ->
    check_int "diverges where b ends" 1 d.Audit.d_index;
    Alcotest.(check (option int)) "b ran out" None d.Audit.d_cycle_b;
    check_str "eos label" Audit.eos d.Audit.d_label_b
  | None -> Alcotest.fail "no divergence on truncation");
  (* The report renders and its JSON reparses. *)
  let rendered = Format.asprintf "%a" Audit.pp_report r in
  check_bool "report mentions divergence" true (String.length rendered > 0);
  let json = Json.of_string (Json.to_string (Audit.report_to_json r)) in
  (match Json.member "clean" json with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "clean flag missing")

(* ------------------------------------------------------------------ *)
(* Perfdb                                                              *)
(* ------------------------------------------------------------------ *)

let sample_record ?(run_id = "0001-abc") ?(variant = "BASE") ?(bench = "gcc")
    ?(cycles = 1000) ?(ipc = 0.5) ?host () =
  {
    Perfdb.run_id;
    commit = "abc";
    variant;
    bench;
    cycles;
    instrs = 500;
    ipc;
    cpi = [ ("base", 400); ("llc_dram", 600) ];
    quantiles = [ ("core.0.load_latency", (3, 40, 130)) ];
    host;
  }

let test_perfdb_json_roundtrip () =
  let r = sample_record () in
  match Perfdb.record_of_json (Json.of_string (Json.to_string (Perfdb.record_to_json r))) with
  | Ok r' -> check_bool "roundtrip" true (r = r')
  | Error msg -> Alcotest.fail msg

let test_perfdb_append_load () =
  let path = Filename.temp_file "mi6_history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      check_bool "missing file is empty history" true
        (Perfdb.load ~path = []);
      let run1 =
        [ sample_record (); sample_record ~variant:"F+P+M+A" ~cycles:1200 () ]
      in
      Perfdb.append ~path run1;
      let run2_id =
        Perfdb.next_run_id (Perfdb.load ~path) ~commit:"def"
      in
      check_str "sequential id" "0002-def" run2_id;
      Perfdb.append ~path
        [ sample_record ~run_id:run2_id ~cycles:1100 () ];
      let all = Perfdb.load ~path in
      check_int "all records" 3 (List.length all);
      Alcotest.(check (list string))
        "run ids in order" [ "0001-abc"; "0002-def" ] (Perfdb.run_ids all);
      match Perfdb.latest_two all with
      | Some (prev, latest) ->
        check_int "previous run size" 2 (List.length prev);
        check_int "latest run size" 1 (List.length latest)
      | None -> Alcotest.fail "latest_two missing")

let test_perfdb_compare_runs () =
  let old_run =
    [ sample_record (); sample_record ~variant:"PART" ~cycles:2000 ~ipc:0.8 () ]
  in
  (* Within thresholds: 3% slower is not a regression at 5%. *)
  let ok_run =
    [
      sample_record ~run_id:"0002-abc" ~cycles:1030 ();
      sample_record ~run_id:"0002-abc" ~variant:"PART" ~cycles:2000 ~ipc:0.8 ();
    ]
  in
  check_bool "within thresholds" true
    (Perfdb.compare_runs ~old_run ~new_run:ok_run () = []);
  (* A 10% cycle regression on one pair and an IPC collapse on the other
     must each be reported once, attributed to the right pair. *)
  let bad_run =
    [
      sample_record ~run_id:"0003-abc" ~cycles:1100 ();
      sample_record ~run_id:"0003-abc" ~variant:"PART" ~cycles:2000 ~ipc:0.6 ();
    ]
  in
  let regs = Perfdb.compare_runs ~old_run ~new_run:bad_run () in
  check_int "two regressions" 2 (List.length regs);
  let metric v =
    match
      List.find_opt (fun r -> r.Perfdb.r_variant = v) regs
    with
    | Some r -> r.Perfdb.r_metric
    | None -> "missing"
  in
  check_str "cycle regression on BASE" "cycles" (metric "BASE");
  check_str "ipc regression on PART" "ipc" (metric "PART");
  (* Loosening the thresholds silences both. *)
  check_bool "loose thresholds pass" true
    (Perfdb.compare_runs ~max_cycle_regress_pct:50.0 ~max_ipc_drop_pct:50.0
       ~old_run ~new_run:bad_run ()
    = [])

let test_perfdb_host_roundtrip () =
  let host =
    { Perfdb.wall_s = 1.5; kips = 800.0; phases = [ ("fetch", 12.5) ] }
  in
  let r = sample_record ~host () in
  (match
     Perfdb.record_of_json
       (Json.of_string (Json.to_string (Perfdb.record_to_json r)))
   with
  | Ok r' -> check_bool "host roundtrip" true (r = r')
  | Error msg -> Alcotest.fail msg);
  (* A hostless record omits the field entirely and reparses as None:
     pre-host histories stay loadable (the schema is append-only). *)
  let bare = sample_record () in
  let json = Json.to_string (Perfdb.record_to_json bare) in
  check_bool "no host field serialized" false
    (Json.member "host" (Json.of_string json) <> None);
  match Perfdb.record_of_json (Json.of_string json) with
  | Ok r' -> check_bool "host is None" true (r'.Perfdb.host = None)
  | Error msg -> Alcotest.fail msg

let test_perfdb_kips_gate () =
  let host kips = { Perfdb.wall_s = 1.0; kips; phases = [] } in
  let old_run = [ sample_record ~host:(host 1000.0) () ] in
  (* 60% host-speed drop crosses the (generous) 50% default. *)
  let slow =
    [ sample_record ~run_id:"0002-abc" ~host:(host 400.0) () ]
  in
  (match Perfdb.compare_runs ~old_run ~new_run:slow () with
  | [ r ] ->
    check_str "kips metric" "kips" r.Perfdb.r_metric;
    check_bool "delta is the drop" true (r.Perfdb.r_delta_pct > 50.0)
  | regs -> Alcotest.failf "expected 1 kips regression, got %d"
              (List.length regs));
  (* 40% stays under the default threshold; a missing host section on
     either side disables the gate rather than firing it. *)
  check_bool "40% drop passes" true
    (Perfdb.compare_runs ~old_run
       ~new_run:[ sample_record ~run_id:"0002-abc" ~host:(host 600.0) () ]
       ()
    = []);
  check_bool "hostless new run passes" true
    (Perfdb.compare_runs ~old_run
       ~new_run:[ sample_record ~run_id:"0002-abc" () ]
       ()
    = [])

(* ------------------------------------------------------------------ *)
(* Trace drop-kind accounting                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_drop_kinds () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 4 do
    Trace.emit t ~now:i (Trace.Arb_grant { core = 0; kind = "creq" })
  done;
  check_int "nothing dropped yet" 0 (Trace.dropped t);
  check_bool "no breakdown yet" true (Trace.dropped_by_kind t = []);
  (* Three more events overwrite the three oldest arb_grants: the drop is
     charged to the kind overwritten, not the kind arriving. *)
  for i = 5 to 7 do
    Trace.emit t ~now:i (Trace.Mshr_alloc { core = 0; idx = 0; line = i })
  done;
  check_int "three dropped" 3 (Trace.dropped t);
  check_bool "all charged to arb_grant" true
    (Trace.dropped_by_kind t = [ ("arb_grant", 3) ]);
  (match Trace.dominant_dropped t with
  | Some ("arb_grant", 3) -> ()
  | _ -> Alcotest.fail "dominant_dropped should be arb_grant x3");
  (* Overwrite the remaining arb_grant and two mshr_allocs: mshr_alloc
     ties nothing — arb_grant 4 still dominates. *)
  for i = 8 to 10 do
    Trace.emit t ~now:i (Trace.Uq_send { core = 1; line = i })
  done;
  check_int "six dropped" 6 (Trace.dropped t);
  check_bool "breakdown sorted by count" true
    (Trace.dropped_by_kind t = [ ("arb_grant", 4); ("mshr_alloc", 2) ]);
  (* The sum of the breakdown always equals the total drop counter. *)
  check_int "breakdown conserves total" (Trace.dropped t)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Trace.dropped_by_kind t));
  Trace.reset t;
  check_bool "reset clears breakdown" true (Trace.dropped_by_kind t = [])

(* ------------------------------------------------------------------ *)
(* Selfprof                                                            *)
(* ------------------------------------------------------------------ *)

let test_selfprof_phases_sum_to_wall () =
  let sp = Selfprof.create () in
  check_bool "enabled" true (Selfprof.enabled sp);
  Selfprof.run_begin sp;
  (* Charge some real work to two phases; everything else lands in
     harness. *)
  let spin () =
    let x = ref 0 in
    for i = 1 to 200_000 do x := !x + i done;
    ignore !x
  in
  let p = Selfprof.switch sp Selfprof.ph_fetch in
  spin ();
  ignore (Selfprof.switch sp Selfprof.ph_llc);
  spin ();
  Selfprof.restore sp p;
  spin ();
  Selfprof.run_end sp ~cycles:1000 ~instrs:500;
  let wall = Selfprof.wall_seconds sp in
  check_bool "wall positive" true (wall > 0.0);
  check_int "cycles recorded" 1000 (Selfprof.cycles sp);
  let report = Selfprof.report sp in
  check_int "one row per phase" Selfprof.n_phases (List.length report);
  (* The attribution invariant: between run_begin and run_end every
     instant belongs to exactly one phase, so phase seconds sum to the
     wall time (up to clock rounding). *)
  let sum = List.fold_left (fun acc (_, s, _, _) -> acc +. s) 0.0 report in
  check_bool "phases sum to wall" true (abs_float (sum -. wall) < 0.05 *. wall +. 1e-6);
  check_bool "fetch charged" true (Selfprof.phase_seconds sp Selfprof.ph_fetch > 0.0);
  check_bool "llc charged" true (Selfprof.phase_seconds sp Selfprof.ph_llc > 0.0);
  check_bool "harness charged" true
    (Selfprof.phase_seconds sp Selfprof.ph_harness > 0.0);
  check_bool "kips positive" true (Selfprof.overall_kips sp > 0.0);
  check_bool "series has the run point" true (Selfprof.kips_series sp <> [])

let test_selfprof_null_disabled () =
  let sp = Selfprof.null in
  check_bool "disabled" false (Selfprof.enabled sp);
  Selfprof.run_begin sp;
  let p = Selfprof.switch sp Selfprof.ph_dram in
  Selfprof.restore sp p;
  Selfprof.sample sp ~cycles:10 ~instrs:5;
  Selfprof.run_end sp ~cycles:10 ~instrs:5;
  Alcotest.(check (float 0.0)) "no wall" 0.0 (Selfprof.wall_seconds sp);
  check_int "no cycles" 0 (Selfprof.cycles sp)

(* ------------------------------------------------------------------ *)
(* Occupancy / quiet-cycle detector                                    *)
(* ------------------------------------------------------------------ *)

let test_occupancy_quiet_detection () =
  let o = Occupancy.create () in
  (* First cycle can never be quiet (no previous signature); repeats of
     the same signature are quiet; any change is not. *)
  Occupancy.note_cycle o ~signature:42 ~cause:0;
  Occupancy.note_cycle o ~signature:42 ~cause:3;
  Occupancy.note_cycle o ~signature:42 ~cause:3;
  Occupancy.note_cycle o ~signature:7 ~cause:0;
  Occupancy.note_cycle o ~signature:7 ~cause:5;
  check_int "cycles" 5 (Occupancy.cycles o);
  check_int "quiet" 3 (Occupancy.quiet_cycles o);
  Alcotest.(check (float 1e-9)) "fraction" 0.6 (Occupancy.quiet_fraction o);
  (* Per-cause attribution: base saw 2 cycles 0 quiet, llc_dram 2/2,
     purge 1/1. *)
  check_bool "by_cause" true
    (Occupancy.by_cause o
    = [ ("base", 0, 2); ("llc_dram", 2, 2); ("purge", 1, 1) ]);
  (* An out-of-range cause lands in the catch-all last category. *)
  Occupancy.note_cycle o ~signature:7 ~cause:99;
  check_bool "overflow cause is other" true
    (List.mem_assoc "other"
       (List.map (fun (c, q, _) -> (c, q)) (Occupancy.by_cause o)))

let test_occupancy_sample_and_register () =
  let o = Occupancy.create () in
  for i = 1 to 10 do
    Occupancy.sample o ~rob:i ~iq:2 ~lq:1 ~sq:0 ~sb:1 ~mshr:4
  done;
  Occupancy.note_cycle o ~signature:1 ~cause:0;
  let reg = Metrics.create () in
  Occupancy.register o reg;
  let hists = Metrics.histograms reg in
  check_bool "rob histogram registered" true
    (List.mem_assoc "occupancy.rob" hists);
  check_int "rob samples" 10
    (Histogram.count (List.assoc "occupancy.rob" hists));
  check_int "quiet gauge" 1
    (List.assoc "quiet.cycles" (Metrics.counters reg));
  (* The disabled singleton samples and registers nothing. *)
  let reg' = Metrics.create () in
  Occupancy.sample Occupancy.null ~rob:9 ~iq:9 ~lq:9 ~sq:9 ~sb:9 ~mshr:9;
  Occupancy.register Occupancy.null reg';
  check_bool "null registers nothing" true (Metrics.counters reg' = [])

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "mi6_telemetry" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let drive_stream ?deterministic ~every ~upto path =
  let t = Telemetry.create ?deterministic ~every ~path () in
  for cycle = 1 to upto do
    Telemetry.maybe_emit t ~cycle ~instrs:(cycle / 2)
      ~counters:(fun () -> [ ("core.cycles", cycle); ("zero", 0) ])
      ~occupancy:Occupancy.null ~selfprof:Selfprof.null
  done;
  let n = Telemetry.snapshots t in
  Telemetry.close t;
  n

let test_telemetry_stream_validates () =
  with_temp_file @@ fun path ->
  let n = drive_stream ~every:10 ~upto:35 path in
  check_int "three snapshots" 3 n;
  (match Telemetry.validate_file ~path with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "validated %d snapshots, expected 3" n
  | Error msg -> Alcotest.fail msg);
  (* Appending garbage makes validation fail with the line number. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{not json\n";
  close_out oc;
  match Telemetry.validate_file ~path with
  | Error msg -> check_bool "names line 4" true
                   (String.length msg >= 6 && String.sub msg 0 6 = "line 4")
  | Ok _ -> Alcotest.fail "garbage line must not validate"

let test_telemetry_deterministic_streams_identical () =
  with_temp_file @@ fun p1 ->
  with_temp_file @@ fun p2 ->
  ignore (drive_stream ~deterministic:true ~every:7 ~upto:50 p1);
  ignore (drive_stream ~deterministic:true ~every:7 ~upto:50 p2);
  let slurp p =
    let ic = open_in p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let s1 = slurp p1 in
  check_bool "byte-identical reruns" true (s1 = slurp p2);
  (* Deterministic mode must omit every host-derived field. *)
  check_bool "no host section" false
    (let sub = "\"host\"" in
     let rec find i =
       i + String.length sub <= String.length s1
       && (String.sub s1 i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let test_telemetry_counter_deltas () =
  with_temp_file @@ fun path ->
  let t = Telemetry.create ~deterministic:true ~every:10 ~path () in
  let counters = ref [ ("a", 5) ] in
  Telemetry.maybe_emit t ~cycle:10 ~instrs:1
    ~counters:(fun () -> !counters)
    ~occupancy:Occupancy.null ~selfprof:Selfprof.null;
  counters := [ ("a", 12); ("b", 3) ];
  Telemetry.maybe_emit t ~cycle:20 ~instrs:2
    ~counters:(fun () -> !counters)
    ~occupancy:Occupancy.null ~selfprof:Selfprof.null;
  Telemetry.close t;
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  let delta line name =
    match Json.member "counters" (Json.of_string line) with
    | Some c -> Json.member name c
    | None -> None
  in
  (* First snapshot carries absolute values, the second the increments
     since; unchanged/zero counters are elided. *)
  check_bool "first a=5" true (delta l1 "a" = Some (Json.Int 5));
  check_bool "second a=+7" true (delta l2 "a" = Some (Json.Int 7));
  check_bool "second b=+3" true (delta l2 "b" = Some (Json.Int 3))

(* ---------- Replay flight recorder ---------- *)

(* Checkpoints are just recorded cycle numbers: Replay is generic, so a
   trivial save thunk exercises the ring logic in isolation. *)
let make_recorder ~interval ~capacity =
  let clock = ref 0 in
  let t =
    Replay.create ~interval ~capacity ~save:(fun () -> !clock) ~cycle_of:Fun.id
  in
  (t, clock)

let test_replay_records_every_interval () =
  let t, clock = make_recorder ~interval:10 ~capacity:100 in
  for c = 0 to 95 do
    clock := c;
    Replay.observe t ~cycle:c
  done;
  Alcotest.(check int) "taken" 10 (Replay.taken t);
  Alcotest.(check (list int)) "checkpoints"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (Replay.checkpoints t)

let test_replay_ring_bounds_memory () =
  let t, clock = make_recorder ~interval:10 ~capacity:3 in
  for c = 0 to 95 do
    clock := c;
    Replay.observe t ~cycle:c
  done;
  Alcotest.(check int) "retained" 3 (Replay.count t);
  Alcotest.(check int) "taken" 10 (Replay.taken t);
  Alcotest.(check (list int)) "only the newest survive" [ 70; 80; 90 ]
    (Replay.checkpoints t);
  Alcotest.(check (option int)) "oldest" (Some 70) (Replay.oldest_cycle t)

let test_replay_nearest () =
  let t, clock = make_recorder ~interval:10 ~capacity:4 in
  for c = 0 to 59 do
    clock := c;
    Replay.observe t ~cycle:c
  done;
  (* Retained: 20 30 40 50. *)
  Alcotest.(check (option int)) "exact hit" (Some 40)
    (Replay.nearest t ~cycle:40);
  Alcotest.(check (option int)) "rounds down" (Some 40)
    (Replay.nearest t ~cycle:49);
  Alcotest.(check (option int)) "newest" (Some 50) (Replay.nearest t ~cycle:999);
  Alcotest.(check (option int)) "fell off the ring" None
    (Replay.nearest t ~cycle:15)

let test_replay_rejects_bad_args () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "zero interval" true
    (raises (fun () ->
         Replay.create ~interval:0 ~capacity:1 ~save:(fun () -> 0)
           ~cycle_of:Fun.id));
  Alcotest.(check bool) "zero capacity" true
    (raises (fun () ->
         Replay.create ~interval:1 ~capacity:0 ~save:(fun () -> 0)
           ~cycle_of:Fun.id))

let () =
  Alcotest.run "mi6_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "uniform quantiles" `Quick
            test_hist_quantiles_uniform;
          Alcotest.test_case "negative clamps" `Quick test_hist_negative_clamps;
          Alcotest.test_case "merge and reset" `Quick test_hist_merge_reset;
          QCheck_alcotest.to_alcotest test_hist_merge_matches_pooled;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring overflow drops oldest" `Quick
            test_trace_ring_overflow;
          Alcotest.test_case "drop accounting conserved" `Quick
            test_trace_drop_accounting;
          Alcotest.test_case "category filter" `Quick test_trace_filter;
          Alcotest.test_case "null trace disabled" `Quick
            test_trace_null_disabled;
          Alcotest.test_case "reset" `Quick test_trace_reset;
          Alcotest.test_case "chrome json export" `Quick test_trace_chrome_json;
          Alcotest.test_case "stable labels" `Quick
            test_trace_event_labels_stable;
          Alcotest.test_case "event core/label stable for every constructor"
            `Quick test_trace_event_api_stable;
          Alcotest.test_case "per-kind drop breakdown" `Quick
            test_trace_drop_kinds;
        ] );
      ( "selfprof",
        [
          Alcotest.test_case "phases sum to wall" `Quick
            test_selfprof_phases_sum_to_wall;
          Alcotest.test_case "null profiler disabled" `Quick
            test_selfprof_null_disabled;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "quiet-cycle detection" `Quick
            test_occupancy_quiet_detection;
          Alcotest.test_case "sampling and registration" `Quick
            test_occupancy_sample_and_register;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stream validates" `Quick
            test_telemetry_stream_validates;
          Alcotest.test_case "deterministic streams identical" `Quick
            test_telemetry_deterministic_streams_identical;
          Alcotest.test_case "counter deltas" `Quick
            test_telemetry_counter_deltas;
        ] );
      ( "cpistack",
        [
          Alcotest.test_case "accounting invariants" `Quick
            test_cpistack_accounting;
          Alcotest.test_case "of_counters" `Quick test_cpistack_of_counters;
          Alcotest.test_case "rendering" `Quick test_cpistack_rendering;
        ] );
      ( "audit",
        [
          Alcotest.test_case "identical streams are clean" `Quick
            test_audit_identical_streams_clean;
          Alcotest.test_case "localizes a one-cycle slip" `Quick
            test_audit_localizes_divergence;
          Alcotest.test_case "length mismatch" `Quick test_audit_length_mismatch;
        ] );
      ( "perfdb",
        [
          Alcotest.test_case "record json roundtrip" `Quick
            test_perfdb_json_roundtrip;
          Alcotest.test_case "append and load" `Quick test_perfdb_append_load;
          Alcotest.test_case "compare_runs thresholds" `Quick
            test_perfdb_compare_runs;
          Alcotest.test_case "host section roundtrip" `Quick
            test_perfdb_host_roundtrip;
          Alcotest.test_case "kips regression gate" `Quick
            test_perfdb_kips_gate;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "scoping and export" `Quick
            test_metrics_scoping_and_export;
        ] );
      ( "replay",
        [
          Alcotest.test_case "records every interval" `Quick
            test_replay_records_every_interval;
          Alcotest.test_case "ring bounds memory" `Quick
            test_replay_ring_bounds_memory;
          Alcotest.test_case "nearest checkpoint" `Quick test_replay_nearest;
          Alcotest.test_case "rejects bad arguments" `Quick
            test_replay_rejects_bad_args;
        ] );
    ]
