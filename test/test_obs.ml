(* Tests for the observability subsystem: log2 histograms, the trace
   ring buffer and its Chrome export, the JSON printer/parser, and the
   metrics registry. *)

open Mi6_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "sum" 0 (Histogram.sum h);
  check_int "p50 of empty" 0 (Histogram.p50 h);
  check_int "p99 of empty" 0 (Histogram.p99 h);
  check_int "max of empty" 0 (Histogram.max h);
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Histogram.mean h)

let test_hist_single () =
  let h = Histogram.create () in
  Histogram.add h 37;
  check_int "count" 1 (Histogram.count h);
  (* Every quantile of a single sample is that sample (the bucket upper
     bound is clamped to the recorded max). *)
  check_int "p50" 37 (Histogram.p50 h);
  check_int "p95" 37 (Histogram.p95 h);
  check_int "p99" 37 (Histogram.p99 h);
  check_int "min" 37 (Histogram.min h);
  check_int "max" 37 (Histogram.max h)

let test_hist_bucket_boundaries () =
  (* Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i). *)
  check_int "0" 0 (Histogram.bucket_of 0);
  check_int "1" 1 (Histogram.bucket_of 1);
  check_int "2" 2 (Histogram.bucket_of 2);
  check_int "3" 2 (Histogram.bucket_of 3);
  check_int "4" 3 (Histogram.bucket_of 4);
  check_int "7" 3 (Histogram.bucket_of 7);
  check_int "8" 4 (Histogram.bucket_of 8);
  check_int "1023" 10 (Histogram.bucket_of 1023);
  check_int "1024" 11 (Histogram.bucket_of 1024);
  check_int "max_int lands in last bucket" (Histogram.nbuckets - 1)
    (Histogram.bucket_of max_int);
  (* lo/hi are consistent with bucket_of at both edges of every bucket. *)
  for i = 1 to 40 do
    let lo = Histogram.bucket_lo i and hi = Histogram.bucket_hi i in
    check_int (Printf.sprintf "lo of bucket %d" i) i (Histogram.bucket_of lo);
    check_int (Printf.sprintf "hi of bucket %d" i) i (Histogram.bucket_of hi)
  done

let test_hist_quantiles_uniform () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  check_int "count" 1000 (Histogram.count h);
  check_int "sum" 500500 (Histogram.sum h);
  (* Log2 buckets: quantiles are upper bounds of the holding bucket, so
     p50 of 1..1000 is in [500, 512) -> reported 511. *)
  check_int "p50 bucket hi" 511 (Histogram.p50 h);
  (* p99 rank 990 falls in the [512, 1024) bucket, clamped to max. *)
  check_int "p99 clamped to max" 1000 (Histogram.p99 h);
  check_int "min" 1 (Histogram.min h);
  check_int "max" 1000 (Histogram.max h)

let test_hist_negative_clamps () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  check_int "negative clamps to 0" 1 (Histogram.count h);
  check_int "stored as 0" 0 (Histogram.max h)

let test_hist_merge_reset () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10;
  Histogram.add b 100;
  Histogram.merge ~into:a b;
  check_int "merged count" 2 (Histogram.count a);
  check_int "merged max" 100 (Histogram.max a);
  Histogram.reset a;
  check_int "reset count" 0 (Histogram.count a)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let ev k = Trace.Arb_grant { core = k land 1; kind = "req" }

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:8 () in
  for k = 0 to 19 do
    Trace.emit t ~now:k (ev k)
  done;
  check_int "length capped at capacity" 8 (Trace.length t);
  check_int "dropped oldest" 12 (Trace.dropped t);
  (* Survivors are exactly the 8 newest, oldest first. *)
  let cycles = List.map fst (Trace.events t) in
  Alcotest.(check (list int)) "newest retained, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    cycles

let test_trace_filter () =
  let t = Trace.create ~capacity:16 ~filter:[ Trace.Purge ] () in
  check_bool "purge active" true (Trace.active t Trace.Purge);
  check_bool "llc filtered out" false (Trace.active t Trace.Llc);
  Trace.emit t ~now:1 (ev 0);
  Trace.emit t ~now:2 (Trace.Purge_begin { core = 0; kind = "enter" });
  check_int "only purge recorded" 1 (Trace.length t)

let test_trace_null_disabled () =
  let t = Trace.null in
  check_bool "never active" false (Trace.active t Trace.Llc);
  Trace.emit t ~now:1 (ev 0);
  check_int "emit is a no-op" 0 (Trace.length t)

let test_trace_reset () =
  let t = Trace.create ~capacity:4 () in
  for k = 0 to 9 do
    Trace.emit t ~now:k (ev k)
  done;
  Trace.reset t;
  check_int "empty after reset" 0 (Trace.length t);
  check_int "drops zeroed" 0 (Trace.dropped t)

let test_trace_chrome_json () =
  let t = Trace.create ~capacity:64 () in
  Trace.emit t ~now:5 (Trace.Arb_grant { core = 1; kind = "req" });
  Trace.emit t ~now:6 (Trace.Purge_begin { core = 0; kind = "enter" });
  Trace.emit t ~now:90 (Trace.Purge_end { core = 0; cycles = 84 });
  Trace.emit t ~now:7 (Trace.Counter { core = 0; name = "rob"; value = 12 });
  let json = Trace.to_chrome_json t in
  (* The export must round-trip through our own parser. *)
  let reparsed = Json.of_string (Json.to_string json) in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_int "one trace-event per emitted event" 4 (List.length events);
  let phases =
    List.filter_map
      (fun e ->
        match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
      events
    |> List.sort compare
  in
  Alcotest.(check (list string)) "instant, begin/end pair, counter"
    [ "B"; "C"; "E"; "i" ] phases

let test_trace_event_labels_stable () =
  check_str "arb label" "arb_grant core=1 kind=req"
    (Trace.event_label (Trace.Arb_grant { core = 1; kind = "req" }));
  check_str "mshr label" "mshr_alloc core=0 idx=3 line=0x2a"
    (Trace.event_label (Trace.Mshr_alloc { core = 0; idx = 3; line = 42 }))

(* Merging two histograms must be indistinguishable from one histogram
   fed the pooled samples — counts, extremes, and every quantile. *)
let test_hist_merge_matches_pooled =
  let gen = QCheck.(pair (list (int_bound 5000)) (list (int_bound 5000))) in
  QCheck.Test.make ~name:"merge equals pooled samples" ~count:200 gen
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      let pooled = Histogram.create () in
      List.iter
        (fun v ->
          Histogram.add a v;
          Histogram.add pooled v)
        xs;
      List.iter
        (fun v ->
          Histogram.add b v;
          Histogram.add pooled v)
        ys;
      Histogram.merge ~into:a b;
      Histogram.count a = Histogram.count pooled
      && Histogram.sum a = Histogram.sum pooled
      && Histogram.min a = Histogram.min pooled
      && Histogram.max a = Histogram.max pooled
      && Histogram.buckets a = Histogram.buckets pooled
      && List.for_all
           (fun q -> Histogram.quantile a q = Histogram.quantile pooled q)
           [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let test_trace_drop_accounting () =
  (* length + dropped always equals the number of accepted emits. *)
  let t = Trace.create ~capacity:4 () in
  for k = 0 to 99 do
    Trace.emit t ~now:k (ev k);
    check_int
      (Printf.sprintf "emit %d conserved" k)
      (k + 1)
      (Trace.length t + Trace.dropped t)
  done;
  check_int "length capped" 4 (Trace.length t);
  check_int "drops" 96 (Trace.dropped t);
  (* Filtered-out events are rejected, not dropped: the drop counter
     only counts ring overwrites. *)
  let f = Trace.create ~capacity:4 ~filter:[ Trace.Purge ] () in
  for k = 0 to 9 do
    Trace.emit f ~now:k (ev k)
  done;
  check_int "filtered emits not counted as drops" 0 (Trace.dropped f);
  check_int "filtered emits not stored" 0 (Trace.length f)

(* One instance of every event constructor: the audit layer compares
   streams by (cycle, label), so labels and core attribution are part of
   the stable API surface. *)
let every_event =
  [
    ( Trace.Counter { core = 2; name = "rob"; value = 12 },
      Some 2, "counter core=2 rob=12" );
    (Trace.Cache_miss { cache = "l1d.0"; line = 42 }, None,
     "miss l1d.0 line=0x2a");
    (Trace.Cache_fill { cache = "l1d.0"; line = 42 }, None,
     "fill l1d.0 line=0x2a");
    (Trace.Arb_grant { core = 1; kind = "creq" }, Some 1,
     "arb_grant core=1 kind=creq");
    (Trace.Arb_idle { core = 3 }, Some 3, "arb_idle core=3");
    (Trace.Mshr_alloc { core = 0; idx = 3; line = 42 }, Some 0,
     "mshr_alloc core=0 idx=3 line=0x2a");
    (Trace.Mshr_free { core = 0; idx = 3 }, Some 0, "mshr_free core=0 idx=3");
    (Trace.Uq_send { core = 1; line = 42 }, Some 1, "uq_send core=1 line=0x2a");
    (Trace.Dq_retry { core = 1; idx = 2 }, Some 1, "dq_retry core=1 idx=2");
    ( Trace.Dram_cmd { bank = 4; read = true; row_hit = false; line = 42 },
      None, "dram_read bank=4 row_miss line=0x2a" );
    (Trace.Purge_begin { core = 0; kind = "enter" }, Some 0,
     "purge_begin core=0 kind=enter");
    (Trace.Purge_phase { core = 0; phase = "caches" }, Some 0,
     "purge_phase core=0 phase=caches");
    (Trace.Purge_end { core = 0; cycles = 84 }, Some 0,
     "purge_end core=0 cycles=84");
    (Trace.Walk_start { core = 1; vpage = 7 }, Some 1,
     "walk_start core=1 vpage=0x7");
    (Trace.Walk_end { core = 1; vpage = 7; reads = 2 }, Some 1,
     "walk_end core=1 vpage=0x7 reads=2");
  ]

let test_trace_event_api_stable () =
  List.iter
    (fun (ev, core, label) ->
      check_str label label (Trace.event_label ev);
      Alcotest.(check (option int)) label core (Trace.event_core ev))
    every_event;
  (* Labels are pairwise distinct: no two constructors can alias in a
     stream comparison. *)
  let labels = List.map (fun (ev, _, _) -> Trace.event_label ev) every_event in
  check_int "distinct labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("c\"d", Json.String "line\nbreak");
      ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "parsed garbage %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_scoping_and_export () =
  let m = Metrics.create () in
  let s = Mi6_util.Stats.create () in
  Mi6_util.Stats.add s "misses" 7;
  Metrics.add_stats m ~scope:"llc" s;
  Metrics.set_int m ~name:"run.cycles" 123;
  let h = Histogram.create () in
  Histogram.add h 4;
  Metrics.add_histogram m ~name:"core.0.load_latency" h;
  Alcotest.(check (list (pair string int)))
    "qualified + sorted counters"
    [ ("llc.misses", 7); ("run.cycles", 123) ]
    (Metrics.counters m);
  let json = Json.of_string (Json.to_string (Metrics.to_json m)) in
  (match Json.member "llc" json with
  | Some (Json.Obj [ ("misses", Json.Int 7) ]) -> ()
  | _ -> Alcotest.fail "nested llc.misses missing");
  check_bool "histograms key present" true
    (Json.member "histograms" json <> None);
  let csv = Metrics.to_csv m in
  check_bool "csv has header" true
    (String.length csv > 11 && String.sub csv 0 11 = "name,value\n");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "csv has histogram row" true
    (contains csv "core.0.load_latency.p50,")

(* ------------------------------------------------------------------ *)
(* Cpistack                                                            *)
(* ------------------------------------------------------------------ *)

let test_cpistack_accounting () =
  let s =
    Cpistack.v ~label:"BASE" ~total:100
      [ ("base", 60); ("l1_miss", 30); ("other", 10) ]
  in
  check_int "attributed" 100 (Cpistack.attributed s);
  check_int "residual" 0 (Cpistack.residual s);
  check_bool "sums exactly" true (Cpistack.sums_exactly s);
  check_int "missing category reads 0" 0 (Cpistack.cycles s "purge");
  Alcotest.(check (float 1e-9)) "share" 0.6 (Cpistack.share s "base");
  let leaky = Cpistack.v ~label:"X" ~total:100 [ ("base", 90) ] in
  check_int "residual exposed" 10 (Cpistack.residual leaky);
  check_bool "not exact" false (Cpistack.sums_exactly leaky);
  (match Cpistack.v ~label:"X" ~total:1 [ ("bogus", 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown category accepted")

let test_cpistack_of_counters () =
  (* Reads only the prefixed counters, ignoring everything else. *)
  let s =
    Cpistack.of_counters ~label:"v" ~total:50
      [
        ("core.cpi.base", 20); ("core.cpi.llc_dram", 30);
        ("llc.misses", 999); ("core.commits", 999);
      ]
  in
  check_bool "sums exactly" true (Cpistack.sums_exactly s);
  check_int "base" 20 (Cpistack.cycles s "base");
  check_int "llc_dram" 30 (Cpistack.cycles s "llc_dram")

let test_cpistack_rendering () =
  let s =
    Cpistack.v ~label:"BASE" ~total:10 [ ("base", 6); ("purge", 4) ]
  in
  let folded = Cpistack.to_folded ~stem:"gcc;BASE" s in
  check_bool "folded line present" true
    (List.mem "gcc;BASE;purge 4" (String.split_on_char '\n' folded));
  let table = Cpistack.table [ s ] in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "table names the stack" true (contains table "BASE");
  check_bool "table has the purge row" true (contains table "purge");
  (* JSON rendering reparses and carries the totals. *)
  let json = Json.of_string (Json.to_string (Cpistack.to_json s)) in
  (match Json.member "total_cycles" json with
  | Some (Json.Int 10) -> ()
  | _ -> Alcotest.fail "total_cycles missing")

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

let stream_a =
  [
    (1, Trace.Arb_grant { core = 0; kind = "creq" });
    (2, Trace.Mshr_alloc { core = 0; idx = 0; line = 7 });
    (5, Trace.Dram_cmd { bank = 0; read = true; row_hit = false; line = 7 });
    (9, Trace.Mshr_free { core = 0; idx = 0 });
  ]

let test_audit_identical_streams_clean () =
  let r = Audit.diff stream_a stream_a in
  check_bool "clean" true (Audit.clean r);
  check_bool "no leaking channels" true (Audit.leaking_channels r = []);
  check_bool "no first channel" true (Audit.first_leaking_channel r = None);
  (* Every populated channel reports its event count on both sides. *)
  List.iter
    (fun v ->
      check_int
        (Audit.channel_name v.Audit.v_channel)
        v.Audit.v_events_a v.Audit.v_events_b)
    r.Audit.r_channels

let test_audit_localizes_divergence () =
  (* Same events, but the DRAM command slips by one cycle: only the DRAM
     channel may be blamed, at the right position. *)
  let stream_b =
    List.map
      (fun (c, ev) ->
        match ev with Trace.Dram_cmd _ -> (c + 1, ev) | _ -> (c, ev))
      stream_a
  in
  let r = Audit.diff ~label_a:"idle" ~label_b:"flood" stream_a stream_b in
  check_bool "not clean" false (Audit.clean r);
  (match r.Audit.r_first with
  | Some d ->
    check_int "diverges at the dram event" 2 d.Audit.d_index;
    Alcotest.(check (option int)) "cycle a" (Some 5) d.Audit.d_cycle_a;
    Alcotest.(check (option int)) "cycle b" (Some 6) d.Audit.d_cycle_b
  | None -> Alcotest.fail "no overall divergence");
  (match Audit.leaking_channels r with
  | [ Audit.Dram ] -> ()
  | chs ->
    Alcotest.fail
      (Printf.sprintf "blamed %d channels, wanted exactly dram-cmd"
         (List.length chs)));
  check_bool "first leaking channel" true
    (Audit.first_leaking_channel r = Some Audit.Dram)

let test_audit_length_mismatch () =
  (* A truncated stream diverges at the end-of-stream marker. *)
  let short = [ List.hd stream_a ] in
  let r = Audit.diff stream_a short in
  check_bool "not clean" false (Audit.clean r);
  (match r.Audit.r_first with
  | Some d ->
    check_int "diverges where b ends" 1 d.Audit.d_index;
    Alcotest.(check (option int)) "b ran out" None d.Audit.d_cycle_b;
    check_str "eos label" Audit.eos d.Audit.d_label_b
  | None -> Alcotest.fail "no divergence on truncation");
  (* The report renders and its JSON reparses. *)
  let rendered = Format.asprintf "%a" Audit.pp_report r in
  check_bool "report mentions divergence" true (String.length rendered > 0);
  let json = Json.of_string (Json.to_string (Audit.report_to_json r)) in
  (match Json.member "clean" json with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "clean flag missing")

(* ------------------------------------------------------------------ *)
(* Perfdb                                                              *)
(* ------------------------------------------------------------------ *)

let sample_record ?(run_id = "0001-abc") ?(variant = "BASE") ?(bench = "gcc")
    ?(cycles = 1000) ?(ipc = 0.5) () =
  {
    Perfdb.run_id;
    commit = "abc";
    variant;
    bench;
    cycles;
    instrs = 500;
    ipc;
    cpi = [ ("base", 400); ("llc_dram", 600) ];
    quantiles = [ ("core.0.load_latency", (3, 40, 130)) ];
  }

let test_perfdb_json_roundtrip () =
  let r = sample_record () in
  match Perfdb.record_of_json (Json.of_string (Json.to_string (Perfdb.record_to_json r))) with
  | Ok r' -> check_bool "roundtrip" true (r = r')
  | Error msg -> Alcotest.fail msg

let test_perfdb_append_load () =
  let path = Filename.temp_file "mi6_history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      check_bool "missing file is empty history" true
        (Perfdb.load ~path = []);
      let run1 =
        [ sample_record (); sample_record ~variant:"F+P+M+A" ~cycles:1200 () ]
      in
      Perfdb.append ~path run1;
      let run2_id =
        Perfdb.next_run_id (Perfdb.load ~path) ~commit:"def"
      in
      check_str "sequential id" "0002-def" run2_id;
      Perfdb.append ~path
        [ sample_record ~run_id:run2_id ~cycles:1100 () ];
      let all = Perfdb.load ~path in
      check_int "all records" 3 (List.length all);
      Alcotest.(check (list string))
        "run ids in order" [ "0001-abc"; "0002-def" ] (Perfdb.run_ids all);
      match Perfdb.latest_two all with
      | Some (prev, latest) ->
        check_int "previous run size" 2 (List.length prev);
        check_int "latest run size" 1 (List.length latest)
      | None -> Alcotest.fail "latest_two missing")

let test_perfdb_compare_runs () =
  let old_run =
    [ sample_record (); sample_record ~variant:"PART" ~cycles:2000 ~ipc:0.8 () ]
  in
  (* Within thresholds: 3% slower is not a regression at 5%. *)
  let ok_run =
    [
      sample_record ~run_id:"0002-abc" ~cycles:1030 ();
      sample_record ~run_id:"0002-abc" ~variant:"PART" ~cycles:2000 ~ipc:0.8 ();
    ]
  in
  check_bool "within thresholds" true
    (Perfdb.compare_runs ~old_run ~new_run:ok_run () = []);
  (* A 10% cycle regression on one pair and an IPC collapse on the other
     must each be reported once, attributed to the right pair. *)
  let bad_run =
    [
      sample_record ~run_id:"0003-abc" ~cycles:1100 ();
      sample_record ~run_id:"0003-abc" ~variant:"PART" ~cycles:2000 ~ipc:0.6 ();
    ]
  in
  let regs = Perfdb.compare_runs ~old_run ~new_run:bad_run () in
  check_int "two regressions" 2 (List.length regs);
  let metric v =
    match
      List.find_opt (fun r -> r.Perfdb.r_variant = v) regs
    with
    | Some r -> r.Perfdb.r_metric
    | None -> "missing"
  in
  check_str "cycle regression on BASE" "cycles" (metric "BASE");
  check_str "ipc regression on PART" "ipc" (metric "PART");
  (* Loosening the thresholds silences both. *)
  check_bool "loose thresholds pass" true
    (Perfdb.compare_runs ~max_cycle_regress_pct:50.0 ~max_ipc_drop_pct:50.0
       ~old_run ~new_run:bad_run ()
    = [])

let () =
  Alcotest.run "mi6_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "uniform quantiles" `Quick
            test_hist_quantiles_uniform;
          Alcotest.test_case "negative clamps" `Quick test_hist_negative_clamps;
          Alcotest.test_case "merge and reset" `Quick test_hist_merge_reset;
          QCheck_alcotest.to_alcotest test_hist_merge_matches_pooled;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring overflow drops oldest" `Quick
            test_trace_ring_overflow;
          Alcotest.test_case "drop accounting conserved" `Quick
            test_trace_drop_accounting;
          Alcotest.test_case "category filter" `Quick test_trace_filter;
          Alcotest.test_case "null trace disabled" `Quick
            test_trace_null_disabled;
          Alcotest.test_case "reset" `Quick test_trace_reset;
          Alcotest.test_case "chrome json export" `Quick test_trace_chrome_json;
          Alcotest.test_case "stable labels" `Quick
            test_trace_event_labels_stable;
          Alcotest.test_case "event core/label stable for every constructor"
            `Quick test_trace_event_api_stable;
        ] );
      ( "cpistack",
        [
          Alcotest.test_case "accounting invariants" `Quick
            test_cpistack_accounting;
          Alcotest.test_case "of_counters" `Quick test_cpistack_of_counters;
          Alcotest.test_case "rendering" `Quick test_cpistack_rendering;
        ] );
      ( "audit",
        [
          Alcotest.test_case "identical streams are clean" `Quick
            test_audit_identical_streams_clean;
          Alcotest.test_case "localizes a one-cycle slip" `Quick
            test_audit_localizes_divergence;
          Alcotest.test_case "length mismatch" `Quick test_audit_length_mismatch;
        ] );
      ( "perfdb",
        [
          Alcotest.test_case "record json roundtrip" `Quick
            test_perfdb_json_roundtrip;
          Alcotest.test_case "append and load" `Quick test_perfdb_append_load;
          Alcotest.test_case "compare_runs thresholds" `Quick
            test_perfdb_compare_runs;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "scoping and export" `Quick
            test_metrics_scoping_and_export;
        ] );
    ]
