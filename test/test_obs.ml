(* Tests for the observability subsystem: log2 histograms, the trace
   ring buffer and its Chrome export, the JSON printer/parser, and the
   metrics registry. *)

open Mi6_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "sum" 0 (Histogram.sum h);
  check_int "p50 of empty" 0 (Histogram.p50 h);
  check_int "p99 of empty" 0 (Histogram.p99 h);
  check_int "max of empty" 0 (Histogram.max h);
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Histogram.mean h)

let test_hist_single () =
  let h = Histogram.create () in
  Histogram.add h 37;
  check_int "count" 1 (Histogram.count h);
  (* Every quantile of a single sample is that sample (the bucket upper
     bound is clamped to the recorded max). *)
  check_int "p50" 37 (Histogram.p50 h);
  check_int "p95" 37 (Histogram.p95 h);
  check_int "p99" 37 (Histogram.p99 h);
  check_int "min" 37 (Histogram.min h);
  check_int "max" 37 (Histogram.max h)

let test_hist_bucket_boundaries () =
  (* Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i). *)
  check_int "0" 0 (Histogram.bucket_of 0);
  check_int "1" 1 (Histogram.bucket_of 1);
  check_int "2" 2 (Histogram.bucket_of 2);
  check_int "3" 2 (Histogram.bucket_of 3);
  check_int "4" 3 (Histogram.bucket_of 4);
  check_int "7" 3 (Histogram.bucket_of 7);
  check_int "8" 4 (Histogram.bucket_of 8);
  check_int "1023" 10 (Histogram.bucket_of 1023);
  check_int "1024" 11 (Histogram.bucket_of 1024);
  check_int "max_int lands in last bucket" (Histogram.nbuckets - 1)
    (Histogram.bucket_of max_int);
  (* lo/hi are consistent with bucket_of at both edges of every bucket. *)
  for i = 1 to 40 do
    let lo = Histogram.bucket_lo i and hi = Histogram.bucket_hi i in
    check_int (Printf.sprintf "lo of bucket %d" i) i (Histogram.bucket_of lo);
    check_int (Printf.sprintf "hi of bucket %d" i) i (Histogram.bucket_of hi)
  done

let test_hist_quantiles_uniform () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h v
  done;
  check_int "count" 1000 (Histogram.count h);
  check_int "sum" 500500 (Histogram.sum h);
  (* Log2 buckets: quantiles are upper bounds of the holding bucket, so
     p50 of 1..1000 is in [500, 512) -> reported 511. *)
  check_int "p50 bucket hi" 511 (Histogram.p50 h);
  (* p99 rank 990 falls in the [512, 1024) bucket, clamped to max. *)
  check_int "p99 clamped to max" 1000 (Histogram.p99 h);
  check_int "min" 1 (Histogram.min h);
  check_int "max" 1000 (Histogram.max h)

let test_hist_negative_clamps () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  check_int "negative clamps to 0" 1 (Histogram.count h);
  check_int "stored as 0" 0 (Histogram.max h)

let test_hist_merge_reset () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10;
  Histogram.add b 100;
  Histogram.merge ~into:a b;
  check_int "merged count" 2 (Histogram.count a);
  check_int "merged max" 100 (Histogram.max a);
  Histogram.reset a;
  check_int "reset count" 0 (Histogram.count a)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let ev k = Trace.Arb_grant { core = k land 1; kind = "req" }

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:8 () in
  for k = 0 to 19 do
    Trace.emit t ~now:k (ev k)
  done;
  check_int "length capped at capacity" 8 (Trace.length t);
  check_int "dropped oldest" 12 (Trace.dropped t);
  (* Survivors are exactly the 8 newest, oldest first. *)
  let cycles = List.map fst (Trace.events t) in
  Alcotest.(check (list int)) "newest retained, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    cycles

let test_trace_filter () =
  let t = Trace.create ~capacity:16 ~filter:[ Trace.Purge ] () in
  check_bool "purge active" true (Trace.active t Trace.Purge);
  check_bool "llc filtered out" false (Trace.active t Trace.Llc);
  Trace.emit t ~now:1 (ev 0);
  Trace.emit t ~now:2 (Trace.Purge_begin { core = 0; kind = "enter" });
  check_int "only purge recorded" 1 (Trace.length t)

let test_trace_null_disabled () =
  let t = Trace.null in
  check_bool "never active" false (Trace.active t Trace.Llc);
  Trace.emit t ~now:1 (ev 0);
  check_int "emit is a no-op" 0 (Trace.length t)

let test_trace_reset () =
  let t = Trace.create ~capacity:4 () in
  for k = 0 to 9 do
    Trace.emit t ~now:k (ev k)
  done;
  Trace.reset t;
  check_int "empty after reset" 0 (Trace.length t);
  check_int "drops zeroed" 0 (Trace.dropped t)

let test_trace_chrome_json () =
  let t = Trace.create ~capacity:64 () in
  Trace.emit t ~now:5 (Trace.Arb_grant { core = 1; kind = "req" });
  Trace.emit t ~now:6 (Trace.Purge_begin { core = 0; kind = "enter" });
  Trace.emit t ~now:90 (Trace.Purge_end { core = 0; cycles = 84 });
  Trace.emit t ~now:7 (Trace.Counter { core = 0; name = "rob"; value = 12 });
  let json = Trace.to_chrome_json t in
  (* The export must round-trip through our own parser. *)
  let reparsed = Json.of_string (Json.to_string json) in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_int "one trace-event per emitted event" 4 (List.length events);
  let phases =
    List.filter_map
      (fun e ->
        match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
      events
    |> List.sort compare
  in
  Alcotest.(check (list string)) "instant, begin/end pair, counter"
    [ "B"; "C"; "E"; "i" ] phases

let test_trace_event_labels_stable () =
  check_str "arb label" "arb_grant core=1 kind=req"
    (Trace.event_label (Trace.Arb_grant { core = 1; kind = "req" }));
  check_str "mshr label" "mshr_alloc core=0 idx=3 line=0x2a"
    (Trace.event_label (Trace.Mshr_alloc { core = 0; idx = 3; line = 42 }))

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("c\"d", Json.String "line\nbreak");
      ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "parsed garbage %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_scoping_and_export () =
  let m = Metrics.create () in
  let s = Mi6_util.Stats.create () in
  Mi6_util.Stats.add s "misses" 7;
  Metrics.add_stats m ~scope:"llc" s;
  Metrics.set_int m ~name:"run.cycles" 123;
  let h = Histogram.create () in
  Histogram.add h 4;
  Metrics.add_histogram m ~name:"core.0.load_latency" h;
  Alcotest.(check (list (pair string int)))
    "qualified + sorted counters"
    [ ("llc.misses", 7); ("run.cycles", 123) ]
    (Metrics.counters m);
  let json = Json.of_string (Json.to_string (Metrics.to_json m)) in
  (match Json.member "llc" json with
  | Some (Json.Obj [ ("misses", Json.Int 7) ]) -> ()
  | _ -> Alcotest.fail "nested llc.misses missing");
  check_bool "histograms key present" true
    (Json.member "histograms" json <> None);
  let csv = Metrics.to_csv m in
  check_bool "csv has header" true
    (String.length csv > 11 && String.sub csv 0 11 = "name,value\n");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "csv has histogram row" true
    (contains csv "core.0.load_latency.p50,")

let () =
  Alcotest.run "mi6_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "uniform quantiles" `Quick
            test_hist_quantiles_uniform;
          Alcotest.test_case "negative clamps" `Quick test_hist_negative_clamps;
          Alcotest.test_case "merge and reset" `Quick test_hist_merge_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring overflow drops oldest" `Quick
            test_trace_ring_overflow;
          Alcotest.test_case "category filter" `Quick test_trace_filter;
          Alcotest.test_case "null trace disabled" `Quick
            test_trace_null_disabled;
          Alcotest.test_case "reset" `Quick test_trace_reset;
          Alcotest.test_case "chrome json export" `Quick test_trace_chrome_json;
          Alcotest.test_case "stable labels" `Quick
            test_trace_event_labels_stable;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "scoping and export" `Quick
            test_metrics_scoping_and_export;
        ] );
    ]
