(* Tests for the static analysis layer (lib/analysis): the secret-taint
   constant-time analyzer and the hardware-invariant linter.

   The centerpiece is a dynamic/static cross-validation property: random
   programs from the shared {!Gen_programs} generator run twice on the
   functional model with two different secret inputs; whenever the two
   committed µop streams differ — i.e. the BASE machine's trace-driven
   timing model could observe the secret — the static analyzer must have
   flagged the program.  (The converse need not hold: the analyzer is an
   over-approximation.) *)

open Mi6_isa
open Mi6_core
module Taint = Mi6_analysis.Taint
module Lint = Mi6_analysis.Lint
module Witness = Mi6_analysis.Witness
module Channel = Mi6_analysis.Channel
module Vset = Mi6_analysis.Vset
module Trace = Mi6_obs.Trace
module Audit = Mi6_obs.Audit
module Json = Mi6_obs.Json
module Llc = Mi6_llc.Llc
module Core_config = Mi6_ooo.Core_config
module L1 = Mi6_cache.L1
module Index = Mi6_cache.Index
module Bitvec = Mi6_util.Bitvec
module Addr = Mi6_mem.Addr
module Gen_programs = Mi6_progen.Gen_programs

(* ------------------------------------------------------------------ *)
(* Soundness: dynamically leaking => statically flagged                 *)
(* ------------------------------------------------------------------ *)

(* a3: outside the generator's scratch pool, never written by the
   prologue, so an [init_regs] seed survives as a program input. *)
let secret_reg = 13
let secret = { Taint.regs = [ secret_reg ]; ranges = [] }

let arbitrary_secret_ops =
  Gen_programs.arbitrary ~extra_srcs:[ secret_reg ] ~indexed:true ()

let assemble_ops ops =
  Asm.assemble ~base:Gen_programs.code_base (Gen_programs.materialize ops)

let committed_uops prog value =
  let run =
    Difftest.run_func
      ~init_regs:[ (secret_reg, value) ]
      ~program:prog ~data_base:Gen_programs.data_base
      ~data_bytes:Gen_programs.data_bytes ~max_steps:20_000 ()
  in
  Difftest.to_uops run ~func_code_base:Gen_programs.code_base
    ~func_data_base:Gen_programs.data_base

(* µops carry the committed path (pcs, branch outcomes, addresses) and
   no data values, so stream inequality is exactly "the timing model's
   input depends on the secret". *)
let secret_pairs = [ (0L, 1L); (0L, -1L); (0x0123_4567_89AB_CDEFL, 64L) ]

let dynamic_leak prog =
  List.exists
    (fun (a, b) -> committed_uops prog a <> committed_uops prog b)
    secret_pairs

let leaky_seen = ref 0

let prop_soundness =
  QCheck.Test.make
    ~name:"dynamically leaking programs are statically flagged (500 programs)"
    ~count:500 arbitrary_secret_ops (fun ops ->
      let prog = assemble_ops ops in
      if not (dynamic_leak prog) then true
      else begin
        incr leaky_seen;
        match Taint.analyze_program ~secret prog with
        | Error msg -> QCheck.Test.fail_reportf "undecodable image: %s" msg
        | Ok [] ->
          QCheck.Test.fail_reportf
            "committed µop streams depend on the secret in x%d, but the \
             analyzer found nothing:\n%s"
            secret_reg (Gen_programs.print_ops ops)
        | Ok _ -> true
      end)

(* The property is only meaningful if the generator actually produces
   leaky programs; with the secret register as a branch/index source a
   healthy fraction must leak. *)
let test_soundness_nonvacuous () =
  Alcotest.(check bool)
    (Printf.sprintf "cross-validation saw %d leaking programs" !leaky_seen)
    true (!leaky_seen > 20)

(* ------------------------------------------------------------------ *)
(* Static/dynamic channel agreement                                     *)
(* ------------------------------------------------------------------ *)

(* The stronger cross-check: when the dynamic Audit can not only see a
   divergence but localize it to a hardware channel, the static channel
   inference must have named that channel.  The audit observes the
   shared memory system — L1 misses, LLC structures, DRAM commands,
   page walks; core-side counters and purges are diagnostics, not
   attacker-visible LLC traffic, so they are filtered out. *)
let audit_filter = [ Trace.L1; Trace.Llc; Trace.Dram; Trace.Ptw ]
let base_timing = Config.timing ~cores:1 Config.Base

let traced_events uops =
  let trace = Trace.create ~filter:audit_filter () in
  ignore (Difftest.run_ooo ~trace ~variant:Config.Base uops);
  Trace.events trace

(* The machine is trace-driven, so equal committed streams replay to
   bit-identical event streams; only pay for machine runs on streams
   that actually differ. *)
let audit_localized ua ub =
  if ua = ub then None
  else
    Audit.first_leaking_channel
      (Audit.diff ~label_a:"s=a" ~label_b:"s=b" (traced_events ua)
         (traced_events ub))

(* Union of the statically inferred channels, projected onto the
   Audit's vocabulary (the front-end Btb/Rsb channels have no dynamic
   counterpart). *)
let static_audit_channels ?shared ~secret prog =
  match Taint.analyze_program ~window:32 ?shared ~secret prog with
  | Error _ -> []
  | Ok fs ->
    List.sort_uniq compare
      (List.filter_map Channel.to_audit
         (List.concat_map (Channel.infer ~timing:base_timing) fs))

let localized_seen = ref 0

let prop_channel_agreement =
  QCheck.Test.make
    ~name:
      "audit-localized divergences carry a statically inferred channel (500 \
       programs)"
    ~count:500 arbitrary_secret_ops (fun ops ->
      let prog = assemble_ops ops in
      let localized =
        List.filter_map
          (fun (a, b) ->
            audit_localized (committed_uops prog a) (committed_uops prog b))
          secret_pairs
      in
      if localized = [] then true
      else begin
        incr localized_seen;
        let static = static_audit_channels ~secret prog in
        match
          List.find_opt (fun ch -> not (List.mem ch static)) localized
        with
        | None -> true
        | Some ch ->
          QCheck.Test.fail_reportf
            "the audit localizes the leak to %s but the static channel set \
             is [%s]:\n%s"
            (Audit.channel_name ch)
            (String.concat ", " (List.map Audit.channel_name static))
            (Gen_programs.print_ops ops)
      end)

let test_agreement_nonvacuous () =
  Alcotest.(check bool)
    (Printf.sprintf "agreement property saw %d localized leaks"
       !localized_seen)
    true
    (!localized_seen >= 10)

(* The same agreement over the curated corpus: every witness whose
   secret pair the audit can localize must be statically explained. *)
let test_witness_channel_agreement () =
  List.iter
    (fun w ->
      match w.Witness.secret_reg with
      | None -> ()
      | Some r ->
        let uops_of v =
          let run =
            Difftest.run_func ~init_regs:[ (r, v) ]
              ~program:(Witness.program w) ~data_base:0x8000 ~data_bytes:1024
              ~max_steps:20_000 ()
          in
          Difftest.to_uops run ~func_code_base:w.Witness.base
            ~func_data_base:0x8000
        in
        (match audit_localized (uops_of 0x11L) (uops_of 0xA5L) with
        | None -> ()
        | Some ch ->
          let static =
            static_audit_channels ~shared:w.Witness.shared
              ~secret:w.Witness.secret (Witness.program w)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: audited channel %s statically inferred"
               w.Witness.name (Audit.channel_name ch))
            true (List.mem ch static)))
    Witness.all

(* ------------------------------------------------------------------ *)
(* Witness programs                                                     *)
(* ------------------------------------------------------------------ *)

let analyze_witness ?window w =
  match Taint.analyze_program ?window ~shared:w.Witness.shared
          ~secret:w.Witness.secret (Witness.program w)
  with
  | Error msg -> Alcotest.failf "%s: %s" w.Witness.name msg
  | Ok fs -> fs

let test_witness_verdicts () =
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "%s clean (committed)" w.Witness.name)
        w.Witness.expect_clean
        (analyze_witness ~window:0 w = []);
      Alcotest.(check bool)
        (Printf.sprintf "%s clean (speculative window 32)" w.Witness.name)
        w.Witness.expect_clean_speculative
        (analyze_witness ~window:32 w = []))
    Witness.all

let test_speculative_labeling () =
  let spectre = Option.get (Witness.find "spectre-v1") in
  let fs = analyze_witness ~window:32 spectre in
  Alcotest.(check bool) "spectre-v1 findings exist" true (fs <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "spectre-v1 finding labeled speculative" true
        f.Taint.speculative)
    fs;
  let branchy = Option.get (Witness.find "leaky-branch") in
  List.iter
    (fun f ->
      Alcotest.(check bool) "committed finding not labeled speculative" false
        f.Taint.speculative)
    (analyze_witness ~window:32 branchy)

(* Anchors for the two transient-only witnesses: the exact channel the
   analyzer must name, and that it is only visible speculatively. *)
let test_spectre_v2_channel () =
  let w = Option.get (Witness.find "spectre-v2") in
  let fs = analyze_witness ~window:32 w in
  Alcotest.(check bool) "spectre-v2 flagged" true (fs <> []);
  Alcotest.(check bool) "spectre-v2 names the jump-target channel" true
    (List.exists
       (fun f -> f.Taint.kind = Taint.Jump_target && f.Taint.speculative)
       fs)

let test_ssb_channel () =
  let w = Option.get (Witness.find "ssb") in
  let fs = analyze_witness ~window:32 w in
  Alcotest.(check bool) "ssb flagged" true (fs <> []);
  Alcotest.(check bool) "ssb names the load-address channel" true
    (List.exists
       (fun f -> f.Taint.kind = Taint.Load_address && f.Taint.speculative)
       fs);
  (* The bypass needs no mispredicted branch: the finding survives even
     a minimal wrong-path window. *)
  Alcotest.(check bool) "ssb flagged at window 1" true
    (analyze_witness ~window:1 w <> [])

(* RSB underflow: a return executed with an empty return-address stack
   predicts from stale state, so the gadget is reachable only
   transiently — and the channel lowering must name the RSB. *)
let test_rsb_underflow_channel () =
  let w = Option.get (Witness.find "rsb-underflow") in
  Alcotest.(check int) "committed run clean" 0
    (List.length (analyze_witness ~window:0 w));
  let fs = analyze_witness ~window:32 w in
  Alcotest.(check bool) "rsb-underflow flagged speculatively" true (fs <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "finding labeled speculative" true
        f.Taint.speculative;
      Alcotest.(check bool) "finding carries rsb provenance" true f.Taint.rsb)
    fs;
  Alcotest.(check bool) "lowering names the rsb channel" true
    (List.mem Channel.Rsb
       (List.concat_map (Channel.infer ~timing:base_timing) fs))

(* Shared-region discipline: reads of declared read-shared memory are
   fine until the address is secret-tainted; writes are never fine. *)
let test_shared_region_witnesses () =
  let get n = Option.get (Witness.find n) in
  let fs = analyze_witness ~window:32 (get "shared-leaky-read") in
  Alcotest.(check bool) "shared-leaky-read flagged as shared-read" true
    (List.exists (fun f -> f.Taint.kind = Taint.Shared_read) fs);
  let fs = analyze_witness ~window:0 (get "shared-write") in
  Alcotest.(check bool) "shared-write flagged architecturally" true
    (List.exists (fun f -> f.Taint.kind = Taint.Shared_write) fs);
  Alcotest.(check int) "ct-shared-read clean" 0
    (List.length (analyze_witness ~window:32 (get "ct-shared-read")))

(* The JSON export must be a pure function of the program: findings
   sorted on (pc, kind, speculative), bytes identical across runs. *)
let test_findings_json_deterministic () =
  let w = Option.get (Witness.find "shared-leaky-read") in
  let render () =
    let fs = analyze_witness ~window:32 w in
    Alcotest.(check bool) "sorted on (pc, kind, speculative)" true
      (List.sort Taint.compare_finding fs = fs);
    Json.to_string (Json.List (List.map Taint.finding_to_json fs))
  in
  Alcotest.(check string) "byte-identical across two runs" (render ())
    (render ())

(* A program violating all four disciplines at once; the emitted findings
   must come out sorted on (pc, kind). *)
let test_findings_sorted () =
  let items =
    [
      Asm.I (Instr.Muldiv { op = Instr.Div; rd = 7; rs1 = 6; rs2 = 10 });
      Asm.Li (31, 0x8000);
      Asm.I (Instr.Alu { op = Instr.Add; rd = 5; rs1 = 31; rs2 = 10 });
      Asm.I (Instr.Load { kind = Instr.Ld; rd = 6; rs1 = 5; offset = 0 });
      Asm.Br_to (Instr.Beq, 10, 0, "end");
      Asm.I (Instr.Store { kind = Instr.Sd; rs1 = 5; rs2 = 6; offset = 8 });
      Asm.Label "end";
      Asm.I Instr.Wfi;
    ]
  in
  let prog = Asm.assemble ~base:0x1000 items in
  match Taint.analyze_program ~secret:{ Taint.regs = [ 10 ]; ranges = [] }
          prog
  with
  | Error msg -> Alcotest.failf "undecodable: %s" msg
  | Ok fs ->
    Alcotest.(check int) "all four kinds found" 4 (List.length fs);
    let keys = List.map (fun f -> (f.Taint.pc, f.Taint.kind)) fs in
    Alcotest.(check bool) "sorted on (pc, kind)" true
      (keys = List.sort compare keys)

(* Dynamic anchors on the BASE timing machine: the leaky-branch witness
   produces secret-dependent cycle counts, the constant-time select does
   not. *)
let witness_cycles w value =
  let init_regs =
    match w.Witness.secret_reg with Some r -> [ (r, value) ] | None -> []
  in
  let run =
    Difftest.run_func ~init_regs ~program:(Witness.program w)
      ~data_base:0x8000 ~data_bytes:1024 ~max_steps:20_000 ()
  in
  let uops =
    Difftest.to_uops run ~func_code_base:w.Witness.base
      ~func_data_base:0x8000
  in
  (Difftest.run_ooo ~variant:Config.Base uops).Difftest.cycles

let test_leaky_branch_dynamic () =
  let w = Option.get (Witness.find "leaky-branch") in
  Alcotest.(check bool) "BASE cycles separate the secrets" true
    (witness_cycles w 0L <> witness_cycles w 1L)

let test_ct_select_dynamic () =
  let w = Option.get (Witness.find "ct-select") in
  Alcotest.(check int) "BASE cycles independent of the secret"
    (witness_cycles w 0L) (witness_cycles w 1L)

let test_reg_of_name () =
  Alcotest.(check (option int)) "a0" (Some 10) (Reg.of_name "a0");
  Alcotest.(check (option int)) "x31" (Some 31) (Reg.of_name "x31");
  Alcotest.(check (option int)) "case-insensitive" (Some 10)
    (Reg.of_name "A0");
  Alcotest.(check (option int)) "zero alias" (Some 0) (Reg.of_name "zero");
  Alcotest.(check (option int)) "unknown" None (Reg.of_name "nope");
  Alcotest.(check (option int)) "out of range" None (Reg.of_name "x32")

(* ------------------------------------------------------------------ *)
(* Value-set abstract domain                                            *)
(* ------------------------------------------------------------------ *)

let arb_member = QCheck.(map Int64.of_int (int_range (-1024) 1024))
let arb_members = QCheck.(list_of_size Gen.(int_range 1 40) arb_member)

(* Soundness: every concrete result of a concrete pair stays inside the
   abstract transfer of the operands' abstractions — across the exact
   small-set regime, the interval hull (lists above max_card), join and
   widen. *)
let prop_vset_transfer_sound =
  QCheck.Test.make ~name:"vset: concrete results stay inside transfers"
    ~count:500
    QCheck.(pair arb_members arb_members)
    (fun (xs, ys) ->
      let a = Vset.of_list xs and b = Vset.of_list ys in
      List.for_all
        (fun (nm, f, g) ->
          let r = f a b in
          List.for_all
            (fun x ->
              List.for_all
                (fun y ->
                  Vset.mem (g x y) r
                  || QCheck.Test.fail_reportf
                       "%s: %Ld . %Ld = %Ld escapes %s" nm x y (g x y)
                       (Vset.to_string r))
                ys)
            xs)
        [
          ("add", Vset.add, Int64.add);
          ("sub", Vset.sub, Int64.sub);
          ("and", Vset.band, Int64.logand);
          ("or", Vset.bor, Int64.logor);
          ("xor", Vset.bxor, Int64.logxor);
        ]
      && List.for_all
           (fun x ->
             Vset.mem x (Vset.join a b)
             && Vset.mem x (Vset.join b a)
             && Vset.mem x (Vset.widen a b)
             && Vset.mem x (Vset.widen b a))
           xs)

(* Termination: a loop bumping an address by a constant stride every
   iteration must reach a widening fixpoint — the finite set saturates
   in at most max_card steps, then the interval bound climbs a fixed
   threshold ladder. *)
let prop_vset_widening_terminates =
  QCheck.Test.make ~name:"vset: widening chains stabilize" ~count:200
    QCheck.(pair arb_member (int_range 1 4096))
    (fun (start, stride) ->
      let stride = Vset.const (Int64.of_int stride) in
      let rec climb w v n =
        if n > (2 * Vset.max_card) + 16 then false
        else
          let w' = Vset.widen w v in
          if Vset.equal w' w then true else climb w' (Vset.add v stride) (n + 1)
      in
      climb Vset.bot (Vset.const start) 0)

(* Resolution against the machine's real geometry: the classic gadget
   address set base + (secret & 0xF8) spans exactly four cache lines of
   one page, and those lines land in four distinct LLC sets of the
   timing configuration the channel lowering consults. *)
let test_vset_index_resolution () =
  let masked = Vset.band Vset.top (Vset.const 0xF8L) in
  let addr = Vset.add (Vset.const 0x8000L) masked in
  Alcotest.(check (option int)) "four cache lines" (Some 4)
    (Vset.unit_count addr ~width:8 ~shift:6);
  Alcotest.(check (option int)) "one page" (Some 1)
    (Vset.unit_count addr ~width:8 ~shift:12);
  let lines = Option.get (Vset.unit_list addr ~width:8 ~shift:6 ~max:16) in
  Alcotest.(check (list int)) "the expected lines" [ 512; 513; 514; 515 ]
    lines;
  let index = base_timing.Config.llc.Llc.index in
  Alcotest.(check int) "four distinct LLC sets" 4
    (List.length
       (List.sort_uniq compare
          (List.map (fun line -> Index.index index ~line) lines)));
  Alcotest.(check bool) "intersects the touched window" true
    (Vset.may_intersect addr ~lo:0x80F0L ~hi:0x8100L ~width:8);
  Alcotest.(check bool) "misses a disjoint window" false
    (Vset.may_intersect addr ~lo:0x8200L ~hi:0x8300L ~width:8)

(* ------------------------------------------------------------------ *)
(* Hardware-invariant linter                                            *)
(* ------------------------------------------------------------------ *)

let has_check fs name = List.exists (fun f -> f.Lint.check = name) fs

let test_lint_secure_clean () =
  List.iter
    (fun cores ->
      let fs = Lint.lint_timing ~name:"mi6" (Config.secure_multicore ~cores) in
      Alcotest.(check int)
        (Printf.sprintf "%d-core secure machine lints clean" cores)
        0 (List.length fs))
    [ 1; 2; 4 ]

let test_lint_base_findings () =
  let fs = Lint.lint_timing ~name:"base" (Config.timing ~cores:2 Config.Base) in
  List.iter
    (fun check ->
      Alcotest.(check bool) (check ^ " flagged on BASE") true
        (has_check fs check))
    [ "purge-on-trap"; "mshr-vs-dram"; "llc-mshr-sharing"; "llc-partition" ]

let test_lint_purge_floor () =
  Alcotest.(check int) "paper floor is 512 cycles" 512
    (Lint.required_purge_floor ~core:Core_config.default
       ~l1:L1.default_config);
  (* The binding structure: 4096-entry tournament tables at 8/cycle. *)
  Alcotest.(check bool) "tournament tables dominate" true
    (List.exists
       (fun s ->
         match s.Lint.s_coverage with
         | Lint.Flushed { entries = 4096; rate = 8 } -> true
         | _ -> false)
       (Lint.purge_list ~core:Core_config.default ~l1:L1.default_config));
  let t = Config.secure_multicore ~cores:2 in
  let t =
    { t with
      Config.core = { t.Config.core with Core_config.purge_floor = 100 } }
  in
  Alcotest.(check bool) "lowered purge_floor flagged" true
    (has_check (Lint.lint_timing ~name:"mi6" t) "purge-floor")

let test_lint_mshr_sizing () =
  let t = Config.secure_multicore ~cores:2 in
  let clean = Lint.lint_timing ~name:"mi6" t in
  Alcotest.(check bool) "exactly d_max/2 MSHRs pass" false
    (has_check clean "mshr-vs-dram");
  (* One more MSHR than the DRAM controller can sink breaks 5.1. *)
  let t =
    { t with
      Config.llc = { t.Config.llc with Mi6_llc.Llc.mshrs = 14;
                     mshr_banks = 1 } }
  in
  Alcotest.(check bool) "d_max/2 + 1 MSHRs flagged" true
    (has_check (Lint.lint_timing ~name:"mi6" t) "mshr-vs-dram")

let test_lint_partitions () =
  let geometry = Addr.default_regions in
  Alcotest.(check bool) "flat index flagged" true
    (has_check
       (Lint.lint_partitions ~geometry ~name:"flat" (Index.flat ~set_bits:10))
       "llc-partition");
  Alcotest.(check int) "partitioned index clean" 0
    (List.length
       (Lint.lint_partitions ~geometry ~name:"part"
          (Index.partitioned ~set_bits:10 ~region_bits:2 ~geometry)))

let test_lint_region_masks () =
  let a = Bitvec.of_indices 8 [ 0; 1 ] in
  let b = Bitvec.of_indices 8 [ 2; 3 ] in
  let c = Bitvec.of_indices 8 [ 1; 4 ] in
  Alcotest.(check int) "disjoint masks clean" 0
    (List.length
       (Lint.lint_region_masks ~subject:"t" [ ("a", a); ("b", b) ]));
  let fs = Lint.lint_region_masks ~subject:"t" [ ("a", a); ("c", c) ] in
  Alcotest.(check bool) "overlap flagged" true (has_check fs "region-overlap");
  Alcotest.(check bool) "message names the shared region" true
    (List.exists
       (fun f ->
         f.Lint.check = "region-overlap"
         && String.length f.Lint.message > 0
         && String.ends_with ~suffix:"region 1" f.Lint.message)
       fs)

let test_lint_ledger () =
  let ledger = Region.create Addr.default_regions in
  Alcotest.(check int) "fresh ledger clean" 0
    (List.length (Lint.lint_ledger ledger));
  Alcotest.(check bool) "carve two enclaves" true
    (Region.transfer ledger ~regions:[ 1; 2 ] ~from_:Region.Os
       ~to_:(Region.Enclave 0));
  Alcotest.(check bool) "second enclave" true
    (Region.transfer ledger ~regions:[ 3 ] ~from_:Region.Os
       ~to_:(Region.Enclave 1));
  Alcotest.(check int) "populated ledger clean" 0
    (List.length (Lint.lint_ledger ledger));
  (* Stealing an owned region must fail atomically and leave the ledger
     lintable. *)
  Alcotest.(check bool) "cross-domain steal rejected" false
    (Region.transfer ledger ~regions:[ 2; 4 ] ~from_:Region.Os
       ~to_:(Region.Enclave 1));
  Alcotest.(check int) "ledger still clean after rejected transfer" 0
    (List.length (Lint.lint_ledger ledger))

(* Citadel-style read sharing: a declared grant widens access masks
   without moving ownership, lints clean off the monitor's region, and
   dies with the next transfer. *)
let test_lint_ledger_sharing () =
  let ledger = Region.create Addr.default_regions in
  Alcotest.(check bool) "carve enclave 0" true
    (Region.transfer ledger ~regions:[ 1; 2 ] ~from_:Region.Os
       ~to_:(Region.Enclave 0));
  Alcotest.(check bool) "carve enclave 1" true
    (Region.transfer ledger ~regions:[ 3 ] ~from_:Region.Os
       ~to_:(Region.Enclave 1));
  Alcotest.(check bool) "owner grant accepted" true
    (Region.share ledger ~region:2 ~owner:(Region.Enclave 0)
       ~reader:(Region.Enclave 1));
  Alcotest.(check bool) "non-owner grant rejected" false
    (Region.share ledger ~region:2 ~owner:(Region.Enclave 1)
       ~reader:Region.Os);
  Alcotest.(check int) "declared share lints clean" 0
    (List.length (Lint.lint_ledger ledger));
  Alcotest.(check (list int)) "region 2 is the shared region" [ 2 ]
    (Region.shared_regions ledger);
  Alcotest.(check int64) "access masks overlap exactly on region 2"
    (Int64.shift_left 1L 2)
    (Int64.logand
       (Region.access_mask ledger (Region.Enclave 0))
       (Region.access_mask ledger (Region.Enclave 1)));
  Alcotest.(check int64) "perm mask stays ownership-exact"
    (Region.perm_mask ledger (Region.Enclave 1))
    (Int64.shift_left 1L 3);
  (* Granting the monitor's own region is legal but flagged. *)
  Alcotest.(check bool) "monitor grant accepted" true
    (Region.share ledger ~region:0 ~owner:Region.Monitor
       ~reader:(Region.Enclave 0));
  Alcotest.(check bool) "monitor grant flagged" true
    (has_check (Lint.lint_ledger ledger) "shared-monitor-region");
  (* A transfer of the shared region revokes its grants. *)
  Alcotest.(check bool) "transfer of shared region" true
    (Region.transfer ledger ~regions:[ 2 ] ~from_:(Region.Enclave 0)
       ~to_:Region.Os);
  Alcotest.(check bool) "grants revoked by transfer" true
    (Region.readers ledger 2 = [])

(* ------------------------------------------------------------------ *)
(* Bisection over witness programs                                     *)
(* ------------------------------------------------------------------ *)

let witness_machine w ~variant ~secret =
  let init_regs =
    match (secret, w.Witness.secret_reg) with
    | Some v, Some r -> [ (r, v) ]
    | _ -> []
  in
  let run =
    Difftest.run_func ~init_regs ~program:(Witness.program w)
      ~data_base:0x8000 ~data_bytes:1024 ~max_steps:20_000 ()
  in
  let uops =
    Difftest.to_uops run ~func_code_base:w.Witness.base ~func_data_base:0x8000
  in
  let remaining = ref uops in
  let stream () =
    match !remaining with
    | [] -> None
    | u :: tl ->
      remaining := tl;
      Some u
  in
  Tmachine.create
    (Config.timing ~cores:1 variant)
    ~streams:[| stream |]
    ~stats:(Mi6_util.Stats.create ())

(* leaky-branch commits a secret-dependent path, so the secret pair must
   diverge under the exact signature oracle, in the core. *)
let test_bisect_leaky_branch_secret_pair () =
  let w = Option.get (Witness.find "leaky-branch") in
  let a = witness_machine w ~variant:Config.Base ~secret:(Some 0L) in
  let b = witness_machine w ~variant:Config.Base ~secret:(Some 1L) in
  let r = Bisect.run ~interval:64 ~ring:16 ~label_a:"s=0" ~label_b:"s=1" a b in
  match r.Bisect.r_outcome with
  | Bisect.Clean _ -> Alcotest.fail "leaky-branch secret pair must diverge"
  | Bisect.Diverged s ->
    Alcotest.(check string) "signature oracle" "signature" s.Bisect.s_oracle;
    Alcotest.(check bool) "diverges in the core" true
      (String.length s.Bisect.s_component >= 4
      && String.sub s.Bisect.s_component 0 4 = "core")

(* spectre-v1 leaks only transiently — its committed stream is
   secret-independent — so the secret pair is a meaningful negative. *)
let test_bisect_spectre_secret_pair_clean () =
  let w = Option.get (Witness.find "spectre-v1") in
  let a = witness_machine w ~variant:Config.Base ~secret:(Some 0L) in
  let b = witness_machine w ~variant:Config.Base ~secret:(Some 1L) in
  let r = Bisect.run ~interval:64 ~ring:16 ~label_a:"s=0" ~label_b:"s=1" a b in
  Alcotest.(check bool) "no committed-state divergence" false
    (Bisect.diverged r)

(* The acceptance pairing: spectre-v1 on BASE vs the full MI6 variant,
   same committed stream.  The first state split must be in a component
   hosting the channel the leakage auditor blames for the BASE leak
   (the LLC arbiter). *)
let test_bisect_spectre_variant_pair_matches_audit () =
  let w = Option.get (Witness.find "spectre-v1") in
  let a = witness_machine w ~variant:Config.Base ~secret:None in
  let b = witness_machine w ~variant:Config.Fpma ~secret:None in
  let r =
    Bisect.run ~interval:64 ~ring:16 ~label_a:"BASE" ~label_b:"F+P+M+A" a b
  in
  match r.Bisect.r_outcome with
  | Bisect.Clean _ -> Alcotest.fail "BASE vs F+P+M+A must diverge"
  | Bisect.Diverged s ->
    let channels =
      List.map Mi6_obs.Audit.channel_name
        (Bisect.audit_channels_of_component s.Bisect.s_component)
    in
    Alcotest.(check bool)
      "diverging component hosts the audited llc-arbiter channel" true
      (List.mem "llc-arbiter" channels)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_analysis"
    [
      ( "soundness",
        qsuite [ prop_soundness ]
        @ [
            Alcotest.test_case "property saw real leaks" `Quick
              test_soundness_nonvacuous;
          ] );
      ( "channel-agreement",
        qsuite [ prop_channel_agreement ]
        @ [
            Alcotest.test_case "property saw localized leaks" `Quick
              test_agreement_nonvacuous;
            Alcotest.test_case "witness corpus agrees with the audit" `Quick
              test_witness_channel_agreement;
          ] );
      ( "vset",
        qsuite [ prop_vset_transfer_sound; prop_vset_widening_terminates ]
        @ [
            Alcotest.test_case "index resolution against the geometry" `Quick
              test_vset_index_resolution;
          ] );
      ( "witnesses",
        [
          Alcotest.test_case "static verdicts" `Quick test_witness_verdicts;
          Alcotest.test_case "speculative labeling" `Quick
            test_speculative_labeling;
          Alcotest.test_case "spectre-v2 jump-target channel" `Quick
            test_spectre_v2_channel;
          Alcotest.test_case "ssb load-address channel" `Quick
            test_ssb_channel;
          Alcotest.test_case "rsb-underflow channel" `Quick
            test_rsb_underflow_channel;
          Alcotest.test_case "shared-region verdicts" `Quick
            test_shared_region_witnesses;
          Alcotest.test_case "findings JSON deterministic" `Quick
            test_findings_json_deterministic;
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "leaky-branch leaks on BASE" `Quick
            test_leaky_branch_dynamic;
          Alcotest.test_case "ct-select constant-time on BASE" `Quick
            test_ct_select_dynamic;
          Alcotest.test_case "reg of_name" `Quick test_reg_of_name;
        ] );
      ( "hw-lint",
        [
          Alcotest.test_case "secure machine clean" `Quick
            test_lint_secure_clean;
          Alcotest.test_case "BASE findings" `Quick test_lint_base_findings;
          Alcotest.test_case "purge floor" `Quick test_lint_purge_floor;
          Alcotest.test_case "MSHR sizing" `Quick test_lint_mshr_sizing;
          Alcotest.test_case "LLC set partitions" `Quick test_lint_partitions;
          Alcotest.test_case "region masks" `Quick test_lint_region_masks;
          Alcotest.test_case "ownership ledger" `Quick test_lint_ledger;
          Alcotest.test_case "ledger read sharing" `Quick
            test_lint_ledger_sharing;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "leaky-branch secret pair diverges in the core"
            `Quick test_bisect_leaky_branch_secret_pair;
          Alcotest.test_case "spectre-v1 secret pair commits clean" `Quick
            test_bisect_spectre_secret_pair_clean;
          Alcotest.test_case "spectre-v1 variant pair matches audit channel"
            `Quick test_bisect_spectre_variant_pair_matches_audit;
        ] );
    ]
