(* Tests for the static analysis layer (lib/analysis): the secret-taint
   constant-time analyzer and the hardware-invariant linter.

   The centerpiece is a dynamic/static cross-validation property: random
   programs from the shared {!Gen_programs} generator run twice on the
   functional model with two different secret inputs; whenever the two
   committed µop streams differ — i.e. the BASE machine's trace-driven
   timing model could observe the secret — the static analyzer must have
   flagged the program.  (The converse need not hold: the analyzer is an
   over-approximation.) *)

open Mi6_isa
open Mi6_core
module Taint = Mi6_analysis.Taint
module Lint = Mi6_analysis.Lint
module Witness = Mi6_analysis.Witness
module Core_config = Mi6_ooo.Core_config
module L1 = Mi6_cache.L1
module Index = Mi6_cache.Index
module Bitvec = Mi6_util.Bitvec
module Addr = Mi6_mem.Addr
module Gen_programs = Mi6_progen.Gen_programs

(* ------------------------------------------------------------------ *)
(* Soundness: dynamically leaking => statically flagged                 *)
(* ------------------------------------------------------------------ *)

(* a3: outside the generator's scratch pool, never written by the
   prologue, so an [init_regs] seed survives as a program input. *)
let secret_reg = 13
let secret = { Taint.regs = [ secret_reg ]; ranges = [] }

let arbitrary_secret_ops =
  Gen_programs.arbitrary ~extra_srcs:[ secret_reg ] ~indexed:true ()

let assemble_ops ops =
  Asm.assemble ~base:Gen_programs.code_base (Gen_programs.materialize ops)

let committed_uops prog value =
  let run =
    Difftest.run_func
      ~init_regs:[ (secret_reg, value) ]
      ~program:prog ~data_base:Gen_programs.data_base
      ~data_bytes:Gen_programs.data_bytes ~max_steps:20_000 ()
  in
  Difftest.to_uops run ~func_code_base:Gen_programs.code_base
    ~func_data_base:Gen_programs.data_base

(* µops carry the committed path (pcs, branch outcomes, addresses) and
   no data values, so stream inequality is exactly "the timing model's
   input depends on the secret". *)
let secret_pairs = [ (0L, 1L); (0L, -1L); (0x0123_4567_89AB_CDEFL, 64L) ]

let dynamic_leak prog =
  List.exists
    (fun (a, b) -> committed_uops prog a <> committed_uops prog b)
    secret_pairs

let leaky_seen = ref 0

let prop_soundness =
  QCheck.Test.make
    ~name:"dynamically leaking programs are statically flagged (500 programs)"
    ~count:500 arbitrary_secret_ops (fun ops ->
      let prog = assemble_ops ops in
      if not (dynamic_leak prog) then true
      else begin
        incr leaky_seen;
        match Taint.analyze_program ~secret prog with
        | Error msg -> QCheck.Test.fail_reportf "undecodable image: %s" msg
        | Ok [] ->
          QCheck.Test.fail_reportf
            "committed µop streams depend on the secret in x%d, but the \
             analyzer found nothing:\n%s"
            secret_reg (Gen_programs.print_ops ops)
        | Ok _ -> true
      end)

(* The property is only meaningful if the generator actually produces
   leaky programs; with the secret register as a branch/index source a
   healthy fraction must leak. *)
let test_soundness_nonvacuous () =
  Alcotest.(check bool)
    (Printf.sprintf "cross-validation saw %d leaking programs" !leaky_seen)
    true (!leaky_seen > 20)

(* ------------------------------------------------------------------ *)
(* Witness programs                                                     *)
(* ------------------------------------------------------------------ *)

let analyze_witness ?window w =
  match Taint.analyze_program ?window ~secret:w.Witness.secret
          (Witness.program w)
  with
  | Error msg -> Alcotest.failf "%s: %s" w.Witness.name msg
  | Ok fs -> fs

let test_witness_verdicts () =
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "%s clean (committed)" w.Witness.name)
        w.Witness.expect_clean
        (analyze_witness ~window:0 w = []);
      Alcotest.(check bool)
        (Printf.sprintf "%s clean (speculative window 32)" w.Witness.name)
        w.Witness.expect_clean_speculative
        (analyze_witness ~window:32 w = []))
    Witness.all

let test_speculative_labeling () =
  let spectre = Option.get (Witness.find "spectre-v1") in
  let fs = analyze_witness ~window:32 spectre in
  Alcotest.(check bool) "spectre-v1 findings exist" true (fs <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "spectre-v1 finding labeled speculative" true
        f.Taint.speculative)
    fs;
  let branchy = Option.get (Witness.find "leaky-branch") in
  List.iter
    (fun f ->
      Alcotest.(check bool) "committed finding not labeled speculative" false
        f.Taint.speculative)
    (analyze_witness ~window:32 branchy)

(* Anchors for the two transient-only witnesses: the exact channel the
   analyzer must name, and that it is only visible speculatively. *)
let test_spectre_v2_channel () =
  let w = Option.get (Witness.find "spectre-v2") in
  let fs = analyze_witness ~window:32 w in
  Alcotest.(check bool) "spectre-v2 flagged" true (fs <> []);
  Alcotest.(check bool) "spectre-v2 names the jump-target channel" true
    (List.exists
       (fun f -> f.Taint.kind = Taint.Jump_target && f.Taint.speculative)
       fs)

let test_ssb_channel () =
  let w = Option.get (Witness.find "ssb") in
  let fs = analyze_witness ~window:32 w in
  Alcotest.(check bool) "ssb flagged" true (fs <> []);
  Alcotest.(check bool) "ssb names the load-address channel" true
    (List.exists
       (fun f -> f.Taint.kind = Taint.Load_address && f.Taint.speculative)
       fs);
  (* The bypass needs no mispredicted branch: the finding survives even
     a minimal wrong-path window. *)
  Alcotest.(check bool) "ssb flagged at window 1" true
    (analyze_witness ~window:1 w <> [])

(* A program violating all four disciplines at once; the emitted findings
   must come out sorted on (pc, kind). *)
let test_findings_sorted () =
  let items =
    [
      Asm.I (Instr.Muldiv { op = Instr.Div; rd = 7; rs1 = 6; rs2 = 10 });
      Asm.Li (31, 0x8000);
      Asm.I (Instr.Alu { op = Instr.Add; rd = 5; rs1 = 31; rs2 = 10 });
      Asm.I (Instr.Load { kind = Instr.Ld; rd = 6; rs1 = 5; offset = 0 });
      Asm.Br_to (Instr.Beq, 10, 0, "end");
      Asm.I (Instr.Store { kind = Instr.Sd; rs1 = 5; rs2 = 6; offset = 8 });
      Asm.Label "end";
      Asm.I Instr.Wfi;
    ]
  in
  let prog = Asm.assemble ~base:0x1000 items in
  match Taint.analyze_program ~secret:{ Taint.regs = [ 10 ]; ranges = [] }
          prog
  with
  | Error msg -> Alcotest.failf "undecodable: %s" msg
  | Ok fs ->
    Alcotest.(check int) "all four kinds found" 4 (List.length fs);
    let keys = List.map (fun f -> (f.Taint.pc, f.Taint.kind)) fs in
    Alcotest.(check bool) "sorted on (pc, kind)" true
      (keys = List.sort compare keys)

(* Dynamic anchors on the BASE timing machine: the leaky-branch witness
   produces secret-dependent cycle counts, the constant-time select does
   not. *)
let witness_cycles w value =
  let init_regs =
    match w.Witness.secret_reg with Some r -> [ (r, value) ] | None -> []
  in
  let run =
    Difftest.run_func ~init_regs ~program:(Witness.program w)
      ~data_base:0x8000 ~data_bytes:1024 ~max_steps:20_000 ()
  in
  let uops =
    Difftest.to_uops run ~func_code_base:w.Witness.base
      ~func_data_base:0x8000
  in
  (Difftest.run_ooo ~variant:Config.Base uops).Difftest.cycles

let test_leaky_branch_dynamic () =
  let w = Option.get (Witness.find "leaky-branch") in
  Alcotest.(check bool) "BASE cycles separate the secrets" true
    (witness_cycles w 0L <> witness_cycles w 1L)

let test_ct_select_dynamic () =
  let w = Option.get (Witness.find "ct-select") in
  Alcotest.(check int) "BASE cycles independent of the secret"
    (witness_cycles w 0L) (witness_cycles w 1L)

let test_reg_of_name () =
  Alcotest.(check (option int)) "a0" (Some 10) (Reg.of_name "a0");
  Alcotest.(check (option int)) "x31" (Some 31) (Reg.of_name "x31");
  Alcotest.(check (option int)) "case-insensitive" (Some 10)
    (Reg.of_name "A0");
  Alcotest.(check (option int)) "zero alias" (Some 0) (Reg.of_name "zero");
  Alcotest.(check (option int)) "unknown" None (Reg.of_name "nope");
  Alcotest.(check (option int)) "out of range" None (Reg.of_name "x32")

(* ------------------------------------------------------------------ *)
(* Hardware-invariant linter                                            *)
(* ------------------------------------------------------------------ *)

let has_check fs name = List.exists (fun f -> f.Lint.check = name) fs

let test_lint_secure_clean () =
  List.iter
    (fun cores ->
      let fs = Lint.lint_timing ~name:"mi6" (Config.secure_multicore ~cores) in
      Alcotest.(check int)
        (Printf.sprintf "%d-core secure machine lints clean" cores)
        0 (List.length fs))
    [ 1; 2; 4 ]

let test_lint_base_findings () =
  let fs = Lint.lint_timing ~name:"base" (Config.timing ~cores:2 Config.Base) in
  List.iter
    (fun check ->
      Alcotest.(check bool) (check ^ " flagged on BASE") true
        (has_check fs check))
    [ "purge-on-trap"; "mshr-vs-dram"; "llc-mshr-sharing"; "llc-partition" ]

let test_lint_purge_floor () =
  Alcotest.(check int) "paper floor is 512 cycles" 512
    (Lint.required_purge_floor ~core:Core_config.default
       ~l1:L1.default_config);
  (* The binding structure: 4096-entry tournament tables at 8/cycle. *)
  Alcotest.(check bool) "tournament tables dominate" true
    (List.exists
       (fun s ->
         match s.Lint.s_coverage with
         | Lint.Flushed { entries = 4096; rate = 8 } -> true
         | _ -> false)
       (Lint.purge_list ~core:Core_config.default ~l1:L1.default_config));
  let t = Config.secure_multicore ~cores:2 in
  let t =
    { t with
      Config.core = { t.Config.core with Core_config.purge_floor = 100 } }
  in
  Alcotest.(check bool) "lowered purge_floor flagged" true
    (has_check (Lint.lint_timing ~name:"mi6" t) "purge-floor")

let test_lint_mshr_sizing () =
  let t = Config.secure_multicore ~cores:2 in
  let clean = Lint.lint_timing ~name:"mi6" t in
  Alcotest.(check bool) "exactly d_max/2 MSHRs pass" false
    (has_check clean "mshr-vs-dram");
  (* One more MSHR than the DRAM controller can sink breaks 5.1. *)
  let t =
    { t with
      Config.llc = { t.Config.llc with Mi6_llc.Llc.mshrs = 14;
                     mshr_banks = 1 } }
  in
  Alcotest.(check bool) "d_max/2 + 1 MSHRs flagged" true
    (has_check (Lint.lint_timing ~name:"mi6" t) "mshr-vs-dram")

let test_lint_partitions () =
  let geometry = Addr.default_regions in
  Alcotest.(check bool) "flat index flagged" true
    (has_check
       (Lint.lint_partitions ~geometry ~name:"flat" (Index.flat ~set_bits:10))
       "llc-partition");
  Alcotest.(check int) "partitioned index clean" 0
    (List.length
       (Lint.lint_partitions ~geometry ~name:"part"
          (Index.partitioned ~set_bits:10 ~region_bits:2 ~geometry)))

let test_lint_region_masks () =
  let a = Bitvec.of_indices 8 [ 0; 1 ] in
  let b = Bitvec.of_indices 8 [ 2; 3 ] in
  let c = Bitvec.of_indices 8 [ 1; 4 ] in
  Alcotest.(check int) "disjoint masks clean" 0
    (List.length
       (Lint.lint_region_masks ~subject:"t" [ ("a", a); ("b", b) ]));
  let fs = Lint.lint_region_masks ~subject:"t" [ ("a", a); ("c", c) ] in
  Alcotest.(check bool) "overlap flagged" true (has_check fs "region-overlap");
  Alcotest.(check bool) "message names the shared region" true
    (List.exists
       (fun f ->
         f.Lint.check = "region-overlap"
         && String.length f.Lint.message > 0
         && String.ends_with ~suffix:"region 1" f.Lint.message)
       fs)

let test_lint_ledger () =
  let ledger = Region.create Addr.default_regions in
  Alcotest.(check int) "fresh ledger clean" 0
    (List.length (Lint.lint_ledger ledger));
  Alcotest.(check bool) "carve two enclaves" true
    (Region.transfer ledger ~regions:[ 1; 2 ] ~from_:Region.Os
       ~to_:(Region.Enclave 0));
  Alcotest.(check bool) "second enclave" true
    (Region.transfer ledger ~regions:[ 3 ] ~from_:Region.Os
       ~to_:(Region.Enclave 1));
  Alcotest.(check int) "populated ledger clean" 0
    (List.length (Lint.lint_ledger ledger));
  (* Stealing an owned region must fail atomically and leave the ledger
     lintable. *)
  Alcotest.(check bool) "cross-domain steal rejected" false
    (Region.transfer ledger ~regions:[ 2; 4 ] ~from_:Region.Os
       ~to_:(Region.Enclave 1));
  Alcotest.(check int) "ledger still clean after rejected transfer" 0
    (List.length (Lint.lint_ledger ledger))

(* ------------------------------------------------------------------ *)
(* Bisection over witness programs                                     *)
(* ------------------------------------------------------------------ *)

let witness_machine w ~variant ~secret =
  let init_regs =
    match (secret, w.Witness.secret_reg) with
    | Some v, Some r -> [ (r, v) ]
    | _ -> []
  in
  let run =
    Difftest.run_func ~init_regs ~program:(Witness.program w)
      ~data_base:0x8000 ~data_bytes:1024 ~max_steps:20_000 ()
  in
  let uops =
    Difftest.to_uops run ~func_code_base:w.Witness.base ~func_data_base:0x8000
  in
  let remaining = ref uops in
  let stream () =
    match !remaining with
    | [] -> None
    | u :: tl ->
      remaining := tl;
      Some u
  in
  Tmachine.create
    (Config.timing ~cores:1 variant)
    ~streams:[| stream |]
    ~stats:(Mi6_util.Stats.create ())

(* leaky-branch commits a secret-dependent path, so the secret pair must
   diverge under the exact signature oracle, in the core. *)
let test_bisect_leaky_branch_secret_pair () =
  let w = Option.get (Witness.find "leaky-branch") in
  let a = witness_machine w ~variant:Config.Base ~secret:(Some 0L) in
  let b = witness_machine w ~variant:Config.Base ~secret:(Some 1L) in
  let r = Bisect.run ~interval:64 ~ring:16 ~label_a:"s=0" ~label_b:"s=1" a b in
  match r.Bisect.r_outcome with
  | Bisect.Clean _ -> Alcotest.fail "leaky-branch secret pair must diverge"
  | Bisect.Diverged s ->
    Alcotest.(check string) "signature oracle" "signature" s.Bisect.s_oracle;
    Alcotest.(check bool) "diverges in the core" true
      (String.length s.Bisect.s_component >= 4
      && String.sub s.Bisect.s_component 0 4 = "core")

(* spectre-v1 leaks only transiently — its committed stream is
   secret-independent — so the secret pair is a meaningful negative. *)
let test_bisect_spectre_secret_pair_clean () =
  let w = Option.get (Witness.find "spectre-v1") in
  let a = witness_machine w ~variant:Config.Base ~secret:(Some 0L) in
  let b = witness_machine w ~variant:Config.Base ~secret:(Some 1L) in
  let r = Bisect.run ~interval:64 ~ring:16 ~label_a:"s=0" ~label_b:"s=1" a b in
  Alcotest.(check bool) "no committed-state divergence" false
    (Bisect.diverged r)

(* The acceptance pairing: spectre-v1 on BASE vs the full MI6 variant,
   same committed stream.  The first state split must be in a component
   hosting the channel the leakage auditor blames for the BASE leak
   (the LLC arbiter). *)
let test_bisect_spectre_variant_pair_matches_audit () =
  let w = Option.get (Witness.find "spectre-v1") in
  let a = witness_machine w ~variant:Config.Base ~secret:None in
  let b = witness_machine w ~variant:Config.Fpma ~secret:None in
  let r =
    Bisect.run ~interval:64 ~ring:16 ~label_a:"BASE" ~label_b:"F+P+M+A" a b
  in
  match r.Bisect.r_outcome with
  | Bisect.Clean _ -> Alcotest.fail "BASE vs F+P+M+A must diverge"
  | Bisect.Diverged s ->
    let channels =
      List.map Mi6_obs.Audit.channel_name
        (Bisect.audit_channels_of_component s.Bisect.s_component)
    in
    Alcotest.(check bool)
      "diverging component hosts the audited llc-arbiter channel" true
      (List.mem "llc-arbiter" channels)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_analysis"
    [
      ( "soundness",
        qsuite [ prop_soundness ]
        @ [
            Alcotest.test_case "property saw real leaks" `Quick
              test_soundness_nonvacuous;
          ] );
      ( "witnesses",
        [
          Alcotest.test_case "static verdicts" `Quick test_witness_verdicts;
          Alcotest.test_case "speculative labeling" `Quick
            test_speculative_labeling;
          Alcotest.test_case "spectre-v2 jump-target channel" `Quick
            test_spectre_v2_channel;
          Alcotest.test_case "ssb load-address channel" `Quick
            test_ssb_channel;
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "leaky-branch leaks on BASE" `Quick
            test_leaky_branch_dynamic;
          Alcotest.test_case "ct-select constant-time on BASE" `Quick
            test_ct_select_dynamic;
          Alcotest.test_case "reg of_name" `Quick test_reg_of_name;
        ] );
      ( "hw-lint",
        [
          Alcotest.test_case "secure machine clean" `Quick
            test_lint_secure_clean;
          Alcotest.test_case "BASE findings" `Quick test_lint_base_findings;
          Alcotest.test_case "purge floor" `Quick test_lint_purge_floor;
          Alcotest.test_case "MSHR sizing" `Quick test_lint_mshr_sizing;
          Alcotest.test_case "LLC set partitions" `Quick test_lint_partitions;
          Alcotest.test_case "region masks" `Quick test_lint_region_masks;
          Alcotest.test_case "ownership ledger" `Quick test_lint_ledger;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "leaky-branch secret pair diverges in the core"
            `Quick test_bisect_leaky_branch_secret_pair;
          Alcotest.test_case "spectre-v1 secret pair commits clean" `Quick
            test_bisect_spectre_secret_pair_clean;
          Alcotest.test_case "spectre-v1 variant pair matches audit channel"
            `Quick test_bisect_spectre_variant_pair_matches_audit;
        ] );
    ]
