(* Tests for the domain-parallel execution engine: Pool scheduling and
   fan-in order, Metrics.merge algebra, and the end-to-end guarantee the
   CI gate relies on — a Sweep's JSON snapshot is byte-identical no
   matter how many domains ran it. *)

open Mi6_exec
module Metrics = Mi6_obs.Metrics
module Histogram = Mi6_obs.Histogram
module Json = Mi6_obs.Json
module Perfdb = Mi6_obs.Perfdb
module Stats = Mi6_util.Stats
module Config = Mi6_core.Config
module Spec = Mi6_workload.Spec

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_serial_fallback () =
  with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "one domain" 1 (Pool.domains pool);
      let got = Pool.map pool 10 (fun i -> i * i) in
      Alcotest.(check (array int))
        "serial map" (Array.init 10 (fun i -> i * i)) got)

let test_pool_order_and_reuse () =
  with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "four domains" 4 (Pool.domains pool);
      for round = 1 to 3 do
        let n = 37 * round in
        let got = Pool.map pool n (fun i -> (i * 7) + round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d in index order" round)
          (Array.init n (fun i -> (i * 7) + round))
          got
      done;
      let xs = List.init 23 string_of_int in
      Alcotest.(check (list string))
        "run_list preserves order"
        (List.map (fun s -> s ^ "!") xs)
        (Pool.run_list pool xs (fun s -> s ^ "!")))

exception Boom of int

let test_pool_exception () =
  with_pool ~domains:3 (fun pool ->
      (match Pool.map pool 16 (fun i -> if i mod 5 = 0 then raise (Boom i) else i)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int) "lowest failing shard wins" 0 i);
      (* The pool survives a failed job. *)
      let got = Pool.map pool 8 (fun i -> i + 1) in
      Alcotest.(check (array int)) "usable after failure"
        (Array.init 8 (fun i -> i + 1))
        got)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 in
  ignore (Pool.map pool 5 (fun i -> i));
  Pool.shutdown pool;
  Pool.shutdown pool

let pool_map_model =
  QCheck.Test.make ~name:"Pool.map agrees with Array.init for any job"
    ~count:60
    QCheck.(pair (int_range 0 50) (int_range 1 6))
    (fun (n, domains) ->
      with_pool ~domains (fun pool ->
          Pool.map pool n (fun i -> (i * 31) lxor n)
          = Array.init n (fun i -> (i * 31) lxor n)))

(* ------------------------------------------------------------------ *)
(* Metrics.merge                                                       *)
(* ------------------------------------------------------------------ *)

let registry counters hist_samples =
  let m = Metrics.create () in
  let s = Stats.create () in
  List.iter (fun (name, v) -> Stats.add s name v) counters;
  Metrics.add_stats m ~scope:"" s;
  let h = Histogram.create () in
  List.iter (fun v -> Histogram.add h v) hist_samples;
  Metrics.add_histogram m ~name:"lat" h;
  m

let test_metrics_merge_sums () =
  let a = registry [ ("x", 3); ("y", 10) ] [ 1; 2; 3 ] in
  let b = registry [ ("x", 4); ("z", 5) ] [ 3; 100 ] in
  let acc = Metrics.create () in
  Metrics.merge ~into:acc a;
  Metrics.merge ~into:acc b;
  let find name = List.assoc name (Metrics.counters acc) in
  Alcotest.(check int) "x summed" 7 (find "x");
  Alcotest.(check int) "y kept" 10 (find "y");
  Alcotest.(check int) "z kept" 5 (find "z");
  let _, h = List.find (fun (n, _) -> n = "lat") (Metrics.histograms acc) in
  Alcotest.(check int) "histogram buckets merged" 5 (Histogram.count h)

let test_metrics_merge_order_invariant () =
  let mk () =
    ( registry [ ("a", 1); ("b", 2) ] [ 5; 6 ],
      registry [ ("b", 3); ("c", 4) ] [ 7 ],
      registry [ ("a", 10) ] [ 1000 ] )
  in
  let export order =
    let x, y, z = mk () in
    let acc = Metrics.create () in
    List.iter
      (fun i -> Metrics.merge ~into:acc (match i with 0 -> x | 1 -> y | _ -> z))
      order;
    Json.to_string (Metrics.to_json acc)
  in
  Alcotest.(check string)
    "fold order does not change the export" (export [ 0; 1; 2 ])
    (export [ 2; 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_cells_canonical () =
  let cells =
    Sweep.cells ~seeds:2
      ~variants:[ Config.Fpma; Config.Base; Config.Base ]
      ~benches:[ Spec.Mcf; Spec.Gcc; Spec.Gcc ]
      ()
  in
  Alcotest.(check int) "dedup to 2x2x2" 8 (List.length cells);
  let names = List.map Sweep.cell_name cells in
  Alcotest.(check (list string))
    "canonical order: bench, variant, seed"
    [
      "gcc/BASE"; "gcc/BASE#1"; "gcc/F+P+M+A"; "gcc/F+P+M+A#1";
      "mcf/BASE"; "mcf/BASE#1"; "mcf/F+P+M+A"; "mcf/F+P+M+A#1";
    ]
    names;
  Alcotest.check_raises "seeds must be positive"
    (Invalid_argument "Sweep.cells: seeds must be >= 1") (fun () ->
      ignore (Sweep.cells ~seeds:0 ~variants:[] ~benches:[] ()))

let sweep_json ~domains cells =
  with_pool ~domains (fun pool ->
      let outcomes = Sweep.run pool ~warmup:300 ~measure:800 cells in
      Json.to_string (Sweep.to_json ~warmup:300 ~measure:800 outcomes))

(* The CI gate's property, in-process: same cells, 1 domain vs several,
   run twice — all four snapshots byte-identical. *)
let test_sweep_deterministic_across_domains () =
  let cells =
    Sweep.cells ~seeds:2
      ~variants:[ Config.Base; Config.Fpma ]
      ~benches:[ Spec.Gcc; Spec.Mcf ]
      ()
  in
  let serial = sweep_json ~domains:1 cells in
  let parallel = sweep_json ~domains:4 cells in
  Alcotest.(check string) "serial vs parallel bytes" serial parallel;
  Alcotest.(check string) "parallel rerun bytes" parallel
    (sweep_json ~domains:4 cells)

let test_sweep_perfdb_roundtrip () =
  let cells =
    Sweep.cells ~variants:[ Config.Base ] ~benches:[ Spec.Gcc ] ~seeds:2 ()
  in
  let outcomes =
    with_pool ~domains:1 (fun pool ->
        Sweep.run pool ~warmup:200 ~measure:500 cells)
  in
  let records =
    Sweep.to_perfdb_records ~run_id:"r1" ~commit:"deadbeef" outcomes
  in
  Alcotest.(check int) "one record per cell" (List.length cells)
    (List.length records);
  Alcotest.(check (list string))
    "seed suffixes on bench names" [ "gcc"; "gcc#1" ]
    (List.map (fun r -> r.Perfdb.bench) records);
  List.iter
    (fun r ->
      match Perfdb.record_of_json (Perfdb.record_to_json r) with
      | Ok r' ->
        Alcotest.(check bool) "record JSON roundtrip" true (r = r')
      | Error e -> Alcotest.fail ("record_of_json: " ^ e))
    records

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "serial fallback" `Quick test_pool_serial_fallback;
          Alcotest.test_case "index order and reuse" `Quick
            test_pool_order_and_reuse;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ]
        @ qsuite [ pool_map_model ] );
      ( "metrics-merge",
        [
          Alcotest.test_case "counters and histograms sum" `Quick
            test_metrics_merge_sums;
          Alcotest.test_case "fold order invariant" `Quick
            test_metrics_merge_order_invariant;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "canonical cell grid" `Quick test_cells_canonical;
          Alcotest.test_case "byte-identical across domain counts" `Quick
            test_sweep_deterministic_across_domains;
          Alcotest.test_case "perfdb records roundtrip" `Quick
            test_sweep_perfdb_roundtrip;
        ] );
    ]
