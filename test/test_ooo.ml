(* Tests for the out-of-order core: predictors, pipeline throughput,
   memory path, purge, and the NONSPEC mode. *)

open Mi6_util
open Mi6_coherence
open Mi6_cache
open Mi6_dram
open Mi6_llc
open Mi6_ooo

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Predictors                                                          *)
(* ------------------------------------------------------------------ *)

let test_tournament_learns_bias () =
  let p = Tournament.create () in
  (* A heavily biased branch must become almost always correct. *)
  let wrong = ref 0 in
  for i = 1 to 1000 do
    ignore i;
    if not (Tournament.predict p ~pc:0x400) then incr wrong;
    Tournament.update p ~pc:0x400 ~taken:true
  done;
  check_bool (Printf.sprintf "bias learned (%d wrong)" !wrong) true (!wrong < 20)

let test_tournament_learns_pattern () =
  let p = Tournament.create () in
  (* Alternating T/N is local-history predictable. *)
  let wrong = ref 0 in
  for i = 1 to 2000 do
    let taken = i mod 2 = 0 in
    if Tournament.predict p ~pc:0x800 <> taken then incr wrong;
    Tournament.update p ~pc:0x800 ~taken
  done;
  check_bool
    (Printf.sprintf "pattern learned (%d wrong of 2000)" !wrong)
    true (!wrong < 100)

let test_tournament_flush_resets () =
  let fresh = Tournament.create () in
  let used = Tournament.create () in
  for i = 1 to 500 do
    Tournament.update used ~pc:(i * 4) ~taken:(i mod 3 = 0)
  done;
  check_bool "trained differs from fresh" true
    (Tournament.state_signature used <> Tournament.state_signature fresh);
  Tournament.flush used;
  check_int "flush restores public state"
    (Tournament.state_signature fresh)
    (Tournament.state_signature used)

let test_btb () =
  let b = Btb.create () in
  check_bool "cold miss" true (Btb.predict b ~pc:0x1000 = None);
  Btb.update b ~pc:0x1000 ~target:0x2000;
  check_bool "hit" true (Btb.predict b ~pc:0x1000 = Some 0x2000);
  (* Aliasing: 256 entries x 4-byte instructions = 1 KB stride. *)
  Btb.update b ~pc:(0x1000 + 1024) ~target:0x3000;
  check_bool "alias evicts" true (Btb.predict b ~pc:0x1000 = None);
  Btb.flush b;
  check_int "flush empties" 0 (Btb.occupancy b)

let test_ras () =
  let r = Ras.create () in
  Ras.push r 100;
  Ras.push r 200;
  check_int "lifo pop" 200 (Ras.pop r);
  check_int "lifo pop 2" 100 (Ras.pop r);
  check_int "empty pop" 0 (Ras.pop r);
  (* Overflow wraps: pushing 9 into 8 entries loses the oldest. *)
  for i = 1 to 9 do
    Ras.push r (i * 10)
  done;
  check_int "depth capped" 8 (Ras.depth r);
  check_int "newest on top" 90 (Ras.pop r)

(* ------------------------------------------------------------------ *)
(* Core harness                                                        *)
(* ------------------------------------------------------------------ *)

let run_core ?(cfg = Core_config.default) ?(max_cycles = 2_000_000) uops =
  let stats = Stats.create () in
  let links = [| Link.create ~depth:4; Link.create ~depth:4 |] in
  let dram = Controller.constant ~latency:120 ~max_outstanding:24 ~stats () in
  let llc =
    Llc.create (Llc.default_config ~cores:2) ~security:Llc.baseline_security
      ~links ~dram ~stats
  in
  let l1d = L1.create L1.default_config ~link:links.(0) ~stats ~name:"l1d" in
  let l1i = L1.create L1.default_config ~link:links.(1) ~stats ~name:"l1i" in
  let q = Queue.create () in
  List.iter (fun u -> Queue.add u q) uops;
  let stream () = Queue.take_opt q in
  let core =
    Core.create cfg ~l1i ~l1d ~stream ~stats
      ~pt_base_line:(16 * 1024 * 1024 / 64)
  in
  let cycle = ref 0 in
  while (not (Core.finished core)) && !cycle < max_cycles do
    Core.tick core ~now:!cycle;
    L1.tick l1d ~now:!cycle ~complete:(fun id ->
        Core.mem_complete core ~now:!cycle ~id);
    L1.tick l1i ~now:!cycle ~complete:(fun id -> Core.icache_complete core ~id);
    Llc.tick llc ~now:!cycle;
    incr cycle
  done;
  check_bool "core finished" true (Core.finished core);
  (stats, !cycle, core)

(* n independent single-cycle ALU ops in a tight code loop footprint. *)
let independent_alus n =
  List.init n (fun i ->
      Uop.alu ~pc:(0x1000 + (i mod 64 * 4)) ~dst:(2 + (i mod 8)) ~srcs:[] ())

let dependent_chain n =
  List.init n (fun i -> Uop.alu ~pc:(0x1000 + (i mod 64 * 4)) ~dst:2 ~srcs:[ 2 ] ())

let test_ipc_independent () =
  let n = 20_000 in
  let _, cycles, core = run_core (independent_alus n) in
  check_int "all committed" n (Core.committed_instructions core);
  let ipc = float_of_int n /. float_of_int cycles in
  check_bool (Printf.sprintf "ipc %.2f near fetch width" ipc) true (ipc > 1.5)

let test_ipc_dependent_chain () =
  let n = 20_000 in
  let _, cycles, _ = run_core (dependent_chain n) in
  let ipc = float_of_int n /. float_of_int cycles in
  check_bool (Printf.sprintf "chain ipc %.2f ~ 1" ipc) true
    (ipc > 0.8 && ipc <= 1.05)

let test_long_latency_alu () =
  (* A chain of 20-cycle (divide-like) ops runs at ~1 per 20 cycles. *)
  let n = 500 in
  let uops =
    List.init n (fun i ->
        Uop.alu ~latency:20 ~pipe:Uop.Pipe_fp ~pc:(0x1000 + (i mod 16 * 4))
          ~dst:2 ~srcs:[ 2 ] ())
  in
  let _, cycles, _ = run_core uops in
  check_bool
    (Printf.sprintf "div chain takes %d cycles for %d ops" cycles n)
    true
    (cycles > n * 18)

let test_load_hits_pipeline () =
  (* Loads to one hot line: after warmup they hit in the L1. *)
  let n = 5_000 in
  let uops =
    List.init n (fun i ->
        Uop.load ~pc:(0x1000 + (i mod 32 * 4)) ~addr:0x8000 ~dst:(2 + (i mod 4))
          ~srcs:[] ())
  in
  let stats, cycles, _ = run_core uops in
  check_bool "l1d mostly hits" true
    (Stats.get stats "l1d.hits" > (n * 9 / 10));
  (* One mem pipe: at most ~1 load per cycle. *)
  check_bool (Printf.sprintf "cycles %d >= loads" cycles) true (cycles >= n)

let test_load_miss_stream () =
  (* Strided misses: every load a fresh line -> DRAM-bound. *)
  let n = 300 in
  let uops =
    List.init n (fun i ->
        Uop.load ~pc:0x1000 ~addr:(0x100000 + (i * 4096 * 64)) ~dst:2 ~srcs:[] ())
  in
  let stats, cycles, _ = run_core uops in
  check_bool "llc misses dominate" true (Stats.get stats "llc.misses" >= n);
  check_bool
    (Printf.sprintf "cycles %d reflect some MLP" cycles)
    true
    (cycles > n * 10 && cycles < n * 200)

let test_store_forwarding () =
  (* Store then load of the same line: the load forwards, no extra
     D-cache traffic for it. *)
  let uops =
    [
      (* Warm the D-TLB so the store's address is known before the load
         issues (forwarding needs the SQ entry's address ready). *)
      Uop.load ~pc:0x0FF0 ~addr:0x9040 ~dst:2 ~srcs:[] ();
      Uop.alu ~pc:0x0FF4 ~dst:3 ~srcs:[ 2 ] ();
      Uop.store ~pc:0x1000 ~addr:0x9000 ~srcs:[ 3 ] ();
      Uop.alu ~pc:0x1004 ~dst:5 ~srcs:[] ();
      Uop.alu ~pc:0x1008 ~dst:6 ~srcs:[] ();
      (* Shares the store's source so it cannot issue before it. *)
      Uop.load ~pc:0x100C ~addr:0x9000 ~dst:4 ~srcs:[ 3 ] ();
    ]
  in
  let stats, _, _ = run_core uops in
  check_bool "forwarding happened" true (Stats.get stats "core.store_forwards" >= 1)

let test_biased_vs_random_branches () =
  let n = 8_000 in
  let make_branches f =
    List.init n (fun i ->
        Uop.branch ~pc:(0x1000 + (i mod 16 * 4)) ~taken:(f i)
          ~target:(0x1000 + ((i + 1) mod 16 * 4))
          ~srcs:[] ())
  in
  let rng = Rng.of_int 5 in
  let random_outcomes = Array.init n (fun _ -> Rng.bool rng ~p:0.5) in
  let _, cycles_biased, _ = run_core (make_branches (fun _ -> true)) in
  let _, cycles_random, _ =
    run_core (make_branches (fun i -> random_outcomes.(i)))
  in
  check_bool
    (Printf.sprintf "random branches slower (%d vs %d)" cycles_random
       cycles_biased)
    true
    (cycles_random > cycles_biased * 2)

let test_mispredict_counting () =
  (* Deterministic unpredictable pattern -> mispredict counter moves. *)
  let n = 4_000 in
  let rng = Rng.of_int 11 in
  let outcomes = Array.init n (fun _ -> Rng.bool rng ~p:0.5) in
  let uops =
    List.init n (fun i ->
        Uop.branch ~pc:0x2000 ~taken:outcomes.(i) ~target:0x2100 ~srcs:[] ())
  in
  let stats, _, _ = run_core uops in
  let mispredicts = Stats.get stats "core.mispredicts" in
  check_bool
    (Printf.sprintf "%d mispredicts on random pattern" mispredicts)
    true
    (mispredicts > n / 4)

let test_call_return_ras () =
  (* Call/return pairs: the RAS should make returns free. *)
  let uops =
    List.concat
      (List.init 2_000 (fun i ->
           ignore i;
           [
             Uop.jump ~pc:0x1000 ~target:0x4000 ~kind:`Call ();
             Uop.alu ~pc:0x4000 ~dst:3 ~srcs:[] ();
             Uop.jump ~pc:0x4004 ~target:0x1004 ~kind:`Return ();
             Uop.alu ~pc:0x1004 ~dst:4 ~srcs:[] ();
           ]))
  in
  let stats, _, _ = run_core uops in
  check_bool "few ras mispredicts" true
    (Stats.get stats "core.ras_mispredicts" < 50)

(* ------------------------------------------------------------------ *)
(* Purge / FLUSH                                                       *)
(* ------------------------------------------------------------------ *)

let workload_with_traps ~n ~trap_every =
  List.concat
    (List.init n (fun i ->
         let body =
           Uop.alu ~pc:(0x1000 + (i mod 256 * 4)) ~dst:(2 + (i mod 6))
             ~srcs:[] ()
         in
         if i > 0 && i mod trap_every = 0 then
           [
             { Uop.pc = 0x1000; kind = Uop.Enter_kernel; dst = None; srcs = [] };
             { Uop.pc = 0x1000; kind = Uop.Exit_kernel; dst = None; srcs = [] };
             body;
           ]
         else [ body ]))

let test_flush_on_trap_purges () =
  let cfg = { Core_config.default with Core_config.flush_on_trap = true } in
  let stats, _, _ = run_core ~cfg (workload_with_traps ~n:10_000 ~trap_every:5000) in
  check_bool "purges happened" true (Stats.get stats "core.purges" >= 2);
  check_bool "stall cycles at least floor x purges" true
    (Stats.get stats "core.purge_stall_cycles"
    >= 512 * Stats.get stats "core.purges")

let test_flush_slower_than_base () =
  let traps = workload_with_traps ~n:40_000 ~trap_every:1000 in
  let _, base_cycles, _ = run_core traps in
  let cfg = { Core_config.default with Core_config.flush_on_trap = true } in
  let _, flush_cycles, _ = run_core ~cfg traps in
  check_bool
    (Printf.sprintf "flush %d > base %d" flush_cycles base_cycles)
    true
    (flush_cycles > base_cycles)

let test_purge_resets_predictor_state () =
  let stats = Stats.create () in
  let links = [| Link.create ~depth:4; Link.create ~depth:4 |] in
  let dram = Controller.constant ~latency:120 ~max_outstanding:24 ~stats () in
  let llc =
    Llc.create (Llc.default_config ~cores:2) ~security:Llc.baseline_security
      ~links ~dram ~stats
  in
  let l1d = L1.create L1.default_config ~link:links.(0) ~stats ~name:"l1d" in
  let l1i = L1.create L1.default_config ~link:links.(1) ~stats ~name:"l1i" in
  let q = Queue.create () in
  (* Train predictors with irregular branches, then purge. *)
  let rng = Rng.of_int 3 in
  for i = 0 to 2_000 do
    Queue.add
      (Uop.branch
         ~pc:(0x1000 + (i mod 512 * 4))
         ~taken:(Rng.bool rng ~p:0.5) ~target:0x9000 ~srcs:[] ())
      q
  done;
  let stream () = Queue.take_opt q in
  let cfg = { Core_config.default with Core_config.flush_on_trap = true } in
  let core =
    Core.create cfg ~l1i ~l1d ~stream ~stats ~pt_base_line:(16 * 1024 * 1024 / 64)
  in
  let fresh_sig =
    let s2 = Stats.create () in
    let links2 = [| Link.create ~depth:4; Link.create ~depth:4 |] in
    let l1d2 = L1.create L1.default_config ~link:links2.(0) ~stats:s2 ~name:"x" in
    let l1i2 = L1.create L1.default_config ~link:links2.(1) ~stats:s2 ~name:"y" in
    Core.predictor_signature
      (Core.create cfg ~l1i:l1i2 ~l1d:l1d2 ~stream:(fun () -> None) ~stats:s2
         ~pt_base_line:0)
  in
  let cycle = ref 0 in
  let step () =
    Core.tick core ~now:!cycle;
    L1.tick l1d ~now:!cycle ~complete:(fun id ->
        Core.mem_complete core ~now:!cycle ~id);
    L1.tick l1i ~now:!cycle ~complete:(fun id -> Core.icache_complete core ~id);
    Llc.tick llc ~now:!cycle;
    incr cycle
  in
  while (not (Core.finished core)) && !cycle < 500_000 do
    step ()
  done;
  check_bool "trained state differs from fresh" true
    (Core.predictor_signature core <> fresh_sig);
  (* Externally requested purge (monitor descheduling). *)
  Core.request_purge core;
  while Core.purging core || not (Core.finished core) do
    if !cycle > 600_000 then Alcotest.fail "purge never finished";
    step ()
  done;
  check_int "purged predictor equals fresh" fresh_sig
    (Core.predictor_signature core);
  check_int "L1D empty" 0 (L1.valid_lines l1d);
  check_int "L1I empty" 0 (L1.valid_lines l1i)

let test_save_restore_reduces_flush_cost () =
  (* The Section 6 optional extension: restoring the user domain's own
     predictor state at trap return cuts FLUSH's cold-start mispredicts
     without weakening isolation (the kernel still starts cold). *)
  let traps = workload_with_traps ~n:60_000 ~trap_every:3_000 in
  let flush_cfg = { Core_config.default with Core_config.flush_on_trap = true } in
  let sr_cfg = { flush_cfg with Core_config.save_restore_predictors = true } in
  let stats_plain, cycles_plain, _ = run_core ~cfg:flush_cfg traps in
  let stats_sr, cycles_sr, _ = run_core ~cfg:sr_cfg traps in
  check_bool "restores happened" true
    (Stats.get stats_sr "core.predictor_restores" > 0);
  check_bool "plain flush never restores" true
    (Stats.get stats_plain "core.predictor_restores" = 0);
  check_bool
    (Printf.sprintf "save/restore not slower (%d vs %d)" cycles_sr cycles_plain)
    true
    (cycles_sr <= cycles_plain);
  check_bool "still purges" true
    (Stats.get stats_sr "core.purges" = Stats.get stats_plain "core.purges")

(* ------------------------------------------------------------------ *)
(* NONSPEC                                                             *)
(* ------------------------------------------------------------------ *)

let test_nonspec_serializes () =
  let n = 3_000 in
  let uops =
    List.init n (fun i ->
        if i mod 3 = 0 then
          Uop.load ~pc:(0x1000 + (i mod 64 * 4)) ~addr:(0x8000 + (i mod 16 * 64))
            ~dst:2 ~srcs:[] ()
        else Uop.alu ~pc:(0x1000 + (i mod 64 * 4)) ~dst:(3 + (i mod 4)) ~srcs:[] ())
  in
  let _, base_cycles, _ = run_core uops in
  let cfg = { Core_config.default with Core_config.nonspec_mem = true } in
  let _, nonspec_cycles, _ = run_core ~cfg uops in
  check_bool
    (Printf.sprintf "nonspec %d much slower than base %d" nonspec_cycles
       base_cycles)
    true
    (nonspec_cycles > base_cycles * 2)

let () =
  Alcotest.run "mi6_ooo"
    [
      ( "predictors",
        [
          Alcotest.test_case "tournament bias" `Quick test_tournament_learns_bias;
          Alcotest.test_case "tournament pattern" `Quick
            test_tournament_learns_pattern;
          Alcotest.test_case "tournament flush" `Quick
            test_tournament_flush_resets;
          Alcotest.test_case "btb" `Quick test_btb;
          Alcotest.test_case "ras" `Quick test_ras;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "independent ipc" `Quick test_ipc_independent;
          Alcotest.test_case "dependent chain ipc" `Quick
            test_ipc_dependent_chain;
          Alcotest.test_case "long latency ops" `Quick test_long_latency_alu;
        ] );
      ( "memory",
        [
          Alcotest.test_case "load hits" `Quick test_load_hits_pipeline;
          Alcotest.test_case "load miss stream" `Quick test_load_miss_stream;
          Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
        ] );
      ( "control",
        [
          Alcotest.test_case "biased vs random" `Quick
            test_biased_vs_random_branches;
          Alcotest.test_case "mispredict counting" `Quick
            test_mispredict_counting;
          Alcotest.test_case "call/return ras" `Quick test_call_return_ras;
        ] );
      ( "purge",
        [
          Alcotest.test_case "flush on trap" `Quick test_flush_on_trap_purges;
          Alcotest.test_case "flush slower" `Quick test_flush_slower_than_base;
          Alcotest.test_case "purge resets state" `Quick
            test_purge_resets_predictor_state;
          Alcotest.test_case "save/restore extension" `Quick
            test_save_restore_reduces_flush_cost;
        ] );
      ("nonspec", [ Alcotest.test_case "serializes" `Quick test_nonspec_serializes ]);
    ]
