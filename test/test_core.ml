(* Tests for the mi6_core library: region ledger, measurement,
   attestation, mailboxes, and the security monitor's enclave
   lifecycle — both through the OCaml API and the real ecall ABI. *)

open Mi6_isa
open Mi6_mem
open Mi6_func
open Mi6_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let geometry = Addr.default_regions

(* ------------------------------------------------------------------ *)
(* Region ledger                                                       *)
(* ------------------------------------------------------------------ *)

let test_region_initial_ownership () =
  let r = Region.create geometry in
  check_bool "region 0 is monitor's" true (Region.owner r 0 = Region.Monitor);
  check_bool "region 1 is OS's" true (Region.owner r 1 = Region.Os);
  check_int "os owns all but one" 63 (List.length (Region.owned_by r Region.Os))

let test_region_transfer () =
  let r = Region.create geometry in
  check_bool "transfer 3,4 to enclave" true
    (Region.transfer r ~regions:[ 3; 4 ] ~from_:Region.Os
       ~to_:(Region.Enclave 1));
  check_bool "now owned" true (Region.owner r 3 = Region.Enclave 1);
  (* Double allocation must fail atomically. *)
  check_bool "re-transfer fails" false
    (Region.transfer r ~regions:[ 4; 5 ] ~from_:Region.Os
       ~to_:(Region.Enclave 2));
  check_bool "region 5 untouched by failed transfer" true
    (Region.owner r 5 = Region.Os);
  check_bool "empty transfer fails" false
    (Region.transfer r ~regions:[] ~from_:Region.Os ~to_:(Region.Enclave 2))

let test_region_perm_mask () =
  let r = Region.create geometry in
  ignore
    (Region.transfer r ~regions:[ 2; 5 ] ~from_:Region.Os
       ~to_:(Region.Enclave 7));
  let mask = Region.perm_mask r (Region.Enclave 7) in
  Alcotest.(check int64) "mask has bits 2 and 5" 0x24L mask;
  (* Monitor + OS + enclave masks are pairwise disjoint. *)
  let os = Region.perm_mask r Region.Os in
  let mon = Region.perm_mask r Region.Monitor in
  check_bool "disjoint os/enclave" true (Int64.logand mask os = 0L);
  check_bool "disjoint monitor/os" true (Int64.logand mon os = 0L)

(* Ownership is always a partition: each region has exactly one owner. *)
let prop_region_partition =
  QCheck.Test.make ~name:"region ownership is a partition" ~count:100
    QCheck.(small_list (pair (int_range 0 63) (int_range 1 4)))
    (fun ops ->
      let r = Region.create geometry in
      List.iter
        (fun (region, id) ->
          ignore
            (Region.transfer r ~regions:[ region ] ~from_:Region.Os
               ~to_:(Region.Enclave id)))
        ops;
      let total =
        List.length (Region.owned_by r Region.Monitor)
        + List.length (Region.owned_by r Region.Os)
        + List.fold_left
            (fun acc id ->
              acc + List.length (Region.owned_by r (Region.Enclave id)))
            0 [ 1; 2; 3; 4 ]
      in
      total = 64)

(* ------------------------------------------------------------------ *)
(* Measurement / attestation                                           *)
(* ------------------------------------------------------------------ *)

let test_measurement_determinism () =
  let build () =
    let m = Measurement.start ~evbase:0x10000L ~evsize:0x4000L ~entry:0x10000L in
    Measurement.add_page m ~vaddr:0x10000L ~contents:"code";
    Measurement.add_page m ~vaddr:0x11000L ~contents:"data";
    Measurement.finalize m
  in
  check_string "same inputs, same measurement" (build ()) (build ())

let test_measurement_order_sensitive () =
  let m1 = Measurement.start ~evbase:0L ~evsize:0x2000L ~entry:0L in
  Measurement.add_page m1 ~vaddr:0x0L ~contents:"a";
  Measurement.add_page m1 ~vaddr:0x1000L ~contents:"b";
  let m2 = Measurement.start ~evbase:0L ~evsize:0x2000L ~entry:0L in
  Measurement.add_page m2 ~vaddr:0x1000L ~contents:"b";
  Measurement.add_page m2 ~vaddr:0x0L ~contents:"a";
  check_bool "load order matters" true
    (Measurement.finalize m1 <> Measurement.finalize m2)

let test_measurement_finalize_once () =
  let m = Measurement.start ~evbase:0L ~evsize:0x1000L ~entry:0L in
  ignore (Measurement.finalize m);
  Alcotest.check_raises "add after finalize"
    (Invalid_argument "Measurement: already finalized") (fun () ->
      Measurement.add_page m ~vaddr:0L ~contents:"x")

let test_attestation_roundtrip () =
  let key = "platform" in
  let m = Mi6_util.Sha256.digest "enclave-measurement" in
  let report =
    Attestation.sign ~platform_key:key ~measurement:m ~challenge:"nonce-1"
      ~report_data:"pubkey"
  in
  check_bool "verifies" true
    (Attestation.verify ~platform_key:key ~expected_measurement:m
       ~challenge:"nonce-1" report);
  check_bool "wrong challenge rejected" false
    (Attestation.verify ~platform_key:key ~expected_measurement:m
       ~challenge:"nonce-2" report);
  check_bool "wrong measurement rejected" false
    (Attestation.verify ~platform_key:key
       ~expected_measurement:(Mi6_util.Sha256.digest "other")
       ~challenge:"nonce-1" report);
  check_bool "wrong key rejected" false
    (Attestation.verify ~platform_key:"evil" ~expected_measurement:m
       ~challenge:"nonce-1" report);
  let tampered = { report with Attestation.report_data = "evil" } in
  check_bool "tampered data rejected" false
    (Attestation.verify ~platform_key:key ~expected_measurement:m
       ~challenge:"nonce-1" tampered)

let test_mailbox () =
  let b = Mailbox.create ~capacity:2 () in
  check_bool "send 1" true (Mailbox.send b ~from_:Mailbox.To_os "hello");
  check_bool "send 2" true (Mailbox.send b ~from_:(Mailbox.To_enclave 1) "hi");
  check_bool "full" false (Mailbox.send b ~from_:Mailbox.To_os "x");
  (match Mailbox.recv b with
  | Some (Mailbox.To_os, "hello") -> ()
  | _ -> Alcotest.fail "wrong message order");
  check_int "one pending" 1 (Mailbox.pending b);
  Mailbox.clear b;
  check_bool "cleared" true (Mailbox.recv b = None)

(* ------------------------------------------------------------------ *)
(* Monitor lifecycle via the OCaml API                                 *)
(* ------------------------------------------------------------------ *)

let make_machine ?(cores = 1) () =
  let mem = Phys_mem.create ~size_bytes:geometry.Addr.dram_bytes in
  let fsims = Array.init cores (fun i -> Fsim.create ~mem ~hartid:i ()) in
  let monitor = Monitor.create ~mem ~cores:fsims ~geometry () in
  (mem, fsims, monitor)

(* A tiny enclave: reads the magic word the loader placed in its data
   page, stores it incremented, and exits via SM call 5. *)
let enclave_evbase = 0x4000_0000L

let enclave_program () =
  Asm.assemble ~base:(Int64.to_int enclave_evbase)
    Asm.
      [
        Li (Reg.s0, Int64.to_int enclave_evbase + 0x1000);
        I (Load { kind = Ld; rd = Reg.t0; rs1 = Reg.s0; offset = 0 });
        I (Alu_imm { op = Add; rd = Reg.t0; rs1 = Reg.t0; imm = 1 });
        I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.t0; offset = 8 });
        Li (Reg.a7, 5);
        I Ecall;
      ]

let build_enclave monitor =
  let prog = enclave_program () in
  let code = Asm.to_bytes prog in
  let data =
    String.init 8 (fun i ->
        Char.chr (Int64.to_int (Int64.shift_right_logical 41L (8 * i)) land 0xFF))
  in
  match
    Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x2000L
      ~entry:enclave_evbase ~regions:[ 8; 9 ]
  with
  | Error _ -> Alcotest.fail "create_enclave failed"
  | Ok id ->
    (match Monitor.load_page monitor id ~vaddr:enclave_evbase ~contents:code with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "load code page failed");
    (match
       Monitor.load_page monitor id
         ~vaddr:(Int64.add enclave_evbase 0x1000L)
         ~contents:data
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "load data page failed");
    (match Monitor.seal monitor id with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "seal failed");
    id

let test_lifecycle_runs_enclave () =
  let mem, fsims, monitor = make_machine () in
  let id = build_enclave monitor in
  check_string "sealed" "sealed" (Monitor.enclave_state_name monitor id);
  (* Give the OS a resume point. *)
  let st = Fsim.state fsims.(0) in
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st 0x1000L;
  (match Monitor.enter monitor ~core:0 id with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enter failed");
  check_bool "running in user mode" true (Cpu_state.mode st = Priv.User);
  check_bool "domain is enclave" true
    (Monitor.current_domain monitor ~core:0 = Mailbox.To_enclave id);
  check_int "one purge on entry" 1 (Monitor.purges monitor ~core:0);
  (* Run until the enclave exits back to the OS. *)
  let steps =
    Fsim.run fsims.(0) ~max_steps:1000 ~until:(fun _ ->
        Monitor.current_domain monitor ~core:0 = Mailbox.To_os)
  in
  check_bool "enclave exited" true (steps < 1000);
  check_int "purge on exit too" 2 (Monitor.purges monitor ~core:0);
  check_bool "back in supervisor mode" true
    (Cpu_state.mode st = Priv.Supervisor);
  Alcotest.(check int64) "OS resumed with success code" 0L
    (Cpu_state.get_reg st Reg.a0);
  (* The enclave's store must have hit its second region page: 41+1 at
     offset 8 of the data page (pool page 3 = code pt... verify via the
     enclave's own pt: physical location is inside region 8). *)
  let region8 = Addr.region_base geometry 8 in
  let found = ref false in
  for page = 0 to 16 do
    if Phys_mem.read_u64 mem (region8 + (page * 4096) + 8) = 42L then
      found := true
  done;
  check_bool "enclave computed 42 into its private memory" true !found

let test_enclave_memory_isolated_from_os () =
  let _mem, fsims, monitor = make_machine () in
  let id = build_enclave monitor in
  ignore id;
  (* The OS (S-mode) tries to read enclave memory directly: the region
     check must suppress the access and raise a region fault. *)
  let st = Fsim.state fsims.(0) in
  Cpu_state.set_mode st Priv.Supervisor;
  let target = Addr.region_base geometry 8 in
  (* OS code must live in OS-owned memory (region 1). *)
  let os_base = Addr.region_base geometry 1 + 0x2000 in
  let prog =
    Asm.assemble ~base:os_base
      Asm.
        [
          Li (Reg.s0, target);
          I (Load { kind = Ld; rd = Reg.a0; rs1 = Reg.s0; offset = 0 });
        ]
  in
  Fsim.load_program fsims.(0) prog;
  Cpu_state.set_csr_raw st Csr.stvec 0x9000L;
  Cpu_state.set_pc st (Int64.of_int os_base);
  ignore (Fsim.step fsims.(0));
  ignore (Fsim.step fsims.(0));
  let r = Fsim.step fsims.(0) in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Region_fault; _ } -> ()
  | _ -> Alcotest.fail "expected region fault for OS access to enclave memory"

let test_overlapping_allocation_rejected () =
  let _mem, _fsims, monitor = make_machine () in
  let mk regions =
    Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x1000L
      ~entry:enclave_evbase ~regions
  in
  (match mk [ 8; 9 ] with Ok _ -> () | Error _ -> Alcotest.fail "first alloc");
  (match mk [ 9; 10 ] with
  | Error Monitor.E_overlap -> ()
  | _ -> Alcotest.fail "expected overlap rejection");
  (* Monitor's own region is never OS-transferable. *)
  match mk [ 0 ] with
  | Error Monitor.E_overlap -> ()
  | _ -> Alcotest.fail "expected monitor region rejection"

let test_destroy_scrubs_and_returns_regions () =
  let mem, _fsims, monitor = make_machine () in
  let id = build_enclave monitor in
  (* The code page is the second page of the enclave's pool (page 0 is
     the root page table). *)
  let code_page = Addr.region_base geometry 8 + 4096 in
  check_bool "enclave data present before destroy" true
    (Phys_mem.read_u64 mem code_page <> 0L);
  let scrubbed = ref [] in
  Monitor.on_scrub monitor (fun rs -> scrubbed := rs @ !scrubbed);
  (match Monitor.destroy monitor id with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "destroy failed");
  check_bool "scrub hook saw regions" true
    (List.mem 8 !scrubbed && List.mem 9 !scrubbed);
  check_bool "memory zeroed" true (Phys_mem.read_u64 mem code_page = 0L);
  check_bool "regions back to OS" true
    (Region.owner (Monitor.regions monitor) 8 = Region.Os);
  check_string "dead" "dead" (Monitor.enclave_state_name monitor id);
  (* A new enclave can reuse them. *)
  match
    Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x1000L
      ~entry:enclave_evbase ~regions:[ 8; 9 ]
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "reuse after destroy failed"

let test_attestation_through_monitor () =
  let _mem, _fsims, monitor = make_machine () in
  let id = build_enclave monitor in
  let challenge = "fresh-nonce" in
  match Monitor.attest monitor id ~challenge ~report_data:"key" with
  | Error _ -> Alcotest.fail "attest failed"
  | Ok report ->
    let m =
      match Monitor.measurement monitor id with
      | Ok m -> m
      | Error _ -> Alcotest.fail "measurement missing"
    in
    check_bool "verifier accepts" true
      (Attestation.verify
         ~platform_key:(Monitor.platform_key monitor)
         ~expected_measurement:m ~challenge report);
    (* An enclave loaded with different contents yields a different
       measurement. *)
    (match
       Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x1000L
         ~entry:enclave_evbase ~regions:[ 12 ]
     with
    | Ok id2 ->
      ignore (Monitor.load_page monitor id2 ~vaddr:enclave_evbase ~contents:"evil");
      (match Monitor.seal monitor id2 with
      | Ok m2 -> check_bool "different contents, different measurement" true (m2 <> m)
      | Error _ -> Alcotest.fail "seal 2")
    | Error _ -> Alcotest.fail "create 2")

let test_messaging_between_domains () =
  let _mem, _fsims, monitor = make_machine () in
  let id = build_enclave monitor in
  check_bool "os -> enclave" true
    (Monitor.send_msg monitor ~from_:Mailbox.To_os ~to_:(Mailbox.To_enclave id)
       "input");
  (match Monitor.recv_msg monitor ~me:(Mailbox.To_enclave id) with
  | Some (Mailbox.To_os, "input") -> ()
  | _ -> Alcotest.fail "enclave did not receive");
  check_bool "enclave -> os" true
    (Monitor.send_msg monitor ~from_:(Mailbox.To_enclave id) ~to_:Mailbox.To_os
       "result");
  match Monitor.recv_msg monitor ~me:Mailbox.To_os with
  | Some (Mailbox.To_enclave got, "result") -> check_int "sender id" id got
  | _ -> Alcotest.fail "os did not receive"

(* ------------------------------------------------------------------ *)
(* The ecall ABI end-to-end: OS code in S-mode drives the monitor       *)
(* ------------------------------------------------------------------ *)

let test_ecall_abi_lifecycle () =
  let mem, fsims, monitor = make_machine () in
  ignore monitor;
  let st = Fsim.state fsims.(0) in
  (* Stage the enclave image in OS memory at 0x100000 (region 0 is the
     monitor's; 0x100000 is region 0!...  use region 1: 32 MB). *)
  let stage = Addr.region_base geometry 1 + 0x10000 in
  let stage_data = Addr.region_base geometry 1 + 0x12000 in
  let prog = enclave_program () in
  Phys_mem.load_string mem stage (Asm.to_bytes prog);
  Phys_mem.write_u64 mem stage_data 41L;
  (* OS program: create(evbase, evsize, entry, mask{8,9}), load_page,
     seal, enter; after the enclave exits, spin. *)
  let evbase = Int64.to_int enclave_evbase in
  let os_base = Addr.region_base geometry 1 + 0x20000 in
  let os =
    Asm.assemble ~base:os_base
      Asm.
        [
          (* create *)
          Li (Reg.a0, evbase);
          Li (Reg.a1, 0x2000);
          Li (Reg.a2, evbase);
          Li (Reg.a3, 0x300); (* regions 8,9 *)
          Li (Reg.a7, 1);
          I Ecall;
          (* a0 = enclave id; keep in s1 *)
          I (Alu { op = Add; rd = Reg.s1; rs1 = Reg.a0; rs2 = Reg.x0 });
          (* load_page(id, evbase, stage) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a1, evbase);
          Li (Reg.a2, stage);
          Li (Reg.a7, 2);
          I Ecall;
          (* load_page(id, evbase + 0x1000, stage_data) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a1, evbase + 0x1000);
          Li (Reg.a2, stage_data);
          Li (Reg.a7, 2);
          I Ecall;
          (* seal(id) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a7, 3);
          I Ecall;
          (* enter(id) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a7, 4);
          I Ecall;
          (* resumes here after enclave exit, a0 = 0 *)
          Label "after";
          J "after";
        ]
  in
  Fsim.load_program fsims.(0) os;
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st (Int64.of_int os_base);
  let after = Int64.of_int (Asm.lookup os "after") in
  let steps =
    Fsim.run fsims.(0) ~max_steps:5000 ~until:(fun f ->
        Cpu_state.pc (Fsim.state f) = after
        && Cpu_state.mode (Fsim.state f) = Priv.Supervisor)
  in
  check_bool "OS reached the end of the flow" true (steps < 5000);
  Alcotest.(check int64) "final a0 is 0 (clean enclave exit)" 0L
    (Cpu_state.get_reg st Reg.a0);
  check_int "two purges (enter + exit)" 2 (Monitor.purges monitor ~core:0)

let test_ecall_bad_call_rejected () =
  let _mem, fsims, monitor = make_machine () in
  ignore monitor;
  let st = Fsim.state fsims.(0) in
  let os_base = Addr.region_base geometry 1 + 0x20000 in
  let os =
    Asm.assemble ~base:os_base
      Asm.[ Li (Reg.a7, 99); I Ecall; Label "after"; J "after" ]
  in
  Fsim.load_program fsims.(0) os;
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st (Int64.of_int os_base);
  let after = Int64.of_int (Asm.lookup os "after") in
  ignore
    (Fsim.run fsims.(0) ~max_steps:100 ~until:(fun f ->
         Cpu_state.pc (Fsim.state f) = after));
  Alcotest.(check int64) "invalid call errors" (-1L)
    (Cpu_state.get_reg st Reg.a0)

let test_async_exit_on_interrupt () =
  (* An interrupt during enclave execution must deschedule (purge) and
     hand the OS only a generic "enclave stopped" code — never the
     enclave's pc or fault details (Section 6.1). *)
  let _mem, fsims, monitor = make_machine () in
  let id = build_enclave monitor in
  let st = Fsim.state fsims.(0) in
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st (Int64.of_int (Addr.region_base geometry 1));
  (match Monitor.enter monitor ~core:0 id with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enter");
  (* Let the enclave run one instruction, then fire the timer. *)
  ignore (Fsim.step fsims.(0));
  Cpu_state.set_csr_raw st Csr.mie (Int64.shift_left 1L 7);
  Fsim.raise_timer_interrupt fsims.(0);
  ignore (Fsim.step fsims.(0));
  check_bool "descheduled to OS" true
    (Monitor.current_domain monitor ~core:0 = Mailbox.To_os);
  check_bool "back in supervisor" true (Cpu_state.mode st = Priv.Supervisor);
  Alcotest.(check int64) "OS sees only the async-exit code" (-7L)
    (Cpu_state.get_reg st Reg.a0);
  check_int "purged on the way out" 2 (Monitor.purges monitor ~core:0);
  (* The enclave is schedulable again. *)
  Fsim.clear_timer_interrupt fsims.(0);
  check_string "sealed again" "sealed" (Monitor.enclave_state_name monitor id)

let test_enclave_fault_hidden_from_os () =
  (* An enclave that faults (here: touching memory outside its regions)
     async-exits with a distinct generic code; the OS never sees the
     faulting address. *)
  let _mem, fsims, monitor = make_machine () in
  let id =
    match
      Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x2000L
        ~entry:enclave_evbase ~regions:[ 8; 9 ]
    with
    | Ok id -> id
    | Error _ -> Alcotest.fail "create"
  in
  (* Code that dereferences OS memory. *)
  let evil =
    Asm.assemble
      ~base:(Int64.to_int enclave_evbase)
      Asm.
        [
          Li (Reg.s0, Addr.region_base geometry 1);
          I (Load { kind = Ld; rd = Reg.a0; rs1 = Reg.s0; offset = 0 });
        ]
  in
  (match
     Monitor.load_page monitor id ~vaddr:enclave_evbase
       ~contents:(Asm.to_bytes evil)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "load");
  (match Monitor.seal monitor id with Ok _ -> () | Error _ -> Alcotest.fail "seal");
  let st = Fsim.state fsims.(0) in
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st (Int64.of_int (Addr.region_base geometry 1));
  (match Monitor.enter monitor ~core:0 id with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enter");
  let steps =
    Fsim.run fsims.(0) ~max_steps:50 ~until:(fun _ ->
        Monitor.current_domain monitor ~core:0 = Mailbox.To_os)
  in
  check_bool "enclave fault descheduled it" true (steps < 50);
  Alcotest.(check int64) "generic fault code, no address" (-8L)
    (Cpu_state.get_reg st Reg.a0)

let test_enclave_cannot_use_os_sm_calls () =
  (* From inside an enclave, OS-only SM calls (create/load/seal/enter/
     destroy) must be rejected. *)
  let _mem, fsims, monitor = make_machine () in
  let id =
    match
      Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x2000L
        ~entry:enclave_evbase ~regions:[ 8; 9 ]
    with
    | Ok id -> id
    | Error _ -> Alcotest.fail "create"
  in
  (* Enclave tries SM call 9 (destroy) on itself, then exits. *)
  let prog =
    Asm.assemble
      ~base:(Int64.to_int enclave_evbase)
      Asm.
        [
          Li (Reg.a0, id);
          Li (Reg.a7, 9);
          I Ecall;
          (* a0 now holds the error; save it and exit. *)
          I (Alu { op = Add; rd = Reg.s2; rs1 = Reg.a0; rs2 = Reg.x0 });
          Li (Reg.a7, 5);
          I Ecall;
        ]
  in
  (match
     Monitor.load_page monitor id ~vaddr:enclave_evbase
       ~contents:(Asm.to_bytes prog)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "load");
  (match Monitor.seal monitor id with Ok _ -> () | Error _ -> Alcotest.fail "seal");
  let st = Fsim.state fsims.(0) in
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st (Int64.of_int (Addr.region_base geometry 1));
  (match Monitor.enter monitor ~core:0 id with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enter");
  let steps =
    Fsim.run fsims.(0) ~max_steps:100 ~until:(fun _ ->
        Monitor.current_domain monitor ~core:0 = Mailbox.To_os)
  in
  check_bool "enclave exited" true (steps < 100);
  check_string "enclave still alive (destroy rejected)" "sealed"
    (Monitor.enclave_state_name monitor id)

(* ------------------------------------------------------------------ *)
(* Multicore                                                            *)
(* ------------------------------------------------------------------ *)

let test_run_multi_completes () =
  let timing = Config.secure_multicore ~cores:2 in
  let rs =
    Tmachine.run_multi ~timing
      ~benches:[| Mi6_workload.Spec.Hmmer; Mi6_workload.Spec.Gobmk |]
      ~warmup:20_000 ~measure:50_000 ()
  in
  check_int "two results" 2 (Array.length rs);
  Array.iter
    (fun r ->
      check_bool "measured instructions" true (r.Tmachine.instrs >= 49_990);
      check_bool "cycles positive" true (r.Tmachine.cycles > 0))
    rs

let test_multi_slower_than_solo () =
  (* Sharing the machine can only slow a benchmark down relative to its
     solo run on the same variant. *)
  let solo =
    Tmachine.run_spec ~variant:Config.Base ~bench:Mi6_workload.Spec.Gcc
      ~warmup:20_000 ~measure:60_000 ()
  in
  let multi =
    Tmachine.run_multi
      ~timing:(Config.timing ~cores:2 Config.Base)
      ~benches:[| Mi6_workload.Spec.Gcc; Mi6_workload.Spec.Libquantum |]
      ~warmup:20_000 ~measure:60_000 ()
  in
  check_bool
    (Printf.sprintf "shared run not faster (%d vs solo %d)"
       multi.(0).Tmachine.cycles solo.Tmachine.cycles)
    true
    (multi.(0).Tmachine.cycles >= solo.Tmachine.cycles)

(* The core's per-cycle CPI attributor increments exactly one bucket per
   tick, so the stack must sum to the measured cycle count on every
   variant — no lost or double-counted cycles. *)
let test_cpi_stack_sums_to_cycles () =
  List.iter
    (fun variant ->
      let r =
        Tmachine.run_spec ~variant ~bench:Mi6_workload.Spec.Gcc ~warmup:10_000
          ~measure:40_000 ()
      in
      let s =
        Mi6_obs.Cpistack.of_counters
          ~label:(Config.variant_name variant)
          ~total:r.Tmachine.cycles
          (Mi6_util.Stats.to_assoc r.Tmachine.stats)
      in
      check_bool
        (Printf.sprintf "%s: attributed %d of %d cycles"
           (Config.variant_name variant)
           (Mi6_obs.Cpistack.attributed s)
           r.Tmachine.cycles)
        true
        (Mi6_obs.Cpistack.sums_exactly s);
      (* Commits happen, so the base bucket is never empty. *)
      check_bool "base bucket populated" true
        (Mi6_obs.Cpistack.cycles s "base" > 0);
      (* Purge cycles only exist on purging variants. *)
      let purge = Mi6_obs.Cpistack.cycles s "purge" in
      match variant with
      | Config.Base -> check_int "BASE never purges" 0 purge
      | Config.Flush | Config.Fpma ->
        check_bool "purging variant attributes purge cycles" true (purge > 0)
      | _ -> ())
    [ Config.Base; Config.Flush; Config.Part; Config.Miss; Config.Arb;
      Config.Fpma ]

(* The quiet-cycle detector compares one Statesig hash per cycle; the
   oracle byte-compares the full labelled structure dump between
   consecutive cycles.  Over random (seed, bench, variant) runs the two
   must agree on every cycle — a disagreement means the signature folds
   a field the dump misses (false quiet) or vice versa (missed quiet). *)
let prop_quiet_detector_matches_oracle =
  QCheck.Test.make
    ~name:"quiet-cycle detector agrees with dump_state oracle" ~count:12
    QCheck.(pair (int_range 0 10_000) (int_range 0 7))
    (fun (seed, pick) ->
      let bench =
        List.nth
          [ Mi6_workload.Spec.Gcc; Mi6_workload.Spec.Mcf;
            Mi6_workload.Spec.Libquantum; Mi6_workload.Spec.Hmmer ]
          (pick land 3)
      in
      let variant = if pick land 4 = 0 then Config.Base else Config.Fpma in
      let occupancy = Mi6_obs.Occupancy.create () in
      let stream =
        Tmachine.spec_stream ~seed ~core:0 ~bench ~limit:300 ()
      in
      let m =
        Tmachine.create ~occupancy
          (Config.timing ~cores:1 variant)
          ~streams:[| stream |]
          ~stats:(Mi6_util.Stats.create ())
      in
      let ok = ref true in
      let prev_dump = ref None in
      let prev_quiet = ref (Mi6_obs.Occupancy.quiet_cycles occupancy) in
      let budget = ref 30_000 in
      while !ok && (not (Tmachine.finished m)) && !budget > 0 do
        decr budget;
        Tmachine.tick m;
        let dump = Tmachine.dump_state m in
        let quiet = Mi6_obs.Occupancy.quiet_cycles occupancy in
        let detector_quiet = quiet > !prev_quiet in
        let oracle_quiet =
          match !prev_dump with Some d -> String.equal d dump | None -> false
        in
        if detector_quiet <> oracle_quiet then ok := false;
        prev_dump := Some dump;
        prev_quiet := quiet
      done;
      (* The run must also have exercised both verdicts, or the property
         would pass vacuously on a degenerate machine. *)
      !ok
      && Mi6_obs.Occupancy.quiet_cycles occupancy > 0
      && Mi6_obs.Occupancy.quiet_cycles occupancy
         < Mi6_obs.Occupancy.cycles occupancy)

(* --- Checkpoint determinism (flight-recorder foundation) --- *)

(* Run [k] cycles collecting everything replay must reproduce: the
   per-cycle whole-machine signature, the retirement stream, the final
   labelled dump, and the clock/instruction counts. *)
let record_run m ~k =
  let retired = ref [] in
  Mi6_ooo.Core.set_on_commit (Tmachine.core m 0) (fun u ->
      retired := Mi6_ooo.Uop.to_string u :: !retired);
  let sigs = ref [] in
  for _ = 1 to k do
    Tmachine.tick m;
    sigs := Tmachine.structural_signature m :: !sigs
  done;
  Mi6_ooo.Core.set_on_commit (Tmachine.core m 0) ignore;
  ( !sigs,
    List.rev !retired,
    Tmachine.dump_state m,
    Tmachine.now m,
    Tmachine.committed m )

let checkpoint_machine ~seed ~pick =
  let bench =
    List.nth
      [ Mi6_workload.Spec.Gcc; Mi6_workload.Spec.Mcf;
        Mi6_workload.Spec.Libquantum; Mi6_workload.Spec.Hmmer ]
      (pick land 3)
  in
  let variant = if pick land 4 = 0 then Config.Base else Config.Fpma in
  let stream = Tmachine.spec_stream ~seed ~core:0 ~bench ~limit:2_000 () in
  Tmachine.create
    (Config.timing ~cores:1 variant)
    ~streams:[| stream |]
    ~stats:(Mi6_util.Stats.create ())

let prop_checkpoint_determinism =
  QCheck.Test.make
    ~name:"restore + replay is byte-identical to the first execution"
    ~count:10
    QCheck.(
      triple (int_range 0 10_000) (int_range 0 7)
        (pair (int_range 50 2_000) (int_range 50 1_500)))
    (fun (seed, pick, (m_cycles, k_cycles)) ->
      let m = checkpoint_machine ~seed ~pick in
      for _ = 1 to m_cycles do
        Tmachine.tick m
      done;
      let ck = Tmachine.save m in
      let first = record_run m ~k:k_cycles in
      Tmachine.restore m ck;
      let replay = record_run m ~k:k_cycles in
      first = replay)

(* Non-vacuity: a checkpoint that deliberately omits one state family
   (the branch predictors) must be {e caught} by the same oracle —
   otherwise the property above could pass while save was silently
   incomplete. *)
let test_checkpoint_nonvacuity () =
  let diverged = ref false in
  let seed = ref 0 in
  while (not !diverged) && !seed < 5 do
    let m = checkpoint_machine ~seed:!seed ~pick:0 in
    for _ = 1 to 1_000 do
      Tmachine.tick m
    done;
    let ck = Tmachine.save ~omit_predictors:true m in
    let first = record_run m ~k:2_000 in
    Tmachine.restore m ck;
    let replay = record_run m ~k:2_000 in
    if first <> replay then diverged := true;
    incr seed
  done;
  Alcotest.(check bool)
    "omitting predictor state from the checkpoint breaks replay" true
    !diverged

(* ---------- cross-run bisection ---------- *)

let bisect_machine ?(seed = 0) ~variant ~bench ~limit () =
  Tmachine.create
    (Config.timing ~cores:1 variant)
    ~streams:[| Tmachine.spec_stream ~seed ~core:0 ~bench ~limit () |]
    ~stats:(Mi6_util.Stats.create ())

(* BASE vs F+P+M+A on the same stream: structurally different machines,
   so the activity oracle applies; the earliest state split must be in a
   component that hosts audit channels. *)
let test_bisect_variant_pair_diverges () =
  let bench = Mi6_workload.Spec.Gcc in
  let a = bisect_machine ~variant:Config.Base ~bench ~limit:2_000 () in
  let b = bisect_machine ~variant:Config.Fpma ~bench ~limit:2_000 () in
  let r =
    Bisect.run ~interval:64 ~ring:16 ~label_a:"BASE" ~label_b:"F+P+M+A" a b
  in
  match r.Bisect.r_outcome with
  | Bisect.Clean _ -> Alcotest.fail "BASE vs F+P+M+A must diverge"
  | Bisect.Diverged s ->
    Alcotest.(check string) "activity oracle" "activity" s.Bisect.s_oracle;
    Alcotest.(check bool) "positive cycle" true (s.Bisect.s_cycle > 0);
    Alcotest.(check bool) "component hosts audit channels" true
      (Bisect.audit_channels_of_component s.Bisect.s_component <> [])

let test_bisect_identical_machines_clean () =
  let mk () =
    bisect_machine ~variant:Config.Base ~bench:Mi6_workload.Spec.Mcf
      ~limit:1_000 ()
  in
  let r = Bisect.run ~interval:64 ~ring:16 ~label_a:"a" ~label_b:"b" (mk ())
      (mk ())
  in
  (match r.Bisect.r_outcome with
  | Bisect.Clean { cycles_run } ->
    Alcotest.(check bool) "ran to completion" true (cycles_run > 0)
  | Bisect.Diverged s ->
    Alcotest.failf "identical machines diverged at cycle %d" s.Bisect.s_cycle);
  Alcotest.(check bool) "checkpoints taken" true
    (r.Bisect.r_stats.Bisect.cs_taken > 0);
  Alcotest.(check bool) "memory high-water tracked" true
    (r.Bisect.r_stats.Bisect.cs_mem_high_water_words > 0)

(* Same configuration, different streams (the secret-pair shape): the
   exact signature oracle with checkpoint-boundary compare + binary
   search must pin a first divergent cycle. *)
let test_bisect_signature_oracle_pins_cycle () =
  let mk seed =
    bisect_machine ~seed ~variant:Config.Base ~bench:Mi6_workload.Spec.Gcc
      ~limit:1_000 ()
  in
  let r =
    Bisect.run ~interval:64 ~ring:16 ~label_a:"s0" ~label_b:"s1" (mk 0) (mk 7)
  in
  match r.Bisect.r_outcome with
  | Bisect.Clean _ -> Alcotest.fail "different streams must diverge"
  | Bisect.Diverged s ->
    Alcotest.(check string) "signature oracle" "signature" s.Bisect.s_oracle;
    Alcotest.(check bool) "positive cycle" true (s.Bisect.s_cycle > 0);
    Alcotest.(check bool) "field-level diff rendered" true
      (s.Bisect.s_diffs <> [])

let test_concurrent_enclaves_on_two_cores () =
  let _mem, fsims, monitor = make_machine ~cores:2 () in
  let mk regions =
    match
      Monitor.create_enclave monitor ~evbase:enclave_evbase ~evsize:0x2000L
        ~entry:enclave_evbase ~regions
    with
    | Ok id -> id
    | Error _ -> Alcotest.fail "create"
  in
  let load id =
    let code = Asm.to_bytes (enclave_program ()) in
    (match Monitor.load_page monitor id ~vaddr:enclave_evbase ~contents:code with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "load");
    (match
       Monitor.load_page monitor id
         ~vaddr:(Int64.add enclave_evbase 0x1000L)
         ~contents:"\x29" (* 41 *)
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "load2");
    match Monitor.seal monitor id with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "seal"
  in
  let e0 = mk [ 8; 9 ] and e1 = mk [ 12; 13 ] in
  load e0;
  load e1;
  Array.iteri
    (fun i f ->
      let st = Fsim.state f in
      Cpu_state.set_mode st Priv.Supervisor;
      Cpu_state.set_pc st (Int64.of_int (Addr.region_base geometry 1 + (i * 0x1000))))
    fsims;
  (match Monitor.enter monitor ~core:0 e0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enter e0");
  (match Monitor.enter monitor ~core:1 e1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enter e1");
  check_bool "core 0 runs enclave 0" true
    (Monitor.current_domain monitor ~core:0 = Mailbox.To_enclave e0);
  check_bool "core 1 runs enclave 1" true
    (Monitor.current_domain monitor ~core:1 = Mailbox.To_enclave e1);
  (* Interleave the two cores' execution until both exit. *)
  let budget = ref 4_000 in
  while
    (Monitor.current_domain monitor ~core:0 <> Mailbox.To_os
    || Monitor.current_domain monitor ~core:1 <> Mailbox.To_os)
    && !budget > 0
  do
    decr budget;
    ignore (Fsim.step fsims.(0));
    ignore (Fsim.step fsims.(1))
  done;
  check_bool "both enclaves exited" true (!budget > 0);
  check_int "core0 purged twice" 2 (Monitor.purges monitor ~core:0);
  check_int "core1 purged twice" 2 (Monitor.purges monitor ~core:1);
  (* A second enter on a busy enclave is rejected. *)
  (match Monitor.enter monitor ~core:0 e0 with
  | Ok () -> () (* sealed again after exit: fine *)
  | Error _ -> Alcotest.fail "re-enter after exit should work");
  match Monitor.enter monitor ~core:1 e0 with
  | Error Monitor.E_state -> ()
  | _ -> Alcotest.fail "running enclave must not be enterable twice"

(* Random SM-call sequences never break the monitor's invariants: region
   ownership stays a partition of 64, enclave states follow the lifecycle
   automaton, and errors never mutate state observably. *)
let prop_monitor_state_machine =
  QCheck.Test.make ~name:"monitor survives random SM-call sequences" ~count:25
    QCheck.(small_list (pair (int_range 0 5) (int_range 0 3)))
    (fun ops ->
      let _mem, _fsims, monitor = make_machine () in
      let ids = ref [] in
      let pick_id k =
        match !ids with
        | [] -> 0
        | l -> List.nth l (k mod List.length l)
      in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 -> (
            (* create over two regions picked from a small pool *)
            let r = 8 + (2 * (k mod 4)) in
            match
              Monitor.create_enclave monitor ~evbase:enclave_evbase
                ~evsize:0x2000L ~entry:enclave_evbase ~regions:[ r; r + 1 ]
            with
            | Ok id -> ids := id :: !ids
            | Error _ -> ())
          | 1 ->
            ignore
              (Monitor.load_page monitor (pick_id k) ~vaddr:enclave_evbase
                 ~contents:"x")
          | 2 -> ignore (Monitor.seal monitor (pick_id k))
          | 3 -> ignore (Monitor.enter monitor ~core:0 (pick_id k))
          | 4 -> ignore (Monitor.exit_enclave monitor ~core:0)
          | _ -> ignore (Monitor.destroy monitor (pick_id k)))
        ops;
      (* Invariant 1: ownership is still a partition. *)
      let ledger = Monitor.regions monitor in
      let owned =
        List.length (Region.owned_by ledger Region.Monitor)
        + List.length (Region.owned_by ledger Region.Os)
        + List.fold_left
            (fun acc id ->
              acc + List.length (Region.owned_by ledger (Region.Enclave id)))
            0 !ids
      in
      (* Invariant 2: every enclave is in a legal state name. *)
      let legal =
        List.for_all
          (fun id ->
            match Monitor.enclave_state_name monitor id with
            | "loading" | "sealed" | "running" | "dead" -> true
            | _ -> false)
          !ids
      in
      owned = 64 && legal)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_core"
    [
      ( "region",
        [
          Alcotest.test_case "initial ownership" `Quick
            test_region_initial_ownership;
          Alcotest.test_case "transfer" `Quick test_region_transfer;
          Alcotest.test_case "perm mask" `Quick test_region_perm_mask;
        ]
        @ qsuite [ prop_region_partition ] );
      ( "crypto",
        [
          Alcotest.test_case "measurement determinism" `Quick
            test_measurement_determinism;
          Alcotest.test_case "measurement order" `Quick
            test_measurement_order_sensitive;
          Alcotest.test_case "finalize once" `Quick test_measurement_finalize_once;
          Alcotest.test_case "attestation roundtrip" `Quick
            test_attestation_roundtrip;
          Alcotest.test_case "mailbox" `Quick test_mailbox;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "lifecycle runs enclave" `Quick
            test_lifecycle_runs_enclave;
          Alcotest.test_case "enclave memory isolated" `Quick
            test_enclave_memory_isolated_from_os;
          Alcotest.test_case "overlap rejected" `Quick
            test_overlapping_allocation_rejected;
          Alcotest.test_case "destroy scrubs" `Quick
            test_destroy_scrubs_and_returns_regions;
          Alcotest.test_case "attestation" `Quick test_attestation_through_monitor;
          Alcotest.test_case "messaging" `Quick test_messaging_between_domains;
        ] );
      ("monitor_properties", qsuite [ prop_monitor_state_machine ]);
      ( "hostile",
        [
          Alcotest.test_case "async exit on interrupt" `Quick
            test_async_exit_on_interrupt;
          Alcotest.test_case "fault hidden from OS" `Quick
            test_enclave_fault_hidden_from_os;
          Alcotest.test_case "enclave cannot use OS calls" `Quick
            test_enclave_cannot_use_os_sm_calls;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "run_multi completes" `Quick
            test_run_multi_completes;
          Alcotest.test_case "cpi stack sums to cycles" `Quick
            test_cpi_stack_sums_to_cycles;
          Alcotest.test_case "sharing not faster" `Quick
            test_multi_slower_than_solo;
          Alcotest.test_case "concurrent enclaves" `Quick
            test_concurrent_enclaves_on_two_cores;
        ]
        @ qsuite [ prop_quiet_detector_matches_oracle ] );
      ( "checkpoint",
        [
          Alcotest.test_case "non-vacuity: omitted predictors break replay"
            `Quick test_checkpoint_nonvacuity;
        ]
        @ qsuite [ prop_checkpoint_determinism ] );
      ( "bisect",
        [
          Alcotest.test_case "variant pair diverges (activity oracle)" `Quick
            test_bisect_variant_pair_diverges;
          Alcotest.test_case "identical machines stay clean" `Quick
            test_bisect_identical_machines_clean;
          Alcotest.test_case "signature oracle pins the first cycle" `Quick
            test_bisect_signature_oracle_pins_cycle;
        ] );
      ( "ecall_abi",
        [
          Alcotest.test_case "full lifecycle via ecall" `Quick
            test_ecall_abi_lifecycle;
          Alcotest.test_case "bad call rejected" `Quick
            test_ecall_bad_call_rejected;
        ] );
    ]
