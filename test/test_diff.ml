(* Differential tests between the functional reference model and the
   out-of-order timing core, plus the purge-indistinguishability property
   (paper Section 6 transition isolation).

   Random RV64IM programs (forward-only control flow, so every program
   terminates) execute on the functional simulator; the committed path is
   translated to the µop stream the ooo core consumes and retired through
   a full variant machine.  The retirement stream must be exactly the
   committed path — same order, branch outcomes, and store addresses —
   and the functional model itself must be run-to-run deterministic on
   regs, CSRs, and the data window.  Counterexamples shrink and print as
   assembly. *)

open Mi6_isa
open Mi6_core

(* ------------------------------------------------------------------ *)
(* Random program generator                                            *)
(* ------------------------------------------------------------------ *)

let code_base = 0x1000
let data_base = 0x8000
let data_bytes = 1024

(* Scratch registers the generator may write; x31 stays the data
   pointer. *)
let pool = [| 5; 6; 7; 8; 9; 10; 11; 12 |]
let data_ptr = 31

(* Abstract ops: branches carry a skip count instead of a label, so any
   sublist (qcheck shrinking) still materializes into a valid
   forward-branching program. *)
type op =
  | Li_op of int * int (* rd, value *)
  | Alu3 of Instr.alu_op * int * int * int (* rd, rs1, rs2 *)
  | Alui of Instr.alu_op * int * int * int (* rd, rs1, imm *)
  | Mul3 of Instr.mul_op * int * int * int
  | Ld_op of Instr.load_kind * int * int (* rd, offset *)
  | St_op of Instr.store_kind * int * int (* rs2, offset *)
  | Br_skip of Instr.branch_kind * int * int * int (* rs1, rs2, skip *)
  | J_skip of int (* unconditional skip *)

let split_at n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

(* Ops -> assembly items; labels are assigned during materialization so
   they are always defined and always forward. *)
let materialize ops =
  let fresh = ref 0 in
  let rec emit = function
    | [] -> []
    | Li_op (rd, v) :: rest -> Asm.Li (rd, v) :: emit rest
    | Alu3 (op, rd, rs1, rs2) :: rest ->
      Asm.I (Instr.Alu { op; rd; rs1; rs2 }) :: emit rest
    | Alui (op, rd, rs1, imm) :: rest ->
      Asm.I (Instr.Alu_imm { op; rd; rs1; imm }) :: emit rest
    | Mul3 (op, rd, rs1, rs2) :: rest ->
      Asm.I (Instr.Muldiv { op; rd; rs1; rs2 }) :: emit rest
    | Ld_op (kind, rd, offset) :: rest ->
      Asm.I (Instr.Load { kind; rd; rs1 = data_ptr; offset }) :: emit rest
    | St_op (kind, rs2, offset) :: rest ->
      Asm.I (Instr.Store { kind; rs1 = data_ptr; rs2; offset }) :: emit rest
    | Br_skip (kind, rs1, rs2, n) :: rest ->
      let n = min n (List.length rest) in
      let skipped, after = split_at n rest in
      let lbl = Printf.sprintf "L%d" !fresh in
      incr fresh;
      (Asm.Br_to (kind, rs1, rs2, lbl) :: emit skipped)
      @ (Asm.Label lbl :: emit after)
    | J_skip n :: rest ->
      let n = min n (List.length rest) in
      let skipped, after = split_at n rest in
      let lbl = Printf.sprintf "L%d" !fresh in
      incr fresh;
      (Asm.J lbl :: emit skipped) @ (Asm.Label lbl :: emit after)
  in
  let prologue =
    Asm.Li (data_ptr, data_base)
    :: List.map
         (fun r -> Asm.Li (r, (r * 0x1111) - 0x4000))
         (Array.to_list pool)
  in
  prologue @ emit ops @ [ Asm.Label "halt"; Asm.I Instr.Wfi ]

let op_gen =
  let open QCheck.Gen in
  let reg = map (fun i -> pool.(i)) (int_range 0 (Array.length pool - 1)) in
  let src = frequency [ (7, reg); (1, return data_ptr) ] in
  let alu_op =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Sll; Instr.Slt; Instr.Sltu; Instr.Xor;
        Instr.Srl; Instr.Sra; Instr.Or; Instr.And ]
  in
  (* Shift-immediates need a valid shamt; keep immediates to the
     logic/arith ops. *)
  let alui_op =
    oneofl [ Instr.Add; Instr.Slt; Instr.Sltu; Instr.Xor; Instr.Or; Instr.And ]
  in
  let mul_op =
    oneofl [ Instr.Mul; Instr.Mulh; Instr.Div; Instr.Divu; Instr.Rem;
             Instr.Remu ]
  in
  let br_kind =
    oneofl [ Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu;
             Instr.Bgeu ]
  in
  frequency
    [
      (3, map3 (fun op rd (rs1, rs2) -> Alu3 (op, rd, rs1, rs2)) alu_op reg
           (pair src src));
      (3, map3 (fun op rd (rs1, imm) -> Alui (op, rd, rs1, imm)) alui_op reg
           (pair src (int_range (-1024) 1023)));
      (1, map3 (fun op rd (rs1, rs2) -> Mul3 (op, rd, rs1, rs2)) mul_op reg
           (pair src src));
      (1, map2 (fun rd v -> Li_op (rd, v)) reg (int_range (-100_000) 100_000));
      ( 2,
        map3
          (fun kind rd off ->
            let align =
              match kind with Instr.Ld -> 8 | Instr.Lw -> 4 | _ -> 1
            in
            Ld_op (kind, rd, off / align * align))
          (oneofl [ Instr.Ld; Instr.Lw; Instr.Lbu ])
          reg
          (int_range 0 (data_bytes - 9)) );
      ( 2,
        map3
          (fun kind rs2 off ->
            let align =
              match kind with Instr.Sd -> 8 | Instr.Sw -> 4 | _ -> 1
            in
            St_op (kind, rs2, off / align * align))
          (oneofl [ Instr.Sd; Instr.Sw; Instr.Sb ])
          src
          (int_range 0 (data_bytes - 9)) );
      (2, map3 (fun kind (rs1, rs2) n -> Br_skip (kind, rs1, rs2, n)) br_kind
           (pair src src) (int_range 1 4));
      (1, map (fun n -> J_skip n) (int_range 1 4));
    ]

let ops_gen = QCheck.Gen.(list_size (int_range 0 40) op_gen)

let item_to_string = function
  | Asm.Label l -> l ^ ":"
  | Asm.I i -> "  " ^ Instr.to_string i
  | Asm.Br_to (kind, rs1, rs2, l) ->
    let k =
      match kind with
      | Instr.Beq -> "beq" | Instr.Bne -> "bne" | Instr.Blt -> "blt"
      | Instr.Bge -> "bge" | Instr.Bltu -> "bltu" | Instr.Bgeu -> "bgeu"
    in
    Printf.sprintf "  %s x%d, x%d, %s" k rs1 rs2 l
  | Asm.Li (r, v) -> Printf.sprintf "  li x%d, %d" r v
  | Asm.La (r, l) -> Printf.sprintf "  la x%d, %s" r l
  | Asm.J l -> "  j " ^ l
  | Asm.Jal_to (r, l) -> Printf.sprintf "  jal x%d, %s" r l
  | Asm.Call l -> "  call " ^ l
  | Asm.Ret -> "  ret"
  | Asm.Nop -> "  nop"

let print_ops ops =
  String.concat "\n" (List.map item_to_string (materialize ops))

let arbitrary_ops =
  QCheck.make ~print:print_ops ~shrink:QCheck.Shrink.list ops_gen

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

let run_func_of ops =
  let prog = Asm.assemble ~base:code_base (materialize ops) in
  Difftest.run_func ~program:prog ~data_base ~data_bytes ~max_steps:20_000 ()

let check_program variant ops =
  let run = run_func_of ops in
  (* Architectural determinism of the reference model: a fresh replay
     must agree on registers, CSRs, the data window, and the store
     log. *)
  (match Difftest.arch_diff run.Difftest.arch (run_func_of ops).Difftest.arch
   with
  | Some d ->
    QCheck.Test.fail_reportf "functional model nondeterministic: %s" d
  | None -> ());
  let uops =
    Difftest.to_uops run ~func_code_base:code_base ~func_data_base:data_base
  in
  let ooo = Difftest.run_ooo ~variant uops in
  match
    Difftest.compare_commits ~expected:uops ~actual:ooo.Difftest.committed
  with
  | Ok () -> true
  | Error msg ->
    QCheck.Test.fail_reportf "%s divergence: %s"
      (Config.variant_name variant)
      msg

(* >= 500 random programs per runtest across the three variants. *)
let diff_tests =
  List.map
    (fun (variant, count) ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "func/ooo retirement equivalence, %s (%d programs)"
             (Config.variant_name variant)
             count)
        ~count arbitrary_ops (check_program variant))
    [ (Config.Base, 350); (Config.Fpma, 100); (Config.Flush, 100) ]

(* ------------------------------------------------------------------ *)
(* Purge indistinguishability (Section 6 transition isolation)         *)
(* ------------------------------------------------------------------ *)

(* An enclave runs an arbitrary program, traps into the monitor (purge),
   returns (purge again), and then a fixed probe executes.  On the full
   MI6 variant the probe's microarchitectural observables — window
   cycles, mispredicts, L1 I/D misses — must be independent of what the
   enclave did: the purge scrubbed the core-private state and the
   partitioned LLC confines the enclave's residue to its own region.

   The probe lives in disjoint address ranges (code far from the enclave
   pcs, data in region 3 instead of the enclave's region 2), modelling
   the next protection domain. *)

module Uop = Mi6_ooo.Uop

let geometry = Mi6_mem.Addr.default_regions
let enclave_code = Mi6_mem.Addr.region_base geometry 1
let enclave_data = Mi6_mem.Addr.region_base geometry 2
let probe_code = enclave_code + 0x100000
let probe_data = Mi6_mem.Addr.region_base geometry 3

let marker pc kind = { Uop.pc; kind; dst = None; srcs = [] }

(* Fixed probe: a settle gap, then loads touching fresh pages (TLB +
   cache fills), a branch pattern (predictor state), and stores. *)
let probe_uops =
  let gap =
    List.init 1000 (fun i ->
        Uop.alu ~pc:(probe_code + (4 * i)) ~dst:1 ~srcs:[] ())
  in
  let after_gap = probe_code + (4 * 1000) in
  let body =
    List.concat
      (List.init 16 (fun i ->
           let pc = after_gap + (16 * i) in
           [
             Uop.load ~pc ~addr:(probe_data + (i * 4096)) ~dst:2 ~srcs:[] ();
             Uop.branch ~pc:(pc + 4) ~taken:false ~target:(pc + 12)
               ~srcs:[ 2 ] ();
             Uop.alu ~pc:(pc + 8) ~dst:3 ~srcs:[ 2 ] ();
             Uop.store ~pc:(pc + 12) ~addr:(probe_data + (i * 4096) + 64)
               ~srcs:[ 3 ] ();
           ]))
  in
  gap @ body

let stream_of_list uops =
  let rest = ref uops in
  fun () ->
    match !rest with
    | [] -> None
    | u :: tl ->
      rest := tl;
      Some u

(* Enclave prefix generator: straight-line µops over the enclave's own
   code/data ranges — loads, stores, alus, and branches that train the
   predictor. *)
let prefix_gen =
  let open QCheck.Gen in
  let uop i =
    let pc = enclave_code + (4 * i) in
    frequency
      [
        (3, map (fun d -> Uop.alu ~pc ~dst:(5 + (d mod 8)) ~srcs:[] ())
             (int_range 0 7));
        ( 3,
          map
            (fun off ->
              Uop.load ~pc ~addr:(enclave_data + (off * 8)) ~dst:4 ~srcs:[] ())
            (int_range 0 8191) );
        ( 2,
          map
            (fun off ->
              Uop.store ~pc ~addr:(enclave_data + (off * 8)) ~srcs:[ 4 ] ())
            (int_range 0 8191) );
        ( 2,
          map
            (fun taken -> Uop.branch ~pc ~taken ~target:(pc + 4) ~srcs:[ 4 ] ())
            bool );
      ]
  in
  sized_size (int_range 0 120) (fun n ->
      flatten_l (List.init n (fun i -> uop i)))

let arbitrary_prefix =
  QCheck.make
    ~print:(fun uops ->
      String.concat "\n" (List.map Difftest.uop_to_string uops))
    ~shrink:QCheck.Shrink.list prefix_gen

let observable ~variant prefix =
  let n = List.length prefix in
  let trap_pc = enclave_code + (4 * n) in
  let stream =
    prefix
    @ [ marker trap_pc Uop.Enter_kernel; marker (trap_pc + 4) Uop.Exit_kernel ]
    @ probe_uops
  in
  (* Warmup covers the enclave, both purges, and the settle gap; the
     measured window is exactly the probe body. *)
  let warmup = n + 2 + 1000 in
  let r =
    Tmachine.run_stream
      ~timing:(Config.timing ~cores:1 variant)
      ~stream:(stream_of_list stream) ~warmup
      ~measure:(List.length probe_uops - 1000)
      ()
  in
  let get = Mi6_util.Stats.get r.Tmachine.stats in
  ( r.Tmachine.cycles,
    get "core.mispredicts",
    get "l1d.0.misses",
    get "l1i.0.misses" )

let reference = lazy (observable ~variant:Config.Fpma [])

let purge_indistinguishability =
  QCheck.Test.make
    ~name:"post-purge probe observables independent of enclave program"
    ~count:30 arbitrary_prefix (fun prefix ->
      let obs = observable ~variant:Config.Fpma prefix in
      let refr = Lazy.force reference in
      if obs = refr then true
      else
        let p (a, b, c, d) = Printf.sprintf "cycles=%d mispredicts=%d l1d=%d l1i=%d" a b c d in
        QCheck.Test.fail_reportf
          "purge leaked: probe saw %s after this enclave, %s after an empty \
           one"
          (p obs) (p refr))

(* Witness that the harness can see a leak at all: without purges (BASE
   machine, flush_on_trap off) a cache-priming enclave must change the
   probe's timing. *)
let test_base_leak_witness () =
  let priming =
    (* Touch the probe's own lines pre-trap; on BASE they stay resident. *)
    List.init 64 (fun i ->
        Uop.load
          ~pc:(enclave_code + (4 * i))
          ~addr:(probe_data + (i mod 16 * 4096))
          ~dst:4 ~srcs:[] ())
  in
  let idle = observable ~variant:Config.Base [] in
  let primed = observable ~variant:Config.Base priming in
  Alcotest.(check bool)
    "BASE probe distinguishes priming enclave from idle" true (idle <> primed)

(* Converse deterministic anchor on the secure machine: a heavy but
   {e legal} enclave — confined to its own data region, as the monitor's
   exclusive region ownership guarantees — leaves no probe-visible
   trace.  (Priming the probe's own region, as the BASE witness does, is
   not a behaviour the purge must hide: cross-region access is
   architecturally impossible under the security monitor, and the LLC
   residue it would leave is confined by partitioning to the region's
   owner.) *)
let test_fpma_priming_clean () =
  let priming =
    List.concat
      (List.init 64 (fun i ->
           let pc = enclave_code + (8 * i) in
           [
             Uop.load ~pc
               ~addr:(enclave_data + (i mod 16 * 4096))
               ~dst:4 ~srcs:[] ();
             Uop.branch ~pc:(pc + 4) ~taken:true ~target:(pc + 8) ~srcs:[ 4 ]
               ();
           ]))
  in
  let idle = observable ~variant:Config.Fpma [] in
  let primed = observable ~variant:Config.Fpma priming in
  Alcotest.(check bool)
    "F+P+M+A probe cannot distinguish priming enclave from idle" true
    (idle = primed)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_diff"
    [
      ("differential", qsuite diff_tests);
      ( "purge-indistinguishability",
        qsuite [ purge_indistinguishability ]
        @ [
            Alcotest.test_case "BASE leak witness" `Quick
              test_base_leak_witness;
            Alcotest.test_case "F+P+M+A priming clean" `Quick
              test_fpma_priming_clean;
          ] );
    ]
