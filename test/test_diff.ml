(* Differential tests between the functional reference model and the
   out-of-order timing core, plus the purge-indistinguishability property
   (paper Section 6 transition isolation).

   Random RV64IM programs (forward-only control flow, so every program
   terminates) execute on the functional simulator; the committed path is
   translated to the µop stream the ooo core consumes and retired through
   a full variant machine.  The retirement stream must be exactly the
   committed path — same order, branch outcomes, and store addresses —
   and the functional model itself must be run-to-run deterministic on
   regs, CSRs, and the data window.  Counterexamples shrink and print as
   assembly. *)

open Mi6_isa
open Mi6_core

(* The random forward-branching program generator lives in
   {!Mi6_progen.Gen_programs}, shared with the taint-analysis soundness
   property (test_analysis) and the interrupt-schedule harness
   (test_schedule). *)
module Gen_programs = Mi6_progen.Gen_programs

let code_base = Gen_programs.code_base
let data_base = Gen_programs.data_base
let data_bytes = Gen_programs.data_bytes
let materialize = Gen_programs.materialize
let arbitrary_ops = Gen_programs.arbitrary ()

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

let run_func_of ops =
  let prog = Asm.assemble ~base:code_base (materialize ops) in
  Difftest.run_func ~program:prog ~data_base ~data_bytes ~max_steps:20_000 ()

let check_program variant ops =
  let run = run_func_of ops in
  (* Architectural determinism of the reference model: a fresh replay
     must agree on registers, CSRs, the data window, and the store
     log. *)
  (match Difftest.arch_diff run.Difftest.arch (run_func_of ops).Difftest.arch
   with
  | Some d ->
    QCheck.Test.fail_reportf "functional model nondeterministic: %s" d
  | None -> ());
  let uops =
    Difftest.to_uops run ~func_code_base:code_base ~func_data_base:data_base
  in
  let ooo = Difftest.run_ooo ~variant uops in
  match
    Difftest.compare_commits ~expected:uops ~actual:ooo.Difftest.committed
  with
  | Ok () -> true
  | Error msg ->
    (* Map the failing retirement index to its cycle via the flight
       recorder and print the causal slice under the counterexample. *)
    let slice =
      match
        Difftest.first_mismatch ~expected:uops ~actual:ooo.Difftest.committed
      with
      | None -> ""
      | Some index -> (
        try Difftest.explain_divergence ~variant ~index uops
        with _ -> "(slice unavailable)")
    in
    QCheck.Test.fail_reportf "%s divergence: %s\n%s"
      (Config.variant_name variant)
      msg slice

(* >= 500 random programs per runtest across the three variants. *)
let diff_tests =
  List.map
    (fun (variant, count) ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "func/ooo retirement equivalence, %s (%d programs)"
             (Config.variant_name variant)
             count)
        ~count arbitrary_ops (check_program variant))
    [ (Config.Base, 350); (Config.Fpma, 100); (Config.Flush, 100) ]

(* ------------------------------------------------------------------ *)
(* Purge indistinguishability (Section 6 transition isolation)         *)
(* ------------------------------------------------------------------ *)

(* An enclave runs an arbitrary program, traps into the monitor (purge),
   returns (purge again), and then a fixed probe executes.  On the full
   MI6 variant the probe's microarchitectural observables — window
   cycles, mispredicts, L1 I/D misses — must be independent of what the
   enclave did: the purge scrubbed the core-private state and the
   partitioned LLC confines the enclave's residue to its own region.

   The probe lives in disjoint address ranges (code far from the enclave
   pcs, data in region 3 instead of the enclave's region 2), modelling
   the next protection domain. *)

module Uop = Mi6_ooo.Uop

let geometry = Mi6_mem.Addr.default_regions
let enclave_code = Mi6_mem.Addr.region_base geometry 1
let enclave_data = Mi6_mem.Addr.region_base geometry 2
let probe_code = enclave_code + 0x100000
let probe_data = Mi6_mem.Addr.region_base geometry 3

let marker pc kind = { Uop.pc; kind; dst = None; srcs = [] }

(* Settle gap in µops between the return-path purge and the measured
   probe body, derived from the machine configuration (both purges, a
   full ROB drain, a front-end redirect refill, one DRAM round trip)
   rather than a hand-tuned constant — see {!Schedule.settle_uops}.  A
   deeper ROB or a slower purge can no longer silently under-warm the
   property. *)
let settle = Schedule.settle_uops (Config.timing ~cores:1 Config.Fpma)

(* Fixed probe: a settle gap, then loads touching fresh pages (TLB +
   cache fills), a branch pattern (predictor state), and stores. *)
let probe_uops =
  let gap =
    List.init settle (fun i ->
        Uop.alu ~pc:(probe_code + (4 * i)) ~dst:1 ~srcs:[] ())
  in
  let after_gap = probe_code + (4 * settle) in
  let body =
    List.concat
      (List.init 16 (fun i ->
           let pc = after_gap + (16 * i) in
           [
             Uop.load ~pc ~addr:(probe_data + (i * 4096)) ~dst:2 ~srcs:[] ();
             Uop.branch ~pc:(pc + 4) ~taken:false ~target:(pc + 12)
               ~srcs:[ 2 ] ();
             Uop.alu ~pc:(pc + 8) ~dst:3 ~srcs:[ 2 ] ();
             Uop.store ~pc:(pc + 12) ~addr:(probe_data + (i * 4096) + 64)
               ~srcs:[ 3 ] ();
           ]))
  in
  gap @ body

let stream_of_list uops =
  let rest = ref uops in
  fun () ->
    match !rest with
    | [] -> None
    | u :: tl ->
      rest := tl;
      Some u

(* Enclave prefix generator: straight-line µops over the enclave's own
   code/data ranges — loads, stores, alus, and branches that train the
   predictor. *)
let prefix_gen =
  let open QCheck.Gen in
  let uop i =
    let pc = enclave_code + (4 * i) in
    frequency
      [
        (3, map (fun d -> Uop.alu ~pc ~dst:(5 + (d mod 8)) ~srcs:[] ())
             (int_range 0 7));
        ( 3,
          map
            (fun off ->
              Uop.load ~pc ~addr:(enclave_data + (off * 8)) ~dst:4 ~srcs:[] ())
            (int_range 0 8191) );
        ( 2,
          map
            (fun off ->
              Uop.store ~pc ~addr:(enclave_data + (off * 8)) ~srcs:[ 4 ] ())
            (int_range 0 8191) );
        ( 2,
          map
            (fun taken -> Uop.branch ~pc ~taken ~target:(pc + 4) ~srcs:[ 4 ] ())
            bool );
      ]
  in
  sized_size (int_range 0 120) (fun n ->
      flatten_l (List.init n (fun i -> uop i)))

let arbitrary_prefix =
  QCheck.make
    ~print:(fun uops ->
      String.concat "\n" (List.map Difftest.uop_to_string uops))
    ~shrink:QCheck.Shrink.list prefix_gen

let observable ~variant prefix =
  let n = List.length prefix in
  let trap_pc = enclave_code + (4 * n) in
  let stream =
    prefix
    @ [ marker trap_pc Uop.Enter_kernel; marker (trap_pc + 4) Uop.Exit_kernel ]
    @ probe_uops
  in
  (* Warmup covers the enclave, both purges, and the settle gap; the
     measured window is exactly the probe body. *)
  let warmup = n + 2 + settle in
  let r =
    Tmachine.run_stream
      ~timing:(Config.timing ~cores:1 variant)
      ~stream:(stream_of_list stream) ~warmup
      ~measure:(List.length probe_uops - settle)
      ()
  in
  let get = Mi6_util.Stats.get r.Tmachine.stats in
  ( r.Tmachine.cycles,
    get "core.mispredicts",
    get "l1d.0.misses",
    get "l1i.0.misses" )

let reference = lazy (observable ~variant:Config.Fpma [])

let purge_indistinguishability =
  QCheck.Test.make
    ~name:"post-purge probe observables independent of enclave program"
    ~count:30 arbitrary_prefix (fun prefix ->
      let obs = observable ~variant:Config.Fpma prefix in
      let refr = Lazy.force reference in
      if obs = refr then true
      else
        let p (a, b, c, d) = Printf.sprintf "cycles=%d mispredicts=%d l1d=%d l1i=%d" a b c d in
        QCheck.Test.fail_reportf
          "purge leaked: probe saw %s after this enclave, %s after an empty \
           one"
          (p obs) (p refr))

(* Witness that the harness can see a leak at all: without purges (BASE
   machine, flush_on_trap off) a cache-priming enclave must change the
   probe's timing. *)
let test_base_leak_witness () =
  let priming =
    (* Touch the probe's own lines pre-trap; on BASE they stay resident. *)
    List.init 64 (fun i ->
        Uop.load
          ~pc:(enclave_code + (4 * i))
          ~addr:(probe_data + (i mod 16 * 4096))
          ~dst:4 ~srcs:[] ())
  in
  let idle = observable ~variant:Config.Base [] in
  let primed = observable ~variant:Config.Base priming in
  Alcotest.(check bool)
    "BASE probe distinguishes priming enclave from idle" true (idle <> primed)

(* Converse deterministic anchor on the secure machine: a heavy but
   {e legal} enclave — confined to its own data region, as the monitor's
   exclusive region ownership guarantees — leaves no probe-visible
   trace.  (Priming the probe's own region, as the BASE witness does, is
   not a behaviour the purge must hide: cross-region access is
   architecturally impossible under the security monitor, and the LLC
   residue it would leave is confined by partitioning to the region's
   owner.) *)
let test_fpma_priming_clean () =
  let priming =
    List.concat
      (List.init 64 (fun i ->
           let pc = enclave_code + (8 * i) in
           [
             Uop.load ~pc
               ~addr:(enclave_data + (i mod 16 * 4096))
               ~dst:4 ~srcs:[] ();
             Uop.branch ~pc:(pc + 4) ~taken:true ~target:(pc + 8) ~srcs:[ 4 ]
               ();
           ]))
  in
  let idle = observable ~variant:Config.Fpma [] in
  let primed = observable ~variant:Config.Fpma priming in
  Alcotest.(check bool)
    "F+P+M+A probe cannot distinguish priming enclave from idle" true
    (idle = primed)

(* The derived settle window must cover at least the two purges and one
   ROB drain at full commit bandwidth — the structural minimum for the
   probe to start from scrubbed state. *)
let test_settle_floor () =
  let cfg = (Config.timing ~cores:1 Config.Fpma).Config.core in
  let open Mi6_ooo.Core_config in
  Alcotest.(check bool)
    "settle covers both purges and a drain" true
    (settle >= cfg.commit_width * ((2 * cfg.purge_floor) + cfg.rob_entries));
  Alcotest.(check bool) "settle is finite/sane" true (settle < 100_000)

(* ------------------------------------------------------------------ *)
(* Transient-leak witnesses commit secret-independent paths            *)
(* ------------------------------------------------------------------ *)

(* The spectre-v2 and speculative-store-bypass witnesses leak only in
   the wrong-path shadow: their {e committed} paths must be bit-for-bit
   independent of the secret, and those paths must retire faithfully
   through the ooo core.  This anchors what "clean architecturally,
   leaky speculatively" means for the lint verdicts in test_analysis. *)
module Witness = Mi6_analysis.Witness

let witness_committed_uops w secret =
  let run =
    Difftest.run_func
      ~init_regs:[ (Reg.a0, secret) ]
      ~program:(Witness.program w) ~data_base:0x8000 ~data_bytes:1024
      ~max_steps:20_000 ()
  in
  Difftest.to_uops run ~func_code_base:w.Witness.base ~func_data_base:0x8000

let test_transient_witness_commits name () =
  match Witness.find name with
  | None -> Alcotest.failf "unknown witness %s" name
  | Some w ->
    let a = witness_committed_uops w 0x11L in
    let b = witness_committed_uops w 0xA5L in
    (match Difftest.compare_commits ~expected:a ~actual:b with
    | Ok () -> ()
    | Error msg ->
      Alcotest.failf "%s committed path depends on the secret: %s" name msg);
    (* And the secret-independent path retires exactly through the ooo
       core, mispredicted shadow and all. *)
    let ooo = Difftest.run_ooo ~variant:Config.Base a in
    (match
       Difftest.compare_commits ~expected:a ~actual:ooo.Difftest.committed
     with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s ooo divergence: %s" name msg)

let transient_witness_tests =
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "%s commits a secret-independent path" name)
        `Quick
        (test_transient_witness_commits name))
    [ "spectre-v1"; "spectre-v2"; "ssb"; "rsb-underflow" ]

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_diff"
    [
      ("differential", qsuite diff_tests);
      ( "purge-indistinguishability",
        qsuite [ purge_indistinguishability ]
        @ [
            Alcotest.test_case "BASE leak witness" `Quick
              test_base_leak_witness;
            Alcotest.test_case "F+P+M+A priming clean" `Quick
              test_fpma_priming_clean;
            Alcotest.test_case "settle gap derived from config" `Quick
              test_settle_floor;
          ] );
      ("transient-witnesses", transient_witness_tests);
    ]
