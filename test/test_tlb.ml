(* Tests for TLBs, the translation cache, and the page-table walker. *)

open Mi6_tlb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_tlb_hit_miss () =
  let t = Tlb.create Tlb.l1_config in
  check_bool "cold miss" false (Tlb.lookup t ~vpage:5);
  Tlb.insert t ~vpage:5;
  check_bool "hit after insert" true (Tlb.lookup t ~vpage:5);
  check_int "occupancy" 1 (Tlb.occupancy t)

let test_tlb_lru_eviction () =
  (* 4-entry fully associative: fill, touch the oldest, insert one more —
     the LRU (second-oldest) goes. *)
  let t = Tlb.create { Tlb.sets = 1; ways = 4 } in
  List.iter (fun v -> Tlb.insert t ~vpage:v) [ 1; 2; 3; 4 ];
  check_bool "touch 1" true (Tlb.lookup t ~vpage:1);
  Tlb.insert t ~vpage:5;
  check_bool "1 kept (recently used)" true (Tlb.lookup t ~vpage:1);
  check_bool "2 evicted (LRU)" false (Tlb.lookup t ~vpage:2);
  check_bool "5 present" true (Tlb.lookup t ~vpage:5)

let test_tlb_set_mapping () =
  let t = Tlb.create Tlb.l2_config in
  (* Pages that differ by a multiple of 256 share a set in the 256-set L2
     TLB; ways = 4 so the fifth conflicting insert evicts. *)
  for k = 0 to 4 do
    Tlb.insert t ~vpage:(k * 256)
  done;
  let live = ref 0 in
  for k = 0 to 4 do
    if Tlb.lookup t ~vpage:(k * 256) then incr live
  done;
  check_int "one of five evicted" 4 !live;
  check_int "others unaffected" 4 (Tlb.occupancy t)

let test_tlb_flush_semantics () =
  let t = Tlb.create Tlb.l2_config in
  for v = 0 to 999 do
    Tlb.insert t ~vpage:v
  done;
  check_int "filled" 1000 (Tlb.occupancy t);
  (* Per-set flush (one per cycle in purge). *)
  for set = 0 to Tlb.sets t - 1 do
    Tlb.flush_set t ~set
  done;
  check_int "all flushed" 0 (Tlb.occupancy t);
  check_int "self-cleaning LRU: public signature" 0 (Tlb.lru_signature t)

let test_tlb_flush_all_scrubs_lru () =
  let fresh = Tlb.create Tlb.l1_config in
  let used = Tlb.create Tlb.l1_config in
  for v = 0 to 100 do
    Tlb.insert used ~vpage:v;
    ignore (Tlb.lookup used ~vpage:(v / 2))
  done;
  Tlb.flush_all used;
  check_int "flushed TLB indistinguishable from fresh" (Tlb.lru_signature fresh)
    (Tlb.lru_signature used)

let test_trans_cache () =
  let tc = Trans_cache.create ~entries_per_level:24 ~levels:2 in
  check_bool "cold" false (Trans_cache.lookup tc ~level:0 ~prefix:7);
  Trans_cache.insert tc ~level:0 ~prefix:7;
  Trans_cache.insert tc ~level:1 ~prefix:9;
  check_bool "level 0 hit" true (Trans_cache.lookup tc ~level:0 ~prefix:7);
  check_bool "level isolation" false (Trans_cache.lookup tc ~level:1 ~prefix:7);
  check_int "occupancy" 2 (Trans_cache.occupancy tc);
  Trans_cache.flush tc;
  check_int "flush empties" 0 (Trans_cache.occupancy tc)

(* Walker driven against an always-accepting 1-cycle memory. *)
let run_walk ?(accept = fun ~line:_ -> true) ptw ~vpage =
  let result = ref None in
  Ptw.start ptw ~vpage ~on_done:(fun ~reads -> result := Some reads);
  let pending = Queue.create () in
  let budget = ref 100 in
  while !result = None && !budget > 0 do
    decr budget;
    Ptw.tick ptw ~issue:(fun ~line ~id ->
        if accept ~line then begin
          Queue.add id pending;
          true
        end
        else false);
    (* Respond to one outstanding read per cycle. *)
    if not (Queue.is_empty pending) then
      Ptw.mem_response ptw ~id:(Queue.pop pending)
  done;
  match !result with
  | Some reads -> reads
  | None -> Alcotest.fail "walk never finished"

let make_ptw () =
  let tc = Trans_cache.create ~entries_per_level:24 ~levels:2 in
  (Ptw.create ~max_walks:2 ~tcache:tc ~pt_base_line:1_000_000
     ~table_window_lines:4096 (), tc)

let test_ptw_full_walk_then_cached () =
  let ptw, _ = make_ptw () in
  check_int "cold walk reads 3 levels" 3 (run_walk ptw ~vpage:0x12345);
  (* Same region: the translation cache short-circuits to the leaf. *)
  check_int "warm walk reads 1 level" 1 (run_walk ptw ~vpage:0x12346);
  (* Same root prefix, different mid prefix: 2 reads. *)
  check_int "half-warm walk reads 2 levels" 2
    (run_walk ptw ~vpage:(0x12345 lxor (1 lsl 10)))

let test_ptw_pte_locality () =
  let ptw, _ = make_ptw () in
  (* Adjacent pages share a level-0 PTE line (8 PTEs per line). *)
  check_int "adjacent pages same PTE line"
    (Ptw.pte_line ptw ~level:0 ~vpage:8)
    (Ptw.pte_line ptw ~level:0 ~vpage:9);
  check_bool "pages 8 apart differ" true
    (Ptw.pte_line ptw ~level:0 ~vpage:8 <> Ptw.pte_line ptw ~level:0 ~vpage:16);
  (* Levels use disjoint windows. *)
  check_bool "levels disjoint" true
    (Ptw.pte_line ptw ~level:0 ~vpage:0 <> Ptw.pte_line ptw ~level:1 ~vpage:0)

let test_ptw_backpressure_retries () =
  let ptw, _ = make_ptw () in
  let calls = ref 0 in
  let accept ~line:_ =
    incr calls;
    (* Refuse the first two attempts. *)
    !calls > 2
  in
  check_int "walk completes despite refusals" 3 (run_walk ~accept ptw ~vpage:0x999);
  check_bool "walker retried" true (!calls > 3)

let test_ptw_concurrent_walks () =
  let ptw, _ = make_ptw () in
  let done1 = ref None and done2 = ref None in
  Ptw.start ptw ~vpage:0x1000 ~on_done:(fun ~reads -> done1 := Some reads);
  Ptw.start ptw ~vpage:0x2000000 ~on_done:(fun ~reads -> done2 := Some reads);
  check_bool "slots exhausted" false (Ptw.can_start ptw);
  check_int "two active" 2 (Ptw.active_walks ptw);
  let pending = Queue.create () in
  for _ = 1 to 50 do
    Ptw.tick ptw ~issue:(fun ~line:_ ~id ->
        Queue.add id pending;
        true);
    if not (Queue.is_empty pending) then Ptw.mem_response ptw ~id:(Queue.pop pending)
  done;
  check_bool "walk 1 done" true (!done1 = Some 3);
  check_bool "walk 2 done" true (!done2 = Some 3);
  check_int "slots free again" 0 (Ptw.active_walks ptw)

(* LRU property: the most recently touched entry of a fully associative
   TLB survives any insertion sequence that evicts at most ways-1 new
   entries. *)
let prop_lru_mru_survives =
  QCheck.Test.make ~name:"most recently used entry survives w-1 inserts"
    ~count:200
    QCheck.(pair (int_range 2 8) (small_list (int_range 100 200)))
    (fun (ways, inserts) ->
      let t = Tlb.create { Tlb.sets = 1; ways } in
      Tlb.insert t ~vpage:1;
      ignore (Tlb.lookup t ~vpage:1);
      let distinct = List.sort_uniq compare inserts in
      let n = min (ways - 1) (List.length distinct) in
      List.iteri (fun i v -> if i < n then Tlb.insert t ~vpage:v) distinct;
      Tlb.lookup t ~vpage:1)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_tlb"
    [
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_tlb_lru_eviction;
          Alcotest.test_case "set mapping" `Quick test_tlb_set_mapping;
          Alcotest.test_case "flush semantics" `Quick test_tlb_flush_semantics;
          Alcotest.test_case "flush scrubs lru" `Quick
            test_tlb_flush_all_scrubs_lru;
        ]
        @ qsuite [ prop_lru_mru_survives ] );
      ( "trans_cache",
        [ Alcotest.test_case "levels and flush" `Quick test_trans_cache ] );
      ( "ptw",
        [
          Alcotest.test_case "full then cached walk" `Quick
            test_ptw_full_walk_then_cached;
          Alcotest.test_case "pte locality" `Quick test_ptw_pte_locality;
          Alcotest.test_case "backpressure retries" `Quick
            test_ptw_backpressure_retries;
          Alcotest.test_case "concurrent walks" `Quick test_ptw_concurrent_walks;
        ] );
    ]
