(* Unit and property tests for the mi6_util substrate. *)

open Mi6_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fifo                                                                *)
(* ------------------------------------------------------------------ *)

let test_fifo_basic () =
  let q = Fifo.create ~capacity:3 in
  check_bool "fresh queue empty" true (Fifo.is_empty q);
  check_bool "fresh queue can enq" true (Fifo.can_enq q);
  Fifo.enq q 1;
  Fifo.enq q 2;
  Fifo.enq q 3;
  check_bool "full after capacity enqs" true (Fifo.is_full q);
  check_bool "cannot enq when full" false (Fifo.can_enq q);
  check_int "fifo order 1" 1 (Fifo.deq q);
  check_int "fifo order 2" 2 (Fifo.deq q);
  Fifo.enq q 4;
  check_int "fifo order 3" 3 (Fifo.deq q);
  check_int "fifo order 4" 4 (Fifo.deq q);
  check_bool "empty at end" true (Fifo.is_empty q)

let test_fifo_peek_clear () =
  let q = Fifo.create ~capacity:2 in
  Alcotest.check_raises "deq empty" (Failure "Fifo.deq: empty") (fun () ->
      ignore (Fifo.deq q));
  Fifo.enq q 7;
  check_int "peek does not remove" 7 (Fifo.peek q);
  check_int "length after peek" 1 (Fifo.length q);
  Fifo.clear q;
  check_bool "clear empties" true (Fifo.is_empty q);
  Alcotest.(check (option int)) "peek_opt empty" None (Fifo.peek_opt q)

let test_fifo_enq_full () =
  let q = Fifo.create ~capacity:1 in
  Fifo.enq q 0;
  Alcotest.check_raises "enq full" (Failure "Fifo.enq: full") (fun () ->
      Fifo.enq q 1)

let test_fifo_wraparound_iter () =
  let q = Fifo.create ~capacity:4 in
  List.iter (Fifo.enq q) [ 1; 2; 3; 4 ];
  ignore (Fifo.deq q);
  ignore (Fifo.deq q);
  Fifo.enq q 5;
  Fifo.enq q 6;
  Alcotest.(check (list int)) "to_list oldest first" [ 3; 4; 5; 6 ] (Fifo.to_list q)

(* A FIFO behaves like a list queue under any valid op sequence. *)
let prop_fifo_model =
  QCheck.Test.make ~name:"fifo matches list model" ~count:300
    QCheck.(pair (int_range 1 8) (small_list (option small_int)))
    (fun (cap, ops) ->
      let q = Fifo.create ~capacity:cap in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
            if Fifo.can_enq q then begin
              Fifo.enq q x;
              model := !model @ [ x ];
              Fifo.to_list q = !model
            end
            else List.length !model = cap
          | None ->
            if Fifo.can_deq q then begin
              match !model with
              | [] -> false
              | m :: rest ->
                let got = Fifo.deq q in
                model := rest;
                got = m && Fifo.to_list q = !model
            end
            else !model = [])
        ops)

(* Forced fill/drain rounds march head and tail across the circular
   boundary many times; the queue must track the list model at every
   step, including peek and the full/empty flags at the extremes. *)
let prop_fifo_wraparound =
  QCheck.Test.make ~name:"fifo wraparound fill/drain rounds" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 8)))
    (fun (cap, rounds) ->
      let q = Fifo.create ~capacity:cap in
      let model = ref [] in
      let tick = ref 0 in
      List.for_all
        (fun k ->
          let enqs = min k (cap - Fifo.length q) in
          for _ = 1 to enqs do
            incr tick;
            Fifo.enq q !tick;
            model := !model @ [ !tick ]
          done;
          let full_ok = Fifo.is_full q = (List.length !model = cap) in
          let deqs = min k (Fifo.length q) in
          let deq_ok = ref true in
          for _ = 1 to deqs do
            (match !model with
            | m :: rest ->
              deq_ok := !deq_ok && Fifo.peek q = m && Fifo.deq q = m;
              model := rest
            | [] -> deq_ok := false)
          done;
          full_ok && !deq_ok
          && Fifo.to_list q = !model
          && Fifo.is_empty q = (!model = [])
          && Fifo.length q = List.length !model)
        rounds)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basic () =
  let v = Bitvec.create 100 in
  check_bool "fresh bit clear" false (Bitvec.get v 63);
  Bitvec.set v 63;
  check_bool "set bit" true (Bitvec.get v 63);
  check_int "popcount 1" 1 (Bitvec.popcount v);
  Bitvec.clear v 63;
  check_bool "cleared" false (Bitvec.get v 63);
  check_bool "empty again" true (Bitvec.is_empty v)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "oob get" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 8))

let test_bitvec_disjoint () =
  let a = Bitvec.of_indices 64 [ 0; 5; 9 ] in
  let b = Bitvec.of_indices 64 [ 1; 6; 10 ] in
  let c = Bitvec.of_indices 64 [ 9; 20 ] in
  check_bool "disjoint" true (Bitvec.disjoint a b);
  check_bool "overlap detected" false (Bitvec.disjoint a c);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitvec.disjoint: width mismatch") (fun () ->
      ignore (Bitvec.disjoint a (Bitvec.create 32)))

let test_bitvec_full () =
  let v = Bitvec.create_full 70 in
  check_int "all set" 70 (Bitvec.popcount v);
  Bitvec.clear_all v;
  check_int "all clear" 0 (Bitvec.popcount v)

(* Region-mask boundary cases: the linter's region bitvectors live and
   die on bit 0 (the monitor region), the last bit, and full/empty
   masks. *)
let test_bitvec_boundaries () =
  let n = 64 in
  let v = Bitvec.create n in
  Bitvec.set v 0;
  check_bool "bit 0 set" true (Bitvec.get v 0);
  check_int "only bit 0" 1 (Bitvec.popcount v);
  check_bool "to_indices sees bit 0" true (Bitvec.to_indices v = [ 0 ]);
  Bitvec.clear v 0;
  Bitvec.set v (n - 1);
  check_bool "last bit set" true (Bitvec.get v (n - 1));
  check_bool "to_indices sees last bit" true
    (Bitvec.to_indices v = [ n - 1 ]);
  (* Disjointness at the two boundaries. *)
  let lo = Bitvec.of_indices n [ 0 ] and hi = Bitvec.of_indices n [ n - 1 ] in
  check_bool "bit 0 vs last bit disjoint" true (Bitvec.disjoint lo hi);
  check_bool "bit 0 vs itself overlaps" false (Bitvec.disjoint lo lo);
  (* Full and empty vectors. *)
  let full = Bitvec.create_full n and empty = Bitvec.create n in
  check_bool "empty is_empty" true (Bitvec.is_empty empty);
  check_bool "full not empty" false (Bitvec.is_empty full);
  check_bool "full vs empty disjoint" true (Bitvec.disjoint full empty);
  check_bool "full vs bit 0 overlaps" false (Bitvec.disjoint full lo);
  check_bool "full vs last bit overlaps" false (Bitvec.disjoint full hi);
  check_int "full popcount" n (Bitvec.popcount full);
  (* Widths that are not a word multiple keep their tail bits honest. *)
  let odd = Bitvec.create_full 65 in
  check_int "65-bit full popcount" 65 (Bitvec.popcount odd);
  check_bool "65th bit set" true (Bitvec.get odd 64);
  Bitvec.clear odd 64;
  check_int "tail bit clears alone" 64 (Bitvec.popcount odd);
  check_bool "equal after roundtrip" true
    (Bitvec.equal odd (Bitvec.of_indices 65 (List.init 64 Fun.id)))

let prop_bitvec_roundtrip =
  QCheck.Test.make ~name:"bitvec of_indices/to_indices roundtrip" ~count:200
    QCheck.(small_list (int_range 0 199))
    (fun idxs ->
      let sorted = List.sort_uniq compare idxs in
      let v = Bitvec.of_indices 200 idxs in
      Bitvec.to_indices v = sorted && Bitvec.popcount v = List.length sorted)

let prop_bitvec_copy_independent =
  QCheck.Test.make ~name:"bitvec copy is independent" ~count:100
    QCheck.(small_list (int_range 0 63))
    (fun idxs ->
      let v = Bitvec.of_indices 64 idxs in
      let w = Bitvec.copy v in
      Bitvec.set w 0;
      Bitvec.clear w 63;
      Bitvec.equal v (Bitvec.of_indices 64 idxs))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    check_bool "same seed same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_decorrelated () =
  let parent = Rng.of_int 7 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  check_int "split streams do not collide" 0 !same

let test_rng_int_bounds () =
  let r = Rng.of_int 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_choose_weights () =
  let r = Rng.of_int 3 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Rng.choose r [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "zero-weight bucket never chosen" 0 counts.(1);
  check_bool "heavier bucket dominates" true (counts.(2) > counts.(0))

let test_rng_geometric_mean () =
  let r = Rng.of_int 9 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric r ~mean:5.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check_bool "geometric mean near 5" true (mean > 4.5 && mean < 5.5)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  check_int "untouched counter is 0" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.add s "x" 4;
  check_int "incr + add" 5 (Stats.get s "x");
  Stats.set s "y" 100;
  Alcotest.(check (list string)) "sorted names" [ "x"; "y" ] (Stats.names s);
  Stats.reset s;
  check_int "reset zeroes" 0 (Stats.get s "x")

let test_stats_per_kilo () =
  let s = Stats.create () in
  Stats.set s "misses" 30;
  Stats.set s "instrs" 2000;
  Alcotest.(check (float 1e-9)) "mpki" 15.0 (Stats.per_kilo s ~num:"misses" ~den:"instrs");
  Alcotest.(check (float 1e-9)) "zero denominator" 0.0
    (Stats.per_kilo s ~num:"misses" ~den:"nope")

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.set a "x" 1;
  Stats.set b "x" 2;
  Stats.set b "y" 3;
  Stats.merge ~into:a b;
  check_int "merged existing" 3 (Stats.get a "x");
  check_int "merged fresh" 3 (Stats.get a "y")

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_cells () =
  check_string "cell_f" "3.5" (Table.cell_f 3.49999);
  check_string "cell_pct" "16.4%" (Table.cell_pct 16.42);
  let t = Table.create ~title:"t" ~columns:[ "only" ] in
  Alcotest.check_raises "bad row width"
    (Invalid_argument "Table.add_row: cell count does not match columns")
    (fun () -> Table.add_row t "r" [ "1"; "2" ])

let test_table_contains_rows () =
  let t = Table.create ~title:"Overheads" ~columns:[ "ovh" ] in
  Table.add_row t "gcc" [ "21.6%" ];
  Table.add_row t "astar" [ "10.9%" ];
  let s = Table.render t in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "gcc row" true (contains "gcc" s);
  check_bool "astar row" true (contains "astar" s);
  check_bool "column header" true (contains "ovh" s)

(* Model for render: every label/cell appears, one line per row plus
   title, header, and rule, and all lines are padded to equal width. *)
let prop_table_render_model =
  let cell = QCheck.Gen.(map (Printf.sprintf "c%d") (int_range 0 999)) in
  let row =
    QCheck.Gen.(
      pair (map (Printf.sprintf "r%d") (int_range 0 999)) (list_size (return 2) cell))
  in
  QCheck.Test.make ~name:"table render matches row model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) row))
    (fun rows ->
      let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
      List.iter (fun (l, cs) -> Table.add_row t l cs) rows;
      let lines = String.split_on_char '\n' (Table.render t) in
      (* title, header, rule, one line per row, trailing "". *)
      List.length lines = 4 + List.length rows
      && List.for_all2
           (fun (l, cs) line ->
             let mem s =
               let nl = String.length s and hl = String.length line in
               let rec go i =
                 i + nl <= hl && (String.sub line i nl = s || go (i + 1))
               in
               go 0
             in
             List.for_all mem (l :: cs))
           rows
           (List.filteri (fun i _ -> i >= 3) lines
           |> List.filter (fun l -> l <> ""))
      &&
      match List.filteri (fun i _ -> i >= 1) lines |> List.filter (( <> ) "") with
      | [] -> rows = []
      | body :: rest ->
        List.for_all (fun l -> String.length l = String.length body) rest)

(* ------------------------------------------------------------------ *)
(* Sha256 / Hmac                                                       *)
(* ------------------------------------------------------------------ *)

(* NIST FIPS 180-4 test vectors. *)
let test_sha256_vectors () =
  check_string "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.to_hex (Sha256.digest ""));
  check_string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.to_hex (Sha256.digest "abc"));
  check_string "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.to_hex
       (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check_string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.digest (String.make 1_000_000 'a')))

let test_sha256_incremental () =
  let whole = Sha256.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  Sha256.feed ctx "the quick brown ";
  Sha256.feed ctx "fox jumps over ";
  Sha256.feed ctx "the lazy dog";
  check_string "incremental equals one-shot" (Sha256.to_hex whole)
    (Sha256.to_hex (Sha256.finalize ctx))

let test_sha256_finalize_once () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "finalize twice"
    (Invalid_argument "Sha256.finalize: already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

(* RFC 4231 test case 2. *)
let test_hmac_vector () =
  let tag = Hmac.mac ~key:"Jefe" "what do ya want for nothing?" in
  check_string "rfc4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.to_hex tag)

let test_hmac_long_key () =
  (* RFC 4231 test case 6: 131-byte key forces the key-hash path. *)
  let key = String.make 131 '\xaa' in
  let tag = Hmac.mac ~key "Test Using Larger Than Block-Size Key - Hash Key First" in
  check_string "rfc4231 #6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.to_hex tag)

let test_hmac_verify () =
  let key = "platform-root" and msg = "measurement||challenge" in
  let tag = Hmac.mac ~key msg in
  check_bool "good tag verifies" true (Hmac.verify ~key ~tag msg);
  check_bool "flipped bit fails" false
    (Hmac.verify ~key ~tag (msg ^ "x"));
  let bad = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) tag in
  check_bool "tampered tag fails" false (Hmac.verify ~key ~tag:bad msg)

let prop_sha256_incremental_split =
  QCheck.Test.make ~name:"sha256 arbitrary split equals one-shot" ~count:100
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      let ctx = Sha256.init () in
      Sha256.feed ctx a;
      Sha256.feed ctx b;
      Sha256.finalize ctx = Sha256.digest (a ^ b))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_util"
    [
      ( "fifo",
        [
          Alcotest.test_case "basic order and fullness" `Quick test_fifo_basic;
          Alcotest.test_case "peek and clear" `Quick test_fifo_peek_clear;
          Alcotest.test_case "enq on full raises" `Quick test_fifo_enq_full;
          Alcotest.test_case "wraparound iteration" `Quick test_fifo_wraparound_iter;
        ]
        @ qsuite [ prop_fifo_model; prop_fifo_wraparound ] );
      ( "bitvec",
        [
          Alcotest.test_case "set/get/clear" `Quick test_bitvec_basic;
          Alcotest.test_case "bounds checking" `Quick test_bitvec_bounds;
          Alcotest.test_case "disjointness" `Quick test_bitvec_disjoint;
          Alcotest.test_case "full/clear_all" `Quick test_bitvec_full;
          Alcotest.test_case "region boundaries" `Quick
            test_bitvec_boundaries;
        ]
        @ qsuite [ prop_bitvec_roundtrip; prop_bitvec_copy_independent ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split decorrelated" `Quick test_rng_split_decorrelated;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "weighted choice" `Quick test_rng_choose_weights;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "per kilo" `Quick test_stats_per_kilo;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "table",
        [
          Alcotest.test_case "cells and width check" `Quick test_table_cells;
          Alcotest.test_case "render contains rows" `Quick test_table_contains_rows;
        ]
        @ qsuite [ prop_table_render_model ] );
      ( "crypto",
        [
          Alcotest.test_case "sha256 NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
          Alcotest.test_case "sha256 finalize once" `Quick test_sha256_finalize_once;
          Alcotest.test_case "hmac rfc4231 #2" `Quick test_hmac_vector;
          Alcotest.test_case "hmac rfc4231 #6 long key" `Quick test_hmac_long_key;
          Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
        ]
        @ qsuite [ prop_sha256_incremental_split ] );
    ]
