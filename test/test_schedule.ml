(* Tests for the adversarial interrupt-schedule noninterference harness
   (lib/core/Schedule + lib/gen): qcheck adversaries generate arbitrary
   preemption schedules against random enclave bodies, and on the full
   MI6 variant the attacker's per-window observables must be independent
   of the body for every schedule — while BASE is falsified by small,
   committed witness schedules whose replay strings round-trip exactly
   and whose Audit localization names the leaking channel. *)

open Mi6_core
module Body = Mi6_progen.Body
module Ni_gen = Mi6_progen.Ni_gen
module Pool = Mi6_exec.Pool
module Audit = Mi6_obs.Audit

let parse str =
  match Schedule.of_string str with
  | Ok s -> s
  | Error e -> Alcotest.failf "unparseable schedule %S: %s" str e

(* ------------------------------------------------------------------ *)
(* Schedule strings: round-trip, tolerance, rejection                  *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print s) = s (300 schedules)" ~count:300
    (Ni_gen.arbitrary ()) (fun s ->
      let str = Schedule.to_string s in
      match Schedule.of_string str with
      | Ok s' when s' = s -> true
      | Ok s' ->
        QCheck.Test.fail_reportf "round-trip changed %s into %s" str
          (Schedule.to_string s')
      | Error e -> QCheck.Test.fail_reportf "print produced unparseable %s: %s" str e)

let test_parse_tolerance () =
  let canonical = parse "ni1:BASE:b0:-:probe" in
  List.iter
    (fun str ->
      Alcotest.(check bool)
        (Printf.sprintf "%S parses to the canonical schedule" str)
        true
        (Schedule.of_string str = Ok canonical))
    [ " ni1:BASE:b0:-:probe\n"; "ni1:base:b0:-:PROBE"; "ni1:Base:b0::probe" ]

let test_parse_rejects () =
  List.iter
    (fun str ->
      match Schedule.of_string str with
      | Ok _ -> Alcotest.failf "%S should not parse" str
      | Error _ -> ())
    [
      "";
      "ni2:BASE:b0:-:probe";
      "ni1:BASE:b0:-";
      "ni1:BASE:b0:-:probe:extra";
      "ni1:NOPE:b0:-:probe";
      "ni1:BASE:0:-:probe";
      "ni1:BASE:b0:x4=probe:probe";
      "ni1:BASE:b0:i4=nope:probe";
      "ni1:BASE:b-1:-:probe";
    ]

(* ------------------------------------------------------------------ *)
(* Shrinker: well-founded, monotone on a real counterexample           *)
(* ------------------------------------------------------------------ *)

let prop_shrink_decreases =
  QCheck.Test.make
    ~name:"every shrink candidate strictly decreases the measure (300)"
    ~count:300 (Ni_gen.arbitrary ()) (fun s ->
      let m = Ni_gen.measure s in
      List.for_all (fun s' -> Ni_gen.measure s' < m) (Ni_gen.shrink s))

(* Greedy shrinking of a known BASE falsifier must preserve the
   falsification at every accepted step (greedy_shrink re-checks), end
   at a fixpoint, and never grow the schedule. *)
let test_shrink_monotone () =
  let s0 = parse "ni1:BASE:b7:-:train" in
  let falsifies s = (Body.check s).Schedule.v_falsified in
  Alcotest.(check bool) "starting schedule falsifies BASE" true (falsifies s0);
  let s' = Ni_gen.greedy_shrink ~falsifies s0 in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk schedule %s still falsifies" (Schedule.to_string s'))
    true (falsifies s');
  Alcotest.(check bool) "measure did not increase" true
    (Ni_gen.measure s' <= Ni_gen.measure s0);
  Alcotest.(check bool) "result is a fixpoint" true
    (not (List.exists falsifies (Ni_gen.shrink s')))

(* ------------------------------------------------------------------ *)
(* The hyperproperty on the full MI6 variant                           *)
(* ------------------------------------------------------------------ *)

(* >= 200 adversarial schedules per runtest: random preemption points
   (instruction- and cycle-indexed), random attacker programs, random
   enclave bodies — zero observable dependence on the body. *)
let prop_fpma_noninterference =
  QCheck.Test.make
    ~name:
      "F+P+M+A: attacker observation independent of enclave body (200 \
       schedules)"
    ~count:200
    (Ni_gen.arbitrary ~variant:Config.Fpma ())
    (fun s ->
      let v = Body.check s in
      if not v.Schedule.v_falsified then true
      else
        QCheck.Test.fail_reportf
          "schedule %s distinguishes the enclave body from the \
           reference:@.body:@.%a@.reference:@.%a"
          (Schedule.to_string s) Schedule.pp_observation v.Schedule.v_obs
          Schedule.pp_observation v.Schedule.v_ref_obs)

(* Structural sanity on a clean schedule: the attacker commits exactly
   its own µops in every window, so differences can only come from
   timing and miss counters. *)
let test_window_commit_counts () =
  let s = parse "ni1:F+P+M+A:b0:i4=train,c50=sweep:probe" in
  let v = Body.check s in
  Alcotest.(check bool) "schedule is clean on F+P+M+A" false
    v.Schedule.v_falsified;
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Schedule.attacker_name w.Schedule.w_attacker ^ " window commits")
        (List.length (Schedule.attacker_uops w.Schedule.w_attacker))
        w.Schedule.w_commits)
    v.Schedule.v_obs

(* ------------------------------------------------------------------ *)
(* Non-vacuity: BASE witnesses per schedule class                      *)
(* ------------------------------------------------------------------ *)

(* One committed falsifier per preemption class — instruction-indexed,
   cycle-indexed, and final-window-only — each of which must both
   falsify BASE and localize to a named hardware channel. *)
let base_witnesses =
  [
    ("instruction-indexed", "ni1:BASE:b1:i4=probe:probe");
    ("cycle-indexed", "ni1:BASE:b2:c50=train:probe");
    ("final-window-only", "ni1:BASE:b3:-:probe");
  ]

let test_base_witness (label, str) () =
  let s = parse str in
  let v = Body.check s in
  Alcotest.(check bool)
    (Printf.sprintf "%s witness %s falsifies BASE" label str)
    true v.Schedule.v_falsified;
  match Audit.first_leaking_channel (Body.localize s) with
  | Some _ -> ()
  | None ->
    Alcotest.failf "%s falsifies BASE but Audit found no leaking channel" str

(* The secure variant is not falsified by the same witness schedules:
   the purge pair plus LLC partitioning close exactly the channels the
   BASE replays open. *)
let test_witnesses_clean_on_fpma () =
  List.iter
    (fun (_, str) ->
      let s = { (parse str) with Schedule.variant = Config.Fpma } in
      Alcotest.(check bool)
        (Schedule.to_string s ^ " clean on F+P+M+A")
        false
        (Body.check s).Schedule.v_falsified)
    base_witnesses

(* ------------------------------------------------------------------ *)
(* Replay determinism across worker counts                             *)
(* ------------------------------------------------------------------ *)

(* The CLI fans replays out over a domain pool; the rendered verdicts
   must be byte-identical no matter how many domains ran them. *)
let test_jobs_determinism () =
  let scheds =
    List.map parse
      [
        "ni1:BASE:b1:i4=probe:probe";
        "ni1:F+P+M+A:b2:c50=train:probe";
        "ni1:BASE:b3:-:probe";
        "ni1:F+P+M+A:b5:i2=sweep,c900=stores:train";
      ]
  in
  let render v =
    Format.asprintf "%s %b %a"
      (Schedule.to_string v.Schedule.v_schedule)
      v.Schedule.v_falsified Schedule.pp_observation v.Schedule.v_obs
  in
  let run domains =
    let pool = Pool.create ~domains in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.run_list pool scheds (fun s -> render (Body.check s)))
  in
  Alcotest.(check (list string)) "1 vs 2 domains identical" (run 1) (run 2)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_schedule"
    [
      ( "strings",
        qsuite [ prop_roundtrip ]
        @ [
            Alcotest.test_case "parse tolerance" `Quick test_parse_tolerance;
            Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
          ] );
      ( "shrinker",
        qsuite [ prop_shrink_decreases ]
        @ [
            Alcotest.test_case "greedy shrink monotone on BASE falsifier"
              `Quick test_shrink_monotone;
          ] );
      ( "noninterference",
        qsuite [ prop_fpma_noninterference ]
        @ [
            Alcotest.test_case "window commit counts" `Quick
              test_window_commit_counts;
          ] );
      ( "base-witnesses",
        List.map
          (fun ((label, _) as w) ->
            Alcotest.test_case (label ^ " falsifier") `Quick
              (test_base_witness w))
          base_witnesses
        @ [
            Alcotest.test_case "witness schedules clean on F+P+M+A" `Quick
              test_witnesses_clean_on_fpma;
          ] );
      ("determinism", [ Alcotest.test_case "replay independent of --jobs" `Quick test_jobs_determinism ]);
    ]
