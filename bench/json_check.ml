(* CI helper: exit 0 iff every argument file parses as JSON.  With
   --require KEY, the top-level object must also contain KEY. *)
let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let require, files =
    let rec go acc_req acc_files = function
      | "--require" :: k :: rest -> go (k :: acc_req) acc_files rest
      | f :: rest -> go acc_req (f :: acc_files) rest
      | [] -> (acc_req, List.rev acc_files)
    in
    go [] [] args
  in
  if files = [] then begin
    prerr_endline "usage: json_check [--require KEY]... FILE...";
    exit 2
  end;
  let fail = ref false in
  List.iter
    (fun file ->
      match
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Mi6_obs.Json.of_string s
      with
      | exception Sys_error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        fail := true
      | exception Failure msg ->
        Printf.eprintf "%s: invalid JSON: %s\n" file msg;
        fail := true
      | json ->
        let missing =
          List.filter
            (fun k -> Mi6_obs.Json.member k json = None)
            require
        in
        if missing <> [] then begin
          Printf.eprintf "%s: missing key(s): %s\n" file
            (String.concat ", " missing);
          fail := true
        end
        else Printf.printf "%s: ok\n" file)
    files;
  exit (if !fail then 1 else 0)
