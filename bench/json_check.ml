(* CI schema checker for the observability exports.

   usage: json_check [--require KEY]... [--chrome-trace FILE]...
                     [--history FILE]... [--telemetry FILE]...
                     [--min-snapshots N] [--bisect FILE]...
                     [--agrees-audit FILE] [--ni FILE]...
                     [--lint FILE]... [FILE]...

   Plain FILE arguments must parse as JSON (and contain every --require
   KEY at the top level).  --chrome-trace files must additionally follow
   the Chrome trace_event schema the simulator emits (a "traceEvents"
   list whose entries carry name/ph/ts/pid/tid with the right types).
   --history files are BENCH_history.jsonl databases: every non-blank
   line must decode into a Perfdb record.  --telemetry files are
   Telemetry JSONL streams: every line must validate against the
   snapshot schema, with dense sequence numbers and strictly increasing
   cycles; --min-snapshots additionally bounds the count from below.
   --bisect files must follow the mi6.bisect/1 slice-report schema;
   --agrees-audit additionally cross-checks each diverged bisect report
   against an audit JSON: the auditor's first leaking baseline channel
   must be among the channels the bisector's diverging component hosts.
   --ni files must follow the mi6.ni/1 noninterference-report schema:
   every schedule string replayable through the real parser, every
   falsified result localized to a known audit channel.
   --lint files must follow the mi6.lint/2 static channel-inference
   schema: kinds and channel names from the analyzer's vocabulary,
   clean flags consistent with findings, and — when the report was
   produced with --channels — every speculative program finding naming
   at least one channel it can leak through.
   Exit 0 iff everything passes. *)

open Mi6_obs

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One problem string per violated constraint; [] = valid. *)
let check_chrome_trace json =
  match Json.member "traceEvents" json with
  | None -> [ "missing top-level \"traceEvents\"" ]
  | Some (Json.List events) ->
    let check_event i ev =
      let field name = Json.member name ev in
      let problems = ref [] in
      let want name pred kind =
        match field name with
        | None ->
          problems := Printf.sprintf "event %d: missing %S" i name :: !problems
        | Some v ->
          if not (pred v) then
            problems :=
              Printf.sprintf "event %d: %S is not %s" i name kind :: !problems
      in
      let is_string = function Json.String _ -> true | _ -> false in
      let is_int = function Json.Int _ -> true | _ -> false in
      want "name" is_string "a string";
      want "ph" (function
        | Json.String ("B" | "E" | "i" | "C" | "X" | "M") -> true
        | _ -> false)
        "a phase (B/E/i/C/X/M)";
      want "ts" is_int "an integer timestamp";
      want "pid" is_int "an integer";
      want "tid" is_int "an integer";
      List.rev !problems
    in
    List.concat (List.mapi check_event events)
  | Some _ -> [ "\"traceEvents\" is not a list" ]

(* Every non-blank JSONL line must decode into a Perfdb record. *)
let check_history file =
  let s = read_file file in
  let lines = String.split_on_char '\n' s in
  let problems = ref [] in
  let runs = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match Json.of_string line with
        | exception Failure msg ->
          problems :=
            Printf.sprintf "line %d: invalid JSON: %s" (i + 1) msg :: !problems
        | json -> (
          match Perfdb.record_of_json json with
          | Ok _ -> incr runs
          | Error msg ->
            problems :=
              Printf.sprintf "line %d: bad record: %s" (i + 1) msg :: !problems))
    lines;
  if !runs = 0 && !problems = [] then
    problems := [ "no records (empty history)" ];
  List.rev !problems

(* mi6.bisect/1 slice-report schema, plus the optional channel-agreement
   cross-check against an audit report. *)
let check_bisect ?audit json =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let str_field name =
    match Json.member name json with
    | Some (Json.String s) -> Some s
    | Some _ ->
      bad "%S is not a string" name;
      None
    | None ->
      bad "missing %S" name;
      None
  in
  let int_field ?(where = json) name =
    match Json.member name where with
    | Some (Json.Int i) when i >= 0 -> Some i
    | Some _ -> bad "%S is not a non-negative int" name; None
    | None -> bad "missing %S" name; None
  in
  let string_list name =
    match Json.member name json with
    | Some (Json.List l)
      when List.for_all (function Json.String _ -> true | _ -> false) l ->
      Some (List.map (function Json.String s -> s | _ -> "") l)
    | Some _ -> bad "%S is not a list of strings" name; None
    | None -> bad "missing %S" name; None
  in
  (match str_field "schema" with
  | Some "mi6.bisect/1" | None -> ()
  | Some other -> bad "schema is %S, want \"mi6.bisect/1\"" other);
  ignore (str_field "label_a");
  ignore (str_field "label_b");
  (match Json.member "checkpoints" json with
  | Some (Json.Obj _ as cks) ->
    List.iter
      (fun f -> ignore (int_field ~where:cks f))
      [ "interval"; "taken"; "retained"; "mem_high_water_words"; "probes" ]
  | Some _ -> bad "\"checkpoints\" is not an object"
  | None -> bad "missing \"checkpoints\"");
  (match Json.member "diverged" json with
  | Some (Json.Bool true) ->
    ignore (int_field "cycle");
    ignore (int_field "checkpoint_cycle");
    (match str_field "oracle" with
    | Some ("signature" | "activity") | None -> ()
    | Some other -> bad "oracle is %S, want signature|activity" other);
    let component = str_field "component" in
    (match (string_list "components", component) with
    | Some cs, Some c when not (List.mem c cs) ->
      bad "component %S missing from \"components\"" c
    | _ -> ());
    let channels = string_list "audit_channels" in
    List.iter
      (fun name -> ignore (string_list name))
      [ "uops_a"; "uops_b"; "trace_a"; "trace_b" ];
    (match Json.member "field_diff" json with
    | Some (Json.List diffs) ->
      List.iteri
        (fun i d ->
          List.iter
            (fun f ->
              match Json.member f d with
              | Some (Json.String _) -> ()
              | _ -> bad "field_diff[%d]: missing string %S" i f)
            [ "component"; "a"; "b"; "first_diff" ])
        diffs
    | Some _ -> bad "\"field_diff\" is not a list"
    | None -> bad "missing \"field_diff\"");
    (match (audit, channels) with
    | Some audit_json, Some channels -> (
      match
        Option.bind (Json.member "verdict" audit_json) (Json.member "baseline_channel")
      with
      | Some (Json.String ch) ->
        if not (List.mem ch channels) then
          bad
            "audit's leaking channel %S is not hosted by the diverging \
             component (channels: %s)"
            ch (String.concat ", " channels)
      | _ -> bad "audit report lacks verdict.baseline_channel")
    | _ -> ())
  | Some (Json.Bool false) -> ignore (int_field "cycles_run")
  | Some _ -> bad "\"diverged\" is not a bool"
  | None -> bad "missing \"diverged\"");
  List.rev !problems

(* mi6.ni/1: the interrupt-schedule noninterference report.  Every
   schedule string must parse back through the real parser (the strings
   are the replay artifact CI archives), every falsified result must
   carry a leaking channel the auditor actually has, and the falsified
   count must agree with the per-result verdicts. *)
let check_ni json =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let channel_names =
    List.map Audit.channel_name Audit.all_channels
  in
  (match Json.member "schema" json with
  | Some (Json.String "mi6.ni/1") -> ()
  | Some (Json.String other) -> bad "schema is %S, want \"mi6.ni/1\"" other
  | _ -> bad "missing string \"schema\"");
  (match Json.member "mode" json with
  | Some (Json.String ("generate" | "replay")) -> ()
  | _ -> bad "\"mode\" is not generate|replay");
  let int_field name =
    match Json.member name json with
    | Some (Json.Int i) when i >= 0 -> Some i
    | _ ->
      bad "missing non-negative int %S" name;
      None
  in
  let count = int_field "count" in
  let falsified = int_field "falsified" in
  (match Json.member "results" json with
  | Some (Json.List results) ->
    (match count with
    | Some n when n <> List.length results ->
      bad "count is %d but \"results\" has %d entries" n (List.length results)
    | _ -> ());
    let seen_falsified = ref 0 in
    List.iteri
      (fun i r ->
        let sched name =
          match Json.member name r with
          | Some (Json.String s) -> (
            match Mi6_core.Schedule.of_string s with
            | Ok parsed -> Some parsed
            | Error e -> bad "results[%d].%s: %s" i name e; None)
          | Some _ -> bad "results[%d].%s is not a string" i name; None
          | None -> None
        in
        (match sched "schedule" with
        | None ->
          if Json.member "schedule" r = None then
            bad "results[%d]: missing \"schedule\"" i
        | Some parsed -> (
          match Json.member "variant" r with
          | Some (Json.String v) ->
            if
              Mi6_core.Config.variant_of_name v
              <> Some parsed.Mi6_core.Schedule.variant
            then bad "results[%d]: variant %S disagrees with the schedule" i v
          | _ -> bad "results[%d]: missing string \"variant\"" i));
        (match Json.member "falsified" r with
        | Some (Json.Bool f) ->
          if f then begin
            incr seen_falsified;
            (match Json.member "shrunk" r with
            | None -> ()
            | Some (Json.String _) -> ignore (sched "shrunk")
            | Some _ -> bad "results[%d].shrunk is not a string" i);
            match Json.member "channel" r with
            | Some (Json.String c) ->
              if not (List.mem c channel_names) then
                bad "results[%d]: unknown audit channel %S" i c
            | _ ->
              bad
                "results[%d]: falsified but no leaking \"channel\" (audit \
                 disagreement)"
                i
          end
        | _ -> bad "results[%d]: missing bool \"falsified\"" i);
        List.iter
          (fun name ->
            match Json.member name r with
            | Some (Json.List _) -> ()
            | _ -> bad "results[%d]: missing list %S" i name)
          [ "observation"; "reference" ])
      results;
    (match falsified with
    | Some n when n <> !seen_falsified ->
      bad "falsified is %d but %d result(s) are falsified" n !seen_falsified
    | _ -> ())
  | Some _ -> bad "\"results\" is not a list"
  | None -> bad "missing \"results\"");
  List.rev !problems

(* mi6.lint/2: the static channel-inference report.  Findings carry
   their speculation/rsb provenance and value-set target; with channels
   on, every program finding must list its candidate and open channels
   (known names, opens a subset of candidates), every speculative
   finding must name at least one channel, and every config finding must
   map its check to a channel or an explicit null. *)
let check_lint json =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let channel_names =
    List.map Mi6_analysis.Channel.name Mi6_analysis.Channel.all
  in
  let kind_names =
    [
      "branch-condition"; "jump-target"; "load-address"; "store-address";
      "variable-latency"; "shared-write"; "shared-read";
    ]
  in
  (match Json.member "schema" json with
  | Some (Json.String "mi6.lint/2") -> ()
  | Some (Json.String other) -> bad "schema is %S, want \"mi6.lint/2\"" other
  | _ -> bad "missing string \"schema\"");
  List.iter
    (fun name ->
      match Json.member name json with
      | Some (Json.String _) -> ()
      | _ -> bad "missing string %S" name)
    [ "tool"; "machine" ];
  (match Json.member "window" json with
  | Some (Json.Int w) when w >= 0 -> ()
  | _ -> bad "missing non-negative int \"window\"");
  let channels_on =
    match Json.member "channels" json with
    | Some (Json.Bool b) -> b
    | _ ->
      bad "missing bool \"channels\"";
      false
  in
  let total = ref 0 in
  let channel_list ~where name j =
    match Json.member name j with
    | Some (Json.List l) ->
      let names =
        List.filter_map (function Json.String s -> Some s | _ -> None) l
      in
      if List.length names <> List.length l then
        bad "%s: %S is not a list of strings" where name;
      List.iter
        (fun c ->
          if not (List.mem c channel_names) then
            bad "%s: unknown channel %S in %S" where c name)
        names;
      Some names
    | Some _ ->
      bad "%s: %S is not a list" where name;
      None
    | None ->
      bad "%s: missing %S (channels report)" where name;
      None
  in
  let check_program_finding ~where f =
    (match Json.member "pc" f with
    | Some (Json.Int pc) when pc >= 0 -> ()
    | _ -> bad "%s: missing non-negative int \"pc\"" where);
    (match Json.member "kind" f with
    | Some (Json.String k) ->
      if not (List.mem k kind_names) then bad "%s: unknown kind %S" where k
    | _ -> bad "%s: missing string \"kind\"" where);
    let speculative =
      match Json.member "speculative" f with
      | Some (Json.Bool b) -> b
      | _ ->
        bad "%s: missing bool \"speculative\"" where;
        false
    in
    (match Json.member "rsb" f with
    | Some (Json.Bool _) -> ()
    | _ -> bad "%s: missing bool \"rsb\"" where);
    (match Json.member "target" f with
    | Some (Json.String _) | Some Json.Null -> ()
    | _ -> bad "%s: \"target\" is neither string nor null" where);
    (match Json.member "width" f with
    | Some (Json.Int w) when w >= 0 -> ()
    | _ -> bad "%s: missing non-negative int \"width\"" where);
    List.iter
      (fun name ->
        match Json.member name f with
        | Some (Json.String _) -> ()
        | _ -> bad "%s: missing string %S" where name)
      [ "instr"; "detail" ];
    if channels_on then begin
      let chans = channel_list ~where "channels" f in
      let opens = channel_list ~where "open_channels" f in
      (match (chans, opens) with
      | Some cs, Some os ->
        List.iter
          (fun o ->
            if not (List.mem o cs) then
              bad "%s: open channel %S not among \"channels\"" where o)
          os
      | _ -> ());
      match chans with
      | Some [] when speculative ->
        bad "%s: speculative finding names no channel" where
      | _ -> ()
    end
  in
  let check_config_finding ~where f =
    List.iter
      (fun name ->
        match Json.member name f with
        | Some (Json.String _) -> ()
        | _ -> bad "%s: missing string %S" where name)
      [ "check"; "subject"; "message" ];
    if channels_on then
      match Json.member "channel" f with
      | Some (Json.String c) ->
        if not (List.mem c channel_names) then
          bad "%s: unknown channel %S" where c
      | Some Json.Null -> ()
      | _ -> bad "%s: \"channel\" is neither string nor null" where
  in
  let section name check_finding =
    match Json.member name json with
    | Some (Json.List entries) ->
      List.iteri
        (fun i entry ->
          let ename =
            match Json.member "name" entry with
            | Some (Json.String s) -> s
            | _ ->
              bad "%s[%d]: missing string \"name\"" name i;
              string_of_int i
          in
          let findings =
            match Json.member "findings" entry with
            | Some (Json.List fs) ->
              total := !total + List.length fs;
              List.iteri
                (fun j f ->
                  check_finding
                    ~where:(Printf.sprintf "%s[%s].findings[%d]" name ename j)
                    f)
                fs;
              fs
            | _ ->
              bad "%s[%s]: missing list \"findings\"" name ename;
              []
          in
          match Json.member "clean" entry with
          | Some (Json.Bool clean) ->
            if clean <> (findings = []) then
              bad "%s[%s]: \"clean\" disagrees with findings" name ename
          | _ -> bad "%s[%s]: missing bool \"clean\"" name ename)
        entries
    | Some _ -> bad "%S is not a list" name
    | None -> bad "missing %S" name
  in
  section "programs" check_program_finding;
  section "configs" check_config_finding;
  (match Json.member "total_findings" json with
  | Some (Json.Int n) ->
    if n <> !total then
      bad "total_findings is %d but sections carry %d finding(s)" n !total
  | _ -> bad "missing int \"total_findings\"");
  List.rev !problems

let check_telemetry ~min_snapshots file =
  match Telemetry.validate_file ~path:file with
  | Ok n when n < min_snapshots ->
    [ Printf.sprintf "only %d snapshot(s), need >= %d" n min_snapshots ]
  | Ok _ -> []
  | Error msg -> [ msg ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let require = ref [] in
  let plain = ref [] and chrome = ref [] and history = ref [] in
  let telemetry = ref [] and min_snapshots = ref 1 in
  let bisect = ref [] and agrees_audit = ref None in
  let ni = ref [] and lint = ref [] in
  let rec parse = function
    | "--require" :: k :: rest ->
      require := k :: !require;
      parse rest
    | "--ni" :: f :: rest ->
      ni := f :: !ni;
      parse rest
    | "--lint" :: f :: rest ->
      lint := f :: !lint;
      parse rest
    | "--chrome-trace" :: f :: rest ->
      chrome := f :: !chrome;
      parse rest
    | "--history" :: f :: rest ->
      history := f :: !history;
      parse rest
    | "--telemetry" :: f :: rest ->
      telemetry := f :: !telemetry;
      parse rest
    | "--bisect" :: f :: rest ->
      bisect := f :: !bisect;
      parse rest
    | "--agrees-audit" :: f :: rest ->
      agrees_audit := Some f;
      parse rest
    | "--min-snapshots" :: n :: rest -> (
      match int_of_string_opt n with
      | Some v when v >= 0 ->
        min_snapshots := v;
        parse rest
      | _ ->
        prerr_endline "json_check: --min-snapshots wants a non-negative int";
        exit 2)
    | f :: rest ->
      plain := f :: !plain;
      parse rest
    | [] -> ()
  in
  parse args;
  let plain = List.rev !plain
  and chrome = List.rev !chrome
  and history = List.rev !history
  and telemetry = List.rev !telemetry
  and bisect = List.rev !bisect
  and ni = List.rev !ni
  and lint = List.rev !lint in
  if plain = [] && chrome = [] && history = [] && telemetry = [] && bisect = []
     && ni = [] && lint = []
  then begin
    prerr_endline
      "usage: json_check [--require KEY]... [--chrome-trace FILE]...\n\
      \                  [--history FILE]... [--telemetry FILE]...\n\
      \                  [--min-snapshots N] [--bisect FILE]...\n\
      \                  [--agrees-audit FILE] [--ni FILE]...\n\
      \                  [--lint FILE]... [FILE]...";
    exit 2
  end;
  let fail = ref false in
  let report file = function
    | [] -> Printf.printf "%s: ok\n" file
    | problems ->
      List.iter (fun p -> Printf.eprintf "%s: %s\n" file p) problems;
      fail := true
  in
  let with_json file k =
    match Json.of_string (read_file file) with
    | exception Sys_error msg ->
      report file [ msg ]
    | exception Failure msg ->
      report file [ "invalid JSON: " ^ msg ]
    | json -> report file (k json)
  in
  List.iter
    (fun file ->
      with_json file (fun json ->
          List.filter_map
            (fun k ->
              if Json.member k json = None then
                Some (Printf.sprintf "missing key %S" k)
              else None)
            (List.rev !require)))
    plain;
  List.iter (fun file -> with_json file check_chrome_trace) chrome;
  List.iter
    (fun file ->
      match check_history file with
      | exception Sys_error msg -> report file [ msg ]
      | problems -> report file problems)
    history;
  List.iter
    (fun file ->
      match check_telemetry ~min_snapshots:!min_snapshots file with
      | exception Sys_error msg -> report file [ msg ]
      | problems -> report file problems)
    telemetry;
  let audit =
    match !agrees_audit with
    | None -> None
    | Some file -> (
      match Json.of_string (read_file file) with
      | exception Sys_error msg ->
        report file [ msg ];
        None
      | exception Failure msg ->
        report file [ "invalid JSON: " ^ msg ];
        None
      | json -> Some json)
  in
  List.iter (fun file -> with_json file (check_bisect ?audit)) bisect;
  List.iter (fun file -> with_json file check_ni) ni;
  List.iter (fun file -> with_json file check_lint) lint;
  exit (if !fail then 1 else 0)
