(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) on the simulated machine, printing measured
   values next to the paper's reported numbers.

   Usage:
     bench/main.exe                 all figures, full length
     bench/main.exe --fast          shorter runs (CI)
     bench/main.exe fig5 fig9 area  a subset
     bench/main.exe micro           Bechamel microbenchmarks of the
                                    simulator's core data structures

   Absolute slowdowns depend on the substrate (our cycle-level model vs
   the authors' FPGA), so the claims to check are the *shapes*: who wins,
   roughly by what factor, which benchmark is the outlier.  EXPERIMENTS.md
   records a full paper-vs-measured table produced by this harness. *)

open Mi6_util
open Mi6_core

let benches = Mi6_workload.Spec.all
let bench_name = Mi6_workload.Spec.name

(* ------------------------------------------------------------------ *)
(* Shared run cache                                                    *)
(* ------------------------------------------------------------------ *)

let warmup = ref 200_000
let measure = ref 500_000

let cache : (Config.variant * Mi6_workload.Spec.bench, Tmachine.result) Hashtbl.t =
  Hashtbl.create 64

(* Host-side cost of each cached run (wall time, kips, per-phase
   ns/cycle), recorded unconditionally so BENCH_run.json and the history
   always carry host fields. *)
let hosts : (Config.variant * Mi6_workload.Spec.bench, Mi6_obs.Perfdb.host) Hashtbl.t =
  Hashtbl.create 64

let selfprof_host sp =
  let open Mi6_obs in
  {
    Perfdb.wall_s = Selfprof.wall_seconds sp;
    kips = Selfprof.overall_kips sp;
    phases =
      List.map (fun (name, _s, ns, _ab) -> (name, ns)) (Selfprof.report sp);
  }

let timed_run variant bench =
  let sp = Mi6_obs.Selfprof.create () in
  let r =
    Tmachine.run_spec ~selfprof:sp ~variant ~bench ~warmup:!warmup
      ~measure:!measure ()
  in
  (r, selfprof_host sp)

let result variant bench =
  match Hashtbl.find_opt cache (variant, bench) with
  | Some r -> r
  | None ->
    Printf.eprintf "  [run] %-10s %-8s\r%!" (bench_name bench)
      (Config.variant_name variant);
    let r, host = timed_run variant bench in
    Hashtbl.add cache (variant, bench) r;
    Hashtbl.add hosts (variant, bench) host;
    r

(* The exact (variant, bench) cells a figure resolves through the run
   cache.  --jobs prefills these on a domain pool before the figures
   print; the enumeration must not over-approximate, or a parallel run's
   cache (and so BENCH_run.json / the history) would hold entries a
   serial run never computes. *)
let fig_cells name =
  let grid vs =
    List.concat_map (fun v -> List.map (fun b -> (v, b)) benches) vs
  in
  match name with
  | "fig5" | "fig7" -> grid [ Config.Base; Config.Flush ]
  | "fig6" -> grid [ Config.Flush ]
  | "fig8" | "fig9" -> grid [ Config.Base; Config.Part ]
  | "fig10" -> grid [ Config.Base; Config.Miss ]
  | "fig11" -> grid [ Config.Base; Config.Arb ]
  | "fig12" -> grid [ Config.Base; Config.Nonspec ]
  | "fig13" -> grid [ Config.Base; Config.Fpma ]
  | "ablation" ->
    List.map
      (fun b -> (Config.Base, b))
      [ Mi6_workload.Spec.Astar; Mi6_workload.Spec.Xalancbmk;
        Mi6_workload.Spec.Gcc ]
  | _ -> []

let prefill ~jobs fig_names =
  let cells =
    List.sort_uniq compare (List.concat_map fig_cells fig_names)
    |> List.filter (fun cell -> not (Hashtbl.mem cache cell))
  in
  if jobs > 1 && cells <> [] then begin
    Printf.eprintf "  [prefill] %d runs on %d domains\n%!" (List.length cells)
      jobs;
    let pool = Mi6_exec.Pool.create ~domains:jobs in
    Fun.protect
      ~finally:(fun () -> Mi6_exec.Pool.shutdown pool)
      (fun () ->
        let results =
          Mi6_exec.Pool.run_list pool cells (fun (variant, bench) ->
              timed_run variant bench)
        in
        List.iter2
          (fun cell (r, host) ->
            Hashtbl.add cache cell r;
            Hashtbl.add hosts cell host)
          cells results)
  end

let overhead variant bench =
  let base = result Config.Base bench in
  let v = result variant bench in
  100.0
  *. (float_of_int v.Tmachine.cycles -. float_of_int base.Tmachine.cycles)
  /. float_of_int base.Tmachine.cycles

let average xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* One overhead figure: per-benchmark bars + average, with the paper's
   reported average and maximum alongside. *)
let overhead_figure ~title ~variant ~paper_avg ~paper_max ~paper_max_bench =
  let t =
    Table.create ~title
      ~columns:[ "measured overhead"; "paper (avg / named max)" ]
  in
  let ovs =
    List.map
      (fun b ->
        let ov = overhead variant b in
        let note =
          if bench_name b = paper_max_bench then
            Printf.sprintf "max: %.1f%%" paper_max
          else ""
        in
        Table.add_row t (bench_name b) [ Table.cell_pct ov; note ];
        ov)
      benches
  in
  Table.add_row t "AVERAGE"
    [ Table.cell_pct (average ovs); Printf.sprintf "%.1f%%" paper_avg ];
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  print_endline "Figure 4: insecure baseline (BASE) configuration";
  let rows =
    [
      ( "Front-end",
        "2-wide fetch/decode/rename; 256-entry BTB; tournament predictor \
         (Alpha 21264); 8-entry RAS" );
      ( "Execution",
        "80-entry ROB, 2-way insert/commit; 2 ALU + 1 MEM + 1 FP pipes; \
         16-entry IQ per pipe" );
      ("Ld-St unit", "24-entry LQ, 14-entry SQ, 4-entry SB");
      ("L1 TLBs", "32-entry fully associative; D-TLB max 4 requests");
      ("L2 TLB", "1024-entry 4-way + 24-entry translation cache, max 2 walks");
      ("L1 caches", "32 KB 8-way I and D, max 8 requests each");
      ("L2 (LLC)", "1 MB 16-way, 16 MSHRs, coherent/inclusive with L1s");
      ("Memory", "2 GB, 120-cycle latency, max 24 requests");
    ]
  in
  List.iter (fun (k, v) -> Printf.printf "  %-11s %s\n" k v) rows;
  print_newline ()

let fig5 () =
  overhead_figure
    ~title:
      "Figure 5: FLUSH execution-time overhead vs BASE (purge at every trap \
       boundary)"
    ~variant:Config.Flush ~paper_avg:5.4 ~paper_max:10.9 ~paper_max_bench:"astar"

let fig6 () =
  let t =
    Table.create
      ~title:
        "Figure 6: stall time waiting for flushes, as a share of FLUSH \
         execution time"
      ~columns:[ "measured stall"; "paper" ]
  in
  let shares =
    List.map
      (fun b ->
        let r = result Config.Flush b in
        let share =
          100.0
          *. float_of_int (Stats.get r.Tmachine.stats "core.purge_stall_cycles")
          /. float_of_int r.Tmachine.cycles
        in
        let note = if bench_name b = "xalancbmk" then "max: 3.2%" else "" in
        Table.add_row t (bench_name b) [ Table.cell_pct share; note ];
        share)
      benches
  in
  Table.add_row t "AVERAGE" [ Table.cell_pct (average shares); "0.4%" ];
  Table.print t;
  print_newline ()

let fig7 () =
  let t =
    Table.create
      ~title:
        "Figure 7: branch mispredictions per kilo-instruction, BASE vs FLUSH"
      ~columns:[ "BASE"; "FLUSH"; "paper" ]
  in
  let pairs =
    List.map
      (fun b ->
        let base = Tmachine.mpki (result Config.Base b) "core.mispredicts" in
        let flush = Tmachine.mpki (result Config.Flush b) "core.mispredicts" in
        let note =
          if bench_name b = "astar" then "astar: 30.1 -> 46.2" else ""
        in
        Table.add_row t (bench_name b)
          [ Table.cell_f base; Table.cell_f flush; note ];
        (base, flush))
      benches
  in
  Table.add_row t "AVERAGE"
    [
      Table.cell_f (average (List.map fst pairs));
      Table.cell_f (average (List.map snd pairs));
      "18.3 -> 24.3";
    ];
  Table.print t;
  print_newline ()

let fig8 () =
  overhead_figure
    ~title:
      "Figure 8: PART execution-time overhead vs BASE (LLC index \
       {R[1:0],A[7:0]})"
    ~variant:Config.Part ~paper_avg:7.4 ~paper_max:21.6 ~paper_max_bench:"gcc"

let fig9 () =
  let t =
    Table.create
      ~title:"Figure 9: LLC misses per kilo-instruction, BASE vs PART"
      ~columns:[ "BASE"; "PART"; "paper" ]
  in
  let pairs =
    List.map
      (fun b ->
        let base = Tmachine.mpki (result Config.Base b) "llc.misses" in
        let part = Tmachine.mpki (result Config.Part b) "llc.misses" in
        let note = if bench_name b = "gcc" then "gcc misses double" else "" in
        Table.add_row t (bench_name b)
          [ Table.cell_f base; Table.cell_f part; note ];
        (base, part))
      benches
  in
  Table.add_row t "AVERAGE"
    [
      Table.cell_f (average (List.map fst pairs));
      Table.cell_f (average (List.map snd pairs));
      "17.4 -> 19.6";
    ];
  Table.print t;
  print_newline ()

let fig10 () =
  overhead_figure
    ~title:
      "Figure 10: MISS execution-time overhead vs BASE (12 LLC MSHRs in 4 \
       banks, pessimistic bank stall)"
    ~variant:Config.Miss ~paper_avg:3.2 ~paper_max:8.3 ~paper_max_bench:"astar"

let fig11 () =
  overhead_figure
    ~title:
      "Figure 11: ARB execution-time overhead vs BASE (+8-cycle LLC pipeline \
       latency, modeling a 16-core round-robin arbiter)"
    ~variant:Config.Arb ~paper_avg:8.5 ~paper_max:14.0
    ~paper_max_bench:"libquantum"

let fig12 () =
  overhead_figure
    ~title:
      "Figure 12: NONSPEC execution-time overhead vs BASE (memory ops rename \
       only on an empty ROB)"
    ~variant:Config.Nonspec ~paper_avg:205.0 ~paper_max:427.0
    ~paper_max_bench:"h264ref"

let fig13 () =
  overhead_figure
    ~title:
      "Figure 13: F+P+M+A execution-time overhead vs BASE (the enclave cost: \
       FLUSH + PART + MISS + ARB)"
    ~variant:Config.Fpma ~paper_avg:16.4 ~paper_max:34.8 ~paper_max_bench:"gcc"

let area () =
  print_endline
    "Section 7.6 area: structural model of security additions (SRAM arrays \
     excluded, as in the paper's synthesis)";
  let t = Table.create ~title:"" ~columns:[ "BASE bits"; "MI6 extra bits" ] in
  List.iter
    (fun c ->
      Table.add_row t c.Area_model.name
        [
          string_of_int c.Area_model.base_bits;
          string_of_int c.Area_model.mi6_extra_bits;
        ])
    (Area_model.components ~cores:1);
  Table.print t;
  let s = Area_model.summary ~cores:1 in
  Printf.printf
    "  TOTAL: %d base bits, %d extra bits -> +%.2f%% (paper: ~2%%, same 1 GHz \
     clock)\n\n"
    s.Area_model.base_bits s.Area_model.extra_bits s.Area_model.percent

let noninterference () =
  print_endline
    "Security validation (Property 1): attacker observation traces across \
     victim behaviours";
  let verdict name leaky =
    Printf.printf "  %-46s %s\n" name
      (if leaky then "LEAKS (distinguishable)" else "no leak (bit-identical)")
  in
  verdict "prime+probe, baseline LLC"
    (Noninterference.leaks
       [
         Noninterference.prime_probe Noninterference.baseline_setup ~secret:true;
         Noninterference.prime_probe Noninterference.baseline_setup
           ~secret:false;
       ]);
  verdict "prime+probe, MI6 LLC"
    (Noninterference.leaks
       [
         Noninterference.prime_probe Noninterference.mi6_setup ~secret:true;
         Noninterference.prime_probe Noninterference.mi6_setup ~secret:false;
       ]);
  verdict "MSHR/queue contention, baseline LLC"
    (Noninterference.leaks
       [
         Noninterference.mshr_channel Noninterference.baseline_setup
           ~victim_floods:true;
         Noninterference.mshr_channel Noninterference.baseline_setup
           ~victim_floods:false;
       ]);
  verdict "MSHR/queue contention, MI6 LLC"
    (Noninterference.leaks
       [
         Noninterference.mshr_channel Noninterference.mi6_setup
           ~victim_floods:true;
         Noninterference.mshr_channel Noninterference.mi6_setup
           ~victim_floods:false;
       ]);
  verdict "DRAM banks, FR-FCFS reordering controller"
    (Noninterference.leaks
       [
         Noninterference.dram_bank_channel ~reordering:true
           ~victim_same_bank:true;
         Noninterference.dram_bank_channel ~reordering:true
           ~victim_same_bank:false;
       ]);
  verdict "DRAM banks, constant-latency controller"
    (Noninterference.leaks
       [
         Noninterference.dram_bank_channel ~reordering:false
           ~victim_same_bank:true;
         Noninterference.dram_bank_channel ~reordering:false
           ~victim_same_bank:false;
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablation: OS page coloring vs sequential allocation under PART      *)
(* ------------------------------------------------------------------ *)

(* The paper's conclusion proposes reducing the cache-indexing overhead
   "by modifying the OS": with the partitioned index {R[1:0], A[7:0]}, an
   enclave owning four regions with distinct R[1:0] recovers the full set
   space if the OS colors pages across its regions instead of allocating
   them sequentially.  We emulate a coloring allocator by remapping the
   workload's data pages round-robin over regions 8..11 (whose R[1:0]
   cover all four values). *)
let colored_stream bench ~limit =
  let geometry = Mi6_mem.Addr.default_regions in
  let data_base = Mi6_mem.Addr.region_base geometry 2 in
  let data_end = data_base + geometry.Mi6_mem.Addr.region_bytes in
  let gen =
    Mi6_workload.Synth.for_bench bench ~data_base
      ~code_base:(Mi6_mem.Addr.region_base geometry 1)
      ~kernel_base:(Mi6_mem.Addr.region_base geometry 4)
  in
  let remap addr =
    if addr >= data_base && addr < data_end then begin
      let off = addr - data_base in
      let page = off / 4096 in
      let color = page mod 4 in
      Mi6_mem.Addr.region_base geometry (8 + color)
      + (page / 4 * 4096) + (off mod 4096)
    end
    else addr
  in
  let inner = Mi6_workload.Synth.stream gen ~limit in
  fun () ->
    match inner () with
    | None -> None
    | Some u ->
      Some
        (match u.Mi6_ooo.Uop.kind with
        | Mi6_ooo.Uop.Load { addr } ->
          { u with Mi6_ooo.Uop.kind = Mi6_ooo.Uop.Load { addr = remap addr } }
        | Mi6_ooo.Uop.Store { addr } ->
          { u with Mi6_ooo.Uop.kind = Mi6_ooo.Uop.Store { addr = remap addr } }
        | _ -> u)

let ablation () =
  print_endline
    "Ablation (paper Section 8): PART overhead with a page-coloring OS      allocator vs Linux-style sequential allocation";
  let t =
    Table.create ~title:""
      ~columns:[ "sequential alloc"; "colored alloc"; "" ]
  in
  List.iter
    (fun b ->
      let run variant colored =
        let stream =
          if colored then colored_stream b ~limit:(!warmup + !measure)
          else
            let geometry = Mi6_mem.Addr.default_regions in
            let gen =
              Mi6_workload.Synth.for_bench b
                ~data_base:(Mi6_mem.Addr.region_base geometry 2)
                ~code_base:(Mi6_mem.Addr.region_base geometry 1)
                ~kernel_base:(Mi6_mem.Addr.region_base geometry 4)
            in
            Mi6_workload.Synth.stream gen ~limit:(!warmup + !measure)
        in
        Tmachine.run_stream
          ~timing:(Config.timing ~cores:1 variant)
          ~stream ~warmup:!warmup ~measure:!measure ()
      in
      let ov colored =
        let base = run Config.Base colored in
        let part = run Config.Part colored in
        100.0
        *. (float_of_int part.Tmachine.cycles
           -. float_of_int base.Tmachine.cycles)
        /. float_of_int base.Tmachine.cycles
      in
      let seq = ov false and col = ov true in
      Table.add_row t (bench_name b)
        [
          Table.cell_pct seq;
          Table.cell_pct col;
          (if col < seq then "coloring helps" else "");
        ])
    [ Mi6_workload.Spec.Gcc; Mi6_workload.Spec.Gobmk;
      Mi6_workload.Spec.Xalancbmk ];
  Table.print t;
  print_newline ();
  print_endline
    "Ablation (paper Section 6): FLUSH overhead with the optional      predictor save/restore primitives";
  let t2 = Table.create ~title:"" ~columns:[ "plain FLUSH"; "FLUSH + save/restore" ] in
  List.iter
    (fun b ->
      let run cfg_mod =
        let timing = Config.timing ~cores:1 Config.Flush in
        let timing = { timing with Config.core = cfg_mod timing.Config.core } in
        Tmachine.run_stream ~timing
          ~stream:
            (let geometry = Mi6_mem.Addr.default_regions in
             let gen =
               Mi6_workload.Synth.for_bench b
                 ~data_base:(Mi6_mem.Addr.region_base geometry 2)
                 ~code_base:(Mi6_mem.Addr.region_base geometry 1)
                 ~kernel_base:(Mi6_mem.Addr.region_base geometry 4)
             in
             Mi6_workload.Synth.stream gen ~limit:(!warmup + !measure))
          ~warmup:!warmup ~measure:!measure ()
      in
      let base = (result Config.Base b).Tmachine.cycles in
      let ov r =
        100.0 *. float_of_int (r.Tmachine.cycles - base) /. float_of_int base
      in
      let plain = ov (run (fun c -> c)) in
      let saved =
        ov
          (run (fun c ->
               { c with Mi6_ooo.Core_config.save_restore_predictors = true }))
      in
      Table.add_row t2 (bench_name b)
        [ Table.cell_pct plain; Table.cell_pct saved ])
    [ Mi6_workload.Spec.Astar; Mi6_workload.Spec.Xalancbmk;
      Mi6_workload.Spec.Gcc ];
  Table.print t2;
  print_newline ();
  print_endline
    "Ablation (Figure 10 sensitivity): the L1's own 8-entry MSHR file caps \
     the memory-level parallelism reaching the LLC; deepening it (16 \
     MSHRs + next-line prefetch) exposes the LLC's 12-entry MISS limit";
  let t3 =
    Table.create ~title:""
      ~columns:[ "MISS ovh, 8 L1 MSHRs"; "MISS ovh, 16 MSHRs + prefetch" ]
  in
  List.iter
    (fun b ->
      let ov ~prefetch =
        let mk variant =
          let timing = Config.timing ~cores:1 variant in
          let timing =
            {
              timing with
              Config.l1 =
                (if prefetch then
                   { timing.Config.l1 with
                     Mi6_cache.L1.prefetch_next_line = true;
                     Mi6_cache.L1.mshrs = 16 }
                 else timing.Config.l1);
            }
          in
          (Tmachine.run_stream ~timing
             ~stream:
               (let geometry = Mi6_mem.Addr.default_regions in
                let gen =
                  Mi6_workload.Synth.for_bench b
                    ~data_base:(Mi6_mem.Addr.region_base geometry 2)
                    ~code_base:(Mi6_mem.Addr.region_base geometry 1)
                    ~kernel_base:(Mi6_mem.Addr.region_base geometry 4)
                in
                Mi6_workload.Synth.stream gen ~limit:(!warmup + !measure))
             ~warmup:!warmup ~measure:!measure ())
            .Tmachine.cycles
        in
        let base = mk Config.Base and miss = mk Config.Miss in
        100.0 *. float_of_int (miss - base) /. float_of_int base
      in
      Table.add_row t3 (bench_name b)
        [ Table.cell_pct (ov ~prefetch:false); Table.cell_pct (ov ~prefetch:true) ])
    [ Mi6_workload.Spec.Libquantum; Mi6_workload.Spec.Gcc;
      Mi6_workload.Spec.Bzip2 ];
  Table.print t3;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Extension: the real multiprocessor run the paper could not fit       *)
(* ------------------------------------------------------------------ *)

(* Section 7.2 calls running multiprogrammed workloads on a secured
   multiprocessor the ideal methodology and approximates it on one FPGA
   core; the simulator can simply run it.  Two SPEC models share the
   machine; each core's slowdown is measured against its solo BASE run.
   Caveat on magnitudes: this machine divides a 1 MB LLC among domains
   (256 KB per R[1:0] class), where the paper's conceptual 16-core
   machine gives each enclave 1 MB of a 16 MB LLC — so the secure
   overheads here are structurally larger; the comparison of interest is
   BASE-shared vs MI6-partitioned behaviour. *)
let multicore () =
  print_endline
    "Extension: multiprogrammed 2-core runs (per-core slowdown vs solo      BASE)";
  let t =
    Table.create ~title:""
      ~columns:[ "BASE 2-core"; "MI6 2-core (Figure 3 LLC)" ]
  in
  let mw = max 40_000 (!warmup / 2) and mm = max 100_000 (!measure / 3) in
  let pairs =
    [
      (Mi6_workload.Spec.Gcc, Mi6_workload.Spec.Libquantum);
      (Mi6_workload.Spec.Astar, Mi6_workload.Spec.Hmmer);
      (Mi6_workload.Spec.Mcf, Mi6_workload.Spec.Sjeng);
    ]
  in
  List.iter
    (fun (b0, b1) ->
      let solo b =
        (Tmachine.run_spec ~variant:Config.Base ~bench:b ~warmup:mw
           ~measure:mm ())
          .Tmachine.cycles
      in
      let s0 = solo b0 and s1 = solo b1 in
      let slowdowns timing =
        let r =
          Tmachine.run_multi ~timing ~benches:[| b0; b1 |] ~warmup:mw
            ~measure:mm ()
        in
        ( 100.0 *. float_of_int (r.(0).Tmachine.cycles - s0) /. float_of_int s0,
          100.0 *. float_of_int (r.(1).Tmachine.cycles - s1) /. float_of_int s1
        )
      in
      let base0, base1 = slowdowns (Config.timing ~cores:2 Config.Base) in
      let sec0, sec1 = slowdowns (Config.secure_multicore ~cores:2) in
      Table.add_row t (bench_name b0)
        [ Table.cell_pct base0; Table.cell_pct sec0 ];
      Table.add_row t ("+ " ^ bench_name b1)
        [ Table.cell_pct base1; Table.cell_pct sec1 ])
    pairs;
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of simulator primitives                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let fifo_test =
    Test.make ~name:"fifo enq/deq x16"
      (Staged.stage (fun () ->
           let q = Fifo.create ~capacity:16 in
           for i = 0 to 15 do
             Fifo.enq q i
           done;
           for _ = 0 to 15 do
             ignore (Fifo.deq q)
           done))
  in
  let sha_test =
    let data = String.make 4096 'x' in
    Test.make ~name:"sha256 4KB page (measurement)"
      (Staged.stage (fun () -> ignore (Sha256.digest data)))
  in
  let predictor_test =
    let p = Mi6_ooo.Tournament.create () in
    Test.make ~name:"tournament predict+update x64"
      (Staged.stage (fun () ->
           for i = 0 to 63 do
             let pc = 0x1000 + (i * 4) in
             ignore (Mi6_ooo.Tournament.predict p ~pc);
             Mi6_ooo.Tournament.update p ~pc ~taken:(i land 1 = 0)
           done))
  in
  let llc_tick_test =
    let stats = Stats.create () in
    let links = [| Mi6_coherence.Link.create ~depth:4 |] in
    let dram =
      Mi6_dram.Controller.constant ~latency:120 ~max_outstanding:24 ~stats ()
    in
    let llc =
      Mi6_llc.Llc.create
        { (Mi6_llc.Llc.default_config ~cores:1) with Mi6_llc.Llc.mshrs = 4 }
        ~security:Mi6_llc.Llc.mi6_security ~links ~dram ~stats
    in
    let now = ref 0 in
    Test.make ~name:"idle MI6 LLC tick"
      (Staged.stage (fun () ->
           incr now;
           Mi6_llc.Llc.tick llc ~now:!now))
  in
  let grouped =
    Test.make_grouped ~name:"mi6"
      [ fifo_test; sha_test; predictor_test; llc_tick_test ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Bechamel microbenchmarks (monotonic clock, ns/run):";
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> Printf.printf "  %-38s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-38s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all_figs =
  [
    ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("fig13", fig13); ("area", area);
    ("noninterference", noninterference); ("ablation", ablation);
    ("multicore", multicore);
  ]

(* Machine-readable record of every (variant, bench) run the harness
   performed, for scripted regression checks on top of the printed
   tables. *)
let emit_run_json ~fast =
  let open Mi6_obs in
  let runs =
    Hashtbl.fold
      (fun (variant, bench) (r : Tmachine.result) acc ->
        let host_fields =
          match Hashtbl.find_opt hosts (variant, bench) with
          | None -> []
          | Some h ->
            [
              ("host_wall_s", Json.Float h.Perfdb.wall_s);
              ("host_kips", Json.Float h.Perfdb.kips);
            ]
        in
        Json.Obj
          ([
             ("bench", Json.String (bench_name bench));
             ("variant", Json.String (Config.variant_name variant));
             ("cycles", Json.Int r.Tmachine.cycles);
             ("instrs", Json.Int r.Tmachine.instrs);
             ("ipc", Json.Float (Tmachine.ipc r));
             ("llc_mpki", Json.Float (Tmachine.mpki r "llc.misses"));
           ]
          @ host_fields)
        :: acc)
      cache []
  in
  (* Hashtbl.fold order is unspecified: sort for a stable file. *)
  let key = function
    | Json.Obj (("bench", Json.String b) :: ("variant", Json.String v) :: _) ->
      (b, v)
    | _ -> ("", "")
  in
  let runs = List.sort (fun a b -> compare (key a) (key b)) runs in
  let doc =
    Json.Obj
      [
        ("harness", Json.String "mi6 bench");
        ("fast", Json.Bool fast);
        ("warmup", Json.Int !warmup);
        ("measure", Json.Int !measure);
        ("runs", Json.List runs);
      ]
  in
  let oc = open_out "BENCH_run.json" in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "\nwrote BENCH_run.json (%d runs)\n%!" (List.length runs)

(* Cross-run regression history: every harness invocation appends one
   JSONL record per cached (variant, bench) run under a fresh run id, so
   bench/compare.exe can diff the latest two invocations and CI can fail
   on a cycle or IPC regression.  Records carry the CPI stack and key
   latency quantiles so a regression is attributable, not just
   detectable. *)
let history_path = "BENCH_history.jsonl"

let append_history () =
  let open Mi6_obs in
  let commit = Perfdb.git_commit () in
  let run_id = Perfdb.next_run_id (Perfdb.load ~path:history_path) ~commit in
  let records =
    Hashtbl.fold
      (fun (variant, bench) (r : Tmachine.result) acc ->
        let cpi =
          List.filter_map
            (fun cat ->
              match Stats.get r.Tmachine.stats (Cpistack.counter_name cat) with
              | 0 -> None
              | c -> Some (cat, c))
            Cpistack.categories
        in
        let quantiles =
          List.filter_map
            (fun (name, h) ->
              if Histogram.count h = 0 then None
              else
                Some
                  (name, (Histogram.p50 h, Histogram.p95 h, Histogram.p99 h)))
            (Metrics.histograms r.Tmachine.metrics)
        in
        {
          Perfdb.run_id;
          commit;
          variant = Config.variant_name variant;
          bench = bench_name bench;
          cycles = r.Tmachine.cycles;
          instrs = r.Tmachine.instrs;
          ipc = Tmachine.ipc r;
          cpi;
          quantiles;
          host = Hashtbl.find_opt hosts (variant, bench);
        }
        :: acc)
      cache []
  in
  let records =
    List.sort
      (fun a b ->
        compare (a.Perfdb.bench, a.Perfdb.variant)
          (b.Perfdb.bench, b.Perfdb.variant))
      records
  in
  Perfdb.append ~path:history_path records;
  Printf.printf "appended run %s (%d records) -> %s\n%!" run_id
    (List.length records) history_path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let fast = List.mem "--fast" args in
  if fast then begin
    warmup := 60_000;
    measure := 150_000
  end;
  let jobs, args =
    let rec go acc = function
      | [] -> (1, List.rev acc)
      | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> (j, List.rev_append acc rest)
        | _ ->
          prerr_endline "bench: --jobs wants a positive integer";
          exit 2)
      | [ "--jobs" ] ->
        prerr_endline "bench: --jobs wants a positive integer";
        exit 2
      | a :: rest -> go (a :: acc) rest
    in
    go [] args
  in
  let wanted = List.filter (fun a -> a <> "--fast") args in
  Printf.printf
    "MI6 evaluation harness: %d SPEC CINT2006 models x 7 processor variants \
     (warmup %d, measure %d instructions)\n\n"
    (List.length benches) !warmup !measure;
  if List.mem "micro" wanted then micro ()
  else begin
    let figs =
      if wanted = [] then all_figs
      else
        List.filter_map
          (fun name ->
            match List.assoc_opt name all_figs with
            | Some f -> Some (name, f)
            | None ->
              Printf.eprintf "unknown figure %S (have: %s, micro)\n" name
                (String.concat ", " (List.map fst all_figs));
              None)
          wanted
    in
    prefill ~jobs (List.map fst figs);
    List.iter (fun (_, f) -> f ()) figs;
    emit_run_json ~fast;
    append_history ()
  end
