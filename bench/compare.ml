(* Cross-run perf regression gate over BENCH_history.jsonl.

   Usage:
     bench/compare.exe [--history FILE] [--old RUN_ID] [--new RUN_ID]
                       [--max-cycle-regress PCT] [--max-ipc-drop PCT]
                       [--max-kips-drop PCT]

   Without --old/--new the latest two runs in the history are compared.
   Exits 1 when any (variant, bench) pair regresses past a threshold,
   2 on usage errors or when the history holds fewer than two runs.
   Each violation is attributed: the CPI-stack categories that moved
   most between the two runs are printed next to it. *)

open Mi6_obs

let usage () =
  prerr_endline
    "usage: compare [--history FILE] [--old RUN_ID] [--new RUN_ID]\n\
    \               [--max-cycle-regress PCT] [--max-ipc-drop PCT]\n\
    \               [--max-kips-drop PCT]";
  exit 2

let () =
  let history = ref "BENCH_history.jsonl" in
  let old_id = ref None and new_id = ref None in
  let max_cycles = ref 5.0 and max_ipc = ref 5.0 and max_kips = ref 50.0 in
  let pct name s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> f
    | _ ->
      Printf.eprintf "compare: %s wants a non-negative percentage, got %S\n"
        name s;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--history" :: f :: rest ->
      history := f;
      parse rest
    | "--old" :: id :: rest ->
      old_id := Some id;
      parse rest
    | "--new" :: id :: rest ->
      new_id := Some id;
      parse rest
    | "--max-cycle-regress" :: p :: rest ->
      max_cycles := pct "--max-cycle-regress" p;
      parse rest
    | "--max-ipc-drop" :: p :: rest ->
      max_ipc := pct "--max-ipc-drop" p;
      parse rest
    | "--max-kips-drop" :: p :: rest ->
      max_kips := pct "--max-kips-drop" p;
      parse rest
    | arg :: _ ->
      Printf.eprintf "compare: unknown argument %S\n" arg;
      usage ()
  in
  parse (Array.to_list Sys.argv |> List.tl);
  let records =
    try Perfdb.load ~path:!history
    with Failure msg ->
      Printf.eprintf "compare: %s\n" msg;
      exit 2
  in
  let named id =
    match Perfdb.run records ~run_id:id with
    | [] ->
      Printf.eprintf "compare: no run %S in %s (have: %s)\n" id !history
        (String.concat ", " (Perfdb.run_ids records));
      exit 2
    | rs -> rs
  in
  let old_run, new_run =
    match (!old_id, !new_id) with
    | Some o, Some n -> (named o, named n)
    | None, None -> (
      match Perfdb.latest_two records with
      | Some pair -> pair
      | None ->
        Printf.eprintf
          "compare: %s holds %d run(s); need two (or explicit --old/--new)\n"
          !history
          (List.length (Perfdb.run_ids records));
        exit 2)
    | _ ->
      prerr_endline "compare: --old and --new must be given together";
      exit 2
  in
  let run_id rs = match rs with r :: _ -> r.Perfdb.run_id | [] -> "?" in
  Printf.printf
    "comparing %s (old) vs %s (new): %d vs %d records, thresholds \
     cycles +%.1f%% / ipc -%.1f%% / kips -%.1f%%\n"
    (run_id old_run) (run_id new_run) (List.length old_run)
    (List.length new_run) !max_cycles !max_ipc !max_kips;
  (* Attribute a cycle regression: which CPI buckets grew the most. *)
  let attribution variant bench =
    let find rs =
      List.find_opt
        (fun r -> r.Perfdb.variant = variant && r.Perfdb.bench = bench)
        rs
    in
    match (find old_run, find new_run) with
    | Some o, Some n ->
      let cats =
        List.sort_uniq compare
          (List.map fst o.Perfdb.cpi @ List.map fst n.Perfdb.cpi)
      in
      let deltas =
        List.filter_map
          (fun cat ->
            let get r =
              Option.value ~default:0 (List.assoc_opt cat r.Perfdb.cpi)
            in
            match get n - get o with 0 -> None | d -> Some (cat, d))
          cats
      in
      let deltas =
        List.sort (fun (_, a) (_, b) -> compare (abs b) (abs a)) deltas
      in
      (match deltas with
      | [] -> ""
      | ds ->
        let top = List.filteri (fun i _ -> i < 3) ds in
        Printf.sprintf " (cpi movers: %s)"
          (String.concat ", "
             (List.map (fun (c, d) -> Printf.sprintf "%s %+d" c d) top)))
    | _ -> ""
  in
  let regressions =
    Perfdb.compare_runs ~max_cycle_regress_pct:!max_cycles
      ~max_ipc_drop_pct:!max_ipc ~max_kips_drop_pct:!max_kips ~old_run
      ~new_run ()
  in
  if regressions = [] then begin
    print_endline "no regressions";
    exit 0
  end;
  List.iter
    (fun (r : Perfdb.regression) ->
      Printf.printf "REGRESSION %s%s\n"
        (Format.asprintf "%a" Perfdb.pp_regression r)
        (attribution r.Perfdb.r_variant r.Perfdb.r_bench))
    regressions;
  Printf.printf "%d regression(s) past thresholds\n" (List.length regressions);
  exit 1
