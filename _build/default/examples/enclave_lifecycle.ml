(* Full enclave lifecycle over the real SM-call (ecall) ABI: both the OS
   and the enclave are RISC-V programs assembled here and executed by the
   functional simulator; the security monitor interposes on their ecalls
   exactly as machine-mode firmware would (Section 6.1).

     dune exec examples/enclave_lifecycle.exe

   Flow: the OS stages an enclave image, creates/loads/seals/enters it via
   SM calls 1-4; the enclave asks the monitor for an attestation report
   (call 6), messages its result to the OS through the monitor's mailbox
   (call 7), and exits (call 5); the OS receives the message (call 8). *)

open Mi6_isa
open Mi6_mem
open Mi6_func
open Mi6_core

let geometry = Addr.default_regions
let evbase = 0x4000_0000

(* Enclave layout: page 0 = code; page 1 = data
   (+0x000 challenge[32], +0x040 report_data[64], +0x080 report out[64],
    +0x100 outgoing message). *)
let enclave_prog =
  let data = evbase + 0x1000 in
  Asm.assemble ~base:evbase
    Asm.
      [
        (* attest(challenge, report_data, out) *)
        Li (Reg.a0, data);
        Li (Reg.a1, data + 0x40);
        Li (Reg.a2, data + 0x80);
        Li (Reg.a7, 6);
        I Ecall;
        (* send(-1 = OS, message, 17) *)
        Li (Reg.a0, -1);
        Li (Reg.a1, data + 0x100);
        Li (Reg.a2, 17);
        Li (Reg.a7, 7);
        I Ecall;
        (* exit *)
        Li (Reg.a7, 5);
        I Ecall;
      ]

let () =
  print_endline "[boot] machine + monitor";
  let mem = Phys_mem.create ~size_bytes:geometry.Addr.dram_bytes in
  let core = Fsim.create ~mem ~hartid:0 () in
  let monitor = Monitor.create ~mem ~cores:[| core |] ~geometry () in
  let st = Fsim.state core in

  (* Stage the enclave image and the OS receive buffer in OS memory. *)
  let stage_code = Addr.region_base geometry 1 + 0x10000 in
  let stage_data = Addr.region_base geometry 1 + 0x12000 in
  let recv_buf = Addr.region_base geometry 1 + 0x14000 in
  Phys_mem.load_string mem stage_code (Asm.to_bytes enclave_prog);
  let challenge = "nonce-0123456789abcdef-fresh!!!!" (* 32 bytes *) in
  let report_data = String.init 64 (fun i -> Char.chr (0x41 + (i mod 26))) in
  Phys_mem.load_string mem stage_data challenge;
  Phys_mem.load_string mem (stage_data + 0x40) report_data;
  Phys_mem.load_string mem (stage_data + 0x100) "secret result: 42";

  (* The OS driver program: SM calls via ecall. *)
  let os_base = Addr.region_base geometry 1 + 0x20000 in
  let os =
    Asm.assemble ~base:os_base
      Asm.
        [
          (* id = create(evbase, 2 pages, entry=evbase, regions {8,9}) *)
          Li (Reg.a0, evbase);
          Li (Reg.a1, 0x2000);
          Li (Reg.a2, evbase);
          Li (Reg.a3, 0x300);
          Li (Reg.a7, 1);
          I Ecall;
          I (Alu { op = Add; rd = Reg.s1; rs1 = Reg.a0; rs2 = Reg.x0 });
          (* load_page(id, evbase, stage_code) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a1, evbase);
          Li (Reg.a2, stage_code);
          Li (Reg.a7, 2);
          I Ecall;
          (* load_page(id, evbase+0x1000, stage_data) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a1, evbase + 0x1000);
          Li (Reg.a2, stage_data);
          Li (Reg.a7, 2);
          I Ecall;
          (* seal(id) *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a7, 3);
          I Ecall;
          (* enter(id): resumes here when the enclave exits *)
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.s1; rs2 = Reg.x0 });
          Li (Reg.a7, 4);
          I Ecall;
          (* recv(buf): a0 = message length *)
          Li (Reg.a0, recv_buf);
          Li (Reg.a7, 8);
          I Ecall;
          I (Alu { op = Add; rd = Reg.s2; rs1 = Reg.a0; rs2 = Reg.x0 });
          Label "done";
          J "done";
        ]
  in
  Fsim.load_program core os;
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st (Int64.of_int os_base);

  print_endline "[run] OS drives create/load/seal/enter via ecalls;";
  print_endline "      enclave attests, messages the OS, exits; OS receives";
  let done_pc = Int64.of_int (Asm.lookup os "done") in
  let steps =
    Fsim.run core ~max_steps:20_000 ~until:(fun f ->
        Cpu_state.pc (Fsim.state f) = done_pc)
  in
  Printf.printf "[ok] flow completed in %d instructions, %d purges\n" steps
    (Monitor.purges monitor ~core:0);

  (* The OS's received message. *)
  let len = Int64.to_int (Cpu_state.get_reg st Reg.s2) in
  let msg = Phys_mem.read_string mem recv_buf len in
  Printf.printf "[os] received %d bytes from the enclave: %S\n" len msg;

  (* The attestation report the enclave wrote into its private page:
     measurement(32) || tag(32).  The monitor wrote it via the enclave's
     own page table; find the data page in region 8/9 and verify. *)
  let measurement =
    match Monitor.measurement monitor 1 with
    | Ok m -> m
    | Error _ -> failwith "measurement"
  in
  let report_found = ref false in
  List.iter
    (fun r ->
      let base = Addr.region_base geometry r in
      for page = 0 to 16 do
        let addr = base + (page * 4096) + 0x80 in
        let m = Phys_mem.read_string mem addr 32 in
        let tag = Phys_mem.read_string mem (addr + 32) 32 in
        if m = measurement then begin
          let report =
            { Attestation.measurement = m; challenge; report_data; tag }
          in
          if
            Attestation.verify
              ~platform_key:(Monitor.platform_key monitor)
              ~expected_measurement:measurement ~challenge report
          then report_found := true
        end
      done)
    [ 8; 9 ];
  Printf.printf
    "[verifier] report found in enclave memory and verified: %b\n"
    !report_found;
  if msg = "secret result: 42" && !report_found then
    print_endline "\nenclave_lifecycle: OK"
  else failwith "lifecycle did not produce the expected artifacts"
