(* The queue-and-arbitration channels of Section 5.4: subtler than cache
   tag state, and the paper's main hardware contribution closes them.

     dune exec examples/mshr_channel.exe

   The attacker times its own LLC misses while the victim either floods
   the LLC with misses or idles.  On the baseline Figure 2 LLC, the shared
   MSHR file, the unfair two-level input mux, the single UQ, and the
   two-cycle writeback DQ dequeues all let the victim's load modulate the
   attacker's latency.  On the Figure 3 LLC every one of those resources
   is partitioned or time-multiplexed deterministically, and the attacker
   measures exactly the same latencies either way.  The same experiment
   against a reordering DRAM controller shows why MI6 requires a
   constant-latency one. *)

open Mi6_core

let stats obs =
  let n = List.length obs in
  let sum = List.fold_left ( + ) 0 obs in
  let mx = List.fold_left max 0 obs in
  (float_of_int sum /. float_of_int n, mx)

let run name setup =
  Printf.printf "\n%s\n" name;
  let busy = Noninterference.mshr_channel setup ~victim_floods:true in
  let idle = Noninterference.mshr_channel setup ~victim_floods:false in
  let mb, xb = stats busy and mi, xi = stats idle in
  Printf.printf "  victim flooding: mean %.1f cyc, max %3d\n" mb xb;
  Printf.printf "  victim idle:     mean %.1f cyc, max %3d\n" mi xi;
  let leaky = Noninterference.leaks [ busy; idle ] in
  Printf.printf "  distinguishable: %b\n" leaky;
  leaky

let () =
  print_endline
    "MSHR / queue / arbitration contention in the LLC (paper Section 5.4)";
  let base = run "[1] Baseline LLC (Figure 2)" Noninterference.baseline_setup in
  let mi6 = run "[2] MI6 LLC (Figure 3)" Noninterference.mi6_setup in
  print_endline "\n[3] DRAM controller comparison (Section 5.2)";
  let reorder =
    Noninterference.leaks
      [
        Noninterference.dram_bank_channel ~reordering:true ~victim_same_bank:true;
        Noninterference.dram_bank_channel ~reordering:true
          ~victim_same_bank:false;
      ]
  in
  let const =
    Noninterference.leaks
      [
        Noninterference.dram_bank_channel ~reordering:false
          ~victim_same_bank:true;
        Noninterference.dram_bank_channel ~reordering:false
          ~victim_same_bank:false;
      ]
  in
  Printf.printf
    "  FR-FCFS reordering controller leaks bank locality: %b\n\
    \  constant-latency controller: %b\n"
    reorder const;
  if base && (not mi6) && reorder && not const then
    print_endline "\nmshr_channel: OK"
  else failwith "unexpected leak behaviour"
