(* Prime+probe on the shared LLC: the classic cross-core cache attack the
   paper's set partitioning defeats (Sections 5.2 and 7.2).

     dune exec examples/prime_probe.exe

   The attacker and victim run on different cores with disjoint DRAM
   regions — architectural isolation already holds.  On the baseline
   RiscyOO LLC the attacker still reads the victim's secret from probe
   *timing*; on the MI6 LLC the attacker's observations are bit-identical
   whatever the victim does. *)

open Mi6_core

let show name obs =
  Printf.printf "  %-22s %s\n" name
    (String.concat " " (List.map (fun l -> Printf.sprintf "%3d" l) obs))

let recovered obs =
  (* The attacker's decision rule: any slow probe (> 100 cycles, a DRAM
     refill) means its line was evicted, i.e. the victim touched the
     primed set -> secret bit 1. *)
  List.exists (fun l -> l > 100) obs

let run name setup =
  Printf.printf "\n%s\n" name;
  let obs1 = Noninterference.prime_probe setup ~secret:true in
  let obs0 = Noninterference.prime_probe setup ~secret:false in
  show "probe (secret=1):" obs1;
  show "probe (secret=0):" obs0;
  Printf.printf "  attacker recovers secret=1 as %b, secret=0 as %b -> %s\n"
    (recovered obs1) (recovered obs0)
    (if recovered obs1 <> recovered obs0 then "SECRET LEAKED"
     else if obs1 = obs0 then "no leak: observations are bit-identical"
     else "observations differ but the simple rule fails");
  Noninterference.leaks [ obs1; obs0 ]

let () =
  print_endline
    "Prime+probe: attacker primes an LLC set with 16 of its own lines,\n\
     the victim touches a line whose LLC set depends on a secret bit,\n\
     the attacker probes its lines and times each access.";
  let base_leaks =
    run "[1] Baseline RiscyOO LLC (flat index, shared sets)"
      Noninterference.baseline_setup
  in
  let mi6_leaks =
    run "[2] MI6 LLC (set partitioning by DRAM region, Figure 3 structures)"
      Noninterference.mi6_setup
  in
  Printf.printf
    "\nSummary: baseline leaks = %b, MI6 leaks = %b  (paper: set \
     partitioning closes cache tag channels)\n"
    base_leaks mi6_leaks;
  if base_leaks && not mi6_leaks then print_endline "prime_probe: OK"
  else failwith "unexpected leak behaviour"
