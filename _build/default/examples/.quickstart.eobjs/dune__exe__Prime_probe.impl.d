examples/prime_probe.ml: List Mi6_core Noninterference Printf String
