examples/quickstart.ml: Addr Asm Attestation Cpu_state Fsim Int64 List Mailbox Mi6_core Mi6_func Mi6_isa Mi6_mem Mi6_util Monitor Phys_mem Printf Priv Reg Region Sha256 String
