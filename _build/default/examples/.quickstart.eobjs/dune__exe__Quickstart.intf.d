examples/quickstart.mli:
