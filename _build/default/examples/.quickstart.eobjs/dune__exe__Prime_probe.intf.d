examples/prime_probe.mli:
