examples/spectre.ml: Addr Asm Cpu_state Csr Fsim Int64 List Mi6_core Mi6_func Mi6_isa Mi6_mem Noninterference Phys_mem Printf Priv Reg
