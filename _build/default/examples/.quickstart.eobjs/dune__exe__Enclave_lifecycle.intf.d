examples/enclave_lifecycle.mli:
