examples/spectre.mli:
