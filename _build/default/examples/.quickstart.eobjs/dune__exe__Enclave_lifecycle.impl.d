examples/enclave_lifecycle.ml: Addr Asm Attestation Char Cpu_state Fsim Int64 List Mi6_core Mi6_func Mi6_isa Mi6_mem Monitor Phys_mem Printf Priv Reg String
