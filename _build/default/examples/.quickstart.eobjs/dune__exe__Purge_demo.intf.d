examples/purge_demo.mli:
