examples/mshr_channel.ml: List Mi6_core Noninterference Printf
