examples/mshr_channel.mli:
