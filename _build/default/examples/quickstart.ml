(* Quickstart: the enclave lifecycle end to end, through the public API.

     dune exec examples/quickstart.exe

   Builds a one-core MI6 machine, creates an enclave from a tiny RISC-V
   program, seals and measures it, runs it to completion under the
   security monitor, attests it to a remote verifier, and tears it down
   with a scrub.  Follows the flow of Sections 2 and 6.1 of the paper. *)

open Mi6_isa
open Mi6_mem
open Mi6_func
open Mi6_util
open Mi6_core

let geometry = Addr.default_regions

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

(* The enclave: reads the word its loader placed in its data page,
   multiplies it by 7, stores the result, and exits via SM call 5. *)
let evbase = 0x4000_0000

let enclave_program =
  Asm.assemble ~base:evbase
    Asm.
      [
        Li (Reg.s0, evbase + 0x1000);
        I (Load { kind = Ld; rd = Reg.t0; rs1 = Reg.s0; offset = 0 });
        Li (Reg.t1, 7);
        I (Muldiv { op = Mul; rd = Reg.t0; rs1 = Reg.t0; rs2 = Reg.t1 });
        I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.t0; offset = 8 });
        Li (Reg.a7, 5);
        I Ecall;
      ]

let () =
  step "Boot: one functional core + physical memory + security monitor";
  let mem = Phys_mem.create ~size_bytes:geometry.Addr.dram_bytes in
  let core = Fsim.create ~mem ~hartid:0 () in
  let monitor = Monitor.create ~mem ~cores:[| core |] ~geometry () in
  Printf.printf "  monitor owns region 0; the OS owns the other %d regions\n"
    (List.length (Region.owned_by (Monitor.regions monitor) Region.Os));

  step "OS proposes an enclave over DRAM regions 8 and 9";
  let id =
    match
      Monitor.create_enclave monitor ~evbase:(Int64.of_int evbase)
        ~evsize:0x2000L ~entry:(Int64.of_int evbase) ~regions:[ 8; 9 ]
    with
    | Ok id -> id
    | Error _ -> failwith "create_enclave failed"
  in
  Printf.printf "  enclave %d created; regions scrubbed and transferred\n" id;
  (* A second enclave overlapping region 9 must be rejected. *)
  (match
     Monitor.create_enclave monitor ~evbase:(Int64.of_int evbase)
       ~evsize:0x1000L ~entry:(Int64.of_int evbase) ~regions:[ 9 ]
   with
  | Error Monitor.E_overlap ->
    Printf.printf "  (overlapping allocation correctly rejected)\n"
  | _ -> failwith "overlap should have been rejected");

  step "Monitor loads and measures the enclave pages";
  let code = Asm.to_bytes enclave_program in
  let data = String.init 8 (fun i -> if i = 0 then '\x06' else '\x00') in
  (match Monitor.load_page monitor id ~vaddr:(Int64.of_int evbase) ~contents:code with
  | Ok () -> ()
  | Error _ -> failwith "load code");
  (match
     Monitor.load_page monitor id
       ~vaddr:(Int64.of_int (evbase + 0x1000))
       ~contents:data
   with
  | Ok () -> ()
  | Error _ -> failwith "load data");
  let measurement =
    match Monitor.seal monitor id with
    | Ok m -> m
    | Error _ -> failwith "seal"
  in
  Printf.printf "  measurement = %s\n" (Sha256.to_hex measurement);

  step "Enter: purge, install private page table + region mask, drop to U-mode";
  let st = Fsim.state core in
  Cpu_state.set_mode st Priv.Supervisor;
  Cpu_state.set_pc st 0x02000000L (* OS resume point, region 1 *);
  (match Monitor.enter monitor ~core:0 id with
  | Ok () -> ()
  | Error _ -> failwith "enter");
  Printf.printf "  purges so far on core 0: %d (entry purge)\n"
    (Monitor.purges monitor ~core:0);

  step "Run the enclave to completion";
  let steps =
    Fsim.run core ~max_steps:1_000 ~until:(fun _ ->
        Monitor.current_domain monitor ~core:0 = Mailbox.To_os)
  in
  Printf.printf "  enclave ran %d instructions and exited cleanly (a0=%Ld)\n"
    steps
    (Cpu_state.get_reg st Reg.a0);
  Printf.printf "  purges so far: %d (exit purge erases side effects)\n"
    (Monitor.purges monitor ~core:0);
  (* 6 * 7 = 42 now lives in the enclave's private memory. *)
  let region8 = Addr.region_base geometry 8 in
  let found = ref false in
  for page = 0 to 16 do
    if Phys_mem.read_u64 mem (region8 + (page * 4096) + 8) = 42L then
      found := true
  done;
  Printf.printf "  result 42 found in enclave-private memory: %b\n" !found;

  step "Remote attestation";
  let challenge = "verifier-nonce-123" in
  let report =
    match Monitor.attest monitor id ~challenge ~report_data:"session-pubkey" with
    | Ok r -> r
    | Error _ -> failwith "attest"
  in
  let accepted =
    Attestation.verify
      ~platform_key:(Monitor.platform_key monitor)
      ~expected_measurement:measurement ~challenge report
  in
  Printf.printf "  verifier accepts the report: %b\n" accepted;

  step "Messaging through the monitor (the only cross-domain channel)";
  ignore
    (Monitor.send_msg monitor ~from_:Mailbox.To_os ~to_:(Mailbox.To_enclave id)
       "hello enclave");
  (match Monitor.recv_msg monitor ~me:(Mailbox.To_enclave id) with
  | Some (Mailbox.To_os, msg) -> Printf.printf "  enclave received: %S\n" msg
  | _ -> failwith "message lost");

  step "Destroy: scrub regions, return them to the OS";
  (match Monitor.destroy monitor id with
  | Ok () -> ()
  | Error _ -> failwith "destroy");
  Printf.printf "  enclave state: %s; region 8 owner back to OS: %b\n"
    (Monitor.enclave_state_name monitor id)
    (Region.owner (Monitor.regions monitor) 8 = Region.Os);
  print_endline "\nquickstart: OK"
