(* Spectre-style attacks against MI6: why control-flow speculation does
   not break enclave isolation here (Sections 2.3, 5.3, 6.1).

     dune exec examples/spectre.exe

   A Spectre attack needs two things: a *transmitter* — speculative
   (wrong-path) accesses in the victim's context that touch memory as a
   function of a secret — and a *receiver* — microarchitectural state the
   attacker can observe (typically cache tag state).  MI6 breaks both:

   1. The per-core DRAM-region check validates EVERY physical access,
      including speculative fetches, loads, and page walks, before it is
      emitted to the memory system (Section 5.3).  A transmitter cannot
      touch memory outside its protection domain, even transiently: the
      access is suppressed, not just faulted after the fact.
   2. Within its own domain, whatever footprint a transmitter leaves lands
      in the domain's private LLC partition and its purged-on-switch
      per-core state, so no receiver in another domain can read it — that
      is the prime+probe result.
   3. The security monitor, which may touch multiple domains, runs with
      speculation off (the NONSPEC mechanism of Section 7.5).

   This example demonstrates (1) on the functional machine with MI6's
   hardware checks, and (2) on the two-core timing machine. *)

open Mi6_isa
open Mi6_mem
open Mi6_func
open Mi6_core

let geometry = Addr.default_regions

let () =
  print_endline "[1] The region check suppresses out-of-domain accesses";
  let mem = Phys_mem.create ~size_bytes:geometry.Addr.dram_bytes in
  let core = Fsim.create ~mem ~hartid:0 () in
  let st = Fsim.state core in
  (* A victim confined to region 2, as an enclave would be. *)
  Cpu_state.set_csr_raw st Csr.mregions (Int64.shift_left 1L 2);
  Cpu_state.set_mode st Priv.Supervisor;
  let base = Addr.region_base geometry 2 in
  (* The "gadget": a load whose address is attacker-controlled (t0).
     Under speculation this is exactly the access a Spectre transmitter
     would issue; in MI6 the hardware validates the physical address
     against mregions before emitting it — speculative or not. *)
  let prog =
    Asm.assemble ~base
      Asm.[ I (Load { kind = Ld; rd = Reg.a0; rs1 = Reg.t0; offset = 0 }) ]
  in
  Fsim.load_program core prog;
  let secret_addr = Addr.region_base geometry 5 + 0x40 in
  Phys_mem.write_u64 mem secret_addr 0x5EC2E7L;
  Cpu_state.set_reg st Reg.t0 (Int64.of_int secret_addr);
  Cpu_state.set_pc st (Int64.of_int base);
  let r = Fsim.step core in
  (match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Region_fault; tval; _ } ->
    Printf.printf
      "  load of 0x%Lx (region %d, not ours) -> region fault; emitted \
       memory accesses beyond the fetch: %d\n"
      tval
      (Addr.region_of geometry secret_addr)
      (List.length
         (List.filter (fun a -> a.Fsim.kind <> Fsim.Fetch) r.Fsim.accesses))
  | _ -> failwith "expected a region fault");
  print_endline
    "  -> the would-be transmitter never touches the cache hierarchy:\n\
    \     there is no footprint for any receiver to observe.";

  print_endline
    "\n[2] And within-domain footprints are invisible across domains";
  let leak_base =
    Noninterference.leaks
      [
        Noninterference.prime_probe Noninterference.baseline_setup ~secret:true;
        Noninterference.prime_probe Noninterference.baseline_setup ~secret:false;
      ]
  in
  let leak_mi6 =
    Noninterference.leaks
      [
        Noninterference.prime_probe Noninterference.mi6_setup ~secret:true;
        Noninterference.prime_probe Noninterference.mi6_setup ~secret:false;
      ]
  in
  Printf.printf
    "  receiver (prime+probe) works on baseline: %b; on MI6: %b\n" leak_base
    leak_mi6;
  print_endline
    "\n[3] The monitor itself crosses domains, so it runs with speculation \
     off\n\
    \    (the NONSPEC mode measured in Figure 12; see bench/main.exe fig12).";
  if (not leak_mi6) && leak_base then print_endline "\nspectre: OK"
  else failwith "unexpected leak behaviour"
