type report = {
  measurement : Sha256.digest;
  challenge : string;
  report_data : string;
  tag : string;
}

let le32 v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

(* Length-prefixed concatenation prevents field-boundary ambiguity. *)
let message ~measurement ~challenge ~report_data =
  String.concat ""
    [
      "mi6-attest-v1";
      le32 (String.length measurement); measurement;
      le32 (String.length challenge); challenge;
      le32 (String.length report_data); report_data;
    ]

let sign ~platform_key ~measurement ~challenge ~report_data =
  let tag =
    Hmac.mac ~key:platform_key (message ~measurement ~challenge ~report_data)
  in
  { measurement; challenge; report_data; tag }

let verify ~platform_key ~expected_measurement ~challenge r =
  String.equal r.challenge challenge
  && String.equal r.measurement expected_measurement
  && Hmac.verify ~key:platform_key ~tag:r.tag
       (message ~measurement:r.measurement ~challenge:r.challenge
          ~report_data:r.report_data)
