(** DRAM-region ownership ledger.

    The OS proposes region allocations; the security monitor verifies them
    against this ledger so that protection domains never overlap
    (Section 6.1: "asserts that resources allocated to enclaves by the OS
    are non-overlapping").  Region 0 is reserved for the monitor itself at
    creation ("statically reserves a sufficient amount of physical
    memory"). *)

type owner = Monitor | Os | Enclave of int | Free

type t

(** [create geometry] — all regions initially [Os] except region 0
    ([Monitor]). *)
val create : Addr.regions -> t

val geometry : t -> Addr.regions
val owner : t -> int -> owner

(** [owned_by t who] lists the region ids owned by [who]. *)
val owned_by : t -> owner -> int list

(** [transfer t ~regions ~from_ ~to_] atomically moves ownership; fails
    (returning [false], changing nothing) if any region is not owned by
    [from_]. *)
val transfer : t -> regions:int list -> from_:owner -> to_:owner -> bool

(** [perm_mask t who] is the 64-bit [mregions] CSR value granting exactly
    [who]'s regions. *)
val perm_mask : t -> owner -> int64

(** [disjoint_check t] — no region has two owners by construction; this
    validates internal consistency (used by property tests). *)
val region_count : t -> int
