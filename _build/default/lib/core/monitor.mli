(** The MI6 security monitor (Section 6.1), modeled as trusted machine-mode
    firmware over the functional cores (see DESIGN.md for this
    substitution).

    Responsibilities implemented here, mirroring the paper:
    - verify that OS-proposed enclave resource allocations are
      non-overlapping DRAM regions, and transfer ownership;
    - build each enclave's private page tables inside its own regions and
      measure loaded pages (measurement finalized at seal);
    - orchestrate {b purge} and the [mregions] permission vector on every
      protection-domain transition (enter, exit, and asynchronous exits),
      and force TLB scrubbing across transitions;
    - interpose on traps: SM calls (ecall) from OS and enclaves,
      asynchronous interrupts during enclave execution (saved, purged, and
      delegated to the OS), and enclave faults (turned into async exits so
      the OS never observes enclave page-fault addresses — closing the
      controlled-channel attack of Section 5.3);
    - mediate all cross-domain communication through mailboxes;
    - sign attestation reports under the platform key.

    All SM entry points exist both as OCaml functions (used by tests,
    examples, and the machine model) and as the ecall ABI below, handled
    by the firmware hook the monitor installs on every core.

    Ecall ABI (a7 = call number, arguments in a0.., result in a0;
    negative = error):
    - from the OS (S-mode): 1 create(evbase, evsize, entry, region_mask),
      2 load_page(id, vaddr, src_paddr), 3 seal(id), 4 enter(id),
      7 send(dest_id|-1, paddr, len), 8 recv(paddr) -> len,
      9 destroy(id)
    - from an enclave (U-mode): 5 exit, 6 attest(challenge_va, data_va,
      out_va), 7 send(-1, va, len), 8 recv(va) -> len *)

type enclave_id = int

type error =
  | E_invalid  (** malformed arguments *)
  | E_overlap  (** region allocation not owned by the OS / overlapping *)
  | E_state  (** operation illegal in the enclave's current state *)
  | E_unknown  (** no such enclave *)
  | E_full  (** mailbox or memory exhausted *)

val error_code : error -> int64

type t

val create :
  ?platform_key:string ->
  mem:Phys_mem.t ->
  cores:Fsim.t array ->
  geometry:Addr.regions ->
  unit ->
  t

val regions : t -> Region.t
val platform_key : t -> string

(** [current_domain t ~core] — who the core is running for. *)
val current_domain : t -> core:int -> Mailbox.endpoint

(** [purges t ~core] — number of purges the monitor issued on the core. *)
val purges : t -> core:int -> int

(** [on_purge t f] — hook invoked as [f ~core] on every monitor-issued
    purge (the machine model uses it to scrub timing state). *)
val on_purge : t -> (core:int -> unit) -> unit

(** [on_scrub t f] — hook invoked with the region list being scrubbed at
    destroy (timing model: drop LLC lines of those regions). *)
val on_scrub : t -> (int list -> unit) -> unit

(** Host-side (OS) interface. *)

val create_enclave :
  t ->
  evbase:int64 ->
  evsize:int64 ->
  entry:int64 ->
  regions:int list ->
  (enclave_id, error) Stdlib.result

val load_page :
  t -> enclave_id -> vaddr:int64 -> contents:string -> (unit, error) Stdlib.result

val seal : t -> enclave_id -> (Sha256.digest, error) Stdlib.result

(** [enter t ~core id] context-switches [core] into the enclave: saves the
    OS context, purges, installs the enclave's page table and region mask,
    and sets the core to user mode at the entry point. *)
val enter : t -> core:int -> enclave_id -> (unit, error) Stdlib.result

val destroy : t -> enclave_id -> (unit, error) Stdlib.result

(** Enclave-side interface (also reachable via ecall). *)

val exit_enclave : t -> core:int -> (unit, error) Stdlib.result

val attest :
  t ->
  enclave_id ->
  challenge:string ->
  report_data:string ->
  (Attestation.report, error) Stdlib.result

(** Messaging. *)

val send_msg :
  t -> from_:Mailbox.endpoint -> to_:Mailbox.endpoint -> string -> bool

val recv_msg : t -> me:Mailbox.endpoint -> (Mailbox.endpoint * string) option

(** [measurement t id] — after seal. *)
val measurement : t -> enclave_id -> (Sha256.digest, error) Stdlib.result

(** [enclave_state_name t id] — "loading" / "sealed" / "running" / "dead"
    (tests and CLI). *)
val enclave_state_name : t -> enclave_id -> string
