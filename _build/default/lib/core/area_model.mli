(** Structural area model (substituting bit-counting for the paper's FPGA
    synthesis — see DESIGN.md).

    The paper reports that F+P+M+A is about 2% larger than BASE, with
    SRAM-heavy blocks (LLC arrays, L1 arrays, FPUs) excluded from the
    accounting and no loss of clock frequency.  This model counts the
    state bits of the remaining structures in both machines and the extra
    state/logic MI6 adds: the per-core [mregions]/[mfetchbase]/
    [mfetchmask]/[mspec] CSRs and region comparators, per-MSHR retry bits,
    the round-robin arbiter counter, duplicated Downgrade-L1 scanners
    (expressed as comparator-equivalent bits), and the purge sequencer. *)

type component = {
  name : string;
  base_bits : int;  (** bits in the BASE machine *)
  mi6_extra_bits : int;  (** additional bits in the MI6 machine *)
}

(** [components ~cores] — per-component accounting, SRAM-array blocks
    excluded exactly as in the paper's synthesis report. *)
val components : cores:int -> component list

type summary = { base_bits : int; extra_bits : int; percent : float }

val summary : cores:int -> summary
