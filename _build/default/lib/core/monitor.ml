type enclave_id = int

type error = E_invalid | E_overlap | E_state | E_unknown | E_full

let error_code = function
  | E_invalid -> -1L
  | E_overlap -> -2L
  | E_state -> -3L
  | E_unknown -> -4L
  | E_full -> -5L

type enclave_state = Loading | Sealed | Running of int | Dead

type enclave = {
  id : enclave_id;
  evbase : int64;
  evsize : int64;
  entry : int64;
  e_regions : int list;
  meas : Measurement.t;
  mutable measurement : Sha256.digest option;
  mutable state : enclave_state;
  pt_root : int;
  mutable alloc_cursor : int; (* index into the enclave's page pool *)
  mailbox : Mailbox.t;
}

(* Saved architectural context for a descheduled domain. *)
type context = {
  c_regs : int64 array;
  c_pc : int64;
  c_mode : Priv.mode;
  c_satp : int64;
  c_mregions : int64;
  c_mstatus : int64;
}

type t = {
  mem : Phys_mem.t;
  cores : Fsim.t array;
  ledger : Region.t;
  platform_key : string;
  enclaves : (enclave_id, enclave) Hashtbl.t;
  mutable next_id : enclave_id;
  os_mailbox : Mailbox.t;
  (* Per-core: which domain runs, and the saved OS context while an
     enclave occupies the core. *)
  domain : Mailbox.endpoint array;
  saved_os : context option array;
  purge_count : int array;
  mutable purge_hooks : (core:int -> unit) list;
  mutable scrub_hooks : (int list -> unit) list;
}

(* ------------------------------------------------------------------ *)
(* Context switching helpers                                           *)
(* ------------------------------------------------------------------ *)

let save_context st =
  {
    c_regs = Array.init 32 (fun r -> Cpu_state.get_reg st r);
    c_pc = Cpu_state.pc st;
    c_mode = Cpu_state.mode st;
    c_satp = Cpu_state.csr_raw st Csr.satp;
    c_mregions = Cpu_state.csr_raw st Csr.mregions;
    c_mstatus = Cpu_state.csr_raw st Csr.mstatus;
  }

let restore_context st c =
  Array.iteri (fun r v -> Cpu_state.set_reg st r v) c.c_regs;
  Cpu_state.set_pc st c.c_pc;
  Cpu_state.set_mode st c.c_mode;
  Cpu_state.set_csr_raw st Csr.satp c.c_satp;
  Cpu_state.set_csr_raw st Csr.mregions c.c_mregions;
  Cpu_state.set_csr_raw st Csr.mstatus c.c_mstatus

let purge t ~core =
  t.purge_count.(core) <- t.purge_count.(core) + 1;
  List.iter (fun f -> f ~core) t.purge_hooks

(* After any region-ownership change, cores running the OS must see the
   OS's updated permission vector (paired with a TLB shootdown so stale
   translations cannot outlive the policy — the purge hook consumers flush
   timing-model TLBs). *)
let refresh_os_permissions t =
  let mask = Region.perm_mask t.ledger Region.Os in
  Array.iteri
    (fun core fsim ->
      if t.domain.(core) = Mailbox.To_os then
        Cpu_state.set_csr_raw (Fsim.state fsim) Csr.mregions mask)
    t.cores

(* ------------------------------------------------------------------ *)
(* Enclave memory management                                           *)
(* ------------------------------------------------------------------ *)

let pages_per_region g = g.Addr.region_bytes / Addr.page_bytes

(* The enclave's page pool: all pages of its regions, in region order.
   Page 0 holds the root page table. *)
let pool_page t e i =
  let g = Region.geometry t.ledger in
  let per = pages_per_region g in
  let region = List.nth e.e_regions (i / per) in
  Addr.region_base g region + (Addr.page_bytes * (i mod per))

let pool_size t e =
  List.length e.e_regions * pages_per_region (Region.geometry t.ledger)

let alloc_page t e =
  if e.alloc_cursor >= pool_size t e then None
  else begin
    let p = pool_page t e e.alloc_cursor in
    e.alloc_cursor <- e.alloc_cursor + 1;
    Some p
  end

let scrub_regions t regions =
  let g = Region.geometry t.ledger in
  List.iter
    (fun r ->
      Phys_mem.zero_range t.mem (Addr.region_base g r) g.Addr.region_bytes)
    regions;
  List.iter (fun f -> f regions) t.scrub_hooks

(* ------------------------------------------------------------------ *)
(* Lookup helpers                                                      *)
(* ------------------------------------------------------------------ *)

let find t id =
  match Hashtbl.find_opt t.enclaves id with
  | Some e when e.state <> Dead -> Ok e
  | _ -> Error E_unknown

let mailbox_of t = function
  | Mailbox.To_os -> Some t.os_mailbox
  | Mailbox.To_enclave id -> (
    match find t id with Ok e -> Some e.mailbox | Error _ -> None)

(* ------------------------------------------------------------------ *)
(* SM calls                                                            *)
(* ------------------------------------------------------------------ *)

let create_enclave t ~evbase ~evsize ~entry ~regions =
  let page = Int64.of_int Addr.page_bytes in
  if
    evsize <= 0L
    || Int64.rem evbase page <> 0L
    || Int64.rem evsize page <> 0L
    || Int64.compare entry evbase < 0
    || Int64.compare entry (Int64.add evbase evsize) >= 0
  then Error E_invalid
  else if
    not (Region.transfer t.ledger ~regions ~from_:Region.Os
           ~to_:(Region.Enclave t.next_id))
  then Error E_overlap
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    (* Scrub before use: the OS may hand over dirty memory. *)
    scrub_regions t regions;
    refresh_os_permissions t;
    let e =
      {
        id;
        evbase;
        evsize;
        entry;
        e_regions = regions;
        meas = Measurement.start ~evbase ~evsize ~entry;
        measurement = None;
        state = Loading;
        pt_root = Addr.region_base (Region.geometry t.ledger) (List.hd regions);
        alloc_cursor = 1 (* page 0 = root page table *);
        mailbox = Mailbox.create ();
      }
    in
    Hashtbl.add t.enclaves id e;
    Ok id
  end

let load_page t id ~vaddr ~contents =
  match find t id with
  | Error e -> Error e
  | Ok e ->
    if e.state <> Loading then Error E_state
    else if
      Int64.rem vaddr (Int64.of_int Addr.page_bytes) <> 0L
      || Int64.compare vaddr e.evbase < 0
      || Int64.compare vaddr (Int64.add e.evbase e.evsize) >= 0
      || String.length contents > Addr.page_bytes
    then Error E_invalid
    else begin
      match alloc_page t e with
      | None -> Error E_full
      | Some paddr ->
        let padded =
          contents ^ String.make (Addr.page_bytes - String.length contents) '\x00'
        in
        Phys_mem.load_string t.mem paddr padded;
        (* Page-table pages come from the same pool. *)
        let alloc () =
          match alloc_page t e with
          | Some p -> p
          | None -> failwith "Monitor: enclave out of page-table pages"
        in
        Page_table.map_page t.mem ~alloc ~root:e.pt_root ~vaddr ~paddr
          ~perm:(Page_table.perm_user Page_table.perm_rwx);
        Measurement.add_page e.meas ~vaddr ~contents:padded;
        Ok ()
    end

let seal t id =
  match find t id with
  | Error e -> Error e
  | Ok e ->
    if e.state <> Loading then Error E_state
    else begin
      let d = Measurement.finalize e.meas in
      e.measurement <- Some d;
      e.state <- Sealed;
      Ok d
    end

let enter t ~core id =
  match find t id with
  | Error e -> Error e
  | Ok e -> (
    match e.state with
    | Sealed -> (
      match t.domain.(core) with
      | Mailbox.To_enclave _ -> Error E_state
      | Mailbox.To_os ->
        let st = Fsim.state t.cores.(core) in
        t.saved_os.(core) <- Some (save_context st);
        (* Purge on schedule: pristine microarchitectural environment. *)
        purge t ~core;
        e.state <- Running core;
        t.domain.(core) <- Mailbox.To_enclave id;
        Cpu_state.set_csr_raw st Csr.satp
          (Int64.logor (Int64.shift_left 8L 60)
             (Int64.of_int (e.pt_root / Addr.page_bytes)));
        Cpu_state.set_csr_raw st Csr.mregions
          (Region.perm_mask t.ledger (Region.Enclave id));
        Cpu_state.set_mode st Priv.User;
        Cpu_state.set_pc st e.entry;
        Ok ())
    | Loading | Running _ | Dead -> Error E_state)

(* Common deschedule path for voluntary exit and async exits. *)
let deschedule t ~core ~resume_os_with =
  match t.domain.(core) with
  | Mailbox.To_os -> Error E_state
  | Mailbox.To_enclave id -> (
    match find t id with
    | Error e -> Error e
    | Ok e ->
      (* Purge on deschedule: erase side effects of enclave execution. *)
      purge t ~core;
      e.state <- Sealed;
      t.domain.(core) <- Mailbox.To_os;
      let st = Fsim.state t.cores.(core) in
      (match t.saved_os.(core) with
      | Some c ->
        restore_context st c;
        t.saved_os.(core) <- None
      | None -> failwith "Monitor: no saved OS context");
      (* The OS sees only the SM-call return value (never fault
         addresses). *)
      Cpu_state.set_reg st Reg.a0 resume_os_with;
      Ok ())

let exit_enclave t ~core = deschedule t ~core ~resume_os_with:0L

let destroy t id =
  match find t id with
  | Error e -> Error e
  | Ok e -> (
    match e.state with
    | Running _ -> Error E_state
    | Loading | Sealed ->
      (* Scrub before the regions return to the OS, and purge cached
         translations system-wide (TLB shootdown is modeled by the purge
         hook consumers). *)
      scrub_regions t e.e_regions;
      ignore
        (Region.transfer t.ledger ~regions:e.e_regions
           ~from_:(Region.Enclave id) ~to_:Region.Os);
      refresh_os_permissions t;
      e.state <- Dead;
      Ok ()
    | Dead -> Error E_unknown)

let attest t id ~challenge ~report_data =
  match find t id with
  | Error e -> Error e
  | Ok e -> (
    match e.measurement with
    | None -> Error E_state
    | Some m ->
      Ok
        (Attestation.sign ~platform_key:t.platform_key ~measurement:m
           ~challenge ~report_data))

let send_msg t ~from_ ~to_ msg =
  match mailbox_of t to_ with
  | None -> false
  | Some box -> Mailbox.send box ~from_ msg

let recv_msg t ~me =
  match mailbox_of t me with None -> None | Some box -> Mailbox.recv box

let measurement t id =
  match find t id with
  | Error e -> Error e
  | Ok e -> (
    match e.measurement with None -> Error E_state | Some m -> Ok m)

let enclave_state_name t id =
  match Hashtbl.find_opt t.enclaves id with
  | None -> "unknown"
  | Some e -> (
    match e.state with
    | Loading -> "loading"
    | Sealed -> "sealed"
    | Running _ -> "running"
    | Dead -> "dead")

(* ------------------------------------------------------------------ *)
(* Firmware: the ecall ABI and trap interposition                      *)
(* ------------------------------------------------------------------ *)

(* Translate an enclave virtual address for monitor-mediated copies. *)
let enclave_translate t e vaddr =
  ignore t;
  fun mem ->
    match Page_table.walk mem ~root:e.pt_root ~vaddr with
    | Page_table.Translated (leaf, _) -> Some leaf.Page_table.paddr
    | Page_table.Fault _ -> None

let read_enclave_bytes t e ~vaddr ~len =
  let buf = Buffer.create len in
  let ok = ref true in
  for i = 0 to len - 1 do
    if !ok then begin
      match
        enclave_translate t e (Int64.add vaddr (Int64.of_int i)) t.mem
      with
      | Some pa -> Buffer.add_char buf (Char.chr (Phys_mem.read_u8 t.mem pa))
      | None -> ok := false
    end
  done;
  if !ok then Some (Buffer.contents buf) else None

let write_enclave_bytes t e ~vaddr data =
  let ok = ref true in
  String.iteri
    (fun i ch ->
      if !ok then begin
        match
          enclave_translate t e (Int64.add vaddr (Int64.of_int i)) t.mem
        with
        | Some pa -> Phys_mem.write_u8 t.mem pa (Char.code ch)
        | None -> ok := false
      end)
    data;
  !ok

let max_msg = 256

let handle_os_ecall t ~core ~epc =
  let st = Fsim.state t.cores.(core) in
  let a n = Cpu_state.get_reg st n in
  let ret v =
    Cpu_state.set_reg st Reg.a0 v;
    Cpu_state.set_pc st (Int64.add epc 4L)
  in
  let ret_err e = ret (error_code e) in
  (match Int64.to_int (a Reg.a7) with
  | 1 ->
    (* create(evbase, evsize, entry, region_mask) *)
    let mask = a Reg.a3 in
    let regions = ref [] in
    for r = 63 downto 0 do
      if Int64.logand (Int64.shift_right_logical mask r) 1L = 1L then
        regions := r :: !regions
    done;
    (match
       create_enclave t ~evbase:(a Reg.a0) ~evsize:(a Reg.a1)
         ~entry:(a Reg.a2) ~regions:!regions
     with
    | Ok id -> ret (Int64.of_int id)
    | Error e -> ret_err e)
  | 2 ->
    (* load_page(id, vaddr, src_paddr): the monitor copies from
       OS-owned memory. *)
    let id = Int64.to_int (a Reg.a0) in
    let src = Int64.to_int (a Reg.a2) in
    let contents = Phys_mem.read_string t.mem src Addr.page_bytes in
    (match load_page t id ~vaddr:(a Reg.a1) ~contents with
    | Ok () -> ret 0L
    | Error e -> ret_err e)
  | 3 -> (
    match seal t (Int64.to_int (a Reg.a0)) with
    | Ok _ -> ret 0L
    | Error e -> ret_err e)
  | 4 -> (
    (* enter: on success the core now runs the enclave; the OS resumes
       (at epc+4) only when the enclave exits, with a0 set by the
       deschedule path.  Stash the resume pc in the saved context. *)
    Cpu_state.set_pc st (Int64.add epc 4L);
    match enter t ~core (Int64.to_int (a Reg.a0)) with
    | Ok () -> ()
    | Error e -> ret_err e)
  | 7 ->
    let dest =
      match Int64.to_int (a Reg.a0) with
      | -1 -> Mailbox.To_os
      | id -> Mailbox.To_enclave id
    in
    let len = Int64.to_int (a Reg.a2) in
    if len < 0 || len > max_msg then ret_err E_invalid
    else begin
      let msg = Phys_mem.read_string t.mem (Int64.to_int (a Reg.a1)) len in
      if send_msg t ~from_:Mailbox.To_os ~to_:dest msg then ret 0L
      else ret_err E_full
    end
  | 8 -> (
    match recv_msg t ~me:Mailbox.To_os with
    | None -> ret (-6L) (* empty *)
    | Some (_, msg) ->
      Phys_mem.load_string t.mem (Int64.to_int (a Reg.a0)) msg;
      ret (Int64.of_int (String.length msg)))
  | 9 -> (
    match destroy t (Int64.to_int (a Reg.a0)) with
    | Ok () -> ret 0L
    | Error e -> ret_err e)
  | _ -> ret_err E_invalid);
  true

let handle_enclave_ecall t ~core ~epc e =
  let st = Fsim.state t.cores.(core) in
  let a n = Cpu_state.get_reg st n in
  let ret v =
    Cpu_state.set_reg st Reg.a0 v;
    Cpu_state.set_pc st (Int64.add epc 4L)
  in
  let ret_err err = ret (error_code err) in
  (match Int64.to_int (a Reg.a7) with
  | 5 -> ignore (exit_enclave t ~core)
  | 6 -> (
    (* attest(challenge_va[32], data_va[64], out_va[64]): out receives
       measurement || tag. *)
    match
      ( read_enclave_bytes t e ~vaddr:(a Reg.a0) ~len:32,
        read_enclave_bytes t e ~vaddr:(a Reg.a1) ~len:64 )
    with
    | Some challenge, Some report_data -> (
      match attest t e.id ~challenge ~report_data with
      | Ok report ->
        if
          write_enclave_bytes t e ~vaddr:(a Reg.a2)
            (report.Attestation.measurement ^ report.Attestation.tag)
        then ret 0L
        else ret_err E_invalid
      | Error err -> ret_err err)
    | _ -> ret_err E_invalid)
  | 7 ->
    let len = Int64.to_int (a Reg.a2) in
    if len < 0 || len > max_msg then ret_err E_invalid
    else begin
      (* Enclaves may only message the OS (all communication is
         monitor-mediated; enclave-to-enclave goes through the OS,
         padded by the sender as the paper prescribes). *)
      match read_enclave_bytes t e ~vaddr:(a Reg.a1) ~len with
      | Some msg ->
        if send_msg t ~from_:(Mailbox.To_enclave e.id) ~to_:Mailbox.To_os msg
        then ret 0L
        else ret_err E_full
      | None -> ret_err E_invalid
    end
  | 8 -> (
    match recv_msg t ~me:(Mailbox.To_enclave e.id) with
    | None -> ret (-6L)
    | Some (_, msg) ->
      if write_enclave_bytes t e ~vaddr:(a Reg.a0) msg then
        ret (Int64.of_int (String.length msg))
      else ret_err E_invalid)
  | _ -> ret_err E_invalid);
  true

let firmware t core _fsim ~cause ~tval ~epc =
  ignore tval;
  match t.domain.(core) with
  | Mailbox.To_os -> (
    match cause with
    | Priv.Exception Priv.Ecall_from_s -> handle_os_ecall t ~core ~epc
    | Priv.Interrupt _ ->
      (* Forward to the OS as if delegated. *)
      let st = Fsim.state t.cores.(core) in
      let handler = Cpu_state.push_trap st ~target:Priv.Supervisor ~cause
                      ~tval ~pc:epc in
      Cpu_state.set_pc st handler;
      true
    | _ -> false (* OS faults vector architecturally *))
  | Mailbox.To_enclave id -> (
    match find t id with
    | Error _ -> false
    | Ok e -> (
      match cause with
      | Priv.Exception Priv.Ecall_from_u -> handle_enclave_ecall t ~core ~epc e
      | Priv.Interrupt _ ->
        (* Asynchronous exit: deschedule (purging) before the OS handler
           may run; the OS learns nothing but "the enclave stopped". *)
        ignore (deschedule t ~core ~resume_os_with:(-7L));
        true
      | Priv.Exception _ ->
        (* Enclave fault: async exit; fault details stay private. *)
        ignore (deschedule t ~core ~resume_os_with:(-8L));
        true))

let create ?(platform_key = "mi6-platform-root-key") ~mem ~cores ~geometry () =
  let n = Array.length cores in
  let t =
    {
      mem;
      cores;
      ledger = Region.create geometry;
      platform_key;
      enclaves = Hashtbl.create 8;
      next_id = 1;
      os_mailbox = Mailbox.create ();
      domain = Array.make n Mailbox.To_os;
      saved_os = Array.make n None;
      purge_count = Array.make n 0;
      purge_hooks = [];
      scrub_hooks = [];
    }
  in
  Array.iteri
    (fun core fsim ->
      Fsim.set_firmware fsim (fun fsim ~cause ~tval ~epc ->
          firmware t core fsim ~cause ~tval ~epc);
      (* The OS initially owns every region but the monitor's. *)
      Cpu_state.set_csr_raw (Fsim.state fsim) Csr.mregions
        (Region.perm_mask t.ledger Region.Os))
    cores;
  t

let regions t = t.ledger
let platform_key t = t.platform_key
let current_domain t ~core = t.domain.(core)
let purges t ~core = t.purge_count.(core)
let on_purge t f = t.purge_hooks <- f :: t.purge_hooks
let on_scrub t f = t.scrub_hooks <- f :: t.scrub_hooks
