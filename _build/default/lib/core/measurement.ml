type t = { ctx : Sha256.ctx; mutable final : Sha256.digest option }

let le64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))

let start ~evbase ~evsize ~entry =
  let ctx = Sha256.init () in
  Sha256.feed ctx "mi6-enclave-v1";
  Sha256.feed ctx (le64 evbase);
  Sha256.feed ctx (le64 evsize);
  Sha256.feed ctx (le64 entry);
  { ctx; final = None }

let check_open t =
  if t.final <> None then invalid_arg "Measurement: already finalized"

let add_page t ~vaddr ~contents =
  check_open t;
  Sha256.feed t.ctx "page";
  Sha256.feed t.ctx (le64 vaddr);
  Sha256.feed t.ctx contents

let finalize t =
  check_open t;
  let d = Sha256.finalize t.ctx in
  t.final <- Some d;
  d

let is_finalized t = t.final <> None
