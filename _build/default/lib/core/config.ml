type variant = Base | Flush | Part | Miss | Arb | Nonspec | Fpma

let all_variants = [ Base; Flush; Part; Miss; Arb; Nonspec; Fpma ]

let variant_name = function
  | Base -> "BASE"
  | Flush -> "FLUSH"
  | Part -> "PART"
  | Miss -> "MISS"
  | Arb -> "ARB"
  | Nonspec -> "NONSPEC"
  | Fpma -> "F+P+M+A"

let variant_of_name s =
  List.find_opt (fun v -> variant_name v = String.uppercase_ascii s) all_variants

type timing = {
  core : Core_config.t;
  l1 : L1.config;
  llc : Llc.config;
  llc_security : Llc.security;
  dram_latency : int;
  dram_outstanding : int;
}

let base_timing ~cores =
  {
    core = Core_config.default;
    l1 = L1.default_config;
    (* The LLC serves two ports (I and D) per core. *)
    llc = Llc.default_config ~cores:(2 * cores);
    llc_security = Llc.baseline_security;
    dram_latency = 120;
    dram_outstanding = 24;
  }

let with_flush t =
  { t with core = { t.core with Core_config.flush_on_trap = true } }

let with_part t =
  {
    t with
    llc =
      {
        t.llc with
        Llc.index =
          Index.partitioned ~set_bits:10 ~region_bits:2
            ~geometry:Addr.default_regions;
      };
  }

let with_miss t =
  {
    t with
    llc =
      { t.llc with Llc.mshrs = 12; mshr_banks = 4; strict_bank_stall = true };
  }

let with_arb t =
  { t with llc = { t.llc with Llc.pipeline_latency = 4 + 8 } }

let with_nonspec t =
  { t with core = { t.core with Core_config.nonspec_mem = true } }

let timing ~cores variant =
  let b = base_timing ~cores in
  match variant with
  | Base -> b
  | Flush -> with_flush b
  | Part -> with_part b
  | Miss -> with_miss b
  | Arb -> with_arb b
  | Nonspec -> with_nonspec b
  | Fpma -> with_arb (with_miss (with_part (with_flush b)))

let secure_multicore ~cores =
  let b = base_timing ~cores in
  let t = with_part (with_flush b) in
  let ports = 2 * cores in
  (* Real Figure 3 structures rather than the ARB latency approximation:
     MSHRs statically partitioned at 3 per port, and the DRAM controller
     sized so the paper's rule (#MSHR <= d_max / 2) holds. *)
  {
    t with
    llc_security = Llc.mi6_security;
    llc = { t.llc with Llc.mshrs = 3 * ports; mshr_banks = 1 };
    dram_outstanding = 6 * ports;
  }
