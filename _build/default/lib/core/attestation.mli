(** Remote attestation (substituting HMAC-SHA-256 under a platform root
    key for the asymmetric signatures of the Sanctum attestation chain —
    see DESIGN.md).

    The verifier sends a fresh [challenge]; the enclave asks the monitor
    for a report over (measurement, challenge, report_data); the verifier
    recomputes the MAC with the shared platform key and checks both the
    tag and the expected measurement. *)

type report = {
  measurement : Sha256.digest;
  challenge : string;
  report_data : string;  (** enclave-chosen binding, e.g. a public key *)
  tag : string;
}

(** [sign ~platform_key ~measurement ~challenge ~report_data] — monitor
    side. *)
val sign :
  platform_key:string ->
  measurement:Sha256.digest ->
  challenge:string ->
  report_data:string ->
  report

(** [verify ~platform_key ~expected_measurement ~challenge report] —
    verifier side; checks tag, challenge freshness (equality), and
    measurement. *)
val verify :
  platform_key:string ->
  expected_measurement:Sha256.digest ->
  challenge:string ->
  report ->
  bool
