(** The seven processor variants of the paper's evaluation (Section 7) and
    the full MI6 secure configuration.

    - [Base]: insecure RiscyOO baseline (Figure 4).
    - [Flush]: + purge of all per-core microarchitectural state on every
      trap entry and trap return (Section 7.1).
    - [Part]: + LLC set partitioning, i.e. the index function becomes
      [{R[1:0], A[7:0]}] (Section 7.2).
    - [Miss]: + LLC MSHRs reduced from 16 to 12 and sliced into 4 banks,
      with the paper's pessimistic whole-file bank stall (Section 7.3).
    - [Arb]: + 8 extra cycles of LLC pipeline latency, modeling the
      round-robin arbiter of a 16-core machine (Section 7.4).
    - [Nonspec]: memory instructions rename only on an empty ROB
      (Section 7.5).
    - [Fpma]: Flush + Part + Miss + Arb (Section 7.6) — the enclave cost.

    [secure_multicore] is the real MI6 machine configuration used by the
    multicore isolation tests: every Figure 3 LLC structure enabled, plus
    flush-on-trap cores. *)

type variant = Base | Flush | Part | Miss | Arb | Nonspec | Fpma

val all_variants : variant list
val variant_name : variant -> string
val variant_of_name : string -> variant option

type timing = {
  core : Core_config.t;
  l1 : L1.config;
  llc : Llc.config;
  llc_security : Llc.security;
  dram_latency : int;
  dram_outstanding : int;
}

(** [timing ~cores variant] — the single-core evaluation methodology uses
    [cores = 1] link pairs; the LLC sees [2 * cores] ports (I and D per
    core). *)
val timing : cores:int -> variant -> timing

(** Full MI6 machine (Figure 3 structures + purge-on-trap cores), for
    [cores] cores. *)
val secure_multicore : cores:int -> timing
