type endpoint = To_os | To_enclave of int

type t = { q : (endpoint * string) Fifo.t }

let create ?(capacity = 8) () = { q = Fifo.create ~capacity }

let send t ~from_ msg =
  if Fifo.can_enq t.q then begin
    Fifo.enq t.q (from_, msg);
    true
  end
  else false

let recv t = if Fifo.can_deq t.q then Some (Fifo.deq t.q) else None
let pending t = Fifo.length t.q
let clear t = Fifo.clear t.q
