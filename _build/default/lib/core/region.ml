type owner = Monitor | Os | Enclave of int | Free

type t = { geometry : Addr.regions; owners : owner array }

let create geometry =
  let owners = Array.make geometry.Addr.region_count Os in
  owners.(0) <- Monitor;
  { geometry; owners }

let geometry t = t.geometry
let region_count t = t.geometry.Addr.region_count

let owner t r =
  if r < 0 || r >= Array.length t.owners then invalid_arg "Region.owner";
  t.owners.(r)

let owned_by t who =
  let acc = ref [] in
  Array.iteri (fun i o -> if o = who then acc := i :: !acc) t.owners;
  List.rev !acc

let transfer t ~regions ~from_ ~to_ =
  let ok =
    regions <> []
    && List.for_all
         (fun r -> r >= 0 && r < Array.length t.owners && t.owners.(r) = from_)
         regions
  in
  if ok then List.iter (fun r -> t.owners.(r) <- to_) regions;
  ok

let perm_mask t who =
  let mask = ref 0L in
  Array.iteri
    (fun i o ->
      if o = who then mask := Int64.logor !mask (Int64.shift_left 1L i))
    t.owners;
  !mask
