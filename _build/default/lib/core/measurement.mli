(** Enclave measurement (Sanctum-style, via [36] in the paper): a running
    SHA-256 over the enclave's configuration and loaded contents, in load
    order.  Equal measurements mean identical initial enclave state, which
    is what attestation proves to a remote verifier. *)

type t

val start : evbase:int64 -> evsize:int64 -> entry:int64 -> t

(** [add_page m ~vaddr ~contents] extends the measurement with a page
    binding. *)
val add_page : t -> vaddr:int64 -> contents:string -> unit

(** [finalize m] seals and returns the 32-byte measurement. *)
val finalize : t -> Sha256.digest

val is_finalized : t -> bool
