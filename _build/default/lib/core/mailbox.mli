(** Monitor-mediated inter-domain messaging (Section 6.1): the only
    communication channel between protection domains.  A sender asks the
    monitor to copy a message into a pre-allocated buffer in the receiving
    domain; no memory is ever shared, which closes the shared-memory
    timing channels that SGX/Sanctum-style shared pages reopen.

    Each domain owns one mailbox with a bounded queue; sends to a full
    mailbox fail (the sender is told — no blocking, no back-channel via
    blocking time beyond the architectural API). *)

type endpoint = To_os | To_enclave of int

type t

val create : ?capacity:int -> unit -> t

(** [send t ~from_ msg] — [false] when the box is full. *)
val send : t -> from_:endpoint -> string -> bool

(** [recv t] — oldest (sender, message), if any. *)
val recv : t -> (endpoint * string) option

val pending : t -> int
val clear : t -> unit
