lib/core/tmachine.mli: Config Core Mi6_workload Stats Uop
