lib/core/config.ml: Addr Core_config Index L1 List Llc String
