lib/core/region.ml: Addr Array Int64 List
