lib/core/noninterference.ml: Addr Fr_fcfs Hierarchy Index List Llc Stats
