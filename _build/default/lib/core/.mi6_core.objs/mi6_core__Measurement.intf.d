lib/core/measurement.mli: Sha256
