lib/core/mailbox.mli:
