lib/core/area_model.mli:
