lib/core/tmachine.ml: Addr Array Config Controller Core L1 Link Llc Mi6_workload Option Printf Stats
