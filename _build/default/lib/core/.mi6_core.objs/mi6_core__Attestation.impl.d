lib/core/attestation.ml: Char Hmac Sha256 String
