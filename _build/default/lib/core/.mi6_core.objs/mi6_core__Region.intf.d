lib/core/region.mli: Addr
