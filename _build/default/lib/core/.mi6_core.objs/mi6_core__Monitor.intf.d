lib/core/monitor.mli: Addr Attestation Fsim Mailbox Phys_mem Region Sha256 Stdlib
