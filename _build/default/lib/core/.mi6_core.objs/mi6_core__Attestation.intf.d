lib/core/attestation.mli: Sha256
