lib/core/monitor.ml: Addr Array Attestation Buffer Char Cpu_state Csr Fsim Hashtbl Int64 List Mailbox Measurement Page_table Phys_mem Priv Reg Region Sha256 String
