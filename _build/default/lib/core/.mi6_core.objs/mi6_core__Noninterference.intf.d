lib/core/noninterference.mli: Index Llc
