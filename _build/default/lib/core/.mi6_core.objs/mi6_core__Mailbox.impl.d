lib/core/mailbox.ml: Fifo
