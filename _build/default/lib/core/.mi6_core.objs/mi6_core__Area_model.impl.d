lib/core/area_model.ml: List
