lib/core/config.mli: Core_config L1 Llc
