lib/core/measurement.ml: Char Int64 Sha256 String
