type component = {
  name : string;
  base_bits : int;
  mi6_extra_bits : int;
}

(* Figure 4 structures, excluding the SRAM-heavy arrays the paper also
   excludes (L1/LLC data+tag arrays, FPU).  Sizes in state bits; control
   logic is approximated as a fraction of datapath state, uniformly for
   both machines, so it cancels in the ratio and is omitted. *)
let components ~cores =
  let per_core =
    [
      (* Rename and window state. *)
      ("ROB (80 x ~70b bookkeeping)", 80 * 70, 0);
      ("rename map + free list (128 phys)", (32 * 7) + (128 * 8), 0);
      ("issue queues (4 x 16 x ~40b)", 4 * 16 * 40, 0);
      ("LQ/SQ/SB (24+14+4 x ~90b)", (24 + 14 + 4) * 90, 0);
      (* Predictors. *)
      ("tournament predictor (local 1024x10+1024x3, global 4096x2, choice 4096x2)",
       (1024 * 10) + (1024 * 3) + (4096 * 2) + (4096 * 2), 0);
      ("BTB (256 x ~60b)", 256 * 60, 0);
      ("RAS (8 x 48b)", 8 * 48, 0);
      (* TLBs (tag+data flops/regfiles, not big SRAMs). *)
      ("L1 I/D TLBs (2 x 32 x ~100b)", 2 * 32 * 100, 0);
      ("L2 TLB (1024 x ~80b)", 1024 * 80, 0);
      ("translation cache (2 x 24 x ~70b)", 2 * 24 * 70, 0);
      (* L1 control (MSHRs, not arrays). *)
      ("L1 MSHRs (2 x 8 x ~80b)", 2 * 8 * 80, 0);
      (* MI6 per-core additions. *)
      ("mregions CSR + region comparators", 0, 64 + 128);
      ("mfetchbase/mfetchmask/mspec CSRs", 0, 64 + 64 + 8);
      ("purge sequencer (flush cursors + FSM)", 0, 64);
      ("TLB region-permission bits (cached check)", 0, (2 * 32) + 1024);
    ]
  in
  let llc =
    [
      (* LLC control state (arrays excluded). *)
      ("LLC MSHRs (16 x ~120b)", 16 * 120, 0);
      ("LLC UQ/DQ indices (2 x 16 x 4b)", 2 * 16 * 4, 0);
      ("LLC directory-op pipeline regs (~4 x 80b)", 4 * 80, 0);
      (* MI6 LLC additions: the UQ split is free (same total entries,
         Section 5.4.4); the retry bit, arbiter, and duplicated
         Downgrade-L1 scan comparators are the real additions. *)
      ("MSHR retry bits", 0, 16);
      ("round-robin arbiter counter + per-core input merge", 0, 8 + (cores * 16));
      ("duplicated Downgrade-L1 scanners (comparator-equiv)", 0, cores * 64);
    ]
  in
  List.map
    (fun (name, b, e) ->
      { name; base_bits = b * cores; mi6_extra_bits = e * cores })
    per_core
  @ List.map (fun (name, b, e) -> { name; base_bits = b; mi6_extra_bits = e }) llc

type summary = { base_bits : int; extra_bits : int; percent : float }

let summary ~cores =
  let cs = components ~cores in
  let base = List.fold_left (fun a (c : component) -> a + c.base_bits) 0 cs in
  let extra =
    List.fold_left (fun a (c : component) -> a + c.mi6_extra_bits) 0 cs
  in
  {
    base_bits = base;
    extra_bits = extra;
    percent = 100.0 *. float_of_int extra /. float_of_int base;
  }
