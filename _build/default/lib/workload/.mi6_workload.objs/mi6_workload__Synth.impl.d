lib/workload/synth.ml: Array Float Hashtbl List Rng Spec Uop
