lib/workload/spec.ml: List
