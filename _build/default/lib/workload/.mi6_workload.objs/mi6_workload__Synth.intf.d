lib/workload/synth.mli: Spec Uop
