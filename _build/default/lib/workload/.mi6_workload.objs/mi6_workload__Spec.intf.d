lib/workload/spec.mli:
