

type branch_profile =
  | Bias_taken  (** ~97% taken *)
  | Bias_not  (** ~97% not taken *)
  | Loop of int  (** taken (n-1) times, then exits *)
  | Random_dir  (** data-dependent coin flip *)

type term =
  | T_branch of { profile : branch_profile; target : int }
  | T_jump of int
  | T_call of int  (** callee entry block; returns to the next block *)
  | T_ret
  | T_fall

type block = { b_pc : int; b_len : int; b_term : term }

type t = {
  p : Spec.params;
  rng : Rng.t; (* data-dependent choices *)
  blocks : block array;
  func_entries : int array;
  (* Walk state *)
  mutable cur : int;
  mutable pos : int;
  mutable next_entry : int;
  mutable func_iters_left : int;
  mutable call_stack : int list;
  loop_state : (int, int) Hashtbl.t;
  (* Data state *)
  data_base : int;
  ws_bytes : int;
  hot_bytes : int;
  mutable stream_cursor : int;
  chase_perm : int array;
  mutable chase_pos : int;
  (* Registers *)
  mutable next_dst : int;
  mutable recent : int list;
  (* Kernel *)
  kernel_base : int;
  mutable emitted : int;
  mutable next_syscall : int;
  mutable kernel_left : int; (* >0: inside the kernel *)
  mutable kernel_pc : int;
  mutable kernel_cursor : int;
}

(* ------------------------------------------------------------------ *)
(* Static CFG construction                                             *)
(* ------------------------------------------------------------------ *)

let build_cfg p ~code_base ~rng =
  let total_instrs = max 64 (p.Spec.code_kb * 1024 / 4) in
  (* Conditional branches are ~75% of block terminators; pick the mean
     block length so branches occur at the model's branch_frac. *)
  let branch_term_share = 0.75 in
  let mean_block = branch_term_share /. Float.max 0.02 p.Spec.branch_frac in
  let mean_len = max 2 (int_of_float (Float.round mean_block) - 1) in
  let call_share = p.Spec.call_frac *. float_of_int (mean_len + 1) in
  let blocks = ref [] in
  let entries = ref [] in
  let pc = ref code_base in
  let instrs = ref 0 in
  let bidx = ref 0 in
  let pick_profile =
    let mean_trip = 8.5 in
    let weights =
      [| p.Spec.biased_frac; p.Spec.patterned_frac /. mean_trip;
         Float.max 0.02 (1.0 -. p.Spec.biased_frac -. p.Spec.patterned_frac) |]
    in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let counts = [| 0.0; 0.0; 0.0 |] in
    let assigned = ref 0.0 in
    fun () ->
      assigned := !assigned +. 1.0;
      let best = ref 0 in
      for i = 1 to 2 do
        let deficit j = (weights.(j) /. total *. !assigned) -. counts.(j) in
        if deficit i > deficit !best then best := i
      done;
      counts.(!best) <- counts.(!best) +. 1.0;
      !best
  in
  (* Functions of 3-9 blocks; the block list is built in layout order. *)
  while !instrs < total_instrs do
    let fblocks = 3 + Rng.int rng 7 in
    entries := !bidx :: !entries;
    let first = !bidx in
    for j = 0 to fblocks - 1 do
      let len = max 1 (mean_len - 1 + Rng.int rng 4) in
      let is_last = j = fblocks - 1 in
      let term =
        if is_last then T_ret
        else begin
          let r = Rng.float rng in
          if r < branch_term_share then begin
            (* Conditional branch; backward targets make loops. *)
            let profile =
              (* A loop branch executes ~trip times per visit, so its
                 static weight is divided by the mean trip count to hit
                 the intended *dynamic* mix.  Error-diffusion assignment
                 (rather than random sampling) keeps every hot path
                 representative of the target mix. *)
              match pick_profile () with
              | 0 -> if Rng.bool rng ~p:0.5 then Bias_taken else Bias_not
              | 1 -> Loop (3 + Rng.int rng 12)
              | _ -> Random_dir
            in
            (* Only bounded loop branches go backward; biased and
               data-dependent branches are forward if-else edges.  This
               keeps a function visit's length bounded and the dynamic
               branch mix faithful to the static one. *)
            let backward = match profile with Loop _ -> true | _ -> false in
            let target =
              if backward then first + Rng.int rng (j + 1)
              else !bidx + 1 + Rng.int rng (max 1 (fblocks - j - 1))
            in
            T_branch { profile; target }
          end
          else if r < branch_term_share +. call_share then T_call (-1)
            (* patched below once all entries exist *)
          else if r < branch_term_share +. call_share +. 0.08 then
            T_jump (!bidx + 1)
          else T_fall
        end
      in
      blocks := { b_pc = !pc; b_len = len; b_term = term } :: !blocks;
      pc := !pc + (4 * (len + 1));
      instrs := !instrs + len + 1;
      incr bidx
    done
  done;
  let blocks = Array.of_list (List.rev !blocks) in
  let entries = Array.of_list (List.rev !entries) in
  (* Patch call targets and clamp branch/jump targets. *)
  let n = Array.length blocks in
  Array.mapi
    (fun i b ->
      let clamp t = if t >= n || t < 0 then (i + 1) mod n else t in
      match b.b_term with
      | T_call _ ->
        let callee = entries.(Rng.int rng (Array.length entries)) in
        { b with b_term = T_call callee }
      | T_branch { profile; target } ->
        { b with b_term = T_branch { profile; target = clamp target } }
      | T_jump t -> { b with b_term = T_jump (clamp t) }
      | T_ret | T_fall -> b)
    blocks
  |> fun blocks -> (blocks, entries)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create p ~seed ~data_base ~code_base ~kernel_base =
  let rng = Rng.of_int seed in
  let cfg_rng = Rng.split rng in
  let blocks, func_entries = build_cfg p ~code_base ~rng:cfg_rng in
  let ws_bytes = p.Spec.working_set_kb * 1024 in
  let chase_lines = min (ws_bytes / 64) 32768 in
  let perm_rng = Rng.split rng in
  let chase_perm = Array.init chase_lines (fun i -> i) in
  (* Fisher-Yates for a single-cycle-free random permutation (Sattolo). *)
  for i = chase_lines - 1 downto 1 do
    let j = Rng.int perm_rng i in
    let tmp = chase_perm.(i) in
    chase_perm.(i) <- chase_perm.(j);
    chase_perm.(j) <- tmp
  done;
  {
    p;
    rng;
    blocks;
    func_entries;
    cur = 0;
    pos = 0;
    next_entry = 1;
    func_iters_left = 16;
    call_stack = [];
    loop_state = Hashtbl.create 64;
    data_base;
    ws_bytes;
    hot_bytes = min ws_bytes (p.Spec.hot_set_kb * 1024);
    stream_cursor = 0;
    chase_perm;
    chase_pos = 0;
    next_dst = 2;
    recent = [];
    kernel_base;
    emitted = 0;
    next_syscall = (if p.Spec.syscall_every > 0 then p.Spec.syscall_every else max_int);
    kernel_left = 0;
    kernel_pc = kernel_base;
    kernel_cursor = 0;
  }

let for_bench b ~data_base ~code_base ~kernel_base =
  create (Spec.params b) ~seed:(Spec.seed b) ~data_base ~code_base ~kernel_base

(* ------------------------------------------------------------------ *)
(* Operand and address sampling                                        *)
(* ------------------------------------------------------------------ *)

let fresh_dst t =
  let d = t.next_dst in
  t.next_dst <- (if t.next_dst >= 17 then 2 else t.next_dst + 1);
  t.recent <- d :: (if List.length t.recent >= 4 then List.filteri (fun i _ -> i < 3) t.recent else t.recent);
  d

let sample_srcs t =
  if Rng.bool t.rng ~p:t.p.Spec.dep_degree && t.recent <> [] then
    [ List.nth t.recent (Rng.int t.rng (List.length t.recent)) ]
  else [ 20 ]

let chase_reg = 18

type addr_class = A_stream | A_chase | A_hot | A_stack | A_cold

let stack_bytes = 4096

let sample_addr_class t =
  let p = t.p in
  let cold =
    Float.max 0.0
      (1.0 -. p.Spec.stream_frac -. p.Spec.chase_frac -. p.Spec.hot_frac
      -. p.Spec.stack_frac)
  in
  match
    Rng.choose t.rng
      [| p.Spec.stream_frac; p.Spec.chase_frac; p.Spec.hot_frac;
         p.Spec.stack_frac; cold |]
  with
  | 0 -> A_stream
  | 1 -> A_chase
  | 2 -> A_hot
  | 3 -> A_stack
  | _ -> A_cold

let sample_addr t cls =
  match cls with
  | A_stream ->
    (* Word-granular streaming: eight touches per cache line. *)
    t.stream_cursor <- (t.stream_cursor + 8) mod t.ws_bytes;
    t.data_base + t.stream_cursor
  | A_chase ->
    t.chase_pos <- t.chase_perm.(t.chase_pos);
    t.data_base + (t.chase_pos * 64)
  | A_hot ->
    (* Skewed reuse: a high power of the uniform sample concentrates most
       accesses in a Zipf-like head that fits the L1, with a tail that
       exercises the LLC. *)
    let u = Rng.float t.rng in
    let u4 = u *. u *. u *. u in
    let off = int_of_float (u4 *. u4 *. float_of_int t.hot_bytes) in
    t.data_base + (min off (t.hot_bytes - 8) land lnot 7)
  | A_stack ->
    (* A tiny, very hot region just above the working set. *)
    t.data_base + t.ws_bytes + (Rng.int t.rng stack_bytes land lnot 7)
  | A_cold -> t.data_base + (Rng.int t.rng t.ws_bytes land lnot 7)

(* ------------------------------------------------------------------ *)
(* Body µops                                                           *)
(* ------------------------------------------------------------------ *)

let body_uop t ~pc =
  let r = Rng.float t.rng in
  let p = t.p in
  if r < p.Spec.load_frac then begin
    let cls = sample_addr_class t in
    let addr = sample_addr t cls in
    match cls with
    | A_chase ->
      (* Dependent load: address comes from the previous chase load. *)
      { Uop.pc; kind = Uop.Load { addr }; dst = Some chase_reg;
        srcs = [ chase_reg ] }
    | A_stream | A_hot | A_stack | A_cold ->
      Uop.load ~pc ~addr ~dst:(fresh_dst t) ~srcs:(sample_srcs t) ()
  end
  else if r < p.Spec.load_frac +. p.Spec.store_frac then begin
    let cls = sample_addr_class t in
    let addr = sample_addr t cls in
    Uop.store ~pc ~addr ~srcs:(20 :: sample_srcs t) ()
  end
  else begin
    let x = Rng.float t.rng in
    if x < p.Spec.fp_frac then
      Uop.alu ~latency:4 ~pipe:Uop.Pipe_fp ~pc ~dst:(fresh_dst t)
        ~srcs:(sample_srcs t) ()
    else if x < p.Spec.fp_frac +. p.Spec.longlat_frac then
      Uop.alu ~latency:(if Rng.bool t.rng ~p:0.15 then 20 else 3)
        ~pipe:Uop.Pipe_fp ~pc ~dst:(fresh_dst t) ~srcs:(sample_srcs t) ()
    else Uop.alu ~pc ~dst:(fresh_dst t) ~srcs:(sample_srcs t) ()
  end

(* ------------------------------------------------------------------ *)
(* Kernel µops                                                         *)
(* ------------------------------------------------------------------ *)

let kernel_uop t =
  let pc = t.kernel_pc in
  t.kernel_pc <-
    (if t.kernel_pc >= t.kernel_base + 8192 then t.kernel_base
     else t.kernel_pc + 4);
  let r = Rng.float t.rng in
  if r < 0.22 then begin
    t.kernel_cursor <- (t.kernel_cursor + 64) mod 65536;
    (* Kernel data sits above the user working set in the same domain. *)
    Uop.load ~pc ~addr:(t.kernel_base + 65536 + t.kernel_cursor)
      ~dst:(fresh_dst t) ~srcs:[ 20 ] ()
  end
  else if r < 0.32 then
    Uop.store ~pc ~addr:(t.kernel_base + 65536 + (Rng.int t.rng 65536 land lnot 7))
      ~srcs:[ 20 ] ()
  else if r < 0.40 then
    Uop.branch ~pc ~taken:(Rng.bool t.rng ~p:0.85) ~target:(pc + 32) ~srcs:[] ()
  else Uop.alu ~pc ~dst:(fresh_dst t) ~srcs:[ 20 ] ()

(* ------------------------------------------------------------------ *)
(* Control-flow walk                                                   *)
(* ------------------------------------------------------------------ *)

let branch_outcome t block_idx profile =
  match profile with
  | Bias_taken -> Rng.bool t.rng ~p:0.97
  | Bias_not -> Rng.bool t.rng ~p:0.03
  | Random_dir -> Rng.bool t.rng ~p:0.5
  | Loop n ->
    let c = try Hashtbl.find t.loop_state block_idx with Not_found -> 0 in
    if c >= n - 1 then begin
      Hashtbl.replace t.loop_state block_idx 0;
      false
    end
    else begin
      Hashtbl.replace t.loop_state block_idx (c + 1);
      true
    end

let next_block t = (t.cur + 1) mod Array.length t.blocks

let terminator_uop t =
  let b = t.blocks.(t.cur) in
  let pc = b.b_pc + (4 * b.b_len) in
  match b.b_term with
  | T_fall ->
    t.cur <- next_block t;
    t.pos <- 0;
    Uop.alu ~pc ~dst:(fresh_dst t) ~srcs:(sample_srcs t) ()
  | T_jump target ->
    t.cur <- target;
    t.pos <- 0;
    Uop.jump ~pc ~target:t.blocks.(target).b_pc ~kind:`Plain ()
  | T_call callee ->
    if List.length t.call_stack >= 12 then begin
      (* Depth cap: real recursion terminates on data conditions the CFG
         does not carry; treat deep calls as inlined fallthrough. *)
      let nxt = next_block t in
      t.cur <- nxt;
      t.pos <- 0;
      Uop.jump ~pc ~target:t.blocks.(nxt).b_pc ~kind:`Plain ()
    end
    else begin
      t.call_stack <- next_block t :: t.call_stack;
      t.cur <- callee;
      t.pos <- 0;
      Uop.jump ~pc ~target:t.blocks.(callee).b_pc ~kind:`Call ()
    end
  | T_ret -> (
    match t.call_stack with
    | ret :: rest ->
      t.call_stack <- rest;
      t.cur <- ret;
      t.pos <- 0;
      Uop.jump ~pc ~target:t.blocks.(ret).b_pc ~kind:`Return ()
    | [] ->
      (* Each top-level function is a program phase: it re-executes many
         times (warming its branches and I-lines) before the driver moves
         on to the next function — the 90/10 locality of real code. *)
      let group = 16 in
      if t.func_iters_left > 0 then begin
        t.func_iters_left <- t.func_iters_left - 1;
        (* Iterate over a *group* of functions: the phase's hot code
           footprint spans several functions' branches and I-lines, so a
           purge has a realistic amount of state to re-warm. *)
        let base = (t.next_entry - 1) * group in
        let entry =
          t.func_entries.((base + (t.func_iters_left mod group))
                          mod Array.length t.func_entries)
        in
        t.cur <- entry;
        t.pos <- 0;
        Uop.jump ~pc ~target:t.blocks.(entry).b_pc ~kind:`Plain ()
      end
      else begin
        t.next_entry <- t.next_entry + 1;
        t.func_iters_left <- 150 + Rng.int t.rng 250;
        let entry =
          t.func_entries.(t.next_entry * group mod Array.length t.func_entries)
        in
        t.cur <- entry;
        t.pos <- 0;
        Uop.jump ~pc ~target:t.blocks.(entry).b_pc ~kind:`Plain ()
      end)
  | T_branch { profile; target } ->
    let taken = branch_outcome t t.cur profile in
    let target_pc = t.blocks.(target).b_pc in
    (* A data-dependent branch consumes a recent register. *)
    let srcs =
      match profile with Random_dir -> sample_srcs t | _ -> []
    in
    if taken then t.cur <- target else t.cur <- next_block t;
    t.pos <- 0;
    Uop.branch ~pc ~taken ~target:target_pc ~srcs ()

let next t =
  t.emitted <- t.emitted + 1;
  if t.kernel_left > 0 then begin
    t.kernel_left <- t.kernel_left - 1;
    if t.kernel_left = 0 then
      { Uop.pc = t.kernel_pc; kind = Uop.Exit_kernel; dst = None; srcs = [] }
    else kernel_uop t
  end
  else if t.emitted >= t.next_syscall then begin
    t.next_syscall <- t.emitted + t.p.Spec.syscall_every;
    t.kernel_left <- t.p.Spec.kernel_len + 1;
    { Uop.pc = t.kernel_base; kind = Uop.Enter_kernel; dst = None; srcs = [] }
  end
  else begin
    let b = t.blocks.(t.cur) in
    if t.pos < b.b_len then begin
      let pc = b.b_pc + (4 * t.pos) in
      t.pos <- t.pos + 1;
      body_uop t ~pc
    end
    else terminator_uop t
  end

let stream t ~limit =
  let left = ref limit in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      Some (next t)
    end
