(** Synthetic models of the SPEC CINT2006 benchmarks used in the paper's
    evaluation (all of CINT2006 except perlbench, Section 7).

    Real SPEC binaries and ref inputs are not available in this
    environment (see DESIGN.md); each benchmark is modeled by the
    first-order properties that drive the five evaluated overheads:
    branch-behaviour mix (predictability → FLUSH and baseline MPKI),
    memory footprint and locality (→ PART and MISS), memory-level
    parallelism and latency sensitivity (→ MISS and ARB), instruction-level
    parallelism (→ NONSPEC), and trap rate (→ FLUSH stall; xalancbmk's
    frequent output syscalls give it the paper's largest stall share).

    Working sets are scaled to the simulated 1 MB LLC in the same
    proportion the ref inputs stand to a real LLC; the shapes, not the
    absolute sizes, carry the evaluation. *)

type bench =
  | Bzip2
  | Gcc
  | Mcf
  | Gobmk
  | Hmmer
  | Sjeng
  | Libquantum
  | H264ref
  | Omnetpp
  | Astar
  | Xalancbmk

val all : bench list
val name : bench -> string
val of_name : string -> bench option

type params = {
  (* Control flow *)
  branch_frac : float;  (** conditional branches per instruction *)
  biased_frac : float;  (** branches that are strongly biased *)
  patterned_frac : float;  (** short-period loop branches *)
  call_frac : float;  (** call/return pairs per instruction *)
  (* Memory *)
  load_frac : float;
  store_frac : float;
  working_set_kb : int;
  hot_set_kb : int;
  stream_frac : float;  (** sequential-stride accesses *)
  chase_frac : float;  (** dependent pointer-chase loads *)
  hot_frac : float;  (** accesses landing in the (skewed) hot subset *)
  stack_frac : float;  (** accesses landing in a 4 KB stack-like region *)
  (* Code *)
  code_kb : int;
  (* ILP *)
  dep_degree : float;  (** chance a µop depends on a recent producer *)
  fp_frac : float;
  longlat_frac : float;  (** multiply/divide-class ops *)
  (* OS interaction (instruction counts) *)
  syscall_every : int;
  kernel_len : int;
}

val params : bench -> params

(** Deterministic per-benchmark seed for workload generation. *)
val seed : bench -> int
