(** Synthetic µop-stream generator realizing a {!Spec.params} benchmark
    model.

    The generator builds a static control-flow graph (functions made of
    basic blocks with per-pc branch profiles: biased, loop-patterned, or
    data-dependent random) and walks it, emitting µops whose addresses
    follow the model's locality mix over a contiguous physical working set
    (streaming cursor, hot subset, uniform cold accesses, and a dependent
    pointer-chase permutation).  System calls and their kernel execution
    appear as [Enter_kernel] / kernel µops / [Exit_kernel] at the model's
    syscall rate.

    Deterministic: the same seed yields the same stream. *)

type t

val create :
  Spec.params ->
  seed:int ->
  data_base:int ->
  code_base:int ->
  kernel_base:int ->
  t

(** [next t] is the next µop of the (infinite) stream. *)
val next : t -> Uop.t

(** [stream t ~limit] emits exactly [limit] µops then [None]. *)
val stream : t -> limit:int -> unit -> Uop.t option

(** [for_bench b ~data_base ~code_base ~kernel_base] — generator for a
    named SPEC model with its canonical seed. *)
val for_bench :
  Spec.bench -> data_base:int -> code_base:int -> kernel_base:int -> t
