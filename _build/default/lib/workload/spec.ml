type bench =
  | Bzip2
  | Gcc
  | Mcf
  | Gobmk
  | Hmmer
  | Sjeng
  | Libquantum
  | H264ref
  | Omnetpp
  | Astar
  | Xalancbmk

let all =
  [ Bzip2; Gcc; Mcf; Gobmk; Hmmer; Sjeng; Libquantum; H264ref; Omnetpp;
    Astar; Xalancbmk ]

let name = function
  | Bzip2 -> "bzip2"
  | Gcc -> "gcc"
  | Mcf -> "mcf"
  | Gobmk -> "gobmk"
  | Hmmer -> "hmmer"
  | Sjeng -> "sjeng"
  | Libquantum -> "libquantum"
  | H264ref -> "h264ref"
  | Omnetpp -> "omnetpp"
  | Astar -> "astar"
  | Xalancbmk -> "xalancbmk"

let of_name s = List.find_opt (fun b -> name b = s) all

type params = {
  branch_frac : float;
  biased_frac : float;
  patterned_frac : float;
  call_frac : float;
  load_frac : float;
  store_frac : float;
  working_set_kb : int;
  hot_set_kb : int;
  stream_frac : float;
  chase_frac : float;
  hot_frac : float;
  stack_frac : float;
  code_kb : int;
  dep_degree : float;
  fp_frac : float;
  longlat_frac : float;
  syscall_every : int;
  kernel_len : int;
}

(* Per-benchmark first-order characters (see .mli): compression is
   branchy-streaming; gcc keeps a near-LLC-sized hot set in a
   page-sequential footprint (the PART victim); mcf is a giant pointer
   chaser; game searches (gobmk, sjeng) have hard branches and big code
   footprints; hmmer and h264ref are high-ILP loop nests (the NONSPEC
   victims); libquantum streams a large array with light branching
   (latency-bound: the ARB victim); omnetpp chases heap objects; astar
   mixes the hardest data-dependent branches with pointer chasing (the
   FLUSH and MISS victim); xalancbmk makes frequent output system calls
   (the Figure 6 stall victim).

   The locality fractions (stream/chase/hot/stack and the implicit cold
   remainder) are calibrated so the BASE machine lands near the paper's
   reported averages: ~18 branch mispredicts and ~17 LLC misses per
   kilo-instruction (Figures 7 and 9). *)
let params = function
  | Bzip2 ->
    {
      branch_frac = 0.14; biased_frac = 0.62; patterned_frac = 0.30;
      call_frac = 0.005; load_frac = 0.25; store_frac = 0.10;
      working_set_kb = 1536; hot_set_kb = 192; stream_frac = 0.50;
      chase_frac = 0.02; hot_frac = 0.18; stack_frac = 0.30; code_kb = 48;
      dep_degree = 0.40; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 70_000; kernel_len = 320;
    }
  | Gcc ->
    {
      branch_frac = 0.19; biased_frac = 0.58; patterned_frac = 0.30;
      call_frac = 0.015; load_frac = 0.26; store_frac = 0.13;
      working_set_kb = 5120; hot_set_kb = 640; stream_frac = 0.18;
      chase_frac = 0.05; hot_frac = 0.45; stack_frac = 0.30; code_kb = 256;
      dep_degree = 0.45; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 40_000; kernel_len = 420;
    }
  | Mcf ->
    {
      branch_frac = 0.17; biased_frac = 0.64; patterned_frac = 0.30;
      call_frac = 0.006; load_frac = 0.34; store_frac = 0.09;
      working_set_kb = 24576; hot_set_kb = 192; stream_frac = 0.05;
      chase_frac = 0.09; hot_frac = 0.50; stack_frac = 0.30; code_kb = 24;
      dep_degree = 0.55; fp_frac = 0.0; longlat_frac = 0.01;
      syscall_every = 110_000; kernel_len = 300;
    }
  | Gobmk ->
    {
      branch_frac = 0.20; biased_frac = 0.56; patterned_frac = 0.30;
      call_frac = 0.02; load_frac = 0.27; store_frac = 0.14;
      working_set_kb = 1024; hot_set_kb = 256; stream_frac = 0.18;
      chase_frac = 0.04; hot_frac = 0.43; stack_frac = 0.35; code_kb = 192;
      dep_degree = 0.48; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 50_000; kernel_len = 320;
    }
  | Hmmer ->
    {
      branch_frac = 0.09; biased_frac = 0.60; patterned_frac = 0.30;
      call_frac = 0.003; load_frac = 0.31; store_frac = 0.15;
      working_set_kb = 192; hot_set_kb = 96; stream_frac = 0.45;
      chase_frac = 0.0; hot_frac = 0.20; stack_frac = 0.35; code_kb = 32;
      dep_degree = 0.28; fp_frac = 0.06; longlat_frac = 0.04;
      syscall_every = 185_000; kernel_len = 300;
    }
  | Sjeng ->
    {
      branch_frac = 0.19; biased_frac = 0.55; patterned_frac = 0.30;
      call_frac = 0.018; load_frac = 0.24; store_frac = 0.10;
      working_set_kb = 2048; hot_set_kb = 220; stream_frac = 0.10;
      chase_frac = 0.06; hot_frac = 0.49; stack_frac = 0.35; code_kb = 96;
      dep_degree = 0.50; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 60_000; kernel_len = 300;
    }
  | Libquantum ->
    {
      branch_frac = 0.16; biased_frac = 0.72; patterned_frac = 0.30;
      call_frac = 0.002; load_frac = 0.31; store_frac = 0.11;
      working_set_kb = 12288; hot_set_kb = 64; stream_frac = 0.92;
      chase_frac = 0.0; hot_frac = 0.04; stack_frac = 0.04; code_kb = 12;
      dep_degree = 0.32; fp_frac = 0.04; longlat_frac = 0.03;
      syscall_every = 60_000; kernel_len = 300;
    }
  | H264ref ->
    {
      branch_frac = 0.09; biased_frac = 0.55; patterned_frac = 0.30;
      call_frac = 0.01; load_frac = 0.34; store_frac = 0.16;
      working_set_kb = 224; hot_set_kb = 128; stream_frac = 0.50;
      chase_frac = 0.02; hot_frac = 0.13; stack_frac = 0.35; code_kb = 128;
      dep_degree = 0.12; fp_frac = 0.10; longlat_frac = 0.05;
      syscall_every = 45_000; kernel_len = 380;
    }
  | Omnetpp ->
    {
      branch_frac = 0.18; biased_frac = 0.58; patterned_frac = 0.30;
      call_frac = 0.02; load_frac = 0.30; store_frac = 0.16;
      working_set_kb = 6144; hot_set_kb = 256; stream_frac = 0.08;
      chase_frac = 0.07; hot_frac = 0.52; stack_frac = 0.30; code_kb = 128;
      dep_degree = 0.50; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 50_000; kernel_len = 380;
    }
  | Astar ->
    {
      branch_frac = 0.19; biased_frac = 0.30; patterned_frac = 0.52;
      call_frac = 0.008; load_frac = 0.31; store_frac = 0.08;
      working_set_kb = 4096; hot_set_kb = 192; stream_frac = 0.08;
      chase_frac = 0.09; hot_frac = 0.54; stack_frac = 0.25; code_kb = 40;
      dep_degree = 0.55; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 10_000; kernel_len = 300;
    }
  | Xalancbmk ->
    {
      branch_frac = 0.21; biased_frac = 0.58; patterned_frac = 0.30;
      call_frac = 0.025; load_frac = 0.29; store_frac = 0.14;
      working_set_kb = 4096; hot_set_kb = 320; stream_frac = 0.14;
      chase_frac = 0.06; hot_frac = 0.49; stack_frac = 0.30; code_kb = 256;
      dep_degree = 0.48; fp_frac = 0.0; longlat_frac = 0.02;
      syscall_every = 15_000; kernel_len = 500;
    }

let seed b =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if x = b then i else index (i + 1) rest
  in
  0x5EED + (1337 * index 0 all)
