let chunk_bits = 16
let chunk_bytes = 1 lsl chunk_bits (* 64 KB *)

type t = {
  size_bytes : int;
  chunks : (int, Bytes.t) Hashtbl.t;
}

let create ~size_bytes =
  if size_bytes <= 0 then invalid_arg "Phys_mem.create";
  { size_bytes; chunks = Hashtbl.create 256 }

let size_bytes m = m.size_bytes

let check m addr width =
  if addr < 0 || addr + width > m.size_bytes then begin
    let shown =
      if addr < 0 then string_of_int addr else Printf.sprintf "0x%x" addr
    in
    invalid_arg
      (Printf.sprintf "Phys_mem: access %s width %d out of bounds" shown width)
  end

let chunk m idx =
  match Hashtbl.find_opt m.chunks idx with
  | Some c -> c
  | None ->
    let c = Bytes.make chunk_bytes '\x00' in
    Hashtbl.add m.chunks idx c;
    c

let read_u8 m addr =
  check m addr 1;
  match Hashtbl.find_opt m.chunks (addr lsr chunk_bits) with
  | None -> 0
  | Some c -> Char.code (Bytes.get c (addr land (chunk_bytes - 1)))

let write_u8 m addr v =
  check m addr 1;
  let c = chunk m (addr lsr chunk_bits) in
  Bytes.set c (addr land (chunk_bytes - 1)) (Char.chr (v land 0xFF))

let read_u16 m addr =
  check m addr 2;
  read_u8 m addr lor (read_u8 m (addr + 1) lsl 8)

let write_u16 m addr v =
  check m addr 2;
  write_u8 m addr v;
  write_u8 m (addr + 1) (v lsr 8)

let read_u32 m addr =
  check m addr 4;
  read_u16 m addr lor (read_u16 m (addr + 2) lsl 16)

let write_u32 m addr v =
  check m addr 4;
  write_u16 m addr v;
  write_u16 m (addr + 2) (v lsr 16)

let read_u64 m addr =
  check m addr 8;
  let lo = Int64.of_int (read_u32 m addr) in
  let hi = Int64.of_int (read_u32 m (addr + 4)) in
  Int64.logor lo (Int64.shift_left hi 32)

let write_u64 m addr v =
  check m addr 8;
  write_u32 m addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  write_u32 m (addr + 4)
    (Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL))

let load_string m addr s =
  check m addr (String.length s);
  String.iteri (fun i ch -> write_u8 m (addr + i) (Char.code ch)) s

let read_string m addr len =
  check m addr len;
  String.init len (fun i -> Char.chr (read_u8 m (addr + i)))

let zero_range m addr len =
  check m addr len;
  (* Fill whole backing chunks at once; monitor scrubs span megabytes. *)
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    let idx = !pos lsr chunk_bits in
    let off = !pos land (chunk_bytes - 1) in
    let take = min (chunk_bytes - off) !remaining in
    (match Hashtbl.find_opt m.chunks idx with
    | Some c -> Bytes.fill c off take '\x00'
    | None -> () (* untouched chunks already read as zero *));
    pos := !pos + take;
    remaining := !remaining - take
  done
