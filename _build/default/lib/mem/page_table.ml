type perm = { r : bool; w : bool; x : bool; u : bool }

type leaf = {
  paddr : int;
  page_base : int;
  level : int;
  perm : perm;
  accessed : bool;
  dirty : bool;
}

type step = { step_level : int; pte_addr : int; pte : int64 }

type fault_kind = Invalid_pte | Misaligned_superpage | Non_canonical

type result =
  | Translated of leaf * step list
  | Fault of fault_kind * step list

let bit b v = Int64.logand (Int64.shift_right_logical v b) 1L = 1L

let pte_valid = bit 0
let pte_r = bit 1
let pte_w = bit 2
let pte_x = bit 3
let pte_u = bit 4
let pte_a = bit 6
let pte_d = bit 7
let pte_ppn v = Int64.to_int (Int64.logand (Int64.shift_right_logical v 10) 0xFFFFFFFFFFFL)
let pte_is_leaf v = pte_r v || pte_x v

let vpn vaddr level =
  Int64.to_int
    (Int64.logand (Int64.shift_right_logical vaddr (12 + (9 * level))) 0x1FFL)

let page_offset vaddr = Int64.to_int (Int64.logand vaddr 0xFFFL)

let canonical vaddr =
  (* Bits 63..39 must equal bit 38. *)
  let top = Int64.shift_right vaddr 38 in
  top = 0L || top = -1L

let walk mem ~root ~vaddr =
  if not (canonical vaddr) then Fault (Non_canonical, [])
  else begin
    let rec go level table_base steps =
      let pte_addr = table_base + (8 * vpn vaddr level) in
      let pte = Phys_mem.read_u64 mem pte_addr in
      let steps = { step_level = level; pte_addr; pte } :: steps in
      if (not (pte_valid pte)) || (pte_w pte && not (pte_r pte)) then
        Fault (Invalid_pte, List.rev steps)
      else if pte_is_leaf pte then begin
        let ppn = pte_ppn pte in
        (* Superpage PPN low bits must be zero. *)
        let align_mask = (1 lsl (9 * level)) - 1 in
        if ppn land align_mask <> 0 then
          Fault (Misaligned_superpage, List.rev steps)
        else begin
          let page_base = ppn * 4096 in
          let offset =
            page_offset vaddr
            + (4096
              * (Int64.to_int (Int64.shift_right_logical vaddr 12)
                land align_mask))
          in
          Translated
            ( {
                paddr = page_base + offset;
                page_base;
                level;
                perm =
                  { r = pte_r pte; w = pte_w pte; x = pte_x pte; u = pte_u pte };
                accessed = pte_a pte;
                dirty = pte_d pte;
              },
              List.rev steps )
        end
      end
      else if level = 0 then Fault (Invalid_pte, List.rev steps)
      else go (level - 1) (pte_ppn pte * 4096) steps
    in
    go 2 root []
  end

let pte_make ~ppn ~perm ~valid =
  let b cond n = if cond then Int64.shift_left 1L n else 0L in
  List.fold_left Int64.logor
    (Int64.shift_left (Int64.of_int ppn) 10)
    [
      b valid 0; b perm.r 1; b perm.w 2; b perm.x 3; b perm.u 4;
      (* A and D preset so the walker never needs write-back. *)
      b true 6; b true 7;
    ]

let pte_table ~ppn =
  Int64.logor (Int64.shift_left (Int64.of_int ppn) 10) 1L

let map_page mem ~alloc ~root ~vaddr ~paddr ~perm =
  if paddr land 0xFFF <> 0 then invalid_arg "Page_table.map_page: unaligned paddr";
  let rec go level table_base =
    let pte_addr = table_base + (8 * vpn vaddr level) in
    if level = 0 then
      Phys_mem.write_u64 mem pte_addr
        (pte_make ~ppn:(paddr / 4096) ~perm ~valid:true)
    else begin
      let pte = Phys_mem.read_u64 mem pte_addr in
      if pte_valid pte && pte_is_leaf pte then
        failwith "Page_table.map_page: superpage already mapped here"
      else begin
        let next =
          if pte_valid pte then pte_ppn pte * 4096
          else begin
            let page = alloc () in
            Phys_mem.write_u64 mem pte_addr (pte_table ~ppn:(page / 4096));
            page
          end
        in
        go (level - 1) next
      end
    end
  in
  go 2 root

let identity_map mem ~alloc ~root ~lo ~hi ~perm =
  if lo land 0xFFF <> 0 || hi land 0xFFF <> 0 then
    invalid_arg "Page_table.identity_map: unaligned range";
  let page = ref lo in
  while !page < hi do
    map_page mem ~alloc ~root ~vaddr:(Int64.of_int !page) ~paddr:!page ~perm;
    page := !page + 4096
  done

let perm_rw = { r = true; w = true; x = false; u = false }
let perm_rx = { r = true; w = false; x = true; u = false }
let perm_rwx = { r = true; w = true; x = true; u = false }
let perm_user p = { p with u = true }
