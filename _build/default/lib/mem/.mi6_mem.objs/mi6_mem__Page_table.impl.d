lib/mem/page_table.ml: Int64 List Phys_mem
