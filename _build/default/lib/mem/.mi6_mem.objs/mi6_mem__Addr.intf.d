lib/mem/addr.mli:
