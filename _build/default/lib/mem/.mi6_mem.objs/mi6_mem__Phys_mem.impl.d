lib/mem/phys_mem.ml: Bytes Char Hashtbl Int64 Printf String
