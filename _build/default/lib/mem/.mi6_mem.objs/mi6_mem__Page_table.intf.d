lib/mem/page_table.mli: Phys_mem
