lib/mem/addr.ml: Printf
