let line_bytes = 64
let page_bytes = 4096

let line_of pa = pa / line_bytes
let line_addr pa = pa land lnot (line_bytes - 1)
let page_of pa = pa / page_bytes
let page_addr pa = pa land lnot (page_bytes - 1)
let offset_in_line pa = pa land (line_bytes - 1)

type regions = {
  dram_bytes : int;
  region_count : int;
  region_bytes : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make_regions ~dram_bytes ~region_count =
  if not (is_pow2 dram_bytes) then
    invalid_arg "Addr.make_regions: dram_bytes must be a power of two";
  if not (is_pow2 region_count) then
    invalid_arg "Addr.make_regions: region_count must be a power of two";
  let region_bytes = dram_bytes / region_count in
  if region_bytes < page_bytes then
    invalid_arg "Addr.make_regions: regions smaller than a page";
  { dram_bytes; region_count; region_bytes }

let in_dram g pa = pa >= 0 && pa < g.dram_bytes

let region_of g pa =
  if not (in_dram g pa) then
    invalid_arg (Printf.sprintf "Addr.region_of: 0x%x outside DRAM" pa);
  pa / g.region_bytes

let region_base g r =
  if r < 0 || r >= g.region_count then invalid_arg "Addr.region_base";
  r * g.region_bytes

let default_regions =
  make_regions ~dram_bytes:(2 * 1024 * 1024 * 1024) ~region_count:64
