(** Address geometry: cache lines, pages, and MI6 DRAM regions.

    Physical addresses are non-negative OCaml ints (the machine has 2 GB of
    DRAM, well within 63 bits).  Virtual addresses are 64-bit and carried as
    [int64] where sign matters (Sv39 requires bits 63..39 to equal bit 38).

    MI6 divides DRAM into equally sized, contiguous, naturally aligned
    {e DRAM regions} (paper Section 5.2); the region ID is the top bits of
    the physical address and doubles as the high bits of the partitioned LLC
    index. *)

val line_bytes : int
(** 64-byte cache lines throughout. *)

val page_bytes : int
(** 4 KB pages. *)

val line_of : int -> int
(** [line_of pa] is the cache-line index (pa / 64). *)

val line_addr : int -> int
(** [line_addr pa] clears the offset bits. *)

val page_of : int -> int
val page_addr : int -> int
val offset_in_line : int -> int

(** DRAM-region geometry. *)
type regions = private {
  dram_bytes : int;  (** total DRAM size; must be a power of two *)
  region_count : int;  (** number of regions; must be a power of two *)
  region_bytes : int;
}

(** [make_regions ~dram_bytes ~region_count] checks the power-of-two and
    alignment constraints (every 4 KB page must fall in one region). *)
val make_regions : dram_bytes:int -> region_count:int -> regions

(** [region_of g pa] is the DRAM-region ID of a physical address.  Raises
    [Invalid_argument] if [pa] is outside DRAM. *)
val region_of : regions -> int -> int

(** [region_base g r] is the first physical address of region [r]. *)
val region_base : regions -> int -> int

(** [in_dram g pa] bounds-checks a physical address. *)
val in_dram : regions -> int -> bool

(** The paper's configuration: 2 GB DRAM, 64 regions of 32 MB. *)
val default_regions : regions
