(** Sparse physical memory.

    Backing store is allocated in 64 KB chunks on first touch, so a 2 GB
    address space costs only what the program actually uses.  All accesses
    are little-endian, matching RISC-V. *)

type t

(** [create ~size_bytes] is zero-initialized memory of the given size. *)
val create : size_bytes:int -> t

val size_bytes : t -> int

(** Byte / halfword / word / doubleword accessors.  All raise
    [Invalid_argument] on out-of-bounds addresses; wider accesses are not
    required to be aligned (the functional simulator checks alignment at a
    higher level where the ISA demands it). *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit

(** [load_string m addr s] copies [s] into memory at [addr]. *)
val load_string : t -> int -> string -> unit

(** [read_string m addr len] copies [len] bytes out. *)
val read_string : t -> int -> int -> string

(** [zero_range m addr len] clears a range (monitor scrubbing of DRAM
    regions before reallocation). *)
val zero_range : t -> int -> int -> unit
