(** Sv39-style three-level page tables: walker and builder.

    The walker reports every page-table entry it touches so callers can
    (a) validate that page walks stay inside the protection domain's DRAM
    regions — MI6 checks {e all} physical accesses including walks
    (Section 5.3) — and (b) model the translation cache, which caches
    intermediate walk steps (Figure 4). *)

type perm = { r : bool; w : bool; x : bool; u : bool }

type leaf = {
  paddr : int;  (** translated physical address *)
  page_base : int;  (** physical base of the (super)page *)
  level : int;  (** 0 = 4 KB page, 1 = 2 MB, 2 = 1 GB *)
  perm : perm;
  accessed : bool;
  dirty : bool;
}

type step = {
  step_level : int;  (** 2 for the root table, then 1, then 0 *)
  pte_addr : int;  (** physical address of the PTE read *)
  pte : int64;
}

type fault_kind =
  | Invalid_pte  (** V bit clear, or W without R *)
  | Misaligned_superpage
  | Non_canonical  (** bits 63..39 of the VA disagree with bit 38 *)

type result =
  | Translated of leaf * step list
  | Fault of fault_kind * step list

(** [walk mem ~root ~vaddr] walks the tables rooted at physical address
    [root] (page-aligned).  Steps are returned in walk order. *)
val walk : Phys_mem.t -> root:int -> vaddr:int64 -> result

(** [pte_make ~ppn ~perm ~valid] builds a leaf PTE; [pte_table ~ppn] builds
    a non-leaf pointer PTE. *)
val pte_make : ppn:int -> perm:perm -> valid:bool -> int64

val pte_table : ppn:int -> int64

(** [map_page mem ~alloc ~root ~vaddr ~paddr ~perm] installs a 4 KB mapping,
    creating intermediate tables with [alloc] (which must return the
    physical address of a fresh zeroed page).  Raises [Failure] when the
    slot already holds a conflicting superpage. *)
val map_page :
  Phys_mem.t ->
  alloc:(unit -> int) ->
  root:int ->
  vaddr:int64 ->
  paddr:int ->
  perm:perm ->
  unit

(** [identity_map mem ~alloc ~root ~lo ~hi ~perm] maps [lo, hi) onto itself
    with 4 KB pages (used by the monitor when software turns translation
    off). *)
val identity_map :
  Phys_mem.t ->
  alloc:(unit -> int) ->
  root:int ->
  lo:int ->
  hi:int ->
  perm:perm ->
  unit

val perm_rw : perm
val perm_rx : perm
val perm_rwx : perm

(** [perm_user p] is [p] with the U bit set. *)
val perm_user : perm -> perm
