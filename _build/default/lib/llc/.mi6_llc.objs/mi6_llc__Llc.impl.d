lib/llc/llc.ml: Addr Array Bitvec Controller Fifo Index Link List Msg Msi Replacement Sram Stats
