lib/llc/hierarchy.mli: Fr_fcfs L1 Llc Stats
