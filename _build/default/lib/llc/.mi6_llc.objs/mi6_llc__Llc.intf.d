lib/llc/llc.mli: Addr Controller Index Link Stats
