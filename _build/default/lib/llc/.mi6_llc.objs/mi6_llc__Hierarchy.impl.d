lib/llc/hierarchy.ml: Array Controller Fr_fcfs L1 Link List Llc Printf
