lib/tlb/trans_cache.ml: Array Tlb
