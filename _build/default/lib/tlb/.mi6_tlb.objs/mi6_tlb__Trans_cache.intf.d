lib/tlb/trans_cache.mli:
