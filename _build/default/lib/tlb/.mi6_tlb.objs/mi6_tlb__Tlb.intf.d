lib/tlb/tlb.mli:
