lib/tlb/tlb.ml: Replacement Sram
