lib/tlb/ptw.ml: Array Trans_cache
