lib/tlb/ptw.mli: Trans_cache
