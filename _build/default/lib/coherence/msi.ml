type t = I | S | M

let rank = function I -> 0 | S -> 1 | M -> 2
let leq a b = rank a <= rank b
let lt a b = rank a < rank b

let compatible held requested =
  match (held, requested) with
  | I, _ | _, I -> true
  | S, S -> true
  | M, _ | _, M -> false

let needed_for ~store = if store then M else S

let to_string = function I -> "I" | S -> "S" | M -> "M"
let pp ppf s = Format.pp_print_string ppf (to_string s)
