(** Coherence messages exchanged between an L1 (child) and the LLC
    (parent), matching the link structure of Figure 1: three independent
    FIFOs carrying (1) upgrade requests from the L1, (2) downgrade
    responses from the L1, and (3) upgrade responses and downgrade requests
    from the LLC. *)

(** Child-to-parent upgrade request: acquire [to_s] for [line]. *)
type child_req = { line : int; from_s : Msi.t; to_s : Msi.t }

(** Child-to-parent downgrade response: the child dropped [line] to
    [to_s]; [dirty] means the message carries writeback data. *)
type child_resp = { line : int; to_s : Msi.t; dirty : bool }

(** Parent-to-child messages share one FIFO. *)
type parent_msg =
  | Upgrade_resp of { line : int; to_s : Msi.t }
  | Downgrade_req of { line : int; to_s : Msi.t }

val pp_child_req : Format.formatter -> child_req -> unit
val pp_child_resp : Format.formatter -> child_resp -> unit
val pp_parent_msg : Format.formatter -> parent_msg -> unit
