type t = {
  rq : Msg.child_req Fifo.t;
  rs : Msg.child_resp Fifo.t;
  p2c : Msg.parent_msg Fifo.t;
}

let create ~depth =
  {
    rq = Fifo.create ~capacity:depth;
    rs = Fifo.create ~capacity:depth;
    p2c = Fifo.create ~capacity:depth;
  }

let clear t =
  Fifo.clear t.rq;
  Fifo.clear t.rs;
  Fifo.clear t.p2c
