(** The dedicated core-to-LLC link of Figure 1: three independent bounded
    FIFOs.  Upgrade requests and downgrade responses never block each other
    (required for deadlock freedom), and parent-to-child traffic has its
    own channel. *)

type t = {
  rq : Msg.child_req Fifo.t;  (** child -> parent upgrade requests *)
  rs : Msg.child_resp Fifo.t;  (** child -> parent downgrade responses *)
  p2c : Msg.parent_msg Fifo.t;  (** parent -> child *)
}

(** [create ~depth] makes a link whose three FIFOs each hold [depth]
    messages. *)
val create : depth:int -> t

(** [clear t] empties all three FIFOs (used only by whole-machine reset,
    never by purge: in-flight coherence traffic must drain naturally). *)
val clear : t -> unit
