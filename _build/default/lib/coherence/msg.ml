type child_req = { line : int; from_s : Msi.t; to_s : Msi.t }
type child_resp = { line : int; to_s : Msi.t; dirty : bool }

type parent_msg =
  | Upgrade_resp of { line : int; to_s : Msi.t }
  | Downgrade_req of { line : int; to_s : Msi.t }

let pp_child_req ppf { line; from_s; to_s } =
  Format.fprintf ppf "CRq{line=%#x %a->%a}" line Msi.pp from_s Msi.pp to_s

let pp_child_resp ppf { line; to_s; dirty } =
  Format.fprintf ppf "CRs{line=%#x ->%a%s}" line Msi.pp to_s
    (if dirty then " +data" else "")

let pp_parent_msg ppf = function
  | Upgrade_resp { line; to_s } ->
    Format.fprintf ppf "PRs{line=%#x ->%a}" line Msi.pp to_s
  | Downgrade_req { line; to_s } ->
    Format.fprintf ppf "PRq{line=%#x ->%a}" line Msi.pp to_s
