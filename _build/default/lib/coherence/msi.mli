(** MSI coherence states, ordered I < S < M.

    RiscyOO's LLC keeps the L1s coherent with an MSI directory protocol
    (paper Section 5.4.1, citing the CCP protocol of Vijayaraghavan et
    al.). *)

type t = I | S | M

val leq : t -> t -> bool
val lt : t -> t -> bool

(** [compatible held requested] holds when another child may hold [held]
    while one child acquires [requested] (M is exclusive). *)
val compatible : t -> t -> bool

(** [needed_for ~store] is the minimum state for an access: S for loads,
    M for stores. *)
val needed_for : store:bool -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
