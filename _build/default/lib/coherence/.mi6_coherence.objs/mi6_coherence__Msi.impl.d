lib/coherence/msi.ml: Format
