lib/coherence/link.ml: Fifo Msg
