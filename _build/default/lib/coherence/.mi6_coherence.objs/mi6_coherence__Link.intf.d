lib/coherence/link.mli: Fifo Msg
