lib/coherence/msg.ml: Format Msi
