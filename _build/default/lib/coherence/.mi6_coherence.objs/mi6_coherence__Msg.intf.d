lib/coherence/msg.mli: Format Msi
