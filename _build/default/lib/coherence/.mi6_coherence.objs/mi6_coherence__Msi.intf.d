lib/coherence/msi.mli: Format
