open Instr

let mask32 = 0xFFFFFFFF

let check_range name v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Encode: %s immediate %d out of range" name v)

let check_aligned name v =
  if v land 1 <> 0 then
    invalid_arg (Printf.sprintf "Encode: %s offset %d is odd" name v)

(* Field extractors for decoding. *)
let bits w hi lo = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let sign_extend v width = (v lxor (1 lsl (width - 1))) - (1 lsl (width - 1))

let opcode_lui = 0x37
let opcode_auipc = 0x17
let opcode_jal = 0x6F
let opcode_jalr = 0x67
let opcode_branch = 0x63
let opcode_load = 0x03
let opcode_store = 0x23
let opcode_op_imm = 0x13
let opcode_op_imm32 = 0x1B
let opcode_op = 0x33
let opcode_op32 = 0x3B
let opcode_system = 0x73
let opcode_misc_mem = 0x0F
let opcode_custom0 = 0x0B (* purge *)
let opcode_amo = 0x2F

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check_range "I-type" imm (-2048) 2047;
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check_range "S-type" imm (-2048) 2047;
  let imm = imm land 0xFFF in
  (bits imm 11 5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (bits imm 4 0 lsl 7) lor opcode

let b_type ~offset ~rs2 ~rs1 ~funct3 ~opcode =
  check_aligned "branch" offset;
  check_range "B-type" offset (-4096) 4094;
  let imm = offset land 0x1FFF in
  (bits imm 12 12 lsl 31) lor (bits imm 10 5 lsl 25) lor (rs2 lsl 20)
  lor (rs1 lsl 15) lor (funct3 lsl 12) lor (bits imm 4 1 lsl 8)
  lor (bits imm 11 11 lsl 7) lor opcode

let u_type ~imm ~rd ~opcode =
  if imm land 0xFFF <> 0 then
    invalid_arg "Encode: U-type immediate has low bits set";
  check_range "U-type" (imm asr 12) (-524288) 524287;
  ((imm asr 12) land 0xFFFFF) lsl 12 lor (rd lsl 7) lor opcode

let j_type ~offset ~rd ~opcode =
  check_aligned "jal" offset;
  check_range "J-type" offset (-1048576) 1048574;
  let imm = offset land 0x1FFFFF in
  (bits imm 20 20 lsl 31) lor (bits imm 10 1 lsl 21) lor (bits imm 11 11 lsl 20)
  lor (bits imm 19 12 lsl 12) lor (rd lsl 7) lor opcode

let branch_funct3 = function
  | Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7

let load_funct3 = function
  | Lb -> 0 | Lh -> 1 | Lw -> 2 | Ld -> 3 | Lbu -> 4 | Lhu -> 5 | Lwu -> 6

let store_funct3 = function Sb -> 0 | Sh -> 1 | Sw -> 2 | Sd -> 3

let alu_funct3 = function
  | Add | Sub -> 0 | Sll -> 1 | Slt -> 2 | Sltu -> 3 | Xor -> 4
  | Srl | Sra -> 5 | Or -> 6 | And -> 7

let mul_funct3 = function
  | Mul -> 0 | Mulh -> 1 | Mulhsu -> 2 | Mulhu -> 3 | Div -> 4 | Divu -> 5
  | Rem -> 6 | Remu -> 7

let mul_w_funct3 = function
  | Mulw -> 0 | Divw -> 4 | Divuw -> 5 | Remw -> 6 | Remuw -> 7

(* AMO funct5 field (bits 31:27); aq/rl bits are encoded as zero. *)
let amo_funct5 = function
  | Amoadd -> 0x00
  | Amoswap -> 0x01
  | Amoxor -> 0x04
  | Amoand -> 0x0C
  | Amoor -> 0x08
  | Amomin -> 0x10
  | Amomax -> 0x14
  | Amominu -> 0x18
  | Amomaxu -> 0x1C

let amo_funct5_rev = function
  | 0x00 -> Some Amoadd
  | 0x01 -> Some Amoswap
  | 0x04 -> Some Amoxor
  | 0x0C -> Some Amoand
  | 0x08 -> Some Amoor
  | 0x10 -> Some Amomin
  | 0x14 -> Some Amomax
  | 0x18 -> Some Amominu
  | 0x1C -> Some Amomaxu
  | _ -> None

let amo_width_funct3 = function W -> 2 | D -> 3

let encode instr =
  let w =
    match instr with
    | Lui { rd; imm } -> u_type ~imm ~rd ~opcode:opcode_lui
    | Auipc { rd; imm } -> u_type ~imm ~rd ~opcode:opcode_auipc
    | Jal { rd; offset } -> j_type ~offset ~rd ~opcode:opcode_jal
    | Jalr { rd; rs1; offset } ->
      i_type ~imm:offset ~rs1 ~funct3:0 ~rd ~opcode:opcode_jalr
    | Branch { kind; rs1; rs2; offset } ->
      b_type ~offset ~rs2 ~rs1 ~funct3:(branch_funct3 kind)
        ~opcode:opcode_branch
    | Load { kind; rd; rs1; offset } ->
      i_type ~imm:offset ~rs1 ~funct3:(load_funct3 kind) ~rd
        ~opcode:opcode_load
    | Store { kind; rs1; rs2; offset } ->
      s_type ~imm:offset ~rs2 ~rs1 ~funct3:(store_funct3 kind)
        ~opcode:opcode_store
    | Alu_imm { op = Sub; _ } -> invalid_arg "Encode: subi does not exist"
    | Alu_imm { op = Sll; rd; rs1; imm } ->
      check_range "slli" imm 0 63;
      i_type ~imm ~rs1 ~funct3:1 ~rd ~opcode:opcode_op_imm
    | Alu_imm { op = Srl; rd; rs1; imm } ->
      check_range "srli" imm 0 63;
      i_type ~imm ~rs1 ~funct3:5 ~rd ~opcode:opcode_op_imm
    | Alu_imm { op = Sra; rd; rs1; imm } ->
      check_range "srai" imm 0 63;
      i_type ~imm:(imm lor 0x400) ~rs1 ~funct3:5 ~rd ~opcode:opcode_op_imm
    | Alu_imm { op; rd; rs1; imm } ->
      i_type ~imm ~rs1 ~funct3:(alu_funct3 op) ~rd ~opcode:opcode_op_imm
    | Alu_imm_w { op = Addw; rd; rs1; imm } ->
      i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:opcode_op_imm32
    | Alu_imm_w { op = Sllw; rd; rs1; imm } ->
      check_range "slliw" imm 0 31;
      i_type ~imm ~rs1 ~funct3:1 ~rd ~opcode:opcode_op_imm32
    | Alu_imm_w { op = Srlw; rd; rs1; imm } ->
      check_range "srliw" imm 0 31;
      i_type ~imm ~rs1 ~funct3:5 ~rd ~opcode:opcode_op_imm32
    | Alu_imm_w { op = Sraw; rd; rs1; imm } ->
      check_range "sraiw" imm 0 31;
      i_type ~imm:(imm lor 0x400) ~rs1 ~funct3:5 ~rd ~opcode:opcode_op_imm32
    | Alu_imm_w { op = Subw; _ } -> invalid_arg "Encode: subiw does not exist"
    | Alu { op; rd; rs1; rs2 } ->
      let funct7 = match op with Sub | Sra -> 0x20 | _ -> 0 in
      r_type ~funct7 ~rs2 ~rs1 ~funct3:(alu_funct3 op) ~rd ~opcode:opcode_op
    | Alu_w { op; rd; rs1; rs2 } ->
      let funct7 = match op with Subw | Sraw -> 0x20 | _ -> 0 in
      let funct3 =
        match op with Addw | Subw -> 0 | Sllw -> 1 | Srlw | Sraw -> 5
      in
      r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:opcode_op32
    | Muldiv { op; rd; rs1; rs2 } ->
      r_type ~funct7:1 ~rs2 ~rs1 ~funct3:(mul_funct3 op) ~rd ~opcode:opcode_op
    | Muldiv_w { op; rd; rs1; rs2 } ->
      r_type ~funct7:1 ~rs2 ~rs1 ~funct3:(mul_w_funct3 op) ~rd
        ~opcode:opcode_op32
    | Csr { op; rd; src; csr } ->
      let base = match op with Csrrw -> 1 | Csrrs -> 2 | Csrrc -> 3 in
      let funct3, field =
        match src with
        | Rs rs1 -> (base, rs1)
        | Uimm imm ->
          check_range "csr uimm" imm 0 31;
          (base lor 4, imm)
      in
      (csr lsl 20) lor (field lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
      lor opcode_system
    | Ecall -> i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system
    | Ebreak -> i_type ~imm:1 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system
    | Sret -> i_type ~imm:0x102 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system
    | Mret -> i_type ~imm:0x302 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system
    | Wfi -> i_type ~imm:0x105 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system
    | Sfence_vma { rs1; rs2 } ->
      r_type ~funct7:0x09 ~rs2 ~rs1 ~funct3:0 ~rd:0 ~opcode:opcode_system
    | Fence -> i_type ~imm:0xFF ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_misc_mem
    | Fence_i -> i_type ~imm:0 ~rs1:0 ~funct3:1 ~rd:0 ~opcode:opcode_misc_mem
    | Lr { width; rd; rs1 } ->
      r_type ~funct7:(0x02 lsl 2) ~rs2:0 ~rs1
        ~funct3:(amo_width_funct3 width) ~rd ~opcode:opcode_amo
    | Sc { width; rd; rs1; rs2 } ->
      r_type ~funct7:(0x03 lsl 2) ~rs2 ~rs1 ~funct3:(amo_width_funct3 width)
        ~rd ~opcode:opcode_amo
    | Amo { op; width; rd; rs1; rs2 } ->
      r_type
        ~funct7:(amo_funct5 op lsl 2)
        ~rs2 ~rs1 ~funct3:(amo_width_funct3 width) ~rd ~opcode:opcode_amo
    | Purge -> opcode_custom0
  in
  w land mask32

let decode_branch funct3 =
  match funct3 with
  | 0 -> Some Beq | 1 -> Some Bne | 4 -> Some Blt | 5 -> Some Bge
  | 6 -> Some Bltu | 7 -> Some Bgeu | _ -> None

let decode_load funct3 =
  match funct3 with
  | 0 -> Some Lb | 1 -> Some Lh | 2 -> Some Lw | 3 -> Some Ld | 4 -> Some Lbu
  | 5 -> Some Lhu | 6 -> Some Lwu | _ -> None

let decode_store funct3 =
  match funct3 with
  | 0 -> Some Sb | 1 -> Some Sh | 2 -> Some Sw | 3 -> Some Sd | _ -> None

let decode w =
  let opcode = bits w 6 0 in
  let rd = bits w 11 7 in
  let funct3 = bits w 14 12 in
  let rs1 = bits w 19 15 in
  let rs2 = bits w 24 20 in
  let funct7 = bits w 31 25 in
  let i_imm = sign_extend (bits w 31 20) 12 in
  let s_imm = sign_extend ((bits w 31 25 lsl 5) lor bits w 11 7) 12 in
  let b_imm =
    sign_extend
      ((bits w 31 31 lsl 12) lor (bits w 7 7 lsl 11) lor (bits w 30 25 lsl 5)
      lor (bits w 11 8 lsl 1))
      13
  in
  let u_imm = sign_extend (bits w 31 12) 20 lsl 12 in
  let j_imm =
    sign_extend
      ((bits w 31 31 lsl 20) lor (bits w 19 12 lsl 12) lor (bits w 20 20 lsl 11)
      lor (bits w 30 21 lsl 1))
      21
  in
  if opcode = opcode_lui then Some (Lui { rd; imm = u_imm })
  else if opcode = opcode_auipc then Some (Auipc { rd; imm = u_imm })
  else if opcode = opcode_jal then Some (Jal { rd; offset = j_imm })
  else if opcode = opcode_jalr && funct3 = 0 then
    Some (Jalr { rd; rs1; offset = i_imm })
  else if opcode = opcode_branch then
    Option.map
      (fun kind -> Branch { kind; rs1; rs2; offset = b_imm })
      (decode_branch funct3)
  else if opcode = opcode_load then
    Option.map
      (fun kind -> Load { kind; rd; rs1; offset = i_imm })
      (decode_load funct3)
  else if opcode = opcode_store then
    Option.map
      (fun kind -> Store { kind; rs1; rs2; offset = s_imm })
      (decode_store funct3)
  else if opcode = opcode_op_imm then
    match funct3 with
    | 0 -> Some (Alu_imm { op = Add; rd; rs1; imm = i_imm })
    | 1 when bits w 31 26 = 0 ->
      Some (Alu_imm { op = Sll; rd; rs1; imm = bits w 25 20 })
    | 2 -> Some (Alu_imm { op = Slt; rd; rs1; imm = i_imm })
    | 3 -> Some (Alu_imm { op = Sltu; rd; rs1; imm = i_imm })
    | 4 -> Some (Alu_imm { op = Xor; rd; rs1; imm = i_imm })
    | 5 when bits w 31 26 = 0 ->
      Some (Alu_imm { op = Srl; rd; rs1; imm = bits w 25 20 })
    | 5 when bits w 31 26 = 0x10 ->
      Some (Alu_imm { op = Sra; rd; rs1; imm = bits w 25 20 })
    | 6 -> Some (Alu_imm { op = Or; rd; rs1; imm = i_imm })
    | 7 -> Some (Alu_imm { op = And; rd; rs1; imm = i_imm })
    | _ -> None
  else if opcode = opcode_op_imm32 then
    match funct3 with
    | 0 -> Some (Alu_imm_w { op = Addw; rd; rs1; imm = i_imm })
    | 1 when funct7 = 0 ->
      Some (Alu_imm_w { op = Sllw; rd; rs1; imm = rs2 })
    | 5 when funct7 = 0 ->
      Some (Alu_imm_w { op = Srlw; rd; rs1; imm = rs2 })
    | 5 when funct7 = 0x20 ->
      Some (Alu_imm_w { op = Sraw; rd; rs1; imm = rs2 })
    | _ -> None
  else if opcode = opcode_op then
    match (funct7, funct3) with
    | 0x00, 0 -> Some (Alu { op = Add; rd; rs1; rs2 })
    | 0x20, 0 -> Some (Alu { op = Sub; rd; rs1; rs2 })
    | 0x00, 1 -> Some (Alu { op = Sll; rd; rs1; rs2 })
    | 0x00, 2 -> Some (Alu { op = Slt; rd; rs1; rs2 })
    | 0x00, 3 -> Some (Alu { op = Sltu; rd; rs1; rs2 })
    | 0x00, 4 -> Some (Alu { op = Xor; rd; rs1; rs2 })
    | 0x00, 5 -> Some (Alu { op = Srl; rd; rs1; rs2 })
    | 0x20, 5 -> Some (Alu { op = Sra; rd; rs1; rs2 })
    | 0x00, 6 -> Some (Alu { op = Or; rd; rs1; rs2 })
    | 0x00, 7 -> Some (Alu { op = And; rd; rs1; rs2 })
    | 0x01, 0 -> Some (Muldiv { op = Mul; rd; rs1; rs2 })
    | 0x01, 1 -> Some (Muldiv { op = Mulh; rd; rs1; rs2 })
    | 0x01, 2 -> Some (Muldiv { op = Mulhsu; rd; rs1; rs2 })
    | 0x01, 3 -> Some (Muldiv { op = Mulhu; rd; rs1; rs2 })
    | 0x01, 4 -> Some (Muldiv { op = Div; rd; rs1; rs2 })
    | 0x01, 5 -> Some (Muldiv { op = Divu; rd; rs1; rs2 })
    | 0x01, 6 -> Some (Muldiv { op = Rem; rd; rs1; rs2 })
    | 0x01, 7 -> Some (Muldiv { op = Remu; rd; rs1; rs2 })
    | _ -> None
  else if opcode = opcode_op32 then
    match (funct7, funct3) with
    | 0x00, 0 -> Some (Alu_w { op = Addw; rd; rs1; rs2 })
    | 0x20, 0 -> Some (Alu_w { op = Subw; rd; rs1; rs2 })
    | 0x00, 1 -> Some (Alu_w { op = Sllw; rd; rs1; rs2 })
    | 0x00, 5 -> Some (Alu_w { op = Srlw; rd; rs1; rs2 })
    | 0x20, 5 -> Some (Alu_w { op = Sraw; rd; rs1; rs2 })
    | 0x01, 0 -> Some (Muldiv_w { op = Mulw; rd; rs1; rs2 })
    | 0x01, 4 -> Some (Muldiv_w { op = Divw; rd; rs1; rs2 })
    | 0x01, 5 -> Some (Muldiv_w { op = Divuw; rd; rs1; rs2 })
    | 0x01, 6 -> Some (Muldiv_w { op = Remw; rd; rs1; rs2 })
    | 0x01, 7 -> Some (Muldiv_w { op = Remuw; rd; rs1; rs2 })
    | _ -> None
  else if opcode = opcode_system then
    match funct3 with
    | 0 -> (
      match (funct7, rs2, rs1, rd) with
      | 0x00, 0, 0, 0 -> Some Ecall
      | 0x00, 1, 0, 0 -> Some Ebreak
      | 0x08, 2, 0, 0 -> Some Sret
      | 0x18, 2, 0, 0 -> Some Mret
      | 0x08, 5, 0, 0 -> Some Wfi
      | 0x09, _, _, 0 -> Some (Sfence_vma { rs1; rs2 })
      | _ -> None)
    | 1 -> Some (Csr { op = Csrrw; rd; src = Rs rs1; csr = bits w 31 20 })
    | 2 -> Some (Csr { op = Csrrs; rd; src = Rs rs1; csr = bits w 31 20 })
    | 3 -> Some (Csr { op = Csrrc; rd; src = Rs rs1; csr = bits w 31 20 })
    | 5 -> Some (Csr { op = Csrrw; rd; src = Uimm rs1; csr = bits w 31 20 })
    | 6 -> Some (Csr { op = Csrrs; rd; src = Uimm rs1; csr = bits w 31 20 })
    | 7 -> Some (Csr { op = Csrrc; rd; src = Uimm rs1; csr = bits w 31 20 })
    | _ -> None
  else if opcode = opcode_misc_mem then
    match funct3 with 0 -> Some Fence | 1 -> Some Fence_i | _ -> None
  else if opcode = opcode_amo then begin
    let width = match funct3 with 2 -> Some W | 3 -> Some D | _ -> None in
    match width with
    | None -> None
    | Some width -> (
      match funct7 lsr 2 with
      | 0x02 when rs2 = 0 -> Some (Lr { width; rd; rs1 })
      | 0x03 -> Some (Sc { width; rd; rs1; rs2 })
      | f5 ->
        Option.map (fun op -> Amo { op; width; rd; rs1; rs2 })
          (amo_funct5_rev f5))
  end
  else if opcode = opcode_custom0 then
    if w = opcode_custom0 then Some Purge else None
  else None
