type mode = User | Supervisor | Machine

let mode_to_int = function User -> 0 | Supervisor -> 1 | Machine -> 3

let mode_of_int = function
  | 0 -> User
  | 1 -> Supervisor
  | 3 -> Machine
  | n -> invalid_arg (Printf.sprintf "Priv.mode_of_int: %d" n)

let mode_name = function
  | User -> "U"
  | Supervisor -> "S"
  | Machine -> "M"

let more_privileged a b = mode_to_int a > mode_to_int b

type exception_cause =
  | Instr_addr_misaligned
  | Instr_access_fault
  | Illegal_instruction
  | Breakpoint
  | Load_addr_misaligned
  | Load_access_fault
  | Store_addr_misaligned
  | Store_access_fault
  | Ecall_from_u
  | Ecall_from_s
  | Ecall_from_m
  | Instr_page_fault
  | Load_page_fault
  | Store_page_fault
  | Region_fault

type interrupt_cause = Software_interrupt | Timer_interrupt | External_interrupt

type cause = Exception of exception_cause | Interrupt of interrupt_cause

let exception_code = function
  | Instr_addr_misaligned -> 0
  | Instr_access_fault -> 1
  | Illegal_instruction -> 2
  | Breakpoint -> 3
  | Load_addr_misaligned -> 4
  | Load_access_fault -> 5
  | Store_addr_misaligned -> 6
  | Store_access_fault -> 7
  | Ecall_from_u -> 8
  | Ecall_from_s -> 9
  | Ecall_from_m -> 11
  | Instr_page_fault -> 12
  | Load_page_fault -> 13
  | Store_page_fault -> 15
  (* Custom cause in the >= 24 range the spec reserves for platform use. *)
  | Region_fault -> 24

let exception_of_code = function
  | 0 -> Some Instr_addr_misaligned
  | 1 -> Some Instr_access_fault
  | 2 -> Some Illegal_instruction
  | 3 -> Some Breakpoint
  | 4 -> Some Load_addr_misaligned
  | 5 -> Some Load_access_fault
  | 6 -> Some Store_addr_misaligned
  | 7 -> Some Store_access_fault
  | 8 -> Some Ecall_from_u
  | 9 -> Some Ecall_from_s
  | 11 -> Some Ecall_from_m
  | 12 -> Some Instr_page_fault
  | 13 -> Some Load_page_fault
  | 15 -> Some Store_page_fault
  | 24 -> Some Region_fault
  | _ -> None

let interrupt_code = function
  | Software_interrupt -> 3
  | Timer_interrupt -> 7
  | External_interrupt -> 11

let interrupt_of_code = function
  | 3 -> Some Software_interrupt
  | 7 -> Some Timer_interrupt
  | 11 -> Some External_interrupt
  | _ -> None

let interrupt_bit = Int64.shift_left 1L 63

let cause_code = function
  | Exception e -> Int64.of_int (exception_code e)
  | Interrupt i -> Int64.logor interrupt_bit (Int64.of_int (interrupt_code i))

let cause_of_code code =
  if Int64.logand code interrupt_bit <> 0L then
    Option.map
      (fun i -> Interrupt i)
      (interrupt_of_code (Int64.to_int (Int64.logand code 0xffL)))
  else
    Option.map (fun e -> Exception e) (exception_of_code (Int64.to_int code))

let pp_cause ppf = function
  | Exception e ->
    let name =
      match e with
      | Instr_addr_misaligned -> "instr-addr-misaligned"
      | Instr_access_fault -> "instr-access-fault"
      | Illegal_instruction -> "illegal-instruction"
      | Breakpoint -> "breakpoint"
      | Load_addr_misaligned -> "load-addr-misaligned"
      | Load_access_fault -> "load-access-fault"
      | Store_addr_misaligned -> "store-addr-misaligned"
      | Store_access_fault -> "store-access-fault"
      | Ecall_from_u -> "ecall-from-U"
      | Ecall_from_s -> "ecall-from-S"
      | Ecall_from_m -> "ecall-from-M"
      | Instr_page_fault -> "instr-page-fault"
      | Load_page_fault -> "load-page-fault"
      | Store_page_fault -> "store-page-fault"
      | Region_fault -> "region-fault"
    in
    Format.pp_print_string ppf name
  | Interrupt i ->
    let name =
      match i with
      | Software_interrupt -> "software-interrupt"
      | Timer_interrupt -> "timer-interrupt"
      | External_interrupt -> "external-interrupt"
    in
    Format.pp_print_string ppf name
