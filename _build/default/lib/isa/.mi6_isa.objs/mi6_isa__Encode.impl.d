lib/isa/encode.ml: Instr Option Printf
