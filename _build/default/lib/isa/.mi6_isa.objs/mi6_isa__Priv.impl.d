lib/isa/priv.ml: Format Int64 Option Printf
