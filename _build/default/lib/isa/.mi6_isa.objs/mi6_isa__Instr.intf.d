lib/isa/instr.mli: Csr Format Reg
