lib/isa/asm.mli: Instr Reg
