lib/isa/priv.mli: Format
