lib/isa/instr.ml: Csr Format List Reg String
