lib/isa/csr.mli: Priv
