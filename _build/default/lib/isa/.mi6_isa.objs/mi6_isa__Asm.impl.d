lib/isa/asm.ml: Array Bytes Char Encode Hashtbl Instr List Printf Reg
