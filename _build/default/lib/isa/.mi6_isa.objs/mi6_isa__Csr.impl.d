lib/isa/csr.ml: List Printf Priv
