type branch_kind = Beq | Bne | Blt | Bge | Bltu | Bgeu
type load_kind = Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu
type store_kind = Sb | Sh | Sw | Sd
type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
type alu_w_op = Addw | Subw | Sllw | Srlw | Sraw
type mul_op = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
type mul_w_op = Mulw | Divw | Divuw | Remw | Remuw
type csr_op = Csrrw | Csrrs | Csrrc
type csr_src = Rs of Reg.t | Uimm of int

type amo_width = W | D

type amo_op =
  | Amoswap
  | Amoadd
  | Amoxor
  | Amoand
  | Amoor
  | Amomin
  | Amomax
  | Amominu
  | Amomaxu

type t =
  | Lui of { rd : Reg.t; imm : int }
  | Auipc of { rd : Reg.t; imm : int }
  | Jal of { rd : Reg.t; offset : int }
  | Jalr of { rd : Reg.t; rs1 : Reg.t; offset : int }
  | Branch of { kind : branch_kind; rs1 : Reg.t; rs2 : Reg.t; offset : int }
  | Load of { kind : load_kind; rd : Reg.t; rs1 : Reg.t; offset : int }
  | Store of { kind : store_kind; rs1 : Reg.t; rs2 : Reg.t; offset : int }
  | Alu_imm of { op : alu_op; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Alu_imm_w of { op : alu_w_op; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Alu of { op : alu_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Alu_w of { op : alu_w_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Muldiv of { op : mul_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Muldiv_w of { op : mul_w_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Csr of { op : csr_op; rd : Reg.t; src : csr_src; csr : Csr.t }
  | Lr of { width : amo_width; rd : Reg.t; rs1 : Reg.t }
  | Sc of { width : amo_width; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Amo of { op : amo_op; width : amo_width; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Ecall
  | Ebreak
  | Mret
  | Sret
  | Wfi
  | Fence
  | Fence_i
  | Sfence_vma of { rs1 : Reg.t; rs2 : Reg.t }
  | Purge

let is_control_flow = function
  | Jal _ | Jalr _ | Branch _ -> true
  | _ -> false

let is_branch = function Branch _ -> true | _ -> false
let is_load = function Load _ | Lr _ -> true | _ -> false
let is_store = function Store _ | Sc _ -> true | _ -> false
let is_mem i =
  match i with
  | Load _ | Store _ | Lr _ | Sc _ | Amo _ -> true
  | _ -> false

let is_serializing = function
  | Csr _ | Ecall | Ebreak | Mret | Sret | Wfi | Fence | Fence_i
  | Sfence_vma _ | Purge ->
    true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Alu_imm _ | Alu_imm_w _ | Alu _ | Alu_w _ | Muldiv _ | Muldiv_w _
  | Lr _ | Sc _ | Amo _ ->
    false

let dest instr =
  let d rd = if rd = 0 then None else Some rd in
  match instr with
  | Lui { rd; _ } | Auipc { rd; _ } | Jal { rd; _ } | Jalr { rd; _ }
  | Load { rd; _ } | Alu_imm { rd; _ } | Alu_imm_w { rd; _ } | Alu { rd; _ }
  | Alu_w { rd; _ } | Muldiv { rd; _ } | Muldiv_w { rd; _ } | Csr { rd; _ }
  | Lr { rd; _ } | Sc { rd; _ } | Amo { rd; _ } ->
    d rd
  | Branch _ | Store _ | Ecall | Ebreak | Mret | Sret | Wfi | Fence | Fence_i
  | Sfence_vma _ | Purge ->
    None

let sources instr =
  let srcs =
    match instr with
    | Lui _ | Auipc _ | Jal _ | Ecall | Ebreak | Mret | Sret | Wfi | Fence
    | Fence_i | Purge ->
      []
    | Jalr { rs1; _ } | Load { rs1; _ } | Alu_imm { rs1; _ }
    | Alu_imm_w { rs1; _ } | Lr { rs1; _ } ->
      [ rs1 ]
    | Sc { rs1; rs2; _ } | Amo { rs1; rs2; _ } -> [ rs1; rs2 ]
    | Branch { rs1; rs2; _ } | Store { rs1; rs2; _ } | Alu { rs1; rs2; _ }
    | Alu_w { rs1; rs2; _ } | Muldiv { rs1; rs2; _ } | Muldiv_w { rs1; rs2; _ }
    | Sfence_vma { rs1; rs2 } ->
      [ rs1; rs2 ]
    | Csr { src; _ } -> ( match src with Rs rs1 -> [ rs1 ] | Uimm _ -> [])
  in
  List.filter (fun r -> r <> 0) srcs

let load_bytes = function
  | Lb | Lbu -> 1
  | Lh | Lhu -> 2
  | Lw | Lwu -> 4
  | Ld -> 8

let store_bytes = function Sb -> 1 | Sh -> 2 | Sw -> 4 | Sd -> 8

let branch_name = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Bge -> "bge"
  | Bltu -> "bltu"
  | Bgeu -> "bgeu"

let load_name = function
  | Lb -> "lb"
  | Lh -> "lh"
  | Lw -> "lw"
  | Ld -> "ld"
  | Lbu -> "lbu"
  | Lhu -> "lhu"
  | Lwu -> "lwu"

let store_name = function Sb -> "sb" | Sh -> "sh" | Sw -> "sw" | Sd -> "sd"

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Sll -> "sll"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Xor -> "xor"
  | Srl -> "srl"
  | Sra -> "sra"
  | Or -> "or"
  | And -> "and"

let alu_w_name = function
  | Addw -> "addw"
  | Subw -> "subw"
  | Sllw -> "sllw"
  | Srlw -> "srlw"
  | Sraw -> "sraw"

let mul_name = function
  | Mul -> "mul"
  | Mulh -> "mulh"
  | Mulhsu -> "mulhsu"
  | Mulhu -> "mulhu"
  | Div -> "div"
  | Divu -> "divu"
  | Rem -> "rem"
  | Remu -> "remu"

let mul_w_name = function
  | Mulw -> "mulw"
  | Divw -> "divw"
  | Divuw -> "divuw"
  | Remw -> "remw"
  | Remuw -> "remuw"

let csr_name = function Csrrw -> "csrrw" | Csrrs -> "csrrs" | Csrrc -> "csrrc"

let amo_name = function
  | Amoswap -> "amoswap"
  | Amoadd -> "amoadd"
  | Amoxor -> "amoxor"
  | Amoand -> "amoand"
  | Amoor -> "amoor"
  | Amomin -> "amomin"
  | Amomax -> "amomax"
  | Amominu -> "amominu"
  | Amomaxu -> "amomaxu"

let width_suffix = function W -> ".w" | D -> ".d"

let pp ppf instr =
  let r = Reg.name in
  match instr with
  | Lui { rd; imm } -> Format.fprintf ppf "lui %s, 0x%x" (r rd) (imm lsr 12)
  | Auipc { rd; imm } -> Format.fprintf ppf "auipc %s, 0x%x" (r rd) (imm lsr 12)
  | Jal { rd; offset } -> Format.fprintf ppf "jal %s, %d" (r rd) offset
  | Jalr { rd; rs1; offset } ->
    Format.fprintf ppf "jalr %s, %d(%s)" (r rd) offset (r rs1)
  | Branch { kind; rs1; rs2; offset } ->
    Format.fprintf ppf "%s %s, %s, %d" (branch_name kind) (r rs1) (r rs2) offset
  | Load { kind; rd; rs1; offset } ->
    Format.fprintf ppf "%s %s, %d(%s)" (load_name kind) (r rd) offset (r rs1)
  | Store { kind; rs1; rs2; offset } ->
    Format.fprintf ppf "%s %s, %d(%s)" (store_name kind) (r rs2) offset (r rs1)
  | Alu_imm { op; rd; rs1; imm } ->
    Format.fprintf ppf "%si %s, %s, %d" (alu_name op) (r rd) (r rs1) imm
  | Alu_imm_w { op; rd; rs1; imm } ->
    Format.fprintf ppf "%siw %s, %s, %d"
      (String.sub (alu_w_name op) 0 (String.length (alu_w_name op) - 1))
      (r rd) (r rs1) imm
  | Alu { op; rd; rs1; rs2 } ->
    Format.fprintf ppf "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Alu_w { op; rd; rs1; rs2 } ->
    Format.fprintf ppf "%s %s, %s, %s" (alu_w_name op) (r rd) (r rs1) (r rs2)
  | Muldiv { op; rd; rs1; rs2 } ->
    Format.fprintf ppf "%s %s, %s, %s" (mul_name op) (r rd) (r rs1) (r rs2)
  | Muldiv_w { op; rd; rs1; rs2 } ->
    Format.fprintf ppf "%s %s, %s, %s" (mul_w_name op) (r rd) (r rs1) (r rs2)
  | Csr { op; rd; src; csr } -> (
    match src with
    | Rs rs1 ->
      Format.fprintf ppf "%s %s, %s, %s" (csr_name op) (r rd) (Csr.name csr)
        (r rs1)
    | Uimm imm ->
      Format.fprintf ppf "%si %s, %s, %d" (csr_name op) (r rd) (Csr.name csr)
        imm)
  | Lr { width; rd; rs1 } ->
    Format.fprintf ppf "lr%s %s, (%s)" (width_suffix width) (r rd) (r rs1)
  | Sc { width; rd; rs1; rs2 } ->
    Format.fprintf ppf "sc%s %s, %s, (%s)" (width_suffix width) (r rd) (r rs2)
      (r rs1)
  | Amo { op; width; rd; rs1; rs2 } ->
    Format.fprintf ppf "%s%s %s, %s, (%s)" (amo_name op) (width_suffix width)
      (r rd) (r rs2) (r rs1)
  | Ecall -> Format.pp_print_string ppf "ecall"
  | Ebreak -> Format.pp_print_string ppf "ebreak"
  | Mret -> Format.pp_print_string ppf "mret"
  | Sret -> Format.pp_print_string ppf "sret"
  | Wfi -> Format.pp_print_string ppf "wfi"
  | Fence -> Format.pp_print_string ppf "fence"
  | Fence_i -> Format.pp_print_string ppf "fence.i"
  | Sfence_vma { rs1; rs2 } ->
    Format.fprintf ppf "sfence.vma %s, %s" (r rs1) (r rs2)
  | Purge -> Format.pp_print_string ppf "purge"

let to_string instr = Format.asprintf "%a" pp instr
