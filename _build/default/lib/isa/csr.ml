type t = int

let mstatus = 0x300
let misa = 0x301
let medeleg = 0x302
let mideleg = 0x303
let mie = 0x304
let mtvec = 0x305
let mscratch = 0x340
let mepc = 0x341
let mcause = 0x342
let mtval = 0x343
let mip = 0x344
let mhartid = 0xF14
let mcycle = 0xB00
let minstret = 0xB02

let sstatus = 0x100
let sie = 0x104
let stvec = 0x105
let sscratch = 0x140
let sepc = 0x141
let scause = 0x142
let stval = 0x143
let sip = 0x144
let satp = 0x180

let cycle = 0xC00
let instret = 0xC02

(* MI6 custom CSRs live in the machine-mode custom read/write block
   0x7C0-0x7FF. *)
let mregions = 0x7C0
let mfetchbase = 0x7C1
let mfetchmask = 0x7C2
let mspec = 0x7C3

let min_priv csr =
  match (csr lsr 8) land 0x3 with
  | 0 -> Priv.User
  | 1 -> Priv.Supervisor
  | _ -> Priv.Machine

let table =
  [
    (mstatus, "mstatus"); (misa, "misa"); (medeleg, "medeleg");
    (mideleg, "mideleg"); (mie, "mie"); (mtvec, "mtvec");
    (mscratch, "mscratch"); (mepc, "mepc"); (mcause, "mcause");
    (mtval, "mtval"); (mip, "mip"); (mhartid, "mhartid");
    (mcycle, "mcycle"); (minstret, "minstret"); (sstatus, "sstatus");
    (sie, "sie"); (stvec, "stvec"); (sscratch, "sscratch"); (sepc, "sepc");
    (scause, "scause"); (stval, "stval"); (sip, "sip"); (satp, "satp");
    (cycle, "cycle"); (instret, "instret"); (mregions, "mregions");
    (mfetchbase, "mfetchbase"); (mfetchmask, "mfetchmask"); (mspec, "mspec");
  ]

let is_known csr = List.mem_assoc csr table

let name csr =
  match List.assoc_opt csr table with
  | Some n -> n
  | None -> Printf.sprintf "csr_0x%03x" csr
