(** Control and status register addresses, including MI6's custom CSRs.

    The MI6 additions (machine-mode only, per Sections 5.3 and 6.1):
    - [mregions]: 64-bit DRAM-region permission bitvector; the core refuses
      to emit any access (speculative or not) to a region whose bit is clear
      and raises {!Priv.Region_fault} when such an access becomes
      non-speculative.
    - [mfetchbase] / [mfetchmask]: fetch-range restriction active in machine
      mode, confining the security monitor's (speculative) instruction
      fetches to its own footprint.
    - [mspec]: speculation throttle; bit 0 set = memory instructions issue
      non-speculatively (ROB must be empty), used while the monitor moves
      data across protection domains. *)

type t = int

val mstatus : t
val misa : t
val medeleg : t
val mideleg : t
val mie : t
val mtvec : t
val mscratch : t
val mepc : t
val mcause : t
val mtval : t
val mip : t
val mhartid : t
val mcycle : t
val minstret : t

val sstatus : t
val sie : t
val stvec : t
val sscratch : t
val sepc : t
val scause : t
val stval : t
val sip : t
val satp : t

val cycle : t
val instret : t

(** MI6 custom machine-mode CSRs. *)
val mregions : t

val mfetchbase : t
val mfetchmask : t
val mspec : t

(** [min_priv csr] is the least privilege mode allowed to access the CSR
    (from the standard address-space convention, bits 9:8). *)
val min_priv : t -> Priv.mode

(** [is_known csr] holds for every CSR listed above. *)
val is_known : t -> bool

val name : t -> string
