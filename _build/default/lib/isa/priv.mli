(** RISC-V privilege modes and trap causes.

    MI6's security monitor is the only software in machine mode; the
    untrusted OS runs in supervisor mode; applications and enclaves run in
    user mode (Section 2.2 of the paper). *)

type mode = User | Supervisor | Machine

(** Numeric encoding used by [mstatus.MPP] etc.: U=0, S=1, M=3. *)
val mode_to_int : mode -> int

val mode_of_int : int -> mode
val mode_name : mode -> string

(** [more_privileged a b] holds when [a] strictly dominates [b]. *)
val more_privileged : mode -> mode -> bool

(** Synchronous exception causes (subset of the privileged spec), plus the
    MI6-specific cause raised when a non-speculative access falls outside
    the protection domain's DRAM regions (Section 5.3). *)
type exception_cause =
  | Instr_addr_misaligned
  | Instr_access_fault
  | Illegal_instruction
  | Breakpoint
  | Load_addr_misaligned
  | Load_access_fault
  | Store_addr_misaligned
  | Store_access_fault
  | Ecall_from_u
  | Ecall_from_s
  | Ecall_from_m
  | Instr_page_fault
  | Load_page_fault
  | Store_page_fault
  | Region_fault  (** MI6: access outside the allowed DRAM regions *)

type interrupt_cause = Software_interrupt | Timer_interrupt | External_interrupt

type cause = Exception of exception_cause | Interrupt of interrupt_cause

(** [cause_code c] is the mcause encoding: interrupts have bit 63 set. *)
val cause_code : cause -> int64

val cause_of_code : int64 -> cause option
val pp_cause : Format.formatter -> cause -> unit
