(** Binary encoding of the instruction set (standard RV64 formats).

    [purge] is encoded in the custom-0 opcode space (0x0B), which standard
    RISC-V reserves for extensions — this is how the paper's claim that
    purge "can be easily incorporated in any ISA" is realized here. *)

(** [encode i] is the 32-bit encoding as a non-negative int.  Raises
    [Invalid_argument] when an immediate is out of range or misaligned. *)
val encode : Instr.t -> int

(** [decode w] is the instruction encoded by the 32-bit word [w], or [None]
    for an illegal encoding. *)
val decode : int -> Instr.t option
