(** A tiny two-pass assembler for writing test and example programs.

    Programs are lists of {!item}s; label references in control flow are
    resolved against the program base address.  Pseudo-instructions expand
    to fixed-length sequences so label offsets are stable across passes. *)

type item =
  | Label of string
  | I of Instr.t  (** a concrete instruction *)
  | Jal_to of Reg.t * string  (** [jal rd, label] *)
  | Br_to of Instr.branch_kind * Reg.t * Reg.t * string
      (** conditional branch to a label *)
  | Li of Reg.t * int
      (** load a signed 32-bit constant; expands to [lui; addi] *)
  | La of Reg.t * string  (** load a label's absolute address (lui; addi) *)
  | Call of string  (** [jal ra, label] *)
  | J of string  (** [jal x0, label] *)
  | Ret  (** [jalr x0, 0(ra)] *)
  | Nop

type program = {
  base : int;  (** load address of the first instruction *)
  words : int array;  (** encoded instructions *)
  labels : (string * int) list;  (** label -> absolute address *)
}

(** [assemble ~base items] resolves labels and encodes.  Raises [Failure] on
    undefined or duplicate labels, and [Invalid_argument] when a resolved
    offset does not fit its encoding. *)
val assemble : base:int -> item list -> program

(** [lookup p label] is the absolute address of [label].  Raises
    [Not_found]. *)
val lookup : program -> string -> int

(** [size_bytes p] is the code size. *)
val size_bytes : program -> int

(** [to_bytes p] is the little-endian byte image of the code. *)
val to_bytes : program -> string
