(** Instruction set: RV64IM subset + privileged instructions + MI6's custom
    [purge] instruction (paper Section 6).

    Immediates are stored as ordinary sign-extended OCaml ints in their
    natural units (byte offsets for control flow and memory, raw values for
    ALU immediates, the upper-immediate for [Lui]/[Auipc] already shifted
    left by 12). *)

type branch_kind = Beq | Bne | Blt | Bge | Bltu | Bgeu
type load_kind = Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu
type store_kind = Sb | Sh | Sw | Sd
type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
type alu_w_op = Addw | Subw | Sllw | Srlw | Sraw
type mul_op = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
type mul_w_op = Mulw | Divw | Divuw | Remw | Remuw
type csr_op = Csrrw | Csrrs | Csrrc
type csr_src = Rs of Reg.t | Uimm of int

type amo_width = W | D

type amo_op =
  | Amoswap
  | Amoadd
  | Amoxor
  | Amoand
  | Amoor
  | Amomin
  | Amomax
  | Amominu
  | Amomaxu

type t =
  | Lui of { rd : Reg.t; imm : int }
  | Auipc of { rd : Reg.t; imm : int }
  | Jal of { rd : Reg.t; offset : int }
  | Jalr of { rd : Reg.t; rs1 : Reg.t; offset : int }
  | Branch of { kind : branch_kind; rs1 : Reg.t; rs2 : Reg.t; offset : int }
  | Load of { kind : load_kind; rd : Reg.t; rs1 : Reg.t; offset : int }
  | Store of { kind : store_kind; rs1 : Reg.t; rs2 : Reg.t; offset : int }
  | Alu_imm of { op : alu_op; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Alu_imm_w of { op : alu_w_op; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Alu of { op : alu_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Alu_w of { op : alu_w_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Muldiv of { op : mul_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Muldiv_w of { op : mul_w_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Csr of { op : csr_op; rd : Reg.t; src : csr_src; csr : Csr.t }
  | Lr of { width : amo_width; rd : Reg.t; rs1 : Reg.t }
  | Sc of { width : amo_width; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Amo of { op : amo_op; width : amo_width; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Ecall
  | Ebreak
  | Mret
  | Sret
  | Wfi
  | Fence
  | Fence_i
  | Sfence_vma of { rs1 : Reg.t; rs2 : Reg.t }
  | Purge
      (** MI6 purge: drains the pipeline and scrubs all per-core
          microarchitectural state; machine-mode only. *)

(** Classification helpers used by the timing model. *)

val is_control_flow : t -> bool
val is_branch : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

(** [is_serializing i] holds for instructions the core must execute with an
    empty pipeline ([Csr], [Fence_i], [Sfence_vma], [Mret], [Sret],
    [Ecall], [Purge], ...). *)
val is_serializing : t -> bool

(** [dest i] is the destination register if any ([x0] destinations count as
    none). *)
val dest : t -> Reg.t option

(** [sources i] lists the source registers (without [x0]). *)
val sources : t -> Reg.t list

(** [load_bytes k] / [store_bytes k] is the access width. *)
val load_bytes : load_kind -> int

val store_bytes : store_kind -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
