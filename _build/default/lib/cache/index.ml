type kind =
  | Flat
  | Partitioned of { region_bits : int; geometry : Addr.regions }

type t = { set_bits : int; kind : kind }

let flat ~set_bits = { set_bits; kind = Flat }

let partitioned ~set_bits ~region_bits ~geometry =
  if region_bits > set_bits then
    invalid_arg "Index.partitioned: region_bits exceeds set_bits";
  { set_bits; kind = Partitioned { region_bits; geometry } }

let sets t = 1 lsl t.set_bits

let index t ~line =
  match t.kind with
  | Flat -> line land ((1 lsl t.set_bits) - 1)
  | Partitioned { region_bits; geometry } ->
    let low_bits = t.set_bits - region_bits in
    let region = Addr.region_of geometry (line * Addr.line_bytes) in
    let r_low = region land ((1 lsl region_bits) - 1) in
    (r_low lsl low_bits) lor (line land ((1 lsl low_bits) - 1))

(* Storing the whole line number as tag is redundant with the index bits
   but keeps both index functions correct without per-function tag
   arithmetic. *)
let tag _t ~line = line
