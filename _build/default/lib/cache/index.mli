(** LLC set-index functions (paper Sections 5.2 and 7.2).

    - [Flat]: the baseline index, the low set-index bits of the cache-line
      number ([A[9:0]] for the 1 MB, 1024-set LLC).
    - [Partitioned]: MI6's set-partitioned index — the high bits of the
      baseline index are replaced by the low bits of the DRAM-region ID, so
      each group of DRAM regions maps to a private slice of cache sets:
      [{R[k-1:0], A[set_bits-k-1:0]}]. *)

type t

(** [flat ~set_bits] indexes with the low [set_bits] bits of the line
    number. *)
val flat : set_bits:int -> t

(** [partitioned ~set_bits ~region_bits ~geometry] replaces the top
    [region_bits] of the flat index with the low bits of the DRAM-region
    ID.  Raises [Invalid_argument] if [region_bits > set_bits]. *)
val partitioned : set_bits:int -> region_bits:int -> geometry:Addr.regions -> t

val sets : t -> int

(** [index t ~line] is the set for cache-line number [line] (byte address
    / 64). *)
val index : t -> line:int -> int

(** [tag t ~line] is the tag to store: the line number itself works as a
    (redundant but simple) tag for both functions. *)
val tag : t -> line:int -> int
