lib/cache/replacement.mli:
