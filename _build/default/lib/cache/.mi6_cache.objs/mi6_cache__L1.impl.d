lib/cache/l1.ml: Array Fifo Link List Msg Msi Queue Replacement Sram Stats
