lib/cache/replacement.ml: Array Int64
