lib/cache/index.mli: Addr
