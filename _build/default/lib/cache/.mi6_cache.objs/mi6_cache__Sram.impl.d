lib/cache/sram.ml: Array
