lib/cache/l1.mli: Link Msi Stats
