lib/cache/index.ml: Addr
