lib/cache/sram.mli:
