lib/ooo/uop.ml:
