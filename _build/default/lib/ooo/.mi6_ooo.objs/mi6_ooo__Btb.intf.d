lib/ooo/btb.mli:
