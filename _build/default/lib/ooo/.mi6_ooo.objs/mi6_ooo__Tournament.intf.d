lib/ooo/tournament.mli:
