lib/ooo/uop.mli:
