lib/ooo/core_config.ml:
