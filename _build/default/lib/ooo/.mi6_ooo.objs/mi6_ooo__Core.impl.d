lib/ooo/core.ml: Array Btb Core_config Fifo L1 List Msi Printf Ptw Queue Ras Stats Tlb Tournament Trans_cache Uop
