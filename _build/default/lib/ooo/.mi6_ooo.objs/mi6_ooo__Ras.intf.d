lib/ooo/ras.mli:
