lib/ooo/core.mli: Core_config L1 Stats Uop
