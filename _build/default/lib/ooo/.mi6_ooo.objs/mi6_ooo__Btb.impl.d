lib/ooo/btb.ml: Array
