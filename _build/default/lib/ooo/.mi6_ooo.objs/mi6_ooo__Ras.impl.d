lib/ooo/ras.ml: Array
