lib/ooo/core_config.mli:
