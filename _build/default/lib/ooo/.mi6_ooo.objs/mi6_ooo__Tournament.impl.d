lib/ooo/tournament.ml: Array Bool Stdlib
