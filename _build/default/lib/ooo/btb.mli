(** Branch target buffer: 256-entry direct-mapped (Figure 4).

    Deeply stateful and program-dependent, so purge resets it
    ({!flush}). *)

type t

val create : ?entries:int -> unit -> t

(** [predict t ~pc] is the cached target for a control instruction. *)
val predict : t -> pc:int -> int option

(** [update t ~pc ~target] installs/overwrites the mapping. *)
val update : t -> pc:int -> target:int -> unit

val flush : t -> unit

(** [occupancy t] — valid entries (tests). *)
val occupancy : t -> int

(** Save/restore (see {!Tournament.snapshot}). *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
