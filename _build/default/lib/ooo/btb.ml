type t = {
  entries : int;
  tags : int array;
  targets : int array;
  valid : bool array;
}

let create ?(entries = 256) () =
  {
    entries;
    tags = Array.make entries 0;
    targets = Array.make entries 0;
    valid = Array.make entries false;
  }

(* Instructions are 4-byte aligned; drop the low bits before indexing. *)
let slot t pc = pc lsr 2 land (t.entries - 1)

let predict t ~pc =
  let i = slot t pc in
  if t.valid.(i) && t.tags.(i) = pc then Some t.targets.(i) else None

let update t ~pc ~target =
  let i = slot t pc in
  t.valid.(i) <- true;
  t.tags.(i) <- pc;
  t.targets.(i) <- target

let flush t = Array.fill t.valid 0 t.entries false

let occupancy t =
  Array.fold_left (fun n v -> if v then n + 1 else n) 0 t.valid

type snapshot = { s_tags : int array; s_targets : int array; s_valid : bool array }

let snapshot t =
  {
    s_tags = Array.copy t.tags;
    s_targets = Array.copy t.targets;
    s_valid = Array.copy t.valid;
  }

let restore t s =
  Array.blit s.s_tags 0 t.tags 0 t.entries;
  Array.blit s.s_targets 0 t.targets 0 t.entries;
  Array.blit s.s_valid 0 t.valid 0 t.entries
