let local_entries = 1024
let local_history_bits = 10
let global_entries = 4096
let global_history_bits = 12

type t = {
  local_history : int array; (* 1024 x 10-bit shift registers *)
  local_counters : int array; (* 1024 x 3-bit, indexed by local history *)
  global_counters : int array; (* 4096 x 2-bit *)
  choice : int array; (* 4096 x 2-bit: >=2 chooses global *)
  mutable ghist : int; (* 12-bit global history *)
}

let create () =
  {
    (* The public reset state is fully cold: strongly not-taken
       everywhere.  Post-purge warmup therefore costs several events per
       (mostly taken-biased) branch, matching the substantial
       misprediction increase the paper measures under FLUSH
       (Figure 7). *)
    local_history = Array.make local_entries 0;
    local_counters = Array.make local_entries 0;
    global_counters = Array.make global_entries 0;
    choice = Array.make global_entries 1;
    ghist = 0;
  }

let local_slot pc = pc lsr 2 land (local_entries - 1)

let local_predict t ~pc =
  let h = t.local_history.(local_slot pc) in
  t.local_counters.(h land (local_entries - 1)) >= 4

let global_slot t = t.ghist land (global_entries - 1)
let global_predict t = t.global_counters.(global_slot t) >= 2

let predict t ~pc =
  if t.choice.(global_slot t) >= 2 then global_predict t
  else local_predict t ~pc

let bump v ~max ~up = if up then min max (v + 1) else Stdlib.max 0 (v - 1)

let update t ~pc ~taken =
  let gslot = global_slot t in
  let lslot = local_slot pc in
  let lh = t.local_history.(lslot) land (local_entries - 1) in
  let local_correct = t.local_counters.(lh) >= 4 = taken in
  let global_correct = t.global_counters.(gslot) >= 2 = taken in
  (* Choice trains toward whichever component was right. *)
  if local_correct <> global_correct then
    t.choice.(gslot) <- bump t.choice.(gslot) ~max:3 ~up:global_correct;
  t.local_counters.(lh) <- bump t.local_counters.(lh) ~max:7 ~up:taken;
  t.global_counters.(gslot) <- bump t.global_counters.(gslot) ~max:3 ~up:taken;
  t.local_history.(lslot) <-
    ((lh lsl 1) lor Bool.to_int taken) land ((1 lsl local_history_bits) - 1);
  t.ghist <-
    ((t.ghist lsl 1) lor Bool.to_int taken) land ((1 lsl global_history_bits) - 1)

let flush t =
  Array.fill t.local_history 0 local_entries 0;
  Array.fill t.local_counters 0 local_entries 0;
  Array.fill t.global_counters 0 global_entries 0;
  Array.fill t.choice 0 global_entries 1;
  t.ghist <- 0

let state_signature t =
  let h = ref t.ghist in
  let fold arr = Array.iter (fun v -> h := ((!h * 31) + v) land max_int) arr in
  fold t.local_history;
  fold t.local_counters;
  fold t.global_counters;
  fold t.choice;
  !h

type snapshot = {
  s_local_history : int array;
  s_local_counters : int array;
  s_global_counters : int array;
  s_choice : int array;
  s_ghist : int;
}

let snapshot t =
  {
    s_local_history = Array.copy t.local_history;
    s_local_counters = Array.copy t.local_counters;
    s_global_counters = Array.copy t.global_counters;
    s_choice = Array.copy t.choice;
    s_ghist = t.ghist;
  }

let restore t s =
  Array.blit s.s_local_history 0 t.local_history 0 local_entries;
  Array.blit s.s_local_counters 0 t.local_counters 0 local_entries;
  Array.blit s.s_global_counters 0 t.global_counters 0 global_entries;
  Array.blit s.s_choice 0 t.choice 0 global_entries;
  t.ghist <- s.s_ghist
