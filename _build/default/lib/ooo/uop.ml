type pipe_class = Pipe_alu | Pipe_mem | Pipe_fp

type kind =
  | Alu of { latency : int; pipe : pipe_class }
  | Load of { addr : int }
  | Store of { addr : int }
  | Branch of { taken : bool; target : int }
  | Jump of { target : int; kind : [ `Plain | `Call | `Return ] }
  | Enter_kernel
  | Exit_kernel

type t = {
  pc : int;
  kind : kind;
  dst : int option;
  srcs : int list;
}

let is_mem u = match u.kind with Load _ | Store _ -> true | _ -> false

let is_control u =
  match u.kind with Branch _ | Jump _ -> true | _ -> false

let next_pc u =
  match u.kind with
  | Branch { taken = true; target; _ } -> target
  | Jump { target; _ } -> target
  | Alu _ | Load _ | Store _ | Branch { taken = false; _ } | Enter_kernel
  | Exit_kernel ->
    u.pc + 4

let alu ?(latency = 1) ?(pipe = Pipe_alu) ~pc ~dst ~srcs () =
  { pc; kind = Alu { latency; pipe }; dst = Some dst; srcs }

let load ~pc ~addr ~dst ~srcs () =
  { pc; kind = Load { addr }; dst = Some dst; srcs }

let store ~pc ~addr ~srcs () = { pc; kind = Store { addr }; dst = None; srcs }

let branch ~pc ~taken ~target ~srcs () =
  { pc; kind = Branch { taken; target }; dst = None; srcs }

let jump ~pc ~target ~kind () =
  {
    pc;
    kind = Jump { target; kind };
    dst = (match kind with `Call -> Some 1 | _ -> None);
    srcs = (match kind with `Return -> [ 1 ] | _ -> []);
  }
