(** Alpha 21264-style tournament branch direction predictor (Figure 4,
    citing Kessler): a local predictor (1024-entry × 10-bit history table
    feeding 1024 × 3-bit counters), a global predictor (4096 × 2-bit
    counters indexed by 12 bits of global history), and a choice predictor
    (4096 × 2-bit) that picks between them.

    The largest table is 4096 × 2 bits, matching the purge cost analysis
    in Section 7.1 (8 entries discarded per cycle → 512 cycles).

    Predictions and updates are immediate (trace-driven style): [predict]
    reads the current state; [update] folds in the actual outcome. *)

type t

val create : unit -> t

(** [predict t ~pc] is the predicted direction. *)
val predict : t -> pc:int -> bool

(** [update t ~pc ~taken] trains local, global, and choice tables and
    shifts the histories. *)
val update : t -> pc:int -> taken:bool -> unit

(** [flush t] resets every table and history to the public initial state
    (purge). *)
val flush : t -> unit

(** [state_signature t] hashes all predictor state; equal signatures mean
    software-indistinguishable predictors (purge test). *)
val state_signature : t -> int

(** Save/restore primitives — the optional purge optimization of paper
    Section 6 ("the processor may opt to implement primitives for saving
    and restoring predictor state"): a domain's predictor state is saved
    at purge and restored when the same domain is rescheduled, avoiding
    the cold-start cost without leaking across domains (the restored
    state is the domain's own). *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
