lib/dram/controller.mli: Fr_fcfs Stats
