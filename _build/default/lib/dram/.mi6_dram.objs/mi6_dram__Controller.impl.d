lib/dram/controller.ml: Dram Fr_fcfs
