lib/dram/dram.mli: Stats
