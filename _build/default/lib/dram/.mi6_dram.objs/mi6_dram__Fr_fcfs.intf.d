lib/dram/fr_fcfs.mli: Stats
