lib/dram/dram.ml: Fifo Stats
