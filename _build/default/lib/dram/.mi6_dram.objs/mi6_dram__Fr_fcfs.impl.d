lib/dram/fr_fcfs.ml: Array Fifo List Stats
