type t = {
  title : string;
  columns : string list;
  mutable rows : (string * string list) list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t label cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match columns";
  t.rows <- (label, cells) :: t.rows

let cell_f v = Printf.sprintf "%.1f" v
let cell_pct v = Printf.sprintf "%.1f%%" v

let render t =
  let rows = List.rev t.rows in
  let headers = "" :: t.columns in
  let all = headers :: List.map (fun (l, cs) -> l :: cs) rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad_left s w = String.make (w - String.length s) ' ' ^ s in
  let pad_right s w = s ^ String.make (w - String.length s) ' ' in
  let render_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Buffer.add_string buf (pad_right cell w)
        else begin
          Buffer.add_string buf "  ";
          Buffer.add_string buf (pad_left cell w)
        end)
      cells;
    Buffer.add_char buf '\n'
  in
  render_row headers;
  let total = List.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter (fun (l, cs) -> render_row (l :: cs)) rows;
  Buffer.contents buf

let print t = print_string (render t)
