(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the simulator (workload generation,
    pseudo-random cache replacement, property-test pre-states) flows from one
    seed through explicit [t] values, so whole-machine runs are reproducible
    bit-for-bit.  That determinism is what makes the non-interference tests
    meaningful: two runs that differ only in the victim's secret must produce
    identical attacker observation traces.

    The generator is SplitMix64 (Steele, Lea & Flood 2014). *)

type t

(** [create seed] is a fresh generator. *)
val create : int64 -> t

(** [of_int seed] is [create] on a widened int, for convenience. *)
val of_int : int -> t

(** [split t] derives an independent generator without disturbing the parent
    stream more than one step. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound).  Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t ~p] is [true] with probability [p]. *)
val bool : t -> p:float -> bool

(** [geometric t ~mean] samples a geometric distribution with the given mean
    (>= 0); used for burst lengths and inter-event gaps. *)
val geometric : t -> mean:float -> int

(** [choose t weights] picks index [i] with probability proportional to
    [weights.(i)].  Raises [Invalid_argument] on an empty or all-zero
    array. *)
val choose : t -> float array -> int
