type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

(* SplitMix64 output function. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  (* Re-mix with a distinct constant so the child stream is decorrelated. *)
  create (mix (Int64.logxor seed 0xD1B54A32D192ED03L))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t ~p = float t < p

let geometric t ~mean =
  if mean <= 0.0 then 0
  else begin
    let p = 1.0 /. (mean +. 1.0) in
    let u = float t in
    (* Inverse-CDF sampling; support {0, 1, 2, ...} with E[X] = mean. *)
    int_of_float (Float.log1p (-.u) /. Float.log (1.0 -. p))
  end

let choose t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if Array.length weights = 0 || total <= 0.0 then
    invalid_arg "Rng.choose: need positive total weight";
  let x = float t *. total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
