(** HMAC-SHA-256 (RFC 2104).

    Stands in for the asymmetric signature of Sanctum's attestation chain:
    the simulated platform and the simulated remote verifier share the
    platform root key, so a MAC over (measurement, challenge, report data)
    plays the role of the attestation signature.  Documented as a
    substitution in DESIGN.md. *)

(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag. *)
val mac : key:string -> string -> string

(** [verify ~key ~tag msg] checks the tag in constant time with respect to
    tag contents. *)
val verify : key:string -> tag:string -> string -> bool
