(** SHA-256 (FIPS 180-4), implemented from scratch so the enclave
    measurement and attestation flow carries no external dependency.

    The security monitor measures enclave contents (code pages, entry point,
    EVRANGE) into a 32-byte digest at creation time, as in Sanctum's secure
    boot / attestation chain. *)

type digest = string
(** 32 raw bytes. *)

(** [digest s] hashes a whole string. *)
val digest : string -> digest

(** Incremental interface. *)
type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> unit

(** [finalize ctx] pads, produces the digest, and invalidates [ctx]. *)
val finalize : ctx -> digest

(** [to_hex d] is the lowercase hex rendering. *)
val to_hex : digest -> string
