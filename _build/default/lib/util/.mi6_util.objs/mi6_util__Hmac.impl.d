lib/util/hmac.ml: Bytes Char Sha256 String
