lib/util/rng.mli:
