lib/util/stats.ml: Format Hashtbl List String
