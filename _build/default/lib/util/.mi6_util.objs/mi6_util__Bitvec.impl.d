lib/util/bitvec.ml: Array Format List
