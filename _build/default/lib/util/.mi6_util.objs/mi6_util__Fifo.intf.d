lib/util/fifo.mli:
