lib/util/hmac.mli:
