lib/util/fifo.ml: Array List
