lib/util/table.mli:
