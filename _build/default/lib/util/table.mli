(** ASCII table rendering for the benchmark harness.

    The bench executable prints one table per paper figure; columns are
    right-aligned numbers with a left-aligned label column, in the style of
    the paper's per-benchmark bar charts flattened to text. *)

type t

(** [create ~title ~columns] starts a table.  The first column is the row
    label. *)
val create : title:string -> columns:string list -> t

(** [add_row t label cells] appends a row; [cells] must match the number of
    non-label columns. *)
val add_row : t -> string -> string list -> unit

(** [cell_f v] formats a float cell with one decimal. *)
val cell_f : float -> string

(** [cell_pct v] formats a percentage cell ("12.3%"). *)
val cell_pct : float -> string

(** [render t] is the formatted table. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit
