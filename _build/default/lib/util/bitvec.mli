(** Fixed-width mutable bit vectors.

    Used for the per-core machine-mode DRAM-region permission vector
    (Section 5.3 of the paper: one bit per DRAM region) and for directory
    sharer sets in the coherence protocol. *)

type t

(** [create n] is an [n]-bit vector with all bits clear. *)
val create : int -> t

(** [create_full n] is an [n]-bit vector with all bits set. *)
val create_full : int -> t

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

(** [set_all v] / [clear_all v] set or clear every bit. *)
val set_all : t -> unit

val clear_all : t -> unit

(** [popcount v] is the number of set bits. *)
val popcount : t -> int

(** [is_empty v] holds when no bit is set. *)
val is_empty : t -> bool

(** [disjoint a b] holds when no bit is set in both vectors.  Raises
    [Invalid_argument] on width mismatch.  The security monitor uses this to
    verify non-overlapping enclave resource allocations. *)
val disjoint : t -> t -> bool

(** [copy v] is an independent copy. *)
val copy : t -> t

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [iter_set f v] applies [f] to the index of every set bit, ascending. *)
val iter_set : (int -> unit) -> t -> unit

(** [of_indices n idxs] is an [n]-bit vector with exactly the bits in
    [idxs] set. *)
val of_indices : int -> int list -> t

(** [to_indices v] lists the set bit indices, ascending. *)
val to_indices : t -> int list

val pp : Format.formatter -> t -> unit
