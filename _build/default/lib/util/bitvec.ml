type t = { n : int; words : int array }

let bits_per_word = 62 (* stay clear of the tag bit on 64-bit OCaml ints *)

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitvec.create";
  { n; words = Array.make (max 1 (words_for n)) 0 }

let length v = v.n

let check v i =
  if i < 0 || i >= v.n then invalid_arg "Bitvec: index out of bounds"

let get v i =
  check v i;
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i =
  check v i;
  let w = i / bits_per_word in
  v.words.(w) <- v.words.(w) lor (1 lsl (i mod bits_per_word))

let clear v i =
  check v i;
  let w = i / bits_per_word in
  v.words.(w) <- v.words.(w) land lnot (1 lsl (i mod bits_per_word))

let assign v i b = if b then set v i else clear v i

let set_all v =
  for i = 0 to v.n - 1 do
    set v i
  done

let create_full n =
  let v = create n in
  set_all v;
  v

let clear_all v = Array.fill v.words 0 (Array.length v.words) 0

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let popcount v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words
let is_empty v = Array.for_all (fun w -> w = 0) v.words

let disjoint a b =
  if a.n <> b.n then invalid_arg "Bitvec.disjoint: width mismatch";
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let copy v = { n = v.n; words = Array.copy v.words }
let equal a b = a.n = b.n && a.words = b.words

let iter_set f v =
  for i = 0 to v.n - 1 do
    if get v i then f i
  done

let of_indices n idxs =
  let v = create n in
  List.iter (set v) idxs;
  v

let to_indices v =
  let acc = ref [] in
  iter_set (fun i -> acc := i :: !acc) v;
  List.rev !acc

let pp ppf v =
  for i = v.n - 1 downto 0 do
    Format.pp_print_char ppf (if get v i then '1' else '0')
  done
