type access_kind = Fetch | Load | Store | Walk

type access = {
  kind : access_kind;
  vaddr : int64 option;
  paddr : int;
  width : int;
}

type trap_info = { cause : Priv.cause; tval : int64; target : Priv.mode }

type step_result = {
  pc : int64;
  executed : Instr.t option;
  accesses : access list;
  trap : trap_info option;
  purged : bool;
}

type t = {
  mem : Phys_mem.t;
  state : Cpu_state.t;
  regions : Addr.regions;
  mutable firmware : firmware option;
  mutable on_purge : (unit -> unit) option;
  mutable accesses : access list; (* reversed, per step *)
  mutable purged : bool;
  mutable reservation : int64 option; (* LR/SC reservation address *)
}

and firmware = t -> cause:Priv.cause -> tval:int64 -> epc:int64 -> bool

exception Trap of Priv.exception_cause * int64 (* cause, tval *)

let create ?(regions = Addr.default_regions) ~mem ~hartid () =
  if Phys_mem.size_bytes mem <> regions.Addr.dram_bytes then
    invalid_arg "Fsim.create: memory size does not match region geometry";
  {
    mem;
    state = Cpu_state.create ~hartid;
    regions;
    firmware = None;
    on_purge = None;
    accesses = [];
    purged = false;
    reservation = None;
  }

let mem t = t.mem
let state t = t.state
let regions t = t.regions
let set_firmware t fw = t.firmware <- Some fw
let set_on_purge t f = t.on_purge <- Some f

(* MIP/MIE bit positions. *)
let mtip_bit = 7L

let set_mip_bit t bit v =
  let cur = Cpu_state.csr_raw t.state Csr.mip in
  let mask = Int64.shift_left 1L (Int64.to_int bit) in
  Cpu_state.set_csr_raw t.state Csr.mip
    (if v then Int64.logor cur mask else Int64.logand cur (Int64.lognot mask))

let raise_timer_interrupt t = set_mip_bit t mtip_bit true
let clear_timer_interrupt t = set_mip_bit t mtip_bit false

(* ------------------------------------------------------------------ *)
(* Physical access with MI6 region validation                          *)
(* ------------------------------------------------------------------ *)

(* Region permission for the current mode.  Machine mode bypasses the
   region bitvector (the monitor must reach all of DRAM); everything else
   is confined to the regions allowed in mregions. *)
let region_allowed t paddr =
  Addr.in_dram t.regions paddr
  &&
  match Cpu_state.mode t.state with
  | Priv.Machine -> true
  | Priv.Supervisor | Priv.User ->
    let r = Addr.region_of t.regions paddr in
    let mask = Cpu_state.csr_raw t.state Csr.mregions in
    Int64.logand (Int64.shift_right_logical mask r) 1L = 1L

let fault_for kind =
  match kind with
  | Fetch -> Priv.Instr_access_fault
  | Load -> Priv.Load_access_fault
  | Store -> Priv.Store_access_fault
  | Walk -> Priv.Region_fault

(* Validate-then-emit: an access that fails validation is never recorded,
   modeling MI6 hardware suppressing the request before it reaches the
   memory system. *)
let emit t ~kind ~vaddr ~paddr ~width =
  if not (Addr.in_dram t.regions paddr) then
    raise (Trap (fault_for kind, Int64.of_int paddr));
  if not (region_allowed t paddr) then
    raise (Trap (Priv.Region_fault, Int64.of_int paddr));
  (match (kind, Cpu_state.mode t.state) with
  | Fetch, Priv.Machine ->
    let mask = Cpu_state.csr_raw t.state Csr.mfetchmask in
    if mask <> 0L then begin
      let base = Cpu_state.csr_raw t.state Csr.mfetchbase in
      if Int64.logand (Int64.of_int paddr) mask <> base then
        raise (Trap (Priv.Instr_access_fault, Int64.of_int paddr))
    end
  | _ -> ());
  t.accesses <- { kind; vaddr; paddr; width } :: t.accesses

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)
(* ------------------------------------------------------------------ *)

type mem_op = Op_fetch | Op_load | Op_store

let page_fault_for = function
  | Op_fetch -> Priv.Instr_page_fault
  | Op_load -> Priv.Load_page_fault
  | Op_store -> Priv.Store_page_fault

let satp_mode_sv39 = 8L

let translation_on t =
  Cpu_state.mode t.state <> Priv.Machine
  && Int64.shift_right_logical (Cpu_state.csr_raw t.state Csr.satp) 60
     = satp_mode_sv39

let translate t ~vaddr ~op =
  if not (translation_on t) then begin
    (* Bare: physical = low bits of the virtual address. *)
    let paddr = Int64.to_int (Int64.logand vaddr 0x7FFFFFFFFFL) in
    paddr
  end
  else begin
    let satp = Cpu_state.csr_raw t.state Csr.satp in
    let root = Int64.to_int (Int64.logand satp 0xFFFFFFFFFFFL) * 4096 in
    match Page_table.walk t.mem ~root ~vaddr with
    | Page_table.Fault (_, steps) ->
      (* Walk steps performed before the fault was discovered were real
         physical accesses; validate and record them. *)
      List.iter
        (fun s ->
          emit t ~kind:Walk ~vaddr:None ~paddr:s.Page_table.pte_addr ~width:8)
        steps;
      raise (Trap (page_fault_for op, vaddr))
    | Page_table.Translated (leaf, steps) ->
      List.iter
        (fun s ->
          emit t ~kind:Walk ~vaddr:None ~paddr:s.Page_table.pte_addr ~width:8)
        steps;
      let perm = leaf.Page_table.perm in
      let mode = Cpu_state.mode t.state in
      let perm_ok =
        (match op with
        | Op_fetch -> perm.Page_table.x
        | Op_load -> perm.Page_table.r
        | Op_store -> perm.Page_table.w)
        &&
        match mode with
        | Priv.User -> perm.Page_table.u
        | Priv.Supervisor -> not perm.Page_table.u (* no SUM support *)
        | Priv.Machine -> true
      in
      if not perm_ok then raise (Trap (page_fault_for op, vaddr));
      leaf.Page_table.paddr
  end

(* ------------------------------------------------------------------ *)
(* Memory operations                                                   *)
(* ------------------------------------------------------------------ *)

let check_alignment op vaddr width =
  if Int64.rem vaddr (Int64.of_int width) <> 0L then begin
    let cause =
      match op with
      | Op_fetch -> Priv.Instr_addr_misaligned
      | Op_load -> Priv.Load_addr_misaligned
      | Op_store -> Priv.Store_addr_misaligned
    in
    raise (Trap (cause, vaddr))
  end

let load t ~vaddr ~width ~signed =
  check_alignment Op_load vaddr width;
  let paddr = translate t ~vaddr ~op:Op_load in
  emit t ~kind:Load ~vaddr:(Some vaddr) ~paddr ~width;
  let raw =
    match width with
    | 1 -> Int64.of_int (Phys_mem.read_u8 t.mem paddr)
    | 2 -> Int64.of_int (Phys_mem.read_u16 t.mem paddr)
    | 4 -> Int64.of_int (Phys_mem.read_u32 t.mem paddr)
    | 8 -> Phys_mem.read_u64 t.mem paddr
    | _ -> assert false
  in
  if signed && width < 8 then begin
    let shift = 64 - (8 * width) in
    Int64.shift_right (Int64.shift_left raw shift) shift
  end
  else raw

let store t ~vaddr ~width ~value =
  check_alignment Op_store vaddr width;
  (* Any store invalidates an outstanding LR reservation (conservative
     single-hart model). *)
  t.reservation <- None;
  let paddr = translate t ~vaddr ~op:Op_store in
  emit t ~kind:Store ~vaddr:(Some vaddr) ~paddr ~width;
  match width with
  | 1 -> Phys_mem.write_u8 t.mem paddr (Int64.to_int (Int64.logand value 0xFFL))
  | 2 -> Phys_mem.write_u16 t.mem paddr (Int64.to_int (Int64.logand value 0xFFFFL))
  | 4 ->
    Phys_mem.write_u32 t.mem paddr
      (Int64.to_int (Int64.logand value 0xFFFFFFFFL))
  | 8 -> Phys_mem.write_u64 t.mem paddr value
  | _ -> assert false

let fetch t ~vaddr =
  check_alignment Op_fetch vaddr 4;
  let paddr = translate t ~vaddr ~op:Op_fetch in
  emit t ~kind:Fetch ~vaddr:(Some vaddr) ~paddr ~width:4;
  Phys_mem.read_u32 t.mem paddr

(* ------------------------------------------------------------------ *)
(* ALU semantics                                                       *)
(* ------------------------------------------------------------------ *)


let alu_compute op a b =
  let shamt = Int64.to_int (Int64.logand b 63L) in
  match (op : Instr.alu_op) with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Sll -> Int64.shift_left a shamt
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Sltu -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Xor -> Int64.logxor a b
  | Srl -> Int64.shift_right_logical a shamt
  | Sra -> Int64.shift_right a shamt
  | Or -> Int64.logor a b
  | And -> Int64.logand a b

let alu_w_compute op a b =
  let a32 = Int64.to_int32 a and b32 = Int64.to_int32 b in
  let shamt = Int32.to_int (Int32.logand b32 31l) in
  let r32 =
    match (op : Instr.alu_w_op) with
    | Addw -> Int32.add a32 b32
    | Subw -> Int32.sub a32 b32
    | Sllw -> Int32.shift_left a32 shamt
    | Srlw -> Int32.shift_right_logical a32 shamt
    | Sraw -> Int32.shift_right a32 shamt
  in
  Int64.of_int32 r32

let mulhu a b =
  let lo v = Int64.logand v 0xFFFFFFFFL in
  let hi v = Int64.shift_right_logical v 32 in
  let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
  let t = Int64.add (Int64.mul a1 b0) (hi (Int64.mul a0 b0)) in
  let tl = Int64.add (lo t) (Int64.mul a0 b1) in
  Int64.add (Int64.add (Int64.mul a1 b1) (hi t)) (hi tl)

let mulh a b =
  let r = mulhu a b in
  let r = if Int64.compare a 0L < 0 then Int64.sub r b else r in
  if Int64.compare b 0L < 0 then Int64.sub r a else r

let mulhsu a b =
  let r = mulhu a b in
  if Int64.compare a 0L < 0 then Int64.sub r b else r

let muldiv_compute op a b =
  match (op : Instr.mul_op) with
  | Mul -> Int64.mul a b
  | Mulh -> mulh a b
  | Mulhsu -> mulhsu a b
  | Mulhu -> mulhu a b
  | Div ->
    if b = 0L then -1L
    else if a = Int64.min_int && b = -1L then Int64.min_int
    else Int64.div a b
  | Divu -> if b = 0L then -1L else Int64.unsigned_div a b
  | Rem ->
    if b = 0L then a
    else if a = Int64.min_int && b = -1L then 0L
    else Int64.rem a b
  | Remu -> if b = 0L then a else Int64.unsigned_rem a b

let muldiv_w_compute op a b =
  let a32 = Int64.to_int32 a and b32 = Int64.to_int32 b in
  let r32 =
    match (op : Instr.mul_w_op) with
    | Mulw -> Int32.mul a32 b32
    | Divw ->
      if b32 = 0l then -1l
      else if a32 = Int32.min_int && b32 = -1l then Int32.min_int
      else Int32.div a32 b32
    | Divuw -> if b32 = 0l then -1l else Int32.unsigned_div a32 b32
    | Remw ->
      if b32 = 0l then a32
      else if a32 = Int32.min_int && b32 = -1l then 0l
      else Int32.rem a32 b32
    | Remuw -> if b32 = 0l then a32 else Int32.unsigned_rem a32 b32
  in
  Int64.of_int32 r32

let amo_compute op a b =
  match (op : Instr.amo_op) with
  | Instr.Amoswap -> b
  | Instr.Amoadd -> Int64.add a b
  | Instr.Amoxor -> Int64.logxor a b
  | Instr.Amoand -> Int64.logand a b
  | Instr.Amoor -> Int64.logor a b
  | Instr.Amomin -> if Int64.compare a b <= 0 then a else b
  | Instr.Amomax -> if Int64.compare a b >= 0 then a else b
  | Instr.Amominu -> if Int64.unsigned_compare a b <= 0 then a else b
  | Instr.Amomaxu -> if Int64.unsigned_compare a b >= 0 then a else b

let amo_bytes = function Instr.W -> 4 | Instr.D -> 8

let branch_taken kind a b =
  match (kind : Instr.branch_kind) with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Int64.unsigned_compare a b < 0
  | Bgeu -> Int64.unsigned_compare a b >= 0

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let mstatus_tvm_bit = 20

let tvm_set t =
  Int64.logand
    (Int64.shift_right_logical (Cpu_state.csr_raw t.state Csr.mstatus)
       mstatus_tvm_bit)
    1L
  = 1L

let check_jump_alignment target =
  if Int64.logand target 3L <> 0L then
    raise (Trap (Priv.Instr_addr_misaligned, target))

(* Executes [instr]; returns the next pc. *)
let exec t instr ~pc ~word =
  let s = t.state in
  let rget = Cpu_state.get_reg s in
  let rset = Cpu_state.set_reg s in
  let next = Int64.add pc 4L in
  let illegal () = raise (Trap (Priv.Illegal_instruction, Int64.of_int word)) in
  match (instr : Instr.t) with
  | Lui { rd; imm } ->
    rset rd (Int64.of_int imm);
    next
  | Auipc { rd; imm } ->
    rset rd (Int64.add pc (Int64.of_int imm));
    next
  | Jal { rd; offset } ->
    let target = Int64.add pc (Int64.of_int offset) in
    check_jump_alignment target;
    rset rd next;
    target
  | Jalr { rd; rs1; offset } ->
    let target =
      Int64.logand
        (Int64.add (rget rs1) (Int64.of_int offset))
        (Int64.lognot 1L)
    in
    check_jump_alignment target;
    rset rd next;
    target
  | Branch { kind; rs1; rs2; offset } ->
    if branch_taken kind (rget rs1) (rget rs2) then begin
      let target = Int64.add pc (Int64.of_int offset) in
      check_jump_alignment target;
      target
    end
    else next
  | Load { kind; rd; rs1; offset } ->
    let vaddr = Int64.add (rget rs1) (Int64.of_int offset) in
    let width = Instr.load_bytes kind in
    let signed = match kind with Lbu | Lhu | Lwu -> false | _ -> true in
    rset rd (load t ~vaddr ~width ~signed);
    next
  | Store { kind; rs1; rs2; offset } ->
    let vaddr = Int64.add (rget rs1) (Int64.of_int offset) in
    store t ~vaddr ~width:(Instr.store_bytes kind) ~value:(rget rs2);
    next
  | Alu_imm { op; rd; rs1; imm } ->
    rset rd (alu_compute op (rget rs1) (Int64.of_int imm));
    next
  | Alu_imm_w { op; rd; rs1; imm } ->
    rset rd (alu_w_compute op (rget rs1) (Int64.of_int imm));
    next
  | Alu { op; rd; rs1; rs2 } ->
    rset rd (alu_compute op (rget rs1) (rget rs2));
    next
  | Alu_w { op; rd; rs1; rs2 } ->
    rset rd (alu_w_compute op (rget rs1) (rget rs2));
    next
  | Muldiv { op; rd; rs1; rs2 } ->
    rset rd (muldiv_compute op (rget rs1) (rget rs2));
    next
  | Muldiv_w { op; rd; rs1; rs2 } ->
    rset rd (muldiv_w_compute op (rget rs1) (rget rs2));
    next
  | Csr { op; rd; src; csr } -> begin
    (* satp access traps in S-mode when mstatus.TVM is set; the monitor
       uses this to interpose on virtual-memory management. *)
    if csr = Csr.satp && Cpu_state.mode s = Priv.Supervisor && tvm_set t then
      illegal ();
    let old =
      match Cpu_state.read_csr s csr with
      | Ok v -> v
      | Error Cpu_state.Illegal_csr -> illegal ()
    in
    let arg =
      match src with
      | Instr.Rs rs1 -> rget rs1
      | Instr.Uimm imm -> Int64.of_int imm
    in
    let skip_write =
      match (op, src) with
      | Instr.Csrrs, Instr.Rs 0 | Instr.Csrrc, Instr.Rs 0 -> true
      | Instr.Csrrs, Instr.Uimm 0 | Instr.Csrrc, Instr.Uimm 0 -> true
      | _ -> false
    in
    if not skip_write then begin
      let nv =
        match op with
        | Instr.Csrrw -> arg
        | Instr.Csrrs -> Int64.logor old arg
        | Instr.Csrrc -> Int64.logand old (Int64.lognot arg)
      in
      match Cpu_state.write_csr s csr nv with
      | Ok () -> ()
      | Error Cpu_state.Illegal_csr -> illegal ()
    end;
    rset rd old;
    next
  end
  | Lr { width; rd; rs1 } ->
    let vaddr = rget rs1 in
    let v = load t ~vaddr ~width:(amo_bytes width) ~signed:true in
    t.reservation <- Some vaddr;
    rset rd v;
    next
  | Sc { width; rd; rs1; rs2 } ->
    let vaddr = rget rs1 in
    (* Alignment is checked even on a failing SC. *)
    check_alignment Op_store vaddr (amo_bytes width);
    if t.reservation = Some vaddr then begin
      store t ~vaddr ~width:(amo_bytes width) ~value:(rget rs2);
      rset rd 0L
    end
    else begin
      t.reservation <- None;
      rset rd 1L
    end;
    next
  | Amo { op; width; rd; rs1; rs2 } ->
    let vaddr = rget rs1 in
    let old = load t ~vaddr ~width:(amo_bytes width) ~signed:true in
    let src =
      match width with
      | Instr.W -> Int64.of_int32 (Int64.to_int32 (rget rs2))
      | Instr.D -> rget rs2
    in
    let nv = amo_compute op old src in
    store t ~vaddr ~width:(amo_bytes width) ~value:nv;
    rset rd old;
    next
  | Ecall ->
    let cause =
      match Cpu_state.mode s with
      | Priv.User -> Priv.Ecall_from_u
      | Priv.Supervisor -> Priv.Ecall_from_s
      | Priv.Machine -> Priv.Ecall_from_m
    in
    raise (Trap (cause, 0L))
  | Ebreak -> raise (Trap (Priv.Breakpoint, pc))
  | Mret ->
    if Cpu_state.mode s <> Priv.Machine then illegal ();
    Cpu_state.pop_mret s
  | Sret ->
    if Cpu_state.mode s = Priv.User then illegal ();
    Cpu_state.pop_sret s
  | Wfi -> next
  | Fence -> next
  | Fence_i -> next
  | Sfence_vma _ ->
    (match Cpu_state.mode s with
    | Priv.User -> illegal ()
    | Priv.Supervisor -> if tvm_set t then illegal ()
    | Priv.Machine -> ());
    next
  | Purge ->
    if Cpu_state.mode s <> Priv.Machine then illegal ();
    t.purged <- true;
    (match t.on_purge with Some f -> f () | None -> ());
    next

(* ------------------------------------------------------------------ *)
(* Traps and interrupts                                                *)
(* ------------------------------------------------------------------ *)

let delegated t cause =
  let code = Int64.to_int (Int64.logand (Priv.cause_code cause) 0x3FL) in
  let reg =
    match cause with
    | Priv.Exception _ -> Csr.medeleg
    | Priv.Interrupt _ -> Csr.mideleg
  in
  Int64.logand (Int64.shift_right_logical (Cpu_state.csr_raw t.state reg) code) 1L
  = 1L

let trap_target t cause =
  match Cpu_state.mode t.state with
  | Priv.Machine -> Priv.Machine
  | Priv.Supervisor | Priv.User ->
    if delegated t cause then Priv.Supervisor else Priv.Machine

(* Takes the trap: either hands it to firmware (monitor model) or performs
   architectural trap entry.  Returns the trap_info for the step result. *)
let take_trap t ~cause ~tval ~epc =
  let target = trap_target t cause in
  let handled_by_firmware =
    target = Priv.Machine
    &&
    match t.firmware with
    | Some fw -> fw t ~cause ~tval ~epc
    | None -> false
  in
  if not handled_by_firmware then begin
    let handler = Cpu_state.push_trap t.state ~target ~cause ~tval ~pc:epc in
    Cpu_state.set_pc t.state handler
  end;
  { cause; tval; target }

let pending_interrupt t =
  let mip = Cpu_state.csr_raw t.state Csr.mip in
  let mie_mask = Cpu_state.csr_raw t.state Csr.mie in
  let pending = Int64.logand mip mie_mask in
  if Int64.logand (Int64.shift_right_logical pending 7) 1L = 1L then begin
    (* Machine timer interrupt: taken unless we are in M-mode with MIE
       clear. *)
    let take =
      match Cpu_state.mode t.state with
      | Priv.Machine -> Cpu_state.mie t.state
      | Priv.Supervisor | Priv.User -> true
    in
    if take then Some (Priv.Interrupt Priv.Timer_interrupt) else None
  end
  else None

(* ------------------------------------------------------------------ *)
(* Step                                                                *)
(* ------------------------------------------------------------------ *)

let step t =
  t.accesses <- [];
  t.purged <- false;
  let pc = Cpu_state.pc t.state in
  let finish ~executed ~trap =
    Cpu_state.bump_counters t.state ~cycles:1;
    { pc; executed; accesses = List.rev t.accesses; trap; purged = t.purged }
  in
  match pending_interrupt t with
  | Some cause ->
    let trap = take_trap t ~cause ~tval:0L ~epc:pc in
    finish ~executed:None ~trap:(Some trap)
  | None -> (
    match
      let word = fetch t ~vaddr:pc in
      match Encode.decode word with
      | None -> raise (Trap (Priv.Illegal_instruction, Int64.of_int word))
      | Some instr -> (instr, word)
    with
    | exception Trap (cause, tval) ->
      let trap = take_trap t ~cause:(Priv.Exception cause) ~tval ~epc:pc in
      finish ~executed:None ~trap:(Some trap)
    | instr, word -> (
      match exec t instr ~pc ~word with
      | next_pc ->
        Cpu_state.set_pc t.state next_pc;
        finish ~executed:(Some instr) ~trap:None
      | exception Trap (cause, tval) ->
        let trap = take_trap t ~cause:(Priv.Exception cause) ~tval ~epc:pc in
        finish ~executed:(Some instr) ~trap:(Some trap)))

let run t ~max_steps ~until =
  let rec go n =
    if n >= max_steps || until t then n
    else begin
      ignore (step t);
      go (n + 1)
    end
  in
  go 0

let load_program t (p : Asm.program) =
  Array.iteri
    (fun i w -> Phys_mem.write_u32 t.mem (p.Asm.base + (4 * i)) w)
    p.Asm.words
