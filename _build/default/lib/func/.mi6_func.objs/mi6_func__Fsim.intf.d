lib/func/fsim.mli: Addr Asm Cpu_state Instr Phys_mem Priv
