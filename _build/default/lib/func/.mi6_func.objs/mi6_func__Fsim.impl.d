lib/func/fsim.ml: Addr Array Asm Cpu_state Csr Encode Instr Int32 Int64 List Page_table Phys_mem Priv
