lib/func/cpu_state.mli: Csr Priv Reg Stdlib
