lib/func/cpu_state.ml: Array Csr Hashtbl Int64 Priv Reg
