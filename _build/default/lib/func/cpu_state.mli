(** Architectural state of one hart: registers, pc, privilege mode, CSRs.

    CSR accesses go through privilege checks ({!read_csr} / {!write_csr});
    the simulator's own bookkeeping uses the unchecked raw accessors. *)

type t

val create : hartid:int -> t

(** Register file; [x0] reads zero and ignores writes. *)
val get_reg : t -> Reg.t -> int64

val set_reg : t -> Reg.t -> int64 -> unit

val pc : t -> int64
val set_pc : t -> int64 -> unit
val mode : t -> Priv.mode
val set_mode : t -> Priv.mode -> unit

(** Raw CSR storage, no privilege checks. Unknown CSRs read zero. *)
val csr_raw : t -> Csr.t -> int64

val set_csr_raw : t -> Csr.t -> int64 -> unit

type csr_error = Illegal_csr

(** [read_csr t csr] checks that the current mode may access [csr]. *)
val read_csr : t -> Csr.t -> (int64, csr_error) Stdlib.result

(** [write_csr t csr v] additionally rejects read-only CSRs (address top
    bits [11]). *)
val write_csr : t -> Csr.t -> int64 -> (unit, csr_error) Stdlib.result

(** mstatus field helpers. *)

val mie : t -> bool
val set_mie : t -> bool -> unit
val sie : t -> bool
val set_sie : t -> bool -> unit

(** [push_trap t ~target ~cause ~tval ~pc] performs trap entry bookkeeping
    into machine or supervisor mode and returns the handler address from the
    relevant tvec CSR. *)
val push_trap :
  t -> target:Priv.mode -> cause:Priv.cause -> tval:int64 -> pc:int64 -> int64

(** [pop_mret t] / [pop_sret t] implement trap return; they restore the
    privilege stack and return the saved exception pc. *)
val pop_mret : t -> int64

val pop_sret : t -> int64

(** Cycle / retired-instruction counters (mirrored into the cycle/instret
    CSRs). *)
val bump_counters : t -> cycles:int -> unit
