type t = {
  regs : int64 array;
  mutable pc : int64;
  mutable mode : Priv.mode;
  csrs : (Csr.t, int64 ref) Hashtbl.t;
}

let create ~hartid =
  let t =
    {
      regs = Array.make 32 0L;
      pc = 0L;
      mode = Priv.Machine;
      csrs = Hashtbl.create 32;
    }
  in
  Hashtbl.add t.csrs Csr.mhartid (ref (Int64.of_int hartid));
  t

let get_reg t r =
  Reg.check r;
  if r = 0 then 0L else t.regs.(r)

let set_reg t r v =
  Reg.check r;
  if r <> 0 then t.regs.(r) <- v

let pc t = t.pc
let set_pc t v = t.pc <- v
let mode t = t.mode
let set_mode t m = t.mode <- m

let cell t csr =
  match Hashtbl.find_opt t.csrs csr with
  | Some r -> r
  | None ->
    let r = ref 0L in
    Hashtbl.add t.csrs csr r;
    r

let csr_raw t csr = !(cell t csr)
let set_csr_raw t csr v = cell t csr := v

type csr_error = Illegal_csr

(* cycle/instret are shadows of mcycle/minstret at user level; sstatus
   shadows mstatus. *)
let alias csr =
  if csr = Csr.cycle then Csr.mcycle
  else if csr = Csr.instret then Csr.minstret
  else if csr = Csr.sstatus then Csr.mstatus
  else if csr = Csr.sie then Csr.mie
  else if csr = Csr.sip then Csr.mip
  else csr

let read_csr t csr =
  if not (Csr.is_known csr) then Error Illegal_csr
  else if Priv.more_privileged (Csr.min_priv csr) t.mode then Error Illegal_csr
  else Ok (csr_raw t (alias csr))

let csr_read_only csr = (csr lsr 10) land 0x3 = 0x3

let write_csr t csr v =
  if not (Csr.is_known csr) then Error Illegal_csr
  else if Priv.more_privileged (Csr.min_priv csr) t.mode then Error Illegal_csr
  else if csr_read_only csr then Error Illegal_csr
  else begin
    set_csr_raw t (alias csr) v;
    Ok ()
  end

(* mstatus bit positions. *)
let bit_sie = 1
let bit_mie = 3
let bit_spie = 5
let bit_mpie = 7
let bit_spp = 8
let bit_mpp = 11 (* 2 bits *)

let get_bit t pos = Int64.logand (Int64.shift_right_logical (csr_raw t Csr.mstatus) pos) 1L = 1L

let set_bit t pos b =
  let v = csr_raw t Csr.mstatus in
  let mask = Int64.shift_left 1L pos in
  set_csr_raw t Csr.mstatus
    (if b then Int64.logor v mask else Int64.logand v (Int64.lognot mask))

let get_field t pos width =
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical (csr_raw t Csr.mstatus) pos)
       (Int64.of_int ((1 lsl width) - 1)))

let set_field t pos width v =
  let cur = csr_raw t Csr.mstatus in
  let mask = Int64.shift_left (Int64.of_int ((1 lsl width) - 1)) pos in
  let nv =
    Int64.logor
      (Int64.logand cur (Int64.lognot mask))
      (Int64.shift_left (Int64.of_int (v land ((1 lsl width) - 1))) pos)
  in
  set_csr_raw t Csr.mstatus nv

let mie t = get_bit t bit_mie
let set_mie t b = set_bit t bit_mie b
let sie t = get_bit t bit_sie
let set_sie t b = set_bit t bit_sie b

let push_trap t ~target ~cause ~tval ~pc =
  let code = Priv.cause_code cause in
  (match target with
  | Priv.Machine ->
    set_csr_raw t Csr.mepc pc;
    set_csr_raw t Csr.mcause code;
    set_csr_raw t Csr.mtval tval;
    set_bit t bit_mpie (mie t);
    set_mie t false;
    set_field t bit_mpp 2 (Priv.mode_to_int t.mode)
  | Priv.Supervisor ->
    set_csr_raw t Csr.sepc pc;
    set_csr_raw t Csr.scause code;
    set_csr_raw t Csr.stval tval;
    set_bit t bit_spie (sie t);
    set_sie t false;
    set_bit t bit_spp (t.mode = Priv.Supervisor)
  | Priv.User -> invalid_arg "Cpu_state.push_trap: cannot trap to user mode");
  t.mode <- target;
  let tvec =
    match target with
    | Priv.Machine -> csr_raw t Csr.mtvec
    | Priv.Supervisor -> csr_raw t Csr.stvec
    | Priv.User -> assert false
  in
  (* Direct mode only (tvec low bits ignored). *)
  Int64.logand tvec (Int64.lognot 3L)

let pop_mret t =
  set_mie t (get_bit t bit_mpie);
  set_bit t bit_mpie true;
  t.mode <- Priv.mode_of_int (get_field t bit_mpp 2);
  set_field t bit_mpp 2 0;
  csr_raw t Csr.mepc

let pop_sret t =
  set_sie t (get_bit t bit_spie);
  set_bit t bit_spie true;
  t.mode <- (if get_bit t bit_spp then Priv.Supervisor else Priv.User);
  set_bit t bit_spp false;
  csr_raw t Csr.sepc

let bump_counters t ~cycles =
  set_csr_raw t Csr.mcycle (Int64.add (csr_raw t Csr.mcycle) (Int64.of_int cycles));
  set_csr_raw t Csr.minstret (Int64.add (csr_raw t Csr.minstret) 1L)
