(* Command-line front end for the simulator.

   Subcommands:
     run     run SPEC models on processor variants (default)
     multi   multiprogrammed multicore run (BASE vs secure MI6 machine)
     attack  side-channel verdicts (prime+probe, MSHR, DRAM banks)
     area    structural area model *)

open Cmdliner
open Mi6_core

(* ------------------------------------------------------------------ *)
(* Converters                                                          *)
(* ------------------------------------------------------------------ *)

let bench_conv =
  let parse s =
    match Mi6_workload.Spec.of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S" s))
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Mi6_workload.Spec.name b))

let variant_conv =
  let parse s =
    match Config.variant_of_name s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (Config.variant_name v))

let warmup =
  Arg.(value & opt int 200_000 & info [ "warmup" ] ~doc:"Warmup µops (untimed).")

let measure =
  Arg.(value & opt int 1_000_000 & info [ "measure" ] ~doc:"Measured µops.")

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let print_result ~label ~variant r ~verbose =
  Printf.printf
    "%-11s %-8s cycles=%-10d instrs=%-9d ipc=%.3f br/ki=%.0f br-mpki=%.1f \
     llc-mpki=%.1f l1d-mpki=%.1f l1i-mpki=%.1f purge-stall=%d\n%!"
    label
    (Config.variant_name variant)
    r.Tmachine.cycles r.Tmachine.instrs (Tmachine.ipc r)
    (Tmachine.mpki r "core.branches")
    (Tmachine.mpki r "core.mispredicts")
    (Tmachine.mpki r "llc.misses")
    (Tmachine.mpki r "l1d.0.misses")
    (Tmachine.mpki r "l1i.0.misses")
    (Mi6_util.Stats.get r.Tmachine.stats "core.purge_stall_cycles");
  if verbose then Mi6_util.Stats.pp Format.std_formatter r.Tmachine.stats

let run_cmd =
  let benches =
    Arg.(value & opt (list bench_conv) Mi6_workload.Spec.all
         & info [ "b"; "bench" ] ~doc:"Benchmarks (comma separated).")
  in
  let variants =
    Arg.(value & opt (list variant_conv) [ Config.Base ]
         & info [ "v"; "variant" ] ~doc:"Processor variants (comma separated).")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Dump all counters.") in
  let run benches variants warmup measure verbose =
    List.iter
      (fun bench ->
        List.iter
          (fun variant ->
            let r = Tmachine.run_spec ~variant ~bench ~warmup ~measure in
            print_result ~label:(Mi6_workload.Spec.name bench) ~variant r
              ~verbose)
          variants)
      benches
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run SPEC models on processor variants")
    Term.(const run $ benches $ variants $ warmup $ measure $ verbose)

(* ------------------------------------------------------------------ *)
(* multi                                                               *)
(* ------------------------------------------------------------------ *)

let multi_cmd =
  let benches =
    Arg.(value
         & opt (list bench_conv)
             [ Mi6_workload.Spec.Gcc; Mi6_workload.Spec.Libquantum ]
         & info [ "b"; "bench" ]
             ~doc:"One benchmark per core (comma separated).")
  in
  let secure =
    Arg.(value & flag
         & info [ "secure" ]
             ~doc:"Use the MI6 secure machine (Figure 3 LLC + purge) instead \
                   of BASE.")
  in
  let run benches secure warmup measure =
    let benches = Array.of_list benches in
    let cores = Array.length benches in
    let timing =
      if secure then Config.secure_multicore ~cores
      else Config.timing ~cores Config.Base
    in
    let rs = Tmachine.run_multi ~timing ~benches ~warmup ~measure in
    Array.iteri
      (fun i r ->
        Printf.printf "core %d: %-11s cycles=%-10d ipc=%.3f (%s machine)\n" i
          (Mi6_workload.Spec.name benches.(i))
          r.Tmachine.cycles (Tmachine.ipc r)
          (if secure then "MI6" else "BASE"))
      rs
  in
  Cmd.v
    (Cmd.info "multi" ~doc:"multiprogrammed multicore run")
    Term.(const run $ benches $ secure $ warmup $ measure)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

let attack_cmd =
  let run () =
    let verdict name leaky =
      Printf.printf "%-46s %s\n" name
        (if leaky then "LEAKS" else "no leak (bit-identical)")
    in
    let open Noninterference in
    verdict "prime+probe, baseline LLC"
      (leaks [ prime_probe baseline_setup ~secret:true;
               prime_probe baseline_setup ~secret:false ]);
    verdict "prime+probe, MI6 LLC"
      (leaks [ prime_probe mi6_setup ~secret:true;
               prime_probe mi6_setup ~secret:false ]);
    verdict "MSHR/queue contention, baseline LLC"
      (leaks [ mshr_channel baseline_setup ~victim_floods:true;
               mshr_channel baseline_setup ~victim_floods:false ]);
    verdict "MSHR/queue contention, MI6 LLC"
      (leaks [ mshr_channel mi6_setup ~victim_floods:true;
               mshr_channel mi6_setup ~victim_floods:false ]);
    verdict "DRAM banks, FR-FCFS controller"
      (leaks [ dram_bank_channel ~reordering:true ~victim_same_bank:true;
               dram_bank_channel ~reordering:true ~victim_same_bank:false ]);
    verdict "DRAM banks, constant-latency controller"
      (leaks [ dram_bank_channel ~reordering:false ~victim_same_bank:true;
               dram_bank_channel ~reordering:false ~victim_same_bank:false ])
  in
  Cmd.v (Cmd.info "attack" ~doc:"side-channel experiment verdicts")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* area                                                                *)
(* ------------------------------------------------------------------ *)

let area_cmd =
  let cores =
    Arg.(value & opt int 1 & info [ "cores" ] ~doc:"Number of cores.")
  in
  let run cores =
    List.iter
      (fun c ->
        Printf.printf "%-70s %8d %8d\n" c.Area_model.name c.Area_model.base_bits
          c.Area_model.mi6_extra_bits)
      (Area_model.components ~cores);
    let s = Area_model.summary ~cores in
    Printf.printf "TOTAL base=%d extra=%d -> +%.2f%%\n" s.Area_model.base_bits
      s.Area_model.extra_bits s.Area_model.percent
  in
  Cmd.v (Cmd.info "area" ~doc:"structural area model") Term.(const run $ cores)

let () =
  let doc = "cycle-level MI6 / RiscyOO simulator" in
  exit
    (Cmd.eval
       (Cmd.group ~default:Term.(ret (const (`Help (`Pager, None))))
          (Cmd.info "mi6_sim" ~doc)
          [ run_cmd; multi_cmd; attack_cmd; area_cmd ]))
