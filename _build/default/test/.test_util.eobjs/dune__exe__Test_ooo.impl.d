test/test_ooo.ml: Alcotest Array Btb Controller Core Core_config L1 Link List Llc Mi6_cache Mi6_coherence Mi6_dram Mi6_llc Mi6_ooo Mi6_util Printf Queue Ras Rng Stats Tournament Uop
