test/test_noninterference.mli:
