test/test_util.ml: Alcotest Array Bitvec Char Fifo Hmac List Mi6_util QCheck QCheck_alcotest Rng Sha256 Stats String Table
