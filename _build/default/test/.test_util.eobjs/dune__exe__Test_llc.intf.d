test/test_llc.mli:
