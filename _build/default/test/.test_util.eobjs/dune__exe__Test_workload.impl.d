test/test_workload.ml: Alcotest List Mi6_ooo Mi6_workload Printf QCheck QCheck_alcotest Spec Synth Uop
