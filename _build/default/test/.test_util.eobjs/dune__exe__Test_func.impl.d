test/test_func.ml: Addr Alcotest Array Asm Cpu_state Csr Fsim Int64 List Mi6_func Mi6_isa Mi6_mem Page_table Phys_mem Priv Reg
