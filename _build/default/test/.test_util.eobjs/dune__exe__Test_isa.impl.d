test/test_isa.ml: Alcotest Array Asm Char Csr Encode Instr Int64 List Mi6_isa Printf Priv QCheck QCheck_alcotest Reg String
