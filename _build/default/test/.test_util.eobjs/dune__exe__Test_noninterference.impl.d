test/test_noninterference.ml: Alcotest Index List Llc Mi6_cache Mi6_core Mi6_llc Noninterference QCheck QCheck_alcotest
