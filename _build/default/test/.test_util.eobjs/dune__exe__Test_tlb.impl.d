test/test_tlb.ml: Alcotest List Mi6_tlb Ptw QCheck QCheck_alcotest Queue Tlb Trans_cache
