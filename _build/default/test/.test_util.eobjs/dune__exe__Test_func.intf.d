test/test_func.mli:
