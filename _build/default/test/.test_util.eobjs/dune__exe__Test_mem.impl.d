test/test_mem.ml: Addr Alcotest Hashtbl Int64 List Mi6_mem Page_table Phys_mem Printf QCheck QCheck_alcotest
