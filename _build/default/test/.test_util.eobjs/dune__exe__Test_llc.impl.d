test/test_llc.ml: Alcotest Array Hashtbl Hierarchy Index L1 List Llc Mi6_cache Mi6_coherence Mi6_llc Mi6_mem Mi6_util Msi Printf QCheck QCheck_alcotest Rng Stats
