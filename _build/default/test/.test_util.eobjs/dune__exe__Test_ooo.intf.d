test/test_ooo.mli:
