(* Tests for the coherent memory hierarchy: L1s + LLC (Figures 2 and 3)
   + DRAM, driven directly with line requests. *)

open Mi6_util
open Mi6_coherence
open Mi6_cache
open Mi6_llc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let const_dram = Hierarchy.Const_dram { latency = 120; max_outstanding = 24 }

let make ?(cores = 2) ?(security = Llc.baseline_security) ?(llc_mshrs = 16)
    ?(mshr_banks = 1) ?(strict_bank_stall = false) ?(index = Index.flat ~set_bits:10)
    () =
  let stats = Stats.create () in
  let llc_cfg =
    {
      (Llc.default_config ~cores) with
      Llc.mshrs = llc_mshrs;
      mshr_banks;
      strict_bank_stall;
      index;
    }
  in
  let h =
    Hierarchy.create ~llc:llc_cfg ~security ~dram:const_dram ~stats ()
  in
  (h, stats)

(* Issue a single request and run until it completes; returns latency. *)
let timed_access h ~core ~line ~store ~id =
  Hierarchy.request h ~core ~line ~store ~id;
  let issued = Hierarchy.now h in
  let rec wait budget =
    if budget = 0 then Alcotest.fail "request never completed";
    Hierarchy.tick h;
    match Hierarchy.take_completions h ~core with
    | [] -> wait (budget - 1)
    | [ (got, at) ] ->
      check_int "completion id" id got;
      at - issued
    | _ -> Alcotest.fail "unexpected extra completions"
  in
  wait 2000

let test_cold_miss_then_hit () =
  let h, stats = make () in
  let miss_lat = timed_access h ~core:0 ~line:100 ~store:false ~id:1 in
  check_bool
    (Printf.sprintf "miss latency %d covers DRAM" miss_lat)
    true
    (miss_lat >= 120 && miss_lat <= 160);
  let hit_lat = timed_access h ~core:0 ~line:100 ~store:false ~id:2 in
  check_bool (Printf.sprintf "hit latency %d is small" hit_lat) true (hit_lat <= 4);
  check_int "one llc miss" 1 (Stats.get stats "llc.misses");
  check_int "one l1 hit" 1 (Stats.get stats "l1.0.hits")

let test_second_core_miss_hits_llc () =
  let h, _ = make () in
  ignore (timed_access h ~core:0 ~line:7 ~store:false ~id:1);
  (* Core 1 misses its L1 but hits the LLC: much faster than DRAM. *)
  let lat = timed_access h ~core:1 ~line:7 ~store:false ~id:2 in
  check_bool (Printf.sprintf "llc hit latency %d" lat) true
    (lat > 4 && lat < 60)

let test_store_gives_m_state () =
  let h, _ = make () in
  ignore (timed_access h ~core:0 ~line:3 ~store:true ~id:1);
  check_bool "l1 holds M" true (L1.probe (Hierarchy.l1 h ~core:0) ~line:3 = Msi.M);
  check_bool "llc has line" true (Llc.probe (Hierarchy.llc h) ~line:3)

let test_read_downgrades_owner () =
  let h, stats = make () in
  ignore (timed_access h ~core:0 ~line:3 ~store:true ~id:1);
  ignore (timed_access h ~core:1 ~line:3 ~store:false ~id:2);
  check_bool "owner downgraded to S" true
    (L1.probe (Hierarchy.l1 h ~core:0) ~line:3 = Msi.S);
  check_bool "reader has S" true
    (L1.probe (Hierarchy.l1 h ~core:1) ~line:3 = Msi.S);
  check_bool "a downgrade was sent" true
    (Stats.get stats "llc.downgrades_sent" >= 1);
  check_bool "dirty data written back to LLC" true
    (Stats.get stats "l1.0.writebacks" >= 1)

let test_write_invalidates_sharers () =
  let h, _ = make () in
  ignore (timed_access h ~core:0 ~line:3 ~store:false ~id:1);
  ignore (timed_access h ~core:1 ~line:3 ~store:false ~id:2);
  ignore (timed_access h ~core:0 ~line:3 ~store:true ~id:3);
  check_bool "writer has M" true
    (L1.probe (Hierarchy.l1 h ~core:0) ~line:3 = Msi.M);
  check_bool "sharer invalidated" true
    (L1.probe (Hierarchy.l1 h ~core:1) ~line:3 = Msi.I)

let test_l1_eviction_keeps_llc () =
  let h, stats = make () in
  (* L1: 64 sets, 8 ways.  Nine lines mapping to L1 set 0 force one
     eviction; the LLC (1024 sets) keeps them all. *)
  for k = 0 to 8 do
    ignore (timed_access h ~core:0 ~line:(k * 64 * 1024) ~store:false ~id:k)
  done;
  check_bool "l1 evicted something" true (Stats.get stats "l1.0.evictions" >= 1);
  let llc = Hierarchy.llc h in
  for k = 0 to 8 do
    check_bool "llc still holds line" true (Llc.probe llc ~line:(k * 64 * 1024))
  done

let test_llc_replacement_evicts () =
  let h, stats = make () in
  (* 17 lines mapping to LLC set 0 (stride 1024 lines) force one LLC
     replacement; the replaced line must also leave the (inclusive) L1. *)
  for k = 0 to 16 do
    ignore (timed_access h ~core:0 ~line:(k * 1024) ~store:false ~id:k)
  done;
  check_bool "llc replaced a line" true (Stats.get stats "llc.replacements" >= 1);
  let llc = Hierarchy.llc h in
  let present = ref 0 in
  let l1_present = ref 0 in
  for k = 0 to 16 do
    if Llc.probe llc ~line:(k * 1024) then incr present;
    if L1.probe (Hierarchy.l1 h ~core:0) ~line:(k * 1024) <> Msi.I then
      incr l1_present
  done;
  check_int "exactly 16 of 17 in llc" 16 !present;
  check_bool "inclusion: L1 subset of LLC" true (!l1_present <= !present)

let test_dirty_llc_victim_written_back () =
  let h, stats = make () in
  (* Dirty a line in the LLC (store, then L1-evict it via L1-set conflicts
     so the dirty data lands in the LLC), then force an LLC replacement of
     that line. *)
  ignore (timed_access h ~core:0 ~line:0 ~store:true ~id:0);
  for k = 1 to 8 do
    (* Same L1 set (stride 64), different LLC sets. *)
    ignore (timed_access h ~core:0 ~line:(k * 64) ~store:false ~id:k)
  done;
  (* Now thrash LLC set 0 (stride 1024 lines = same LLC set): the dirty
     line 0 is either already dirty in the LLC (L1-evicted) or still M in
     the L1, in which case the victim downgrade collects the dirty data —
     both paths end in a DRAM write. *)
  (* Store to every conflicting line so each LLC victim is dirty: the
     first replacement must produce a DRAM write regardless of which way
     the pseudo-random policy picks. *)
  for k = 1 to 20 do
    ignore (timed_access h ~core:0 ~line:(k * 1024) ~store:true ~id:(100 + k))
  done;
  check_bool "dram saw a write" true (Stats.get stats "dram.writes" >= 1)

let test_mshr_merge () =
  let h, stats = make () in
  Hierarchy.request h ~core:0 ~line:42 ~store:false ~id:1;
  Hierarchy.tick h;
  (* Second request to the same line while the miss is outstanding. *)
  Hierarchy.request h ~core:0 ~line:42 ~store:false ~id:2;
  let done_ids = ref [] in
  for _ = 1 to 400 do
    Hierarchy.tick h;
    List.iter
      (fun (id, _) -> done_ids := id :: !done_ids)
      (Hierarchy.take_completions h ~core:0)
  done;
  Alcotest.(check (list int)) "both ids complete" [ 1; 2 ]
    (List.sort compare !done_ids);
  check_int "only one llc miss" 1 (Stats.get stats "llc.misses");
  check_bool "merge counted" true (Stats.get stats "l1.0.mshr_merges" >= 1)

let test_llc_mshr_exhaustion_stalls () =
  (* Tiny LLC MSHR file: parallel misses from both cores must hit
     allocation stalls but still all complete. *)
  let h, stats = make ~llc_mshrs:2 () in
  for k = 0 to 5 do
    Hierarchy.request h ~core:0 ~line:(1000 + (k * 1024)) ~store:false ~id:k;
    Hierarchy.request h ~core:1 ~line:(5000 + (k * 1024)) ~store:false
      ~id:(10 + k);
    Hierarchy.tick h
  done;
  ignore (Hierarchy.run_until_quiescent h ~max_cycles:5000);
  check_bool "allocation stalls observed" true
    (Stats.get stats "llc.mshr_alloc_stalls" > 0);
  let c0 = Hierarchy.take_completions h ~core:0 in
  let c1 = Hierarchy.take_completions h ~core:1 in
  check_int "all core0 requests completed" 6 (List.length c0);
  check_int "all core1 requests completed" 6 (List.length c1)

let test_banked_mshr_strict_stall () =
  let h, stats =
    make ~cores:1 ~llc_mshrs:4 ~mshr_banks:4 ~strict_bank_stall:true ()
  in
  (* All requests map to bank 0 (sets ≡ 0 mod 4): only 1 MSHR usable, and
     with strict stall any full bank freezes allocation. *)
  for k = 0 to 5 do
    Hierarchy.request h ~core:0 ~line:(k * 4096) ~store:false ~id:k;
    Hierarchy.tick h;
    Hierarchy.tick h
  done;
  ignore (Hierarchy.run_until_quiescent h ~max_cycles:8000);
  check_bool "bank conflicts stall allocation" true
    (Stats.get stats "llc.mshr_alloc_stalls" > 0);
  check_int "all done" 6 (List.length (Hierarchy.take_completions h ~core:0))

let test_secure_dq_retry_path () =
  let h, stats = make ~security:Llc.mi6_security ~cores:2 () in
  (* Make LLC set 0 full of dirty lines, then evict: every replacement of
     a dirty victim must go through the one-cycle-dequeue retry path. *)
  for k = 0 to 15 do
    ignore (timed_access h ~core:0 ~line:(k * 1024) ~store:true ~id:k)
  done;
  (* L1 evictions push dirty data to LLC; now force LLC replacements. *)
  for k = 16 to 24 do
    ignore (timed_access h ~core:0 ~line:(k * 1024) ~store:false ~id:k)
  done;
  check_bool "retry path exercised" true (Stats.get stats "llc.dq_retries" >= 1);
  check_int "baseline double-dequeue never used" 0
    (Stats.get stats "llc.dq_double_dequeues")

let test_baseline_dq_double_dequeue () =
  let h, stats = make ~security:Llc.baseline_security ~cores:2 () in
  for k = 0 to 15 do
    ignore (timed_access h ~core:0 ~line:(k * 1024) ~store:true ~id:k)
  done;
  for k = 16 to 24 do
    ignore (timed_access h ~core:0 ~line:(k * 1024) ~store:false ~id:k)
  done;
  check_bool "double dequeue exercised" true
    (Stats.get stats "llc.dq_double_dequeues" >= 1);
  check_int "no retries in baseline" 0 (Stats.get stats "llc.dq_retries")

let test_rr_arbiter_idle_slots () =
  let h, stats = make ~security:Llc.mi6_security ~cores:2 () in
  ignore (timed_access h ~core:0 ~line:9 ~store:false ~id:1);
  (* With two cores and only core 0 active, about half the slots idle. *)
  check_bool "idle slots counted" true (Stats.get stats "llc.arb_idle_slots" > 0)

let test_invalidate_region () =
  let geometry = Mi6_mem.Addr.default_regions in
  let h, _ = make ~cores:2 () in
  let region_lines = geometry.Mi6_mem.Addr.region_bytes / 64 in
  (* Line in region 0 and line in region 1. *)
  ignore (timed_access h ~core:0 ~line:5 ~store:false ~id:1);
  ignore (timed_access h ~core:0 ~line:(region_lines + 5) ~store:false ~id:2);
  let llc = Hierarchy.llc h in
  (* A line still shared by an L1 must make the scrub fail. *)
  (try
     Llc.invalidate_region llc ~geometry ~region:0;
     Alcotest.fail "expected failure: line still in L1"
   with Failure _ -> ());
  (* Purge the L1 so nothing is shared, then scrub region 0. *)
  let l1 = Hierarchy.l1 h ~core:0 in
  L1.begin_flush l1;
  let rec drain budget =
    if budget = 0 then Alcotest.fail "flush did not finish";
    let finished = L1.flush_step l1 in
    Hierarchy.tick h;
    if not finished then drain (budget - 1)
  in
  drain 10_000;
  ignore (Hierarchy.run_until_quiescent h ~max_cycles:1000);
  Llc.invalidate_region llc ~geometry ~region:0;
  check_bool "region-0 line gone" false (Llc.probe llc ~line:5);
  check_bool "region-1 line kept" true (Llc.probe llc ~line:(region_lines + 5))

let test_determinism () =
  let run () =
    let h, _ = make ~security:Llc.mi6_security () in
    let trace = ref [] in
    let rng = Rng.of_int 77 in
    for i = 0 to 50 do
      if Hierarchy.can_accept h ~core:0 then
        Hierarchy.request h ~core:0
          ~line:(Rng.int rng 4096)
          ~store:(Rng.bool rng ~p:0.3) ~id:i;
      Hierarchy.tick h;
      List.iter
        (fun (id, at) -> trace := (id, at) :: !trace)
        (Hierarchy.take_completions h ~core:0)
    done;
    ignore (Hierarchy.run_until_quiescent h ~max_cycles:10_000);
    List.iter
      (fun (id, at) -> trace := (id, at) :: !trace)
      (Hierarchy.take_completions h ~core:0);
    !trace
  in
  check_bool "two identical runs produce identical completion traces" true
    (run () = run ())

(* Liveness + exactly-once completion under random two-core traffic. *)
let prop_random_traffic_completes =
  QCheck.Test.make ~name:"random traffic: every request completes exactly once"
    ~count:30
    QCheck.(pair int (int_range 1 60))
    (fun (seed, nreqs) ->
      let h, _ = make ~security:Llc.mi6_security () in
      let rng = Rng.of_int seed in
      let issued = Array.make 2 0 in
      let completed = Hashtbl.create 64 in
      let next_id = ref 0 in
      while issued.(0) < nreqs || issued.(1) < nreqs do
        for core = 0 to 1 do
          if issued.(core) < nreqs && Hierarchy.can_accept h ~core then begin
            let id = !next_id in
            incr next_id;
            (* Small line pool to provoke conflicts and coherence. *)
            Hierarchy.request h ~core
              ~line:(Rng.int rng 64 * 1024)
              ~store:(Rng.bool rng ~p:0.4)
              ~id;
            issued.(core) <- issued.(core) + 1
          end
        done;
        Hierarchy.tick h;
        for core = 0 to 1 do
          List.iter
            (fun (id, _) ->
              if Hashtbl.mem completed id then failwith "duplicate completion";
              Hashtbl.add completed id ())
            (Hierarchy.take_completions h ~core)
        done
      done;
      ignore (Hierarchy.run_until_quiescent h ~max_cycles:100_000);
      for core = 0 to 1 do
        List.iter
          (fun (id, _) ->
            if Hashtbl.mem completed id then failwith "duplicate completion";
            Hashtbl.add completed id ())
          (Hierarchy.take_completions h ~core)
      done;
      Hashtbl.length completed = 2 * nreqs)

(* Inclusion: the LLC is inclusive of the L1s — any line valid in an L1
   must be present in the LLC, under arbitrary traffic. *)
let prop_inclusion =
  QCheck.Test.make ~name:"LLC inclusion invariant" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let h, _ = make () in
      let rng = Rng.of_int seed in
      let id = ref 0 in
      let lines = Array.init 64 (fun k -> (k mod 24) * 1024 * 3 / 3 + (k * 513)) in
      for _ = 1 to 150 do
        for core = 0 to 1 do
          if Hierarchy.can_accept h ~core then begin
            Hierarchy.request h ~core
              ~line:lines.(Rng.int rng 64)
              ~store:(Rng.bool rng ~p:0.4)
              ~id:!id;
            incr id
          end
        done;
        Hierarchy.tick h
      done;
      ignore (Hierarchy.run_until_quiescent h ~max_cycles:100_000);
      Array.for_all
        (fun line ->
          let in_l1 =
            L1.probe (Hierarchy.l1 h ~core:0) ~line <> Msi.I
            || L1.probe (Hierarchy.l1 h ~core:1) ~line <> Msi.I
          in
          (not in_l1) || Llc.probe (Hierarchy.llc h) ~line)
        lines)

(* Coherence safety: after quiescence, at most one core holds any line in
   M, and M excludes other sharers. *)
let prop_msi_invariant =
  QCheck.Test.make ~name:"MSI single-writer invariant" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let h, _ = make () in
      let rng = Rng.of_int seed in
      let id = ref 0 in
      for _ = 1 to 120 do
        for core = 0 to 1 do
          if Hierarchy.can_accept h ~core then begin
            Hierarchy.request h ~core
              ~line:(Rng.int rng 16 * 1024)
              ~store:(Rng.bool rng ~p:0.5)
              ~id:!id;
            incr id
          end
        done;
        Hierarchy.tick h
      done;
      ignore (Hierarchy.run_until_quiescent h ~max_cycles:100_000);
      let ok = ref true in
      for k = 0 to 15 do
        let line = k * 1024 in
        let s0 = L1.probe (Hierarchy.l1 h ~core:0) ~line in
        let s1 = L1.probe (Hierarchy.l1 h ~core:1) ~line in
        if not (Msi.compatible s0 s1) then ok := false
      done;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_llc"
    [
      ( "basic",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "llc hit from second core" `Quick
            test_second_core_miss_hits_llc;
          Alcotest.test_case "store gives M" `Quick test_store_gives_m_state;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "read downgrades owner" `Quick
            test_read_downgrades_owner;
          Alcotest.test_case "write invalidates sharers" `Quick
            test_write_invalidates_sharers;
          Alcotest.test_case "l1 eviction keeps llc" `Quick
            test_l1_eviction_keeps_llc;
          Alcotest.test_case "llc replacement" `Quick test_llc_replacement_evicts;
          Alcotest.test_case "dirty victim writeback" `Quick
            test_dirty_llc_victim_written_back;
        ] );
      ( "mshr",
        [
          Alcotest.test_case "merge to one miss" `Quick test_mshr_merge;
          Alcotest.test_case "exhaustion stalls" `Quick
            test_llc_mshr_exhaustion_stalls;
          Alcotest.test_case "strict bank stall" `Quick
            test_banked_mshr_strict_stall;
        ] );
      ( "security_structures",
        [
          Alcotest.test_case "secure dq retry" `Quick test_secure_dq_retry_path;
          Alcotest.test_case "baseline double dequeue" `Quick
            test_baseline_dq_double_dequeue;
          Alcotest.test_case "rr arbiter idles" `Quick test_rr_arbiter_idle_slots;
          Alcotest.test_case "invalidate region" `Quick test_invalidate_region;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "properties",
        qsuite
          [ prop_random_traffic_completes; prop_msi_invariant; prop_inclusion ]
      );
    ]
