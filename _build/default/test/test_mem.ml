(* Tests for mi6_mem: physical memory, address geometry, page tables. *)

open Mi6_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let test_addr_lines_pages () =
  check_int "line_of" 2 (Addr.line_of 128);
  check_int "line_addr" 128 (Addr.line_addr 129);
  check_int "line_addr exact" 128 (Addr.line_addr 128);
  check_int "page_of" 1 (Addr.page_of 4097);
  check_int "page_addr" 4096 (Addr.page_addr 8191);
  check_int "offset_in_line" 63 (Addr.offset_in_line 127)

let test_regions_default () =
  let g = Addr.default_regions in
  check_int "64 regions" 64 g.Addr.region_count;
  check_int "32MB regions" (32 * 1024 * 1024) g.Addr.region_bytes;
  check_int "region of 0" 0 (Addr.region_of g 0);
  check_int "region of last byte" 63 (Addr.region_of g (g.Addr.dram_bytes - 1));
  check_int "region base 1" (32 * 1024 * 1024) (Addr.region_base g 1);
  check_bool "in_dram" true (Addr.in_dram g 0);
  check_bool "not in_dram" false (Addr.in_dram g g.Addr.dram_bytes);
  Alcotest.check_raises "region_of out of range"
    (Invalid_argument
       (Printf.sprintf "Addr.region_of: 0x%x outside DRAM" g.Addr.dram_bytes))
    (fun () -> ignore (Addr.region_of g g.Addr.dram_bytes))

let test_regions_constraints () =
  Alcotest.check_raises "non pow2 dram"
    (Invalid_argument "Addr.make_regions: dram_bytes must be a power of two")
    (fun () -> ignore (Addr.make_regions ~dram_bytes:3000 ~region_count:4));
  Alcotest.check_raises "region smaller than page"
    (Invalid_argument "Addr.make_regions: regions smaller than a page")
    (fun () -> ignore (Addr.make_regions ~dram_bytes:8192 ~region_count:4))

(* No 4 KB page straddles two regions: pages are aligned and regions are
   page multiples.  Property over random geometries. *)
let prop_region_page_alignment =
  QCheck.Test.make ~name:"no page straddles two regions" ~count:200
    QCheck.(pair (int_range 0 6) (int_range 13 20))
    (fun (rc_log, dram_log) ->
      let region_count = 1 lsl rc_log in
      let dram_bytes = 1 lsl dram_log in
      if dram_bytes / region_count < Addr.page_bytes then true
      else begin
        let g = Addr.make_regions ~dram_bytes ~region_count in
        let ok = ref true in
        let page = ref 0 in
        while !page + Addr.page_bytes <= dram_bytes do
          if
            Addr.region_of g !page
            <> Addr.region_of g (!page + Addr.page_bytes - 1)
          then ok := false;
          page := !page + Addr.page_bytes
        done;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)
(* ------------------------------------------------------------------ *)

let test_mem_rw_widths () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 20) in
  check_int "untouched reads zero" 0 (Phys_mem.read_u8 m 12345);
  Phys_mem.write_u8 m 0 0xAB;
  check_int "u8 roundtrip" 0xAB (Phys_mem.read_u8 m 0);
  Phys_mem.write_u16 m 2 0xBEEF;
  check_int "u16 roundtrip" 0xBEEF (Phys_mem.read_u16 m 2);
  Phys_mem.write_u32 m 4 0xDEADBEEF;
  check_int "u32 roundtrip" 0xDEADBEEF (Phys_mem.read_u32 m 4);
  Phys_mem.write_u64 m 8 0x0123456789ABCDEFL;
  Alcotest.(check int64) "u64 roundtrip" 0x0123456789ABCDEFL (Phys_mem.read_u64 m 8);
  (* Little-endian layout. *)
  Phys_mem.write_u32 m 16 0x11223344;
  check_int "LE byte 0" 0x44 (Phys_mem.read_u8 m 16);
  check_int "LE byte 3" 0x11 (Phys_mem.read_u8 m 19)

let test_mem_cross_chunk () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 20) in
  (* 64 KB chunk boundary at 0x10000. *)
  Phys_mem.write_u64 m 0xFFFC 0x1122334455667788L;
  Alcotest.(check int64) "crosses chunk boundary" 0x1122334455667788L
    (Phys_mem.read_u64 m 0xFFFC)

let test_mem_bounds () =
  let m = Phys_mem.create ~size_bytes:4096 in
  Alcotest.check_raises "read past end"
    (Invalid_argument "Phys_mem: access 0xfff width 8 out of bounds")
    (fun () -> ignore (Phys_mem.read_u64 m 0xFFF));
  Alcotest.check_raises "negative address"
    (Invalid_argument "Phys_mem: access -1 width 1 out of bounds")
    (fun () -> ignore (Phys_mem.read_u8 m (-1)))

let test_mem_strings () =
  let m = Phys_mem.create ~size_bytes:4096 in
  Phys_mem.load_string m 100 "hello";
  Alcotest.(check string) "string roundtrip" "hello" (Phys_mem.read_string m 100 5);
  Phys_mem.zero_range m 100 5;
  Alcotest.(check string) "zeroed" "\x00\x00\x00\x00\x00" (Phys_mem.read_string m 100 5)

let prop_mem_u64_roundtrip =
  QCheck.Test.make ~name:"u64 write/read roundtrip" ~count:300
    QCheck.(pair (int_range 0 1000) int64)
    (fun (addr, v) ->
      let m = Phys_mem.create ~size_bytes:4096 in
      Phys_mem.write_u64 m addr v;
      Phys_mem.read_u64 m addr = v)

(* ------------------------------------------------------------------ *)
(* Page_table                                                          *)
(* ------------------------------------------------------------------ *)

let make_allocator start =
  let next = ref start in
  fun () ->
    let p = !next in
    next := p + 4096;
    p

let test_walk_basic () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 24) in
  let root = 0x10000 in
  let alloc = make_allocator 0x20000 in
  Page_table.map_page m ~alloc ~root ~vaddr:0x4000L ~paddr:0x7000
    ~perm:Page_table.perm_rw;
  (match Page_table.walk m ~root ~vaddr:0x4123L with
  | Page_table.Translated (leaf, steps) ->
    check_int "translated paddr" 0x7123 leaf.Page_table.paddr;
    check_int "page base" 0x7000 leaf.Page_table.page_base;
    check_int "leaf level" 0 leaf.Page_table.level;
    check_bool "r" true leaf.Page_table.perm.Page_table.r;
    check_bool "w" true leaf.Page_table.perm.Page_table.w;
    check_bool "not x" false leaf.Page_table.perm.Page_table.x;
    check_int "3 walk steps" 3 (List.length steps)
  | Page_table.Fault _ -> Alcotest.fail "unexpected fault");
  (* Unmapped address faults. *)
  match Page_table.walk m ~root ~vaddr:0x8000L with
  | Page_table.Fault (Page_table.Invalid_pte, _) -> ()
  | _ -> Alcotest.fail "expected invalid-pte fault"

let test_walk_steps_are_pt_addresses () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 24) in
  let root = 0x10000 in
  let alloc = make_allocator 0x20000 in
  Page_table.map_page m ~alloc ~root ~vaddr:0x4000L ~paddr:0x7000
    ~perm:Page_table.perm_rw;
  match Page_table.walk m ~root ~vaddr:0x4000L with
  | Page_table.Translated (_, steps) ->
    let levels = List.map (fun s -> s.Page_table.step_level) steps in
    Alcotest.(check (list int)) "levels descend" [ 2; 1; 0 ] levels;
    let first = List.hd steps in
    check_bool "first step inside root table" true
      (first.Page_table.pte_addr >= root && first.Page_table.pte_addr < root + 4096)
  | Page_table.Fault _ -> Alcotest.fail "unexpected fault"

let test_walk_non_canonical () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 20) in
  match Page_table.walk m ~root:0 ~vaddr:0x0000_8000_0000_0000L with
  | Page_table.Fault (Page_table.Non_canonical, steps) ->
    check_int "no steps before canonical check" 0 (List.length steps)
  | _ -> Alcotest.fail "expected non-canonical fault"

let test_walk_w_without_r () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 20) in
  let root = 0x1000 in
  (* Hand-craft a root-level leaf PTE with W set but R clear: reserved. *)
  let bad =
    Page_table.pte_make ~ppn:0
      ~perm:{ Page_table.r = false; w = true; x = false; u = false }
      ~valid:true
  in
  (* W-without-R with X clear is the reserved combination the walker must
     reject; write it at VPN2 slot 0. *)
  Phys_mem.write_u64 m root bad;
  match Page_table.walk m ~root ~vaddr:0x0L with
  | Page_table.Fault (Page_table.Invalid_pte, _) -> ()
  | _ -> Alcotest.fail "expected fault on W-without-R PTE"

let test_walk_superpage () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 24) in
  let root = 0x10000 in
  (* Level-1 (2 MB) superpage: root slot 0 -> table; table slot 0 -> leaf
     with 512-aligned PPN. *)
  let l1 = 0x11000 in
  Phys_mem.write_u64 m root (Page_table.pte_table ~ppn:(l1 / 4096));
  Phys_mem.write_u64 m l1
    (Page_table.pte_make ~ppn:512 ~perm:Page_table.perm_rwx ~valid:true);
  (match Page_table.walk m ~root ~vaddr:0x12345L with
  | Page_table.Translated (leaf, _) ->
    check_int "superpage level" 1 leaf.Page_table.level;
    (* ppn 512 = 2 MB base; offset keeps low 21 bits of the VA. *)
    check_int "superpage paddr" (0x200000 + 0x12345) leaf.Page_table.paddr
  | Page_table.Fault _ -> Alcotest.fail "unexpected fault");
  (* Misaligned superpage (PPN low bits nonzero) must fault. *)
  Phys_mem.write_u64 m l1
    (Page_table.pte_make ~ppn:513 ~perm:Page_table.perm_rwx ~valid:true);
  match Page_table.walk m ~root ~vaddr:0x12345L with
  | Page_table.Fault (Page_table.Misaligned_superpage, _) -> ()
  | _ -> Alcotest.fail "expected misaligned-superpage fault"

let test_identity_map () =
  let m = Phys_mem.create ~size_bytes:(1 lsl 24) in
  let root = 0x10000 in
  let alloc = make_allocator 0x20000 in
  Page_table.identity_map m ~alloc ~root ~lo:0x100000 ~hi:0x104000
    ~perm:Page_table.perm_rwx;
  List.iter
    (fun va ->
      match Page_table.walk m ~root ~vaddr:(Int64.of_int va) with
      | Page_table.Translated (leaf, _) ->
        check_int "identity" va leaf.Page_table.paddr
      | Page_table.Fault _ -> Alcotest.fail "identity map fault")
    [ 0x100000; 0x101234; 0x103FFF ]

(* Random 4 KB mappings walk back to the right frame. *)
let prop_map_then_walk =
  QCheck.Test.make ~name:"map_page then walk translates correctly" ~count:100
    QCheck.(small_list (pair (int_range 0 255) (int_range 256 511)))
    (fun pairs ->
      let m = Phys_mem.create ~size_bytes:(1 lsl 24) in
      let root = 0x10000 in
      let alloc = make_allocator 0x400000 in
      (* Deduplicate virtual page numbers to avoid remap conflicts. *)
      let seen = Hashtbl.create 16 in
      let pairs =
        List.filter
          (fun (vp, _) ->
            if Hashtbl.mem seen vp then false
            else begin
              Hashtbl.add seen vp ();
              true
            end)
          pairs
      in
      List.iter
        (fun (vp, pp) ->
          Page_table.map_page m ~alloc ~root
            ~vaddr:(Int64.of_int (vp * 4096))
            ~paddr:(pp * 4096) ~perm:Page_table.perm_rw)
        pairs;
      List.for_all
        (fun (vp, pp) ->
          match
            Page_table.walk m ~root ~vaddr:(Int64.of_int ((vp * 4096) + 42))
          with
          | Page_table.Translated (leaf, _) ->
            leaf.Page_table.paddr = (pp * 4096) + 42
          | Page_table.Fault _ -> false)
        pairs)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_mem"
    [
      ( "addr",
        [
          Alcotest.test_case "lines and pages" `Quick test_addr_lines_pages;
          Alcotest.test_case "default regions" `Quick test_regions_default;
          Alcotest.test_case "region constraints" `Quick test_regions_constraints;
        ]
        @ qsuite [ prop_region_page_alignment ] );
      ( "phys_mem",
        [
          Alcotest.test_case "widths and endianness" `Quick test_mem_rw_widths;
          Alcotest.test_case "cross-chunk access" `Quick test_mem_cross_chunk;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "strings and zeroing" `Quick test_mem_strings;
        ]
        @ qsuite [ prop_mem_u64_roundtrip ] );
      ( "page_table",
        [
          Alcotest.test_case "basic walk" `Quick test_walk_basic;
          Alcotest.test_case "walk steps" `Quick test_walk_steps_are_pt_addresses;
          Alcotest.test_case "non-canonical" `Quick test_walk_non_canonical;
          Alcotest.test_case "W-without-R rejected" `Quick test_walk_w_without_r;
          Alcotest.test_case "superpages" `Quick test_walk_superpage;
          Alcotest.test_case "identity map" `Quick test_identity_map;
        ]
        @ qsuite [ prop_map_then_walk ] );
    ]
