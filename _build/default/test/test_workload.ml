(* Tests for the synthetic SPEC workload models: determinism, stream
   well-formedness, and that the per-benchmark parameters are realized in
   the generated streams. *)

open Mi6_ooo
open Mi6_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make bench =
  Synth.for_bench bench ~data_base:(64 * 1024 * 1024)
    ~code_base:(32 * 1024 * 1024) ~kernel_base:(128 * 1024 * 1024)

let take gen n = List.init n (fun _ -> Synth.next gen)

let test_determinism () =
  List.iter
    (fun b ->
      let a = take (make b) 20_000 in
      let c = take (make b) 20_000 in
      check_bool (Spec.name b ^ " deterministic") true (a = c))
    [ Spec.Gcc; Spec.Astar; Spec.Xalancbmk ]

let test_benchmarks_differ () =
  let a = take (make Spec.Gcc) 5_000 in
  let b = take (make Spec.Mcf) 5_000 in
  check_bool "different benchmarks, different streams" true (a <> b)

let test_stream_limit () =
  let gen = make Spec.Hmmer in
  let s = Synth.stream gen ~limit:100 in
  let n = ref 0 in
  let rec drain () =
    match s () with
    | Some _ ->
      incr n;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "limit respected" 100 !n;
  check_bool "stays exhausted" true (s () = None)

(* Count µop classes over a long window and check the parameter targets
   are realized within tolerance. *)
let census bench n =
  let gen = make bench in
  let loads = ref 0 and stores = ref 0 and branches = ref 0 in
  let kernels = ref 0 and jumps = ref 0 in
  for _ = 1 to n do
    match (Synth.next gen).Uop.kind with
    | Uop.Load _ -> incr loads
    | Uop.Store _ -> incr stores
    | Uop.Branch _ -> incr branches
    | Uop.Jump _ -> incr jumps
    | Uop.Enter_kernel -> incr kernels
    | Uop.Exit_kernel | Uop.Alu _ -> ()
  done;
  (!loads, !stores, !branches, !jumps, !kernels)

let test_instruction_mix () =
  let n = 300_000 in
  let p = Spec.params Spec.Gcc in
  let loads, stores, _, _, _ = census Spec.Gcc n in
  let close got want =
    abs_float ((float_of_int got /. float_of_int n) -. want) < 0.08
  in
  check_bool "load fraction realized" true (close loads p.Spec.load_frac);
  check_bool "store fraction realized" true (close stores p.Spec.store_frac)

let test_syscall_rate () =
  let n = 400_000 in
  let p = Spec.params Spec.Xalancbmk in
  let _, _, _, _, kernels = census Spec.Xalancbmk n in
  let expected = n / p.Spec.syscall_every in
  check_bool
    (Printf.sprintf "syscall count %d near %d" kernels expected)
    true
    (abs (kernels - expected) <= max 3 (expected / 3))

let test_control_flow_consistency () =
  (* Outside the kernel (whose trace is synthetic), a taken branch or jump
     must be followed by a µop at its target; a not-taken branch by
     pc+4.  This guarantees the I-stream the core fetches is coherent. *)
  let gen = make Spec.Sjeng in
  let prev = ref None in
  let ok = ref true in
  for _ = 1 to 100_000 do
    let u = Synth.next gen in
    let in_kernel = u.Uop.pc >= 128 * 1024 * 1024 in
    (match !prev with
    | Some p when not in_kernel ->
      let expected = Uop.next_pc p in
      if u.Uop.pc <> expected then ok := false
    | _ -> ());
    (* Kernel µops and markers break the chain deliberately. *)
    prev :=
      (match u.Uop.kind with
      | Uop.Enter_kernel | Uop.Exit_kernel -> None
      | _ when in_kernel -> None
      | _ -> Some u)
  done;
  check_bool "user-code control flow is self-consistent" true !ok

let test_addresses_in_working_set () =
  List.iter
    (fun b ->
      let p = Spec.params b in
      let gen = make b in
      let data_base = 64 * 1024 * 1024 in
      let limit = data_base + (p.Spec.working_set_kb * 1024) + 4096 in
      let ok = ref true in
      for _ = 1 to 100_000 do
        let u = Synth.next gen in
        match u.Uop.kind with
        | Uop.Load { addr } | Uop.Store { addr } ->
          let in_data = addr >= data_base && addr < limit in
          let in_kernel = addr >= 128 * 1024 * 1024 in
          if not (in_data || in_kernel) then ok := false
        | _ -> ()
      done;
      check_bool (Spec.name b ^ " addresses within footprint") true !ok)
    [ Spec.Gcc; Spec.Libquantum; Spec.Mcf ]

let test_chase_loads_are_dependent () =
  (* mcf's pointer chasing must appear as loads whose source register is
     their own destination (serial dependence). *)
  let gen = make Spec.Mcf in
  let dependent = ref 0 in
  for _ = 1 to 100_000 do
    let u = Synth.next gen in
    match u.Uop.kind with
    | Uop.Load _ when u.Uop.dst <> None && u.Uop.srcs = [ 18 ] -> incr dependent
    | _ -> ()
  done;
  check_bool
    (Printf.sprintf "mcf has many dependent loads (%d)" !dependent)
    true (!dependent > 1_000)

let test_all_benchmarks_parseable () =
  List.iter
    (fun b ->
      let p = Spec.params b in
      check_bool (Spec.name b ^ " fractions sane") true
        (p.Spec.load_frac +. p.Spec.store_frac < 0.7
        && p.Spec.stream_frac +. p.Spec.chase_frac +. p.Spec.hot_frac
           +. p.Spec.stack_frac
           <= 1.01
        && p.Spec.working_set_kb > 0
        && p.Spec.hot_set_kb <= p.Spec.working_set_kb);
      check_bool (Spec.name b ^ " roundtrips by name") true
        (Spec.of_name (Spec.name b) = Some b))
    Spec.all

(* Branch-rate property over every benchmark: realized branch fraction is
   within a factor of the parameter (block geometry quantizes it). *)
let prop_branch_rate =
  QCheck.Test.make ~name:"branch rate tracks branch_frac" ~count:11
    (QCheck.make (QCheck.Gen.oneofl Spec.all) ~print:Spec.name)
    (fun b ->
      let p = Spec.params b in
      let _, _, branches, _, _ = census b 150_000 in
      let rate = float_of_int branches /. 150_000.0 in
      rate > p.Spec.branch_frac /. 2.5 && rate < p.Spec.branch_frac *. 1.5)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_workload"
    [
      ( "stream",
        [
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "benchmarks differ" `Quick test_benchmarks_differ;
          Alcotest.test_case "limit" `Quick test_stream_limit;
          Alcotest.test_case "control-flow consistency" `Quick
            test_control_flow_consistency;
        ] );
      ( "model",
        [
          Alcotest.test_case "instruction mix" `Quick test_instruction_mix;
          Alcotest.test_case "syscall rate" `Quick test_syscall_rate;
          Alcotest.test_case "addresses in footprint" `Quick
            test_addresses_in_working_set;
          Alcotest.test_case "dependent chase loads" `Quick
            test_chase_loads_are_dependent;
          Alcotest.test_case "all params sane" `Quick
            test_all_benchmarks_parseable;
        ]
        @ qsuite [ prop_branch_rate ] );
    ]
