(* Tests for the mi6_isa library: registers, privilege, CSRs, encoding
   roundtrips, and the assembler. *)

open Mi6_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Reg / Priv / Csr                                                    *)
(* ------------------------------------------------------------------ *)

let test_reg_names () =
  check_string "x0" "zero" (Reg.name Reg.x0);
  check_string "a0" "a0" (Reg.name Reg.a0);
  check_string "t6" "t6" (Reg.name Reg.t6);
  Alcotest.check_raises "register 32 invalid"
    (Invalid_argument "Reg: register out of range") (fun () ->
      ignore (Reg.name 32))

let test_priv_ordering () =
  check_bool "M > S" true (Priv.more_privileged Machine Supervisor);
  check_bool "S > U" true (Priv.more_privileged Supervisor User);
  check_bool "U not > M" false (Priv.more_privileged User Machine);
  check_bool "M not > M" false (Priv.more_privileged Machine Machine)

let test_priv_mode_roundtrip () =
  List.iter
    (fun m ->
      check_bool "mode roundtrip" true (Priv.mode_of_int (Priv.mode_to_int m) = m))
    [ Priv.User; Priv.Supervisor; Priv.Machine ]

let test_cause_roundtrip () =
  let causes =
    Priv.
      [
        Exception Illegal_instruction;
        Exception Ecall_from_u;
        Exception Region_fault;
        Exception Load_page_fault;
        Interrupt Timer_interrupt;
        Interrupt External_interrupt;
      ]
  in
  List.iter
    (fun c ->
      match Priv.cause_of_code (Priv.cause_code c) with
      | Some c' -> check_bool "cause roundtrip" true (c = c')
      | None -> Alcotest.fail "cause failed to decode")
    causes;
  check_bool "interrupt bit set" true
    (Int64.logand (Priv.cause_code (Interrupt Timer_interrupt)) Int64.min_int
    <> 0L)

let test_csr_privilege () =
  check_bool "mstatus is M-mode" true (Csr.min_priv Csr.mstatus = Priv.Machine);
  check_bool "satp is S-mode" true (Csr.min_priv Csr.satp = Priv.Supervisor);
  check_bool "cycle is U-mode" true (Csr.min_priv Csr.cycle = Priv.User);
  check_bool "mregions is M-mode" true (Csr.min_priv Csr.mregions = Priv.Machine);
  check_bool "mspec is M-mode" true (Csr.min_priv Csr.mspec = Priv.Machine);
  check_bool "mregions known" true (Csr.is_known Csr.mregions);
  check_bool "0x123 unknown" false (Csr.is_known 0x123)

(* ------------------------------------------------------------------ *)
(* Encoding golden values (cross-checked against riscv-tests / gnu as) *)
(* ------------------------------------------------------------------ *)

let test_encode_golden () =
  (* addi a0, a0, 1 = 0x00150513 *)
  check_int "addi a0,a0,1" 0x00150513
    (Encode.encode (Alu_imm { op = Add; rd = 10; rs1 = 10; imm = 1 }));
  (* add a0, a1, a2 = 0x00c58533 *)
  check_int "add a0,a1,a2" 0x00c58533
    (Encode.encode (Alu { op = Add; rd = 10; rs1 = 11; rs2 = 12 }));
  (* lui a0, 0x12345 = 0x12345537 *)
  check_int "lui a0,0x12345" 0x12345537
    (Encode.encode (Lui { rd = 10; imm = 0x12345000 }));
  (* ld a0, 8(sp) = 0x00813503 *)
  check_int "ld a0,8(sp)" 0x00813503
    (Encode.encode (Load { kind = Ld; rd = 10; rs1 = 2; offset = 8 }));
  (* sd a0, 8(sp) = 0x00a13423 *)
  check_int "sd a0,8(sp)" 0x00a13423
    (Encode.encode (Store { kind = Sd; rs1 = 2; rs2 = 10; offset = 8 }));
  (* beq a0, a1, +8 = 0x00b50463 *)
  check_int "beq a0,a1,8" 0x00b50463
    (Encode.encode (Branch { kind = Beq; rs1 = 10; rs2 = 11; offset = 8 }));
  (* jal ra, +16 = 0x010000ef *)
  check_int "jal ra,16" 0x010000ef
    (Encode.encode (Jal { rd = 1; offset = 16 }));
  (* ecall = 0x00000073, mret = 0x30200073, sret = 0x10200073 *)
  check_int "ecall" 0x00000073 (Encode.encode Ecall);
  check_int "mret" 0x30200073 (Encode.encode Mret);
  check_int "sret" 0x10200073 (Encode.encode Sret);
  (* csrrw a0, mscratch, a1 = 0x34059573 *)
  check_int "csrrw a0,mscratch,a1" 0x34059573
    (Encode.encode (Csr { op = Csrrw; rd = 10; src = Rs 11; csr = Csr.mscratch }));
  (* mul a0, a1, a2 = 0x02c58533 *)
  check_int "mul a0,a1,a2" 0x02c58533
    (Encode.encode (Muldiv { op = Mul; rd = 10; rs1 = 11; rs2 = 12 }));
  (* srai a0, a0, 3 = 0x40355513 *)
  check_int "srai a0,a0,3" 0x40355513
    (Encode.encode (Alu_imm { op = Sra; rd = 10; rs1 = 10; imm = 3 }));
  (* amoadd.w a0, a1, (a2) = 0x00b6252f *)
  check_int "amoadd.w a0,a1,(a2)" 0x00b6252f
    (Encode.encode (Amo { op = Amoadd; width = W; rd = 10; rs1 = 12; rs2 = 11 }));
  (* lr.d a0, (a1) = 0x1005b52f *)
  check_int "lr.d a0,(a1)" 0x1005b52f
    (Encode.encode (Lr { width = D; rd = 10; rs1 = 11 }));
  (* sc.d a0, a2, (a1) = 0x18c5b52f *)
  check_int "sc.d a0,a2,(a1)" 0x18c5b52f
    (Encode.encode (Sc { width = D; rd = 10; rs1 = 11; rs2 = 12 }))

let test_encode_range_checks () =
  Alcotest.check_raises "branch offset too far"
    (Invalid_argument "Encode: B-type immediate 5000 out of range") (fun () ->
      ignore
        (Encode.encode (Branch { kind = Beq; rs1 = 0; rs2 = 0; offset = 5000 })));
  Alcotest.check_raises "odd branch offset"
    (Invalid_argument "Encode: branch offset 3 is odd") (fun () ->
      ignore
        (Encode.encode (Branch { kind = Beq; rs1 = 0; rs2 = 0; offset = 3 })));
  Alcotest.check_raises "subi rejected"
    (Invalid_argument "Encode: subi does not exist") (fun () ->
      ignore (Encode.encode (Alu_imm { op = Sub; rd = 1; rs1 = 1; imm = 0 })))

let test_decode_illegal () =
  check_bool "all zeros illegal" true (Encode.decode 0 = None);
  check_bool "all ones illegal" true (Encode.decode 0xFFFFFFFF = None);
  (* branch funct3=2 is unused *)
  check_bool "bad branch funct3" true (Encode.decode 0x00002063 = None)

let test_purge_encoding () =
  let w = Encode.encode Purge in
  check_int "purge opcode is custom-0" 0x0B (w land 0x7F);
  check_bool "purge roundtrip" true (Encode.decode w = Some Purge)

(* Roundtrip property over randomly generated well-formed instructions. *)
let instr_gen =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm12 = int_range (-2048) 2047 in
  let b_off = map (fun i -> i * 2) (int_range (-2048) 2047) in
  let j_off = map (fun i -> i * 2) (int_range (-524288) 524287) in
  let u_imm = map (fun i -> i lsl 12) (int_range (-524288) 524287) in
  let shamt = int_range 0 63 in
  let shamtw = int_range 0 31 in
  let branch_kind =
    oneofl Instr.[ Beq; Bne; Blt; Bge; Bltu; Bgeu ]
  in
  let load_kind = oneofl Instr.[ Lb; Lh; Lw; Ld; Lbu; Lhu; Lwu ] in
  let store_kind = oneofl Instr.[ Sb; Sh; Sw; Sd ] in
  let alu_op_imm = oneofl Instr.[ Add; Slt; Sltu; Xor; Or; And ] in
  let alu_op = oneofl Instr.[ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ] in
  let alu_w_op = oneofl Instr.[ Addw; Subw; Sllw; Srlw; Sraw ] in
  let mul_op =
    oneofl Instr.[ Mul; Mulh; Mulhsu; Mulhu; Div; Divu; Rem; Remu ]
  in
  let mul_w_op = oneofl Instr.[ Mulw; Divw; Divuw; Remw; Remuw ] in
  let csr = oneofl Csr.[ mstatus; mepc; satp; mregions; mspec; mscratch ] in
  oneof
    [
      map2 (fun rd imm -> Instr.Lui { rd; imm }) reg u_imm;
      map2 (fun rd imm -> Instr.Auipc { rd; imm }) reg u_imm;
      map2 (fun rd offset -> Instr.Jal { rd; offset }) reg j_off;
      map3 (fun rd rs1 offset -> Instr.Jalr { rd; rs1; offset }) reg reg imm12;
      (let* kind = branch_kind and* rs1 = reg and* rs2 = reg and* offset = b_off in
       return (Instr.Branch { kind; rs1; rs2; offset }));
      (let* kind = load_kind and* rd = reg and* rs1 = reg and* offset = imm12 in
       return (Instr.Load { kind; rd; rs1; offset }));
      (let* kind = store_kind and* rs1 = reg and* rs2 = reg and* offset = imm12 in
       return (Instr.Store { kind; rs1; rs2; offset }));
      (let* op = alu_op_imm and* rd = reg and* rs1 = reg and* imm = imm12 in
       return (Instr.Alu_imm { op; rd; rs1; imm }));
      (let* op = oneofl Instr.[ Sll; Srl; Sra ] and* rd = reg and* rs1 = reg
       and* imm = shamt in
       return (Instr.Alu_imm { op; rd; rs1; imm }));
      (let* rd = reg and* rs1 = reg and* imm = imm12 in
       return (Instr.Alu_imm_w { op = Addw; rd; rs1; imm }));
      (let* op = oneofl Instr.[ Sllw; Srlw; Sraw ] and* rd = reg and* rs1 = reg
       and* imm = shamtw in
       return (Instr.Alu_imm_w { op; rd; rs1; imm }));
      (let* op = alu_op and* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Instr.Alu { op; rd; rs1; rs2 }));
      (let* op = alu_w_op and* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Instr.Alu_w { op; rd; rs1; rs2 }));
      (let* op = mul_op and* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Instr.Muldiv { op; rd; rs1; rs2 }));
      (let* op = mul_w_op and* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Instr.Muldiv_w { op; rd; rs1; rs2 }));
      (let* op = oneofl Instr.[ Csrrw; Csrrs; Csrrc ] and* rd = reg
       and* rs1 = reg and* c = csr in
       return (Instr.Csr { op; rd; src = Rs rs1; csr = c }));
      (let* op = oneofl Instr.[ Csrrw; Csrrs; Csrrc ] and* rd = reg
       and* imm = int_range 0 31 and* c = csr in
       return (Instr.Csr { op; rd; src = Uimm imm; csr = c }));
      oneofl
        Instr.[ Ecall; Ebreak; Mret; Sret; Wfi; Fence; Fence_i; Purge ];
      map2 (fun rs1 rs2 -> Instr.Sfence_vma { rs1; rs2 }) reg reg;
      (let* width = oneofl Instr.[ W; D ] and* rd = reg and* rs1 = reg in
       return (Instr.Lr { width; rd; rs1 }));
      (let* width = oneofl Instr.[ W; D ] and* rd = reg and* rs1 = reg
       and* rs2 = reg in
       return (Instr.Sc { width; rd; rs1; rs2 }));
      (let* op =
         oneofl
           Instr.[ Amoswap; Amoadd; Amoxor; Amoand; Amoor; Amomin; Amomax;
                   Amominu; Amomaxu ]
       and* width = oneofl Instr.[ W; D ] and* rd = reg and* rs1 = reg
       and* rs2 = reg in
       return (Instr.Amo { op; width; rd; rs1; rs2 }));
    ]

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000
    (QCheck.make ~print:Instr.to_string instr_gen)
    (fun i -> Encode.decode (Encode.encode i) = Some i)

let prop_encode_32bit =
  QCheck.Test.make ~name:"encodings fit in 32 bits" ~count:1000
    (QCheck.make ~print:Instr.to_string instr_gen)
    (fun i ->
      let w = Encode.encode i in
      w >= 0 && w <= 0xFFFFFFFF)

(* ------------------------------------------------------------------ *)
(* Instruction classification                                          *)
(* ------------------------------------------------------------------ *)

let test_classification () =
  let load = Instr.Load { kind = Ld; rd = 1; rs1 = 2; offset = 0 } in
  let store = Instr.Store { kind = Sd; rs1 = 2; rs2 = 1; offset = 0 } in
  let branch = Instr.Branch { kind = Beq; rs1 = 1; rs2 = 2; offset = 8 } in
  check_bool "load is mem" true (Instr.is_mem load);
  check_bool "store is mem" true (Instr.is_mem store);
  check_bool "load not store" false (Instr.is_store load);
  check_bool "branch is control flow" true (Instr.is_control_flow branch);
  check_bool "purge serializes" true (Instr.is_serializing Purge);
  check_bool "csr serializes" true
    (Instr.is_serializing (Csr { op = Csrrw; rd = 0; src = Rs 1; csr = 0x300 }));
  check_bool "add does not serialize" false
    (Instr.is_serializing (Alu { op = Add; rd = 1; rs1 = 2; rs2 = 3 }))

let test_dest_sources () =
  let i = Instr.Alu { op = Add; rd = 5; rs1 = 6; rs2 = 0 } in
  Alcotest.(check (option int)) "dest" (Some 5) (Instr.dest i);
  Alcotest.(check (list int)) "sources drop x0" [ 6 ] (Instr.sources i);
  Alcotest.(check (option int)) "x0 dest is none" None
    (Instr.dest (Alu_imm { op = Add; rd = 0; rs1 = 1; imm = 0 }));
  Alcotest.(check (list int)) "store sources" [ 2; 1 ]
    (Instr.sources (Store { kind = Sd; rs1 = 2; rs2 = 1; offset = 0 }))

let test_access_widths () =
  check_int "lb 1 byte" 1 (Instr.load_bytes Lb);
  check_int "ld 8 bytes" 8 (Instr.load_bytes Ld);
  check_int "sw 4 bytes" 4 (Instr.store_bytes Sw);
  check_int "lwu 4 bytes" 4 (Instr.load_bytes Lwu)

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

let test_asm_forward_backward () =
  let p =
    Asm.assemble ~base:0x1000
      [
        Asm.Label "start";
        Asm.I (Alu_imm { op = Add; rd = 1; rs1 = 0; imm = 0 });
        Asm.Label "loop";
        Asm.I (Alu_imm { op = Add; rd = 1; rs1 = 1; imm = 1 });
        Asm.Br_to (Bne, 1, 2, "loop");
        Asm.J "end";
        Asm.Nop;
        Asm.Label "end";
        Asm.Ret;
      ]
  in
  check_int "start label" 0x1000 (Asm.lookup p "start");
  check_int "loop label" 0x1004 (Asm.lookup p "loop");
  check_int "end label" 0x1014 (Asm.lookup p "end");
  check_int "code size" 24 (Asm.size_bytes p);
  (* The backward branch at 0x1008 targets 0x1004: offset -4. *)
  (match Encode.decode p.words.(2) with
  | Some (Branch { offset; _ }) -> check_int "backward offset" (-4) offset
  | _ -> Alcotest.fail "expected branch");
  (* The forward jump at 0x100c targets 0x1014: offset +8. *)
  match Encode.decode p.words.(3) with
  | Some (Jal { offset; _ }) -> check_int "forward offset" 8 offset
  | _ -> Alcotest.fail "expected jal"

let test_asm_li_values () =
  (* Check that Li produces the intended constant under lui/addi
     semantics: rd = (hi + sign-extended lo). *)
  let check_li v =
    let p = Asm.assemble ~base:0 [ Asm.Li (5, v) ] in
    match (Encode.decode p.words.(0), Encode.decode p.words.(1)) with
    | Some (Lui { imm = hi; _ }), Some (Alu_imm { op = Add; imm = lo; _ }) ->
      check_int (Printf.sprintf "li %d" v) v ((hi + lo) land 0xFFFFFFFF
        |> fun x -> ((x lxor 0x80000000) - 0x80000000))
    | _ -> Alcotest.fail "expected lui/addi pair"
  in
  List.iter check_li [ 0; 1; -1; 0x7FF; 0x800; 0xFFF; 0x1000; 0x12345678;
                       -0x12345678; 0x7FFFFFFF; -0x80000000 ]

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate label"
    (Failure "Asm: duplicate label \"x\"") (fun () ->
      ignore (Asm.assemble ~base:0 [ Asm.Label "x"; Asm.Label "x" ]))

let test_asm_undefined_label () =
  Alcotest.check_raises "undefined label"
    (Failure "Asm: undefined label \"nowhere\"") (fun () ->
      ignore (Asm.assemble ~base:0 [ Asm.J "nowhere" ]))

let test_asm_to_bytes () =
  let p = Asm.assemble ~base:0 [ Asm.Nop ] in
  let s = Asm.to_bytes p in
  check_int "4 bytes" 4 (String.length s);
  (* nop = addi x0,x0,0 = 0x00000013, little-endian *)
  check_int "byte 0" 0x13 (Char.code s.[0]);
  check_int "byte 3" 0x00 (Char.code s.[3])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mi6_isa"
    [
      ( "reg_priv_csr",
        [
          Alcotest.test_case "register names" `Quick test_reg_names;
          Alcotest.test_case "privilege ordering" `Quick test_priv_ordering;
          Alcotest.test_case "mode roundtrip" `Quick test_priv_mode_roundtrip;
          Alcotest.test_case "cause codes roundtrip" `Quick test_cause_roundtrip;
          Alcotest.test_case "csr privilege levels" `Quick test_csr_privilege;
        ] );
      ( "encode",
        [
          Alcotest.test_case "golden encodings" `Quick test_encode_golden;
          Alcotest.test_case "immediate range checks" `Quick
            test_encode_range_checks;
          Alcotest.test_case "illegal words decode to None" `Quick
            test_decode_illegal;
          Alcotest.test_case "purge custom-0 encoding" `Quick
            test_purge_encoding;
        ]
        @ qsuite [ prop_encode_decode_roundtrip; prop_encode_32bit ] );
      ( "classify",
        [
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "dest and sources" `Quick test_dest_sources;
          Alcotest.test_case "access widths" `Quick test_access_widths;
        ] );
      ( "asm",
        [
          Alcotest.test_case "forward/backward labels" `Quick
            test_asm_forward_backward;
          Alcotest.test_case "li constant splitting" `Quick test_asm_li_values;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "byte image" `Quick test_asm_to_bytes;
        ] );
    ]
