(* Tests for the functional simulator: ISA semantics, privilege, traps,
   virtual memory, and the MI6 hardware checks (region validation, fetch
   restriction, purge). *)

open Mi6_isa
open Mi6_mem
open Mi6_func

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let dram = Addr.default_regions.Addr.dram_bytes

let fresh () =
  let mem = Phys_mem.create ~size_bytes:dram in
  Fsim.create ~mem ~hartid:0 ()

(* Assemble at [base], load, set pc, and run until pc hits [stop] label. *)
let run_program ?(steps = 10_000) t prog stop =
  Fsim.load_program t prog;
  Cpu_state.set_pc (Fsim.state t) (Int64.of_int prog.Asm.base);
  let stop_pc = Int64.of_int (Asm.lookup prog stop) in
  let n =
    Fsim.run t ~max_steps:steps ~until:(fun t ->
        Cpu_state.pc (Fsim.state t) = stop_pc)
  in
  check_bool "program reached stop label" true (n < steps)

let reg t r = Cpu_state.get_reg (Fsim.state t) r

(* ------------------------------------------------------------------ *)
(* Arithmetic programs                                                  *)
(* ------------------------------------------------------------------ *)

let test_sum_loop () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.a0, 0);
          Li (Reg.t0, 1);
          Li (Reg.t1, 11);
          Label "loop";
          I (Alu { op = Add; rd = Reg.a0; rs1 = Reg.a0; rs2 = Reg.t0 });
          I (Alu_imm { op = Add; rd = Reg.t0; rs1 = Reg.t0; imm = 1 });
          Br_to (Bne, Reg.t0, Reg.t1, "loop");
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "sum 1..10" 55L (reg t Reg.a0)

let test_alu_ops () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.t0, 100);
          Li (Reg.t1, 7);
          I (Alu { op = Sub; rd = Reg.a0; rs1 = Reg.t0; rs2 = Reg.t1 });
          I (Alu { op = Xor; rd = Reg.a1; rs1 = Reg.t0; rs2 = Reg.t1 });
          I (Alu { op = And; rd = Reg.a2; rs1 = Reg.t0; rs2 = Reg.t1 });
          I (Alu { op = Or; rd = Reg.a3; rs1 = Reg.t0; rs2 = Reg.t1 });
          I (Alu { op = Slt; rd = Reg.a4; rs1 = Reg.t1; rs2 = Reg.t0 });
          I (Alu_imm { op = Sll; rd = Reg.a5; rs1 = Reg.t1; imm = 4 });
          I (Alu_imm { op = Sra; rd = Reg.a6; rs1 = Reg.t0; imm = 2 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "sub" 93L (reg t Reg.a0);
  check_i64 "xor" (Int64.of_int (100 lxor 7)) (reg t Reg.a1);
  check_i64 "and" (Int64.of_int (100 land 7)) (reg t Reg.a2);
  check_i64 "or" (Int64.of_int (100 lor 7)) (reg t Reg.a3);
  check_i64 "slt" 1L (reg t Reg.a4);
  check_i64 "slli" 112L (reg t Reg.a5);
  check_i64 "srai" 25L (reg t Reg.a6)

let test_word_ops_sign_extend () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          (* 0x7FFFFFFF + 1 wraps to -0x80000000 under addw. *)
          Li (Reg.t0, 0x7FFFFFFF);
          I (Alu_imm_w { op = Addw; rd = Reg.a0; rs1 = Reg.t0; imm = 1 });
          (* sllw by 31 of 1 gives INT32_MIN, sign-extended. *)
          Li (Reg.t1, 1);
          I (Alu_imm_w { op = Sllw; rd = Reg.a1; rs1 = Reg.t1; imm = 31 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "addw wraps and sign-extends" (-0x80000000L) (reg t Reg.a0);
  check_i64 "sllw sign-extends" (-0x80000000L) (reg t Reg.a1)

let test_muldiv_edge_cases () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.t0, 7);
          Li (Reg.t1, 0);
          (* Division by zero: quotient all-ones, remainder = dividend. *)
          I (Muldiv { op = Div; rd = Reg.a0; rs1 = Reg.t0; rs2 = Reg.t1 });
          I (Muldiv { op = Rem; rd = Reg.a1; rs1 = Reg.t0; rs2 = Reg.t1 });
          (* Signed overflow: INT64_MIN / -1. *)
          Li (Reg.t2, 1);
          I (Alu_imm { op = Sll; rd = Reg.t2; rs1 = Reg.t2; imm = 63 });
          Li (Reg.t3, -1);
          I (Muldiv { op = Div; rd = Reg.a2; rs1 = Reg.t2; rs2 = Reg.t3 });
          I (Muldiv { op = Rem; rd = Reg.a3; rs1 = Reg.t2; rs2 = Reg.t3 });
          (* mulh of two large values. *)
          Li (Reg.t4, -1);
          I (Muldiv { op = Mulhu; rd = Reg.a4; rs1 = Reg.t4; rs2 = Reg.t4 });
          I (Muldiv { op = Mulh; rd = Reg.a5; rs1 = Reg.t4; rs2 = Reg.t4 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "div by zero" (-1L) (reg t Reg.a0);
  check_i64 "rem by zero" 7L (reg t Reg.a1);
  check_i64 "min/-1 div" Int64.min_int (reg t Reg.a2);
  check_i64 "min/-1 rem" 0L (reg t Reg.a3);
  (* 0xFFFF..F * 0xFFFF..F unsigned high word = 0xFFFF..E *)
  check_i64 "mulhu all-ones" (-2L) (reg t Reg.a4);
  (* (-1) * (-1) = 1: signed high word 0. *)
  check_i64 "mulh all-ones" 0L (reg t Reg.a5)

let test_load_store_widths () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.s0, 0x2000);
          Li (Reg.t0, -2);
          I (Store { kind = Sb; rs1 = Reg.s0; rs2 = Reg.t0; offset = 0 });
          I (Load { kind = Lb; rd = Reg.a0; rs1 = Reg.s0; offset = 0 });
          I (Load { kind = Lbu; rd = Reg.a1; rs1 = Reg.s0; offset = 0 });
          Li (Reg.t1, 0x12345678);
          I (Store { kind = Sw; rs1 = Reg.s0; rs2 = Reg.t1; offset = 8 });
          I (Load { kind = Lw; rd = Reg.a2; rs1 = Reg.s0; offset = 8 });
          I (Load { kind = Lhu; rd = Reg.a3; rs1 = Reg.s0; offset = 8 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "lb sign-extends" (-2L) (reg t Reg.a0);
  check_i64 "lbu zero-extends" 0xFEL (reg t Reg.a1);
  check_i64 "lw" 0x12345678L (reg t Reg.a2);
  check_i64 "lhu low half" 0x5678L (reg t Reg.a3)

let test_jal_jalr_link () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.a0, 0);
          Call "f";
          I (Alu_imm { op = Add; rd = Reg.a0; rs1 = Reg.a0; imm = 100 });
          J "done";
          Label "f";
          I (Alu_imm { op = Add; rd = Reg.a0; rs1 = Reg.a0; imm = 1 });
          Ret;
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "call then fallthrough" 101L (reg t Reg.a0)

(* ------------------------------------------------------------------ *)
(* Atomics (RV64A)                                                      *)
(* ------------------------------------------------------------------ *)

let test_amo_operations () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.s0, 0x2000);
          Li (Reg.t0, 10);
          I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.t0; offset = 0 });
          Li (Reg.t1, 5);
          (* a0 = old (10), mem = 15 *)
          I (Amo { op = Amoadd; width = D; rd = Reg.a0; rs1 = Reg.s0; rs2 = Reg.t1 });
          (* a1 = old (15), mem = 5 *)
          I (Amo { op = Amoswap; width = D; rd = Reg.a1; rs1 = Reg.s0; rs2 = Reg.t1 });
          Li (Reg.t2, -3);
          (* a2 = old (5), mem = min(5,-3) = -3 *)
          I (Amo { op = Amomin; width = D; rd = Reg.a2; rs1 = Reg.s0; rs2 = Reg.t2 });
          (* a3 = old (-3), mem = maxu(-3,5) = -3 (unsigned max) *)
          I (Amo { op = Amomaxu; width = D; rd = Reg.a3; rs1 = Reg.s0; rs2 = Reg.t1 });
          I (Load { kind = Ld; rd = Reg.a4; rs1 = Reg.s0; offset = 0 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "amoadd old" 10L (reg t Reg.a0);
  check_i64 "amoswap old" 15L (reg t Reg.a1);
  check_i64 "amomin old" 5L (reg t Reg.a2);
  check_i64 "amomaxu old" (-3L) (reg t Reg.a3);
  check_i64 "final value" (-3L) (reg t Reg.a4)

let test_lr_sc_success_and_failure () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.s0, 0x2000);
          Li (Reg.t0, 7);
          I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.t0; offset = 0 });
          (* LR then SC with no intervening store: succeeds (a0 = 0). *)
          I (Lr { width = D; rd = Reg.a1; rs1 = Reg.s0 });
          Li (Reg.t1, 99);
          I (Sc { width = D; rd = Reg.a0; rs1 = Reg.s0; rs2 = Reg.t1 });
          (* SC without a reservation: fails (a2 = 1), memory unchanged. *)
          Li (Reg.t2, 123);
          I (Sc { width = D; rd = Reg.a2; rs1 = Reg.s0; rs2 = Reg.t2 });
          I (Load { kind = Ld; rd = Reg.a3; rs1 = Reg.s0; offset = 0 });
          (* LR, then an intervening store breaks the reservation. *)
          I (Lr { width = D; rd = Reg.a4; rs1 = Reg.s0 });
          I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.t0; offset = 8 });
          I (Sc { width = D; rd = Reg.a5; rs1 = Reg.s0; rs2 = Reg.t2 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "lr reads" 7L (reg t Reg.a1);
  check_i64 "sc succeeds" 0L (reg t Reg.a0);
  check_i64 "sc without reservation fails" 1L (reg t Reg.a2);
  check_i64 "failed sc left memory alone" 99L (reg t Reg.a3);
  check_i64 "sc after intervening store fails" 1L (reg t Reg.a5)

let test_amo_word_sign_extension () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.s0, 0x2000);
          Li (Reg.t0, 0x7FFFFFFF);
          I (Store { kind = Sw; rs1 = Reg.s0; rs2 = Reg.t0; offset = 0 });
          Li (Reg.t1, 1);
          (* 32-bit wrap: old 0x7FFFFFFF, new 0x80000000 (negative as W) *)
          I (Amo { op = Amoadd; width = W; rd = Reg.a0; rs1 = Reg.s0; rs2 = Reg.t1 });
          I (Load { kind = Lw; rd = Reg.a1; rs1 = Reg.s0; offset = 0 });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "amoadd.w old" 0x7FFFFFFFL (reg t Reg.a0);
  check_i64 "amoadd.w wraps and sign-extends" (-0x80000000L) (reg t Reg.a1)

(* ------------------------------------------------------------------ *)
(* Traps, privilege, CSRs                                               *)
(* ------------------------------------------------------------------ *)

(* Drop to U-mode at [upc] (bare translation) with an M-mode trap handler
   at [handler]. *)
let enter_user t ~upc ~handler =
  let s = Fsim.state t in
  Cpu_state.set_csr_raw s Csr.mtvec (Int64.of_int handler);
  (* Allow all regions so U-mode can run anywhere for these tests. *)
  Cpu_state.set_csr_raw s Csr.mregions (-1L);
  (* mstatus.MPP = U then mret. *)
  Cpu_state.set_csr_raw s Csr.mepc (Int64.of_int upc);
  Cpu_state.set_mode s Priv.Machine;
  let mret = Asm.assemble ~base:0x100 Asm.[ I Mret ] in
  Fsim.load_program t mret;
  Cpu_state.set_pc s 0x100L;
  ignore (Fsim.step t);
  check_bool "now in user mode" true (Cpu_state.mode s = Priv.User)

let test_ecall_from_u_traps_to_m () =
  let t = fresh () in
  let user = Asm.assemble ~base:0x4000 Asm.[ I Ecall ] in
  Fsim.load_program t user;
  let handler = Asm.assemble ~base:0x8000 Asm.[ I Wfi ] in
  Fsim.load_program t handler;
  enter_user t ~upc:0x4000 ~handler:0x8000;
  let r = Fsim.step t in
  (match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Ecall_from_u; target = Priv.Machine; _ }
    -> ()
  | _ -> Alcotest.fail "expected ecall-from-U to machine mode");
  let s = Fsim.state t in
  check_bool "mode is machine" true (Cpu_state.mode s = Priv.Machine);
  check_i64 "mepc is ecall pc" 0x4000L (Cpu_state.csr_raw s Csr.mepc);
  check_i64 "pc at handler" 0x8000L (Cpu_state.pc s);
  check_i64 "mcause" (Priv.cause_code (Priv.Exception Priv.Ecall_from_u))
    (Cpu_state.csr_raw s Csr.mcause)

let test_ecall_delegation_to_s () =
  let t = fresh () in
  let s = Fsim.state t in
  (* Delegate ecall-from-U (code 8) to supervisor mode. *)
  Cpu_state.set_csr_raw s Csr.medeleg (Int64.shift_left 1L 8);
  Cpu_state.set_csr_raw s Csr.stvec 0x9000L;
  let user = Asm.assemble ~base:0x4000 Asm.[ I Ecall ] in
  Fsim.load_program t user;
  enter_user t ~upc:0x4000 ~handler:0x8000;
  let r = Fsim.step t in
  (match r.Fsim.trap with
  | Some { target = Priv.Supervisor; _ } -> ()
  | _ -> Alcotest.fail "expected delegation to S");
  check_bool "mode is supervisor" true (Cpu_state.mode s = Priv.Supervisor);
  check_i64 "sepc" 0x4000L (Cpu_state.csr_raw s Csr.sepc);
  check_i64 "pc at stvec" 0x9000L (Cpu_state.pc s)

let test_csr_privilege_enforced () =
  let t = fresh () in
  (* U-mode reading mstatus must raise illegal instruction. *)
  let user =
    Asm.assemble ~base:0x4000
      Asm.[ I (Csr { op = Csrrs; rd = Reg.a0; src = Rs Reg.x0; csr = Csr.mstatus }) ]
  in
  Fsim.load_program t user;
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  enter_user t ~upc:0x4000 ~handler:0x8000;
  let r = Fsim.step t in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Illegal_instruction; _ } -> ()
  | _ -> Alcotest.fail "expected illegal instruction"

let test_csr_read_only () =
  let t = fresh () in
  let s = Fsim.state t in
  (* Writing mhartid (0xF14, read-only block) is illegal even in M. *)
  check_bool "write mhartid rejected" true
    (Cpu_state.write_csr s Csr.mhartid 1L = Error Cpu_state.Illegal_csr);
  check_bool "read mhartid fine" true (Cpu_state.read_csr s Csr.mhartid = Ok 0L)

let test_csrrw_roundtrip () =
  let t = fresh () in
  let prog =
    Asm.assemble ~base:0x1000
      Asm.
        [
          Li (Reg.t0, 0xABCD);
          I (Csr { op = Csrrw; rd = Reg.a0; src = Rs Reg.t0; csr = Csr.mscratch });
          I (Csr { op = Csrrs; rd = Reg.a1; src = Rs Reg.x0; csr = Csr.mscratch });
          (* csrrc clears the low bit. *)
          Li (Reg.t1, 1);
          I (Csr { op = Csrrc; rd = Reg.a2; src = Rs Reg.t1; csr = Csr.mscratch });
          I (Csr { op = Csrrs; rd = Reg.a3; src = Rs Reg.x0; csr = Csr.mscratch });
          Label "done";
          I Wfi;
        ]
  in
  run_program t prog "done";
  check_i64 "initial mscratch zero" 0L (reg t Reg.a0);
  check_i64 "readback" 0xABCDL (reg t Reg.a1);
  check_i64 "csrrc old" 0xABCDL (reg t Reg.a2);
  check_i64 "cleared bit" 0xABCCL (reg t Reg.a3)

let test_timer_interrupt () =
  let t = fresh () in
  let s = Fsim.state t in
  Cpu_state.set_csr_raw s Csr.mtvec 0x8000L;
  Cpu_state.set_csr_raw s Csr.mie (Int64.shift_left 1L 7);
  Fsim.load_program t (Asm.assemble ~base:0x1000 Asm.[ Nop; Nop ]);
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  Cpu_state.set_pc s 0x1000L;
  Cpu_state.set_mie s true;
  ignore (Fsim.step t);
  Fsim.raise_timer_interrupt t;
  let r = Fsim.step t in
  (match r.Fsim.trap with
  | Some { cause = Priv.Interrupt Priv.Timer_interrupt; _ } -> ()
  | _ -> Alcotest.fail "expected timer interrupt");
  check_bool "no instruction executed on interrupt step" true
    (r.Fsim.executed = None);
  check_i64 "pc at mtvec" 0x8000L (Cpu_state.pc s);
  (* MIE pushed to MPIE and cleared. *)
  check_bool "MIE cleared" false (Cpu_state.mie s);
  (* Interrupt is not retaken while masked. *)
  let r2 = Fsim.step t in
  check_bool "masked in handler" true (r2.Fsim.trap = None)

let test_mret_restores () =
  let t = fresh () in
  let s = Fsim.state t in
  enter_user t ~upc:0x4000 ~handler:0x8000;
  check_bool "MPP reset to U after mret" true
    (Cpu_state.mode s = Priv.User)

(* ------------------------------------------------------------------ *)
(* Virtual memory                                                       *)
(* ------------------------------------------------------------------ *)

(* Set up: user code page mapped at VA 0x4000 -> PA 0x10000, data page at
   VA 0x5000 -> PA 0x11000, page tables at 0x100000+. *)
let setup_vm t =
  let mem = Fsim.mem t in
  let root = 0x100000 in
  let alloc =
    let next = ref 0x101000 in
    fun () ->
      let p = !next in
      next := p + 4096;
      p
  in
  Page_table.map_page mem ~alloc ~root ~vaddr:0x4000L ~paddr:0x10000
    ~perm:(Page_table.perm_user Page_table.perm_rx);
  Page_table.map_page mem ~alloc ~root ~vaddr:0x5000L ~paddr:0x11000
    ~perm:(Page_table.perm_user Page_table.perm_rw);
  let s = Fsim.state t in
  Cpu_state.set_csr_raw s Csr.satp
    (Int64.logor (Int64.shift_left 8L 60) (Int64.of_int (root / 4096)));
  root

let test_vm_translated_execution () =
  let t = fresh () in
  ignore (setup_vm t);
  let prog =
    Asm.assemble ~base:0x4000
      Asm.
        [
          Li (Reg.s0, 0x5000);
          Li (Reg.t0, 42);
          I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.t0; offset = 0 });
          I (Load { kind = Ld; rd = Reg.a0; rs1 = Reg.s0; offset = 8 });
          Label "spin";
          J "spin";
        ]
  in
  (* Code is loaded at its physical location. *)
  let phys = Asm.assemble ~base:0x10000 [] in
  ignore phys;
  let mem = Fsim.mem t in
  Array.iteri
    (fun i w -> Mi6_mem.Phys_mem.write_u32 mem (0x10000 + (4 * i)) w)
    prog.Asm.words;
  (* Pre-place data at PA 0x11008. *)
  Phys_mem.write_u64 mem 0x11008 77L;
  enter_user t ~upc:0x4000 ~handler:0x8000;
  let spin = Int64.of_int (Asm.lookup prog "spin") in
  let n =
    Fsim.run t ~max_steps:100 ~until:(fun t ->
        Cpu_state.pc (Fsim.state t) = spin)
  in
  check_bool "reached spin" true (n < 100);
  check_i64 "load through VM" 77L (reg t Reg.a0);
  check_i64 "store through VM hit PA 0x11000" 42L (Phys_mem.read_u64 mem 0x11000)

let test_vm_page_fault_unmapped () =
  let t = fresh () in
  ignore (setup_vm t);
  let prog =
    Asm.assemble ~base:0x4000
      Asm.
        [
          Li (Reg.s0, 0x7000);
          I (Load { kind = Ld; rd = Reg.a0; rs1 = Reg.s0; offset = 0 });
        ]
  in
  let mem = Fsim.mem t in
  Array.iteri
    (fun i w -> Phys_mem.write_u32 mem (0x10000 + (4 * i)) w)
    prog.Asm.words;
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  enter_user t ~upc:0x4000 ~handler:0x8000;
  ignore (Fsim.step t);
  ignore (Fsim.step t);
  let r = Fsim.step t in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Load_page_fault; tval; _ } ->
    check_i64 "tval is faulting VA" 0x7000L tval
  | _ -> Alcotest.fail "expected load page fault"

let test_vm_write_to_rx_page_faults () =
  let t = fresh () in
  ignore (setup_vm t);
  let prog =
    Asm.assemble ~base:0x4000
      Asm.
        [
          Li (Reg.s0, 0x4000);
          I (Store { kind = Sd; rs1 = Reg.s0; rs2 = Reg.x0; offset = 0 });
        ]
  in
  let mem = Fsim.mem t in
  Array.iteri
    (fun i w -> Phys_mem.write_u32 mem (0x10000 + (4 * i)) w)
    prog.Asm.words;
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  enter_user t ~upc:0x4000 ~handler:0x8000;
  ignore (Fsim.step t);
  ignore (Fsim.step t);
  let r = Fsim.step t in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Store_page_fault; _ } -> ()
  | _ -> Alcotest.fail "expected store page fault"

let test_walk_accesses_recorded () =
  let t = fresh () in
  ignore (setup_vm t);
  let prog = Asm.assemble ~base:0x4000 Asm.[ Nop ] in
  let mem = Fsim.mem t in
  Array.iteri
    (fun i w -> Phys_mem.write_u32 mem (0x10000 + (4 * i)) w)
    prog.Asm.words;
  enter_user t ~upc:0x4000 ~handler:0x8000;
  let r = Fsim.step t in
  let walks =
    List.filter (fun a -> a.Fsim.kind = Fsim.Walk) r.Fsim.accesses
  in
  let fetches =
    List.filter (fun a -> a.Fsim.kind = Fsim.Fetch) r.Fsim.accesses
  in
  check_int "three walk steps for a cold fetch" 3 (List.length walks);
  check_int "one fetch" 1 (List.length fetches);
  check_int "fetch paddr translated" 0x10000
    (List.hd fetches).Fsim.paddr

(* ------------------------------------------------------------------ *)
(* MI6: region validation, fetch restriction, purge                     *)
(* ------------------------------------------------------------------ *)

let region_bytes = Addr.default_regions.Addr.region_bytes

let test_region_fault_on_load () =
  let t = fresh () in
  let s = Fsim.state t in
  (* Allow only region 0. *)
  let user =
    Asm.assemble ~base:0x4000
      Asm.
        [
          Li (Reg.s0, region_bytes);
          (* first address of region 1 *)
          I (Load { kind = Ld; rd = Reg.a0; rs1 = Reg.s0; offset = 0 });
        ]
  in
  Fsim.load_program t user;
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  enter_user t ~upc:0x4000 ~handler:0x8000;
  Cpu_state.set_csr_raw s Csr.mregions 1L;
  ignore (Fsim.step t);
  ignore (Fsim.step t);
  let r = Fsim.step t in
  (match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Region_fault; tval; _ } ->
    check_i64 "tval is offending paddr" (Int64.of_int region_bytes) tval
  | _ -> Alcotest.fail "expected region fault");
  (* The forbidden access must not have been emitted to the memory
     system. *)
  check_bool "no load access emitted" true
    (List.for_all (fun a -> a.Fsim.kind <> Fsim.Load) r.Fsim.accesses)

let test_region_fault_on_walk () =
  let t = fresh () in
  let root = setup_vm t in
  ignore root;
  let s = Fsim.state t in
  let mem = Fsim.mem t in
  let prog = Asm.assemble ~base:0x4000 Asm.[ Nop ] in
  Array.iteri
    (fun i w -> Phys_mem.write_u32 mem (0x10000 + (4 * i)) w)
    prog.Asm.words;
  enter_user t ~upc:0x4000 ~handler:0x8000;
  (* Page tables live at 0x100000 (region 0): forbid region 0, allow only
     region 1.  The very first walk step then violates. *)
  Cpu_state.set_csr_raw s Csr.mregions 2L;
  let r = Fsim.step t in
  (match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Region_fault; _ } -> ()
  | _ -> Alcotest.fail "expected region fault on page walk");
  check_int "no accesses emitted at all" 0 (List.length r.Fsim.accesses)

let test_region_fault_on_fetch () =
  let t = fresh () in
  let s = Fsim.state t in
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  (* User code sits in region 1; only region 0 allowed. *)
  let upc = region_bytes + 0x1000 in
  let user = Asm.assemble ~base:upc Asm.[ Nop ] in
  Fsim.load_program t user;
  enter_user t ~upc ~handler:0x8000;
  Cpu_state.set_csr_raw s Csr.mregions 1L;
  let r = Fsim.step t in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Region_fault; _ } ->
    check_bool "fetch suppressed" true (r.Fsim.accesses = [])
  | _ -> Alcotest.fail "expected region fault on fetch"

let test_machine_mode_bypasses_regions () =
  let t = fresh () in
  let s = Fsim.state t in
  Cpu_state.set_csr_raw s Csr.mregions 0L;
  (* Even with an empty region mask, M-mode runs fine. *)
  let prog =
    Asm.assemble ~base:0x1000
      Asm.[ Li (Reg.a0, 7); Label "done"; I Wfi ]
  in
  run_program t prog "done";
  check_i64 "machine mode unaffected" 7L (reg t Reg.a0)

let test_mfetch_restriction () =
  let t = fresh () in
  let s = Fsim.state t in
  (* Restrict machine-mode fetch to the 4 KB page at 0x1000. *)
  Cpu_state.set_csr_raw s Csr.mfetchmask (Int64.lognot 0xFFFL);
  Cpu_state.set_csr_raw s Csr.mfetchbase 0x1000L;
  Cpu_state.set_csr_raw s Csr.mtvec 0x1800L;
  let inside =
    Asm.assemble ~base:0x1000 Asm.[ Li (Reg.a0, 1); J "far" ; Label "far"]
  in
  ignore inside;
  (* Jump from inside the window to outside: the outside fetch faults. *)
  let prog =
    Asm.assemble ~base:0x1000
      Asm.[ Li (Reg.a0, 1); I (Jalr { rd = 0; rs1 = Reg.t0; offset = 0 }) ]
  in
  Fsim.load_program t prog;
  Fsim.load_program t (Asm.assemble ~base:0x4000 Asm.[ Nop ]);
  Cpu_state.set_pc s 0x1000L;
  Cpu_state.set_reg s Reg.t0 0x4000L;
  ignore (Fsim.step t);
  ignore (Fsim.step t);
  ignore (Fsim.step t);
  (* Now pc = 0x4000, outside the window. *)
  let r = Fsim.step t in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Instr_access_fault; _ } ->
    check_bool "fetch suppressed" true (r.Fsim.accesses = [])
  | _ -> Alcotest.fail "expected instruction access fault outside window"

let test_purge_machine_mode_only () =
  let t = fresh () in
  let purges = ref 0 in
  Fsim.set_on_purge t (fun () -> incr purges);
  let prog = Asm.assemble ~base:0x1000 Asm.[ I Purge; Label "done"; I Wfi ] in
  run_program t prog "done";
  check_int "purge hook fired" 1 !purges;
  (* From user mode: illegal instruction. *)
  let t2 = fresh () in
  let user = Asm.assemble ~base:0x4000 Asm.[ I Purge ] in
  Fsim.load_program t2 user;
  Fsim.load_program t2 (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  enter_user t2 ~upc:0x4000 ~handler:0x8000;
  let r = Fsim.step t2 in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Illegal_instruction; _ } -> ()
  | _ -> Alcotest.fail "expected illegal instruction for purge in U-mode"

let test_purged_flag_in_step_result () =
  let t = fresh () in
  let prog = Asm.assemble ~base:0x1000 Asm.[ I Purge ] in
  Fsim.load_program t prog;
  Cpu_state.set_pc (Fsim.state t) 0x1000L;
  let r = Fsim.step t in
  check_bool "step reports purge" true r.Fsim.purged

let test_tvm_traps_satp_access () =
  let t = fresh () in
  let s = Fsim.state t in
  (* Set mstatus.TVM. *)
  Cpu_state.set_csr_raw s Csr.mstatus (Int64.shift_left 1L 20);
  Cpu_state.set_csr_raw s Csr.mtvec 0x8000L;
  Cpu_state.set_csr_raw s Csr.mregions (-1L);
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  (* Enter S-mode at 0x4000 where it writes satp. *)
  let sprog =
    Asm.assemble ~base:0x4000
      Asm.[ I (Csr { op = Csrrw; rd = 0; src = Rs Reg.x0; csr = Csr.satp }) ]
  in
  Fsim.load_program t sprog;
  Cpu_state.set_csr_raw s Csr.mepc 0x4000L;
  (* MPP = S *)
  Cpu_state.set_csr_raw s Csr.mstatus
    (Int64.logor (Cpu_state.csr_raw s Csr.mstatus) (Int64.shift_left 1L 11));
  Fsim.load_program t (Asm.assemble ~base:0x100 Asm.[ I Mret ]);
  Cpu_state.set_pc s 0x100L;
  ignore (Fsim.step t);
  check_bool "in S mode" true (Cpu_state.mode s = Priv.Supervisor);
  let r = Fsim.step t in
  match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Illegal_instruction; _ } -> ()
  | _ -> Alcotest.fail "expected TVM trap on satp access from S"

(* ------------------------------------------------------------------ *)
(* Firmware (security monitor model)                                    *)
(* ------------------------------------------------------------------ *)

let test_firmware_handles_ecall () =
  let t = fresh () in
  let calls = ref [] in
  Fsim.set_firmware t (fun t ~cause ~tval:_ ~epc ->
      match cause with
      | Priv.Exception Priv.Ecall_from_u ->
        let s = Fsim.state t in
        calls := Cpu_state.get_reg s Reg.a7 :: !calls;
        (* SM call: return a value in a0, resume after the ecall. *)
        Cpu_state.set_reg s Reg.a0 999L;
        Cpu_state.set_pc s (Int64.add epc 4L);
        true
      | _ -> false);
  let user =
    Asm.assemble ~base:0x4000
      Asm.[ Li (Reg.a7, 5); I Ecall; Label "after"; J "after" ]
  in
  Fsim.load_program t user;
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  enter_user t ~upc:0x4000 ~handler:0x8000;
  ignore (Fsim.step t);
  ignore (Fsim.step t);
  let r = Fsim.step t in
  (match r.Fsim.trap with
  | Some { cause = Priv.Exception Priv.Ecall_from_u; _ } -> ()
  | _ -> Alcotest.fail "trap still reported");
  let s = Fsim.state t in
  check_bool "stayed in user mode" true (Cpu_state.mode s = Priv.User);
  check_i64 "firmware return value" 999L (Cpu_state.get_reg s Reg.a0);
  check_i64 "resumed after ecall" (Int64.of_int (Asm.lookup user "after"))
    (Cpu_state.pc s);
  Alcotest.(check (list int64)) "firmware saw the call" [ 5L ] !calls

let test_firmware_can_decline () =
  let t = fresh () in
  Fsim.set_firmware t (fun _ ~cause:_ ~tval:_ ~epc:_ -> false);
  let s = Fsim.state t in
  Cpu_state.set_csr_raw s Csr.mtvec 0x8000L;
  Fsim.load_program t (Asm.assemble ~base:0x8000 Asm.[ I Wfi ]);
  let user = Asm.assemble ~base:0x4000 Asm.[ I Ecall ] in
  Fsim.load_program t user;
  enter_user t ~upc:0x4000 ~handler:0x8000;
  ignore (Fsim.step t);
  check_bool "declined trap enters M" true (Cpu_state.mode s = Priv.Machine);
  check_i64 "vectored to mtvec" 0x8000L (Cpu_state.pc s)

let () =
  Alcotest.run "mi6_func"
    [
      ( "arith",
        [
          Alcotest.test_case "sum loop" `Quick test_sum_loop;
          Alcotest.test_case "alu ops" `Quick test_alu_ops;
          Alcotest.test_case "word ops sign extend" `Quick
            test_word_ops_sign_extend;
          Alcotest.test_case "muldiv edge cases" `Quick test_muldiv_edge_cases;
          Alcotest.test_case "load/store widths" `Quick test_load_store_widths;
          Alcotest.test_case "jal/jalr linkage" `Quick test_jal_jalr_link;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "amo operations" `Quick test_amo_operations;
          Alcotest.test_case "lr/sc" `Quick test_lr_sc_success_and_failure;
          Alcotest.test_case "amo.w sign extension" `Quick
            test_amo_word_sign_extension;
        ] );
      ( "traps",
        [
          Alcotest.test_case "ecall U->M" `Quick test_ecall_from_u_traps_to_m;
          Alcotest.test_case "medeleg ecall U->S" `Quick
            test_ecall_delegation_to_s;
          Alcotest.test_case "csr privilege" `Quick test_csr_privilege_enforced;
          Alcotest.test_case "read-only csrs" `Quick test_csr_read_only;
          Alcotest.test_case "csrrw/s/c semantics" `Quick test_csrrw_roundtrip;
          Alcotest.test_case "timer interrupt" `Quick test_timer_interrupt;
          Alcotest.test_case "mret restores mode" `Quick test_mret_restores;
        ] );
      ( "vm",
        [
          Alcotest.test_case "translated execution" `Quick
            test_vm_translated_execution;
          Alcotest.test_case "page fault unmapped" `Quick
            test_vm_page_fault_unmapped;
          Alcotest.test_case "write to rx page" `Quick
            test_vm_write_to_rx_page_faults;
          Alcotest.test_case "walk accesses recorded" `Quick
            test_walk_accesses_recorded;
        ] );
      ( "mi6_checks",
        [
          Alcotest.test_case "region fault on load" `Quick
            test_region_fault_on_load;
          Alcotest.test_case "region fault on walk" `Quick
            test_region_fault_on_walk;
          Alcotest.test_case "region fault on fetch" `Quick
            test_region_fault_on_fetch;
          Alcotest.test_case "machine mode bypasses" `Quick
            test_machine_mode_bypasses_regions;
          Alcotest.test_case "mfetch window" `Quick test_mfetch_restriction;
          Alcotest.test_case "purge privilege" `Quick
            test_purge_machine_mode_only;
          Alcotest.test_case "purge flag" `Quick test_purged_flag_in_step_result;
          Alcotest.test_case "TVM traps satp" `Quick test_tvm_traps_satp_access;
        ] );
      ( "firmware",
        [
          Alcotest.test_case "handles ecall" `Quick test_firmware_handles_ecall;
          Alcotest.test_case "can decline" `Quick test_firmware_can_decline;
        ] );
    ]
