# Convenience wrapper around dune; `make ci` is what the CI workflow runs.

.PHONY: all build test bench-smoke audit-smoke sweep-smoke telemetry-smoke top-smoke bisect-smoke ni-smoke lint lint-channels perf-compare ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Short benchmark run that must produce parseable machine-readable output
# (BENCH_run.json snapshot + BENCH_history.jsonl regression database).
bench-smoke:
	dune exec bench/main.exe -- --fast fig5
	dune exec bench/json_check.exe -- --require runs BENCH_run.json
	dune exec bench/json_check.exe -- --history BENCH_history.jsonl

# Leakage audit: exits nonzero unless the MI6 LLC shows zero divergence
# across attacker behaviours AND the baseline leak is localized.
audit-smoke:
	dune exec bin/mi6_sim.exe -- audit --json audit.json

# Domain-parallel sweep determinism gate: the --stats-json snapshot must
# be byte-identical no matter how many domains ran the cells.
sweep-smoke:
	dune exec bin/mi6_sim.exe -- sweep -b gcc,mcf -v base,f+p+m+a --seeds 2 \
		--warmup 2000 --measure 5000 --jobs 1 --stats-json sweep-serial.json
	dune exec bin/mi6_sim.exe -- sweep -b gcc,mcf -v base,f+p+m+a --seeds 2 \
		--warmup 2000 --measure 5000 --jobs 2 --stats-json sweep-parallel.json
	cmp sweep-serial.json sweep-parallel.json

# Telemetry gate: a run streaming JSONL snapshots every 1000 cycles must
# produce a stream that validates (schema, dense seq, increasing cycles)
# with a plausible snapshot count, and the per-cell streams of a sweep
# must be byte-identical between serial and parallel execution.
telemetry-smoke:
	dune exec bin/mi6_sim.exe -- run -b gcc -v base --warmup 2000 \
		--measure 20000 --telemetry telemetry.jsonl --telemetry-every 1000
	dune exec bench/json_check.exe -- --telemetry telemetry.jsonl \
		--min-snapshots 20
	dune exec bin/mi6_sim.exe -- sweep -b gcc,mcf -v base,f+p+m+a \
		--warmup 2000 --measure 5000 --jobs 1 --telemetry tel-serial \
		--telemetry-every 1000 > /dev/null
	dune exec bin/mi6_sim.exe -- sweep -b gcc,mcf -v base,f+p+m+a \
		--warmup 2000 --measure 5000 --jobs 2 --telemetry tel-parallel \
		--telemetry-every 1000 > /dev/null
	for f in tel-serial#*; do \
		cmp "$$f" "tel-parallel#$${f#tel-serial\#}" || exit 1; \
	done
	for f in tel-serial#*; do \
		dune exec bench/json_check.exe -- --telemetry "$$f"; \
	done

# The live-view subcommand must render the latest snapshot of a fresh
# stream in --once (CI) mode.
top-smoke:
	dune exec bin/mi6_sim.exe -- run -b gcc -v base --warmup 2000 \
		--measure 20000 --telemetry telemetry.jsonl --telemetry-every 1000
	dune exec bin/mi6_sim.exe -- top --once telemetry.jsonl

# Time-travel bisection gate: bisect the known BASE leak (spectre-v1 on
# BASE vs the full MI6 variant; exit 1 = divergence found, the expected
# outcome), validate the slice report against the mi6.bisect/1 schema,
# and cross-check that the diverging component hosts the channel the
# leakage auditor blames (audit.json from audit-smoke).  The secret-pair
# run on the same witness must stay clean: spectre-v1 leaks only
# transiently, never through committed state.
bisect-smoke:
	dune exec bin/mi6_sim.exe -- audit --json audit.json > /dev/null
	sh -c 'dune exec bin/mi6_sim.exe -- bisect --witness spectre-v1 \
		--variant-a base --variant-b f+p+m+a --json bisect.json \
		--history BISECT_history.jsonl; test $$? -eq 1'
	dune exec bench/json_check.exe -- --bisect bisect.json \
		--agrees-audit audit.json
	dune exec bench/json_check.exe -- --history BISECT_history.jsonl
	dune exec bin/mi6_sim.exe -- bisect --witness spectre-v1 \
		--secret-a 0 --secret-b 1 --json bisect-secret.json
	dune exec bench/json_check.exe -- --bisect bisect-secret.json
	# Identical rerun must not regress bisection speed (flight-recorder
	# overhead gate: compare.exe's kips threshold over the host section).
	sh -c 'dune exec bin/mi6_sim.exe -- bisect --witness spectre-v1 \
		--variant-a base --variant-b f+p+m+a \
		--history BISECT_history.jsonl > /dev/null; test $$? -eq 1'
	dune exec bench/compare.exe -- --history BISECT_history.jsonl

# Interrupt-schedule noninterference gate:
#   - a generated adversarial batch on the full MI6 variant must pass
#     clean (exit 0) and its mi6.ni/1 report must validate;
#   - replaying the committed BASE counterexample must falsify (exit 1)
#     and its report must validate too, which (via json_check --ni)
#     requires the Audit localization to name a real leaking channel;
#   - the replay verdicts must be byte-identical across --jobs.
ni-smoke:
	dune build bin/mi6_sim.exe bench/json_check.exe
	dune exec bin/mi6_sim.exe -- ni --count 25 --seed 42 --json ni-fpma.json
	dune exec bench/json_check.exe -- --ni ni-fpma.json
	sh -c 'dune exec bin/mi6_sim.exe -- ni \
		--schedule-file examples/ni/base-counterexample.sched \
		--json ni-base.json; test $$? -eq 1'
	dune exec bench/json_check.exe -- --ni ni-base.json
	sh -c 'dune exec bin/mi6_sim.exe -- ni --jobs 2 \
		--schedule-file examples/ni/base-counterexample.sched \
		--json ni-base-j2.json; test $$? -eq 1'
	cmp ni-base.json ni-base-j2.json

# Diff the two most recent bench runs in BENCH_history.jsonl; exits
# nonzero on a cycle or IPC regression past the default 5% thresholds.
perf-compare:
	dune exec bench/compare.exe

# Static constant-time / hardware-invariant lint gate (exit codes:
# 0 = clean, 1 = findings, 2 = usage/IO error):
#   - the MI6 machine configuration must lint clean;
#   - the BASE variant must be flagged, so the linter demonstrably sees
#     violations;
#   - every committed example program in examples/lint/ must get its
#     expected verdict under a 32-instruction speculation window
#     (ct_* clean, everything else flagged).
lint:
	dune build bin/mi6_sim.exe
	dune exec bin/mi6_sim.exe -- lint --machine mi6 --json lint-mi6.json
	sh -c 'dune exec bin/mi6_sim.exe -- lint --machine base --json lint-base.json; test $$? -eq 1'
	sh -c 'dune exec bin/mi6_sim.exe -- lint --witness all --speculative 32 --json lint-witnesses.json; test $$? -eq 1'
	for f in examples/lint/*.hex; do \
		case $$f in examples/lint/ct_*) want=0 ;; *) want=1 ;; esac; \
		dune exec bin/mi6_sim.exe -- lint --hex $$f --speculative 32; got=$$?; \
		if [ $$got -ne $$want ]; then \
			echo "lint: $$f exited $$got, expected $$want"; exit 1; \
		fi; \
	done

# Channel-inference gate (mi6.lint/2 reports):
#   - the full witness corpus under --channels must produce a report
#     that validates against json_check --lint (every speculative
#     finding names a channel) and is byte-identical across two runs;
#   - the BASE machine must be flagged with each config finding mapped
#     to the channel it leaves open, the MI6 machine must lint clean
#     over the same shared-region demo ledger;
#   - every committed hex example must get its expected verdict with
#     channel lowering on (ct_* clean, everything else flagged).
lint-channels:
	dune build bin/mi6_sim.exe bench/json_check.exe
	sh -c 'dune exec bin/mi6_sim.exe -- lint --witness all --speculative 32 \
		--channels --json lint-channels.json; test $$? -eq 1'
	sh -c 'dune exec bin/mi6_sim.exe -- lint --witness all --speculative 32 \
		--channels --json lint-channels-2.json; test $$? -eq 1'
	cmp lint-channels.json lint-channels-2.json
	dune exec bench/json_check.exe -- --lint lint-channels.json
	sh -c 'dune exec bin/mi6_sim.exe -- lint --machine base --channels \
		--json lint-channels-base.json; test $$? -eq 1'
	dune exec bin/mi6_sim.exe -- lint --machine mi6 --channels \
		--json lint-channels-mi6.json
	dune exec bench/json_check.exe -- --lint lint-channels-base.json \
		--lint lint-channels-mi6.json
	for f in examples/lint/*.hex; do \
		case $$f in examples/lint/ct_*) want=0 ;; *) want=1 ;; esac; \
		dune exec bin/mi6_sim.exe -- lint --hex $$f --speculative 32 \
			--channels --json "$${f%.hex}-channels.json"; got=$$?; \
		if [ $$got -ne $$want ]; then \
			echo "lint-channels: $$f exited $$got, expected $$want"; exit 1; \
		fi; \
		dune exec bench/json_check.exe -- --lint "$${f%.hex}-channels.json" \
			|| exit 1; \
	done
	rm -f examples/lint/*-channels.json

ci: build test bench-smoke audit-smoke sweep-smoke telemetry-smoke top-smoke bisect-smoke ni-smoke lint lint-channels

clean:
	dune clean
	rm -f BENCH_run.json audit.json sweep-serial.json sweep-parallel.json \
		lint-mi6.json lint-base.json lint-witnesses.json \
		lint-channels.json lint-channels-2.json lint-channels-base.json \
		lint-channels-mi6.json examples/lint/*-channels.json \
		bisect.json bisect-secret.json BISECT_history.jsonl \
		ni-fpma.json ni-base.json ni-base-j2.json \
		telemetry.jsonl tel-serial\#* tel-parallel\#*
