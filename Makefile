# Convenience wrapper around dune; `make ci` is what the CI workflow runs.

.PHONY: all build test bench-smoke ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Short benchmark run that must produce parseable machine-readable output.
bench-smoke:
	dune exec bench/main.exe -- --fast fig5
	dune exec bench/json_check.exe -- --require runs BENCH_run.json

ci: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_run.json
