# Convenience wrapper around dune; `make ci` is what the CI workflow runs.

.PHONY: all build test bench-smoke audit-smoke sweep-smoke perf-compare ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Short benchmark run that must produce parseable machine-readable output
# (BENCH_run.json snapshot + BENCH_history.jsonl regression database).
bench-smoke:
	dune exec bench/main.exe -- --fast fig5
	dune exec bench/json_check.exe -- --require runs BENCH_run.json
	dune exec bench/json_check.exe -- --history BENCH_history.jsonl

# Leakage audit: exits nonzero unless the MI6 LLC shows zero divergence
# across attacker behaviours AND the baseline leak is localized.
audit-smoke:
	dune exec bin/mi6_sim.exe -- audit --json audit.json

# Domain-parallel sweep determinism gate: the --stats-json snapshot must
# be byte-identical no matter how many domains ran the cells.
sweep-smoke:
	dune exec bin/mi6_sim.exe -- sweep -b gcc,mcf -v base,f+p+m+a --seeds 2 \
		--warmup 2000 --measure 5000 --jobs 1 --stats-json sweep-serial.json
	dune exec bin/mi6_sim.exe -- sweep -b gcc,mcf -v base,f+p+m+a --seeds 2 \
		--warmup 2000 --measure 5000 --jobs 2 --stats-json sweep-parallel.json
	cmp sweep-serial.json sweep-parallel.json

# Diff the two most recent bench runs in BENCH_history.jsonl; exits
# nonzero on a cycle or IPC regression past the default 5% thresholds.
perf-compare:
	dune exec bench/compare.exe

ci: build test bench-smoke audit-smoke sweep-smoke

clean:
	dune clean
	rm -f BENCH_run.json audit.json sweep-serial.json sweep-parallel.json
