(* Command-line front end for the simulator.

   Subcommands:
     run     run SPEC models on processor variants (default)
     multi   multiprogrammed multicore run (BASE vs secure MI6 machine)
     sweep   domain-parallel (variant x bench x seed) grid with
             deterministic merge (--jobs N)
     attack  side-channel verdicts (prime+probe, MSHR, DRAM banks)
     audit   leakage audit: victim event streams diffed across attackers
     profile CPI-stack attribution of a run, per variant
     area    structural area model
     lint    static secret-taint / constant-time analysis of programs and
             hardware-invariant linting of machine configurations

     bisect  lockstep two configurations from shared flight-recorder
             checkpoints, binary-search the first divergent cycle, and
             print a causal slice report

   Exit codes are uniform across subcommands: 0 = clean, 1 = findings
   (lint violations, leakage divergence, attribution residual, a
   bisection divergence), 2 = usage or I/O error. *)

open Cmdliner
open Mi6_core
module Taint = Mi6_analysis.Taint
module Hwlint = Mi6_analysis.Lint
module Witness = Mi6_analysis.Witness
module Channel = Mi6_analysis.Channel

(* ------------------------------------------------------------------ *)
(* Converters                                                          *)
(* ------------------------------------------------------------------ *)

let bench_conv =
  let parse s =
    match Mi6_workload.Spec.of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S" s))
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Mi6_workload.Spec.name b))

let variant_conv =
  let parse s =
    match Config.variant_of_name s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (Config.variant_name v))

let warmup =
  Arg.(value & opt int 200_000 & info [ "warmup" ] ~doc:"Warmup µops (untimed).")

let measure =
  Arg.(value & opt int 1_000_000 & info [ "measure" ] ~doc:"Measured µops.")

let jobs =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains to run independent simulations on.  1 (the \
                 default) stays on the calling domain; results and any \
                 JSON output are byte-identical for every N.")

(* Run [f] on a fresh pool; the pool is joined even when [f] raises.
   ([exit] inside [f] skips the join — process teardown reaps the
   workers, which only ever park on their condition variable.) *)
let with_pool ~jobs f =
  let pool = Mi6_exec.Pool.create ~domains:jobs in
  Fun.protect ~finally:(fun () -> Mi6_exec.Pool.shutdown pool)
    (fun () -> f pool)

(* Exit-code discipline shared by every subcommand: 0 = clean, 1 =
   findings, 2 = usage/IO error.  Term bodies return the code; file and
   parse failures funnel to 2 here. *)
let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success, with no findings.";
    Cmd.Exit.info 1
      ~doc:
        "when the command produced findings: lint violations, leakage \
         divergence, a CPI-stack attribution residual.";
    Cmd.Exit.info 2 ~doc:"on usage or I/O errors.";
  ]

let guard_io f =
  try f () with
  | Sys_error msg | Failure msg ->
    Printf.eprintf "mi6_sim: error: %s\n%!" msg;
    2

(* ------------------------------------------------------------------ *)
(* Observability options (shared by run and multi)                     *)
(* ------------------------------------------------------------------ *)

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON trace of the (last) run to                  $(docv); open it in chrome://tracing or Perfetto.")

let trace_text_file =
  Arg.(value & opt (some string) None
       & info [ "trace-text" ] ~docv:"FILE"
           ~doc:"Write a compact text dump of the (last) run's trace to                  $(docv).")

let trace_filter =
  let cat_conv =
    let parse s =
      match Mi6_obs.Trace.category_of_name s with
      | Some c -> Ok c
      | None -> Error (`Msg (Printf.sprintf "unknown trace category %S" s))
    in
    Arg.conv
      (parse, fun ppf c ->
        Format.pp_print_string ppf (Mi6_obs.Trace.category_name c))
  in
  Arg.(value & opt (some (list cat_conv)) None
       & info [ "trace-filter" ] ~docv:"CATS"
           ~doc:"Trace only these comma-separated categories                  (core,l1,llc,dram,ptw,purge); default all.")

let stats_json_file =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the full metrics registry (counters + histograms) of                  the (last) run to $(docv) as nested JSON.")

let stats_csv_file =
  Arg.(value & opt (some string) None
       & info [ "stats-csv" ] ~docv:"FILE"
           ~doc:"Write the metrics registry as flat name,value CSV.")

let telemetry_file =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Stream schema-versioned JSONL telemetry snapshots of the \
                 (last) run to $(docv) while it executes; watch with \
                 $(b,mi6_sim top) $(docv).")

let telemetry_every =
  Arg.(value & opt int 10_000
       & info [ "telemetry-every" ] ~docv:"N"
           ~doc:"Cycles between telemetry snapshots.")

let tracing_wanted ~trace_file ~trace_text_file =
  trace_file <> None || trace_text_file <> None

let make_trace ~trace_file ~trace_text_file ~trace_filter =
  if tracing_wanted ~trace_file ~trace_text_file then
    Mi6_obs.Trace.create ~capacity:(1 lsl 20) ?filter:trace_filter ()
  else Mi6_obs.Trace.null

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let export_trace trace ~trace_file ~trace_text_file =
  (match trace_file with
  | Some path ->
    write_file path (Mi6_obs.Json.to_string (Mi6_obs.Trace.to_chrome_json trace));
    Printf.printf "trace: %d events -> %s (chrome://tracing)
%!"
      (Mi6_obs.Trace.length trace) path
  | None -> ());
  match trace_text_file with
  | Some path ->
    write_file path (Format.asprintf "%a" Mi6_obs.Trace.pp trace);
    Printf.printf "trace: %d events -> %s (text)
%!"
      (Mi6_obs.Trace.length trace) path
  | None -> ()

let export_metrics metrics ~stats_json_file ~stats_csv_file =
  (match stats_json_file with
  | Some path ->
    write_file path (Mi6_obs.Json.to_string (Mi6_obs.Metrics.to_json metrics));
    Printf.printf "metrics -> %s
%!" path
  | None -> ());
  match stats_csv_file with
  | Some path ->
    write_file path (Mi6_obs.Metrics.to_csv metrics);
    Printf.printf "metrics -> %s
%!" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let print_result ~label ~variant r ~verbose =
  Printf.printf
    "%-11s %-8s cycles=%-10d instrs=%-9d ipc=%.3f br/ki=%.0f br-mpki=%.1f \
     llc-mpki=%.1f l1d-mpki=%.1f l1i-mpki=%.1f purge-stall=%d\n%!"
    label
    (Config.variant_name variant)
    r.Tmachine.cycles r.Tmachine.instrs (Tmachine.ipc r)
    (Tmachine.mpki r "core.branches")
    (Tmachine.mpki r "core.mispredicts")
    (Tmachine.mpki r "llc.misses")
    (Tmachine.mpki r "l1d.0.misses")
    (Tmachine.mpki r "l1i.0.misses")
    (Mi6_util.Stats.get r.Tmachine.stats "core.purge_stall_cycles");
  if verbose then Mi6_util.Stats.pp Format.std_formatter r.Tmachine.stats

let run_cmd =
  let benches =
    Arg.(value & opt (list bench_conv) Mi6_workload.Spec.all
         & info [ "b"; "bench" ] ~doc:"Benchmarks (comma separated).")
  in
  let variants =
    Arg.(value & opt (some (list variant_conv)) None
         & info [ "v"; "variant" ] ~doc:"Processor variants (comma separated).")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Dump all counters.") in
  let run benches variants warmup measure verbose trace_file trace_text_file
      trace_filter stats_json_file stats_csv_file telemetry_file
      telemetry_every =
    guard_io @@ fun () ->
    let open Mi6_obs in
    let tracing = tracing_wanted ~trace_file ~trace_text_file in
    let variants =
      match variants with
      | Some vs -> vs
      | None ->
        (* When tracing, default to the full MI6 variant so the trace
           shows purges and the secure LLC structures in action. *)
        if tracing then [ Config.Fpma ] else [ Config.Base ]
    in
    let trace = make_trace ~trace_file ~trace_text_file ~trace_filter in
    let last = ref None in
    let telemetry_snapshots = ref 0 in
    List.iter
      (fun bench ->
        List.iter
          (fun variant ->
            (* One trace per run: the exported file holds the last
               (bench, variant) pair.  Likewise telemetry: each run
               reopens (truncates) the stream, so the file holds the
               last run's snapshots with cycles increasing from 0. *)
            Mi6_obs.Trace.reset trace;
            let telemetry, selfprof, occupancy =
              match telemetry_file with
              | None -> (Telemetry.null, Selfprof.null, Occupancy.null)
              | Some path ->
                ( Telemetry.create ~every:telemetry_every ~path (),
                  Selfprof.create (),
                  Occupancy.create () )
            in
            let r =
              Fun.protect
                ~finally:(fun () ->
                  telemetry_snapshots := Telemetry.snapshots telemetry;
                  Telemetry.close telemetry)
                (fun () ->
                  Tmachine.run_spec ~trace ~telemetry ~selfprof ~occupancy
                    ~variant ~bench ~warmup ~measure ())
            in
            last := Some r;
            print_result ~label:(Mi6_workload.Spec.name bench) ~variant r
              ~verbose)
          variants)
      benches;
    if tracing then export_trace trace ~trace_file ~trace_text_file;
    (match telemetry_file with
    | Some path ->
      Printf.printf "telemetry: %d snapshots -> %s (mi6_sim top %s)\n%!"
        !telemetry_snapshots path path
    | None -> ());
    (match !last with
    | Some r ->
      export_metrics r.Tmachine.metrics ~stats_json_file ~stats_csv_file
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "run" ~exits ~doc:"run SPEC models on processor variants")
    Term.(const run $ benches $ variants $ warmup $ measure $ verbose
          $ trace_file $ trace_text_file $ trace_filter $ stats_json_file
          $ stats_csv_file $ telemetry_file $ telemetry_every)

(* ------------------------------------------------------------------ *)
(* multi                                                               *)
(* ------------------------------------------------------------------ *)

let multi_cmd =
  let benches =
    Arg.(value
         & opt (list bench_conv)
             [ Mi6_workload.Spec.Gcc; Mi6_workload.Spec.Libquantum ]
         & info [ "b"; "bench" ]
             ~doc:"One benchmark per core (comma separated).")
  in
  let secure =
    Arg.(value & flag
         & info [ "secure" ]
             ~doc:"Use the MI6 secure machine (Figure 3 LLC + purge) instead \
                   of BASE.")
  in
  let run benches secure warmup measure trace_file trace_text_file
      trace_filter stats_json_file stats_csv_file =
    guard_io @@ fun () ->
    let benches = Array.of_list benches in
    let cores = Array.length benches in
    let timing =
      if secure then Config.secure_multicore ~cores
      else Config.timing ~cores Config.Base
    in
    let trace = make_trace ~trace_file ~trace_text_file ~trace_filter in
    let rs = Tmachine.run_multi ~trace ~timing ~benches ~warmup ~measure () in
    Array.iteri
      (fun i r ->
        Printf.printf "core %d: %-11s cycles=%-10d ipc=%.3f (%s machine)\n" i
          (Mi6_workload.Spec.name benches.(i))
          r.Tmachine.cycles (Tmachine.ipc r)
          (if secure then "MI6" else "BASE"))
      rs;
    if tracing_wanted ~trace_file ~trace_text_file then
      export_trace trace ~trace_file ~trace_text_file;
    if Array.length rs > 0 then
      export_metrics rs.(0).Tmachine.metrics ~stats_json_file ~stats_csv_file;
    0
  in
  Cmd.v
    (Cmd.info "multi" ~exits ~doc:"multiprogrammed multicore run")
    Term.(const run $ benches $ secure $ warmup $ measure $ trace_file
          $ trace_text_file $ trace_filter $ stats_json_file $ stats_csv_file)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let benches =
    Arg.(value & opt (list bench_conv) Mi6_workload.Spec.all
         & info [ "b"; "bench" ] ~doc:"Benchmarks (comma separated).")
  in
  let variants =
    Arg.(value
         & opt (list variant_conv)
             [ Config.Base; Config.Flush; Config.Part; Config.Fpma ]
         & info [ "v"; "variant" ] ~doc:"Processor variants (comma separated).")
  in
  let seeds =
    Arg.(value & opt int 1
         & info [ "seeds" ] ~docv:"K"
             ~doc:"Stream seeds per (variant, bench) pair: seed 0 is the \
                   canonical stream, higher seeds deterministic \
                   perturbations of it.")
  in
  let history_file =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE"
             ~doc:"Append one Perfdb record per cell plus a wall-clock \
                   record for this invocation to $(docv) (JSONL).")
  in
  let run benches variants seeds warmup measure jobs stats_json_file
      history_file telemetry_file telemetry_every =
    guard_io @@ fun () ->
    let open Mi6_obs in
    let module Sweep = Mi6_exec.Sweep in
    let cells = Sweep.cells ~seeds ~variants ~benches () in
    Printf.printf "sweep: %d cells (%d benches x %d variants x %d seeds), \
                   %d warmup + %d measured µops, jobs=%d\n%!"
      (List.length cells) (List.length benches) (List.length variants) seeds
      warmup measure jobs;
    let t0 = Unix.gettimeofday () in
    let outcomes =
      with_pool ~jobs (fun pool ->
          Sweep.run pool ?telemetry:telemetry_file ~telemetry_every ~warmup
            ~measure cells)
    in
    let wall = Unix.gettimeofday () -. t0 in
    (match telemetry_file with
    | Some base ->
      (* One deterministic-mode stream per cell: the file set and every
         byte in it are identical for every --jobs value. *)
      Printf.printf "telemetry: %d per-cell streams -> %s#CELL\n%!"
        (List.length cells) base;
      List.iter
        (fun cell ->
          Printf.printf "  %s\n" (Sweep.telemetry_path ~base cell))
        cells
    | None -> ());
    List.iter
      (fun (o : Sweep.outcome) ->
        let r = o.Sweep.result in
        Printf.printf "%-24s cycles=%-10d instrs=%-9d ipc=%.3f llc-mpki=%.1f\n"
          (Sweep.cell_name o.Sweep.cell)
          r.Tmachine.cycles r.Tmachine.instrs (Tmachine.ipc r)
          (Tmachine.mpki r "llc.misses"))
      outcomes;
    (* The parseable wall-clock line CI's speedup check greps for.  Wall
       time deliberately stays out of the JSON snapshot so serial and
       parallel sweeps serialize identically. *)
    Printf.printf "sweep-wall jobs=%d cells=%d seconds=%.3f\n%!" jobs
      (List.length cells) wall;
    (match stats_json_file with
    | Some path ->
      write_file path (Json.to_string (Sweep.to_json ~warmup ~measure outcomes));
      Printf.printf "sweep metrics -> %s\n%!" path
    | None -> ());
    (match history_file with
    | Some path ->
      let commit = Perfdb.git_commit () in
      let run_id = Perfdb.next_run_id (Perfdb.load ~path) ~commit in
      let records = Sweep.to_perfdb_records ~run_id ~commit outcomes in
      let total_cycles =
        List.fold_left
          (fun acc (o : Sweep.outcome) -> acc + o.Sweep.result.Tmachine.cycles)
          0 outcomes
      in
      let wall_record =
        {
          Perfdb.run_id;
          commit;
          variant = "sweep";
          bench = Printf.sprintf "wall-jobs-%d" jobs;
          cycles = int_of_float (wall *. 1000.0);  (* milliseconds *)
          instrs = List.length cells;
          ipc = 0.0;
          cpi = [];
          quantiles = [];
          (* The bench name carries the job count, so the kips gate only
             ever compares invocations with the same parallelism. *)
          host =
            Some
              {
                Perfdb.wall_s = wall;
                kips =
                  (if wall <= 0.0 then 0.0
                   else float_of_int total_cycles /. wall /. 1000.0);
                phases = [];
              };
        }
      in
      Perfdb.append ~path (records @ [ wall_record ]);
      Printf.printf "appended run %s (%d records) -> %s\n%!" run_id
        (List.length records + 1) path
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "sweep" ~exits
       ~doc:
         "domain-parallel (variant x bench x seed) sweep with a \
          deterministic merge: --stats-json output is byte-identical for \
          every --jobs value")
    Term.(const run $ benches $ variants $ seeds $ warmup $ measure $ jobs
          $ stats_json_file $ history_file $ telemetry_file $ telemetry_every)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

let attack_cmd =
  let run () =
    guard_io @@ fun () ->
    let verdict name leaky =
      Printf.printf "%-46s %s\n" name
        (if leaky then "LEAKS" else "no leak (bit-identical)")
    in
    let open Noninterference in
    verdict "prime+probe, baseline LLC"
      (leaks [ prime_probe baseline_setup ~secret:true;
               prime_probe baseline_setup ~secret:false ]);
    verdict "prime+probe, MI6 LLC"
      (leaks [ prime_probe mi6_setup ~secret:true;
               prime_probe mi6_setup ~secret:false ]);
    verdict "MSHR/queue contention, baseline LLC"
      (leaks [ mshr_channel baseline_setup ~victim_floods:true;
               mshr_channel baseline_setup ~victim_floods:false ]);
    verdict "MSHR/queue contention, MI6 LLC"
      (leaks [ mshr_channel mi6_setup ~victim_floods:true;
               mshr_channel mi6_setup ~victim_floods:false ]);
    verdict "DRAM banks, FR-FCFS controller"
      (leaks [ dram_bank_channel ~reordering:true ~victim_same_bank:true;
               dram_bank_channel ~reordering:true ~victim_same_bank:false ]);
    verdict "DRAM banks, constant-latency controller"
      (leaks [ dram_bank_channel ~reordering:false ~victim_same_bank:true;
               dram_bank_channel ~reordering:false ~victim_same_bank:false ]);
    0
  in
  Cmd.v (Cmd.info "attack" ~exits ~doc:"side-channel experiment verdicts")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* audit                                                               *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let attacker_conv =
    let parse s =
      match Noninterference.attacker_of_name s with
      | Some a -> Ok a
      | None -> Error (`Msg (Printf.sprintf "unknown attacker behaviour %S" s))
    in
    Arg.conv
      (parse, fun ppf a ->
        Format.pp_print_string ppf (Noninterference.attacker_name a))
  in
  let attackers =
    Arg.(value
         & opt (list attacker_conv)
             [ Noninterference.A_flood; Noninterference.A_burst;
               Noninterference.A_sweep ]
         & info [ "attackers" ] ~docv:"BEHAVIOURS"
             ~doc:"Attacker behaviours diffed against the idle reference                  (flood,burst,sweep).")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the audit report as JSON.")
  in
  let run attackers json_file jobs =
    guard_io @@ fun () ->
    let open Mi6_obs in
    print_endline
      "Leakage audit (paper Section 5.4): the victim's cycle-stamped view of \
       the shared memory system,\ndiffed event-for-event between an idle \
       attacker and each adversarial behaviour.";
    print_newline ();
    (* Fan the whole (setup x attacker) grid out over the pool — every
       capture builds its own hierarchy and trace ring — then walk the
       results in canonical grid order, so the report is identical for
       every --jobs value. *)
    let grid = Noninterference.audit_grid ~attackers () in
    let captures =
      with_pool ~jobs (fun pool ->
          Mi6_exec.Pool.run_list pool grid Noninterference.run_audit_cell)
    in
    (* Drops accumulate into the report too: a consumer of the JSON must
       be able to see that the audit ran on a lossy trace without
       scraping stderr. *)
    let total_dropped = ref 0 and dominant_drop = ref None in
    let capture_of =
      let tbl = List.combine grid captures in
      fun cell name ->
        let events, drops, dominant = List.assq cell tbl in
        if drops > 0 then begin
          total_dropped := !total_dropped + drops;
          (match dominant with
          | Some (_, n) as d
            when (match !dominant_drop with
                 | Some (_, best) -> n > best
                 | None -> true) ->
            dominant_drop := d
          | _ -> ());
          let mostly =
            match dominant with
            | Some (kind, n) -> Printf.sprintf " (mostly %s: %d)" kind n
            | None -> ""
          in
          Printf.eprintf
            "warning: %s trace ring dropped %d events%s; audit is \
             unreliable\n%!"
            name drops mostly
        end;
        events
    in
    let audit_setup name =
      let cells =
        List.filter
          (fun c -> c.Noninterference.cell_setup_name = name)
          grid
      in
      let reference, rest =
        match cells with
        | ref_cell :: rest
          when ref_cell.Noninterference.cell_attacker = Noninterference.A_idle
          ->
          (capture_of ref_cell (Noninterference.audit_cell_name ref_cell), rest)
        | _ -> failwith "audit grid lost its idle reference"
      in
      List.map
        (fun cell ->
          let attacker = cell.Noninterference.cell_attacker in
          let r =
            Audit.diff ~label_a:"idle"
              ~label_b:(Noninterference.attacker_name attacker)
              reference
              (capture_of cell (Noninterference.audit_cell_name cell))
          in
          Printf.printf "[%s LLC] %s\n" name
            (Format.asprintf "%a" Audit.pp_report r);
          r)
        rest
    in
    let baseline = audit_setup "baseline" in
    let mi6 = audit_setup "mi6" in
    let mi6_clean = List.for_all Audit.clean mi6 in
    let baseline_channel =
      List.find_map Audit.first_leaking_channel baseline
    in
    let baseline_cycle = List.find_map Audit.first_divergence_cycle baseline in
    Printf.printf "verdict:\n";
    Printf.printf "  MI6 LLC      %s\n"
      (if mi6_clean then
         Printf.sprintf
           "zero divergence across %d attacker behaviours (timing-independent)"
           (List.length mi6)
       else "DIVERGENCE DETECTED — non-interference violated");
    (match baseline_channel with
    | Some ch ->
      Printf.printf "  baseline LLC leaks, first through the %s channel%s\n"
        (Audit.channel_name ch)
        (match baseline_cycle with
        | Some c ->
          Printf.sprintf " (first divergence at victim cycle %d)" c
        | None -> "")
    | None ->
      Printf.printf
        "  baseline LLC showed no divergence (auditor lost its witness)\n");
    (match json_file with
    | Some path ->
      let doc =
        Json.Obj
          [
            ("experiment", Json.String "victim-timeline leakage audit");
            ( "trace",
              Json.Obj
                [
                  ("dropped", Json.Int !total_dropped);
                  ( "dominant_dropped",
                    match !dominant_drop with
                    | Some (kind, _) -> Json.String kind
                    | None -> Json.Null );
                ] );
            ( "attackers",
              Json.List
                (List.map
                   (fun a -> Json.String (Noninterference.attacker_name a))
                   attackers) );
            ( "setups",
              Json.List
                (List.map
                   (fun (name, reports, clean) ->
                     Json.Obj
                       [
                         ("setup", Json.String name);
                         ("clean", Json.Bool clean);
                         ( "comparisons",
                           Json.List (List.map Audit.report_to_json reports) );
                       ])
                   [
                     ("baseline", baseline, List.for_all Audit.clean baseline);
                     ("mi6", mi6, mi6_clean);
                   ]) );
            ( "verdict",
              Json.Obj
                [
                  ("mi6_clean", Json.Bool mi6_clean);
                  ("baseline_leaks", Json.Bool (baseline_channel <> None));
                  ( "baseline_channel",
                    match baseline_channel with
                    | Some ch -> Json.String (Audit.channel_name ch)
                    | None -> Json.Null );
                  ( "baseline_first_divergence_cycle",
                    match baseline_cycle with
                    | Some c -> Json.Int c
                    | None -> Json.Null );
                ] );
          ]
      in
      write_file path (Json.to_string doc);
      Printf.printf "audit report -> %s\n%!" path
    | None -> ());
    (* The audit passes only when it demonstrates both halves of the
       paper's claim: MI6 timing-independent AND the insecure baseline
       observably leaking (otherwise the auditor has no witness that it
       could see a leak at all). *)
    if mi6_clean && baseline_channel <> None then 0 else 1
  in
  Cmd.v
    (Cmd.info "audit" ~exits
       ~doc:
         "leakage audit: diff the victim's event timeline across attacker \
          behaviours on the baseline and MI6 LLCs")
    Term.(const run $ attackers $ json_file $ jobs)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let benches =
    Arg.(value & opt (list bench_conv) [ Mi6_workload.Spec.Gcc ]
         & info [ "b"; "bench" ] ~doc:"Benchmarks (comma separated).")
  in
  let variants =
    Arg.(value
         & opt (list variant_conv)
             [ Config.Base; Config.Flush; Config.Part; Config.Fpma ]
         & info [ "v"; "variant" ] ~doc:"Processor variants (comma separated).")
  in
  let folded_file =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Append folded-stack lines (bench;variant;category cycles)                  for flamegraph tooling.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write all CPI stacks as JSON.")
  in
  let self =
    Arg.(value & flag
         & info [ "self" ]
             ~doc:"Also self-profile the $(i,simulator): per-phase host \
                   ns/cycle and allocation per simulated cycle, overall \
                   simulation speed, and the quiet-cycle (fast-forwardable) \
                   fraction per stall cause.")
  in
  let run benches variants warmup measure folded_file json_file self jobs =
    guard_io @@ fun () ->
    let open Mi6_obs in
    (* Prefill every (bench, variant) run on the pool; the serial report
       below reads from this table, so its output does not depend on
       --jobs.  (Phase attribution stays exact under parallelism — each
       run owns its profiler — though absolute wall times inflate when
       domains compete for cores.) *)
    let pairs =
      List.concat_map
        (fun bench -> List.map (fun variant -> (bench, variant)) variants)
        benches
    in
    let results =
      with_pool ~jobs (fun pool ->
          Mi6_exec.Pool.run_list pool pairs (fun (bench, variant) ->
              let selfprof = if self then Selfprof.create () else Selfprof.null in
              let occupancy =
                if self then Occupancy.create () else Occupancy.null
              in
              let r =
                Tmachine.run_spec ~selfprof ~occupancy ~variant ~bench ~warmup
                  ~measure ()
              in
              (r, selfprof, occupancy)))
    in
    let table = List.combine pairs results in
    let folded = Buffer.create 256 in
    let all_stacks = ref [] in
    let failed = ref false in
    let total_dropped = ref 0 and dominant_drop = ref None in
    List.iter
      (fun bench ->
        let bname = Mi6_workload.Spec.name bench in
        let stacks =
          List.map
            (fun variant ->
              let r, _, _ = List.assoc (bench, variant) table in
              (match
                 List.assoc_opt "trace.dropped_events"
                   (Metrics.counters r.Tmachine.metrics)
               with
              | Some d when d > 0 ->
                (* Name the dominant dropped kind, so the warning says
                   what the audit/trace lost, not just how much. *)
                let dominant =
                  let pfx = "trace.dropped." in
                  let plen = String.length pfx in
                  List.fold_left
                    (fun acc (name, v) ->
                      if
                        String.length name > plen
                        && String.sub name 0 plen = pfx
                        && v > 0
                        && (match acc with
                           | Some (_, best) -> v > best
                           | None -> true)
                      then
                        Some
                          (String.sub name plen (String.length name - plen), v)
                      else acc)
                    None
                    (Metrics.counters r.Tmachine.metrics)
                in
                (* Mirror the warning into the JSON export (trace.dropped
                   / dominant_dropped) so CI can see the loss. *)
                total_dropped := !total_dropped + d;
                (match dominant with
                | Some (_, n) as dom
                  when (match !dominant_drop with
                       | Some (_, best) -> n > best
                       | None -> true) ->
                  dominant_drop := dom
                | _ -> ());
                Printf.eprintf "warning: trace ring dropped %d events%s\n%!" d
                  (match dominant with
                  | Some (kind, n) -> Printf.sprintf " (mostly %s: %d)" kind n
                  | None -> "")
              | _ -> ());
              let s =
                Cpistack.of_counters
                  ~label:(Config.variant_name variant)
                  ~total:r.Tmachine.cycles
                  (Mi6_util.Stats.to_assoc r.Tmachine.stats)
              in
              (* The attribution invariant: every measured cycle lands in
                 exactly one bucket. *)
              if not (Cpistack.sums_exactly s) then begin
                Printf.eprintf
                  "error: %s %s CPI stack sums to %d, measured %d cycles \
                   (residual %d)\n%!"
                  bname
                  (Config.variant_name variant)
                  (Cpistack.attributed s) (Cpistack.total s)
                  (Cpistack.residual s);
                failed := true
              end;
              Buffer.add_string folded
                (Cpistack.to_folded
                   ~stem:(Printf.sprintf "%s;%s" bname
                            (Config.variant_name variant))
                   s);
              s)
            variants
        in
        all_stacks := (bname, stacks) :: !all_stacks;
        Printf.printf
          "CPI stack: %s (%d warmup + %d measured instructions)\n%s\n" bname
          warmup measure (Cpistack.table stacks);
        if self then
          List.iter
            (fun variant ->
              let _, sp, occ = List.assoc (bench, variant) table in
              let wall = Selfprof.wall_seconds sp in
              Printf.printf "self-profile: %s/%s  wall=%.3fs  %.1f kcycles/s\n"
                bname (Config.variant_name variant) wall
                (Selfprof.overall_kips sp);
              Printf.printf "  %-10s %9s %9s %9s\n" "phase" "seconds" "ns/cyc"
                "B/cyc";
              let sum =
                List.fold_left
                  (fun acc (name, seconds, ns, ab) ->
                    if seconds > 0.0 || ns > 0.0 then
                      Printf.printf "  %-10s %9.3f %9.1f %9.1f\n" name seconds
                        ns ab;
                    acc +. seconds)
                  0.0 (Selfprof.report sp)
              in
              (* The attribution invariant, host-side: every instant of
                 the run window lands in exactly one phase. *)
              Printf.printf "  %-10s %9.3f   (%.1f%% of wall)\n" "sum" sum
                (if wall > 0.0 then 100.0 *. sum /. wall else 0.0);
              Printf.printf
                "  quiet cycles: %d/%d (%.1f%%) fast-forwardable\n"
                (Occupancy.quiet_cycles occ) (Occupancy.cycles occ)
                (100.0 *. Occupancy.quiet_fraction occ);
              List.iter
                (fun (cause, quiet, total) ->
                  Printf.printf "    %-12s %6.1f%% of %d\n" cause
                    (if total = 0 then 0.0
                     else 100.0 *. float_of_int quiet /. float_of_int total)
                    total)
                (Occupancy.by_cause occ);
              print_newline ())
            variants)
      benches;
    (match folded_file with
    | Some path ->
      write_file path (Buffer.contents folded);
      Printf.printf "folded stacks -> %s (flamegraph.pl compatible)\n%!" path
    | None -> ());
    (match json_file with
    | Some path ->
      let doc =
        Json.Obj
          [
            ("warmup", Json.Int warmup);
            ("measure", Json.Int measure);
            ( "trace",
              Json.Obj
                [
                  ("dropped", Json.Int !total_dropped);
                  ( "dominant_dropped",
                    match !dominant_drop with
                    | Some (kind, _) -> Json.String kind
                    | None -> Json.Null );
                ] );
            ( "profiles",
              Json.List
                (List.rev_map
                   (fun (bname, stacks) ->
                     Json.Obj
                       [
                         ("bench", Json.String bname);
                         ( "stacks",
                           Json.List (List.map Cpistack.to_json stacks) );
                       ])
                   !all_stacks) );
          ]
      in
      write_file path (Json.to_string doc);
      Printf.printf "profiles -> %s\n%!" path
    | None -> ());
    if !failed then 1 else 0
  in
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "top-down CPI-stack attribution per variant (where every cycle \
          went: commits, mispredicts, L1/LLC/DRAM stalls, TLB walks, \
          purges); --self adds host-cost attribution of the simulator \
          itself")
    Term.(const run $ benches $ variants $ warmup $ measure $ folded_file
          $ json_file $ self $ jobs)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Live view over a telemetry JSONL stream (written by run/sweep
   --telemetry): re-reads the file every --interval seconds and renders
   the latest snapshot as a table.  --once renders a single frame and
   exits, for CI smoke tests. *)
let top_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Telemetry JSONL stream to watch (see run/sweep \
                   $(b,--telemetry)).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render the latest snapshot once and exit (CI-friendly; \
                   exits 1 when any line fails snapshot validation, 2 when \
                   the stream holds no snapshot yet).")
  in
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh period in follow mode.")
  in
  let run file once interval =
    guard_io @@ fun () ->
    let open Mi6_obs in
    (* Whole-file re-read each frame: snapshots are append-only and a
       stream is at most a few thousand lines, so this stays trivially
       cheap and needs no tail-follow state. *)
    (* Every line is validated against the snapshot schema on the way
       through; a writer bug (torn line, wrong type) is counted and the
       first offending file line remembered, so --once can gate CI. *)
    let malformed = ref 0 and first_bad = ref None in
    let read_last () =
      malformed := 0;
      first_bad := None;
      if not (Sys.file_exists file) then None
      else begin
        let ic = open_in file in
        let count = ref 0 and last = ref None and lineno = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then begin
               let bad msg =
                 incr malformed;
                 if !first_bad = None then first_bad := Some (!lineno, msg)
               in
               (match Json.of_string line with
               | exception Failure msg -> bad ("invalid JSON: " ^ msg)
               | j -> (
                 match Telemetry.validate_snapshot j with
                 | Ok () ->
                   incr count;
                   last := Some line
                 | Error msg -> bad msg))
             end
           done
         with End_of_file -> ());
        close_in ic;
        Option.map (fun l -> (!count, l)) !last
      end
    in
    let report_malformed () =
      match !first_bad with
      | Some (lineno, msg) ->
        Printf.eprintf
          "mi6_sim top: %d malformed telemetry line%s in %s (first at line \
           %d: %s)\n%!"
          !malformed
          (if !malformed = 1 then "" else "s")
          file lineno msg
      | None -> ()
    in
    let render n line =
      let j = Json.of_string line in
      let jint name =
        match Json.member name j with Some (Json.Int i) -> i | _ -> 0
      in
      let cycle = jint "cycle" and dcycles = jint "dcycles" in
      let instrs = jint "instrs" and dinstrs = jint "dinstrs" in
      Printf.printf "mi6_sim top — %s  (snapshot %d, seq %d)\n" file n
        (jint "seq");
      Printf.printf "cycle  %12d  (+%d)\n" cycle dcycles;
      Printf.printf "instrs %12d  (+%d)   window ipc %.3f\n" instrs dinstrs
        (if dcycles = 0 then 0.0
         else float_of_int dinstrs /. float_of_int dcycles);
      (match Json.member "host" j with
      | Some host ->
        let hf name =
          match Json.member name host with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> 0.0
        in
        Printf.printf "host   %10.1f kcycles/s   %.1fs elapsed\n" (hf "kips")
          (hf "wall_s")
      | None -> Printf.printf "host   (deterministic stream: omitted)\n");
      (match Json.member "occupancy" j with
      | Some occ ->
        (match Json.member "quiet_fraction" occ with
        | Some (Json.Float f) ->
          Printf.printf "quiet  %10.1f%% of cycles fast-forwardable\n"
            (100.0 *. f)
        | _ -> ());
        (match Json.member "structures" occ with
        | Some (Json.Obj structures) when structures <> [] ->
          Printf.printf "%-10s %8s %6s %6s\n" "structure" "mean" "p95" "max";
          List.iter
            (fun (name, h) ->
              let g field =
                match Json.member field h with
                | Some (Json.Int i) -> float_of_int i
                | Some (Json.Float f) -> f
                | _ -> 0.0
              in
              Printf.printf "%-10s %8.2f %6.0f %6.0f\n" name (g "mean")
                (g "p95") (g "max"))
            structures
        | _ -> ())
      | None -> ());
      (match Json.member "counters" j with
      | Some (Json.Obj deltas) when deltas <> [] ->
        let top =
          List.filteri (fun i _ -> i < 6)
            (List.sort
               (fun (_, a) (_, b) -> compare b a)
               (List.filter_map
                  (fun (k, v) ->
                    match v with Json.Int i -> Some (k, i) | _ -> None)
                  deltas))
        in
        Printf.printf "hot counters (delta):\n";
        List.iter (fun (k, v) -> Printf.printf "  %-28s %+d\n" k v) top
      | _ -> ())
    in
    if once then (
      match read_last () with
      | None ->
        report_malformed ();
        Printf.eprintf "mi6_sim top: no snapshot in %s yet\n%!" file;
        if !malformed > 0 then 1 else 2
      | Some (n, line) ->
        render n line;
        report_malformed ();
        if !malformed > 0 then 1 else 0)
    else begin
      (* Follow until interrupted. *)
      while true do
        print_string "\027[2J\027[H";
        (match read_last () with
        | None -> Printf.printf "mi6_sim top — waiting for %s ...\n" file
        | Some (n, line) -> render n line);
        if !malformed > 0 then report_malformed ();
        flush stdout;
        Unix.sleepf interval
      done;
      0
    end
  in
  Cmd.v
    (Cmd.info "top" ~exits
       ~doc:
         "live table over a telemetry JSONL stream: cycles, instrs, kips, \
          structure occupancy, quiet-cycle fraction")
    Term.(const run $ file $ once $ interval)

(* ------------------------------------------------------------------ *)
(* bisect                                                              *)
(* ------------------------------------------------------------------ *)

let bisect_cmd =
  let witness_arg =
    Arg.(value & opt (some string) None
         & info [ "witness" ] ~docv:"NAME"
             ~doc:"Bisect a built-in witness program (see $(b,mi6_sim lint \
                   --witness)).  The default when no $(b,--bench) is given \
                   is spectre-v1.")
  in
  let bench =
    Arg.(value & opt (some bench_conv) None
         & info [ "b"; "bench" ] ~docv:"BENCH"
             ~doc:"Bisect a SPEC model stream instead of a witness.")
  in
  let uops =
    Arg.(value & opt int 20_000
         & info [ "uops" ] ~docv:"N"
             ~doc:"Stream length in µops ($(b,--bench) mode).")
  in
  let variant_a =
    Arg.(value & opt variant_conv Config.Base
         & info [ "variant-a" ] ~docv:"VARIANT" ~doc:"Side-A variant.")
  in
  let variant_b =
    Arg.(value & opt (some variant_conv) None
         & info [ "variant-b" ] ~docv:"VARIANT"
             ~doc:"Side-B variant (default F+P+M+A; ignored in secret-pair \
                   mode, where both sides run $(b,--variant-a)).")
  in
  let secret_a =
    Arg.(value & opt (some int) None
         & info [ "secret-a" ] ~docv:"N"
             ~doc:"Side-A secret input (witness mode; needs \
                   $(b,--secret-b)).  Both sides then run the same variant \
                   and differ only in the secret, so the exact \
                   whole-machine signature oracle applies.")
  in
  let secret_b =
    Arg.(value & opt (some int) None
         & info [ "secret-b" ] ~docv:"N" ~doc:"Side-B secret input.")
  in
  let window =
    Arg.(value & opt int 16
         & info [ "window" ] ~docv:"T"
             ~doc:"Trace events per side in the slice report.")
  in
  let interval =
    Arg.(value & opt int 256
         & info [ "interval" ] ~docv:"N"
             ~doc:"Cycles between flight-recorder checkpoints.")
  in
  let ring =
    Arg.(value & opt int 64
         & info [ "ring" ] ~docv:"K"
             ~doc:"Checkpoints retained per side (bounded memory).")
  in
  let max_cycles =
    Arg.(value & opt int 4_000_000
         & info [ "max-cycles" ] ~docv:"N" ~doc:"Lockstep scan budget.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the slice report as JSON (schema mi6.bisect/1).")
  in
  let history_file =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE"
             ~doc:"Append a Perfdb record with the bisection wall time and \
                   checkpoint memory high-water to $(docv) (JSONL); \
                   compare.exe then gates flight-recorder overhead \
                   regressions.")
  in
  let run witness_name bench uops variant_a variant_b secret_a secret_b
      window interval ring max_cycles json_file history_file =
    guard_io @@ fun () ->
    let open Mi6_obs in
    let trace_a = Trace.create ~capacity:(1 lsl 16) ()
    and trace_b = Trace.create ~capacity:(1 lsl 16) () in
    let machine_of_uops ~trace ~variant uops =
      let remaining = ref uops in
      let stream () =
        match !remaining with
        | [] -> None
        | u :: tl ->
          remaining := tl;
          Some u
      in
      Tmachine.create ~trace (Config.timing ~cores:1 variant)
        ~streams:[| stream |] ~stats:(Mi6_util.Stats.create ())
    in
    let secret_pair = secret_a <> None || secret_b <> None in
    if secret_pair && (secret_a = None || secret_b = None) then
      failwith "--secret-a and --secret-b must be given together";
    let vname = Config.variant_name in
    let a, b, label_a, label_b =
      match bench with
      | Some bench ->
        if secret_pair then
          failwith
            "--secret-a/--secret-b need a witness program (--bench streams \
             carry no secret input)";
        let vb = Option.value variant_b ~default:Config.Fpma in
        let machine ~trace ~variant =
          Tmachine.create ~trace (Config.timing ~cores:1 variant)
            ~streams:[| Tmachine.spec_stream ~core:0 ~bench ~limit:uops () |]
            ~stats:(Mi6_util.Stats.create ())
        in
        let bname = Mi6_workload.Spec.name bench in
        ( machine ~trace:trace_a ~variant:variant_a,
          machine ~trace:trace_b ~variant:vb,
          Printf.sprintf "%s:%s" bname (vname variant_a),
          Printf.sprintf "%s:%s" bname (vname vb) )
      | None ->
        let name = Option.value witness_name ~default:"spectre-v1" in
        let w =
          match Witness.find name with
          | Some w -> w
          | None ->
            failwith
              (Printf.sprintf "unknown witness %S (known: %s)" name
                 (String.concat ", " Witness.names))
        in
        let uops_of secret =
          let init_regs =
            match (secret, w.Witness.secret_reg) with
            | Some v, Some r -> [ (r, Int64.of_int v) ]
            | Some _, None ->
              failwith
                (Printf.sprintf "witness %s takes no secret input" name)
            | None, _ -> []
          in
          let run =
            Difftest.run_func ~init_regs ~program:(Witness.program w)
              ~data_base:0x8000 ~data_bytes:1024 ~max_steps:20_000 ()
          in
          Difftest.to_uops run ~func_code_base:w.Witness.base
            ~func_data_base:0x8000
        in
        if secret_pair then begin
          let sa = Option.get secret_a and sb = Option.get secret_b in
          ( machine_of_uops ~trace:trace_a ~variant:variant_a
              (uops_of (Some sa)),
            machine_of_uops ~trace:trace_b ~variant:variant_a
              (uops_of (Some sb)),
            Printf.sprintf "%s:%s:s=%d" name (vname variant_a) sa,
            Printf.sprintf "%s:%s:s=%d" name (vname variant_a) sb )
        end
        else begin
          let vb = Option.value variant_b ~default:Config.Fpma in
          let us = uops_of None in
          ( machine_of_uops ~trace:trace_a ~variant:variant_a us,
            machine_of_uops ~trace:trace_b ~variant:vb us,
            Printf.sprintf "%s:%s" name (vname variant_a),
            Printf.sprintf "%s:%s" name (vname vb) )
        end
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Bisect.run ~interval ~ring ~window ~max_cycles ~trace_a ~trace_b
        ~label_a ~label_b a b
    in
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "%a" Bisect.pp_report r;
    (match json_file with
    | Some path ->
      write_file path (Json.to_string (Bisect.report_to_json r));
      Printf.printf "bisect report -> %s\n%!" path
    | None -> ());
    (match history_file with
    | Some path ->
      let commit = Perfdb.git_commit () in
      let run_id = Perfdb.next_run_id (Perfdb.load ~path) ~commit in
      let cycles =
        match r.Bisect.r_outcome with
        | Bisect.Clean { cycles_run } -> cycles_run
        | Bisect.Diverged s -> s.Bisect.s_cycle
      in
      let stats = r.Bisect.r_stats in
      let record =
        {
          Perfdb.run_id;
          commit;
          variant = "bisect";
          bench = Printf.sprintf "%s-vs-%s" label_a label_b;
          cycles;
          instrs = stats.Bisect.cs_taken;
          ipc = 0.0;
          cpi = [];
          quantiles = [];
          (* kips here is lockstep scan speed (both machines + recorder),
             so compare.exe's kips gate bounds flight-recorder overhead
             regressions; checkpoint memory rides in the phase table. *)
          host =
            Some
              {
                Perfdb.wall_s = wall;
                kips =
                  (if wall <= 0.0 then 0.0
                   else float_of_int cycles /. wall /. 1000.0);
                phases =
                  [
                    ( "checkpoint_mem_words",
                      float_of_int stats.Bisect.cs_mem_high_water_words );
                    ("probes", float_of_int stats.Bisect.cs_probes);
                  ];
              };
        }
      in
      Perfdb.append ~path [ record ];
      Printf.printf "appended run %s -> %s\n%!" run_id path
    | None -> ());
    if Bisect.diverged r then 1 else 0
  in
  Cmd.v
    (Cmd.info "bisect" ~exits
       ~doc:
         "run two configurations (variant pair or secret pair) in lockstep \
          from shared flight-recorder checkpoints, locate the first cycle \
          where their structure state diverges, and print a causal slice \
          report (diverging component, field-level state diff, in-flight \
          µops, trace tails); exits 1 on divergence")
    Term.(const run $ witness_arg $ bench $ uops $ variant_a $ variant_b
          $ secret_a $ secret_b $ window $ interval $ ring $ max_cycles
          $ json_file $ history_file)

(* ------------------------------------------------------------------ *)
(* area                                                                *)
(* ------------------------------------------------------------------ *)

let area_cmd =
  let cores =
    Arg.(value & opt int 1 & info [ "cores" ] ~doc:"Number of cores.")
  in
  let run cores =
    List.iter
      (fun c ->
        Printf.printf "%-70s %8d %8d\n" c.Area_model.name c.Area_model.base_bits
          c.Area_model.mi6_extra_bits)
      (Area_model.components ~cores);
    let s = Area_model.summary ~cores in
    Printf.printf "TOTAL base=%d extra=%d -> +%.2f%%\n" s.Area_model.base_bits
      s.Area_model.extra_bits s.Area_model.percent;
    0
  in
  Cmd.v (Cmd.info "area" ~exits ~doc:"structural area model")
    Term.(const run $ cores)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

type lint_machine = M_mi6 | M_variant of Config.variant

let machine_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "mi6" | "secure" -> Ok M_mi6
    | _ -> (
      match Config.variant_of_name s with
      | Some v -> Ok (M_variant v)
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown machine %S (mi6 or a variant name)" s)))
  in
  Arg.conv
    ( parse,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with M_mi6 -> "mi6" | M_variant v -> Config.variant_name v)
    )

let reg_conv =
  let parse s =
    match Mi6_isa.Reg.of_name s with
    | Some r -> Ok r
    | None -> Error (`Msg (Printf.sprintf "unknown register %S" s))
  in
  Arg.conv (parse, fun ppf r -> Format.pp_print_string ppf (Mi6_isa.Reg.name r))

let range_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ lo; hi ] -> (
      try Ok (int_of_string lo, int_of_string hi)
      with Failure _ -> Error (`Msg (Printf.sprintf "bad range %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad range %S (expected LO:HI)" s))
  in
  Arg.conv (parse, fun ppf (lo, hi) -> Format.fprintf ppf "0x%x:0x%x" lo hi)

(* The text program format [lint --hex] reads (and [--dump-hex] writes):
   one 32-bit hex word per line; [#] comment lines may carry
   [base]/[secret-reg]/[secret-range]/[shared-range] directives describing
   the load address, the secret set, and declared read-shared windows. *)
let parse_hex_program path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let base = ref 0x1000 in
  let regs = ref [] and ranges = ref [] and words = ref [] in
  let shared = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let raw = input_line ic in
       incr lineno;
       let line = String.trim raw in
       let fail msg = failwith (Printf.sprintf "%s:%d: %s" path !lineno msg) in
       let parse_range what v into =
         match String.split_on_char ':' v with
         | [ lo; hi ] -> (
           try into := (int_of_string lo, int_of_string hi) :: !into
           with Failure _ -> fail (Printf.sprintf "bad %s %s" what v))
         | _ -> fail (Printf.sprintf "bad %s %s (expected LO:HI)" what v)
       in
       if line = "" then ()
       else if line.[0] = '#' then begin
         let fields =
           String.sub line 1 (String.length line - 1)
           |> String.split_on_char ' '
           |> List.filter (fun t -> t <> "")
         in
         match fields with
         | "base" :: v :: _ -> (
           try base := int_of_string v
           with Failure _ -> fail ("bad base address " ^ v))
         | "secret-reg" :: r :: _ -> (
           match Mi6_isa.Reg.of_name r with
           | Some reg -> regs := reg :: !regs
           | None -> fail ("unknown register " ^ r))
         | "secret-range" :: v :: _ -> parse_range "secret-range" v ranges
         | "shared-range" :: v :: _ -> parse_range "shared-range" v shared
         | _ -> ()
       end
       else
         try words := int_of_string ("0x" ^ line) :: !words
         with Failure _ -> fail (Printf.sprintf "bad hex word %S" line)
     done
   with End_of_file -> ());
  ( { Mi6_isa.Asm.base = !base; words = Array.of_list (List.rev !words);
      labels = [] },
    { Taint.regs = List.rev !regs; ranges = List.rev !ranges },
    List.rev !shared )

let lint_cmd =
  let machine =
    Arg.(value & opt (some machine_conv) None
         & info [ "machine" ] ~docv:"NAME"
             ~doc:"Lint a machine configuration: $(b,mi6) (the secure \
                   multicore) or a processor variant name (BASE, FLUSH, \
                   PART, ...).  When no program input and no machine is \
                   given, mi6 is linted.")
  in
  let cores =
    Arg.(value & opt int 2
         & info [ "cores" ] ~docv:"N" ~doc:"Cores for $(b,--machine).")
  in
  let witnesses =
    Arg.(value & opt (some (list string)) None
         & info [ "witness" ] ~docv:"NAMES"
             ~doc:(Printf.sprintf
                     "Analyze built-in witness programs (comma separated, or \
                      $(b,all)).  Known: %s."
                     (String.concat ", " Mi6_analysis.Witness.names)))
  in
  let hex =
    Arg.(value & opt (some string) None
         & info [ "hex" ] ~docv:"FILE"
             ~doc:"Analyze a program in hex text format: one 32-bit word \
                   per line, with optional $(b,# base ADDR), \
                   $(b,# secret-reg REG) and $(b,# secret-range LO:HI) \
                   directive comments.")
  in
  let secret_regs =
    Arg.(value & opt_all reg_conv []
         & info [ "secret-reg" ] ~docv:"REG"
             ~doc:"Treat $(docv) as secret at program entry (repeatable; \
                   adds to any directives or witness defaults).")
  in
  let secret_ranges =
    Arg.(value & opt_all range_conv []
         & info [ "secret-range" ] ~docv:"LO:HI"
             ~doc:"Treat memory bytes [LO,HI) as secret (repeatable).")
  in
  let window =
    Arg.(value & opt int 0
         & info [ "speculative" ] ~docv:"N"
             ~doc:"Also follow the architecturally dead edge of statically \
                   resolved branches — and the stale predicted target of a \
                   return whose modeled return-stack has underflowed — for \
                   up to $(docv) wrong-path instructions (Spectre-style \
                   transient execution).  Findings reachable only that way \
                   are labeled speculative.")
  in
  let shared_ranges =
    Arg.(value & opt_all range_conv []
         & info [ "shared-range" ] ~docv:"LO:HI"
             ~doc:"Declare memory bytes [LO,HI) as a read-shared region \
                   (repeatable; adds to any directives or witness \
                   defaults).  Any store into a shared region, and any \
                   secret-indexed load from one, is flagged as a \
                   cross-enclave channel.")
  in
  let channels =
    Arg.(value & flag
         & info [ "channels" ]
             ~doc:"Lower every finding to the microarchitectural channels \
                   it can leak through (cache-fill, llc-mshr, llc-arbiter, \
                   dram-cmd, page-walk, btb, rsb, ...), resolved against \
                   the $(b,--machine) configuration (BASE when none is \
                   given), and report which of them that configuration \
                   leaves open.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the findings as JSON.")
  in
  let dump_hex =
    Arg.(value & opt (some string) None
         & info [ "dump-hex" ] ~docv:"DIR"
             ~doc:"Write every built-in witness to $(docv)/NAME.hex in the \
                   $(b,--hex) input format, then exit.")
  in
  let run machine cores witnesses hex secret_regs secret_ranges window
      shared_ranges channels json_file dump_hex =
    guard_io @@ fun () ->
    match dump_hex with
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun w ->
          let file =
            String.map (fun c -> if c = '-' then '_' else c) w.Witness.name
            ^ ".hex"
          in
          let path = Filename.concat dir file in
          write_file path (Witness.to_hex w);
          Printf.printf "%-14s -> %s\n" w.Witness.name path)
        Witness.all;
      0
    | None ->
      let extend (s : Taint.secret) =
        {
          Taint.regs = s.Taint.regs @ secret_regs;
          ranges = s.Taint.ranges @ secret_ranges;
        }
      in
      (* Channel inference resolves findings against the machine being
         linted; with no --machine, the insecure BASE geometry (the one
         the dynamic Audit cross-check runs). *)
      let channel_timing =
        match machine with
        | Some M_mi6 -> Config.secure_multicore ~cores
        | Some (M_variant v) -> Config.timing ~cores v
        | None -> Config.timing ~cores Config.Base
      in
      let channel_note f =
        if not channels then ""
        else
          let names chs =
            if chs = [] then "none"
            else String.concat "," (List.map Channel.name chs)
          in
          Printf.sprintf "\n      channels: %s; open here: %s"
            (names (Channel.infer ~timing:channel_timing f))
            (names (Channel.open_channels ~timing:channel_timing f))
      in
      let analyze_one ~name ~secret ~shared program =
        let shared = shared @ shared_ranges in
        match Taint.analyze_program ~window ~shared ~secret program with
        | Error msg -> failwith (Printf.sprintf "%s: %s" name msg)
        | Ok findings ->
          let n = List.length findings in
          if n = 0 then
            Printf.printf "lint: program %-14s clean (window %d)\n" name
              window
          else begin
            Printf.printf "lint: program %-14s %d finding%s (window %d)\n"
              name n
              (if n = 1 then "" else "s")
              window;
            List.iter
              (fun f ->
                Printf.printf "  %s%s\n"
                  (Format.asprintf "%a" Taint.pp_finding f)
                  (channel_note f))
              findings
          end;
          (name, findings)
      in
      let program_reports =
        let from_witnesses =
          match witnesses with
          | None -> []
          | Some names ->
            let names = if List.mem "all" names then Witness.names else names in
            List.map
              (fun n ->
                match Witness.find n with
                | None ->
                  failwith
                    (Printf.sprintf "unknown witness %S (known: %s)" n
                       (String.concat ", " Witness.names))
                | Some w ->
                  analyze_one ~name:w.Witness.name
                    ~secret:(extend w.Witness.secret) ~shared:w.Witness.shared
                    (Witness.program w))
              names
        in
        let from_hex =
          match hex with
          | None -> []
          | Some path ->
            let program, secret, shared = parse_hex_program path in
            [
              analyze_one ~name:(Filename.basename path)
                ~secret:(extend secret) ~shared program;
            ]
        in
        from_witnesses @ from_hex
      in
      let config_reports =
        let lint_machine m =
          let name =
            match m with M_mi6 -> "mi6" | M_variant v -> Config.variant_name v
          in
          let timing =
            match m with
            | M_mi6 -> Config.secure_multicore ~cores
            | M_variant v -> Config.timing ~cores v
          in
          let findings = Hwlint.lint_timing ~name timing in
          let findings =
            match m with
            | M_variant _ -> findings
            | M_mi6 ->
              (* Exercise the Section 6.1 ownership checks on a populated
                 ledger: two enclaves carved out of OS memory, with a
                 declared read share between them — the Citadel relaxation
                 the linter must admit without a finding. *)
              let ledger = Region.create Mi6_mem.Addr.default_regions in
              ignore
                (Region.transfer ledger ~regions:[ 1; 2 ] ~from_:Region.Os
                   ~to_:(Region.Enclave 0));
              ignore
                (Region.transfer ledger ~regions:[ 3 ] ~from_:Region.Os
                   ~to_:(Region.Enclave 1));
              ignore
                (Region.share ledger ~region:2 ~owner:(Region.Enclave 0)
                   ~reader:(Region.Enclave 1));
              findings @ Hwlint.lint_ledger ledger
          in
          let config_note (f : Hwlint.finding) =
            if not channels then ""
            else
              match Channel.of_lint_check f.Hwlint.check with
              | Some ch -> Printf.sprintf "  [channel: %s]" (Channel.name ch)
              | None -> ""
          in
          let n = List.length findings in
          if n = 0 then
            Printf.printf "lint: machine %-14s clean (%d cores)\n" name cores
          else begin
            Printf.printf "lint: machine %-14s %d finding%s (%d cores)\n" name
              n
              (if n = 1 then "" else "s")
              cores;
            List.iter
              (fun f ->
                Printf.printf "  %s%s\n"
                  (Format.asprintf "%a" Hwlint.pp_finding f)
                  (config_note f))
              findings
          end;
          (name, findings)
        in
        match (machine, program_reports) with
        | Some m, _ -> [ lint_machine m ]
        | None, [] -> [ lint_machine M_mi6 ]
        | None, _ -> []
      in
      let count reports =
        List.fold_left (fun acc (_, fs) -> acc + List.length fs) 0 reports
      in
      let total = count program_reports + count config_reports in
      (match json_file with
      | Some path ->
        let open Mi6_obs in
        let append_fields j extra =
          match j with
          | Json.Obj fields -> Json.Obj (fields @ extra)
          | j -> j
        in
        let program_finding_json f =
          let base = Taint.finding_to_json f in
          if not channels then base
          else
            append_fields base
              [
                ( "channels",
                  Channel.to_json (Channel.infer ~timing:channel_timing f) );
                ( "open_channels",
                  Channel.to_json
                    (Channel.open_channels ~timing:channel_timing f) );
              ]
        in
        let config_finding_json (f : Hwlint.finding) =
          let base = Hwlint.finding_to_json f in
          if not channels then base
          else
            append_fields base
              [
                ( "channel",
                  match Channel.of_lint_check f.Hwlint.check with
                  | Some ch -> Json.String (Channel.name ch)
                  | None -> Json.Null );
              ]
        in
        let section to_json reports =
          Json.List
            (List.map
               (fun (name, fs) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("clean", Json.Bool (fs = []));
                     ("findings", Json.List (List.map to_json fs));
                   ])
               reports)
        in
        let doc =
          Json.Obj
            [
              ("schema", Json.String "mi6.lint/2");
              ("tool", Json.String "mi6_sim lint");
              ("window", Json.Int window);
              ("channels", Json.Bool channels);
              ("machine", Json.String
                 (match machine with
                 | Some M_mi6 -> "mi6"
                 | Some (M_variant v) -> Config.variant_name v
                 | None -> "base"));
              ("programs", section program_finding_json program_reports);
              ("configs", section config_finding_json config_reports);
              ("total_findings", Json.Int total);
            ]
        in
        write_file path (Json.to_string doc);
        Printf.printf "lint report -> %s\n%!" path
      | None -> ());
      if total = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "lint" ~exits
       ~doc:
         "static secret-taint / constant-time analysis of RV64 programs and \
          hardware-invariant linting of machine configurations (MSHR \
          sizing, LLC set partitioning, purge coverage, DRAM-region \
          ownership)")
    Term.(const run $ machine $ cores $ witnesses $ hex $ secret_regs
          $ secret_ranges $ window $ shared_ranges $ channels $ json_file
          $ dump_hex)

(* ------------------------------------------------------------------ *)
(* ni                                                                  *)
(* ------------------------------------------------------------------ *)

(* Interrupt-schedule noninterference: generate adversarial preemption
   schedules (or replay committed ones) and compare the attacker's
   per-window observables against a reference enclave body.  Exit 1 the
   moment any schedule distinguishes the bodies. *)

module Body = Mi6_progen.Body
module Ni_gen = Mi6_progen.Ni_gen

type ni_result = {
  ni_schedule : Schedule.t;
  ni_verdict : Schedule.verdict;
  ni_shrunk : Schedule.t option;  (* falsified only *)
  ni_channel : Mi6_obs.Audit.channel option;
}

let ni_cmd =
  let schedules =
    Arg.(value & opt_all string []
         & info [ "schedule" ] ~docv:"SCHED"
             ~doc:"Replay this schedule string (repeatable), e.g. \
                   $(b,ni1:BASE:b0:-:probe).  Replay is exact: no \
                   generation, no shrinking.")
  in
  let schedule_file =
    Arg.(value & opt (some string) None
         & info [ "schedule-file" ] ~docv:"FILE"
             ~doc:"Replay every schedule in $(docv), one per line; blank \
                   lines and $(b,#) comments are ignored.")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"N"
             ~doc:"Adversarial schedules to generate when none are given \
                   to replay.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Schedule-generator seed (echoed on stdout so logs pin \
                   the exact run).")
  in
  let variant =
    Arg.(value & opt variant_conv Config.Fpma
         & info [ "variant" ] ~docv:"V"
             ~doc:"Processor variant generated schedules run on \
                   (replayed schedules carry their own).")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the verdicts as a $(b,mi6.ni/1) JSON document.")
  in
  let save_falsified =
    Arg.(value & opt (some string) None
         & info [ "save-falsified" ] ~docv:"FILE"
             ~doc:"Write every falsifying (shrunk) schedule string to \
                   $(docv), one per line — each replayable verbatim via \
                   $(b,--schedule).")
  in
  let run schedules schedule_file count seed variant jobs json_file
      save_falsified =
    guard_io @@ fun () ->
    let parse str =
      match Schedule.of_string str with Ok s -> s | Error e -> failwith e
    in
    let from_file =
      match schedule_file with
      | None -> []
      | Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
        let rec lines acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then lines acc
            else lines (parse line :: acc)
        in
        lines []
    in
    let replayed = List.map parse schedules @ from_file in
    let generated = replayed = [] in
    let todo =
      if generated then Ni_gen.sample ~variant ~seed ~count ()
      else replayed
    in
    if generated then
      Printf.printf "ni: generating %d schedules on %s (seed %d, jobs %d)\n%!"
        (List.length todo)
        (Config.variant_name variant)
        seed jobs
    else
      Printf.printf "ni: replaying %d schedule%s (jobs %d)\n%!"
        (List.length todo)
        (if List.length todo = 1 then "" else "s")
        jobs;
    let falsifies s = (Body.check s).Schedule.v_falsified in
    let work s =
      let v = Body.check s in
      if not v.Schedule.v_falsified then
        { ni_schedule = s; ni_verdict = v; ni_shrunk = None; ni_channel = None }
      else begin
        (* Generated counterexamples shrink before they are reported;
           replayed witnesses are kept verbatim.  Either way the Audit
           diff localizes which hardware channel the leak entered. *)
        let s' = if generated then Ni_gen.greedy_shrink ~falsifies s else s in
        {
          ni_schedule = s;
          ni_verdict = v;
          ni_shrunk = Some s';
          ni_channel = Mi6_obs.Audit.first_leaking_channel (Body.localize s');
        }
      end
    in
    let results = with_pool ~jobs (fun pool ->
        Mi6_exec.Pool.run_list pool todo work)
    in
    let falsified = List.filter (fun r -> r.ni_shrunk <> None) results in
    List.iter
      (fun r ->
        match r.ni_shrunk with
        | None ->
          if not generated then
            Printf.printf "ok        %s\n" (Schedule.to_string r.ni_schedule)
        | Some s' ->
          Printf.printf "FALSIFIED %s\n" (Schedule.to_string r.ni_schedule);
          if s' <> r.ni_schedule then
            Printf.printf "  shrunk  %s\n" (Schedule.to_string s');
          (match r.ni_channel with
          | Some c ->
            Printf.printf "  channel %s\n" (Mi6_obs.Audit.channel_name c)
          | None -> ());
          let v = (if generated then Body.check s' else r.ni_verdict) in
          Format.printf "  body:@.%a  reference:@.%a"
            Schedule.pp_observation v.Schedule.v_obs Schedule.pp_observation
            v.Schedule.v_ref_obs)
      results;
    Printf.printf "ni: %d/%d schedules falsified\n%!" (List.length falsified)
      (List.length results);
    (match save_falsified with
    | Some path ->
      write_file path
        (String.concat ""
           (List.map
              (fun r ->
                Schedule.to_string (Option.get r.ni_shrunk) ^ "\n")
              falsified));
      Printf.printf "falsifying schedules -> %s\n%!" path
    | None -> ());
    (match json_file with
    | Some path ->
      let open Mi6_obs in
      let result_json r =
        Json.Obj
          ([
             ("schedule", Json.String (Schedule.to_string r.ni_schedule));
             ( "variant",
               Json.String
                 (Config.variant_name r.ni_schedule.Schedule.variant) );
             ("falsified", Json.Bool r.ni_verdict.Schedule.v_falsified);
           ]
          @ (match r.ni_shrunk with
            | None -> []
            | Some s' -> [ ("shrunk", Json.String (Schedule.to_string s')) ])
          @ [
              ( "channel",
                match r.ni_channel with
                | Some c -> Json.String (Audit.channel_name c)
                | None -> Json.Null );
              ( "observation",
                Schedule.observation_to_json r.ni_verdict.Schedule.v_obs );
              ( "reference",
                Schedule.observation_to_json r.ni_verdict.Schedule.v_ref_obs
              );
            ])
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "mi6.ni/1");
            ("mode", Json.String (if generated then "generate" else "replay"));
            ("seed", if generated then Json.Int seed else Json.Null);
            ( "variant",
              if generated then Json.String (Config.variant_name variant)
              else Json.Null );
            ("count", Json.Int (List.length results));
            ("falsified", Json.Int (List.length falsified));
            ("results", Json.List (List.map result_json results));
          ]
      in
      write_file path (Json.to_string doc);
      Printf.printf "ni report -> %s\n%!" path
    | None -> ());
    if falsified = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "ni" ~exits
       ~doc:
         "adversarial interrupt-schedule noninterference: generate \
          preemption schedules (or replay committed counterexample \
          strings) against random enclave bodies and require the \
          attacker's per-window observables to be independent of the \
          body; falsifying schedules shrink, localize to an Audit \
          channel, and print as replayable strings")
    Term.(const run $ schedules $ schedule_file $ count $ seed $ variant
          $ jobs $ json_file $ save_falsified)

let () =
  let doc = "cycle-level MI6 / RiscyOO simulator" in
  let code =
    Cmd.eval'
      (Cmd.group ~default:Term.(ret (const (`Help (`Pager, None))))
         (Cmd.info "mi6_sim" ~doc ~exits)
         [ run_cmd; multi_cmd; sweep_cmd; attack_cmd; audit_cmd; profile_cmd;
           top_cmd; bisect_cmd; area_cmd; lint_cmd; ni_cmd ])
  in
  (* Cmdliner reports its own CLI parse errors as 124; fold that into the
     documented usage-error code. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
