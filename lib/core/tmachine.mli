(** The timing machine: OoO cores (each with private L1 I/D, TLBs, and
    walker) around the shared LLC and DRAM controller, advanced in
    lock-step — plus the experiment runner used by the benchmark harness
    to reproduce the paper's Figures 5-13.

    The evaluation methodology mirrors the paper's: each SPEC model runs
    alone on one core of a variant machine (Section 7 approximated its
    16-core conclusions the same way on a single FPGA core), with a warmup
    window excluded from measurement. *)

type t

(** [create ?trace timing ~streams ~stats] builds a machine with one core
    per stream.  [trace] (default {!Trace.null}) is shared by every
    component for cycle-stamped event capture; [selfprof] attributes host
    cost to simulation phases, [occupancy] samples structure occupancy
    and classifies quiet cycles, [telemetry] streams periodic JSONL
    snapshots — each defaults to its disabled singleton. *)
val create :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  ?occupancy:Occupancy.t ->
  ?telemetry:Telemetry.t ->
  Config.timing ->
  streams:(unit -> Uop.t option) array ->
  stats:Stats.t ->
  t

val tick : t -> unit
val now : t -> int
val core : t -> int -> Core.t
val finished : t -> bool

(** Committed instructions summed over all cores. *)
val committed : t -> int

(** [structural_signature t] folds every component's structure state
    (cores, walkers, L1s, LLC, links, DRAM) into one {!Mi6_util.Statesig}
    hash; two consecutive cycles with equal signatures advanced nothing
    but the clock (the quiet-cycle criterion). *)
val structural_signature : t -> int

(** [dump_state t] — labelled rendering of the same state
    {!structural_signature} folds; the quiet-cycle property test
    byte-compares consecutive dumps as the oracle. *)
val dump_state : t -> string

(** Per-component {!structural_signature} values, labelled ["core0"],
    ["l1d.0"], ["l1i.0"], …, ["llc"] — the bisector compares these to
    name the diverging component. *)
val signature_sections : t -> (string * int) list

(** Per-component [dump_state] renderings under the same labels; slice
    reports diff them field-by-field. *)
val dump_sections : t -> (string * string) list

(** Value snapshot of the whole machine: every core (predictors, TLBs,
    walker, deferred events), every L1, the LLC (links and DRAM
    included), the stats table, the trace ring, and each µop stream's
    position.  Stream logging starts lazily at the first [save] — a
    machine that never checkpoints pays nothing — after which consumed
    µops are logged so [restore] can rewind the stream cursor and replay
    byte-identically.

    Core checkpoints rewind closure-captured records in place, so a
    checkpoint is only valid on the [t] that produced it.  Observability
    sinks (selfprof, occupancy, telemetry) are not rewound.

    [save ~omit_predictors:true] deliberately breaks the completeness
    guarantee (see {!Core.save}) — the non-vacuity witness for the
    checkpoint-determinism property test. *)
type checkpoint

val save : ?omit_predictors:bool -> t -> checkpoint
val restore : t -> checkpoint -> unit

(** The machine clock at which the checkpoint was taken. *)
val checkpoint_cycle : checkpoint -> int

(** [run t ~max_cycles] ticks until every core finishes; returns cycles.
    Raises [Failure] on timeout. *)
val run : t -> max_cycles:int -> int

(** Result of a measured single-core run. *)
type result = {
  cycles : int;  (** measured-window cycles *)
  instrs : int;  (** measured-window committed instructions *)
  stats : Stats.t;  (** measured-window counter deltas *)
  metrics : Metrics.t;
      (** full-machine registry: the counter table plus per-core load/
          purge/walk, per-L1 miss-latency, and LLC-occupancy histograms,
          and the trace-ring gauges [trace.events] /
          [trace.dropped_events] (nonzero drops invalidate
          timeline-equality analyses) *)
}

val ipc : result -> float

(** [mpki result counter] — events per kilo-instruction in the window. *)
val mpki : result -> string -> float

(** [run_spec ~variant ~bench ~warmup ~measure] runs a SPEC model on a
    variant machine: [warmup] µops untimed, then [measure] µops
    measured.  [seed] (default 0) is a deterministic offset on the
    bench's canonical stream seed: 0 is the canonical stream, any other
    value a reproducible perturbation — sweep cells use it to sample
    independent streams of the same model. *)
val run_spec :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  ?occupancy:Occupancy.t ->
  ?telemetry:Telemetry.t ->
  ?seed:int ->
  variant:Config.variant ->
  bench:Mi6_workload.Spec.bench ->
  warmup:int ->
  measure:int ->
  unit ->
  result

(** [spec_stream ?seed ~core ~bench ~limit ()] — the µop stream
    [run_spec] drives: [bench]'s synthetic model confined to [core]'s
    region block, ending after [limit] µops.  Exposed for tests that
    need to drive {!create}/{!tick} directly. *)
val spec_stream :
  ?seed:int ->
  core:int ->
  bench:Mi6_workload.Spec.bench ->
  limit:int ->
  unit ->
  unit ->
  Uop.t option

(** [run_stream ~timing ~stream ~warmup ~measure] — same measurement
    protocol for an arbitrary µop stream (ablations, tests).  [stream]
    must end after [warmup + measure] µops. *)
val run_stream :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  ?occupancy:Occupancy.t ->
  ?telemetry:Telemetry.t ->
  timing:Config.timing ->
  stream:(unit -> Uop.t option) ->
  warmup:int ->
  measure:int ->
  unit ->
  result

(** [run_multi ~timing ~benches ~warmup ~measure] — a multiprogrammed
    multiprocessor run: one SPEC model per core, each confined to its own
    disjoint block of DRAM regions (code, data, kernel, and page tables
    all private).  Per-core measured windows are cut when that core passes
    its own warmup / measure instruction counts.  This is the evaluation
    the paper calls ideal but could not fit on one FPGA (Section 7.2).
    The shared [stats] table is returned in each result (counters are
    machine-wide). *)
val run_multi :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  ?occupancy:Occupancy.t ->
  ?telemetry:Telemetry.t ->
  timing:Config.timing ->
  benches:Mi6_workload.Spec.bench array ->
  warmup:int ->
  measure:int ->
  unit ->
  result array
