(** Adversarial interrupt schedules for the enclave noninterference
    harness (paper Section 6; Busi et al.'s interruptible-enclave
    isolation).

    A schedule says {e when} a victim enclave is preempted and {e what}
    the attacker runs during each preemption: a list of preemption
    points — indexed either by committed enclave instruction or by
    machine cycle — each naming a fixed attacker program, plus a final
    attacker run after the enclave completes.  Preemption goes through
    the real trap path: an [Enter_kernel] marker (serialize + purge on
    the flushing variants), the attacker's µops over its own code/data
    ranges (DRAM region 3, disjoint from the enclave's regions 1/2),
    then [Exit_kernel] (purge again) and resume into the enclave.

    The hyperproperty: on the secure variants, the attacker's
    observables — per-window cycle counts, mispredicts, and I/D/LLC
    miss counters — are independent of the enclave body for
    {e every} schedule.  {!check} compares a body against a same-length
    straight-line ALU reference body under one schedule; {!localize}
    re-runs a falsified schedule with event tracing and names the
    leaking hardware channel via {!Mi6_obs.Audit}.

    Schedules print as a compact replayable string
    ([ni1:<variant>:b<seed>:<points>:<final>], e.g.
    [ni1:base:b42:i3=train,c900=probe:sweep]) accepted by
    [mi6_sim ni --schedule]; {!of_string} inverts {!to_string}.

    What the observable deliberately excludes: the enclave's total
    running time (the gap between two attacker windows).  Execution
    duration is public in MI6's model — the OS schedules the enclave and
    trivially sees when it yields; hiding it needs padding (Busi et
    al.), which the paper does not claim. *)

(** The attacker programs an adversary may run during a preemption.
    Each lives at its own pc range so predictor footprints stay
    distinct; all data accesses land in the attacker's DRAM region. *)
type attacker = Probe | Train | Sweep | Stores

val attackers : attacker list
val attacker_name : attacker -> string
val attacker_of_name : string -> attacker option

(** [attacker_uops a] — the fixed µop sequence of one attacker window
    (exposed so tests can anchor window sizes). *)
val attacker_uops : attacker -> Uop.t list

(** A preemption point: trap after the [At_instr n]-th enclave µop has
    entered the stream (clamped to the body length), or at the first
    enclave fetch once the machine clock reaches [At_cycle c].  Points
    fire in list order; a point whose condition is already met fires
    immediately, and points outstanding when the enclave body ends fire
    back-to-back before the final window. *)
type when_ = At_instr of int | At_cycle of int

type point = { at : when_; attacker : attacker }

type t = {
  variant : Config.variant;
  body_seed : int;  (** identifies the enclave body (see {!Mi6_progen.Body}) *)
  points : point list;
  final : attacker;  (** attacker window after the enclave completes *)
}

val to_string : t -> string

(** Parses the [ni1:...] format; inverse of {!to_string} (tolerant of
    surrounding whitespace and case in the variant/attacker names). *)
val of_string : string -> (t, string) result

(** What the attacker sees of one of its own windows, measured from its
    own first commit to the [Exit_kernel] commit (which serializes, so
    every attacker µop has fully executed by then).  The window is
    anchored at the first attacker commit rather than [Enter_kernel]
    because the marker commits at rename, before the enclave's in-flight
    tail drains: timing measured from it would see the drain — the
    enclave's own execution speed, which is public in MI6's model, not a
    purge failure. *)
type window = {
  w_attacker : attacker;
  w_cycles : int;  (** first attacker commit → Exit commit *)
  w_commits : int;  (** attacker µops committed (schedule-determined) *)
  w_mispredicts : int;
  w_l1d_misses : int;
  w_l1i_misses : int;
  w_llc_misses : int;
}

(** One window per preemption point plus the final window, in schedule
    order.  Structural equality is the noninterference criterion. *)
type observation = window list

val observation_to_json : observation -> Json.t
val pp_observation : Format.formatter -> observation -> unit

(** [reference_body n] — the straight-line ALU body of length [n] the
    enclave under test is compared against: same pc range, no memory
    traffic, no branches. *)
val reference_body : int -> Uop.t list

(** [run ~timing ~body t] executes [body] under schedule [t] and returns
    the attacker's observation.  [trace] captures cycle-stamped events
    for {!localize}; the second component is each window's absolute
    [(first_attacker_commit, exit_commit)] cycle bounds. *)
val run :
  ?max_cycles:int ->
  ?trace:Trace.t ->
  timing:Config.timing ->
  body:Uop.t list ->
  t ->
  observation * (int * int) list

type verdict = {
  v_schedule : t;
  v_falsified : bool;
  v_obs : observation;  (** the seeded body's windows *)
  v_ref_obs : observation;  (** the ALU reference body's windows *)
}

(** [check ~body t] — noninterference for one schedule: observation of
    [body] vs the same-length reference body on [t.variant].
    [v_falsified] when they differ. *)
val check : ?max_cycles:int -> body:Uop.t list -> t -> verdict

(** [localize ~body t] — re-run both sides of {!check} with event
    tracing, keep only events inside attacker windows (rebased to each
    window's [Enter] commit, so absolute-time skew from differing body
    lengths cancels), and diff them: {!Mi6_obs.Audit.first_leaking_channel}
    then names the structure the leak entered through. *)
val localize : ?max_cycles:int -> body:Uop.t list -> t -> Audit.report

(** Settle window for trap-boundary experiments, in µops, derived from
    the machine configuration instead of a hand-tuned constant: covers
    the entry+return purge pair, a full ROB drain, a front-end redirect
    refill, and one DRAM round trip, at [commit_width] µops per cycle.
    Config changes (a deeper ROB, a slower purge) can no longer silently
    under-warm the purge-indistinguishability property. *)
val settle_uops : Config.timing -> int
