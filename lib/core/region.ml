type owner = Monitor | Os | Enclave of int | Free

type t = {
  geometry : Addr.regions;
  owners : owner array;
  readers : owner list array;  (* read-share grants, per region *)
}

let create geometry =
  let owners = Array.make geometry.Addr.region_count Os in
  owners.(0) <- Monitor;
  {
    geometry;
    owners;
    readers = Array.make geometry.Addr.region_count [];
  }

let geometry t = t.geometry
let region_count t = t.geometry.Addr.region_count

let owner t r =
  if r < 0 || r >= Array.length t.owners then invalid_arg "Region.owner";
  t.owners.(r)

let owned_by t who =
  let acc = ref [] in
  Array.iteri (fun i o -> if o = who then acc := i :: !acc) t.owners;
  List.rev !acc

let transfer t ~regions ~from_ ~to_ =
  let ok =
    regions <> []
    && List.for_all
         (fun r -> r >= 0 && r < Array.length t.owners && t.owners.(r) = from_)
         regions
  in
  if ok then
    List.iter
      (fun r ->
        t.owners.(r) <- to_;
        (* An ownership change voids every standing read grant: the new
           owner must re-issue shares under its own authority. *)
        t.readers.(r) <- [])
      regions;
  ok

let readers t r =
  if r < 0 || r >= Array.length t.readers then invalid_arg "Region.readers";
  t.readers.(r)

let share t ~region ~owner:who ~reader =
  let ok =
    region >= 0
    && region < Array.length t.owners
    && t.owners.(region) = who
    && who <> Free && reader <> Free && reader <> who
  in
  if ok && not (List.mem reader t.readers.(region)) then
    t.readers.(region) <- t.readers.(region) @ [ reader ];
  ok

let shared_regions t =
  let acc = ref [] in
  Array.iteri (fun i rs -> if rs <> [] then acc := i :: !acc) t.readers;
  List.rev !acc

let perm_mask t who =
  let mask = ref 0L in
  Array.iteri
    (fun i o ->
      if o = who then mask := Int64.logor !mask (Int64.shift_left 1L i))
    t.owners;
  !mask

let access_mask t who =
  let mask = ref (perm_mask t who) in
  Array.iteri
    (fun i rs ->
      if List.mem who rs then mask := Int64.logor !mask (Int64.shift_left 1L i))
    t.readers;
  !mask
