type llc_setup = {
  security : Llc.security;
  index : Index.t;
  mshrs : int;
  mshr_banks : int;
  strict_bank_stall : bool;
}

let baseline_setup =
  {
    security = Llc.baseline_security;
    index = Index.flat ~set_bits:10;
    mshrs = 16;
    mshr_banks = 1;
    strict_bank_stall = false;
  }

let mi6_setup =
  {
    security = Llc.mi6_security;
    index =
      Index.partitioned ~set_bits:10 ~region_bits:2
        ~geometry:Addr.default_regions;
    (* Partitioned: 6 entries per core; DRAM sized per the paper's rule. *)
    mshrs = 12;
    mshr_banks = 1;
    strict_bank_stall = false;
  }

let geometry = Addr.default_regions

(* The attacker sits on the HIGHER core index: the baseline two-level mux
   arbitrates lower cores first, so its unfairness (a Section 5.4.2 minor
   leak) is visible to the attacker; MI6's round-robin arbiter must make
   the position irrelevant. *)
let attacker_core = 1
let victim_core = 0

(* Attacker data lives in region 2, victim data in region 3: disjoint
   protection domains. *)
let attacker_base_line = Addr.region_base geometry 2 / Addr.line_bytes
let victim_base_line = Addr.region_base geometry 3 / Addr.line_bytes

let make_hierarchy ?trace setup ~dram =
  let stats = Stats.create () in
  let llc_cfg =
    {
      (Llc.default_config ~cores:2) with
      Llc.index = setup.index;
      mshrs = setup.mshrs;
      mshr_banks = setup.mshr_banks;
      strict_bank_stall = setup.strict_bank_stall;
    }
  in
  Hierarchy.create ?trace ~llc:llc_cfg ~security:setup.security ~dram ~stats
    ()

let const_dram = Hierarchy.Const_dram { latency = 120; max_outstanding = 24 }

(* Serially access [line] from [core] and return the completion latency.
   [while_waiting] runs every cycle (drives the concurrent victim). *)
let timed_access ?(while_waiting = fun () -> ()) h ~core ~line =
  let rec wait_ready budget =
    if budget = 0 then failwith "Noninterference: L1 never ready";
    if not (Hierarchy.can_accept h ~core) then begin
      while_waiting ();
      Hierarchy.tick h;
      ignore (Hierarchy.take_completions h ~core);
      wait_ready (budget - 1)
    end
  in
  wait_ready 10_000;
  let issued = Hierarchy.now h in
  Hierarchy.request h ~core ~line ~store:false ~id:0;
  let rec wait budget =
    if budget = 0 then failwith "Noninterference: access never completed";
    while_waiting ();
    Hierarchy.tick h;
    match Hierarchy.take_completions h ~core with
    | [] -> wait (budget - 1)
    | (_, at) :: _ -> at - issued
  in
  wait 10_000

(* Untimed access: issue and wait for completion. *)
let plain_access h ~core ~line =
  ignore (timed_access h ~core ~line)

(* ------------------------------------------------------------------ *)
(* Prime + probe                                                       *)
(* ------------------------------------------------------------------ *)

let prime_probe setup ~secret =
  let h = make_hierarchy setup ~dram:const_dram in
  (* Lines of the attacker that share one index-set under the FLAT
     function; under the partitioned function they stay inside the
     attacker's slice either way. *)
  let set = 5 in
  let attacker_line k = attacker_base_line + (k * 1024) + set in
  (* Victim lines mapping (flat) to the same set when the secret is 1,
     to a different set otherwise. *)
  let victim_line k =
    victim_base_line + (k * 1024) + if secret then set else set + 7
  in
  (* Prime: fill the set with the attacker's 16 ways (and warm the
     attacker L1 out of the picture by using >8 lines per L1 set). *)
  for k = 0 to 15 do
    plain_access h ~core:attacker_core ~line:(attacker_line k)
  done;
  (* Victim activity while the attacker is idle. *)
  for k = 0 to 7 do
    plain_access h ~core:victim_core ~line:(victim_line k)
  done;
  (* Probe: time each attacker line again.  L1 pressure: the 16 lines
     map to the same L1 set (stride 1024 lines = same L1 index), so only
     8 fit the 8-way L1 — misses go to the LLC where the victim may have
     evicted them. *)
  List.init 16 (fun k -> timed_access h ~core:attacker_core ~line:(attacker_line k))

(* ------------------------------------------------------------------ *)
(* MSHR / queue contention                                             *)
(* ------------------------------------------------------------------ *)

let mshr_channel setup ~victim_floods =
  let h = make_hierarchy setup ~dram:const_dram in
  (* The victim keeps as many misses in flight as its L1 allows, to
     fresh lines so every one reaches the LLC and DRAM. *)
  let next_victim = ref 0 in
  let victim_driver () =
    if victim_floods && Hierarchy.can_accept h ~core:victim_core then begin
      incr next_victim;
      Hierarchy.request h ~core:victim_core
        ~line:(victim_base_line + (!next_victim * 517))
        ~store:false ~id:!next_victim
    end;
    ignore (Hierarchy.take_completions h ~core:victim_core)
  in
  (* The attacker times a stream of its own misses (fresh lines). *)
  List.init 24 (fun k ->
      timed_access ~while_waiting:victim_driver h ~core:attacker_core
        ~line:(attacker_base_line + (k * 131)))

(* ------------------------------------------------------------------ *)
(* DRAM bank locality                                                  *)
(* ------------------------------------------------------------------ *)

let dram_bank_channel ~reordering ~victim_same_bank =
  let dram =
    if reordering then Hierarchy.Reorder_dram Fr_fcfs.default_config
    else const_dram
  in
  let h = make_hierarchy mi6_setup ~dram in
  let banks = Fr_fcfs.default_config.Fr_fcfs.banks in
  (* Attacker misses always target bank 0 (line multiple of #banks). *)
  let attacker_line k = attacker_base_line + (k * 129 * banks) in
  let victim_bank = if victim_same_bank then 0 else banks / 2 in
  let next_victim = ref 0 in
  let victim_driver () =
    if Hierarchy.can_accept h ~core:victim_core then begin
      incr next_victim;
      (* Fresh victim lines confined to one bank. *)
      let line = victim_base_line + (!next_victim * 97 * banks) + victim_bank in
      Hierarchy.request h ~core:victim_core ~line ~store:false ~id:!next_victim
    end;
    ignore (Hierarchy.take_completions h ~core:victim_core)
  in
  List.init 24 (fun k ->
      timed_access ~while_waiting:victim_driver h ~core:attacker_core
        ~line:(attacker_line (k + 1)))

(* ------------------------------------------------------------------ *)
(* Victim-timeline capture                                             *)
(* ------------------------------------------------------------------ *)

type attacker = A_idle | A_flood | A_burst | A_sweep

let all_attackers = [ A_idle; A_flood; A_burst; A_sweep ]

let attacker_name = function
  | A_idle -> "idle"
  | A_flood -> "flood"
  | A_burst -> "burst"
  | A_sweep -> "sweep"

let attacker_of_name s =
  List.find_opt (fun a -> attacker_name a = String.lowercase_ascii s)
    all_attackers

(* Victim-owned DRAM traffic: commands for lines inside the victim's
   region (DRAM events carry no core attribution, only addresses). *)
let victim_region_lines =
  geometry.Addr.region_bytes / Addr.line_bytes

let victim_owns_line line =
  line >= victim_base_line && line < victim_base_line + victim_region_lines

let victim_event vcore ev =
  match Trace.event_core ev with
  | Some c -> c = vcore
  | None -> (
    match ev with
    | Trace.Dram_cmd { line; _ } -> victim_owns_line line
    | _ -> false)

let victim_observation setup ~attacker =
  let trace =
    Trace.create ~capacity:(1 lsl 16) ~filter:[ Trace.Llc; Trace.Dram ] ()
  in
  let h = make_hierarchy ~trace setup ~dram:const_dram in
  (* Roles swapped relative to the other experiments: the victim sits on
     the HIGHER core index, where the baseline mux's lower-core-first
     unfairness can starve it whenever the attacker is busy.  MI6's
     round-robin arbiter must make the position irrelevant. *)
  let vcore = 1 and acore = 0 in
  let next_attacker = ref 0 in
  (* Each behaviour stresses a different shared structure: [A_flood]
     keeps maximal misses in flight (MSHR + arbiter pressure), [A_burst]
     alternates 256-cycle storms with silence (arbitration-phase
     pressure), [A_sweep] loops over a small working set so most traffic
     hits in the LLC (pipeline/queue pressure without DRAM). *)
  let attacker_driver () =
    (match attacker with
    | A_idle -> ()
    | A_flood ->
      if Hierarchy.can_accept h ~core:acore then begin
        incr next_attacker;
        Hierarchy.request h ~core:acore
          ~line:(attacker_base_line + (!next_attacker * 517))
          ~store:false ~id:!next_attacker
      end
    | A_burst ->
      if (Hierarchy.now h / 256) land 1 = 0 && Hierarchy.can_accept h ~core:acore
      then begin
        incr next_attacker;
        Hierarchy.request h ~core:acore
          ~line:(attacker_base_line + (!next_attacker * 517))
          ~store:false ~id:!next_attacker
      end
    | A_sweep ->
      if Hierarchy.can_accept h ~core:acore then begin
        incr next_attacker;
        Hierarchy.request h ~core:acore
          ~line:(attacker_base_line + (!next_attacker mod 24 * 131))
          ~store:false ~id:!next_attacker
      end);
    ignore (Hierarchy.take_completions h ~core:acore)
  in
  (* The victim runs a fixed access script: bursts of 4 concurrent
     misses (so it occupies shared LLC structures for whole windows, not
     single cycles), 8 rounds. *)
  for round = 0 to 7 do
    let issued = ref 0 and completed = ref 0 in
    let budget = ref 100_000 in
    while !completed < 4 do
      decr budget;
      if !budget = 0 then failwith "Noninterference: victim burst stuck";
      if !issued < 4 && Hierarchy.can_accept h ~core:vcore then begin
        incr issued;
        Hierarchy.request h ~core:vcore
          ~line:(victim_base_line + (round * 8) + (!issued * 131))
          ~store:false ~id:!issued
      end;
      attacker_driver ();
      Hierarchy.tick h;
      completed :=
        !completed + List.length (Hierarchy.take_completions h ~core:vcore)
    done
  done;
  (* The victim's view: every cycle-stamped LLC event attributed to its
     core, plus DRAM commands for its own lines. *)
  let events =
    List.filter (fun (_, ev) -> victim_event vcore ev) (Trace.events trace)
  in
  (events, Trace.dropped trace, Trace.dominant_dropped trace)

let victim_llc_events setup ~attacker =
  let events, drops, _dominant = victim_observation setup ~attacker in
  (events, drops)

let victim_timeline setup ~attacker_floods =
  let events, _drops, _dominant =
    victim_observation setup
      ~attacker:(if attacker_floods then A_flood else A_idle)
  in
  (* Rendered to stable strings, DRAM excluded: the historical
     timeline-equality shape (PR 1's noninterference test). *)
  List.filter_map
    (fun (cycle, ev) ->
      match Trace.category_of_event ev with
      | Trace.Llc -> Some (Printf.sprintf "%d %s" cycle (Trace.event_label ev))
      | _ -> None)
    events

let leaks observations =
  match observations with
  | [] -> false
  | first :: rest -> List.exists (fun o -> o <> first) rest

(* ------------------------------------------------------------------ *)
(* Audit grid                                                          *)
(* ------------------------------------------------------------------ *)

type audit_cell = {
  cell_setup_name : string;
  cell_setup : llc_setup;
  cell_attacker : attacker;
}

let audit_setups = [ ("baseline", baseline_setup); ("mi6", mi6_setup) ]

let audit_grid ?(setups = audit_setups) ~attackers () =
  (* Canonical enumeration: setups in given order, the idle reference
     first within each, then the requested behaviours in [all_attackers]
     order with duplicates dropped.  Every capture in the grid is
     self-contained (each cell builds its own hierarchy and trace ring),
     so a pool may run the cells in any order; consumers index results by
     cell and the report stays deterministic. *)
  let attackers =
    List.filter
      (fun a -> a <> A_idle && List.mem a attackers)
      all_attackers
  in
  List.concat_map
    (fun (cell_setup_name, cell_setup) ->
      List.map
        (fun cell_attacker -> { cell_setup_name; cell_setup; cell_attacker })
        (A_idle :: attackers))
    setups

let audit_cell_name c =
  c.cell_setup_name ^ "/" ^ attacker_name c.cell_attacker

let run_audit_cell c = victim_observation c.cell_setup ~attacker:c.cell_attacker
