(* Rewindable µop stream.  The cores capture their stream closures at
   [create], so rewinding has to happen {e behind} those closures: each
   raw stream is wrapped in a cursor + log.  Until the first machine
   checkpoint nothing is recorded (zero steady-state cost); from the
   first [save] on, every µop pulled from the raw stream is logged, and
   [restore] just moves the cursor back — replayed pulls are served from
   the log, byte-identical, until the cursor catches up with the raw
   stream again. *)
type rstream = {
  raw : unit -> Uop.t option;
  mutable buf : Uop.t option array; (* grow-on-demand log *)
  mutable start : int; (* stream position of buf.(0) *)
  mutable stored : int; (* log entries *)
  mutable pos : int; (* next position to serve *)
  mutable recording : bool;
}

let make_rstream raw =
  { raw; buf = [||]; start = 0; stored = 0; pos = 0; recording = false }

let rstream_pull rs () =
  let item =
    if rs.pos < rs.start + rs.stored then rs.buf.(rs.pos - rs.start)
    else begin
      let v = rs.raw () in
      if rs.recording then begin
        if rs.stored = Array.length rs.buf then begin
          let nbuf = Array.make (max 64 (2 * rs.stored)) None in
          Array.blit rs.buf 0 nbuf 0 rs.stored;
          rs.buf <- nbuf
        end;
        rs.buf.(rs.stored) <- v;
        rs.stored <- rs.stored + 1
      end
      else rs.start <- rs.start + 1 (* not logged: start tracks pos *);
      v
    end
  in
  rs.pos <- rs.pos + 1;
  item

type t = {
  cores : Core.t array;
  l1ds : L1.t array;
  l1is : L1.t array;
  llc : Llc.t;
  stats : Stats.t;
  trace : Trace.t;
  selfprof : Selfprof.t;
  occupancy : Occupancy.t;
  telemetry : Telemetry.t;
  rstreams : rstream array;
  mutable clock : int;
}

(* Per-core protection-domain region block: core i owns regions
   8i+1..8i+7 (region 0 stays the monitor's).  Within the block: code,
   data, kernel, and page tables each get their own region, so domains
   are fully disjoint — including the page-table lines the walkers
   touch. *)
let region_block core = (8 * core) + 1

let code_base ~core = Addr.region_base Addr.default_regions (region_block core)
let data_base ~core = Addr.region_base Addr.default_regions (region_block core + 1)
let kernel_base ~core = Addr.region_base Addr.default_regions (region_block core + 3)

let pt_base_line ~core =
  Addr.region_base Addr.default_regions (region_block core + 4)
  / Addr.line_bytes

let create ?(trace = Trace.null) ?(selfprof = Selfprof.null)
    ?(occupancy = Occupancy.null) ?(telemetry = Telemetry.null)
    (timing : Config.timing) ~streams ~stats =
  let n = Array.length streams in
  let ports = 2 * n in
  if timing.Config.llc.Llc.cores <> ports then
    invalid_arg "Tmachine.create: llc config port count mismatch";
  let links = Array.init ports (fun _ -> Link.create ~depth:4) in
  let dram =
    Controller.constant ~trace ~latency:timing.Config.dram_latency
      ~max_outstanding:timing.Config.dram_outstanding ~stats ()
  in
  let llc =
    Llc.create ~trace ~selfprof timing.Config.llc
      ~security:timing.Config.llc_security ~links ~dram ~stats
  in
  let l1ds =
    Array.init n (fun i ->
        L1.create ~trace timing.Config.l1 ~link:links.(2 * i) ~stats
          ~name:(Printf.sprintf "l1d.%d" i))
  in
  let l1is =
    Array.init n (fun i ->
        L1.create ~trace timing.Config.l1
          ~link:links.((2 * i) + 1)
          ~stats
          ~name:(Printf.sprintf "l1i.%d" i))
  in
  let rstreams = Array.map make_rstream streams in
  let cores =
    Array.init n (fun i ->
        Core.create ~trace ~selfprof ~id:i timing.Config.core ~l1i:l1is.(i)
          ~l1d:l1ds.(i)
          ~stream:(rstream_pull rstreams.(i))
          ~stats
          ~pt_base_line:(pt_base_line ~core:i))
  in
  { cores; l1ds; l1is; llc; stats; trace; selfprof; occupancy; telemetry;
    rstreams; clock = 0 }

(* Registry over every component's counters and distributions; values are
   read at export time, so build it once and export after the run. *)
let metrics m ~stats =
  let reg = Metrics.create () in
  Metrics.add_stats reg ~scope:"" stats;
  Array.iteri
    (fun i c ->
      let name fmt = Printf.sprintf fmt i in
      Metrics.add_histogram reg
        ~name:(name "core.%d.load_latency")
        (Core.load_latency c);
      Metrics.add_histogram reg
        ~name:(name "core.%d.purge_cycles")
        (Core.purge_latency c);
      Metrics.add_histogram reg
        ~name:(name "core.%d.walk_latency")
        (Core.walk_latency c))
    m.cores;
  Array.iteri
    (fun i l ->
      Metrics.add_histogram reg
        ~name:(Printf.sprintf "l1d.%d.miss_latency" i)
        (L1.miss_latency l))
    m.l1ds;
  Array.iteri
    (fun i l ->
      Metrics.add_histogram reg
        ~name:(Printf.sprintf "l1i.%d.miss_latency" i)
        (L1.miss_latency l))
    m.l1is;
  Metrics.add_histogram reg ~name:"llc.mshr_occupancy"
    (Llc.mshr_occupancy m.llc);
  (* A silently overflowed trace ring invalidates timeline analyses
     (audits compare streams event-for-event), so the drop count rides
     along with every metrics export. *)
  Metrics.set_int reg ~name:"trace.events" (Trace.length m.trace);
  Metrics.set_int reg ~name:"trace.dropped_events" (Trace.dropped m.trace);
  List.iter
    (fun (kind, n) ->
      Metrics.set_int reg ~name:("trace.dropped." ^ kind) n)
    (Trace.dropped_by_kind m.trace);
  if Occupancy.enabled m.occupancy then Occupancy.register m.occupancy reg;
  reg

let now t = t.clock
let core t i = t.cores.(i)

(* Whole-machine structure signature: the cores (each covering its own
   walker), both L1s per core, and the LLC (which also folds the links
   and the DRAM controller). *)
let structural_signature t =
  let h = ref Statesig.empty in
  Array.iter
    (fun c -> h := Statesig.mix !h (Core.structural_signature c))
    t.cores;
  Array.iter (fun l -> h := Statesig.mix !h (L1.structural_signature l)) t.l1ds;
  Array.iter (fun l -> h := Statesig.mix !h (L1.structural_signature l)) t.l1is;
  Statesig.mix !h (Llc.structural_signature t.llc)

let dump_state t =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun c ->
      Core.dump_state c buf;
      Buffer.add_char buf '\n')
    t.cores;
  Array.iter
    (fun l ->
      L1.dump_state l buf;
      Buffer.add_char buf '\n')
    t.l1ds;
  Array.iter
    (fun l ->
      L1.dump_state l buf;
      Buffer.add_char buf '\n')
    t.l1is;
  Llc.dump_state t.llc buf;
  Buffer.contents buf

(* Per-component views of the same state, for causal-slice reports:
   which component's signature diverged, and a labelled dump of each to
   diff field-by-field. *)
let signature_sections t =
  List.concat
    [
      Array.to_list
        (Array.mapi
           (fun i c -> (Printf.sprintf "core%d" i, Core.structural_signature c))
           t.cores);
      Array.to_list
        (Array.mapi
           (fun i l -> (Printf.sprintf "l1d.%d" i, L1.structural_signature l))
           t.l1ds);
      Array.to_list
        (Array.mapi
           (fun i l -> (Printf.sprintf "l1i.%d" i, L1.structural_signature l))
           t.l1is);
      [ ("llc", Llc.structural_signature t.llc) ];
    ]

let dump_sections t =
  let dump f x =
    let buf = Buffer.create 1024 in
    f x buf;
    Buffer.contents buf
  in
  List.concat
    [
      Array.to_list
        (Array.mapi
           (fun i c -> (Printf.sprintf "core%d" i, dump Core.dump_state c))
           t.cores);
      Array.to_list
        (Array.mapi
           (fun i l -> (Printf.sprintf "l1d.%d" i, dump L1.dump_state l))
           t.l1ds);
      Array.to_list
        (Array.mapi
           (fun i l -> (Printf.sprintf "l1i.%d" i, dump L1.dump_state l))
           t.l1is);
      [ ("llc", dump Llc.dump_state t.llc) ];
    ]

let committed t =
  Array.fold_left (fun n c -> n + Core.committed_instructions c) 0 t.cores

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore                                                *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  ck_clock : int;
  ck_cores : Core.checkpoint array;
  ck_l1ds : L1.checkpoint array;
  ck_l1is : L1.checkpoint array;
  ck_llc : Llc.checkpoint;
  ck_stats : Stats.t;
  ck_trace : Trace.checkpoint;
  ck_streams : int array; (* rstream cursor positions *)
}

let save ?omit_predictors t =
  (* First save turns stream logging on; positions at or after this
     point are replayable. *)
  Array.iter (fun rs -> rs.recording <- true) t.rstreams;
  {
    ck_clock = t.clock;
    ck_cores = Array.map (Core.save ?omit_predictors) t.cores;
    ck_l1ds = Array.map L1.save t.l1ds;
    ck_l1is = Array.map L1.save t.l1is;
    ck_llc = Llc.save t.llc;
    ck_stats = Stats.copy t.stats;
    ck_trace = Trace.save t.trace;
    ck_streams = Array.map (fun rs -> rs.pos) t.rstreams;
  }

let restore t ck =
  t.clock <- ck.ck_clock;
  Array.iteri (fun i c -> Core.restore t.cores.(i) c) ck.ck_cores;
  Array.iteri (fun i c -> L1.restore t.l1ds.(i) c) ck.ck_l1ds;
  Array.iteri (fun i c -> L1.restore t.l1is.(i) c) ck.ck_l1is;
  Llc.restore t.llc ck.ck_llc;
  Stats.restore ~into:t.stats ck.ck_stats;
  Trace.restore t.trace ck.ck_trace;
  Array.iteri
    (fun i p ->
      let rs = t.rstreams.(i) in
      if p < rs.start then
        invalid_arg "Tmachine.restore: stream position predates the log";
      rs.pos <- p)
    ck.ck_streams

let checkpoint_cycle ck = ck.ck_clock

let tick t =
  let now = t.clock in
  let sp = t.selfprof in
  Array.iteri
    (fun i core ->
      Core.tick core ~now;
      let p = Selfprof.switch sp Selfprof.ph_l1 in
      L1.tick t.l1ds.(i) ~now ~complete:(fun id ->
          Core.mem_complete core ~now ~id);
      L1.tick t.l1is.(i) ~now ~complete:(fun id -> Core.icache_complete core ~id);
      Selfprof.restore sp p)
    t.cores;
  let p = Selfprof.switch sp Selfprof.ph_llc in
  Llc.tick t.llc ~now;
  Selfprof.restore sp p;
  t.clock <- now + 1;
  if Occupancy.enabled t.occupancy then begin
    let rob = ref 0 and iq = ref 0 and lq = ref 0 and sq = ref 0 and sb = ref 0 in
    Array.iter
      (fun c ->
        rob := !rob + Core.rob_occupancy c;
        iq := !iq + Core.iq_occupancy c;
        lq := !lq + Core.lq_occupancy c;
        sq := !sq + Core.sq_occupancy c;
        sb := !sb + Core.sb_occupancy c)
      t.cores;
    Occupancy.sample t.occupancy ~rob:!rob ~iq:!iq ~lq:!lq ~sq:!sq ~sb:!sb
      ~mshr:(Llc.live_mshrs t.llc);
    Occupancy.note_cycle t.occupancy ~signature:(structural_signature t)
      ~cause:(Core.last_cycle_cause t.cores.(0))
  end;
  if Telemetry.enabled t.telemetry then
    Telemetry.maybe_emit t.telemetry ~cycle:t.clock ~instrs:(committed t)
      ~counters:(fun () -> Stats.to_assoc t.stats)
      ~occupancy:t.occupancy ~selfprof:t.selfprof

let finished t = Array.for_all Core.finished t.cores

let run t ~max_cycles =
  let start = t.clock in
  while (not (finished t)) && t.clock - start < max_cycles do
    tick t
  done;
  if not (finished t) then failwith "Tmachine.run: cycle budget exhausted";
  t.clock - start

type result = {
  cycles : int;
  instrs : int;
  stats : Stats.t;
  metrics : Metrics.t;
}

let ipc r = if r.cycles = 0 then 0.0 else float_of_int r.instrs /. float_of_int r.cycles

let mpki r counter =
  if r.instrs = 0 then 0.0
  else 1000.0 *. float_of_int (Stats.get r.stats counter) /. float_of_int r.instrs

let run_stream ?trace ?selfprof ?occupancy ?telemetry ~timing ~stream ~warmup
    ~measure () =
  ignore measure;
  let stats = Stats.create () in
  let m =
    create ?trace ?selfprof ?occupancy ?telemetry timing ~streams:[| stream |]
      ~stats
  in
  let c = m.cores.(0) in
  let snap = ref None in
  let budget = 400_000_000 in
  Selfprof.run_begin m.selfprof;
  while (not (finished m)) && m.clock < budget do
    tick m;
    if m.clock land 0xFFFF = 0 then
      Selfprof.sample m.selfprof ~cycles:m.clock ~instrs:(committed m);
    if !snap = None && Core.committed_instructions c >= warmup then
      snap := Some (m.clock, Core.committed_instructions c, Stats.copy stats)
  done;
  Selfprof.run_end m.selfprof ~cycles:m.clock ~instrs:(committed m);
  if not (finished m) then failwith "Tmachine.run_stream: cycle budget exhausted";
  let finish ~cycles ~instrs ~stats:window =
    let reg = metrics m ~stats:window in
    Metrics.set_int reg ~name:"run.cycles" cycles;
    Metrics.set_int reg ~name:"run.instrs" instrs;
    { cycles; instrs; stats = window; metrics = reg }
  in
  match !snap with
  | None ->
    (* Warmup longer than the stream: measure everything. *)
    finish ~cycles:m.clock
      ~instrs:(Core.committed_instructions c)
      ~stats:(Stats.copy stats)
  | Some (cycle0, instrs0, base) ->
    finish ~cycles:(m.clock - cycle0)
      ~instrs:(Core.committed_instructions c - instrs0)
      ~stats:(Stats.diff stats ~baseline:base)

let spec_stream ?(seed = 0) ~core ~bench ~limit () =
  let data_base = data_base ~core
  and code_base = code_base ~core
  and kernel_base = kernel_base ~core in
  let gen =
    if seed = 0 then
      Mi6_workload.Synth.for_bench bench ~data_base ~code_base ~kernel_base
    else
      (* Seed offsets perturb the bench's canonical seed deterministically,
         giving sweep cells independent-but-reproducible streams. *)
      Mi6_workload.Synth.create
        (Mi6_workload.Spec.params bench)
        ~seed:(Mi6_workload.Spec.seed bench + (seed * 0x9e3779b9))
        ~data_base ~code_base ~kernel_base
  in
  Mi6_workload.Synth.stream gen ~limit

let run_spec ?trace ?selfprof ?occupancy ?telemetry ?seed ~variant ~bench
    ~warmup ~measure () =
  let timing = Config.timing ~cores:1 variant in
  let stream = spec_stream ?seed ~core:0 ~bench ~limit:(warmup + measure) () in
  run_stream ?trace ?selfprof ?occupancy ?telemetry ~timing ~stream ~warmup
    ~measure ()

(* Multiprogrammed run: one SPEC model per core, each confined to its own
   region block — the multiprocessor methodology the paper could not fit
   on its FPGA (Section 7.2). *)
let run_multi ?trace ?selfprof ?occupancy ?telemetry ~timing ~benches ~warmup
    ~measure () =
  let n = Array.length benches in
  let stats = Stats.create () in
  let streams =
    Array.init n (fun i ->
        spec_stream ~core:i ~bench:benches.(i) ~limit:(warmup + measure) ())
  in
  let m = create ?trace ?selfprof ?occupancy ?telemetry timing ~streams ~stats in
  let snaps = Array.make n None in
  let fins = Array.make n None in
  let budget = 600_000_000 in
  Selfprof.run_begin m.selfprof;
  while (not (finished m)) && m.clock < budget do
    tick m;
    if m.clock land 0xFFFF = 0 then
      Selfprof.sample m.selfprof ~cycles:m.clock ~instrs:(committed m);
    Array.iteri
      (fun i core ->
        let c = Core.committed_instructions core in
        if snaps.(i) = None && c >= warmup then
          snaps.(i) <- Some (m.clock, c);
        if fins.(i) = None && c >= warmup + measure then
          fins.(i) <- Some (m.clock, c))
      m.cores
  done;
  Selfprof.run_end m.selfprof ~cycles:m.clock ~instrs:(committed m);
  if not (finished m) then failwith "Tmachine.run_multi: budget exhausted";
  let reg = metrics m ~stats in
  Array.init n (fun i ->
      let cycle0, instr0 = Option.value snaps.(i) ~default:(0, 0) in
      let cycle1, instr1 =
        Option.value fins.(i)
          ~default:(m.clock, Core.committed_instructions m.cores.(i))
      in
      { cycles = cycle1 - cycle0; instrs = instr1 - instr0; stats;
        metrics = reg })
