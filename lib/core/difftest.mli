(** Differential-testing bridge between the functional reference model
    ({!Mi6_func.Fsim}) and the out-of-order timing core.

    The ooo core is trace-driven: µops carry the committed path (branch
    outcomes, memory addresses) and no architectural values.  The bridge
    therefore checks equivalence as two halves:

    - {e architecturally}, the functional model is the single source of
      truth: {!run_func} executes a real encoded program and captures the
      per-step committed path plus the final architectural state (regs,
      CSRs, data-window memory image, store log);
    - {e microarchitecturally}, {!to_uops} translates that committed path
      into the µop stream the timing core consumes, {!run_ooo} retires it
      through a full variant machine with a retirement probe installed,
      and {!compare_commits} demands the retirement stream be exactly the
      translated path — same µops, same order, same branch outcomes and
      store addresses.

    Any reordering, dropped or duplicated retirement, or wrong
    store-address plumbing in the ooo pipeline shows up as a counterexample
    program, which qcheck then shrinks. *)

type step = {
  s_pc : int;  (** physical pc of the executed instruction *)
  s_instr : Instr.t;
  s_next_pc : int;  (** pc after the step — the committed successor *)
  s_accesses : Fsim.access list;
}

(** Final architectural state of a functional run. *)
type arch_state = {
  regs : int64 array;  (** x0..x31 *)
  csrs : (string * int64) list;  (** curated machine CSRs *)
  data_image : string;  (** raw bytes of the data window *)
  stores : (int * int) list;  (** (paddr, width) per store, program order *)
}

type func_run = { steps : step list; arch : arch_state }

exception Stuck of string
(** The functional run trapped, faulted, or exhausted its step budget
    before reaching the halt marker ([wfi]). *)

(** [run_func ~program ~data_base ~data_bytes ~max_steps ()] loads and
    executes [program] in machine mode until the first [wfi] (excluded
    from [steps]).  [init_regs] seeds architectural registers before the
    first fetch — the taint cross-validation harness uses it to inject a
    secret {e input} that is not part of the program text.  Raises
    {!Stuck} on any trap or on budget exhaustion. *)
val run_func :
  ?init_regs:(Reg.t * int64) list ->
  program:Asm.program ->
  data_base:int ->
  data_bytes:int ->
  max_steps:int ->
  unit ->
  func_run

(** [arch_equal a b] — deep equality of two architectural states. *)
val arch_equal : arch_state -> arch_state -> bool

(** [arch_diff a b] — human-readable first difference, if any. *)
val arch_diff : arch_state -> arch_state -> string option

(** [to_uops run ~func_code_base ~func_data_base] translates the committed
    path into the timing core's µop stream, remapping code addresses into
    the machine's core-0 code region and data addresses into its data
    region.  Loads and stores take their physical address from the step's
    emitted access; branches compute taken/target from the committed
    successor. *)
val to_uops :
  func_run -> func_code_base:int -> func_data_base:int -> Uop.t list

type ooo_run = {
  committed : Uop.t list;  (** retirement order, markers included *)
  cycles : int;
}

(** [run_ooo ?trace ~variant uops] retires the stream through a one-core
    variant machine (full cache hierarchy) with a retirement probe
    installed, optionally recording events into [trace] — the static/
    dynamic agreement harness taps this to let the Audit localize
    divergences. *)
val run_ooo : ?trace:Trace.t -> variant:Config.variant -> Uop.t list -> ooo_run

(** [compare_commits ~expected ~actual] — [Error msg] on the first
    position where the retirement stream deviates from the translated
    committed path (or on a length mismatch). *)
val compare_commits :
  expected:Uop.t list -> actual:Uop.t list -> (unit, string) result

(** Index of the first deviation (including a length mismatch), if any —
    the position {!compare_commits} reports on. *)
val first_mismatch : expected:Uop.t list -> actual:Uop.t list -> int option

(** [explain_divergence ~variant ~index uops] re-runs [uops] through the
    variant machine with a {!Mi6_obs.Replay} flight recorder and a trace
    attached, maps retirement position [index] to its retirement cycle,
    and renders {!Bisect.slice_at}'s causal slice there — the annotation
    printed alongside a shrunk differential-test counterexample. *)
val explain_divergence :
  ?interval:int ->
  ?ring:int ->
  ?window:int ->
  variant:Config.variant ->
  index:int ->
  Uop.t list ->
  string

(** One-line rendering of a µop for counterexample reports. *)
val uop_to_string : Uop.t -> string
