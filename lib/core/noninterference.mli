(** Side-channel experiments and the non-interference property.

    Each experiment runs an attacker agent on core 0 and a victim agent on
    core 1 of a two-core memory hierarchy, with disjoint DRAM regions
    (architectural isolation holds by construction — the question is
    exactly the paper's: does the {e timing} the attacker observes depend
    on the victim?).  The attacker's observation is the list of latencies
    of its own timed accesses.  A configuration provides strong timing
    independence for an experiment when the observation is bit-identical
    across victim behaviours.

    Experiments map to the paper's channels:
    - {!prime_probe}: LLC set contention (Section 5.2 — closed by set
      partitioning);
    - {!mshr_channel}: LLC MSHR occupancy and the shared pipeline/queue
      contention (Sections 5.2/5.4 — closed by MSHR partitioning, the
      round-robin arbiter, split UQs, and one-cycle DQ dequeues);
    - {!dram_bank_channel}: DRAM bank-locality reordering (Section 5.2 —
      closed by the constant-latency controller). *)

type llc_setup = {
  security : Llc.security;
  index : Index.t;
  mshrs : int;
  mshr_banks : int;
  strict_bank_stall : bool;
}

(** Insecure RiscyOO LLC: flat index, shared 16-entry MSHRs, Figure 2
    structures. *)
val baseline_setup : llc_setup

(** MI6 LLC: region-partitioned index, partitioned MSHRs, Figure 3
    structures. *)
val mi6_setup : llc_setup

(** [prime_probe setup ~secret] — attacker primes an LLC set with its own
    lines, the victim touches a line whose set depends on [secret], the
    attacker probes and records each probe latency. *)
val prime_probe : llc_setup -> secret:bool -> int list

(** [mshr_channel setup ~victim_floods] — the victim either floods the LLC
    with misses or stays idle while the attacker times a sequence of its
    own misses. *)
val mshr_channel : llc_setup -> victim_floods:bool -> int list

(** [dram_bank_channel ~reordering ~victim_same_bank] — run on the MI6 LLC
    with either the FR-FCFS or the constant-latency DRAM controller; the
    victim hammers either the attacker's DRAM bank or a different one. *)
val dram_bank_channel : reordering:bool -> victim_same_bank:bool -> int list

(** Attacker behaviours for the timeline experiments: idle, a saturating
    miss flood, alternating 256-cycle bursts, and a small-working-set
    sweep that mostly hits in the LLC. *)
type attacker = A_idle | A_flood | A_burst | A_sweep

val all_attackers : attacker list
val attacker_name : attacker -> string
val attacker_of_name : string -> attacker option

(** [victim_llc_events setup ~attacker] — the victim runs a fixed access
    script while the attacker runs [attacker]; returns the victim's
    cycle-stamped event stream (its LLC arbiter grants, MSHR alloc/free,
    UQ sends, DQ retries, and DRAM commands for its own lines), plus the
    trace ring's dropped-event count (nonzero drops invalidate a
    stream-equality audit).  Feed two streams to {!Mi6_obs.Audit.diff}:
    non-interference demands they be bit-identical across attackers. *)
val victim_llc_events :
  llc_setup -> attacker:attacker -> (int * Mi6_obs.Trace.event) list * int

(** [victim_timeline setup ~attacker_floods] — the [A_flood]/[A_idle]
    special case of {!victim_llc_events}, rendered to stable strings
    (LLC events only). *)
val victim_timeline : llc_setup -> attacker_floods:bool -> string list

(** [leaks observations] — true when any two observations differ (the
    attacker can distinguish victim behaviours). *)
val leaks : int list list -> bool

(** One capture of the leakage-audit grid: a named LLC setup paired with
    an attacker behaviour. *)
type audit_cell = {
  cell_setup_name : string;
  cell_setup : llc_setup;
  cell_attacker : attacker;
}

(** The audit's canonical setups, in report order:
    [("baseline", baseline_setup); ("mi6", mi6_setup)]. *)
val audit_setups : (string * llc_setup) list

(** [audit_grid ~attackers ()] — the canonical cell enumeration the audit
    fans out over: every setup (default {!audit_setups}, given order)
    crossed with the idle reference followed by the requested behaviours
    ({!all_attackers} order, duplicates and explicit idle dropped).  Each
    cell's capture is self-contained, so the grid may be run on any
    number of domains; results indexed by cell reproduce the serial
    report exactly. *)
val audit_grid :
  ?setups:(string * llc_setup) list -> attackers:attacker list -> unit ->
  audit_cell list

(** ["setup/attacker"], e.g. ["mi6/flood"]. *)
val audit_cell_name : audit_cell -> string

(** [run_audit_cell c] — {!victim_llc_events} for the cell, plus the
    trace ring's dominant dropped event kind (as
    [Some (kind, count)]) so a nonzero-drop warning can say {e what}
    was lost, not just how much. *)
val run_audit_cell :
  audit_cell ->
  (int * Mi6_obs.Trace.event) list * int * (string * int) option
