(** DRAM-region ownership ledger.

    The OS proposes region allocations; the security monitor verifies them
    against this ledger so that protection domains never overlap
    (Section 6.1: "asserts that resources allocated to enclaves by the OS
    are non-overlapping").  Region 0 is reserved for the monitor itself at
    creation ("statically reserves a sufficient amount of physical
    memory").

    {b Read sharing} (Citadel's relaxation of MI6's strict no-sharing
    rule): an owner can grant other domains {e read} access to a region
    it owns via {!share}.  Grants never move ownership, are revoked by
    any {!transfer} of the region, and widen only {!access_mask} — the
    write-side {!perm_mask} stays ownership-exact.  The {!Lint} ledger
    checks accept access-mask overlap precisely on shared regions. *)

type owner = Monitor | Os | Enclave of int | Free

type t

(** [create geometry] — all regions initially [Os] except region 0
    ([Monitor]). *)
val create : Addr.regions -> t

val geometry : t -> Addr.regions
val owner : t -> int -> owner

(** [owned_by t who] lists the region ids owned by [who]. *)
val owned_by : t -> owner -> int list

(** [transfer t ~regions ~from_ ~to_] atomically moves ownership; fails
    (returning [false], changing nothing) if any region is not owned by
    [from_].  A successful transfer revokes every read grant on the
    moved regions. *)
val transfer : t -> regions:int list -> from_:owner -> to_:owner -> bool

(** [share t ~region ~owner ~reader] grants [reader] read access to
    [region].  Fails (returning [false]) unless [owner] actually owns
    the region; [Free] can neither grant nor receive, and the owner
    needs no grant to itself.  Idempotent. *)
val share : t -> region:int -> owner:owner -> reader:owner -> bool

(** [readers t r] — the standing read grants on region [r], in grant
    order. *)
val readers : t -> int -> owner list

(** [shared_regions t] — ascending ids of regions with at least one
    read grant. *)
val shared_regions : t -> int list

(** [perm_mask t who] is the 64-bit [mregions] CSR value granting exactly
    [who]'s regions. *)
val perm_mask : t -> owner -> int64

(** [access_mask t who] — [perm_mask] plus the regions [who] can read
    through standing grants. *)
val access_mask : t -> owner -> int64

(** [disjoint_check t] — no region has two owners by construction; this
    validates internal consistency (used by property tests). *)
val region_count : t -> int
