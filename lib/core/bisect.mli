(** Cross-run bisection and causal slice reports.

    Runs two machines in lockstep while a {!Mi6_obs.Replay} flight
    recorder checkpoints each side periodically, locates the first cycle
    at which their structure state disagrees, and renders a causal
    slice: the diverging component, a field-level diff of its
    [dump_state], the in-flight µops on both sides, and the last few
    trace events each side emitted.

    Two comparison oracles, chosen automatically from the machines'
    cycle-0 signatures:

    - [signature] — identical configurations (the secret-pair mode):
      whole-machine [structural_signature] equality, compared at
      checkpoint boundaries, with a restore-and-re-execute binary search
      inside the offending interval.  Assumes diverged states do not
      reconverge to signature equality exactly at a boundary.
    - [activity] — structurally different variants (e.g. BASE vs
      F+P+M+A) hash differently from reset, so the oracle is each
      cycle's per-component activity pattern (which sections' signatures
      changed, plus committed count); the per-cycle scan yields the
      first divergent cycle directly. *)

type checkpoint_stats = {
  cs_interval : int;
  cs_taken : int;  (** checkpoints taken over both recorders *)
  cs_retained : int;  (** checkpoints live in the rings at the end *)
  cs_mem_high_water_words : int;
      (** peak [Obj.reachable_words] of both rings — the recorder's
          memory cost, exported to the perf DB *)
  cs_probes : int;  (** restore + re-execute probes during the search *)
}

type component_diff = {
  cd_component : string;
  cd_dump_a : string;
  cd_dump_b : string;
  cd_first_diff : string;  (** excerpt around the first differing byte *)
}

type slice = {
  s_cycle : int;  (** first divergent cycle *)
  s_oracle : string;  (** ["signature"] or ["activity"] *)
  s_component : string;  (** first diverging section label *)
  s_components : string list;
  s_audit_channels : string list;
      (** audit channels hosted by [s_component] — cross-checkable
          against {!Mi6_obs.Audit} verdicts *)
  s_checkpoint_cycle : int;  (** checkpoint the slice replayed from *)
  s_diffs : component_diff list;
  s_uops_a : string list;  (** in-flight µops, side A *)
  s_uops_b : string list;
  s_trace_a : string list;  (** last [window] trace events, side A *)
  s_trace_b : string list;
}

type outcome = Clean of { cycles_run : int } | Diverged of slice

type report = {
  r_label_a : string;
  r_label_b : string;
  r_outcome : outcome;
  r_stats : checkpoint_stats;
}

val diverged : report -> bool

(** The audit channels resident in a signature-section component
    (["llc"], ["l1d.0"], ["core0"], …) — lets CI assert that the
    bisector's diverging component agrees with the auditor's leaking
    channel. *)
val audit_channels_of_component : string -> Audit.channel list

(** [run ~label_a ~label_b a b] — both machines must be fresh (cycle 0)
    and share a component shape (same core count).  [interval] is the
    checkpoint period, [ring] the per-side ring capacity, [window] the
    trace-tail length in the slice, [max_cycles] the scan budget (a
    budget exhaustion reports [Clean] with the cycles run).  Pass the
    [Trace.t] each machine was created with via [trace_a] / [trace_b]
    to include trace tails in the slice. *)
val run :
  ?interval:int ->
  ?ring:int ->
  ?window:int ->
  ?max_cycles:int ->
  ?trace_a:Trace.t ->
  ?trace_b:Trace.t ->
  label_a:string ->
  label_b:string ->
  Tmachine.t ->
  Tmachine.t ->
  report

(** [slice_at ~recorder m ~cycle] — single-run slice: restore [m] to the
    recorder's nearest checkpoint at or before [cycle], re-execute to
    [cycle], and render the in-flight µops, trace tail, and component
    state as text.  Used by the differential tester to annotate qcheck
    counterexamples.  Raises [Invalid_argument] if [cycle] precedes the
    recorder's retained window. *)
val slice_at :
  ?window:int ->
  ?trace:Trace.t ->
  recorder:Tmachine.checkpoint Mi6_obs.Replay.t ->
  Tmachine.t ->
  cycle:int ->
  string

val schema : string

(** Schema ["mi6.bisect/1"]. *)
val report_to_json : report -> Json.t

val pp_report : Format.formatter -> report -> unit
