type step = {
  s_pc : int;
  s_instr : Instr.t;
  s_next_pc : int;
  s_accesses : Fsim.access list;
}

type arch_state = {
  regs : int64 array;
  csrs : (string * int64) list;
  data_image : string;
  stores : (int * int) list;
}

type func_run = { steps : step list; arch : arch_state }

exception Stuck of string

let stuck fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

(* Curated CSR comparison set: trap bookkeeping and scratch state, but not
   the free-running counters (cycle/instret depend on step counts the two
   models have no reason to share). *)
let csr_set =
  [
    ("mstatus", Csr.mstatus);
    ("mscratch", Csr.mscratch);
    ("mepc", Csr.mepc);
    ("mcause", Csr.mcause);
  ]

let run_func ?(init_regs = []) ~program ~data_base ~data_bytes ~max_steps () =
  let geometry = Addr.default_regions in
  let mem = Phys_mem.create ~size_bytes:geometry.Addr.dram_bytes in
  let fsim = Fsim.create ~regions:geometry ~mem ~hartid:0 () in
  Fsim.load_program fsim program;
  let state = Fsim.state fsim in
  List.iter (fun (r, v) -> Cpu_state.set_reg state r v) init_regs;
  Cpu_state.set_pc state (Int64.of_int program.Asm.base);
  let steps = ref [] in
  let halted = ref false in
  let budget = ref max_steps in
  while (not !halted) && !budget > 0 do
    decr budget;
    let r = Fsim.step fsim in
    (match r.Fsim.trap with
    | Some _ -> stuck "trap at pc 0x%Lx" r.Fsim.pc
    | None -> ());
    match r.Fsim.executed with
    | None -> stuck "fetch fault at pc 0x%Lx" r.Fsim.pc
    | Some Instr.Wfi -> halted := true
    | Some i ->
      steps :=
        {
          s_pc = Int64.to_int r.Fsim.pc;
          s_instr = i;
          s_next_pc = Int64.to_int (Cpu_state.pc state);
          s_accesses = r.Fsim.accesses;
        }
        :: !steps
  done;
  if not !halted then stuck "no wfi within %d steps" max_steps;
  let steps = List.rev !steps in
  let stores =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (a : Fsim.access) ->
            match a.Fsim.kind with
            | Fsim.Store -> Some (a.Fsim.paddr, a.Fsim.width)
            | _ -> None)
          s.s_accesses)
      steps
  in
  let arch =
    {
      regs = Array.init 32 (fun i -> Cpu_state.get_reg state i);
      csrs = List.map (fun (n, c) -> (n, Cpu_state.csr_raw state c)) csr_set;
      data_image = Phys_mem.read_string mem data_base data_bytes;
      stores;
    }
  in
  { steps; arch }

let arch_diff a b =
  let reg_diff =
    let rec go i =
      if i >= 32 then None
      else if a.regs.(i) <> b.regs.(i) then
        Some (Printf.sprintf "x%d: 0x%Lx vs 0x%Lx" i a.regs.(i) b.regs.(i))
      else go (i + 1)
    in
    go 0
  in
  match reg_diff with
  | Some _ as d -> d
  | None -> (
    match
      List.find_opt
        (fun ((n, v), (n', v')) -> n <> n' || v <> v')
        (List.combine a.csrs b.csrs)
    with
    | Some ((n, v), (_, v')) ->
      Some (Printf.sprintf "csr %s: 0x%Lx vs 0x%Lx" n v v')
    | None ->
      if a.data_image <> b.data_image then Some "data window images differ"
      else if a.stores <> b.stores then Some "store logs differ"
      else None)

let arch_equal a b = arch_diff a b = None

(* ------------------------------------------------------------------ *)
(* Committed path -> µop stream                                        *)
(* ------------------------------------------------------------------ *)

(* Timing-model latencies for the ALU-class µop buckets; only relative
   magnitude matters here. *)
let muldiv_latency = function
  | Instr.Mul | Instr.Mulh | Instr.Mulhsu | Instr.Mulhu -> 4
  | Instr.Div | Instr.Divu | Instr.Rem | Instr.Remu -> 16

let muldiv_w_latency = function
  | Instr.Mulw -> 4
  | Instr.Divw | Instr.Divuw | Instr.Remw | Instr.Remuw -> 16

let first_access steps_accesses kind =
  List.find_opt (fun (a : Fsim.access) -> a.Fsim.kind = kind) steps_accesses

let to_uops run ~func_code_base ~func_data_base =
  (* Core 0's private regions of the timing machine (tmachine.ml lays a
     core's block out as code, data, ..., kernel). *)
  let geometry = Addr.default_regions in
  let code_base = Addr.region_base geometry 1 in
  let data_base = Addr.region_base geometry 2 in
  let map_pc pc = code_base + (pc - func_code_base) in
  let map_data a = data_base + (a - func_data_base) in
  List.map
    (fun s ->
      let pc = map_pc s.s_pc in
      let dst = Option.value (Instr.dest s.s_instr) ~default:0 in
      let srcs = Instr.sources s.s_instr in
      match s.s_instr with
      | Instr.Branch { offset; _ } ->
        let taken = s.s_next_pc <> s.s_pc + 4 in
        Uop.branch ~pc ~taken ~target:(map_pc (s.s_pc + offset)) ~srcs ()
      | Instr.Jal { rd; _ } ->
        let kind = if rd = 1 then `Call else `Plain in
        Uop.jump ~pc ~target:(map_pc s.s_next_pc) ~kind ()
      | Instr.Jalr { rd; rs1; _ } ->
        let kind = if rd = 0 && rs1 = 1 then `Return else `Plain in
        Uop.jump ~pc ~target:(map_pc s.s_next_pc) ~kind ()
      | Instr.Load _ -> (
        match first_access s.s_accesses Fsim.Load with
        | Some a -> Uop.load ~pc ~addr:(map_data a.Fsim.paddr) ~dst ~srcs ()
        | None -> stuck "load at 0x%x emitted no access" s.s_pc)
      | Instr.Store _ -> (
        match first_access s.s_accesses Fsim.Store with
        | Some a -> Uop.store ~pc ~addr:(map_data a.Fsim.paddr) ~srcs ()
        | None -> stuck "store at 0x%x emitted no access" s.s_pc)
      | Instr.Muldiv { op; _ } ->
        Uop.alu ~latency:(muldiv_latency op) ~pc ~dst ~srcs ()
      | Instr.Muldiv_w { op; _ } ->
        Uop.alu ~latency:(muldiv_w_latency op) ~pc ~dst ~srcs ()
      | _ -> Uop.alu ~pc ~dst ~srcs ())
    run.steps

(* ------------------------------------------------------------------ *)
(* Retiring the stream through a variant machine                       *)
(* ------------------------------------------------------------------ *)

type ooo_run = { committed : Uop.t list; cycles : int }

let run_ooo ?trace ~variant uops =
  let stats = Stats.create () in
  let timing = Config.timing ~cores:1 variant in
  let remaining = ref uops in
  let stream () =
    match !remaining with
    | [] -> None
    | u :: tl ->
      remaining := tl;
      Some u
  in
  let m = Tmachine.create ?trace timing ~streams:[| stream |] ~stats in
  let committed = ref [] in
  Core.set_on_commit (Tmachine.core m 0) (fun u -> committed := u :: !committed);
  let cycles = Tmachine.run m ~max_cycles:4_000_000 in
  { committed = List.rev !committed; cycles }

let uop_to_string = Uop.to_string

let first_mismatch ~expected ~actual =
  let rec go i es actuals =
    match (es, actuals) with
    | [], [] -> None
    | _ :: _, [] | [], _ :: _ -> Some i
    | e :: es', a :: actuals' ->
      if e = a then go (i + 1) es' actuals' else Some i
  in
  go 0 expected actual

(* Re-run the stream with the flight recorder attached, map the failing
   retirement index to its retirement cycle, and render the causal slice
   there — what qcheck prints alongside a shrunk counterexample. *)
let explain_divergence ?(interval = 256) ?(ring = 64) ?(window = 16)
    ~variant ~index uops =
  let stats = Stats.create () in
  let timing = Config.timing ~cores:1 variant in
  let remaining = ref uops in
  let stream () =
    match !remaining with
    | [] -> None
    | u :: tl ->
      remaining := tl;
      Some u
  in
  let trace = Trace.create ~capacity:4096 () in
  let m = Tmachine.create ~trace timing ~streams:[| stream |] ~stats in
  let retire_cycles = ref [] in
  Core.set_on_commit (Tmachine.core m 0) (fun _ ->
      retire_cycles := Tmachine.now m :: !retire_cycles);
  let recorder =
    Replay.create ~interval ~capacity:ring
      ~save:(fun () -> Tmachine.save m)
      ~cycle_of:Tmachine.checkpoint_cycle
  in
  Replay.observe recorder ~cycle:0;
  let budget = ref 4_000_000 in
  while (not (Tmachine.finished m)) && !budget > 0 do
    Tmachine.tick m;
    decr budget;
    Replay.observe recorder ~cycle:(Tmachine.now m)
  done;
  let cycles = Array.of_list (List.rev !retire_cycles) in
  let cycle =
    if Array.length cycles = 0 then Tmachine.now m
    else cycles.(min index (Array.length cycles - 1))
  in
  Bisect.slice_at ~window ~trace ~recorder m ~cycle

let compare_commits ~expected ~actual =
  let rec go i es actuals =
    match (es, actuals) with
    | [], [] -> Ok ()
    | e :: _, [] ->
      Error
        (Printf.sprintf "retirement stream short: expected #%d %s, got end"
           i (uop_to_string e))
    | [], a :: _ ->
      Error
        (Printf.sprintf "retirement stream long: extra #%d %s" i
           (uop_to_string a))
    | e :: es', a :: actuals' ->
      if e = a then go (i + 1) es' actuals'
      else
        Error
          (Printf.sprintf "retirement #%d: expected %s, got %s" i
             (uop_to_string e) (uop_to_string a))
  in
  go 0 expected actual
