(* Adversarial interrupt schedules: see schedule.mli for the model.

   The stream the timing machine consumes is built lazily by a closure
   over the schedule: enclave body µops flow until a preemption point
   fires, then an [Enter_kernel] marker, the attacker's window, and an
   [Exit_kernel] marker are spliced in and the enclave resumes.  Cycle-
   indexed points read the machine clock through a reference the run
   loop refreshes before every tick, so "the first fetch at or after
   cycle c" needs no core support beyond the existing trap markers. *)

type attacker = Probe | Train | Sweep | Stores

let attackers = [ Probe; Train; Sweep; Stores ]

let attacker_name = function
  | Probe -> "probe"
  | Train -> "train"
  | Sweep -> "sweep"
  | Stores -> "stores"

let attacker_of_name s =
  match String.lowercase_ascii s with
  | "probe" -> Some Probe
  | "train" -> Some Train
  | "sweep" -> Some Sweep
  | "stores" -> Some Stores
  | _ -> None

type when_ = At_instr of int | At_cycle of int

type point = { at : when_; attacker : attacker }

type t = {
  variant : Config.variant;
  body_seed : int;
  points : point list;
  final : attacker;
}

(* ------------------------------------------------------------------ *)
(* Address layout                                                      *)
(* ------------------------------------------------------------------ *)

(* Same protection-domain layout as the purge-indistinguishability
   property: the enclave owns DRAM regions 1 (code) and 2 (data) — the
   ranges Difftest.to_uops remaps generated programs into — while the
   attacker's code sits far above the enclave pcs and its data in
   region 3, so LLC partitioning confines each side's residue. *)
let geometry = Addr.default_regions
let enclave_code = Addr.region_base geometry 1
let attacker_code = enclave_code + 0x100000
let attacker_data = Addr.region_base geometry 3
let trap_base = enclave_code + 0x200000

let marker pc kind = { Uop.pc; kind; dst = None; srcs = [] }

(* ------------------------------------------------------------------ *)
(* Attacker programs                                                   *)
(* ------------------------------------------------------------------ *)

(* Each program is the body of one preemption window.  They touch only
   attacker-owned state, but through the structures the paper names as
   channels: page-stride loads (TLB + cache fills), branch patterns
   (predictor), set-stride loads (L1 sets), store/load pairs (store
   buffer + forwarding). *)
let attacker_uops = function
  | Probe ->
    (* Loads on fresh pages with a dependent branch/alu/store tail —
       the same shape as the purge property's probe. *)
    List.concat
      (List.init 8 (fun i ->
           let pc = attacker_code + (16 * i) in
           [
             Uop.load ~pc ~addr:(attacker_data + (i * 4096)) ~dst:2 ~srcs:[] ();
             Uop.branch ~pc:(pc + 4) ~taken:false ~target:(pc + 12)
               ~srcs:[ 2 ] ();
             Uop.alu ~pc:(pc + 8) ~dst:3 ~srcs:[ 2 ] ();
             Uop.store ~pc:(pc + 12) ~addr:(attacker_data + (i * 4096) + 64)
               ~srcs:[ 3 ] ();
           ]))
  | Train ->
    (* Alternating branch outcomes plus a short load tail: sensitive to
       whatever global history / BTB state survives the transition. *)
    let base = attacker_code + 0x1000 in
    List.concat
      (List.init 16 (fun i ->
           let pc = base + (8 * i) in
           [
             Uop.branch ~pc ~taken:(i land 1 = 0) ~target:(pc + 4) ~srcs:[ 4 ]
               ();
             Uop.alu ~pc:(pc + 4) ~dst:4 ~srcs:[ 4 ] ();
           ]))
    @ List.init 4 (fun i ->
          Uop.load
            ~pc:(base + 128 + (4 * i))
            ~addr:(attacker_data + 0x10000 + (i * 4096))
            ~dst:2 ~srcs:[] ())
  | Sweep ->
    (* One-page set sweep at line stride. *)
    let base = attacker_code + 0x2000 in
    List.init 32 (fun i ->
        Uop.load ~pc:(base + (4 * i))
          ~addr:(attacker_data + 0x20000 + (64 * i))
          ~dst:2 ~srcs:[] ())
  | Stores ->
    (* Store buffer / forwarding path: store a line, load it back,
       consume the value. *)
    let base = attacker_code + 0x3000 in
    List.concat
      (List.init 8 (fun i ->
           let pc = base + (12 * i) in
           let addr = attacker_data + 0x30000 + (i * 64) in
           [
             Uop.store ~pc ~addr ~srcs:[ 3 ] ();
             Uop.load ~pc:(pc + 4) ~addr ~dst:3 ~srcs:[] ();
             Uop.alu ~pc:(pc + 8) ~dst:3 ~srcs:[ 3 ] ();
           ]))

(* ------------------------------------------------------------------ *)
(* Replayable string form                                              *)
(* ------------------------------------------------------------------ *)

let point_to_string p =
  let tag, n = match p.at with At_instr i -> ("i", i) | At_cycle c -> ("c", c) in
  Printf.sprintf "%s%d=%s" tag n (attacker_name p.attacker)

let to_string t =
  Printf.sprintf "ni1:%s:b%d:%s:%s"
    (Config.variant_name t.variant)
    t.body_seed
    (match t.points with
    | [] -> "-"
    | ps -> String.concat "," (List.map point_to_string ps))
    (attacker_name t.final)

let parse_point s =
  let fail () = Error (Printf.sprintf "bad preemption point %S" s) in
  match String.index_opt s '=' with
  | None -> fail ()
  | Some eq -> (
    let where = String.sub s 0 eq in
    let att = String.sub s (eq + 1) (String.length s - eq - 1) in
    match attacker_of_name att with
    | None -> Error (Printf.sprintf "unknown attacker %S" att)
    | Some attacker ->
      if String.length where < 2 then fail ()
      else
        let n = String.sub where 1 (String.length where - 1) in
        (match (where.[0], int_of_string_opt n) with
        | _, Some n when n < 0 -> fail ()
        | 'i', Some n -> Ok { at = At_instr n; attacker }
        | 'c', Some n -> Ok { at = At_cycle n; attacker }
        | _ -> fail ()))

let of_string s =
  let s = String.trim s in
  match String.split_on_char ':' s with
  | [ magic; variant; seed; points; final ] -> (
    if String.lowercase_ascii magic <> "ni1" then
      Error (Printf.sprintf "not a ni1 schedule: %S" s)
    else
      match
        ( Config.variant_of_name variant,
          (if String.length seed > 1 && seed.[0] = 'b' then
             int_of_string_opt (String.sub seed 1 (String.length seed - 1))
           else None),
          attacker_of_name final )
      with
      | None, _, _ -> Error (Printf.sprintf "unknown variant %S" variant)
      | _, None, _ -> Error (Printf.sprintf "bad body seed %S (want bN)" seed)
      | _, (Some n), _ when n < 0 ->
        Error (Printf.sprintf "bad body seed %S (want bN)" seed)
      | _, _, None -> Error (Printf.sprintf "unknown attacker %S" final)
      | Some variant, Some body_seed, Some final ->
        let rec parse_points acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
            match parse_point p with
            | Ok p -> parse_points (p :: acc) rest
            | Error e -> Error e)
        in
        let points =
          if points = "-" || points = "" then Ok []
          else parse_points [] (String.split_on_char ',' points)
        in
        Result.map
          (fun points -> { variant; body_seed; points; final })
          points)
  | _ ->
    Error
      (Printf.sprintf
         "bad schedule %S (want ni1:<variant>:b<seed>:<points>:<final>)" s)

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

type window = {
  w_attacker : attacker;
  w_cycles : int;
  w_commits : int;
  w_mispredicts : int;
  w_l1d_misses : int;
  w_l1i_misses : int;
  w_llc_misses : int;
}

type observation = window list

let window_to_json w =
  Json.Obj
    [
      ("attacker", Json.String (attacker_name w.w_attacker));
      ("cycles", Json.Int w.w_cycles);
      ("commits", Json.Int w.w_commits);
      ("mispredicts", Json.Int w.w_mispredicts);
      ("l1d_misses", Json.Int w.w_l1d_misses);
      ("l1i_misses", Json.Int w.w_l1i_misses);
      ("llc_misses", Json.Int w.w_llc_misses);
    ]

let observation_to_json obs = Json.List (List.map window_to_json obs)

let pp_window ppf w =
  Format.fprintf ppf
    "%-6s cycles=%-5d commits=%-3d mispredicts=%-3d l1d=%-3d l1i=%-3d llc=%d"
    (attacker_name w.w_attacker)
    w.w_cycles w.w_commits w.w_mispredicts w.w_l1d_misses w.w_l1i_misses
    w.w_llc_misses

let pp_observation ppf obs =
  List.iteri
    (fun i w -> Format.fprintf ppf "  window %d: %a@." i pp_window w)
    obs

let reference_body n =
  List.init n (fun i ->
      Uop.alu ~pc:(enclave_code + (4 * i)) ~dst:5 ~srcs:[] ())

(* ------------------------------------------------------------------ *)
(* Running a schedule                                                  *)
(* ------------------------------------------------------------------ *)

let default_max_cycles = 4_000_000

let run ?(max_cycles = default_max_cycles) ?trace ~timing ~body t =
  let stats = Stats.create () in
  let body_arr = Array.of_list body in
  let nbody = Array.length body_arr in
  let clock = ref 0 in
  let pending = Queue.create () in
  let att_order = Queue.create () in
  let body_pos = ref 0 in
  let points = ref t.points in
  let window_no = ref 0 in
  let final_done = ref false in
  let push_window att =
    Queue.add att att_order;
    let trap_pc = trap_base + (16 * !window_no) in
    incr window_no;
    Queue.add (marker trap_pc Uop.Enter_kernel) pending;
    List.iter (fun u -> Queue.add u pending) (attacker_uops att);
    Queue.add (marker (trap_pc + 4) Uop.Exit_kernel) pending
  in
  let rec next () =
    if not (Queue.is_empty pending) then Some (Queue.pop pending)
    else
      match !points with
      | { at = At_instr k; attacker } :: rest when !body_pos >= min k nbody ->
        points := rest;
        push_window attacker;
        next ()
      | { at = At_cycle c; attacker } :: rest when !clock >= c ->
        points := rest;
        push_window attacker;
        next ()
      | _ ->
        if !body_pos < nbody then begin
          let u = body_arr.(!body_pos) in
          incr body_pos;
          Some u
        end
        else begin
          match !points with
          | { attacker; _ } :: rest ->
            (* The enclave halted before this point's condition was met:
               the preemption collapses to the enclave's exit. *)
            points := rest;
            push_window attacker;
            next ()
          | [] ->
            if !final_done then None
            else begin
              final_done := true;
              push_window t.final;
              next ()
            end
        end
  in
  let m = Tmachine.create ?trace timing ~streams:[| next |] ~stats in
  let core = Tmachine.core m 0 in
  let get n = Stats.get stats n in
  let snap () =
    ( get "core.mispredicts",
      get "l1d.0.misses",
      get "l1i.0.misses",
      get "llc.misses" )
  in
  (* Open-window accumulator.  The window is anchored at the {e first
     attacker commit}, not the [Enter_kernel] commit: the marker commits
     at rename, before the enclave's in-flight tail drains, so anything
     measured from it would see the drain — body-dependent timing the
     purge cannot (and need not) hide.  By the first attacker commit the
     drain and both purge phases are behind us and the core state is
     canonical. *)
  let windows = ref [] in
  let bounds = ref [] in
  let open_w = ref None in
  Core.set_on_commit core (fun u ->
      let now = Tmachine.now m in
      match u.Uop.kind with
      | Uop.Enter_kernel ->
        let att = Queue.pop att_order in
        open_w := Some (att, ref None, ref 0)
      | Uop.Exit_kernel -> (
        match !open_w with
        | None -> ()
        | Some (att, start, commits) ->
          let start_cycle, (m0, d0, i0, l0) =
            match !start with
            | Some s -> s
            | None -> (now, snap ())
          in
          let m1, d1, i1, l1 = snap () in
          windows :=
            {
              w_attacker = att;
              w_cycles = now - start_cycle;
              w_commits = !commits;
              w_mispredicts = m1 - m0;
              w_l1d_misses = d1 - d0;
              w_l1i_misses = i1 - i0;
              w_llc_misses = l1 - l0;
            }
            :: !windows;
          bounds := (start_cycle, now) :: !bounds;
          open_w := None)
      | _ -> (
        match !open_w with
        | Some (_, start, commits) when u.Uop.pc >= attacker_code ->
          if !start = None then start := Some (now, snap ());
          incr commits
        | _ -> ()));
  let budget = ref max_cycles in
  while (not (Tmachine.finished m)) && !budget > 0 do
    clock := Tmachine.now m;
    Tmachine.tick m;
    decr budget
  done;
  if not (Tmachine.finished m) then
    failwith
      (Printf.sprintf "schedule %S: timeout after %d cycles" (to_string t)
         max_cycles);
  (List.rev !windows, List.rev !bounds)

type verdict = {
  v_schedule : t;
  v_falsified : bool;
  v_obs : observation;
  v_ref_obs : observation;
}

let check ?max_cycles ~body t =
  let timing = Config.timing ~cores:1 t.variant in
  let obs, _ = run ?max_cycles ~timing ~body t in
  let ref_obs, _ =
    run ?max_cycles ~timing ~body:(reference_body (List.length body)) t
  in
  { v_schedule = t; v_falsified = obs <> ref_obs; v_obs = obs;
    v_ref_obs = ref_obs }

(* Keep only events inside attacker windows and rebase each window to
   its [Enter] commit: the two runs' bodies take different absolute
   times, and only window-relative timing is attacker-visible. *)
let windowed_events tr bounds =
  let events = Trace.events tr in
  List.concat_map
    (fun (cycle, ev) ->
      let rec find i = function
        | [] -> None
        | (enter, exit_) :: rest ->
          if cycle >= enter && cycle <= exit_ then
            Some ((i * 1_000_000) + cycle - enter)
          else find (i + 1) rest
      in
      match find 0 bounds with
      | Some rebased -> [ (rebased, ev) ]
      | None -> [])
    events

let localize ?max_cycles ~body t =
  let timing = Config.timing ~cores:1 t.variant in
  let side body =
    let tr = Trace.create ~capacity:(1 lsl 17) () in
    let _, bounds = run ?max_cycles ~trace:tr ~timing ~body t in
    windowed_events tr bounds
  in
  Audit.diff ~label_a:"body" ~label_b:"reference" (side body)
    (side (reference_body (List.length body)))

(* ------------------------------------------------------------------ *)
(* Config-derived settle window                                        *)
(* ------------------------------------------------------------------ *)

let settle_uops (timing : Config.timing) =
  let c = timing.Config.core in
  let cycles =
    (2 * c.Core_config.purge_floor)
    + c.Core_config.rob_entries + c.Core_config.redirect_penalty
    + timing.Config.dram_latency
  in
  c.Core_config.commit_width * cycles
