(* Cross-run bisection: two machines advance in lockstep while a flight
   recorder checkpoints each every [interval] cycles; when their
   structure state first disagrees, the offending interval is re-entered
   from the last shared checkpoint and searched down to the exact cycle,
   and a causal slice (diverging component, field-level dump diff,
   in-flight µops, recent trace events) is produced.

   Two comparison oracles, picked automatically:

   - [signature]: the machines have identical structure shapes (same
     variant — the secret-pair mode), so whole-machine
     [structural_signature] equality is the oracle.  The lockstep scan
     compares only at checkpoint boundaries and a binary search (restore
     + re-execute, O(interval · log interval)) pins the first divergent
     cycle, under the documented assumption that diverged machine states
     do not reconverge to signature equality by a boundary.

   - [activity]: structurally different variants (BASE vs F+P+M+A) hash
     differently from reset, so raw signatures are vacuous.  The oracle
     instead compares each cycle's per-component activity pattern —
     which components' signatures changed that cycle, plus the committed
     instruction count — which is identical while the two variants
     execute the same program with the same timing.  The scan compares
     every cycle, so the first divergent cycle falls out directly. *)

type checkpoint_stats = {
  cs_interval : int;
  cs_taken : int;
  cs_retained : int;
  cs_mem_high_water_words : int;
  cs_probes : int; (* restore + re-execute probes during the search *)
}

type component_diff = {
  cd_component : string;
  cd_dump_a : string;
  cd_dump_b : string;
  cd_first_diff : string; (* excerpt around the first differing byte *)
}

type slice = {
  s_cycle : int; (* first divergent cycle *)
  s_oracle : string; (* "signature" or "activity" *)
  s_component : string; (* first diverging section label *)
  s_components : string list; (* all diverging section labels *)
  s_audit_channels : string list; (* audit channels the component hosts *)
  s_checkpoint_cycle : int; (* shared checkpoint the slice replayed from *)
  s_diffs : component_diff list;
  s_uops_a : string list;
  s_uops_b : string list;
  s_trace_a : string list;
  s_trace_b : string list;
}

type outcome = Clean of { cycles_run : int } | Diverged of slice

type report = {
  r_label_a : string;
  r_label_b : string;
  r_outcome : outcome;
  r_stats : checkpoint_stats;
}

let diverged r = match r.r_outcome with Diverged _ -> true | Clean _ -> false

(* The audit channels resident in a component, so a bisection verdict
   can be cross-checked against the leakage auditor's: the auditor names
   the event channel where victim-visible streams split, the bisector
   the component whose state split.  The LLC hosts the arbiter, MSHR
   file, UQ/DQ and fill traffic, and (its section folds the controller)
   the DRAM command stream. *)
let audit_channels_of_component name =
  let prefixed p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  if name = "llc" then Audit.[ Arbiter; Mshr; Uq_dq; Cache; Dram ]
  else if prefixed "l1" then [ Audit.Cache ]
  else if prefixed "core" then Audit.[ Purge; Walk ]
  else []

let first_diff_excerpt a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  let i = go 0 in
  if i = n && String.length a = String.length b then ""
  else
    let ctx s =
      let lo = max 0 (i - 16) in
      String.sub s lo (min (String.length s - lo) 48)
    in
    Printf.sprintf "byte %d: a=\xe2\x80\xa6%s\xe2\x80\xa6 b=\xe2\x80\xa6%s\xe2\x80\xa6" i
      (ctx a) (ctx b)

let trace_tail trace ~window =
  match trace with
  | None -> []
  | Some tr ->
    let evs = Trace.events tr in
    let skip = max 0 (List.length evs - window) in
    List.filteri (fun i _ -> i >= skip) evs
    |> List.map (fun (c, e) -> Printf.sprintf "%d %s" c (Trace.event_label e))

let in_flight m =
  let rec per_core i acc =
    match Tmachine.core m i with
    | exception Invalid_argument _ -> List.rev acc
    | c ->
      let us =
        List.map
          (fun (u, st) -> Printf.sprintf "core%d %-7s %s" i st (Uop.to_string u))
          (Core.in_flight_uops c)
      in
      per_core (i + 1) (List.rev_append us acc)
  in
  per_core 0 []

(* ------------------------------------------------------------------ *)
(* Lockstep driver                                                     *)
(* ------------------------------------------------------------------ *)

type lockstep = {
  a : Tmachine.t;
  b : Tmachine.t;
  rec_a : Tmachine.checkpoint Replay.t;
  rec_b : Tmachine.checkpoint Replay.t;
  interval : int;
  mutable probes : int;
}

let tick2 ls =
  Tmachine.tick ls.a;
  Tmachine.tick ls.b

let observe2 ls ~cycle =
  Replay.observe ls.rec_a ~cycle;
  Replay.observe ls.rec_b ~cycle

let finished2 ls = Tmachine.finished ls.a && Tmachine.finished ls.b
let sig_eq ls = Tmachine.structural_signature ls.a = Tmachine.structural_signature ls.b

(* Restore both sides to the recorded checkpoints nearest [cycle] and
   re-execute to exactly [cycle] — the O(interval) reachability the ring
   guarantees. *)
let goto ls ~cycle =
  (match
     (Replay.nearest ls.rec_a ~cycle, Replay.nearest ls.rec_b ~cycle)
   with
  | Some ca, Some cb ->
    Tmachine.restore ls.a ca;
    Tmachine.restore ls.b cb
  | _ -> invalid_arg "Bisect: cycle precedes the recorder window");
  while Tmachine.now ls.a < cycle do
    tick2 ls
  done;
  ls.probes <- ls.probes + 1

(* Binary search in (lo, hi]: equal at [lo], diverged at [hi].  Probes
   restore from the nearest retained checkpoint; each equal probe
   re-records a checkpoint at its cycle (via the recorders' save
   thunks), so later probes re-execute ever-shorter spans. *)
let rec search ls ~base_a ~base_b ~lo ~hi =
  if hi - lo <= 1 then (hi, base_a, base_b)
  else begin
    let mid = (lo + hi) / 2 in
    Tmachine.restore ls.a base_a;
    Tmachine.restore ls.b base_b;
    while Tmachine.now ls.a < mid do
      tick2 ls
    done;
    ls.probes <- ls.probes + 1;
    if sig_eq ls then
      search ls ~base_a:(Tmachine.save ls.a) ~base_b:(Tmachine.save ls.b)
        ~lo:mid ~hi
    else search ls ~base_a ~base_b ~lo ~hi:mid
  end

(* Per-component activity of the cycle just ticked: which sections'
   signatures changed, plus the committed count. *)
let activity prev secs committed =
  (List.map2 (fun (n, s) (n', s') ->
       assert (String.equal n n');
       (n, s <> s'))
     prev secs,
   committed)

let build_slice ls ~oracle ~cycle ~checkpoint_cycle ~components ~window
    ~trace_a ~trace_b =
  let dumps_a = Tmachine.dump_sections ls.a
  and dumps_b = Tmachine.dump_sections ls.b in
  let diffs =
    List.filter_map
      (fun name ->
        match (List.assoc_opt name dumps_a, List.assoc_opt name dumps_b) with
        | Some da, Some db ->
          Some
            {
              cd_component = name;
              cd_dump_a = da;
              cd_dump_b = db;
              cd_first_diff = first_diff_excerpt da db;
            }
        | _ -> None)
      components
  in
  let first = match components with c :: _ -> c | [] -> "unknown" in
  {
    s_cycle = cycle;
    s_oracle = oracle;
    s_component = first;
    s_components = components;
    s_audit_channels =
      List.map Audit.channel_name (audit_channels_of_component first);
    s_checkpoint_cycle = checkpoint_cycle;
    s_diffs = diffs;
    s_uops_a = in_flight ls.a;
    s_uops_b = in_flight ls.b;
    s_trace_a = trace_tail trace_a ~window;
    s_trace_b = trace_tail trace_b ~window;
  }

let run ?(interval = 256) ?(ring = 64) ?(window = 16)
    ?(max_cycles = 4_000_000) ?trace_a ?trace_b ~label_a ~label_b a b =
  if Tmachine.now a <> 0 || Tmachine.now b <> 0 then
    invalid_arg "Bisect.run: machines must be fresh (cycle 0)";
  let shape m = List.map fst (Tmachine.signature_sections m) in
  if shape a <> shape b then
    invalid_arg "Bisect.run: machines must have the same component shape";
  let ls =
    {
      a;
      b;
      rec_a =
        Replay.create ~interval ~capacity:ring
          ~save:(fun () -> Tmachine.save a)
          ~cycle_of:Tmachine.checkpoint_cycle;
      rec_b =
        Replay.create ~interval ~capacity:ring
          ~save:(fun () -> Tmachine.save b)
          ~cycle_of:Tmachine.checkpoint_cycle;
      interval;
      probes = 0;
    }
  in
  observe2 ls ~cycle:0;
  let homogeneous = sig_eq ls in
  let stats () =
    {
      cs_interval = interval;
      cs_taken = Replay.taken ls.rec_a + Replay.taken ls.rec_b;
      cs_retained = Replay.count ls.rec_a + Replay.count ls.rec_b;
      cs_mem_high_water_words =
        Replay.mem_high_water_words ls.rec_a
        + Replay.mem_high_water_words ls.rec_b;
      cs_probes = ls.probes;
    }
  in
  let outcome =
    if homogeneous then begin
      (* Signature oracle: compare at boundaries, then binary-search. *)
      let cycle = ref 0 in
      let divergent = ref None in
      while
        !divergent = None && (not (finished2 ls)) && !cycle < max_cycles
      do
        tick2 ls;
        incr cycle;
        observe2 ls ~cycle:!cycle;
        if (!cycle mod interval = 0 || finished2 ls) && not (sig_eq ls) then
          divergent := Some !cycle
      done;
      match !divergent with
      | None -> Clean { cycles_run = !cycle }
      | Some hi ->
        let lo = hi - 1 - ((hi - 1) mod interval) in
        goto ls ~cycle:lo;
        if not (sig_eq ls) then
          (* Divergence predates the boundary scan's resolution (should
             not happen: lo was a compared-equal boundary). *)
          invalid_arg "Bisect: checkpoint boundary no longer equal";
        let base_a = Tmachine.save ls.a and base_b = Tmachine.save ls.b in
        let first, base_a, base_b = search ls ~base_a ~base_b ~lo ~hi in
        let checkpoint_cycle = Tmachine.checkpoint_cycle base_a in
        Tmachine.restore ls.a base_a;
        Tmachine.restore ls.b base_b;
        while Tmachine.now ls.a < first do
          tick2 ls
        done;
        let components =
          List.filter_map
            (fun ((n, sa), (_, sb)) -> if sa <> sb then Some n else None)
            (List.combine
               (Tmachine.signature_sections ls.a)
               (Tmachine.signature_sections ls.b))
        in
        Diverged
          (build_slice ls ~oracle:"signature" ~cycle:first ~checkpoint_cycle
             ~components ~window ~trace_a ~trace_b)
    end
    else begin
      (* Activity oracle: per-cycle comparison finds the first divergent
         cycle directly; the recorders still bound slice re-execution. *)
      let prev_a = ref (Tmachine.signature_sections a)
      and prev_b = ref (Tmachine.signature_sections b) in
      let cycle = ref 0 in
      let divergent = ref None in
      while
        !divergent = None && (not (finished2 ls)) && !cycle < max_cycles
      do
        tick2 ls;
        incr cycle;
        observe2 ls ~cycle:!cycle;
        let secs_a = Tmachine.signature_sections a
        and secs_b = Tmachine.signature_sections b in
        let act_a = activity !prev_a secs_a (Tmachine.committed a)
        and act_b = activity !prev_b secs_b (Tmachine.committed b) in
        prev_a := secs_a;
        prev_b := secs_b;
        if act_a <> act_b then divergent := Some (!cycle, act_a, act_b)
      done;
      match !divergent with
      | None -> Clean { cycles_run = !cycle }
      | Some (first, (bits_a, _), (bits_b, _)) ->
        let components =
          List.filter_map
            (fun ((n, ca), (_, cb)) -> if ca <> cb then Some n else None)
            (List.combine bits_a bits_b)
        in
        let components =
          if components = [] then [ "core0" (* committed count differed *) ]
          else components
        in
        let checkpoint_cycle =
          match Replay.nearest ls.rec_a ~cycle:first with
          | Some ck -> Tmachine.checkpoint_cycle ck
          | None -> 0
        in
        Diverged
          (build_slice ls ~oracle:"activity" ~cycle:first ~checkpoint_cycle
             ~components ~window ~trace_a ~trace_b)
    end
  in
  { r_label_a = label_a; r_label_b = label_b; r_outcome = outcome;
    r_stats = stats () }

(* ------------------------------------------------------------------ *)
(* Single-run slice (differential-test counterexamples)                *)
(* ------------------------------------------------------------------ *)

(* One machine, one recorder: rewind to the nearest checkpoint, re-run
   to [cycle], and render what the machine was doing — the slice a
   shrunk qcheck counterexample prints alongside the failing retirement
   index. *)
let slice_at ?(window = 16) ?trace ~recorder m ~cycle =
  (match Replay.nearest recorder ~cycle with
  | Some ck -> Tmachine.restore m ck
  | None -> invalid_arg "Bisect.slice_at: cycle precedes the recorder window");
  while Tmachine.now m < cycle && not (Tmachine.finished m) do
    Tmachine.tick m
  done;
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "causal slice @ cycle %d\n" cycle;
  Printf.bprintf buf "in-flight µops:\n";
  List.iter (fun l -> Printf.bprintf buf "  %s\n" l) (in_flight m);
  (match trace_tail trace ~window with
  | [] -> ()
  | evs ->
    Printf.bprintf buf "last %d trace events:\n" (List.length evs);
    List.iter (fun l -> Printf.bprintf buf "  %s\n" l) evs);
  Printf.bprintf buf "component state:\n";
  List.iter
    (fun (n, d) -> Printf.bprintf buf "  %s: %s\n" n d)
    (Tmachine.dump_sections m);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let schema = "mi6.bisect/1"

let report_to_json r =
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  let stats =
    Json.Obj
      [
        ("interval", Json.Int r.r_stats.cs_interval);
        ("taken", Json.Int r.r_stats.cs_taken);
        ("retained", Json.Int r.r_stats.cs_retained);
        ("mem_high_water_words", Json.Int r.r_stats.cs_mem_high_water_words);
        ("probes", Json.Int r.r_stats.cs_probes);
      ]
  in
  let base =
    [
      ("schema", Json.String schema);
      ("label_a", Json.String r.r_label_a);
      ("label_b", Json.String r.r_label_b);
      ("diverged", Json.Bool (diverged r));
      ("checkpoints", stats);
    ]
  in
  match r.r_outcome with
  | Clean { cycles_run } ->
    Json.Obj (base @ [ ("cycles_run", Json.Int cycles_run) ])
  | Diverged s ->
    Json.Obj
      (base
      @ [
          ("cycle", Json.Int s.s_cycle);
          ("oracle", Json.String s.s_oracle);
          ("component", Json.String s.s_component);
          ("components", strings s.s_components);
          ("audit_channels", strings s.s_audit_channels);
          ("checkpoint_cycle", Json.Int s.s_checkpoint_cycle);
          ( "field_diff",
            Json.List
              (List.map
                 (fun d ->
                   Json.Obj
                     [
                       ("component", Json.String d.cd_component);
                       ("a", Json.String d.cd_dump_a);
                       ("b", Json.String d.cd_dump_b);
                       ("first_diff", Json.String d.cd_first_diff);
                     ])
                 s.s_diffs) );
          ("uops_a", strings s.s_uops_a);
          ("uops_b", strings s.s_uops_b);
          ("trace_a", strings s.s_trace_a);
          ("trace_b", strings s.s_trace_b);
        ])

let pp_report fmt r =
  let pr f = Format.fprintf fmt f in
  pr "bisect %s vs %s@." r.r_label_a r.r_label_b;
  (match r.r_outcome with
  | Clean { cycles_run } ->
    pr "  no divergence in %d cycles@." cycles_run
  | Diverged s ->
    pr "  first divergence: cycle %d (%s oracle)@." s.s_cycle s.s_oracle;
    pr "  component: %s  (all: %s)@." s.s_component
      (String.concat ", " s.s_components);
    pr "  audit channels: %s@." (String.concat ", " s.s_audit_channels);
    pr "  replayed from checkpoint at cycle %d@." s.s_checkpoint_cycle;
    List.iter
      (fun d ->
        if d.cd_first_diff <> "" then
          pr "  %s: %s@." d.cd_component d.cd_first_diff)
      s.s_diffs;
    let dump tag uops =
      if uops <> [] then begin
        pr "  in-flight (%s):@." tag;
        List.iter (fun u -> pr "    %s@." u) uops
      end
    in
    dump r.r_label_a s.s_uops_a;
    dump r.r_label_b s.s_uops_b;
    let tr tag evs =
      if evs <> [] then begin
        pr "  trace tail (%s):@." tag;
        List.iter (fun e -> pr "    %s@." e) evs
      end
    in
    tr r.r_label_a s.s_trace_a;
    tr r.r_label_b s.s_trace_b);
  pr "  checkpoints: %d taken, %d retained, interval %d, %d probes, %d words peak@."
    r.r_stats.cs_taken r.r_stats.cs_retained r.r_stats.cs_interval
    r.r_stats.cs_probes r.r_stats.cs_mem_high_water_words
