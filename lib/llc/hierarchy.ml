type dram_kind =
  | Const_dram of { latency : int; max_outstanding : int }
  | Reorder_dram of Fr_fcfs.config

type t = {
  l1s : L1.t array;
  llc : Llc.t;
  selfprof : Selfprof.t;
  mutable clock : int;
  completions : (int * int) list ref array; (* reversed *)
}

let create ?(trace = Trace.null) ?(selfprof = Selfprof.null)
    ?(l1 = L1.default_config) ?(link_depth = 4) ~llc:llc_cfg ~security ~dram
    ~stats () =
  let n = llc_cfg.Llc.cores in
  let links = Array.init n (fun _ -> Link.create ~depth:link_depth) in
  let dram_ctrl =
    match dram with
    | Const_dram { latency; max_outstanding } ->
      Controller.constant ~trace ~latency ~max_outstanding ~stats ()
    | Reorder_dram cfg -> Controller.reordering ~trace cfg ~stats
  in
  let llc =
    Llc.create ~trace ~selfprof llc_cfg ~security ~links ~dram:dram_ctrl
      ~stats
  in
  let l1s =
    Array.init n (fun i ->
        L1.create ~trace l1 ~link:links.(i) ~stats
          ~name:(Printf.sprintf "l1.%d" i))
  in
  {
    l1s;
    llc;
    selfprof;
    clock = 0;
    completions = Array.init n (fun _ -> ref []);
  }

let cores t = Array.length t.l1s
let now t = t.clock
let l1 t ~core = t.l1s.(core)
let llc t = t.llc
let can_accept t ~core = L1.can_accept t.l1s.(core)

let request t ~core ~line ~store ~id =
  L1.request t.l1s.(core) ~line ~store ~id

let tick t =
  let now = t.clock in
  let p = Selfprof.switch t.selfprof Selfprof.ph_l1 in
  Array.iteri
    (fun core cache ->
      L1.tick cache ~now ~complete:(fun id ->
          t.completions.(core) := (id, now) :: !(t.completions.(core))))
    t.l1s;
  ignore (Selfprof.switch t.selfprof Selfprof.ph_llc);
  Llc.tick t.llc ~now;
  Selfprof.restore t.selfprof p;
  t.clock <- now + 1

let take_completions t ~core =
  let out = List.rev !(t.completions.(core)) in
  t.completions.(core) := [];
  out

let quiescent t =
  (not (Llc.busy t.llc))
  && Array.for_all (fun c -> L1.in_flight c = 0) t.l1s

let run_until_quiescent t ~max_cycles =
  let start = t.clock in
  let rec go () =
    if quiescent t then t.clock - start
    else if t.clock - start >= max_cycles then
      failwith "Hierarchy.run_until_quiescent: timeout (possible deadlock)"
    else begin
      tick t;
      go ()
    end
  in
  go ()
