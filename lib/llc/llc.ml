type security = {
  partitioned_mshrs : bool;
  round_robin_arbiter : bool;
  split_uq : bool;
  per_partition_downgrade : bool;
  dq_retry : bool;
}

let baseline_security =
  {
    partitioned_mshrs = false;
    round_robin_arbiter = false;
    split_uq = false;
    per_partition_downgrade = false;
    dq_retry = false;
  }

let mi6_security =
  {
    partitioned_mshrs = true;
    round_robin_arbiter = true;
    split_uq = true;
    per_partition_downgrade = true;
    dq_retry = true;
  }

type config = {
  index : Index.t;
  ways : int;
  mshrs : int;
  mshr_banks : int;
  strict_bank_stall : bool;
  pipeline_latency : int;
  cores : int;
  repl_seed : int;
}

let default_config ~cores =
  {
    index = Index.flat ~set_bits:10;
    ways = 16;
    mshrs = 16;
    mshr_banks = 1;
    strict_bank_stall = false;
    pipeline_latency = 4;
    cores;
    repl_seed = 0x22;
  }

type line_meta = {
  mutable dirty : bool;
  mutable owner : int option;
  sharers : Bitvec.t;
}

type dq_kind = Dq_read | Dq_wb

type phase =
  | P_pipe  (** traversing the cache-access pipeline *)
  | P_blocked  (** same-line / same-way conflict; parked on another MSHR *)
  | P_wait_retry  (** queued for pipeline re-entry *)
  | P_wait_downgrade of { victim : bool }
  | P_in_dq
  | P_wait_dram
  | P_dram_arrived  (** response buffered in the MSHR, awaiting pipeline *)
  | P_wait_uq

type entry = {
  e_core : int;
  e_line : int;
  e_to : Msi.t;
  mutable e_phase : phase;
  mutable e_set : int;
  mutable e_way : int; (* -1 until reserved *)
  mutable e_locks_way : bool;
  mutable e_needs_wb : bool;
  mutable e_wb_line : int;
  mutable e_retry : bool; (* MI6 retry bit (Figure 3) *)
  mutable e_pending : Bitvec.t; (* cores still to answer a downgrade *)
  mutable e_to_send : (int * int * Msi.t) list; (* core, line, to_s *)
  mutable e_blocked : int list; (* MSHR idxs parked on this entry *)
  mutable e_dq_kind : dq_kind;
}

type pipe_msg =
  | M_creq of int
  | M_retry of int
  | M_cresp of int * Msg.child_resp
  | M_dram of int

type t = {
  cfg : config;
  sec : security;
  links : Link.t array;
  dram : Controller.t;
  stats : Stats.t;
  array : line_meta Sram.t;
  repl : Replacement.t;
  entries : entry option array;
  pipe : (int * pipe_msg) Fifo.t; (* exit cycle, message *)
  retryq : int Fifo.t array; (* per core *)
  uqs : int Fifo.t array; (* 1 (shared) or per core *)
  dq : int Fifo.t;
  mutable dq_pending_read : int option; (* baseline 2-cycle wb+read dequeue *)
  port_used : bool array; (* per-core outgoing port, per cycle *)
  (* Observability *)
  trace : Trace.t;
  selfprof : Selfprof.t;
  mutable tnow : int; (* current cycle, for probes deep in the pipeline *)
  mutable live : int; (* allocated MSHR entries (avoids a per-tick scan) *)
  occ_hist : Histogram.t; (* MSHR occupancy, sampled once per tick *)
}

let create ?(trace = Trace.null) ?(selfprof = Selfprof.null) cfg ~security
    ~links ~dram ~stats =
  if Array.length links <> cfg.cores then
    invalid_arg "Llc.create: one link per core required";
  if cfg.mshrs mod cfg.mshr_banks <> 0 then
    invalid_arg "Llc.create: mshrs must divide evenly into banks";
  if security.partitioned_mshrs && cfg.mshrs mod cfg.cores <> 0 then
    invalid_arg "Llc.create: mshrs must divide evenly across cores";
  let sets = Index.sets cfg.index in
  {
    cfg;
    sec = security;
    links;
    dram;
    stats;
    array = Sram.create ~sets ~ways:cfg.ways;
    repl =
      Replacement.pseudo_random ~ways:cfg.ways ~sets ~seed:cfg.repl_seed;
    entries = Array.make cfg.mshrs None;
    pipe = Fifo.create ~capacity:(cfg.pipeline_latency + 2);
    retryq = Array.init cfg.cores (fun _ -> Fifo.create ~capacity:cfg.mshrs);
    uqs =
      (if security.split_uq then
         Array.init cfg.cores (fun _ ->
             Fifo.create ~capacity:(cfg.mshrs / cfg.cores))
       else [| Fifo.create ~capacity:cfg.mshrs |]);
    dq = Fifo.create ~capacity:cfg.mshrs;
    dq_pending_read = None;
    port_used = Array.make cfg.cores false;
    trace;
    selfprof;
    tnow = 0;
    live = 0;
    occ_hist = Histogram.create ();
  }

let mshr_occupancy t = t.occ_hist
let live_mshrs t = t.live

let entry t idx =
  match t.entries.(idx) with
  | Some e -> e
  | None -> failwith "Llc: dangling MSHR index"

let set_of t line = Index.index t.cfg.index ~line

(* ------------------------------------------------------------------ *)
(* MSHR allocation                                                     *)
(* ------------------------------------------------------------------ *)

let per_core_mshrs t = t.cfg.mshrs / t.cfg.cores

let entry_range t core =
  if t.sec.partitioned_mshrs then
    (core * per_core_mshrs t, (core + 1) * per_core_mshrs t)
  else (0, t.cfg.mshrs)

let bank_of_set t set = set land (t.cfg.mshr_banks - 1)

let free_in_bank t core bank =
  let lo, hi = entry_range t core in
  let n = ref 0 in
  for i = lo to hi - 1 do
    if t.entries.(i) = None && i mod t.cfg.mshr_banks = bank then incr n
  done;
  !n

let free_mshrs_for t ~core ~line =
  let bank = bank_of_set t (set_of t line) in
  if t.cfg.strict_bank_stall then begin
    (* Pessimistic model: any full bank blocks everything. *)
    let all_ok = ref true in
    for b = 0 to t.cfg.mshr_banks - 1 do
      if free_in_bank t core b = 0 then all_ok := false
    done;
    if !all_ok then free_in_bank t core bank else 0
  end
  else free_in_bank t core bank

let alloc_mshr t ~core ~line ~to_s =
  if free_mshrs_for t ~core ~line = 0 then None
  else begin
    let bank = bank_of_set t (set_of t line) in
    let lo, hi = entry_range t core in
    let rec go i =
      if i >= hi then None
      else if t.entries.(i) = None && i mod t.cfg.mshr_banks = bank then begin
        let e =
          {
            e_core = core;
            e_line = line;
            e_to = to_s;
            e_phase = P_pipe;
            e_set = -1;
            e_way = -1;
            e_locks_way = false;
            e_needs_wb = false;
            e_wb_line = -1;
            e_retry = false;
            e_pending = Bitvec.create t.cfg.cores;
            e_to_send = [];
            e_blocked = [];
            e_dq_kind = Dq_read;
          }
        in
        t.entries.(i) <- Some e;
        t.live <- t.live + 1;
        if Trace.active t.trace Trace.Llc then
          Trace.emit t.trace ~now:t.tnow
            (Trace.Mshr_alloc { core; idx = i; line });
        Some i
      end
      else go (i + 1)
    in
    go lo
  end

let way_locker t set way =
  let found = ref None in
  Array.iteri
    (fun i eo ->
      match eo with
      | Some e when e.e_locks_way && e.e_set = set && e.e_way = way ->
        found := Some i
      | _ -> ())
    t.entries;
  !found

(* ------------------------------------------------------------------ *)
(* Queue helpers                                                       *)
(* ------------------------------------------------------------------ *)

let uq_for t core = if t.sec.split_uq then t.uqs.(core) else t.uqs.(0)

let enqueue_uq t idx =
  let e = entry t idx in
  e.e_phase <- P_wait_uq;
  Fifo.enq (uq_for t e.e_core) idx

let enqueue_retry t idx =
  let e = entry t idx in
  e.e_phase <- P_wait_retry;
  Fifo.enq t.retryq.(e.e_core) idx

let park_on t ~blocker ~parked =
  let b = entry t blocker in
  let p = entry t parked in
  p.e_phase <- P_blocked;
  b.e_blocked <- parked :: b.e_blocked

let free_entry t idx =
  let e = entry t idx in
  List.iter (fun w -> enqueue_retry t w) e.e_blocked;
  if Trace.active t.trace Trace.Llc then
    Trace.emit t.trace ~now:t.tnow
      (Trace.Mshr_free { core = e.e_core; idx });
  t.entries.(idx) <- None;
  t.live <- t.live - 1

(* ------------------------------------------------------------------ *)
(* Directory / replacement bookkeeping                                 *)
(* ------------------------------------------------------------------ *)

let fresh_meta t = { dirty = false; owner = None; sharers = Bitvec.create t.cfg.cores }

(* Targets that must be downgraded before granting [to_s] to [core]. *)
let downgrade_targets t meta ~core ~to_s ~line =
  ignore t;
  match to_s with
  | Msi.M ->
    let acc = ref [] in
    Bitvec.iter_set
      (fun c -> if c <> core then acc := (c, line, Msi.I) :: !acc)
      meta.sharers;
    (match meta.owner with
    | Some c when c <> core -> acc := (c, line, Msi.I) :: !acc
    | _ -> ());
    List.rev !acc
  | Msi.S -> (
    match meta.owner with
    | Some c when c <> core -> [ (c, line, Msi.S) ]
    | _ -> [])
  | Msi.I -> []

let apply_cresp_to_directory t core (resp : Msg.child_resp) =
  let set = set_of t resp.Msg.line in
  match Sram.find t.array ~set ~tag:resp.Msg.line with
  | None -> ()
  | Some (_, meta) -> (
    if resp.Msg.dirty then meta.dirty <- true;
    match resp.Msg.to_s with
    | Msi.I ->
      if meta.owner = Some core then meta.owner <- None;
      if Bitvec.get meta.sharers core then Bitvec.clear meta.sharers core
    | Msi.S ->
      if meta.owner = Some core then meta.owner <- None;
      Bitvec.set meta.sharers core
    | Msi.M -> ())

(* Replacement completed: victim gone, line slot reserved for the miss. *)
let complete_replacement t idx ~victim_dirty =
  let e = entry t idx in
  Sram.invalidate t.array ~set:e.e_set ~way:e.e_way;
  e.e_needs_wb <- victim_dirty;
  e.e_dq_kind <- (if victim_dirty then Dq_wb else Dq_read);
  if victim_dirty then Stats.incr t.stats "llc.writebacks";
  e.e_phase <- P_in_dq;
  Fifo.enq t.dq idx

(* ------------------------------------------------------------------ *)
(* Pipeline-exit processing                                            *)
(* ------------------------------------------------------------------ *)

let process_request t idx =
  let e = entry t idx in
  if e.e_retry then begin
    (* MI6 retry pass: the writeback already went out; this is now a pure
       miss that re-enters DQ for the DRAM read (Figure 3). *)
    e.e_retry <- false;
    e.e_dq_kind <- Dq_read;
    e.e_phase <- P_in_dq;
    Fifo.enq t.dq idx
  end
  else begin
    let set = set_of t e.e_line in
    e.e_set <- set;
    (* Same-line conflict with another active transaction: park.  Parked
       (P_blocked) entries are passive and must not themselves act as
       blockers, or two same-line entries could park on each other. *)
    let same_line = ref None in
    Array.iteri
      (fun i eo ->
        match eo with
        | Some o
          when i <> idx && o.e_line = e.e_line && o.e_phase <> P_blocked
               && !same_line = None ->
          same_line := Some i
        | _ -> ())
      t.entries;
    match !same_line with
    | Some blocker -> park_on t ~blocker ~parked:idx
    | None -> (
      match Sram.find t.array ~set ~tag:e.e_line with
      | Some (way, meta) -> (
        match way_locker t set way with
        | Some blocker when blocker <> idx -> park_on t ~blocker ~parked:idx
        | _ -> (
          Stats.incr t.stats "llc.hits";
          e.e_way <- way;
          Replacement.touch t.repl ~set ~way;
          match
            downgrade_targets t meta ~core:e.e_core ~to_s:e.e_to
              ~line:e.e_line
          with
          | [] -> enqueue_uq t idx
          | targets ->
            e.e_locks_way <- true;
            List.iter (fun (c, _, _) -> Bitvec.set e.e_pending c) targets;
            e.e_to_send <- targets;
            e.e_phase <- P_wait_downgrade { victim = false }))
      | None -> (
        Stats.incr t.stats "llc.misses";
        (* Find an invalid, unlocked way; otherwise pick a victim among
           unlocked ways. *)
        let unlocked w = way_locker t set w = None in
        let rec find_invalid w =
          if w >= t.cfg.ways then None
          else if Sram.read t.array ~set ~way:w = None && unlocked w then
            Some w
          else find_invalid (w + 1)
        in
        match find_invalid 0 with
        | Some way ->
          e.e_way <- way;
          e.e_locks_way <- true;
          e.e_dq_kind <- Dq_read;
          e.e_phase <- P_in_dq;
          Fifo.enq t.dq idx
        | None -> (
          let pick = Replacement.victim t.repl ~set ~invalid_way:None in
          let rec find_victim tries w =
            if tries >= t.cfg.ways then None
            else if unlocked w then Some w
            else find_victim (tries + 1) ((w + 1) mod t.cfg.ways)
          in
          match find_victim 0 pick with
          | None ->
            (* Every way locked by an in-flight transaction: retry. *)
            Stats.incr t.stats "llc.all_ways_locked";
            enqueue_retry t idx
          | Some way -> (
            match Sram.read t.array ~set ~way with
            | None -> assert false
            | Some (victim_tag, vmeta) -> (
              Stats.incr t.stats "llc.replacements";
              e.e_way <- way;
              e.e_locks_way <- true;
              e.e_wb_line <- victim_tag;
              match
                downgrade_targets t vmeta ~core:(-1) ~to_s:Msi.M
                  ~line:victim_tag
              with
              | [] -> complete_replacement t idx ~victim_dirty:vmeta.dirty
              | targets ->
                e.e_needs_wb <- vmeta.dirty;
                List.iter
                  (fun (c, _, _) -> Bitvec.set e.e_pending c)
                  targets;
                e.e_to_send <- targets;
                e.e_phase <- P_wait_downgrade { victim = true })))))
  end

let process_cresp t core (resp : Msg.child_resp) =
  (* A waiting MSHR consumes the response first (so it can account the
     dirty bit into the replacement), then the directory is updated. *)
  let claimed = ref false in
  Array.iteri
    (fun idx eo ->
      match eo with
      | Some e when not !claimed -> (
        match e.e_phase with
        | P_wait_downgrade { victim } ->
          let wanted_line = if victim then e.e_wb_line else e.e_line in
          if wanted_line = resp.Msg.line && Bitvec.get e.e_pending core then begin
            claimed := true;
            Bitvec.clear e.e_pending core;
            apply_cresp_to_directory t core resp;
            if Bitvec.is_empty e.e_pending then begin
              if victim then begin
                let vdirty =
                  e.e_needs_wb
                  ||
                  match Sram.find t.array ~set:e.e_set ~tag:e.e_wb_line with
                  | Some (_, m) -> m.dirty
                  | None -> false
                in
                complete_replacement t idx ~victim_dirty:vdirty
              end
              else enqueue_uq t idx
            end
          end
        | _ -> ())
      | _ -> ())
    t.entries;
  if not !claimed then apply_cresp_to_directory t core resp

let process_dram t idx =
  let e = entry t idx in
  Sram.fill t.array ~set:e.e_set ~way:e.e_way ~tag:e.e_line (fresh_meta t);
  Replacement.touch t.repl ~set:e.e_set ~way:e.e_way;
  enqueue_uq t idx

let process_exit t = function
  | M_creq idx | M_retry idx -> process_request t idx
  | M_cresp (core, resp) -> process_cresp t core resp
  | M_dram idx -> process_dram t idx

(* ------------------------------------------------------------------ *)
(* Pipeline entry arbitration                                          *)
(* ------------------------------------------------------------------ *)

let dram_arrived_for t core =
  let found = ref None in
  Array.iteri
    (fun i eo ->
      match eo with
      | Some e when e.e_phase = P_dram_arrived && e.e_core = core && !found = None
        ->
        found := Some i
      | _ -> ())
    t.entries;
  !found

(* Highest-priority available message for [core]; dequeues it. *)
let take_core_candidate t core =
  match dram_arrived_for t core with
  | Some idx ->
    (entry t idx).e_phase <- P_pipe;
    Some (M_dram idx)
  | None ->
    if Fifo.can_deq t.retryq.(core) then begin
      let idx = Fifo.deq t.retryq.(core) in
      (entry t idx).e_phase <- P_pipe;
      Some (M_retry idx)
    end
    else if Fifo.can_deq t.links.(core).Link.rs then
      Some (M_cresp (core, Fifo.deq t.links.(core).Link.rs))
    else
      match Fifo.peek_opt t.links.(core).Link.rq with
      | None -> None
      | Some req -> (
        match
          alloc_mshr t ~core ~line:req.Msg.line ~to_s:req.Msg.to_s
        with
        | Some idx ->
          ignore (Fifo.deq t.links.(core).Link.rq);
          Stats.incr t.stats "llc.requests";
          Some (M_creq idx)
        | None ->
          Stats.incr t.stats "llc.mshr_alloc_stalls";
          None)

let msg_kind = function
  | M_creq _ -> "req"
  | M_retry _ -> "retry"
  | M_cresp _ -> "resp"
  | M_dram _ -> "dram"

let msg_core t = function
  | M_creq idx | M_retry idx | M_dram idx -> (entry t idx).e_core
  | M_cresp (c, _) -> c

let enter_pipeline t ~now =
  let admit msg =
    if Trace.active t.trace Trace.Llc then
      Trace.emit t.trace ~now
        (Trace.Arb_grant { core = msg_core t msg; kind = msg_kind msg });
    Fifo.enq t.pipe (now + t.cfg.pipeline_latency, msg)
  in
  if t.sec.round_robin_arbiter then begin
    (* Cycle T admits only core T mod N; an idle slot is wasted
       (Section 5.4.3). *)
    let core = now mod t.cfg.cores in
    match take_core_candidate t core with
    | Some msg -> admit msg
    | None ->
      Stats.incr t.stats "llc.arb_idle_slots";
      if Trace.active t.trace Trace.Llc then
        Trace.emit t.trace ~now (Trace.Arb_idle { core })
  end
  else begin
    (* Baseline two-level mux: message-type priority, then core index. *)
    let picked = ref false in
    let try_class f =
      if not !picked then begin
        let rec go c =
          if c < t.cfg.cores then
            match f c with
            | Some msg ->
              picked := true;
              admit msg
            | None -> go (c + 1)
        in
        go 0
      end
    in
    (* DRAM responses. *)
    try_class (fun c ->
        match dram_arrived_for t c with
        | Some idx ->
          (entry t idx).e_phase <- P_pipe;
          Some (M_dram idx)
        | None -> None);
    (* Downgrade responses. *)
    try_class (fun c ->
        if Fifo.can_deq t.links.(c).Link.rs then
          Some (M_cresp (c, Fifo.deq t.links.(c).Link.rs))
        else None);
    (* Retries. *)
    try_class (fun c ->
        if Fifo.can_deq t.retryq.(c) then begin
          let idx = Fifo.deq t.retryq.(c) in
          (entry t idx).e_phase <- P_pipe;
          Some (M_retry idx)
        end
        else None);
    (* Upgrade requests (need an MSHR). *)
    try_class (fun c ->
        match Fifo.peek_opt t.links.(c).Link.rq with
        | None -> None
        | Some req -> (
          match alloc_mshr t ~core:c ~line:req.Msg.line ~to_s:req.Msg.to_s with
          | Some idx ->
            ignore (Fifo.deq t.links.(c).Link.rq);
            Stats.incr t.stats "llc.requests";
            Some (M_creq idx)
          | None ->
            Stats.incr t.stats "llc.mshr_alloc_stalls";
            None))
  end

let advance_pipeline t ~now =
  match Fifo.peek_opt t.pipe with
  | Some (exit_at, msg) when exit_at <= now ->
    ignore (Fifo.deq t.pipe);
    process_exit t msg
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Downgrade-L1 logic                                                  *)
(* ------------------------------------------------------------------ *)

(* Send one pending downgrade request from the entries in [lo, hi). *)
let downgrade_scan t ~lo ~hi =
  let sent = ref false in
  let i = ref lo in
  while (not !sent) && !i < hi do
    (match t.entries.(!i) with
    | Some e -> (
      match e.e_to_send with
      | (target, line, to_s) :: rest ->
        if
          (not t.port_used.(target))
          && Fifo.can_enq t.links.(target).Link.p2c
        then begin
          Fifo.enq t.links.(target).Link.p2c (Msg.Downgrade_req { line; to_s });
          Stats.incr t.stats "llc.downgrades_sent";
          t.port_used.(target) <- true;
          e.e_to_send <- rest;
          sent := true
        end
      | [] -> ())
    | None -> ());
    incr i
  done

let downgrade_logic t =
  if t.sec.per_partition_downgrade then
    for core = 0 to t.cfg.cores - 1 do
      let lo, hi = entry_range t core in
      downgrade_scan t ~lo ~hi
    done
  else downgrade_scan t ~lo:0 ~hi:t.cfg.mshrs

(* ------------------------------------------------------------------ *)
(* UQ dequeue                                                          *)
(* ------------------------------------------------------------------ *)

let grant_directory t idx =
  let e = entry t idx in
  match Sram.read t.array ~set:e.e_set ~way:e.e_way with
  | None -> assert false
  | Some (_, meta) -> (
    match e.e_to with
    | Msi.M ->
      meta.owner <- Some e.e_core;
      Bitvec.clear meta.sharers e.e_core
    | Msi.S -> Bitvec.set meta.sharers e.e_core
    | Msi.I -> ())

let try_send_response t idx =
  let e = entry t idx in
  let c = e.e_core in
  if (not t.port_used.(c)) && Fifo.can_enq t.links.(c).Link.p2c then begin
    grant_directory t idx;
    Fifo.enq t.links.(c).Link.p2c
      (Msg.Upgrade_resp { line = e.e_line; to_s = e.e_to });
    Stats.incr t.stats "llc.responses_sent";
    if Trace.active t.trace Trace.Llc then
      Trace.emit t.trace ~now:t.tnow
        (Trace.Uq_send { core = c; line = e.e_line });
    t.port_used.(c) <- true;
    e.e_locks_way <- false;
    free_entry t idx;
    true
  end
  else false

let uq_dequeue t =
  if t.sec.split_uq then
    Array.iter
      (fun uq ->
        match Fifo.peek_opt uq with
        | Some idx -> if try_send_response t idx then ignore (Fifo.deq uq)
        | None -> ())
      t.uqs
  else
    match Fifo.peek_opt t.uqs.(0) with
    | Some idx ->
      if try_send_response t idx then ignore (Fifo.deq t.uqs.(0))
      else Stats.incr t.stats "llc.uq_hol_blocks"
    | None -> ()

(* ------------------------------------------------------------------ *)
(* DQ dequeue                                                          *)
(* ------------------------------------------------------------------ *)

let dq_dequeue t ~now =
  match t.dq_pending_read with
  | Some idx ->
    (* Baseline second dequeue cycle: the port is still busy sending the
       DRAM read of a writeback+read pair (the Section 5.4.2 leak). *)
    if Controller.can_accept t.dram then begin
      let e = entry t idx in
      Controller.accept t.dram ~now
        { Controller.read = true; line = e.e_line; tag = idx };
      e.e_phase <- P_wait_dram;
      t.dq_pending_read <- None
    end
    else Stats.incr t.stats "llc.dram_backpressure_stalls"
  | None -> (
    match Fifo.peek_opt t.dq with
    | None -> ()
    | Some idx -> (
      let e = entry t idx in
      match e.e_dq_kind with
      | Dq_read ->
        if Controller.can_accept t.dram then begin
          ignore (Fifo.deq t.dq);
          Controller.accept t.dram ~now
            { Controller.read = true; line = e.e_line; tag = idx };
          e.e_phase <- P_wait_dram
        end
        else Stats.incr t.stats "llc.dram_backpressure_stalls"
      | Dq_wb ->
        if Controller.can_accept t.dram then begin
          ignore (Fifo.deq t.dq);
          Controller.accept t.dram ~now
            { Controller.read = false; line = e.e_wb_line; tag = idx };
          if t.sec.dq_retry then begin
            (* One-cycle dequeue: set the retry bit and re-enter the
               pipeline as a pure miss (Figure 3). *)
            e.e_retry <- true;
            Stats.incr t.stats "llc.dq_retries";
            if Trace.active t.trace Trace.Llc then
              Trace.emit t.trace ~now
                (Trace.Dq_retry { core = e.e_core; idx });
            enqueue_retry t idx
          end
          else begin
            (* Baseline: block the DQ port next cycle for the read. *)
            t.dq_pending_read <- Some idx;
            Stats.incr t.stats "llc.dq_double_dequeues"
          end
        end
        else Stats.incr t.stats "llc.dram_backpressure_stalls"))

(* ------------------------------------------------------------------ *)
(* Tick                                                                *)
(* ------------------------------------------------------------------ *)

let tick t ~now =
  t.tnow <- now;
  Histogram.add t.occ_hist t.live;
  Array.fill t.port_used 0 (Array.length t.port_used) false;
  downgrade_logic t;
  uq_dequeue t;
  advance_pipeline t ~now;
  enter_pipeline t ~now;
  dq_dequeue t ~now;
  let p = Selfprof.switch t.selfprof Selfprof.ph_dram in
  Controller.tick t.dram ~now ~respond:(fun ~tag ~line ->
      let e = entry t tag in
      assert (e.e_line = line);
      (* No backpressure on the DRAM response: buffered in the MSHR. *)
      e.e_phase <- P_dram_arrived);
  Selfprof.restore t.selfprof p

let busy t =
  Array.exists (fun e -> e <> None) t.entries
  || Fifo.length t.pipe > 0
  || Controller.outstanding t.dram > 0
  || Array.exists (fun l -> Fifo.length l.Link.rq > 0 || Fifo.length l.Link.rs > 0) t.links

let probe t ~line =
  Sram.find t.array ~set:(set_of t line) ~tag:line <> None

let occupancy t = Sram.count_valid t.array

let invalidate_region t ~geometry ~region =
  if busy t then failwith "Llc.invalidate_region: LLC not quiescent";
  let to_drop = ref [] in
  Sram.iter_valid
    (fun set way tag meta ->
      if Addr.region_of geometry (tag * Addr.line_bytes) = region then begin
        (* The monitor descheduled and purged the domain's cores first, so
           no L1 may still hold the line. *)
        if meta.owner <> None || not (Bitvec.is_empty meta.sharers) then
          failwith "Llc.invalidate_region: line still shared by an L1";
        to_drop := (set, way) :: !to_drop
      end)
    t.array;
  List.iter (fun (set, way) -> Sram.invalidate t.array ~set ~way) !to_drop

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore                                                  *)
(* ------------------------------------------------------------------ *)

(* Everything behavior-relevant, including what structural_signature
   excludes: the tag array with its mutable directory metadata, the
   replacement state, and the occupancy histogram.  The child links are
   captured here because the LLC owns the links array (the L1s share the
   same Link.t values).  [port_used] is per-cycle scratch refilled at the
   top of every tick and needs no capture. *)

let copy_meta m = { m with sharers = Bitvec.copy m.sharers }
let copy_entry e = { e with e_pending = Bitvec.copy e.e_pending }

type link_ck = {
  lk_rq : Msg.child_req list;
  lk_rs : Msg.child_resp list;
  lk_p2c : Msg.parent_msg list;
}

type checkpoint = {
  ck_array : line_meta Sram.checkpoint;
  ck_repl : Replacement.checkpoint;
  ck_entries : entry option array;
  ck_pipe : (int * pipe_msg) list;
  ck_retryq : int list array;
  ck_uqs : int list array;
  ck_dq : int list;
  ck_dq_pending_read : int option;
  ck_links : link_ck array;
  ck_dram : Controller.checkpoint;
  ck_tnow : int;
  ck_live : int;
  ck_occ_hist : Histogram.t;
}

let save t =
  {
    ck_array = Sram.save ~copy:copy_meta t.array;
    ck_repl = Replacement.save t.repl;
    ck_entries = Array.map (Option.map copy_entry) t.entries;
    ck_pipe = Fifo.to_list t.pipe;
    ck_retryq = Array.map Fifo.to_list t.retryq;
    ck_uqs = Array.map Fifo.to_list t.uqs;
    ck_dq = Fifo.to_list t.dq;
    ck_dq_pending_read = t.dq_pending_read;
    ck_links =
      Array.map
        (fun l ->
          {
            lk_rq = Fifo.to_list l.Link.rq;
            lk_rs = Fifo.to_list l.Link.rs;
            lk_p2c = Fifo.to_list l.Link.p2c;
          })
        t.links;
    ck_dram = Controller.save t.dram;
    ck_tnow = t.tnow;
    ck_live = t.live;
    ck_occ_hist = Histogram.copy t.occ_hist;
  }

let restore t ck =
  Sram.restore ~copy:copy_meta t.array ck.ck_array;
  Replacement.restore t.repl ck.ck_repl;
  Array.iteri (fun i e -> t.entries.(i) <- Option.map copy_entry e) ck.ck_entries;
  Fifo.assign t.pipe ck.ck_pipe;
  Array.iteri (fun i xs -> Fifo.assign t.retryq.(i) xs) ck.ck_retryq;
  Array.iteri (fun i xs -> Fifo.assign t.uqs.(i) xs) ck.ck_uqs;
  Fifo.assign t.dq ck.ck_dq;
  t.dq_pending_read <- ck.ck_dq_pending_read;
  Array.iteri
    (fun i lk ->
      Fifo.assign t.links.(i).Link.rq lk.lk_rq;
      Fifo.assign t.links.(i).Link.rs lk.lk_rs;
      Fifo.assign t.links.(i).Link.p2c lk.lk_p2c)
    ck.ck_links;
  Controller.restore t.dram ck.ck_dram;
  t.tnow <- ck.ck_tnow;
  t.live <- ck.ck_live;
  Histogram.restore ~into:t.occ_hist ck.ck_occ_hist

(* ------------------------------------------------------------------ *)
(* Structure state (quiet-cycle detector)                              *)
(* ------------------------------------------------------------------ *)

(* MSHRs, every queue (pipeline, retry, UQ, DQ), the child links, and
   the DRAM controller.  The cache array, directory metadata, and
   replacement state are excluded: they only change in cycles that also
   move an MSHR or a queue.  [port_used] is per-cycle scratch recomputed
   from scratch each tick and is likewise excluded. *)

let phase_code = function
  | P_pipe -> 0
  | P_blocked -> 1
  | P_wait_retry -> 2
  | P_wait_downgrade { victim } -> if victim then 4 else 3
  | P_in_dq -> 5
  | P_wait_dram -> 6
  | P_dram_arrived -> 7
  | P_wait_uq -> 8

let sig_msi = function Msi.M -> 2 | Msi.S -> 1 | Msi.I -> 0

let structural_signature t =
  let h = ref Statesig.empty in
  let i v = h := Statesig.mix !h v in
  let b v = h := Statesig.mix_bool !h v in
  i t.live;
  Array.iter
    (function
      | None -> i (-1)
      | Some e ->
        i (phase_code e.e_phase);
        i e.e_core;
        i e.e_line;
        i (sig_msi e.e_to);
        i e.e_set;
        i e.e_way;
        b e.e_locks_way;
        b e.e_needs_wb;
        i e.e_wb_line;
        b e.e_retry;
        i (Hashtbl.hash e.e_pending);
        h := Statesig.mix_list !h Hashtbl.hash e.e_to_send;
        h := Statesig.mix_list !h Fun.id e.e_blocked;
        i (match e.e_dq_kind with Dq_read -> 0 | Dq_wb -> 1))
    t.entries;
  i (Fifo.length t.pipe);
  Fifo.iter
    (fun (exit_at, msg) ->
      i exit_at;
      i (Hashtbl.hash msg))
    t.pipe;
  Array.iter
    (fun q ->
      i (Fifo.length q);
      Fifo.iter i q)
    t.retryq;
  Array.iter
    (fun q ->
      i (Fifo.length q);
      Fifo.iter i q)
    t.uqs;
  i (Fifo.length t.dq);
  Fifo.iter i t.dq;
  i (match t.dq_pending_read with None -> -1 | Some idx -> idx);
  Array.iter
    (fun l ->
      i (Fifo.length l.Link.rq);
      Fifo.iter (fun m -> i (Hashtbl.hash m)) l.Link.rq;
      i (Fifo.length l.Link.rs);
      Fifo.iter (fun m -> i (Hashtbl.hash m)) l.Link.rs;
      i (Fifo.length l.Link.p2c);
      Fifo.iter (fun m -> i (Hashtbl.hash m)) l.Link.p2c)
    t.links;
  i (Controller.structural_signature t.dram);
  !h

let dump_state t buf =
  Printf.bprintf buf "llc.live=%d entries[" t.live;
  Array.iter
    (function
      | None -> Buffer.add_char buf '-'
      | Some e ->
        Printf.bprintf buf "(ph=%d c=%d l=%d to=%d s=%d w=%d lk=%b wb=%b@%d r=%b p=%d ts=%d["
          (phase_code e.e_phase) e.e_core e.e_line (sig_msi e.e_to) e.e_set
          e.e_way e.e_locks_way e.e_needs_wb e.e_wb_line e.e_retry
          (Hashtbl.hash e.e_pending)
          (List.length e.e_to_send);
        List.iter (fun x -> Printf.bprintf buf "%d;" (Hashtbl.hash x)) e.e_to_send;
        Printf.bprintf buf "] blk[";
        List.iter (fun x -> Printf.bprintf buf "%d;" x) e.e_blocked;
        Printf.bprintf buf "] dq=%d)"
          (match e.e_dq_kind with Dq_read -> 0 | Dq_wb -> 1))
    t.entries;
  Printf.bprintf buf "] pipe=%d[" (Fifo.length t.pipe);
  Fifo.iter
    (fun (exit_at, msg) -> Printf.bprintf buf "(%d,%d)" exit_at (Hashtbl.hash msg))
    t.pipe;
  Buffer.add_string buf "] retryq[";
  Array.iter
    (fun q ->
      Fifo.iter (fun x -> Printf.bprintf buf "%d;" x) q;
      Buffer.add_char buf '|')
    t.retryq;
  Buffer.add_string buf "] uqs[";
  Array.iter
    (fun q ->
      Fifo.iter (fun x -> Printf.bprintf buf "%d;" x) q;
      Buffer.add_char buf '|')
    t.uqs;
  Buffer.add_string buf "] dq[";
  Fifo.iter (fun x -> Printf.bprintf buf "%d;" x) t.dq;
  Printf.bprintf buf "] dqp=%s links["
    (match t.dq_pending_read with None -> "-" | Some idx -> string_of_int idx);
  Array.iter
    (fun l ->
      Buffer.add_string buf "rq=";
      Fifo.iter (fun m -> Printf.bprintf buf "%d;" (Hashtbl.hash m)) l.Link.rq;
      Buffer.add_string buf " rs=";
      Fifo.iter (fun m -> Printf.bprintf buf "%d;" (Hashtbl.hash m)) l.Link.rs;
      Buffer.add_string buf " p2c=";
      Fifo.iter (fun m -> Printf.bprintf buf "%d;" (Hashtbl.hash m)) l.Link.p2c;
      Buffer.add_char buf '|')
    t.links;
  Buffer.add_string buf "] dram=";
  Controller.dump_state t.dram buf
