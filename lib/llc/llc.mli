(** Shared, inclusive, MSI-directory last-level cache — both the baseline
    RiscyOO microarchitecture (paper Figure 2) and the MI6 strongly
    timing-independent variant (Figure 3).

    Structure common to both: every incoming message (L1 upgrade request,
    L1 downgrade response, DRAM response) flows through a fixed-latency,
    never-backpressured cache-access pipeline; upgrade requests reserve an
    MSHR before entry; ready responses are queued (as MSHR indices) in UQ;
    DRAM work is queued in DQ; a Downgrade-L1 logic sends downgrade
    requests to child caches.

    The {!security} knobs select the Figure 3 changes one by one:
    - [round_robin_arbiter]: per-core input merge + strict round-robin slot
      (cycle T admits core T mod N, a slot is wasted if that core is idle)
      instead of the baseline two-level priority mux;
    - [split_uq]: one UQ per core (head-of-line blocking confined to a
      core) instead of one shared UQ;
    - [per_partition_downgrade]: duplicated Downgrade-L1 logic per MSHR
      partition instead of one shared scanner;
    - [dq_retry]: every DQ dequeue takes exactly one cycle — a replacement
      completion sends only its writeback, sets the entry's retry bit, and
      re-enters the pipeline as a pure miss — instead of the baseline
      blocking the DQ port for a second cycle to send writeback and read
      back-to-back;
    - [partitioned_mshrs]: MSHRs statically divided among cores.

    The MSHR file may additionally be sliced into banks by low set-index
    bits (the MISS experiment, Section 7.3); [strict_bank_stall] reproduces
    the paper's pessimistic FPGA model in which one full bank stalls all
    allocation. *)

type security = {
  partitioned_mshrs : bool;
  round_robin_arbiter : bool;
  split_uq : bool;
  per_partition_downgrade : bool;
  dq_retry : bool;
}

val baseline_security : security
val mi6_security : security

type config = {
  index : Index.t;
  ways : int;
  mshrs : int;  (** total MSHR entries *)
  mshr_banks : int;  (** 1 = unbanked *)
  strict_bank_stall : bool;
  pipeline_latency : int;
  cores : int;
  repl_seed : int;
}

(** 1 MB / 16-way / 1024-set flat-indexed LLC with 16 MSHRs and a 4-cycle
    pipeline, per Figure 4. *)
val default_config : cores:int -> config

type t

val create :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  config ->
  security:security ->
  links:Link.t array ->
  dram:Controller.t ->
  stats:Stats.t ->
  t

(** [tick t ~now] advances the LLC and its DRAM controller one cycle.
    Call after the L1s' ticks with the same [now]. *)
val tick : t -> now:int -> unit

(** [busy t] — any MSHR active or message queued (used to detect
    quiescence). *)
val busy : t -> bool

(** [probe t ~line] — line present in the LLC (tests and attack agents). *)
val probe : t -> line:int -> bool

(** [occupancy t] is the number of valid lines. *)
val occupancy : t -> int

(** MSHR-occupancy distribution, one sample per tick. *)
val mshr_occupancy : t -> Histogram.t

(** Currently allocated MSHR entries (instantaneous occupancy). *)
val live_mshrs : t -> int

(** [structural_signature t] folds the LLC's structure state — live MSHR
    entries and their phases, the pipeline/retry/UQ/DQ queues, the child
    links, and the DRAM controller — into a {!Statesig} hash.  The cache
    array, directory metadata, and replacement state are excluded: they
    only change in cycles that also move an MSHR or a queue. *)
val structural_signature : t -> int

(** [dump_state t buf] appends a labelled rendering of the same state
    [structural_signature] folds (the quiet-cycle oracle). *)
val dump_state : t -> Buffer.t -> unit

(** [free_mshrs_for t ~core ~line] — allocation headroom visible to a
    core's next request (tests of the MSHR channels). *)
val free_mshrs_for : t -> core:int -> line:int -> int

(** Value snapshot of {e all} behavior-relevant state: MSHRs, every
    queue, the tag array with directory metadata, replacement state, the
    child links (owned here; the L1s share the same [Link.t] values), and
    the DRAM controller. *)
type checkpoint

val save : t -> checkpoint

(** [restore t ck] rewinds the LLC (links and DRAM included) in place. *)
val restore : t -> checkpoint -> unit

(** [invalidate_region t ~geometry ~region] drops every line whose address
    falls in the DRAM region; monitor support for scrubbing a region
    before reallocation (Section 6: L2 sets need only be scrubbed when
    reallocating physical memory).  Requires [not (busy t)]. *)
val invalidate_region : t -> geometry:Addr.regions -> region:int -> unit
