(** A complete coherent memory hierarchy: N private L1s, their links, the
    shared LLC, and a DRAM controller, advanced in lock-step.

    This is the substrate under the OoO cores in the full machine, and is
    also driven directly by request agents in the side-channel tests and
    examples: an agent issues line requests for its core and observes the
    exact cycle each completes — precisely the attacker's view in the
    paper's threat model. *)

type dram_kind =
  | Const_dram of { latency : int; max_outstanding : int }
  | Reorder_dram of Fr_fcfs.config

type t

val create :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  ?l1:L1.config ->
  ?link_depth:int ->
  llc:Llc.config ->
  security:Llc.security ->
  dram:dram_kind ->
  stats:Stats.t ->
  unit ->
  t

val cores : t -> int
val now : t -> int
val l1 : t -> core:int -> L1.t
val llc : t -> Llc.t

(** [can_accept t ~core] — the core's L1 can take a request this cycle. *)
val can_accept : t -> core:int -> bool

(** [request t ~core ~line ~store ~id] issues an access.  Raises if the L1
    is not ready. *)
val request : t -> core:int -> line:int -> store:bool -> id:int -> unit

(** [tick t] advances one cycle (L1s, then LLC+DRAM). *)
val tick : t -> unit

(** [take_completions t ~core] drains (id, completion_cycle) pairs
    delivered since the last call, oldest first. *)
val take_completions : t -> core:int -> (int * int) list

(** [quiescent t] — no request in flight anywhere. *)
val quiescent : t -> bool

(** [run_until_quiescent t ~max_cycles] ticks until quiescent; returns
    cycles spent.  Raises [Failure] on timeout (deadlock detector for
    tests). *)
val run_until_quiescent : t -> max_cycles:int -> int
