type req = { read : bool; line : int; tag : int }

type t =
  | Const of Dram.t * int
  | Reorder of Fr_fcfs.t * int

let constant ?trace ~latency ~max_outstanding ~stats () =
  Const (Dram.create ?trace ~latency ~max_outstanding ~stats (), max_outstanding)

let reordering ?trace cfg ~stats =
  Reorder (Fr_fcfs.create ?trace cfg ~stats, cfg.Fr_fcfs.max_outstanding)

let can_accept = function
  | Const (d, _) -> Dram.can_accept d
  | Reorder (d, _) -> Fr_fcfs.can_accept d

let accept t ~now { read; line; tag } =
  match t with
  | Const (d, _) -> Dram.accept d ~now { Dram.read; line; tag }
  | Reorder (d, _) -> Fr_fcfs.accept d ~now { Fr_fcfs.read; line; tag }

let tick t ~now ~respond =
  match t with
  | Const (d, _) -> Dram.tick d ~now ~respond
  | Reorder (d, _) -> Fr_fcfs.tick d ~now ~respond

let outstanding = function
  | Const (d, _) -> Dram.outstanding d
  | Reorder (d, _) -> Fr_fcfs.outstanding d

let max_outstanding = function Const (_, m) -> m | Reorder (_, m) -> m

type checkpoint = Ck_const of Dram.checkpoint | Ck_reorder of Fr_fcfs.checkpoint

let save = function
  | Const (d, _) -> Ck_const (Dram.save d)
  | Reorder (d, _) -> Ck_reorder (Fr_fcfs.save d)

let restore t ck =
  match (t, ck) with
  | Const (d, _), Ck_const c -> Dram.restore d c
  | Reorder (d, _), Ck_reorder c -> Fr_fcfs.restore d c
  | _ -> invalid_arg "Controller.restore: checkpoint from a different model"

let structural_signature = function
  | Const (d, _) -> Dram.structural_signature d
  | Reorder (d, _) -> Fr_fcfs.structural_signature d

let dump_state t buf =
  match t with
  | Const (d, _) -> Dram.dump_state d buf
  | Reorder (d, _) -> Fr_fcfs.dump_state d buf
