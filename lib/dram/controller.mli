(** Uniform front for the two DRAM controller models, so the LLC is
    agnostic to which one is plugged in. *)

type req = { read : bool; line : int; tag : int }

type t

val constant :
  ?trace:Trace.t -> latency:int -> max_outstanding:int -> stats:Stats.t -> unit -> t

val reordering : ?trace:Trace.t -> Fr_fcfs.config -> stats:Stats.t -> t
val can_accept : t -> bool
val accept : t -> now:int -> req -> unit
val tick : t -> now:int -> respond:(tag:int -> line:int -> unit) -> unit
val outstanding : t -> int
val max_outstanding : t -> int

(** Value snapshot of the active backend's state. *)
type checkpoint

val save : t -> checkpoint

(** [restore t ck] — raises [Invalid_argument] if [ck] came from the
    other backend. *)
val restore : t -> checkpoint -> unit

(** Fold of the active backend's structure state for the quiet-cycle
    detector (see {!Mi6_util.Statesig}). *)
val structural_signature : t -> int

(** Detailed render of the same state, for the byte-compare oracle. *)
val dump_state : t -> Buffer.t -> unit
