(** First-Ready, First-Come-First-Served reordering DRAM controller.

    This is the controller the paper {e rejects} for MI6 (Section 5.2):
    it reorders requests so that requests hitting a bank's open row go
    back-to-back, which maximizes bandwidth but makes one program's latency
    depend on another program's bank locality — a cross-domain timing
    channel.  It exists here to demonstrate that leak (see the DRAM-bank
    channel test and bench) and to justify the constant-latency choice. *)

type req = { read : bool; line : int; tag : int }

type config = {
  banks : int;  (** power of two *)
  row_lines : int;  (** lines per row (row size / 64) *)
  hit_latency : int;  (** open-row access *)
  miss_latency : int;  (** row activate + access *)
  max_outstanding : int;
}

val default_config : config

type t

val create : ?trace:Trace.t -> config -> stats:Stats.t -> t
val can_accept : t -> bool
val accept : t -> now:int -> req -> unit
val tick : t -> now:int -> respond:(tag:int -> line:int -> unit) -> unit
val outstanding : t -> int

(** [bank_of cfg ~line] is the bank index for a line (low-order line bits,
    standard interleaving). *)
val bank_of : config -> line:int -> int

(** Value snapshot of the waiting queue, per-bank service state (open
    rows included), and response fifo. *)
type checkpoint

val save : t -> checkpoint
val restore : t -> checkpoint -> unit

(** Fold of queue / bank / response state for the quiet-cycle detector
    (see {!Mi6_util.Statesig}). *)
val structural_signature : t -> int

(** Detailed render of the same state, for the byte-compare oracle. *)
val dump_state : t -> Buffer.t -> unit
