type req = { read : bool; line : int; tag : int }

type config = {
  banks : int;
  row_lines : int;
  hit_latency : int;
  miss_latency : int;
  max_outstanding : int;
}

let default_config =
  {
    banks = 8;
    row_lines = 128; (* 8 KB rows *)
    hit_latency = 60;
    miss_latency = 120;
    max_outstanding = 24;
  }

type waiting = { w_req : req; w_seq : int }

type bank = {
  mutable open_row : int option;
  mutable busy_until : int;
  mutable current : (req * int) option; (* request in service, done_at *)
}

type t = {
  cfg : config;
  stats : Stats.t;
  trace : Trace.t;
  banks : bank array;
  mutable queue : waiting list; (* arrival order, oldest first *)
  mutable seq : int;
  mutable accepted_at : int;
  ready : (int * req) Fifo.t; (* done_at, req — completed, pending respond *)
}

let create ?(trace = Trace.null) cfg ~stats =
  {
    cfg;
    stats;
    trace;
    banks =
      Array.init cfg.banks (fun _ ->
          { open_row = None; busy_until = 0; current = None });
    queue = [];
    seq = 0;
    accepted_at = -1;
    ready = Fifo.create ~capacity:cfg.max_outstanding;
  }

let bank_of (cfg : config) ~line = line land (cfg.banks - 1)
let row_of (cfg : config) ~line = line / cfg.banks / cfg.row_lines

let outstanding t =
  List.length t.queue
  + Array.fold_left
      (fun n b -> n + match b.current with Some _ -> 1 | None -> 0)
      0 t.banks
  + Fifo.length t.ready

let can_accept t = outstanding t < t.cfg.max_outstanding

let accept t ~now req =
  if not (can_accept t) then failwith "Fr_fcfs.accept: backpressured";
  if t.accepted_at = now then failwith "Fr_fcfs.accept: two requests in one cycle";
  t.accepted_at <- now;
  Stats.incr t.stats (if req.read then "dram.reads" else "dram.writes");
  t.queue <- t.queue @ [ { w_req = req; w_seq = t.seq } ];
  t.seq <- t.seq + 1

(* FR-FCFS scheduling: for each idle bank, prefer the oldest request that
   hits the open row; otherwise the oldest request for that bank. *)
let schedule t ~now =
  Array.iteri
    (fun bi bank ->
      if bank.current = None && bank.busy_until <= now then begin
        let for_bank =
          List.filter (fun w -> bank_of t.cfg ~line:w.w_req.line = bi) t.queue
        in
        let pick =
          let hits =
            List.filter
              (fun w -> bank.open_row = Some (row_of t.cfg ~line:w.w_req.line))
              for_bank
          in
          match (hits, for_bank) with
          | w :: _, _ -> Some (w, true)
          | [], w :: _ -> Some (w, false)
          | [], [] -> None
        in
        match pick with
        | None -> ()
        | Some (w, row_hit) ->
          t.queue <- List.filter (fun x -> x.w_seq <> w.w_seq) t.queue;
          let lat =
            if row_hit then t.cfg.hit_latency else t.cfg.miss_latency
          in
          if row_hit then Stats.incr t.stats "dram.row_hits"
          else Stats.incr t.stats "dram.row_misses";
          if Trace.active t.trace Trace.Dram then
            Trace.emit t.trace ~now
              (Trace.Dram_cmd
                 { bank = bi; read = w.w_req.read; row_hit; line = w.w_req.line });
          bank.open_row <- Some (row_of t.cfg ~line:w.w_req.line);
          bank.current <- Some (w.w_req, now + lat)
      end)
    t.banks

let tick t ~now ~respond =
  schedule t ~now;
  (* Collect finished bank operations. *)
  Array.iter
    (fun bank ->
      match bank.current with
      | Some (req, done_at) when done_at <= now ->
        bank.current <- None;
        bank.busy_until <- now;
        if req.read then Fifo.enq t.ready (done_at, req)
      | _ -> ())
    t.banks;
  (* One response per cycle on the shared data bus. *)
  match Fifo.peek_opt t.ready with
  | Some (_, req) ->
    ignore (Fifo.deq t.ready);
    respond ~tag:req.tag ~line:req.line
  | None -> ()

(* Checkpoint/restore: bank records are mutable and copied by value;
   the waiting queue and ready fifo hold immutable payloads. *)
type checkpoint = {
  ck_banks : bank array;
  ck_queue : waiting list;
  ck_seq : int;
  ck_accepted_at : int;
  ck_ready : (int * req) list;
}

let copy_bank b = { b with open_row = b.open_row }

let save t =
  {
    ck_banks = Array.map copy_bank t.banks;
    ck_queue = t.queue;
    ck_seq = t.seq;
    ck_accepted_at = t.accepted_at;
    ck_ready = Fifo.to_list t.ready;
  }

let restore t ck =
  Array.iteri (fun i b -> t.banks.(i) <- copy_bank b) ck.ck_banks;
  t.queue <- ck.ck_queue;
  t.seq <- ck.ck_seq;
  t.accepted_at <- ck.ck_accepted_at;
  Fifo.assign t.ready ck.ck_ready

(* Structure state for the quiet-cycle detector: waiting queue, per-bank
   service state, and the response fifo.  Open rows are included — a row
   opened this cycle changes future timing even if the queues look the
   same. *)
let structural_signature t =
  let h = ref Statesig.empty in
  let i v = h := Statesig.mix !h v in
  let req r =
    h := Statesig.mix_bool !h r.read;
    i r.line;
    i r.tag
  in
  i (List.length t.queue);
  List.iter
    (fun w ->
      req w.w_req;
      i w.w_seq)
    t.queue;
  Array.iter
    (fun b ->
      i (match b.open_row with None -> -1 | Some r -> r);
      i b.busy_until;
      match b.current with
      | None -> i (-1)
      | Some (r, done_at) ->
        req r;
        i done_at)
    t.banks;
  i t.seq;
  i (Fifo.length t.ready);
  Fifo.iter
    (fun (done_at, r) ->
      i done_at;
      req r)
    t.ready;
  !h

let dump_state t buf =
  let req r = Printf.bprintf buf "(%b,%d,%d)" r.read r.line r.tag in
  Printf.bprintf buf "frfcfs.q=%d[" (List.length t.queue);
  List.iter
    (fun w ->
      req w.w_req;
      Printf.bprintf buf "@%d;" w.w_seq)
    t.queue;
  Buffer.add_string buf "] banks[";
  Array.iter
    (fun b ->
      Printf.bprintf buf "row=%s busy=%d cur="
        (match b.open_row with None -> "-" | Some r -> string_of_int r)
        b.busy_until;
      (match b.current with
      | None -> Buffer.add_char buf '-'
      | Some (r, done_at) ->
        req r;
        Printf.bprintf buf "@%d" done_at);
      Buffer.add_char buf '|')
    t.banks;
  Printf.bprintf buf "] seq=%d ready=%d[" t.seq (Fifo.length t.ready);
  Fifo.iter
    (fun (done_at, r) ->
      req r;
      Printf.bprintf buf "@%d;" done_at)
    t.ready;
  Buffer.add_char buf ']'
