type req = { read : bool; line : int; tag : int }

type inflight = { req : req; done_at : int }

type t = {
  lat : int;
  max_outstanding : int;
  stats : Stats.t;
  trace : Trace.t;
  q : inflight Fifo.t;
  mutable accepted_at : int; (* cycle of last accept, for 1/cycle limit *)
}

let create ?(trace = Trace.null) ~latency ~max_outstanding ~stats () =
  if latency <= 0 || max_outstanding <= 0 then invalid_arg "Dram.create";
  {
    lat = latency;
    max_outstanding;
    stats;
    trace;
    q = Fifo.create ~capacity:max_outstanding;
    accepted_at = -1;
  }

let latency t = t.lat
let outstanding t = Fifo.length t.q

let can_accept t = Fifo.length t.q < t.max_outstanding

let accept t ~now req =
  if not (can_accept t) then failwith "Dram.accept: backpressured";
  if t.accepted_at = now then failwith "Dram.accept: two requests in one cycle";
  t.accepted_at <- now;
  Stats.incr t.stats (if req.read then "dram.reads" else "dram.writes");
  if Trace.active t.trace Trace.Dram then
    Trace.emit t.trace ~now
      (Trace.Dram_cmd { bank = 0; read = req.read; row_hit = false; line = req.line });
  Fifo.enq t.q { req; done_at = now + t.lat }

let tick t ~now ~respond =
  (* Constant latency + in-order acceptance means the head is always the
     next to complete. *)
  let rec drain_writes () =
    match Fifo.peek_opt t.q with
    | Some { req = { read = false; _ }; done_at } when done_at <= now ->
      ignore (Fifo.deq t.q);
      drain_writes ()
    | _ -> ()
  in
  drain_writes ();
  match Fifo.peek_opt t.q with
  | Some { req = { read = true; line; tag }; done_at } when done_at <= now ->
    ignore (Fifo.deq t.q);
    respond ~tag ~line;
    drain_writes ()
  | _ -> ()

(* Checkpoint/restore: queue contents plus the accept-rate limiter. *)
type checkpoint = { ck_q : inflight list; ck_accepted_at : int }

let save t = { ck_q = Fifo.to_list t.q; ck_accepted_at = t.accepted_at }

let restore t ck =
  Fifo.assign t.q ck.ck_q;
  t.accepted_at <- ck.ck_accepted_at

(* Structure state for the quiet-cycle detector: the in-flight queue is
   the only cross-cycle mutable state (accepted_at only changes when the
   queue does). *)
let structural_signature t =
  let h = ref (Statesig.mix Statesig.empty (Fifo.length t.q)) in
  Fifo.iter
    (fun { req = { read; line; tag }; done_at } ->
      h := Statesig.mix_bool !h read;
      h := Statesig.mix !h line;
      h := Statesig.mix !h tag;
      h := Statesig.mix !h done_at)
    t.q;
  !h

let dump_state t buf =
  Printf.bprintf buf "dram.q=%d[" (Fifo.length t.q);
  Fifo.iter
    (fun { req = { read; line; tag }; done_at } ->
      Printf.bprintf buf "(%b,%d,%d,%d)" read line tag done_at)
    t.q;
  Buffer.add_char buf ']'
