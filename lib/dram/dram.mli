(** Constant-latency DRAM controller (the paper's evaluation model:
    120-cycle latency, at most 24 outstanding requests, one accepted per
    cycle).

    Constant latency is a {e security requirement} for MI6: a reordering
    controller lets one protection domain's bank locality change another
    domain's timing (Section 5.2, "DRAM Controller Latency").  The
    contrasting reordering controller lives in {!Fr_fcfs}.

    Reads produce a response carrying the requester's tag; writebacks
    complete silently.  Responses are delivered at most one per cycle, in
    completion order — and since acceptance is one per cycle and latency is
    constant, responses never bunch up; the DRAM-response port needs no
    backpressure (Section 5.4.1). *)

type req = { read : bool; line : int; tag : int }

type t

val create :
  ?trace:Trace.t -> latency:int -> max_outstanding:int -> stats:Stats.t -> unit -> t
val latency : t -> int

(** [can_accept t] — backpressure signal ([max_outstanding] reached or a
    request was already accepted this cycle). *)
val can_accept : t -> bool

(** [accept t ~now req] takes ownership of a request.  Raises [Failure]
    when [can_accept] is false. *)
val accept : t -> now:int -> req -> unit

(** [tick t ~now ~respond] must be called once per cycle {e after} any
    [accept] for that cycle; delivers at most one read response. *)
val tick : t -> now:int -> respond:(tag:int -> line:int -> unit) -> unit

val outstanding : t -> int

(** Value snapshot of the in-flight queue and accept-rate limiter. *)
type checkpoint

val save : t -> checkpoint
val restore : t -> checkpoint -> unit

(** Fold of the in-flight queue for the quiet-cycle detector (see
    {!Mi6_util.Statesig}). *)
val structural_signature : t -> int

(** Detailed render of the same state, for the byte-compare oracle. *)
val dump_state : t -> Buffer.t -> unit
