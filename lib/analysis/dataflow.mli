(** Reusable forward dataflow solving over a {!Cfg.t}.

    A classic worklist fixpoint over a join-semilattice: facts live on node
    {e entries}; the per-node transfer function produces one outgoing fact
    per CFG edge (so analyses can refine along branch edges — prune a
    statically dead edge by returning no fact for it, or inject a weakened
    fact for a speculatively reachable one).

    Termination is the caller's obligation: [join] must be an upper bound
    and the lattice must have no infinite ascending chains reachable from
    the entry fact under [transfer].  The solver additionally bounds the
    iteration count and raises [Diverged] as a defence against
    non-monotone transfer functions. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  (** Least upper bound.  Must be commutative, associative, idempotent. *)
  val join : t -> t -> t
end

exception Diverged

module Forward (L : LATTICE) : sig
  type solution

  (** [solve cfg ~entry ~transfer] runs the worklist to fixpoint.

      [transfer node fact] receives the joined fact at the node's entry
      and returns the fact flowing out along each chosen edge, as
      [(destination pc, fact)] pairs; returning a destination that is not
      a successor in the CFG is allowed (the solver only requires it to
      be a node of the graph — unknown pcs are ignored), which analyses
      use for e.g. speculative wrong-path edges.

      Nodes never reached keep no fact ([fact_at] returns [None]). *)
  val solve :
    Cfg.t ->
    entry:L.t ->
    transfer:(Cfg.node -> L.t -> (int * L.t) list) ->
    solution

  (** Joined fact at a node's entry; [None] when unreachable. *)
  val fact_at : solution -> int -> L.t option

  (** [iter_reachable sol cfg f] applies [f node fact] over reachable
      nodes in ascending pc order (deterministic reporting order). *)
  val iter_reachable : solution -> Cfg.t -> (Cfg.node -> L.t -> unit) -> unit
end
