type t = {
  name : string;
  description : string;
  base : int;
  items : Asm.item list;
  secret : Taint.secret;
  secret_reg : Reg.t option;
  shared : (int * int) list;
  expect_clean : bool;
  expect_clean_speculative : bool;
}

let code_base = 0x1000
let data_base = 0x8000

(* The secret arrives in a0 (or, for the memory witnesses, in the first
   16 bytes of the data window); s1 is the public data pointer. *)
let a0 = Reg.a0
let s1 = Reg.s1
let t0 = Reg.t0
let t1 = Reg.t1
let t2 = Reg.t2
let t3 = Reg.t3
let t4 = Reg.t4
let t5 = Reg.t5

let secret_a0 = { Taint.regs = [ a0 ]; ranges = [] }

let i x = Asm.I x
let alu op rd rs1 rs2 = i (Instr.Alu { op; rd; rs1; rs2 })
let alui op rd rs1 imm = i (Instr.Alu_imm { op; rd; rs1; imm })
let load kind rd rs1 offset = i (Instr.Load { kind; rd; rs1; offset })
let store kind rs1 rs2 offset = i (Instr.Store { kind; rs1; rs2; offset })
let halt = [ i Instr.Wfi ]

(* Filler work so the two sides of a leaky branch retire different
   instruction counts — the BASE machine's cycle count then separates
   the secrets unambiguously.  The chain is dependent (t5 feeds t5), so
   it retires one per cycle, and the long side must outlast the
   machine's fixed ~400-cycle cold-start/drain shadow, under which any
   shorter asymmetry hides. *)
let busy n = List.init n (fun k -> alui Instr.Add t5 t5 (k land 0xF))

let leaky_branch =
  {
    name = "leaky-branch";
    description = "branches on the secret in a0; the two paths do different amounts of work";
    base = code_base;
    items =
      [ Asm.Li (t5, 0); Asm.Br_to (Instr.Beq, a0, Reg.x0, "even") ]
      @ busy 900
      @ [ Asm.J "done"; Asm.Label "even" ]
      @ busy 2
      @ [ Asm.Label "done" ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = false;
    expect_clean_speculative = false;
  }

let leaky_load =
  {
    name = "leaky-load";
    description = "loads from an address derived from the secret in a0 (cache-set channel)";
    base = code_base;
    items =
      [
        Asm.Li (s1, data_base);
        alui Instr.And t0 a0 0xF8;
        alu Instr.Add t0 s1 t0;
        load Instr.Ld t1 t0 0;
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = false;
    expect_clean_speculative = false;
  }

let leaky_store =
  {
    name = "leaky-store";
    description = "stores to an address derived from the secret in a0";
    base = code_base;
    items =
      [
        Asm.Li (s1, data_base);
        Asm.Li (t1, 42);
        alui Instr.And t0 a0 0xF8;
        alu Instr.Add t0 s1 t0;
        store Instr.Sd t0 t1 0;
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = false;
    expect_clean_speculative = false;
  }

let leaky_div =
  {
    name = "leaky-div";
    description = "divides by the secret in a0 (variable-latency operand channel)";
    base = code_base;
    items =
      [
        Asm.Li (t1, 1234567);
        i (Instr.Muldiv { op = Instr.Div; rd = t2; rs1 = t1; rs2 = a0 });
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = false;
    expect_clean_speculative = false;
  }

(* Spectre-v1 shape: the guard is statically always taken, so committed
   execution never reaches the secret-indexed load — but a mispredicted
   branch runs it transiently. *)
let spectre_v1 =
  {
    name = "spectre-v1";
    description =
      "secret-indexed load guarded by an always-taken branch: clean \
       architecturally, leaky down the wrong path";
    base = code_base;
    items =
      [
        Asm.Li (t0, 0);
        Asm.Li (s1, data_base);
        Asm.Br_to (Instr.Beq, t0, Reg.x0, "safe");
        alui Instr.And t1 a0 0xF8;
        alu Instr.Add t1 s1 t1;
        load Instr.Ld t2 t1 0;
        Asm.Label "safe";
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = true;
    expect_clean_speculative = false;
  }

(* Constant-time select: mask = -(a0 & 1); result = mask ? b : a.  The
   secret only ever flows through data, never into an address, branch, or
   divider. *)
let ct_select =
  {
    name = "ct-select";
    description = "branchless select keyed on the secret bit in a0 (constant-time)";
    base = code_base;
    items =
      [
        Asm.Li (s1, data_base);
        load Instr.Ld t1 s1 0;
        load Instr.Ld t2 s1 8;
        alui Instr.And t0 a0 1;
        alu Instr.Sub t0 Reg.x0 t0;
        alu Instr.Xor t3 t1 t2;
        alu Instr.And t3 t3 t0;
        alu Instr.Xor t3 t3 t1;
        store Instr.Sd s1 t3 16;
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = true;
    expect_clean_speculative = true;
  }

(* Constant-time comparison of a 16-byte secret (data window bytes 0..15)
   against a public value (bytes 16..31): fixed trip count, branchless
   accumulation; only the loop counter reaches a branch. *)
let ct_memcmp =
  {
    name = "ct-memcmp";
    description = "fixed-iteration branchless compare of a secret byte string";
    base = code_base;
    items =
      [
        Asm.Li (s1, data_base);
        Asm.Li (t0, 0);
        Asm.Li (t1, 0);
        Asm.Li (t2, 16);
        Asm.Label "loop";
        alu Instr.Add t3 s1 t1;
        load Instr.Lbu t4 t3 0;
        load Instr.Lbu t5 t3 16;
        alu Instr.Xor t4 t4 t5;
        alu Instr.Or t0 t0 t4;
        alui Instr.Add t1 t1 1;
        Asm.Br_to (Instr.Blt, t1, t2, "loop");
        alu Instr.Sltu t0 Reg.x0 t0;
        store Instr.Sd s1 t0 32;
      ]
      @ halt;
    secret = { Taint.regs = []; ranges = [ (data_base, data_base + 16) ] };
    secret_reg = None;
    shared = [];
    expect_clean = true;
    expect_clean_speculative = true;
  }

(* Spectre-v2 shape: the committed path never reaches the indirect jump
   — the guard is statically always taken — but a poisoned BTB sends the
   front end down the fall-through, where the jump target is computed
   from the secret.  The target channel (which BTB set the transient
   jump trains/probes) is the v2 analogue of v1's cache-set channel. *)
let spectre_v2 =
  {
    name = "spectre-v2";
    description =
      "secret-derived indirect jump target behind an always-taken guard: \
       clean architecturally, BTB-poisoning channel down the wrong path";
    base = code_base;
    items =
      [
        Asm.Li (t0, 0);
        Asm.Li (s1, data_base);
        Asm.Br_to (Instr.Beq, t0, Reg.x0, "safe");
        alui Instr.And t1 a0 0xF8;
        alu Instr.Add t1 s1 t1;
        i (Instr.Jalr { rd = Reg.x0; rs1 = t1; offset = 0 });
        Asm.Label "safe";
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = true;
    expect_clean_speculative = false;
  }

(* Speculative store bypass (Spectre-v4): the secret is stored and then
   architecturally overwritten with zero before it is ever loaded, so
   the committed dependent load always reads a public value — but a load
   that issues before the overwriting store drains picks up the stale
   secret and drags it into an address. *)
let ssb =
  {
    name = "ssb";
    description =
      "secret overwritten in memory before a dependent load: clean \
       architecturally, leaky when the load bypasses the overwriting store";
    base = code_base;
    items =
      [
        Asm.Li (s1, data_base);
        store Instr.Sd s1 a0 64;
        store Instr.Sd s1 Reg.x0 64;
        load Instr.Ld t0 s1 64;
        alui Instr.And t0 t0 0xF8;
        alu Instr.Add t0 s1 t0;
        load Instr.Ld t1 t0 0;
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = true;
    expect_clean_speculative = false;
  }

(* RSB underflow (the ret2spec/Spectre-RSB shape): a balanced call/return
   pair fills and drains the return stack; the second [ret] has nothing
   left to pop, so the front end falls back to the BTB's stale prediction
   — which an attacker trains to point at the gadget.  Architecturally
   [ra] has just been rewritten to [landing], so committed execution
   skips the gadget entirely. *)
let rsb_underflow =
  {
    name = "rsb-underflow";
    description =
      "return with an exhausted return-stack: clean architecturally, the \
       predicted (attacker-trained) return target runs a secret-indexed \
       load transiently";
    base = code_base;
    items =
      [
        Asm.Li (s1, data_base);
        Asm.Call "leaf";
        Asm.La (Reg.ra, "landing");
        Asm.Ret;
        Asm.Label "gadget";
        alui Instr.And t1 a0 0xF8;
        alu Instr.Add t1 s1 t1;
        load Instr.Ld t2 t1 0;
        Asm.Label "landing";
      ]
      @ halt
      @ [ Asm.Label "leaf"; Asm.Ret ];
    secret = secret_a0;
    secret_reg = Some a0;
    shared = [];
    expect_clean = true;
    expect_clean_speculative = false;
  }

(* The Citadel shared-memory trio: a declared read-shared window at
   [data_base + 0x100, data_base + 0x200).  Reading it at public indices
   is the sanctioned use; writing it, or indexing it with a secret, is a
   cross-enclave transmitter. *)
let shared_lo = data_base + 0x100
let shared_hi = data_base + 0x200
let shared_window = [ (shared_lo, shared_hi) ]

let shared_leaky_read =
  {
    name = "shared-leaky-read";
    description =
      "victim loads from the declared read-shared region at a \
       secret-derived index (cross-enclave cache-set channel)";
    base = code_base;
    items =
      [
        Asm.Li (s1, shared_lo);
        alui Instr.And t0 a0 0xF8;
        alu Instr.Add t0 s1 t0;
        load Instr.Ld t1 t0 0;
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = shared_window;
    expect_clean = false;
    expect_clean_speculative = false;
  }

let shared_write =
  {
    name = "shared-write";
    description =
      "store into the declared read-shared region: a transmitter the \
       other enclave can time even at a public address";
    base = code_base;
    items =
      [ Asm.Li (s1, shared_lo); Asm.Li (t1, 7); store Instr.Sd s1 t1 0 ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = shared_window;
    expect_clean = false;
    expect_clean_speculative = false;
  }

let ct_shared_read =
  {
    name = "ct-shared-read";
    description =
      "public-index reads from the read-shared region, result stored to \
       private memory (the sanctioned sharing pattern)";
    base = code_base;
    items =
      [
        Asm.Li (s1, shared_lo);
        Asm.Li (t3, data_base);
        load Instr.Ld t1 s1 0;
        load Instr.Ld t2 s1 8;
        alu Instr.Add t1 t1 t2;
        store Instr.Sd t3 t1 0;
      ]
      @ halt;
    secret = secret_a0;
    secret_reg = Some a0;
    shared = shared_window;
    expect_clean = true;
    expect_clean_speculative = true;
  }

let all =
  [ leaky_branch; leaky_load; leaky_store; leaky_div; spectre_v1; spectre_v2;
    ssb; rsb_underflow; shared_leaky_read; shared_write; ct_select; ct_memcmp;
    ct_shared_read ]

let names = List.map (fun w -> w.name) all

let find name = List.find_opt (fun w -> w.name = name) all

let program w = Asm.assemble ~base:w.base w.items

let to_hex w =
  let p = program w in
  let b = Buffer.create 512 in
  Printf.bprintf b "# mi6-lint-program %s\n# %s\n# base 0x%x\n" w.name
    w.description w.base;
  List.iter
    (fun r -> Printf.bprintf b "# secret-reg %s\n" (Reg.name r))
    w.secret.Taint.regs;
  List.iter
    (fun (lo, hi) -> Printf.bprintf b "# secret-range 0x%x:0x%x\n" lo hi)
    w.secret.Taint.ranges;
  List.iter
    (fun (lo, hi) -> Printf.bprintf b "# shared-range 0x%x:0x%x\n" lo hi)
    w.shared;
  Array.iter (fun word -> Printf.bprintf b "%08x\n" word) p.Asm.words;
  Buffer.contents b
