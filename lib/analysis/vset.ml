type t =
  | Bot
  | Fin of int64 list  (* sorted ascending, distinct, 1..max_card members *)
  | Itv of int64 * int64  (* signed bounds, lo < hi *)
  | Top

let max_card = 32
let bot = Bot
let top = Top
let const c = Fin [ c ]

let itv lo hi = if Int64.equal lo hi then Fin [ lo ] else Itv (lo, hi)

let of_list vs =
  match List.sort_uniq Int64.compare vs with
  | [] -> Bot
  | l when List.length l <= max_card -> Fin l
  | l -> itv (List.hd l) (List.nth l (List.length l - 1))

let is_bot v = v = Bot

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Fin x, Fin y -> List.equal Int64.equal x y
  | Itv (la, ha), Itv (lb, hb) -> Int64.equal la lb && Int64.equal ha hb
  | _ -> false

let to_const = function Fin [ c ] -> Some c | _ -> None

let range = function
  | Bot | Top -> None
  | Fin l -> Some (List.hd l, List.nth l (List.length l - 1))
  | Itv (lo, hi) -> Some (lo, hi)

let mem c = function
  | Bot -> false
  | Top -> true
  | Fin l -> List.exists (Int64.equal c) l
  | Itv (lo, hi) -> Int64.compare lo c <= 0 && Int64.compare c hi <= 0

(* a entirely inside b? (used by widen to detect stabilization; a false
   negative only widens more, which stays sound) *)
let leq a b =
  match (a, b) with
  | Bot, _ | _, Top -> true
  | _, Bot | Top, _ -> false
  | Fin x, _ -> List.for_all (fun c -> mem c b) x
  | Itv (la, ha), Itv (lb, hb) ->
    Int64.compare lb la <= 0 && Int64.compare ha hb <= 0
  | Itv _, Fin _ -> false

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Top, _ | _, Top -> Top
  | Fin x, Fin y -> of_list (x @ y)
  | _ ->
    let la, ha = Option.get (range a) and lb, hb = Option.get (range b) in
    itv (min la lb) (max ha hb)

(* The widening ladder: a growing bound snaps outward to the next rung,
   so interval growth takes finitely many widen steps before hitting
   min/max_int.  Rungs bracket the address shapes the analyses meet
   (byte masks, pages, DRAM, 32-bit). *)
let up_rungs =
  [ 0L; 0xFFL; 0xFFFL; 0xFFFFL; 0xF_FFFFL; 0xFFF_FFFFL; 0x7FFF_FFFFL;
    0xFFFF_FFFFL; 0xFFFF_FFFF_FFFL ]

let down_rungs = [ 0L; -0xFFL; -0xFFFFL; -0xFFFF_FFFFL ]

let snap_up x =
  match List.find_opt (fun r -> Int64.compare x r <= 0) up_rungs with
  | Some r -> r
  | None -> Int64.max_int

let snap_down x =
  match List.find_opt (fun r -> Int64.compare r x <= 0) down_rungs with
  | Some r -> r
  | None -> Int64.min_int

let widen a b =
  if leq b a then a
  else
    match join a b with
    | (Bot | Fin _ | Top) as j ->
      (* Finite sets may grow without snapping: cardinality strictly
         increases and is capped at [max_card] before hulling. *)
      j
    | Itv (lo, hi) ->
      let la, ha =
        match range a with Some r -> r | None -> (lo, hi)
      in
      let lo' = if Int64.compare lo la < 0 then snap_down lo else la in
      let hi' = if Int64.compare hi ha > 0 then snap_up hi else ha in
      itv lo' hi'

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

(* Pairwise-exact product of two small sets; [Top] otherwise. *)
let apply2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Fin x, Fin y when List.length x * List.length y <= 2 * max_card ->
    of_list (List.concat_map (fun u -> List.map (f u) y) x)
  | _ -> Top

let add_overflows a b s =
  (* Same-signed operands whose sum flips sign wrapped around. *)
  Int64.compare (Int64.logxor a b) 0L >= 0
  && Int64.compare (Int64.logxor a s) 0L < 0

let interval_add a b =
  match (range a, range b) with
  | Some (la, ha), Some (lb, hb) ->
    let lo = Int64.add la lb and hi = Int64.add ha hb in
    if add_overflows la lb lo || add_overflows ha hb hi then Top
    else itv lo hi
  | _ -> Top

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | (Fin x, Fin y) when List.length x * List.length y <= 2 * max_card ->
    of_list (List.concat_map (fun u -> List.map (Int64.add u) y) x)
  | _ -> interval_add a b

let neg = function
  | Bot -> Bot
  | Top -> Top
  | Fin l -> of_list (List.map Int64.neg l)
  | Itv (lo, hi) ->
    if Int64.equal lo Int64.min_int then Top else itv (Int64.neg hi) (Int64.neg lo)

let sub a b = match (a, b) with Bot, _ | _, Bot -> Bot | _ -> add a (neg b)

(* Known non-negative upper bound of an operand, if any. *)
let nonneg_bound v =
  match range v with
  | Some (lo, hi) when Int64.compare lo 0L >= 0 -> Some hi
  | _ -> None

let band a b =
  match apply2 Int64.logand a b with
  | Top ->
    (* x land y <= y (and >= 0) whenever y >= 0, for any x. *)
    (match (nonneg_bound a, nonneg_bound b) with
    | Some ba, Some bb -> itv 0L (min ba bb)
    | (Some m, None | None, Some m) -> itv 0L m
    | None, None -> Top)
  | v -> v

(* Smallest 2^k - 1 covering m (m >= 0); Top-signalled as None near the
   sign bit. *)
let bit_ceil m =
  if Int64.compare m 0x4000_0000_0000_0000L >= 0 then None
  else begin
    let c = ref 1L in
    while Int64.compare !c m < 0 do
      c := Int64.add (Int64.mul !c 2L) 1L
    done;
    Some !c
  end

let or_xor_bound exact a b =
  match apply2 exact a b with
  | Top -> (
    match (nonneg_bound a, nonneg_bound b) with
    | Some ba, Some bb -> (
      match bit_ceil (max ba bb) with Some c -> itv 0L c | None -> Top)
    | _ -> Top)
  | v -> v

let bor = or_xor_bound Int64.logor
let bxor = or_xor_bound Int64.logxor

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)
(* ------------------------------------------------------------------ *)

let unit_of shift x = Int64.to_int (Int64.shift_right x shift)

let unit_count v ~width ~shift =
  let last x = Int64.add x (Int64.of_int (max 0 (width - 1))) in
  match v with
  | Bot -> Some 0
  | Top -> None
  | Fin l ->
    let units =
      List.concat_map
        (fun a ->
          let u0 = unit_of shift a and u1 = unit_of shift (last a) in
          List.init (u1 - u0 + 1) (fun k -> u0 + k))
        l
    in
    Some (List.length (List.sort_uniq compare units))
  | Itv (lo, hi) ->
    let u0 = unit_of shift lo and u1 = unit_of shift (last hi) in
    Some (u1 - u0 + 1)

let unit_list v ~width ~shift ~max:cap =
  let last x = Int64.add x (Int64.of_int (max 0 (width - 1))) in
  match v with
  | Bot -> Some []
  | Top -> None
  | Fin l ->
    let units =
      List.concat_map
        (fun a ->
          let u0 = unit_of shift a and u1 = unit_of shift (last a) in
          List.init (u1 - u0 + 1) (fun k -> u0 + k))
        l
      |> List.sort_uniq compare
    in
    if List.length units <= cap then Some units else None
  | Itv (lo, hi) ->
    let u0 = unit_of shift lo and u1 = unit_of shift (last hi) in
    if u1 - u0 + 1 <= cap then Some (List.init (u1 - u0 + 1) (fun k -> u0 + k))
    else None

let may_intersect v ~lo ~hi ~width =
  match v with
  | Bot -> false
  | Top -> true
  | _ ->
    let la, ha = Option.get (range v) in
    let ha = Int64.add ha (Int64.of_int (max 0 (width - 1))) in
    Int64.compare la hi < 0 && Int64.compare ha lo >= 0

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Fin l ->
    Printf.sprintf "{%s}"
      (String.concat "," (List.map (Printf.sprintf "0x%Lx") l))
  | Itv (lo, hi) -> Printf.sprintf "[0x%Lx,0x%Lx]" lo hi

let pp ppf v = Format.pp_print_string ppf (to_string v)
