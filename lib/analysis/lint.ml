type finding = { check : string; subject : string; message : string }

type coverage = Drained | Flushed of { entries : int; rate : int }

type structure = { s_name : string; s_coverage : coverage }

(* ------------------------------------------------------------------ *)
(* Purge coverage (Sections 6 and 7.1)                                 *)
(* ------------------------------------------------------------------ *)

(* The per-core stateful structures of Figure 4 and how the purge state
   machine covers each: in-flight structures empty during the quiesce
   phase; retained arrays are flushed at the hardware rates of
   Section 7.1 (predictor tables 8 entries/cycle, caches one line per
   cycle).  Sizes mirror the simulator's modules (Tournament, Btb, Ras,
   L1); keeping them here, statically, is the point — the list is the
   ground truth the purge tests cross-validate. *)
let purge_list ~(core : Core_config.t) ~(l1 : L1.config) =
  let flushed entries rate = Flushed { entries; rate } in
  [
    {
      s_name =
        Printf.sprintf
          "ROB(%d) / IQ(%d) / LQ(%d) / SQ(%d) / SB(%d) in-flight state"
          core.Core_config.rob_entries core.Core_config.iq_entries
          core.Core_config.lq_entries core.Core_config.sq_entries
          core.Core_config.sb_entries;
      s_coverage = Drained;
    };
    { s_name = "rename map + free list"; s_coverage = Drained };
    {
      s_name = "tournament global/choice tables (4096 x 2b)";
      s_coverage = flushed 4096 8;
    };
    {
      s_name = "tournament local history (1024 x 10b)";
      s_coverage = flushed 1024 8;
    };
    { s_name = "BTB (256 entries)"; s_coverage = flushed 256 8 };
    { s_name = "RAS (8 entries)"; s_coverage = flushed 8 8 };
    {
      s_name =
        Printf.sprintf "L1 I (%d lines, 1 line/cycle)"
          (l1.L1.sets * l1.L1.ways);
      s_coverage = flushed (l1.L1.sets * l1.L1.ways) 1;
    };
    {
      s_name =
        Printf.sprintf "L1 D (%d lines, 1 line/cycle)"
          (l1.L1.sets * l1.L1.ways);
      s_coverage = flushed (l1.L1.sets * l1.L1.ways) 1;
    };
    { s_name = "TLBs + translation caches (512 entries)"; s_coverage = flushed 512 8 };
  ]

let required_purge_floor ~core ~l1 =
  List.fold_left
    (fun acc s ->
      match s.s_coverage with
      | Drained -> acc
      | Flushed { entries; rate } -> max acc ((entries + rate - 1) / rate))
    0 (purge_list ~core ~l1)

(* ------------------------------------------------------------------ *)
(* LLC set-partition disjointness (Sections 5.2, 7.2)                  *)
(* ------------------------------------------------------------------ *)

(* Behavioural validation of the index function: sample line numbers of
   every DRAM region (a dense prefix long enough to cycle the low index
   bits, plus the region tail) and collect the sets each region can
   touch.  The paper's invariant is then: region set-usages are
   pairwise equal-or-disjoint, there are at least two classes, and the
   classes tile the whole cache. *)
let region_usage ~geometry idx r =
  let sets = Index.sets idx in
  let bv = Bitvec.create sets in
  let base_line = Addr.region_base geometry r / Addr.line_bytes in
  let region_lines = geometry.Addr.region_bytes / Addr.line_bytes in
  let dense = min region_lines (4 * sets) in
  for k = 0 to dense - 1 do
    Bitvec.set bv (Index.index idx ~line:(base_line + k))
  done;
  for k = max 0 (region_lines - 64) to region_lines - 1 do
    Bitvec.set bv (Index.index idx ~line:(base_line + k))
  done;
  bv

let lint_partitions ~geometry ~name idx =
  let n = geometry.Addr.region_count in
  let usages = Array.init n (region_usage ~geometry idx) in
  let findings = ref [] in
  let f check message = findings := { check; subject = name; message } :: !findings in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        (not (Bitvec.equal usages.(i) usages.(j)))
        && not (Bitvec.disjoint usages.(i) usages.(j))
      then
        f "llc-partition"
          (Printf.sprintf
             "DRAM regions %d and %d share some but not all LLC sets — the \
              index function is not a partition"
             i j)
    done
  done;
  (* Distinct classes + tiling. *)
  let classes =
    Array.to_list usages
    |> List.fold_left
         (fun acc u -> if List.exists (Bitvec.equal u) acc then acc else u :: acc)
         []
  in
  if List.length classes < 2 then
    f "llc-partition"
      (Printf.sprintf
         "a single set-partition class: every DRAM region can evict every \
          LLC set (flat index, Section 7.2 violated)")
  else begin
    let covered =
      List.fold_left (fun acc u -> acc + Bitvec.popcount u) 0 classes
    in
    let sets = Index.sets idx in
    if covered <> sets then
      f "llc-partition"
        (Printf.sprintf
           "partition classes cover %d sets of %d — the classes do not tile \
            the cache"
           covered sets)
  end;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Region permission masks (Section 6.1)                               *)
(* ------------------------------------------------------------------ *)

let lint_region_masks ~subject masks =
  let findings = ref [] in
  let f check message = findings := { check; subject; message } :: !findings in
  (match masks with
  | [] | [ _ ] -> ()
  | (_, first) :: _ ->
    let w = Bitvec.length first in
    List.iter
      (fun (label, m) ->
        if Bitvec.length m <> w then
          f "region-mask-width"
            (Printf.sprintf "mask of %s is %d bits wide, expected %d" label
               (Bitvec.length m) w))
      masks);
  let rec pairs = function
    | [] -> ()
    | (la, a) :: rest ->
      List.iter
        (fun (lb, b) ->
          if Bitvec.length a = Bitvec.length b && not (Bitvec.disjoint a b)
          then
            let shared =
              List.find (fun i -> Bitvec.get b i) (Bitvec.to_indices a)
            in
            f "region-overlap"
              (Printf.sprintf
                 "protection domains %s and %s both own DRAM region %d" la lb
                 shared))
        rest;
      pairs rest
  in
  pairs masks;
  List.rev !findings

let lint_ledger ledger =
  let n = Region.region_count ledger in
  let findings = ref [] in
  let f check message =
    findings := { check; subject = "ledger"; message } :: !findings
  in
  if Region.owner ledger 0 <> Region.Monitor then
    f "monitor-region"
      "region 0 is not held by the security monitor (Section 6.1 static \
       reservation)";
  let label = function
    | Region.Monitor -> "monitor"
    | Region.Os -> "os"
    | Region.Free -> "free"
    | Region.Enclave id -> Printf.sprintf "enclave-%d" id
  in
  let owners = ref [] in
  for r = 0 to n - 1 do
    let o = label (Region.owner ledger r) in
    match List.assoc_opt o !owners with
    | Some bv -> Bitvec.set bv r
    | None ->
      let bv = Bitvec.create n in
      Bitvec.set bv r;
      owners := (o, bv) :: !owners
  done;
  let owners = List.rev !owners in
  let union = Bitvec.create n in
  List.iter (fun (_, bv) -> Bitvec.iter_set (Bitvec.set union) bv) owners;
  if Bitvec.popcount union <> n then
    f "region-coverage"
      (Printf.sprintf "ownership masks cover %d of %d regions"
         (Bitvec.popcount union) n);
  (* Read sharing (Citadel relaxation): declared grants may widen access
     masks across domains, but never on the monitor's region, and never
     implicitly — any cross-domain reach outside a declared share is
     still an ownership violation. *)
  let shared = Region.shared_regions ledger in
  List.iter
    (fun r ->
      if r = 0 then
        f "shared-monitor-region"
          "region 0 (security-monitor memory) carries a read grant — \
           monitor state must never be shared")
    shared;
  let domains =
    let acc = ref [] in
    let add o = if not (List.mem o !acc) then acc := o :: !acc in
    for r = 0 to n - 1 do
      add (Region.owner ledger r);
      List.iter add (Region.readers ledger r)
    done;
    List.rev !acc
  in
  let access who =
    let bv = Bitvec.create n in
    for r = 0 to n - 1 do
      if Region.owner ledger r = who || List.mem who (Region.readers ledger r)
      then Bitvec.set bv r
    done;
    bv
  in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      let bva = access a in
      List.iter
        (fun b ->
          let bvb = access b in
          List.iter
            (fun r ->
              if Bitvec.get bvb r && not (List.mem r shared) then
                f "region-overlap"
                  (Printf.sprintf
                     "protection domains %s and %s both reach DRAM region %d \
                      outside any declared share"
                     (label a) (label b) r))
            (Bitvec.to_indices bva))
        rest;
      pairs rest
  in
  pairs domains;
  List.rev !findings @ lint_region_masks ~subject:"ledger" owners

(* ------------------------------------------------------------------ *)
(* Whole machine configurations                                        *)
(* ------------------------------------------------------------------ *)

let lint_timing ?(geometry = Addr.default_regions) ~name (t : Config.timing) =
  let findings = ref [] in
  let f check message = findings := { check; subject = name; message } :: !findings in
  let core = t.Config.core and llc = t.Config.llc in
  let sec = t.Config.llc_security in
  (* Purge coverage. *)
  if not core.Core_config.flush_on_trap then
    f "purge-on-trap"
      "core does not purge at protection-domain transitions (Section 6: \
       every per-core structure must be scrubbed on trap entry and return)";
  let req = required_purge_floor ~core ~l1:t.Config.l1 in
  if core.Core_config.purge_floor < req then
    f "purge-floor"
      (Printf.sprintf
         "purge_floor %d is below the %d cycles the slowest per-core \
          structure needs at its flush rate (Section 7.1)"
         core.Core_config.purge_floor req);
  (* MSHR vs DRAM bandwidth (Section 5.1: #MSHR <= d_max / 2). *)
  if 2 * llc.Llc.mshrs > t.Config.dram_outstanding then
    f "mshr-vs-dram"
      (Printf.sprintf
         "%d LLC MSHRs exceed d_max/2 = %d: the DRAM controller can be \
          backed up into a cross-domain timing channel (Section 5.1)"
         llc.Llc.mshrs
         (t.Config.dram_outstanding / 2));
  if llc.Llc.mshrs mod llc.Llc.mshr_banks <> 0 then
    f "mshr-banking"
      (Printf.sprintf "%d MSHRs do not divide evenly into %d banks"
         llc.Llc.mshrs llc.Llc.mshr_banks);
  if sec.Llc.partitioned_mshrs && llc.Llc.mshrs mod llc.Llc.cores <> 0 then
    f "mshr-partitioning"
      (Printf.sprintf
         "%d MSHRs cannot be statically partitioned among %d ports"
         llc.Llc.mshrs llc.Llc.cores);
  (* Figure 3 structural knobs. *)
  let knob on check message = if not on then f check message in
  knob sec.Llc.partitioned_mshrs "llc-mshr-sharing"
    "MSHRs are dynamically shared: allocation contention leaks across \
     domains (Figure 3 partitions them statically)";
  knob sec.Llc.round_robin_arbiter "llc-arbiter"
    "input arbiter is a priority mux: grant timing depends on other \
     cores' traffic (Figure 3 uses a strict round-robin slot)";
  knob sec.Llc.split_uq "llc-shared-uq"
    "shared UQ: head-of-line blocking crosses cores (Figure 3 gives each \
     core its own UQ)";
  knob sec.Llc.per_partition_downgrade "llc-shared-downgrade"
    "shared Downgrade-L1 scanner serializes downgrades across partitions";
  knob sec.Llc.dq_retry "llc-dq-port"
    "replacement writeback+read holds the DQ port two cycles: timing \
     depends on other domains' replacements (Figure 3 re-enters via a \
     retry bit)";
  List.rev !findings @ lint_partitions ~geometry ~name llc.Llc.index

(* ------------------------------------------------------------------ *)

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.check f.subject f.message

let finding_to_json f =
  Json.Obj
    [
      ("check", Json.String f.check);
      ("subject", Json.String f.subject);
      ("message", Json.String f.message);
    ]
