type t = Arbiter | Mshr | Uq_dq | Dram | Cache | Walk | Purge | Btb | Rsb

let all = [ Arbiter; Mshr; Uq_dq; Dram; Cache; Walk; Purge; Btb; Rsb ]

let rank = function
  | Arbiter -> 0
  | Mshr -> 1
  | Uq_dq -> 2
  | Dram -> 3
  | Cache -> 4
  | Walk -> 5
  | Purge -> 6
  | Btb -> 7
  | Rsb -> 8

let to_audit = function
  | Arbiter -> Some Audit.Arbiter
  | Mshr -> Some Audit.Mshr
  | Uq_dq -> Some Audit.Uq_dq
  | Dram -> Some Audit.Dram
  | Cache -> Some Audit.Cache
  | Walk -> Some Audit.Walk
  | Purge -> Some Audit.Purge
  | Btb | Rsb -> None

let name ch =
  match ch with
  | Btb -> "btb"
  | Rsb -> "rsb"
  | _ -> Audit.channel_name (Option.get (to_audit ch))

let of_name s = List.find_opt (fun ch -> name ch = s) all

let norm l = List.sort_uniq (fun a b -> compare (rank a) (rank b)) l

(* Everything a memory access's timing travels through on its way to
   DRAM.  Which of these actually separates two secrets depends on the
   configuration ({!closes}); statically they are all candidates. *)
let mem_side = [ Arbiter; Mshr; Uq_dq; Dram; Cache ]

let shift_of bytes =
  let rec go s n = if n <= 1 then s else go (s + 1) (n / 2) in
  go 0 bytes

let line_shift = shift_of Addr.line_bytes
let page_shift = shift_of Addr.page_bytes

(* Can the finding's address set reach >= 2 units of [shift] granularity?
   No target set (branch/div findings) or an unbounded one counts as
   multi: the access pattern is not confined. *)
let multi_unit (f : Taint.finding) shift =
  match f.Taint.target with
  | None -> true
  | Some v -> (
    match Vset.unit_count v ~width:(max 1 f.Taint.width) ~shift with
    | None -> true
    | Some n -> n >= 2)

let is_ret (i : Instr.t) =
  match i with
  | Instr.Jalr { rd; rs1; _ } -> rd = Reg.x0 && rs1 = Reg.ra
  | _ -> false

let infer ~(timing : Config.timing) (f : Taint.finding) =
  let walk = if multi_unit f page_shift then [ Walk ] else [] in
  let base =
    match f.Taint.kind with
    | Taint.Load_address | Taint.Store_address ->
      (if multi_unit f line_shift then mem_side else []) @ walk
    | Taint.Shared_write | Taint.Shared_read ->
      (* A shared-region access contends with the other enclave's own
         accesses even at a single public line. *)
      mem_side @ walk
    | Taint.Branch_condition | Taint.Variable_latency ->
      (* Divergent execution reshapes the whole downstream access
         stream; on a flushing core the purge points shift too. *)
      mem_side @ [ Walk ]
      @ (if timing.Config.core.Core_config.flush_on_trap then [ Purge ] else [])
    | Taint.Jump_target ->
      let front = if f.Taint.rsb || is_ret f.Taint.instr then Rsb else Btb in
      (front :: mem_side) @ [ Walk ]
  in
  norm (if f.Taint.rsb then Rsb :: base else base)

let closes ~(timing : Config.timing) ch =
  let sec = timing.Config.llc_security in
  let llc = timing.Config.llc in
  let core = timing.Config.core in
  let cache_closed () =
    (* Probe the index function: two lines with equal flat index in
       different DRAM regions land in different sets iff the index is
       region-partitioned (Section 7.2). *)
    let lines_per_region =
      Addr.region_base Addr.default_regions 1 / Addr.line_bytes
    in
    Index.index llc.Llc.index ~line:0
    <> Index.index llc.Llc.index ~line:lines_per_region
  in
  let dram_closed () = 2 * llc.Llc.mshrs <= timing.Config.dram_outstanding in
  match ch with
  | Cache -> cache_closed ()
  | Mshr -> sec.Llc.partitioned_mshrs
  | Arbiter -> sec.Llc.round_robin_arbiter
  | Uq_dq -> sec.Llc.split_uq && sec.Llc.dq_retry
  | Dram -> dram_closed ()
  | Walk ->
    (* Walker traffic is ordinary cached memory traffic; it is isolated
       exactly when the set index and the DRAM path are. *)
    cache_closed () && dram_closed ()
  | Purge | Btb | Rsb ->
    (* Flush-on-trap resets predictors and timing state at every domain
       crossing (Section 6). *)
    core.Core_config.flush_on_trap

let open_channels ~timing (f : Taint.finding) =
  let mem_kind =
    match f.Taint.kind with
    | Taint.Load_address | Taint.Store_address | Taint.Shared_read
    | Taint.Shared_write ->
      true
    | _ -> false
  in
  if
    f.Taint.speculative && mem_kind
    && timing.Config.core.Core_config.nonspec_mem
  then
    (* NONSPEC renames memory only at an empty ROB: a wrong-path memory
       access never issues, so the transient transmitter is gone. *)
    []
  else List.filter (fun ch -> not (closes ~timing ch)) (infer ~timing f)

let of_lint_check = function
  | "llc-mshr-sharing" | "mshr-partitioning" | "mshr-banking" -> Some Mshr
  | "llc-arbiter" -> Some Arbiter
  | "llc-shared-uq" | "llc-dq-port" | "llc-shared-downgrade" -> Some Uq_dq
  | "mshr-vs-dram" -> Some Dram
  | "llc-partition" -> Some Cache
  | "purge-on-trap" | "purge-floor" -> Some Purge
  | "monitor-region" | "region-coverage" | "region-overlap"
  | "region-mask-width" | "shared-monitor-region" | "shared-owner" ->
    (* Ownership/ledger violations expose cross-domain DRAM placement. *)
    Some Dram
  | _ -> None

let to_json chs = Json.List (List.map (fun ch -> Json.String (name ch)) chs)
