(** Value-set abstract domain for 64-bit values (addresses, mostly).

    The taint analyzer ({!Taint}) layers this under its taint bit so a
    secret-{e dependent} address can still be statically {e bounded}: a
    classic Spectre gadget computes [base + (secret & 0xF8)], whose value
    set is the interval [\[base, base+0xF8\]] even though the value is
    tainted.  {!Channel} then resolves such a set to the cache lines, LLC
    sets, pages, and DRAM regions the access can touch — the difference
    between "this load leaks" and "this load leaks {e through these
    structures}".

    Four layers, coarsening as they grow:

    - [Bot] — no value (unreachable);
    - a small finite set (at most {!max_card} members, kept sorted);
    - a signed interval [\[lo, hi\]];
    - [Top] — any 64-bit value.

    Arithmetic on small finite sets is exact (pairwise application of the
    concrete operation, which for RV64 ALU ops is supplied by the caller
    so the domain cannot drift from the reference semantics); interval
    transfer functions are sound over-approximations with overflow
    collapsing to [Top].

    {b Widening}: the dataflow join must terminate on loops that bump an
    address every iteration.  {!widen} grows finite sets at most
    {!max_card} times, then snaps growing interval bounds outward to a
    fixed threshold ladder — every ascending chain through {!widen} is
    finite (the property test iterates this to a fixpoint). *)

type t

val max_card : int
(** Finite-set cardinality cap (32); beyond it a set becomes an
    interval hull. *)

val bot : t
val top : t
val const : int64 -> t

(** [of_list vs] — the finite set of [vs] (hulled if over {!max_card});
    [bot] when empty. *)
val of_list : int64 list -> t

val is_bot : t -> bool
val equal : t -> t -> bool

(** [to_const v] — [Some c] iff [v] is the singleton [c]. *)
val to_const : t -> int64 option

(** [mem c v] — may [v] take the concrete value [c]? *)
val mem : int64 -> t -> bool

(** [range v] — signed bounds [(lo, hi)]; [None] for [Bot] and [Top]. *)
val range : t -> (int64 * int64) option

val join : t -> t -> t

(** [widen old next] — an upper bound of [join old next] on which every
    ascending chain stabilizes: finite sets grow at most {!max_card}
    steps, then growing interval bounds snap outward along a fixed
    threshold ladder. *)
val widen : t -> t -> t

(** Exact wrap-around arithmetic on small finite sets, sound interval
    arithmetic otherwise (overflow collapses to [Top]). *)
val add : t -> t -> t

val sub : t -> t -> t

(** [band a b] — bitwise and.  Pairwise-exact on small sets; otherwise,
    if either operand is known non-negative with upper bound [m], the
    result lies in [\[0, m\]]. *)
val band : t -> t -> t

(** [bor]/[bxor] — pairwise-exact on small sets; when both operands are
    known non-negative the result is bounded by the next power of two
    above both. *)
val bor : t -> t -> t

val bxor : t -> t -> t

(** [apply2 f a b] — pairwise application of a concrete operation over
    two small finite sets ([Top] when either side is unbounded or the
    product is large).  The caller supplies the exact RV64 semantics. *)
val apply2 : (int64 -> int64 -> int64) -> t -> t -> t

(** {2 Resolution against address geometry}

    An access touches bytes [\[a, a+width)] for every [a] in the set.
    A {e unit} is [byte >> shift]: shift 6 gives cache lines, shift 12
    pages, and a region shift gives DRAM regions. *)

(** [unit_count v ~width ~shift] — number of distinct units the access
    can touch; [None] when unbounded ([Top]). *)
val unit_count : t -> width:int -> shift:int -> int option

(** [unit_list v ~width ~shift ~max] — the distinct units, ascending,
    when there are at most [max] of them. *)
val unit_list : t -> width:int -> shift:int -> max:int -> int list option

(** [may_intersect v ~lo ~hi ~width] — can any accessed byte fall in
    [\[lo, hi)]?  [Top] intersects everything. *)
val may_intersect : t -> lo:int64 -> hi:int64 -> width:int -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
