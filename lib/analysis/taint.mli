(** Static secret-taint / constant-time analysis over decoded RV64IM
    programs (paper Section 2 threat model; Citadel's follow-up
    constant-time discipline).

    A forward abstract interpretation on the {!Dataflow} framework.  Each
    register carries a taint bit plus an optional known constant (the
    constant half exists so data-independent control flow can be resolved
    statically); memory is tracked byte-precise for statically known
    addresses, with a sound conservative blur for stores through unknown
    pointers.  The constant folder delegates to {!Mi6_func.Fsim}'s exact
    RV64 semantics, so it cannot drift from the reference model.

    The analysis flags the three constant-time violations the MI6/Citadel
    threat model cares about, plus secret-dependent indirect jumps:

    - a conditional branch whose condition reads tainted data;
    - a load/store/AMO whose {e address} reads tainted data (cache and
      DRAM side channels; secret {e values} may flow to memory freely);
    - a variable-latency operation ([div]/[divu]/[rem]/[remu] and their
      W-forms) with a tainted operand;
    - a [jalr] whose target register is tainted.

    {b Speculative mode} ([window > 0]): conditional branches whose
    direction is statically known (both operands constant) normally
    propagate facts only along the taken direction; with a speculation
    window, the architecturally dead edge is also followed for up to
    [window] wrong-path instructions, modeling Spectre-style transient
    execution past a resolved-in-the-future branch.  Speculative mode
    also weakens stores to never scrub a byte's taint — a younger load
    may bypass an older store and observe the stale value (speculative
    store bypass, Spectre-v4).  Findings reachable only that way are
    labeled [speculative]. *)

type kind =
  | Branch_condition
  | Jump_target
  | Load_address
  | Store_address
  | Variable_latency

val kind_name : kind -> string

type finding = {
  pc : int;
  kind : kind;
  speculative : bool;  (** only reachable through wrong-path execution *)
  instr : Instr.t;
  detail : string;
}

(** The secret set: registers tainted at program entry, and byte ranges
    [\[lo, hi)] of physical memory holding secrets. *)
type secret = { regs : Reg.t list; ranges : (int * int) list }

val no_secret : secret

(** [analyze ?window ~secret cfg] — findings sorted by [(pc, kind)].
    [window = 0] (default) analyzes committed execution only. *)
val analyze : ?window:int -> secret:secret -> Cfg.t -> finding list

(** [analyze_program ?window ~secret p] — decode + CFG + analyze.
    [Error] when the image does not decode. *)
val analyze_program :
  ?window:int -> secret:secret -> Asm.program -> (finding list, string) result

val pp_finding : Format.formatter -> finding -> unit
val finding_to_json : finding -> Json.t
