(** Static secret-taint / constant-time analysis over decoded RV64IM
    programs (paper Section 2 threat model; Citadel's follow-up
    constant-time discipline).

    A forward abstract interpretation on the {!Dataflow} framework.  Each
    register carries a taint bit plus a {!Vset} value set — the two are
    independent, so a secret-{e dependent} address can still be
    statically {e bounded} ([base + (secret & 0xF8)] is tainted and
    confined to an interval), which is what lets {!Channel} resolve a
    finding to concrete cache sets and DRAM regions.  Memory is tracked
    byte-precise for statically known addresses, with a sound
    conservative blur for stores through unknown pointers.  Exact
    arithmetic delegates to {!Mi6_func.Fsim}'s RV64 semantics, so the
    domain cannot drift from the reference model.

    The analysis flags the constant-time violations the MI6/Citadel
    threat model cares about:

    - a conditional branch whose condition reads tainted data;
    - a load/store/AMO whose {e address} reads tainted data (cache and
      DRAM side channels; secret {e values} may flow to memory freely);
    - a variable-latency operation ([div]/[divu]/[rem]/[remu] and their
      W-forms) with a tainted operand;
    - a [jalr] whose target register is tainted;
    - with declared read-shared regions ([?shared]): {e any} store into a
      shared region ([Shared_write]), and any secret-indexed load from
      one ([Shared_read]) — the cross-enclave transmitters Citadel's
      relaxed ownership admits.

    {b Speculative mode} ([window > 0]): conditional branches whose
    direction is statically known (both operand value sets singleton)
    normally propagate facts only along the live direction; with a
    speculation window, the architecturally dead edge is also followed
    for up to [window] wrong-path instructions, modeling Spectre-style
    transient execution.  Stores are weakened to never scrub a byte's
    taint (speculative store bypass, Spectre-v4).  A [ret] executed at
    modeled call depth 0 has {e underflowed} the return-stack buffer:
    the front end falls back to a stale, attacker-trainable prediction,
    so the wrong path may continue anywhere in the image — findings
    reached that way carry [rsb = true].  Findings reachable only
    through some wrong path are labeled [speculative]. *)

type kind =
  | Branch_condition
  | Jump_target
  | Load_address
  | Store_address
  | Variable_latency
  | Shared_write  (** store into a declared read-shared region *)
  | Shared_read  (** secret-indexed load from a declared read-shared region *)

val kind_name : kind -> string

type finding = {
  pc : int;
  kind : kind;
  speculative : bool;  (** only reachable through wrong-path execution *)
  rsb : bool;  (** reached over an RSB-underflow wrong path *)
  target : Vset.t option;
      (** address value set for memory findings, target set for [jalr] *)
  width : int;  (** access bytes for memory findings; [0] otherwise *)
  instr : Instr.t;
  detail : string;
}

(** The secret set: registers tainted at program entry, and byte ranges
    [\[lo, hi)] of physical memory holding secrets. *)
type secret = { regs : Reg.t list; ranges : (int * int) list }

val no_secret : secret

(** Total order on [(pc, kind, speculative)] — the report order. *)
val compare_finding : finding -> finding -> int

(** [analyze ?window ?shared ~secret cfg] — findings sorted by
    [(pc, kind, speculative)].  [window = 0] (default) analyzes committed
    execution only; [shared] lists declared read-shared byte ranges
    [\[lo, hi)]. *)
val analyze :
  ?window:int -> ?shared:(int * int) list -> secret:secret -> Cfg.t ->
  finding list

(** [analyze_program ?window ?shared ~secret p] — decode + CFG + analyze.
    [Error] when the image does not decode. *)
val analyze_program :
  ?window:int -> ?shared:(int * int) list -> secret:secret -> Asm.program ->
  (finding list, string) result

val pp_finding : Format.formatter -> finding -> unit
val finding_to_json : finding -> Json.t
