type edge_kind = Fall | Taken | Not_taken | Jump

type edge = { dst : int; kind : edge_kind }

type node = { pc : int; instr : Instr.t; succs : edge list }

type t = { base : int; table : (int, node) Hashtbl.t; order : int list }

let in_image ~base ~bytes pc = pc >= base && pc < base + bytes && pc mod 4 = 0

let succs_of ~base ~bytes pc (instr : Instr.t) =
  let edge kind dst = if in_image ~base ~bytes dst then [ { dst; kind } ] else [] in
  match instr with
  | Jal { offset; _ } -> edge Jump (pc + offset)
  | Branch { offset; _ } ->
    edge Taken (pc + offset) @ edge Not_taken (pc + 4)
  | Jalr _ | Ecall | Ebreak | Mret | Sret | Wfi -> []
  | _ -> edge Fall (pc + 4)

let of_words ~base words =
  let bytes = 4 * Array.length words in
  let table = Hashtbl.create (Array.length words) in
  let order = ref [] in
  let err = ref None in
  Array.iteri
    (fun i w ->
      if !err = None then
        let pc = base + (4 * i) in
        match Encode.decode w with
        | None ->
          err := Some (Printf.sprintf "undecodable word 0x%08x at pc 0x%x" w pc)
        | Some instr ->
          Hashtbl.replace table pc
            { pc; instr; succs = succs_of ~base ~bytes pc instr };
          order := pc :: !order)
    words;
  match !err with
  | Some msg -> Error msg
  | None -> Ok { base; table; order = List.rev !order }

let of_program (p : Asm.program) = of_words ~base:p.Asm.base p.Asm.words

let entry t = t.base

let nodes t = List.map (fun pc -> Hashtbl.find t.table pc) t.order

let node_at t pc = Hashtbl.find_opt t.table pc

let length t = List.length t.order
