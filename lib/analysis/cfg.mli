(** Control-flow graph recovered from a decoded RV64IM program.

    Nodes are individual instructions (pc-indexed); edges carry the kind of
    control transfer so flow analyses can treat branch edges asymmetrically
    (constant-condition pruning, speculative wrong-path injection).

    Recovery is linear: words are decoded in order from the program base;
    direct targets ([jal], conditional branches) become edges, indirect
    jumps ([jalr]), traps, [wfi] and out-of-image targets terminate a
    path.  [mret]/[sret]/[ecall]/[ebreak] are treated as exits — the
    analyses here reason about a single protection domain's code. *)

type edge_kind =
  | Fall  (** straight-line successor *)
  | Taken  (** branch taken edge *)
  | Not_taken  (** branch fall-through edge *)
  | Jump  (** unconditional direct jump *)

type edge = { dst : int; kind : edge_kind }

type node = { pc : int; instr : Instr.t; succs : edge list }

type t

(** [of_program p] decodes every word of [p].  [Error msg] when a word
    fails to decode (the image is not a pure RV64IM text section). *)
val of_program : Asm.program -> (t, string) result

(** [of_words ~base words] — same, from a raw word image. *)
val of_words : base:int -> int array -> (t, string) result

val entry : t -> int

(** [nodes t] in ascending pc order. *)
val nodes : t -> node list

val node_at : t -> int -> node option
val length : t -> int
