(** Lowering taint findings to microarchitectural channels — the bridge
    between the static analyzer's vocabulary ({!Taint.kind}) and the
    dynamic {!Mi6_obs.Audit}'s (which LLC structure first shows the
    divergence).

    {!infer} answers "through which hardware structures {e can} this
    finding leak", resolving the finding's address value set against the
    machine's geometry: an access confined to a single cache line cannot
    signal through the set index, one confined to a single page cannot
    signal through the walker.  {!closes} answers "does {e this}
    configuration close that channel" from the same {!Mi6_core.Config}
    the dynamic machine runs — partitioned index, partitioned MSHRs,
    round-robin arbiter, MSHR-vs-DRAM sizing, flush-on-trap — and
    {!open_channels} combines the two (a speculative memory finding
    dies entirely under NONSPEC, which never issues a wrong-path memory
    access).

    The type extends the Audit vocabulary with the two front-end
    predictor channels ([Btb], [Rsb]) that the dynamic audit cannot
    localize (predictors are per-core state, not observable LLC
    traffic) but the static side can name for [jalr]/[ret] findings. *)

type t =
  | Arbiter  (** LLC input arbitration slot *)
  | Mshr  (** LLC miss-status registers *)
  | Uq_dq  (** LLC upgrade/DRAM queues *)
  | Dram  (** DRAM controller scheduling *)
  | Cache  (** LLC set index (evictions) *)
  | Walk  (** page-table walker traffic *)
  | Purge  (** purge timing *)
  | Btb  (** branch target buffer (front end) *)
  | Rsb  (** return stack buffer (front end) *)

val all : t list

(** Audit names for the shared channels ("llc-mshr", "cache-fill", …)
    plus ["btb"] / ["rsb"]. *)
val name : t -> string

val of_name : string -> t option

(** [None] for the front-end channels the Audit cannot observe. *)
val to_audit : t -> Audit.channel option

(** [infer ~timing f] — the channels finding [f] can leak through on a
    machine with [timing]'s geometry, deduplicated, in {!all} order.
    Sound over-approximation: contains every channel the dynamic audit
    can localize this leak to. *)
val infer : timing:Config.timing -> Taint.finding -> t list

(** [closes ~timing ch] — does this configuration shut channel [ch]? *)
val closes : timing:Config.timing -> t -> bool

(** [infer] minus the channels [timing] closes; empty for speculative
    memory findings when [nonspec_mem] is set. *)
val open_channels : timing:Config.timing -> Taint.finding -> t list

(** Map a hardware-lint check identifier ({!Lint.finding}[.check]) to
    the channel left open when that check fails. *)
val of_lint_check : string -> t option

(** JSON array of channel names. *)
val to_json : t list -> Json.t
