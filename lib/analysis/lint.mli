(** Static linter for the paper's hardware structural invariants.

    The dynamic machinery (lib/obs Audit, Noninterference, Difftest)
    demonstrates timing independence {e after} simulating; these checks
    validate a machine configuration {e before} a single cycle runs:

    - {b MSHR sizing} (Section 5.1): the LLC must never have more
      outstanding misses than the DRAM controller can sink without
      reordering across security domains — [#MSHR <= d_max / 2];
    - {b LLC set partitioning} (Sections 5.2, 7.2): the index function
      must split the sets into at least two disjoint region classes that
      tile the whole cache, so no two differently-classed DRAM regions
      can evict each other's lines;
    - {b MSHR partitioning and the Figure 3 structures}: every
      timing-independence knob of the secure LLC must be on, and
      statically partitioned MSHRs must divide evenly among ports;
    - {b purge coverage} (Sections 6, 7.1): the core must purge on trap
      boundaries, and [purge_floor] must cover the slowest per-core
      structure at its hardware flush rate (the catalog below mirrors
      Figure 4's structure sizes);
    - {b DRAM-region ownership} (Section 6.1): region permission masks of
      distinct protection domains must be pairwise disjoint and cover
      every region exactly once, with region 0 held by the monitor.

    All entry points are pure: they inspect configuration values and
    never construct a simulator. *)

type finding = {
  check : string;  (** stable check identifier, e.g. ["mshr-vs-dram"] *)
  subject : string;  (** what was linted, e.g. a config or witness name *)
  message : string;
}

(** Per-core stateful structures and how a purge covers them: either
    drained during quiesce or flushed at [rate] entries/cycle. *)
type coverage = Drained | Flushed of { entries : int; rate : int }

type structure = { s_name : string; s_coverage : coverage }

(** The purge list for a core+L1 configuration.  Exposed so tests can
    assert the catalog stays in sync with Figure 4. *)
val purge_list : core:Core_config.t -> l1:L1.config -> structure list

(** Cycles the slowest flushed structure needs — the lower bound
    [purge_floor] must meet. *)
val required_purge_floor : core:Core_config.t -> l1:L1.config -> int

(** [lint_timing ~name t] checks a machine configuration that claims to
    be secure.  [name] labels findings (e.g. ["mi6"] or a variant
    name). *)
val lint_timing :
  ?geometry:Addr.regions -> name:string -> Config.timing -> finding list

(** [lint_partitions ~geometry ~name idx] — just the set-partition
    disjointness/tiling check for an index function (sampled
    exhaustively over line numbers of every region). *)
val lint_partitions :
  geometry:Addr.regions -> name:string -> Index.t -> finding list

(** [lint_region_masks ~subject masks] — pairwise Bitvec disjointness of
    labelled permission masks, flagging the first shared region of any
    overlapping pair. *)
val lint_region_masks :
  subject:string -> (string * Bitvec.t) list -> finding list

(** [lint_ledger ledger] — monitor invariants over a DRAM-region
    ownership ledger: region 0 belongs to the monitor; every region has
    an owner; per-owner masks are pairwise disjoint and tile DRAM.
    Declared read shares ({!Region.share}) are admitted — access masks
    may overlap exactly on shared regions — but a grant on the monitor's
    region 0 is flagged ([shared-monitor-region]). *)
val lint_ledger : Region.t -> finding list

val pp_finding : Format.formatter -> finding -> unit
val finding_to_json : finding -> Json.t
