(** Built-in witness programs for the taint analyzer: small RV64 programs
    that violate (or deliberately respect) the constant-time discipline.

    The leaky witnesses double as the dynamic cross-validation anchors —
    running them on the BASE machine with two different secret inputs
    produces observably different retirement streams — and the [ct-]
    witnesses as the constant-time counterexamples that must lint clean. *)

type t = {
  name : string;
  description : string;
  base : int;  (** load address *)
  items : Asm.item list;
  secret : Taint.secret;
  secret_reg : Reg.t option;
      (** the input register the dynamic harness varies, if any *)
  shared : (int * int) list;
      (** declared read-shared byte ranges [\[lo, hi)] (Citadel) *)
  expect_clean : bool;  (** committed-mode verdict *)
  expect_clean_speculative : bool;  (** verdict with a speculation window *)
}

val all : t list
val find : string -> t option
val names : string list
val program : t -> Asm.program

(** [to_hex w] renders the assembled program as the text format
    [mi6_sim lint --hex] reads: [#] comment lines carrying
    [base]/[secret-reg]/[secret-range]/[shared-range] directives, then one
    lowercase hex
    word per line. *)
val to_hex : t -> string
