module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

exception Diverged

module Forward (L : LATTICE) = struct
  type solution = (int, L.t) Hashtbl.t

  module Work = Set.Make (Int)

  let solve cfg ~entry ~transfer =
    let facts : solution = Hashtbl.create 64 in
    Hashtbl.replace facts (Cfg.entry cfg) entry;
    (* A sorted pc set as the worklist keeps iteration order deterministic
       (ascending pc), which keeps any diagnostics stable run to run. *)
    let work = ref (Work.singleton (Cfg.entry cfg)) in
    (* Each node can be re-processed once per strict fact increase; the
       lattices used here have short chains, so this generous budget only
       trips on a non-monotone transfer. *)
    let budget = ref (1000 * (Cfg.length cfg + 1)) in
    while not (Work.is_empty !work) do
      decr budget;
      if !budget < 0 then raise Diverged;
      let pc = Work.min_elt !work in
      work := Work.remove pc !work;
      match Cfg.node_at cfg pc with
      | None -> ()
      | Some node ->
        let fact = Hashtbl.find facts pc in
        List.iter
          (fun (dst, out) ->
            if Cfg.node_at cfg dst <> None then
              let joined, changed =
                match Hashtbl.find_opt facts dst with
                | None -> (out, true)
                | Some old ->
                  let j = L.join old out in
                  (j, not (L.equal j old))
              in
              if changed then begin
                Hashtbl.replace facts dst joined;
                work := Work.add dst !work
              end)
          (transfer node fact)
    done;
    facts

  let fact_at sol pc = Hashtbl.find_opt sol pc

  let iter_reachable sol cfg f =
    List.iter
      (fun (node : Cfg.node) ->
        match Hashtbl.find_opt sol node.Cfg.pc with
        | Some fact -> f node fact
        | None -> ())
      (Cfg.nodes cfg)
end
