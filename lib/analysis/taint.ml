type kind =
  | Branch_condition
  | Jump_target
  | Load_address
  | Store_address
  | Variable_latency

let kind_rank = function
  | Branch_condition -> 0
  | Jump_target -> 1
  | Load_address -> 2
  | Store_address -> 3
  | Variable_latency -> 4

let kind_name = function
  | Branch_condition -> "branch-condition"
  | Jump_target -> "jump-target"
  | Load_address -> "load-address"
  | Store_address -> "store-address"
  | Variable_latency -> "variable-latency"

type finding = {
  pc : int;
  kind : kind;
  speculative : bool;
  instr : Instr.t;
  detail : string;
}

type secret = { regs : Reg.t list; ranges : (int * int) list }

let no_secret = { regs = []; ranges = [] }

(* ------------------------------------------------------------------ *)
(* Abstract domain                                                     *)
(* ------------------------------------------------------------------ *)

(* A register value: taint bit + optionally a statically known constant.
   Constants only ever arise from untainted computations (secrets enter
   with [const = None] and constant folding requires every operand
   known), so a known constant is always public. *)
type value = { taint : bool; const : int64 option }

let vtop = { taint = false; const = None }
let vtainted = { taint = true; const = None }
let vconst c = { taint = false; const = Some c }

let value_join a b =
  {
    taint = a.taint || b.taint;
    const =
      (match (a.const, b.const) with
      | Some x, Some y when Int64.equal x y -> Some x
      | _ -> None);
  }

let value_equal a b =
  a.taint = b.taint
  && (match (a.const, b.const) with
     | Some x, Some y -> Int64.equal x y
     | None, None -> true
     | _ -> false)

module Imap = Map.Make (Int)

(* Byte-precise taint for statically known addresses over a background of
   secret ranges; [blur] records that a tainted store escaped to an
   unknown address, after which every load may observe taint. *)
type mem = { bytes : bool Imap.t; blur : bool }

type state = { regs : value array; mem : mem; spec : int }
(* [spec = max_int]: architecturally reachable.  Otherwise the number of
   further wrong-path instructions the speculation window still covers. *)

(* ------------------------------------------------------------------ *)
(* The analysis proper, parameterized by the secret set                *)
(* ------------------------------------------------------------------ *)

type raw = { r_pc : int; r_kind : kind; r_instr : Instr.t; r_detail : string }

let div_ops = [ Instr.Div; Instr.Divu; Instr.Rem; Instr.Remu ]
let div_w_ops = [ Instr.Divw; Instr.Divuw; Instr.Remw; Instr.Remuw ]

let run ~window ~(secret : secret) cfg : raw list =
  let in_secret_range a =
    List.exists (fun (lo, hi) -> a >= lo && a < hi) secret.ranges
  in
  let module L = struct
    type t = state

    let equal a b =
      a.spec = b.spec && a.mem.blur = b.mem.blur
      && Imap.equal Bool.equal a.mem.bytes b.mem.bytes
      && Array.for_all2 value_equal a.regs b.regs

    let join a b =
      let bytes =
        Imap.merge
          (fun addr l r ->
            match (l, r) with
            | Some x, Some y -> Some (x || y)
            | (Some x, None | None, Some x) ->
              (* The absent side sits on the background. *)
              Some (x || in_secret_range addr)
            | None, None -> None)
          a.mem.bytes b.mem.bytes
      in
      {
        regs = Array.map2 value_join a.regs b.regs;
        mem = { bytes; blur = a.mem.blur || b.mem.blur };
        spec = max a.spec b.spec;
      }
  end in
  let module F = Dataflow.Forward (L) in
  let read (st : state) r = if r = 0 then vconst 0L else st.regs.(r) in
  let write (st : state) rd v =
    if rd = 0 then st
    else begin
      let regs = Array.copy st.regs in
      regs.(rd) <- v;
      { st with regs }
    end
  in
  let byte_taint (st : state) addr =
    let base =
      match Imap.find_opt addr st.mem.bytes with
      | Some t -> t
      | None -> in_secret_range addr
    in
    base || st.mem.blur
  in
  let load_taint st ~addr ~width =
    match addr with
    | Some a ->
      let a = Int64.to_int a in
      let rec any i = i < width && (byte_taint st (a + i) || any (i + 1)) in
      any 0
    | None ->
      (* Unknown address: the load may observe any byte. *)
      st.mem.blur || secret.ranges <> []
      || Imap.exists (fun _ t -> t) st.mem.bytes
  in
  let store st ~addr ~width ~taint =
    match addr with
    | Some a ->
      let a = Int64.to_int a in
      let bytes = ref st.mem.bytes in
      for i = 0 to width - 1 do
        (* Speculative analysis models store-to-load bypass (Spectre-v4):
           a younger load may issue before this store drains and observe
           the previous value, so a store can only raise a byte's taint,
           never scrub it.  Committed analysis keeps the strong update. *)
        let t =
          if window > 0 then taint || byte_taint st (a + i) else taint
        in
        bytes := Imap.add (a + i) t !bytes
      done;
      { st with mem = { st.mem with bytes = !bytes } }
    | None ->
      (* Untainted stores to unknown addresses can only lower taint;
         ignoring them is sound. *)
      if taint then { st with mem = { st.mem with blur = true } } else st
  in
  let binop fold rd a b st =
    let const =
      match (a.const, b.const) with
      | Some x, Some y -> Some (fold x y)
      | _ -> None
    in
    write st rd { taint = a.taint || b.taint; const }
  in
  (* Outgoing facts: decrement a speculative budget; a fact that would
     arrive with no budget left is simply not propagated. *)
  let out st dsts =
    if st.spec = max_int then List.map (fun d -> (d, st)) dsts
    else if st.spec <= 1 then []
    else List.map (fun d -> (d, { st with spec = st.spec - 1 })) dsts
  in
  let edge_dsts kind succs =
    List.filter_map
      (fun (e : Cfg.edge) -> if e.Cfg.kind = kind then Some e.Cfg.dst else None)
      succs
  in
  let transfer (node : Cfg.node) (st : state) =
    let pc = node.Cfg.pc in
    let all = List.map (fun (e : Cfg.edge) -> e.Cfg.dst) node.Cfg.succs in
    match node.Cfg.instr with
    | Lui { rd; imm } -> out (write st rd (vconst (Int64.of_int imm))) all
    | Auipc { rd; imm } ->
      out (write st rd (vconst (Int64.of_int (pc + imm)))) all
    | Jal { rd; _ } -> out (write st rd (vconst (Int64.of_int (pc + 4)))) all
    | Jalr { rd; _ } ->
      (* Indirect target: no static successors. *)
      out (write st rd (vconst (Int64.of_int (pc + 4)))) all
    | Alu { op; rd; rs1; rs2 } ->
      out (binop (Fsim.alu_compute op) rd (read st rs1) (read st rs2) st) all
    | Alu_imm { op; rd; rs1; imm } ->
      out
        (binop (Fsim.alu_compute op) rd (read st rs1)
           (vconst (Int64.of_int imm))
           st)
        all
    | Alu_w { op; rd; rs1; rs2 } ->
      out (binop (Fsim.alu_w_compute op) rd (read st rs1) (read st rs2) st) all
    | Alu_imm_w { op; rd; rs1; imm } ->
      out
        (binop (Fsim.alu_w_compute op) rd (read st rs1)
           (vconst (Int64.of_int imm))
           st)
        all
    | Muldiv { rd; rs1; rs2; _ } | Muldiv_w { rd; rs1; rs2; _ } ->
      let a = read st rs1 and b = read st rs2 in
      out (write st rd { taint = a.taint || b.taint; const = None }) all
    | Load { kind; rd; rs1; offset } ->
      let base = read st rs1 in
      let addr = Option.map (fun b -> Int64.add b (Int64.of_int offset)) base.const in
      let t = load_taint st ~addr ~width:(Instr.load_bytes kind) in
      out (write st rd { taint = t; const = None }) all
    | Store { kind; rs1; rs2; offset } ->
      let base = read st rs1 in
      let addr = Option.map (fun b -> Int64.add b (Int64.of_int offset)) base.const in
      out
        (store st ~addr ~width:(Instr.store_bytes kind)
           ~taint:(read st rs2).taint)
        all
    | Lr { width; rd; rs1 } ->
      let base = read st rs1 in
      let w = match width with Instr.W -> 4 | Instr.D -> 8 in
      let t = load_taint st ~addr:base.const ~width:w in
      out (write st rd { taint = t; const = None }) all
    | Sc { width; rd; rs1; rs2 } ->
      let base = read st rs1 in
      let w = match width with Instr.W -> 4 | Instr.D -> 8 in
      let st = store st ~addr:base.const ~width:w ~taint:(read st rs2).taint in
      out (write st rd vtop) all
    | Amo { width; rd; rs1; rs2; _ } ->
      let base = read st rs1 in
      let w = match width with Instr.W -> 4 | Instr.D -> 8 in
      let t = load_taint st ~addr:base.const ~width:w in
      let st =
        store st ~addr:base.const ~width:w
          ~taint:(t || (read st rs2).taint)
      in
      out (write st rd { taint = t; const = None }) all
    | Branch { kind; rs1; rs2; _ } -> begin
      let a = read st rs1 and b = read st rs2 in
      let taken = edge_dsts Cfg.Taken node.Cfg.succs in
      let fall = edge_dsts Cfg.Not_taken node.Cfg.succs in
      match (a.const, b.const) with
      | Some x, Some y ->
        (* Direction statically known: only the live edge propagates the
           committed fact; in speculative mode the dead edge receives a
           budget-bounded wrong-path fact. *)
        let live, dead = if Fsim.branch_taken kind x y then (taken, fall) else (fall, taken) in
        let speculative =
          if window <= 0 then []
          else
            let budget = min st.spec window in
            if budget < 1 then []
            else List.map (fun d -> (d, { st with spec = budget })) dead
        in
        out st live @ speculative
      | _ -> out st all
    end
    | Csr { rd; _ } -> out (write st rd vtop) all
    | Ecall | Ebreak | Mret | Sret | Wfi -> []
    | Fence | Fence_i | Sfence_vma _ | Purge -> out st all
  in
  let entry_regs =
    Array.init 32 (fun i ->
        if i = 0 then vconst 0L
        else if List.mem i secret.regs then vtainted
        else vtop)
  in
  let entry =
    { regs = entry_regs; mem = { bytes = Imap.empty; blur = false }; spec = max_int }
  in
  let sol = F.solve cfg ~entry ~transfer in
  let findings = ref [] in
  let flag r = findings := r :: !findings in
  F.iter_reachable sol cfg (fun node st ->
      let pc = node.Cfg.pc in
      let tainted r = (read st r).taint in
      let names rs =
        String.concat ", " (List.map Reg.name (List.filter tainted rs))
      in
      match node.Cfg.instr with
      | Branch { rs1; rs2; _ } when tainted rs1 || tainted rs2 ->
        flag
          {
            r_pc = pc;
            r_kind = Branch_condition;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf "branch condition reads secret-tainted %s"
                (names [ rs1; rs2 ]);
          }
      | Jalr { rs1; _ } when tainted rs1 ->
        flag
          {
            r_pc = pc;
            r_kind = Jump_target;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf "indirect jump target reads secret-tainted %s"
                (Reg.name rs1);
          }
      | Load { rs1; _ } when tainted rs1 ->
        flag
          {
            r_pc = pc;
            r_kind = Load_address;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf "load address reads secret-tainted %s"
                (Reg.name rs1);
          }
      | (Lr { rs1; _ } | Amo { rs1; _ }) when tainted rs1 ->
        flag
          {
            r_pc = pc;
            r_kind = Load_address;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf "atomic access address reads secret-tainted %s"
                (Reg.name rs1);
          }
      | (Store { rs1; _ } | Sc { rs1; _ }) when tainted rs1 ->
        flag
          {
            r_pc = pc;
            r_kind = Store_address;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf "store address reads secret-tainted %s"
                (Reg.name rs1);
          }
      | Muldiv { op; rs1; rs2; _ }
        when List.mem op div_ops && (tainted rs1 || tainted rs2) ->
        flag
          {
            r_pc = pc;
            r_kind = Variable_latency;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf
                "variable-latency divide/remainder on secret-tainted %s"
                (names [ rs1; rs2 ]);
          }
      | Muldiv_w { op; rs1; rs2; _ }
        when List.mem op div_w_ops && (tainted rs1 || tainted rs2) ->
        flag
          {
            r_pc = pc;
            r_kind = Variable_latency;
            r_instr = node.Cfg.instr;
            r_detail =
              Printf.sprintf
                "variable-latency divide/remainder on secret-tainted %s"
                (names [ rs1; rs2 ]);
          }
      | _ -> ());
  !findings

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let compare_finding a b =
  match compare a.pc b.pc with
  | 0 -> compare (kind_rank a.kind) (kind_rank b.kind)
  | c -> c

let analyze ?(window = 0) ~secret cfg =
  let committed = run ~window:0 ~secret cfg in
  let label speculative (r : raw) =
    {
      pc = r.r_pc;
      kind = r.r_kind;
      speculative;
      instr = r.r_instr;
      detail = r.r_detail;
    }
  in
  let findings =
    if window <= 0 then List.map (label false) committed
    else begin
      let committed_keys =
        List.map (fun r -> (r.r_pc, kind_rank r.r_kind)) committed
      in
      List.map
        (fun (r : raw) ->
          label (not (List.mem (r.r_pc, kind_rank r.r_kind) committed_keys)) r)
        (run ~window ~secret cfg)
    end
  in
  (* Deterministic report order regardless of fixpoint iteration order
     (mirrors the asm.ml label-sort fix): sort on (pc, kind). *)
  List.sort_uniq compare findings |> List.sort compare_finding

let analyze_program ?window ~secret p =
  Result.map (fun cfg -> analyze ?window ~secret cfg) (Cfg.of_program p)

let pp_finding ppf f =
  Format.fprintf ppf "0x%x: [%s%s] %s  (%s)" f.pc (kind_name f.kind)
    (if f.speculative then ", speculative" else "")
    f.detail (Instr.to_string f.instr)

let finding_to_json f =
  Json.Obj
    [
      ("pc", Json.Int f.pc);
      ("kind", Json.String (kind_name f.kind));
      ("speculative", Json.Bool f.speculative);
      ("instr", Json.String (Instr.to_string f.instr));
      ("detail", Json.String f.detail);
    ]
