type kind =
  | Branch_condition
  | Jump_target
  | Load_address
  | Store_address
  | Variable_latency
  | Shared_write
  | Shared_read

let kind_rank = function
  | Branch_condition -> 0
  | Jump_target -> 1
  | Load_address -> 2
  | Store_address -> 3
  | Variable_latency -> 4
  | Shared_write -> 5
  | Shared_read -> 6

let kind_name = function
  | Branch_condition -> "branch-condition"
  | Jump_target -> "jump-target"
  | Load_address -> "load-address"
  | Store_address -> "store-address"
  | Variable_latency -> "variable-latency"
  | Shared_write -> "shared-write"
  | Shared_read -> "shared-read"

type finding = {
  pc : int;
  kind : kind;
  speculative : bool;
  rsb : bool;
  target : Vset.t option;
  width : int;
  instr : Instr.t;
  detail : string;
}

type secret = { regs : Reg.t list; ranges : (int * int) list }

let no_secret = { regs = []; ranges = [] }

(* ------------------------------------------------------------------ *)
(* Abstract domain                                                     *)
(* ------------------------------------------------------------------ *)

(* A register value: taint bit + a value set.  The two are independent:
   a tainted value can still be bounded (secrets enter with [vset = top],
   but [secret & 0xF8] is tainted {e and} confined to [0, 0xF8] — exactly
   the shape a Spectre gadget address has, and what lets Channel resolve
   the access to concrete cache sets). *)
type value = { taint : bool; vset : Vset.t }

let vtop = { taint = false; vset = Vset.top }
let vtainted = { taint = true; vset = Vset.top }
let vconst c = { taint = false; vset = Vset.const c }

let value_widen a b =
  { taint = a.taint || b.taint; vset = Vset.widen a.vset b.vset }

let value_equal a b = a.taint = b.taint && Vset.equal a.vset b.vset

module Imap = Map.Make (Int)

(* Byte-precise taint for statically known addresses over a background of
   secret ranges; [blur] records that a tainted store escaped to an
   unknown address, after which every load may observe taint. *)
type mem = { bytes : bool Imap.t; blur : bool }

type state = {
  regs : value array;
  mem : mem;
  spec : int;
      (* [max_int]: architecturally reachable.  Otherwise the number of
         further wrong-path instructions the speculation window covers. *)
  depth : int;
      (* Call-stack depth the RSB mirrors (saturating at [depth_cap]).
         Joined with [min]: underflow on {e some} path means a return can
         follow a stale prediction on that path. *)
  rsb : bool;  (* fact reached here over an RSB-underflow wrong path *)
}

let depth_cap = 64

(* ------------------------------------------------------------------ *)
(* The analysis proper, parameterized by the secret set                *)
(* ------------------------------------------------------------------ *)

type raw = {
  r_pc : int;
  r_kind : kind;
  r_instr : Instr.t;
  r_detail : string;
  r_rsb : bool;
  r_target : Vset.t option;
  r_width : int;
}

let div_ops = [ Instr.Div; Instr.Divu; Instr.Rem; Instr.Remu ]
let div_w_ops = [ Instr.Divw; Instr.Divuw; Instr.Remw; Instr.Remuw ]

(* Value-set transfer for ALU ops: dedicated interval transformers where
   the domain has them, exact pairwise application of the reference
   semantics otherwise. *)
let vset_alu (op : Instr.alu_op) a b =
  match op with
  | Instr.Add -> Vset.add a b
  | Instr.Sub -> Vset.sub a b
  | Instr.And -> Vset.band a b
  | Instr.Or -> Vset.bor a b
  | Instr.Xor -> Vset.bxor a b
  | _ -> Vset.apply2 (Fsim.alu_compute op) a b

let run ~window ~(secret : secret) ~(shared : (int * int) list) cfg : raw list =
  let in_secret_range a =
    List.exists (fun (lo, hi) -> a >= lo && a < hi) secret.ranges
  in
  let module L = struct
    type t = state

    let equal a b =
      a.spec = b.spec && a.depth = b.depth && a.rsb = b.rsb
      && a.mem.blur = b.mem.blur
      && Imap.equal Bool.equal a.mem.bytes b.mem.bytes
      && Array.for_all2 value_equal a.regs b.regs

    (* Dataflow calls [join old incoming]; widening on the value sets
       keeps loop-carried addresses from climbing one step per
       iteration. *)
    let join a b =
      let bytes =
        Imap.merge
          (fun addr l r ->
            match (l, r) with
            | Some x, Some y -> Some (x || y)
            | (Some x, None | None, Some x) ->
              (* The absent side sits on the background. *)
              Some (x || in_secret_range addr)
            | None, None -> None)
          a.mem.bytes b.mem.bytes
      in
      {
        regs = Array.map2 value_widen a.regs b.regs;
        mem = { bytes; blur = a.mem.blur || b.mem.blur };
        spec = max a.spec b.spec;
        depth = min a.depth b.depth;
        rsb = a.rsb || b.rsb;
      }
  end in
  let module F = Dataflow.Forward (L) in
  let read (st : state) r = if r = 0 then vconst 0L else st.regs.(r) in
  let write (st : state) rd v =
    if rd = 0 then st
    else begin
      let regs = Array.copy st.regs in
      regs.(rd) <- v;
      { st with regs }
    end
  in
  let byte_taint (st : state) addr =
    let base =
      match Imap.find_opt addr st.mem.bytes with
      | Some t -> t
      | None -> in_secret_range addr
    in
    base || st.mem.blur
  in
  let addr_vset st rs1 offset =
    Vset.add (read st rs1).vset (Vset.const (Int64.of_int offset))
  in
  let load_taint st ~addr ~width =
    match Vset.to_const addr with
    | Some a ->
      let a = Int64.to_int a in
      let rec any i = i < width && (byte_taint st (a + i) || any (i + 1)) in
      any 0
    | None ->
      (* Uncertain address: the load observes taint if any byte it can
         reach is tainted. *)
      (not (Vset.is_bot addr))
      && (st.mem.blur
         || List.exists
              (fun (lo, hi) ->
                Vset.may_intersect addr ~lo:(Int64.of_int lo)
                  ~hi:(Int64.of_int hi) ~width)
              secret.ranges
         || Imap.exists
              (fun a t ->
                t
                && Vset.may_intersect addr ~lo:(Int64.of_int a)
                     ~hi:(Int64.of_int (a + 1)) ~width)
              st.mem.bytes)
  in
  let store st ~addr ~width ~taint =
    match Vset.to_const addr with
    | Some a ->
      let a = Int64.to_int a in
      let bytes = ref st.mem.bytes in
      for i = 0 to width - 1 do
        (* Speculative analysis models store-to-load bypass (Spectre-v4):
           a younger load may issue before this store drains and observe
           the previous value, so a store can only raise a byte's taint,
           never scrub it.  Committed analysis keeps the strong update. *)
        let t =
          if window > 0 then taint || byte_taint st (a + i) else taint
        in
        bytes := Imap.add (a + i) t !bytes
      done;
      { st with mem = { st.mem with bytes = !bytes } }
    | None ->
      (* Untainted stores to uncertain addresses can only lower taint;
         ignoring them is sound.  A tainted store weakly taints every
         byte it can reach, or blurs when that set is unbounded. *)
      if taint && not (Vset.is_bot addr) then
        match Vset.unit_list addr ~width ~shift:0 ~max:256 with
        | Some touched ->
          let bytes =
            List.fold_left
              (fun m a -> Imap.add a true m)
              st.mem.bytes touched
          in
          { st with mem = { st.mem with bytes } }
        | None -> { st with mem = { st.mem with blur = true } }
      else st
  in
  let binop vf rd a b st =
    write st rd { taint = a.taint || b.taint; vset = vf a.vset b.vset }
  in
  (* Outgoing facts: decrement a speculative budget; a fact that would
     arrive with no budget left is simply not propagated. *)
  let out st dsts =
    if st.spec = max_int then List.map (fun d -> (d, st)) dsts
    else if st.spec <= 1 then []
    else List.map (fun d -> (d, { st with spec = st.spec - 1 })) dsts
  in
  let edge_dsts kind succs =
    List.filter_map
      (fun (e : Cfg.edge) -> if e.Cfg.kind = kind then Some e.Cfg.dst else None)
      succs
  in
  let push st = { st with depth = min depth_cap (st.depth + 1) } in
  let spec_budget st = if st.spec = max_int then window else min st.spec window in
  let transfer (node : Cfg.node) (st : state) =
    let pc = node.Cfg.pc in
    let all = List.map (fun (e : Cfg.edge) -> e.Cfg.dst) node.Cfg.succs in
    match node.Cfg.instr with
    | Lui { rd; imm } -> out (write st rd (vconst (Int64.of_int imm))) all
    | Auipc { rd; imm } ->
      out (write st rd (vconst (Int64.of_int (pc + imm)))) all
    | Jal { rd; _ } ->
      let st = write st rd (vconst (Int64.of_int (pc + 4))) in
      let st = if rd = 1 then push st else st in
      out st all
    | Jalr { rd; rs1; offset } ->
      (* Indirect target: no static successors, but a singleton target
         value set inside the image lets the committed fact follow the
         jump.  [ret] additionally pops the modeled RSB depth; a return
         at depth 0 has exhausted the RSB, and with a speculation window
         the predictor supplies a stale (attacker-trained) target — the
         wrong path can start {e anywhere} in the image. *)
      let target = addr_vset st rs1 offset in
      let is_ret = rd = 0 && rs1 = 1 in
      let underflow = is_ret && st.depth = 0 in
      let st' = write st rd (vconst (Int64.of_int (pc + 4))) in
      let st' =
        if rd = 1 then push st'
        else if is_ret then { st' with depth = max 0 (st'.depth - 1) }
        else st'
      in
      let direct =
        match Vset.to_const target with
        | Some t -> out st' [ Int64.to_int t ]
        | None -> []
      in
      let wrong_path =
        let budget = spec_budget st in
        if underflow && window > 0 && budget >= 1 then
          let ghost = { st' with spec = budget; rsb = true } in
          List.map (fun (n : Cfg.node) -> (n.Cfg.pc, ghost)) (Cfg.nodes cfg)
        else []
      in
      direct @ wrong_path
    | Alu { op; rd; rs1; rs2 } ->
      out (binop (vset_alu op) rd (read st rs1) (read st rs2) st) all
    | Alu_imm { op; rd; rs1; imm } ->
      out
        (binop (vset_alu op) rd (read st rs1)
           (vconst (Int64.of_int imm))
           st)
        all
    | Alu_w { op; rd; rs1; rs2 } ->
      out
        (binop
           (Vset.apply2 (Fsim.alu_w_compute op))
           rd (read st rs1) (read st rs2) st)
        all
    | Alu_imm_w { op; rd; rs1; imm } ->
      out
        (binop
           (Vset.apply2 (Fsim.alu_w_compute op))
           rd (read st rs1)
           (vconst (Int64.of_int imm))
           st)
        all
    | Muldiv { rd; rs1; rs2; _ } | Muldiv_w { rd; rs1; rs2; _ } ->
      let a = read st rs1 and b = read st rs2 in
      out (write st rd { taint = a.taint || b.taint; vset = Vset.top }) all
    | Load { kind; rd; rs1; offset } ->
      let addr = addr_vset st rs1 offset in
      let t = load_taint st ~addr ~width:(Instr.load_bytes kind) in
      out (write st rd { taint = t; vset = Vset.top }) all
    | Store { kind; rs1; rs2; offset } ->
      let addr = addr_vset st rs1 offset in
      out
        (store st ~addr ~width:(Instr.store_bytes kind)
           ~taint:(read st rs2).taint)
        all
    | Lr { width; rd; rs1 } ->
      let addr = addr_vset st rs1 0 in
      let w = match width with Instr.W -> 4 | Instr.D -> 8 in
      let t = load_taint st ~addr ~width:w in
      out (write st rd { taint = t; vset = Vset.top }) all
    | Sc { width; rd; rs1; rs2 } ->
      let addr = addr_vset st rs1 0 in
      let w = match width with Instr.W -> 4 | Instr.D -> 8 in
      let st = store st ~addr ~width:w ~taint:(read st rs2).taint in
      out (write st rd { taint = false; vset = Vset.of_list [ 0L; 1L ] }) all
    | Amo { width; rd; rs1; rs2; _ } ->
      let addr = addr_vset st rs1 0 in
      let w = match width with Instr.W -> 4 | Instr.D -> 8 in
      let t = load_taint st ~addr ~width:w in
      let st = store st ~addr ~width:w ~taint:(t || (read st rs2).taint) in
      out (write st rd { taint = t; vset = Vset.top }) all
    | Branch { kind; rs1; rs2; _ } -> begin
      let a = read st rs1 and b = read st rs2 in
      let taken = edge_dsts Cfg.Taken node.Cfg.succs in
      let fall = edge_dsts Cfg.Not_taken node.Cfg.succs in
      match (Vset.to_const a.vset, Vset.to_const b.vset) with
      | Some x, Some y ->
        (* Direction statically known: only the live edge propagates the
           committed fact; in speculative mode the dead edge receives a
           budget-bounded wrong-path fact. *)
        let live, dead =
          if Fsim.branch_taken kind x y then (taken, fall) else (fall, taken)
        in
        let speculative =
          if window <= 0 then []
          else
            let budget = spec_budget st in
            if budget < 1 then []
            else List.map (fun d -> (d, { st with spec = budget })) dead
        in
        out st live @ speculative
      | _ -> out st all
    end
    | Csr { rd; _ } -> out (write st rd vtop) all
    | Ecall | Ebreak | Mret | Sret | Wfi -> []
    | Fence | Fence_i | Sfence_vma _ | Purge -> out st all
  in
  let entry_regs =
    Array.init 32 (fun i ->
        if i = 0 then vconst 0L
        else if List.mem i secret.regs then vtainted
        else vtop)
  in
  let entry =
    {
      regs = entry_regs;
      mem = { bytes = Imap.empty; blur = false };
      spec = max_int;
      depth = 0;
      rsb = false;
    }
  in
  let sol = F.solve cfg ~entry ~transfer in
  let findings = ref [] in
  let in_shared v width =
    List.exists
      (fun (lo, hi) ->
        Vset.may_intersect v ~lo:(Int64.of_int lo) ~hi:(Int64.of_int hi)
          ~width)
      shared
  in
  F.iter_reachable sol cfg (fun node st ->
      let pc = node.Cfg.pc in
      let tainted r = (read st r).taint in
      let names rs =
        String.concat ", " (List.map Reg.name (List.filter tainted rs))
      in
      let flag ?target ?(width = 0) r_kind r_detail =
        findings :=
          {
            r_pc = pc;
            r_kind;
            r_instr = node.Cfg.instr;
            r_detail;
            r_rsb = st.rsb;
            r_target = target;
            r_width = width;
          }
          :: !findings
      in
      (* Cross-enclave sharing discipline (Citadel): a declared shared
         region is read-shared.  Any write into it is a transmitter the
         other enclave can time; a secret-tainted read address turns the
         reader's own access pattern into one. *)
      let shared_mem ~addr ~width ~is_store ~addr_tainted =
        if is_store && in_shared addr width then
          flag ~target:addr ~width Shared_write
            (Printf.sprintf "store into declared read-shared region; addr in %s"
               (Vset.to_string addr));
        if addr_tainted && in_shared addr width then
          flag ~target:addr ~width Shared_read
            (Printf.sprintf
               "secret-indexed load from declared read-shared region; addr in %s"
               (Vset.to_string addr))
      in
      match node.Cfg.instr with
      | Branch { rs1; rs2; _ } when tainted rs1 || tainted rs2 ->
        flag Branch_condition
          (Printf.sprintf "branch condition reads secret-tainted %s"
             (names [ rs1; rs2 ]))
      | Jalr { rs1; offset; _ } when tainted rs1 ->
        flag
          ~target:(Vset.add (read st rs1).vset (Vset.const (Int64.of_int offset)))
          Jump_target
          (Printf.sprintf "indirect jump target reads secret-tainted %s"
             (Reg.name rs1))
      | Load { kind; rs1; offset; _ } ->
        let addr = Vset.add (read st rs1).vset (Vset.const (Int64.of_int offset)) in
        let width = Instr.load_bytes kind in
        if tainted rs1 then
          flag ~target:addr ~width Load_address
            (Printf.sprintf "load address reads secret-tainted %s"
               (Reg.name rs1));
        shared_mem ~addr ~width ~is_store:false ~addr_tainted:(tainted rs1)
      | Lr { width; rs1; _ } ->
        let addr = (read st rs1).vset in
        let w = match width with Instr.W -> 4 | Instr.D -> 8 in
        if tainted rs1 then
          flag ~target:addr ~width:w Load_address
            (Printf.sprintf "atomic access address reads secret-tainted %s"
               (Reg.name rs1));
        shared_mem ~addr ~width:w ~is_store:false ~addr_tainted:(tainted rs1)
      | Amo { width; rs1; _ } ->
        let addr = (read st rs1).vset in
        let w = match width with Instr.W -> 4 | Instr.D -> 8 in
        if tainted rs1 then
          flag ~target:addr ~width:w Load_address
            (Printf.sprintf "atomic access address reads secret-tainted %s"
               (Reg.name rs1));
        shared_mem ~addr ~width:w ~is_store:true ~addr_tainted:(tainted rs1)
      | Store { kind; rs1; offset; _ } ->
        let addr = Vset.add (read st rs1).vset (Vset.const (Int64.of_int offset)) in
        let width = Instr.store_bytes kind in
        if tainted rs1 then
          flag ~target:addr ~width Store_address
            (Printf.sprintf "store address reads secret-tainted %s"
               (Reg.name rs1));
        shared_mem ~addr ~width ~is_store:true ~addr_tainted:(tainted rs1)
      | Sc { width; rs1; _ } ->
        let addr = (read st rs1).vset in
        let w = match width with Instr.W -> 4 | Instr.D -> 8 in
        if tainted rs1 then
          flag ~target:addr ~width:w Store_address
            (Printf.sprintf "store address reads secret-tainted %s"
               (Reg.name rs1));
        shared_mem ~addr ~width:w ~is_store:true ~addr_tainted:(tainted rs1)
      | Muldiv { op; rs1; rs2; _ }
        when List.mem op div_ops && (tainted rs1 || tainted rs2) ->
        flag Variable_latency
          (Printf.sprintf
             "variable-latency divide/remainder on secret-tainted %s"
             (names [ rs1; rs2 ]))
      | Muldiv_w { op; rs1; rs2; _ }
        when List.mem op div_w_ops && (tainted rs1 || tainted rs2) ->
        flag Variable_latency
          (Printf.sprintf
             "variable-latency divide/remainder on secret-tainted %s"
             (names [ rs1; rs2 ]))
      | _ -> ());
  !findings

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let compare_finding a b =
  match compare a.pc b.pc with
  | 0 -> begin
    match compare (kind_rank a.kind) (kind_rank b.kind) with
    | 0 -> Bool.compare a.speculative b.speculative
    | c -> c
  end
  | c -> c

let analyze ?(window = 0) ?(shared = []) ~secret cfg =
  let committed = run ~window:0 ~secret ~shared cfg in
  let label speculative (r : raw) =
    {
      pc = r.r_pc;
      kind = r.r_kind;
      speculative;
      rsb = r.r_rsb;
      target = r.r_target;
      width = r.r_width;
      instr = r.r_instr;
      detail = r.r_detail;
    }
  in
  let findings =
    if window <= 0 then List.map (label false) committed
    else begin
      let committed_keys =
        List.map (fun r -> (r.r_pc, kind_rank r.r_kind)) committed
      in
      List.map
        (fun (r : raw) ->
          label (not (List.mem (r.r_pc, kind_rank r.r_kind) committed_keys)) r)
        (run ~window ~secret ~shared cfg)
    end
  in
  (* Deterministic report order regardless of fixpoint iteration order
     (mirrors the asm.ml label-sort fix): sort on (pc, kind, speculative). *)
  List.sort_uniq compare findings |> List.sort compare_finding

let analyze_program ?window ?shared ~secret p =
  Result.map (fun cfg -> analyze ?window ?shared ~secret cfg) (Cfg.of_program p)

let pp_finding ppf f =
  Format.fprintf ppf "0x%x: [%s%s%s] %s  (%s)" f.pc (kind_name f.kind)
    (if f.speculative then ", speculative" else "")
    (if f.rsb then ", rsb" else "")
    f.detail (Instr.to_string f.instr)

let finding_to_json f =
  Json.Obj
    [
      ("pc", Json.Int f.pc);
      ("kind", Json.String (kind_name f.kind));
      ("speculative", Json.Bool f.speculative);
      ("rsb", Json.Bool f.rsb);
      ( "target",
        match f.target with
        | Some v -> Json.String (Vset.to_string v)
        | None -> Json.Null );
      ("width", Json.Int f.width);
      ("instr", Json.String (Instr.to_string f.instr));
      ("detail", Json.String (f.detail));
    ]
