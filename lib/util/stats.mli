(** Named counters and simple summary statistics for simulator runs.

    Each simulated component owns a [t] and bumps counters by name; the
    benchmark harness reads them back to compute the paper's metrics
    (instructions, cycles, misses per kilo-instruction, stall fractions). *)

type t

val create : unit -> t

(** [incr t name] adds one to counter [name], creating it at zero first. *)
val incr : t -> string -> unit

(** [add t name k] adds [k]. *)
val add : t -> string -> int -> unit

(** [get t name] is the current value, 0 if never touched. *)
val get : t -> string -> int

(** [set t name v] overwrites the counter. *)
val set : t -> string -> int -> unit

(** [reset t] zeroes every counter. *)
val reset : t -> unit

(** [names t] is the sorted list of counter names. *)
val names : t -> string list

(** [per_kilo t ~num ~den] is [1000 * num / den] as a float, 0 when the
    denominator counter is zero — the paper's "per thousand instructions"
    metric. *)
val per_kilo : t -> num:string -> den:string -> float

(** [merge ~into src] adds every counter of [src] into [into]. *)
val merge : into:t -> t -> unit

(** [copy t] is an independent snapshot. *)
val copy : t -> t

(** [diff t ~baseline] is a new table holding [t - baseline] per counter
    (counters absent from [baseline] count from zero). *)
val diff : t -> baseline:t -> t

(** [to_assoc t] is every counter as [(name, value)], sorted by name —
    the one-call accessor for exporters (no [names]+[get] pairing). *)
val to_assoc : t -> (string * int) list

(** [restore ~into snapshot] overwrites [into] in place with the values
    of [snapshot] (a table from {!copy}); counters created after the
    snapshot drop back to zero.  The table identity is preserved, so
    components holding the [t] see the rewound values. *)
val restore : into:t -> t -> unit

(** Aligned two-column dump; the name column is sized to the longest
    counter name. *)
val pp : Format.formatter -> t -> unit
