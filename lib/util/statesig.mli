(** Structural-state hashing for the quiet-cycle detector.

    Components fold the state that can change from one cycle to the next
    (queues, MSHRs, state-machine phases, scheduled-event times) into an
    int signature; the machine combines component signatures once per
    cycle.  Equal signatures across consecutive cycles classify the
    cycle as {e quiet}: nothing but the clock advanced, so an
    event-driven core could have skipped it.

    The fold is order-dependent and deterministic (no randomized hashing),
    so signatures are comparable across runs and across domains. *)

(** Seed for a fresh fold. *)
val empty : int

(** [mix h v] folds [v] into accumulator [h]. *)
val mix : int -> int -> int

val mix_bool : int -> bool -> int

(** [mix_list h f xs] folds the length of [xs] and then [f x] for every
    element, in list order. *)
val mix_list : int -> ('a -> int) -> 'a list -> int
