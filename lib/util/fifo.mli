(** Bounded FIFO queues with hardware-style backpressure semantics.

    Every queue in the simulated memory hierarchy (the three FIFOs of a
    core-to-LLC link, the LLC's UQ and DQ, DRAM request queues, ...) is a
    fixed-capacity circular buffer.  [enq] on a full queue and [deq] on an
    empty queue are programming errors (hardware would never fire the rule);
    callers must test [can_enq] / [can_deq] first, which is exactly how the
    cycle models express backpressure. *)

type 'a t

(** [create ~capacity] is an empty queue holding at most [capacity]
    elements.  Raises [Invalid_argument] if [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** [can_enq q] is [not (is_full q)]: the queue accepts an element this
    cycle. *)
val can_enq : 'a t -> bool

(** [can_deq q] is [not (is_empty q)]. *)
val can_deq : 'a t -> bool

(** [enq q x] appends [x].  Raises [Failure] if the queue is full. *)
val enq : 'a t -> 'a -> unit

(** [deq q] removes and returns the oldest element.  Raises [Failure] if the
    queue is empty. *)
val deq : 'a t -> 'a

(** [peek q] is the oldest element without removing it. *)
val peek : 'a t -> 'a

(** [peek_opt q] is [Some (peek q)] or [None] on an empty queue. *)
val peek_opt : 'a t -> 'a option

(** [clear q] empties the queue (used by purge). *)
val clear : 'a t -> unit

(** [iter f q] applies [f] to each element, oldest first. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [to_list q] lists elements oldest-first. *)
val to_list : 'a t -> 'a list

(** [assign q xs] replaces the contents with [xs] (oldest first) — the
    checkpoint/restore primitive: [assign q (to_list q')] makes [q] an
    element-wise copy of [q'].  Raises [Invalid_argument] when [xs]
    exceeds the capacity. *)
val assign : 'a t -> 'a list -> unit
