type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = incr (cell t name)
let add t name k = cell t name := !(cell t name) + k
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let set t name v = cell t name := v
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let per_kilo t ~num ~den =
  let d = get t den in
  if d = 0 then 0.0 else 1000.0 *. float_of_int (get t num) /. float_of_int d

let merge ~into src = Hashtbl.iter (fun k r -> add into k !r) src

let copy t =
  let c = create () in
  Hashtbl.iter (fun k r -> set c k !r) t;
  c

let diff t ~baseline =
  let d = create () in
  Hashtbl.iter (fun k r -> set d k (!r - get baseline k)) t;
  d

let to_assoc t = List.map (fun name -> (name, get t name)) (names t)

let restore ~into src =
  reset into;
  Hashtbl.iter (fun k r -> set into k !r) src

let pp ppf t =
  (* Column width follows the longest counter name so long names stay
     aligned instead of shoving their values out of the column. *)
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 24 (to_assoc t)
  in
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-*s %d@." width name v)
    (to_assoc t)
