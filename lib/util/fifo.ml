type 'a t = {
  buf : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fifo.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0 }

let capacity q = Array.length q.buf
let length q = q.len
let is_empty q = q.len = 0
let is_full q = q.len = Array.length q.buf
let can_enq q = not (is_full q)
let can_deq q = not (is_empty q)

let enq q x =
  if is_full q then failwith "Fifo.enq: full";
  let tail = (q.head + q.len) mod Array.length q.buf in
  q.buf.(tail) <- Some x;
  q.len <- q.len + 1

let deq q =
  if is_empty q then failwith "Fifo.deq: empty";
  match q.buf.(q.head) with
  | None -> assert false
  | Some x ->
    q.buf.(q.head) <- None;
    q.head <- (q.head + 1) mod Array.length q.buf;
    q.len <- q.len - 1;
    x

let peek q =
  if is_empty q then failwith "Fifo.peek: empty";
  match q.buf.(q.head) with None -> assert false | Some x -> x

let peek_opt q = if is_empty q then None else Some (peek q)

let clear q =
  Array.fill q.buf 0 (Array.length q.buf) None;
  q.head <- 0;
  q.len <- 0

let iter f q =
  for i = 0 to q.len - 1 do
    match q.buf.((q.head + i) mod Array.length q.buf) with
    | None -> assert false
    | Some x -> f x
  done

let to_list q =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) q;
  List.rev !acc

let assign q xs =
  if List.length xs > Array.length q.buf then
    invalid_arg "Fifo.assign: list exceeds capacity";
  clear q;
  List.iter (enq q) xs
