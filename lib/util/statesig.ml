(* Structural-state hashing for the quiet-cycle detector.

   Every simulated component folds its mutable "structure" state (queue
   contents, MSHR phases, cursor positions, pending-event times) through
   [mix] to produce a cheap per-cycle signature; two consecutive cycles
   with equal machine signatures advanced nothing but the clock and are
   therefore fast-forwardable.  The mixer is the 64-bit boost-style
   combine: order-dependent (folding [a; b] differs from [b; a]) and
   deterministic across runs and domains. *)

let empty = 0x2545F4914F6CDD1D

(* 61-bit truncation of the 64-bit golden-ratio constant (OCaml ints are
   63-bit). *)
let mix h v = h lxor (v + 0x1E3779B97F4A7C15 + (h lsl 6) + (h lsr 2))

let mix_bool h b = mix h (if b then 1 else 0)

let mix_list h f xs = List.fold_left (fun h x -> mix h (f x)) (mix h (List.length xs)) xs
