type item =
  | Label of string
  | I of Instr.t
  | Jal_to of Reg.t * string
  | Br_to of Instr.branch_kind * Reg.t * Reg.t * string
  | Li of Reg.t * int
  | La of Reg.t * string
  | Call of string
  | J of string
  | Ret
  | Nop

type program = {
  base : int;
  words : int array;
  labels : (string * int) list;
}

(* Number of concrete instructions an item expands to. *)
let item_length = function
  | Label _ -> 0
  | I _ | Jal_to _ | Br_to _ | Call _ | J _ | Ret | Nop -> 1
  | Li _ | La _ -> 2

(* Split a 32-bit signed constant into (hi20 << 12) + lo12 where lo12 is
   sign-extended, the standard lui/addi idiom. *)
let split_const v =
  if v < -0x80000000 || v > 0x7FFFFFFF then
    invalid_arg (Printf.sprintf "Asm.Li: constant %d exceeds 32 bits" v);
  let lo = ((v land 0xFFF) lxor 0x800) - 0x800 in
  let hi = v - lo in
  (hi land 0xFFFFFFFF, lo)

let assemble ~base items =
  (* Pass 1: lay out addresses and collect labels. *)
  let labels = Hashtbl.create 16 in
  let pc = ref base in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
        if Hashtbl.mem labels name then
          failwith (Printf.sprintf "Asm: duplicate label %S" name)
        else Hashtbl.add labels name !pc
      | _ -> ());
      pc := !pc + (4 * item_length item))
    items;
  let find name =
    match Hashtbl.find_opt labels name with
    | Some addr -> addr
    | None -> failwith (Printf.sprintf "Asm: undefined label %S" name)
  in
  (* Pass 2: expand and encode. *)
  let out = ref [] in
  let pc = ref base in
  let emit instr =
    out := Encode.encode instr :: !out;
    pc := !pc + 4
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I instr -> emit instr
      | Jal_to (rd, l) -> emit (Jal { rd; offset = find l - !pc })
      | Br_to (kind, rs1, rs2, l) ->
        emit (Branch { kind; rs1; rs2; offset = find l - !pc })
      | Call l -> emit (Jal { rd = Reg.ra; offset = find l - !pc })
      | J l -> emit (Jal { rd = Reg.x0; offset = find l - !pc })
      | Ret -> emit (Jalr { rd = Reg.x0; rs1 = Reg.ra; offset = 0 })
      | Nop -> emit (Alu_imm { op = Add; rd = Reg.x0; rs1 = Reg.x0; imm = 0 })
      | Li (rd, v) ->
        let hi, lo = split_const v in
        (* Sign-extend hi into the U-type range. *)
        let hi = ((hi lxor 0x80000000) - 0x80000000) in
        emit (Lui { rd; imm = hi });
        emit (Alu_imm { op = Add; rd; rs1 = rd; imm = lo })
      | La (rd, l) ->
        let hi, lo = split_const (find l) in
        let hi = ((hi lxor 0x80000000) - 0x80000000) in
        emit (Lui { rd; imm = hi });
        emit (Alu_imm { op = Add; rd; rs1 = rd; imm = lo }))
    items;
  {
    base;
    words = Array.of_list (List.rev !out);
    (* Sorted so the exported program is independent of hash order. *)
    labels =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels []);
  }

let lookup p label = List.assoc label p.labels
let size_bytes p = 4 * Array.length p.words

let to_bytes p =
  let buf = Bytes.create (size_bytes p) in
  Array.iteri
    (fun i w ->
      for b = 0 to 3 do
        Bytes.set buf ((4 * i) + b) (Char.chr ((w lsr (8 * b)) land 0xFF))
      done)
    p.words;
  Bytes.unsafe_to_string buf
