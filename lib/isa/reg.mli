(** Integer register file names (RV64 x0..x31).

    Registers are plain ints 0..31; [x0] is hardwired to zero by the
    functional simulator and renamed away by the timing model.  ABI aliases
    are provided for readable assembly in tests and examples. *)

type t = int

(** [check r] raises [Invalid_argument] unless 0 <= r <= 31. *)
val check : t -> unit

val x0 : t
val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t
val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val s8 : t
val s9 : t
val s10 : t
val s11 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

(** [name r] is the ABI name, e.g. [name 10 = "a0"]. *)
val name : t -> string

(** [of_name s] parses an ABI name ("a0") or numeric name ("x10"),
    case-insensitive. *)
val of_name : string -> t option

val pp : Format.formatter -> t -> unit
