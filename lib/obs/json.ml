type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity tokens; clamp them to representable values. *)
let float_repr f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* Decoded as a raw byte for ASCII, '?' otherwise — the
                  exporters never emit non-ASCII. *)
               Buffer.add_char buf (if code < 128 then Char.chr code else '?');
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (elems [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with Parse (p, msg) -> failwith (Printf.sprintf "Json.of_string: %s at %d" msg p)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
