(** Cross-run performance history: an append-only JSONL database of
    bench results plus the regression comparator behind
    [bench/compare.exe].

    Every benchmark-harness invocation appends one {!record} per
    (variant, bench) pair, all sharing a fresh [run_id]; {!compare_runs}
    diffs two runs under configurable thresholds so CI can fail on a
    cycle-count or IPC regression.  Records carry the CPI stack and key
    histogram quantiles so a regression can be attributed, not just
    detected. *)

(** Host-side cost of producing the record: how fast the {e simulator}
    ran, as opposed to how fast the simulated machine was. *)
type host = {
  wall_s : float;  (** run wall-clock seconds *)
  kips : float;  (** simulated kilo-instructions per host second *)
  phases : (string * float) list;
      (** self-profiler phase -> host ns per simulated cycle *)
}

type record = {
  run_id : string;  (** shared by every record of one harness invocation *)
  commit : string;  (** git HEAD at the time of the run, or ["unknown"] *)
  variant : string;
  bench : string;
  cycles : int;
  instrs : int;
  ipc : float;
  cpi : (string * int) list;  (** CPI-stack category -> cycles *)
  quantiles : (string * (int * int * int)) list;
      (** histogram name -> (p50, p95, p99) *)
  host : host option;
      (** absent in records written before host-cost tracking or with
          profiling off — readers must treat [None] as "unknown" *)
}

val record_to_json : record -> Json.t

(** [record_of_json j] — [Error msg] when a required field is missing or
    ill-typed. *)
val record_of_json : Json.t -> (record, string) result

(** [append ~path records] appends one compact JSON line per record
    (creating the file if needed). *)
val append : path:string -> record list -> unit

(** [load ~path] — all records, file order.  Blank lines are skipped;
    an unparseable line raises [Failure] with its line number.  A
    missing file is an empty history. *)
val load : path:string -> record list

(** Run ids in first-appearance order. *)
val run_ids : record list -> string list

(** Records belonging to one run, file order. *)
val run : record list -> run_id:string -> record list

(** [latest_two records] — [(previous, latest)] when the history holds
    at least two distinct run ids. *)
val latest_two : record list -> (record list * record list) option

(** [next_run_id records ~commit] — a fresh sequential id,
    ["NNNN-commit"]. *)
val next_run_id : record list -> commit:string -> string

(** One threshold violation found by {!compare_runs}. *)
type regression = {
  r_variant : string;
  r_bench : string;
  r_metric : string;  (** ["cycles"], ["ipc"], or ["kips"] *)
  r_old : float;
  r_new : float;
  r_delta_pct : float;  (** signed; positive = more cycles / less IPC *)
}

(** [compare_runs ~old_run ~new_run] — threshold violations over the
    (variant, bench) pairs present in both runs.  [max_cycle_regress_pct]
    (default 5.0) bounds the cycle-count increase; [max_ipc_drop_pct]
    (default 5.0) bounds the IPC decrease.  [max_kips_drop_pct] (default
    50.0) bounds the {e host}-speed drop when both records carry a
    {!host} section — deliberately generous, so shared-CI wall-clock
    noise never fires it but an order-of-magnitude simulator slowdown
    does. *)
val compare_runs :
  ?max_cycle_regress_pct:float ->
  ?max_ipc_drop_pct:float ->
  ?max_kips_drop_pct:float ->
  old_run:record list ->
  new_run:record list ->
  unit ->
  regression list

val pp_regression : Format.formatter -> regression -> unit

(** Current git commit hash read straight from [root]/.git (default
    ["."]) without shelling out; ["unknown"] when unreadable. *)
val git_commit : ?root:string -> unit -> string
