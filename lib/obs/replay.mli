(** Flight recorder: a bounded ring of periodic machine checkpoints.

    Generic over the checkpoint type so it lives below the machine in the
    dependency order: the owner supplies a [save] thunk and a [cycle_of]
    projection.  Call {!observe} once per simulated cycle; every
    [interval]-th cycle a checkpoint is taken, and only the most recent
    [capacity] are retained (bounded memory).  Any cycle at or after the
    oldest retained checkpoint is then reachable by restoring
    {!nearest} and re-executing at most [interval] cycles — O(interval)
    re-execution to any point in the covered window. *)

type 'ck t

val create :
  interval:int ->
  capacity:int ->
  save:(unit -> 'ck) ->
  cycle_of:('ck -> int) ->
  'ck t

(** [observe t ~cycle] — take a checkpoint iff [cycle mod interval = 0].
    Call once per cycle, after ticking. *)
val observe : 'ck t -> cycle:int -> unit

val interval : 'ck t -> int

(** Checkpoints currently retained. *)
val count : 'ck t -> int

(** Checkpoints taken over the recorder's lifetime (≥ [count]). *)
val taken : 'ck t -> int

(** [nearest t ~cycle] — the newest retained checkpoint at or before
    [cycle], if the window still covers it. *)
val nearest : 'ck t -> cycle:int -> 'ck option

(** Retained checkpoints, oldest first. *)
val checkpoints : 'ck t -> 'ck list

val oldest_cycle : 'ck t -> int option

(** High-water mark of [Obj.reachable_words] over the ring — the
    recorder's memory cost, exported to the perf DB. *)
val mem_high_water_words : 'ck t -> int
