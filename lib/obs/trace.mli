(** Cycle-stamped structured event tracing.

    A trace is a bounded ring buffer of typed events; when full, the
    oldest events are overwritten (and counted as dropped).  Components
    receive a trace handle at construction; the disabled singleton
    {!null} makes every probe a cheap flag test, so an uninstrumented run
    pays (almost) nothing.  Call sites guard event construction with
    {!active} so no event record is ever allocated while tracing is off:

    {[ if Trace.active trace Trace.Llc then
         Trace.emit trace ~now (Trace.Arb_grant { core; kind = "creq" }) ]}

    Export: {!to_chrome_json} writes the Chrome [trace_event] format
    (open the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}); {!pp} is a compact text dump. *)

(** Event categories, the unit of filtering ([--trace-filter llc,purge]). *)
type category = Core | L1 | Llc | Dram | Ptw | Purge

val all_categories : category list
val category_name : category -> string
val category_of_name : string -> category option

type event =
  | Counter of { core : int; name : string; value : int }
      (** periodic occupancy sample (ROB, fetch queue, issue queues) *)
  | Cache_miss of { cache : string; line : int }
  | Cache_fill of { cache : string; line : int }
  | Arb_grant of { core : int; kind : string }
      (** LLC pipeline-entry arbiter admitted a message from [core];
          [kind] is [creq]/[retry]/[cresp]/[dram] *)
  | Arb_idle of { core : int }
      (** round-robin slot for [core] wasted (MI6 arbiter only) *)
  | Mshr_alloc of { core : int; idx : int; line : int }
  | Mshr_free of { core : int; idx : int }
  | Uq_send of { core : int; line : int }  (** upgrade response granted *)
  | Dq_retry of { core : int; idx : int }  (** MI6 one-cycle-DQ retry *)
  | Dram_cmd of { bank : int; read : bool; row_hit : bool; line : int }
  | Purge_begin of { core : int; kind : string }
  | Purge_phase of { core : int; phase : string }
  | Purge_end of { core : int; cycles : int }
  | Walk_start of { core : int; vpage : int }
  | Walk_end of { core : int; vpage : int; reads : int }

val category_of_event : event -> category

(** [event_core ev] is the core an event is attributed to, when the event
    has a per-core identity ([Dram_cmd] and cache events do not). *)
val event_core : event -> int option

(** [event_label ev] renders the event without its cycle stamp — stable,
    suitable for timeline-equality comparisons. *)
val event_label : event -> string

(** [event_kind_name ev] — the event's constructor as a stable
    lowercase name ([arb_grant], [dram_cmd], ...); the unit of drop
    accounting. *)
val event_kind_name : event -> string

type t

(** [create ?capacity ?filter ()] — an enabled trace keeping the most
    recent [capacity] events (default 65536) of the [filter] categories
    (default: all). *)
val create : ?capacity:int -> ?filter:category list -> unit -> t

(** The disabled trace: [active] is always false, [emit] a no-op.  The
    default for every instrumented component. *)
val null : t

(** [active t cat] — events of [cat] are currently recorded.  Guard event
    construction with this. *)
val active : t -> category -> bool

(** [emit t ~now ev] records [ev] at cycle [now] if its category passes
    the filter, overwriting the oldest event when full. *)
val emit : t -> now:int -> event -> unit

(** Number of buffered events. *)
val length : t -> int

(** Events overwritten because the ring was full. *)
val dropped : t -> int

(** Drop counts broken down by event kind, dominant kind first (ties by
    name); empty when nothing was dropped.  A drop is charged to the
    kind of the event {e overwritten}, not the one arriving. *)
val dropped_by_kind : t -> (string * int) list

(** The kind that lost the most events, with its count. *)
val dominant_dropped : t -> (string * int) option

(** Buffered events, oldest first. *)
val events : t -> (int * event) list

val iter : t -> (cycle:int -> event -> unit) -> unit

(** [reset t] empties the buffer and zeroes the drop counter. *)
val reset : t -> unit

(** Value snapshot of the live window and drop accounting, for the
    flight recorder: restoring rewinds the ring so a replayed segment
    re-records exactly the events the original segment did. *)
type checkpoint

(** [save t] captures the buffered events (oldest first) and drop
    counters. *)
val save : t -> checkpoint

(** [restore t ck] rewinds [t] in place to [ck]; {!events}, {!dropped}
    and {!dropped_by_kind} then render exactly as at save time.  No-op on
    {!null}. *)
val restore : t -> checkpoint -> unit

(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]); one trace-event
    per buffered event, cycles as microsecond timestamps, purges as
    begin/end duration slices, occupancy samples as counter tracks. *)
val to_chrome_json : t -> Json.t

(** Compact text dump, one event per line, oldest first. *)
val pp : Format.formatter -> t -> unit
