(** Simulator self-profiling: host wall time and allocation per
    simulation phase.

    A stopwatch with one current phase: {!switch} charges the elapsed
    wall time and minor-heap allocation to the phase being left and
    returns the previous phase, so instrumenting a stage is

    {[ let p = Selfprof.switch sp Selfprof.ph_issue in
       issue_stage t;
       Selfprof.restore sp p ]}

    and nested segments (the DRAM controller ticking inside the LLC tick)
    attribute correctly.  Between {!run_begin} and {!run_end} every
    instant belongs to exactly one phase — un-instrumented time lands in
    [harness] — so phase times sum to the run's wall time by
    construction.  The disabled singleton {!null} reduces every probe to
    one branch. *)

type t

(** The disabled profiler (every probe a cheap flag test). *)
val null : t

val create : unit -> t
val enabled : t -> bool

(** {2 Phases} *)

val n_phases : int
val phase_name : int -> string

val ph_fetch : int
val ph_rename : int
val ph_issue : int
val ph_exec : int
val ph_mem : int
val ph_commit : int
val ph_purge : int
val ph_l1 : int
val ph_llc : int
val ph_dram : int
val ph_ptw : int

(** Everything not inside an instrumented segment: stream generation,
    stats bookkeeping, the run loop. *)
val ph_harness : int

(** {2 Probes} *)

(** [switch t p] — charge elapsed time/allocation to the current phase,
    make [p] current, return the previous phase. *)
val switch : t -> int -> int

(** [restore t p] — [switch] back to [p], ignoring the result. *)
val restore : t -> int -> unit

(** {2 Run windows} *)

(** [run_begin t] opens a run window (current phase becomes [harness]). *)
val run_begin : t -> unit

(** [run_end t ~cycles ~instrs] closes the window: accumulates wall
    time, cycle and instruction counts, and appends a kips-series
    point. *)
val run_end : t -> cycles:int -> instrs:int -> unit

(** [sample t ~cycles ~instrs] appends a mid-run kips-series point
    (elapsed seconds since [run_begin], cycles, instrs). *)
val sample : t -> cycles:int -> instrs:int -> unit

(** {2 Results} *)

val wall_seconds : t -> float
val cycles : t -> int
val phase_seconds : t -> int -> float
val phase_alloc_bytes : t -> int -> float

(** Kips-series points, oldest first: (elapsed seconds, cycles, instrs). *)
val kips_series : t -> (float * int * int) list

(** Simulated kilocycles per host second over all run windows. *)
val overall_kips : t -> float

(** Per-phase [(name, seconds, ns/cycle, alloc bytes/cycle)], phase
    order. *)
val report : t -> (string * float * float * float) list

val to_json : t -> Json.t
